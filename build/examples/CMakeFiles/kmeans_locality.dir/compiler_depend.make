# Empty compiler generated dependencies file for kmeans_locality.
# This may be replaced when dependencies are built.
