file(REMOVE_RECURSE
  "CMakeFiles/kmeans_locality.dir/kmeans_locality.cpp.o"
  "CMakeFiles/kmeans_locality.dir/kmeans_locality.cpp.o.d"
  "kmeans_locality"
  "kmeans_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmeans_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
