file(REMOVE_RECURSE
  "CMakeFiles/cache_policy_showdown.dir/cache_policy_showdown.cpp.o"
  "CMakeFiles/cache_policy_showdown.dir/cache_policy_showdown.cpp.o.d"
  "cache_policy_showdown"
  "cache_policy_showdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_policy_showdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
