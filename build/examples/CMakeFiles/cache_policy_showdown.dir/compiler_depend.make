# Empty compiler generated dependencies file for cache_policy_showdown.
# This may be replaced when dependencies are built.
