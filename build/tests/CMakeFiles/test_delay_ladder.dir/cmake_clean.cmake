file(REMOVE_RECURSE
  "CMakeFiles/test_delay_ladder.dir/test_delay_ladder.cpp.o"
  "CMakeFiles/test_delay_ladder.dir/test_delay_ladder.cpp.o.d"
  "test_delay_ladder"
  "test_delay_ladder.pdb"
  "test_delay_ladder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delay_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
