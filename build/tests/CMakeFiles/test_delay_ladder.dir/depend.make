# Empty dependencies file for test_delay_ladder.
# This may be replaced when dependencies are built.
