# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_dag[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_paper[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_delay_ladder[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_batch[1]_include.cmake")
