file(REMOVE_RECURSE
  "CMakeFiles/dagonsim.dir/dagonsim.cpp.o"
  "CMakeFiles/dagonsim.dir/dagonsim.cpp.o.d"
  "dagonsim"
  "dagonsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagonsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
