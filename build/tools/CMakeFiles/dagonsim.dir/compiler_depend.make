# Empty compiler generated dependencies file for dagonsim.
# This may be replaced when dependencies are built.
