file(REMOVE_RECURSE
  "CMakeFiles/dagon_dag.dir/dag_analysis.cpp.o"
  "CMakeFiles/dagon_dag.dir/dag_analysis.cpp.o.d"
  "CMakeFiles/dagon_dag.dir/job_dag.cpp.o"
  "CMakeFiles/dagon_dag.dir/job_dag.cpp.o.d"
  "libdagon_dag.a"
  "libdagon_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagon_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
