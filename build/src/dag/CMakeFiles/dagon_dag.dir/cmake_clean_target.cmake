file(REMOVE_RECURSE
  "libdagon_dag.a"
)
