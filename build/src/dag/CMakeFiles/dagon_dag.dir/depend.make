# Empty dependencies file for dagon_dag.
# This may be replaced when dependencies are built.
