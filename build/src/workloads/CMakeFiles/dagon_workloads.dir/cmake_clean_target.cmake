file(REMOVE_RECURSE
  "libdagon_workloads.a"
)
