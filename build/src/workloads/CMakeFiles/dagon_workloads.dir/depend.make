# Empty dependencies file for dagon_workloads.
# This may be replaced when dependencies are built.
