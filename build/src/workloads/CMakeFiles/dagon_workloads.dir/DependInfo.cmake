
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/batch.cpp" "src/workloads/CMakeFiles/dagon_workloads.dir/batch.cpp.o" "gcc" "src/workloads/CMakeFiles/dagon_workloads.dir/batch.cpp.o.d"
  "/root/repo/src/workloads/example_dag.cpp" "src/workloads/CMakeFiles/dagon_workloads.dir/example_dag.cpp.o" "gcc" "src/workloads/CMakeFiles/dagon_workloads.dir/example_dag.cpp.o.d"
  "/root/repo/src/workloads/graph_workloads.cpp" "src/workloads/CMakeFiles/dagon_workloads.dir/graph_workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/dagon_workloads.dir/graph_workloads.cpp.o.d"
  "/root/repo/src/workloads/ml_workloads.cpp" "src/workloads/CMakeFiles/dagon_workloads.dir/ml_workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/dagon_workloads.dir/ml_workloads.cpp.o.d"
  "/root/repo/src/workloads/random_dag.cpp" "src/workloads/CMakeFiles/dagon_workloads.dir/random_dag.cpp.o" "gcc" "src/workloads/CMakeFiles/dagon_workloads.dir/random_dag.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "src/workloads/CMakeFiles/dagon_workloads.dir/suite.cpp.o" "gcc" "src/workloads/CMakeFiles/dagon_workloads.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dagon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/dagon_dag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
