file(REMOVE_RECURSE
  "CMakeFiles/dagon_workloads.dir/batch.cpp.o"
  "CMakeFiles/dagon_workloads.dir/batch.cpp.o.d"
  "CMakeFiles/dagon_workloads.dir/example_dag.cpp.o"
  "CMakeFiles/dagon_workloads.dir/example_dag.cpp.o.d"
  "CMakeFiles/dagon_workloads.dir/graph_workloads.cpp.o"
  "CMakeFiles/dagon_workloads.dir/graph_workloads.cpp.o.d"
  "CMakeFiles/dagon_workloads.dir/ml_workloads.cpp.o"
  "CMakeFiles/dagon_workloads.dir/ml_workloads.cpp.o.d"
  "CMakeFiles/dagon_workloads.dir/random_dag.cpp.o"
  "CMakeFiles/dagon_workloads.dir/random_dag.cpp.o.d"
  "CMakeFiles/dagon_workloads.dir/suite.cpp.o"
  "CMakeFiles/dagon_workloads.dir/suite.cpp.o.d"
  "libdagon_workloads.a"
  "libdagon_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagon_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
