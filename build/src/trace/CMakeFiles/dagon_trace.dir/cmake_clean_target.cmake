file(REMOVE_RECURSE
  "libdagon_trace.a"
)
