# Empty compiler generated dependencies file for dagon_trace.
# This may be replaced when dependencies are built.
