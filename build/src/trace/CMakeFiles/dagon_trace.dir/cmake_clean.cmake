file(REMOVE_RECURSE
  "CMakeFiles/dagon_trace.dir/chrome_trace.cpp.o"
  "CMakeFiles/dagon_trace.dir/chrome_trace.cpp.o.d"
  "CMakeFiles/dagon_trace.dir/timeline.cpp.o"
  "CMakeFiles/dagon_trace.dir/timeline.cpp.o.d"
  "libdagon_trace.a"
  "libdagon_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagon_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
