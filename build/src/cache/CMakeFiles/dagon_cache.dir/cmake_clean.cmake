file(REMOVE_RECURSE
  "CMakeFiles/dagon_cache.dir/block_manager.cpp.o"
  "CMakeFiles/dagon_cache.dir/block_manager.cpp.o.d"
  "CMakeFiles/dagon_cache.dir/block_manager_master.cpp.o"
  "CMakeFiles/dagon_cache.dir/block_manager_master.cpp.o.d"
  "CMakeFiles/dagon_cache.dir/cache_policy.cpp.o"
  "CMakeFiles/dagon_cache.dir/cache_policy.cpp.o.d"
  "CMakeFiles/dagon_cache.dir/ref_oracle.cpp.o"
  "CMakeFiles/dagon_cache.dir/ref_oracle.cpp.o.d"
  "libdagon_cache.a"
  "libdagon_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagon_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
