
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/block_manager.cpp" "src/cache/CMakeFiles/dagon_cache.dir/block_manager.cpp.o" "gcc" "src/cache/CMakeFiles/dagon_cache.dir/block_manager.cpp.o.d"
  "/root/repo/src/cache/block_manager_master.cpp" "src/cache/CMakeFiles/dagon_cache.dir/block_manager_master.cpp.o" "gcc" "src/cache/CMakeFiles/dagon_cache.dir/block_manager_master.cpp.o.d"
  "/root/repo/src/cache/cache_policy.cpp" "src/cache/CMakeFiles/dagon_cache.dir/cache_policy.cpp.o" "gcc" "src/cache/CMakeFiles/dagon_cache.dir/cache_policy.cpp.o.d"
  "/root/repo/src/cache/ref_oracle.cpp" "src/cache/CMakeFiles/dagon_cache.dir/ref_oracle.cpp.o" "gcc" "src/cache/CMakeFiles/dagon_cache.dir/ref_oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dagon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/dagon_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dagon_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
