file(REMOVE_RECURSE
  "libdagon_cache.a"
)
