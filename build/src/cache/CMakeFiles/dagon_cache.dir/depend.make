# Empty dependencies file for dagon_cache.
# This may be replaced when dependencies are built.
