file(REMOVE_RECURSE
  "libdagon_core.a"
)
