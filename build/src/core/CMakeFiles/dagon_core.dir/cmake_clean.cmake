file(REMOVE_RECURSE
  "CMakeFiles/dagon_core.dir/app_profiler.cpp.o"
  "CMakeFiles/dagon_core.dir/app_profiler.cpp.o.d"
  "CMakeFiles/dagon_core.dir/assignment_trace.cpp.o"
  "CMakeFiles/dagon_core.dir/assignment_trace.cpp.o.d"
  "CMakeFiles/dagon_core.dir/cache_trace.cpp.o"
  "CMakeFiles/dagon_core.dir/cache_trace.cpp.o.d"
  "CMakeFiles/dagon_core.dir/presets.cpp.o"
  "CMakeFiles/dagon_core.dir/presets.cpp.o.d"
  "CMakeFiles/dagon_core.dir/runner.cpp.o"
  "CMakeFiles/dagon_core.dir/runner.cpp.o.d"
  "libdagon_core.a"
  "libdagon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
