# Empty dependencies file for dagon_core.
# This may be replaced when dependencies are built.
