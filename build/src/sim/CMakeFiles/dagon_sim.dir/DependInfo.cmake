
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/driver.cpp" "src/sim/CMakeFiles/dagon_sim.dir/driver.cpp.o" "gcc" "src/sim/CMakeFiles/dagon_sim.dir/driver.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/dagon_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/dagon_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/dagon_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/dagon_sim.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dagon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/dagon_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dagon_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dagon_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dagon_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
