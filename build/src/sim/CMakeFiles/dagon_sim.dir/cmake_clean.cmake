file(REMOVE_RECURSE
  "CMakeFiles/dagon_sim.dir/driver.cpp.o"
  "CMakeFiles/dagon_sim.dir/driver.cpp.o.d"
  "CMakeFiles/dagon_sim.dir/event_queue.cpp.o"
  "CMakeFiles/dagon_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/dagon_sim.dir/metrics.cpp.o"
  "CMakeFiles/dagon_sim.dir/metrics.cpp.o.d"
  "libdagon_sim.a"
  "libdagon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
