file(REMOVE_RECURSE
  "libdagon_sim.a"
)
