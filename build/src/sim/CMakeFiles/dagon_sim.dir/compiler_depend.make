# Empty compiler generated dependencies file for dagon_sim.
# This may be replaced when dependencies are built.
