file(REMOVE_RECURSE
  "CMakeFiles/dagon_common.dir/csv.cpp.o"
  "CMakeFiles/dagon_common.dir/csv.cpp.o.d"
  "CMakeFiles/dagon_common.dir/log.cpp.o"
  "CMakeFiles/dagon_common.dir/log.cpp.o.d"
  "CMakeFiles/dagon_common.dir/rng.cpp.o"
  "CMakeFiles/dagon_common.dir/rng.cpp.o.d"
  "CMakeFiles/dagon_common.dir/stats.cpp.o"
  "CMakeFiles/dagon_common.dir/stats.cpp.o.d"
  "CMakeFiles/dagon_common.dir/table.cpp.o"
  "CMakeFiles/dagon_common.dir/table.cpp.o.d"
  "libdagon_common.a"
  "libdagon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
