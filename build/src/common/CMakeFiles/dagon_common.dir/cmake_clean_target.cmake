file(REMOVE_RECURSE
  "libdagon_common.a"
)
