# Empty dependencies file for dagon_common.
# This may be replaced when dependencies are built.
