# Empty compiler generated dependencies file for dagon_common.
# This may be replaced when dependencies are built.
