file(REMOVE_RECURSE
  "libdagon_sched.a"
)
