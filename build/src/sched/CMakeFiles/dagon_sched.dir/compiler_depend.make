# Empty compiler generated dependencies file for dagon_sched.
# This may be replaced when dependencies are built.
