file(REMOVE_RECURSE
  "CMakeFiles/dagon_sched.dir/delay_scheduling.cpp.o"
  "CMakeFiles/dagon_sched.dir/delay_scheduling.cpp.o.d"
  "CMakeFiles/dagon_sched.dir/estimator.cpp.o"
  "CMakeFiles/dagon_sched.dir/estimator.cpp.o.d"
  "CMakeFiles/dagon_sched.dir/job_state.cpp.o"
  "CMakeFiles/dagon_sched.dir/job_state.cpp.o.d"
  "CMakeFiles/dagon_sched.dir/speculation.cpp.o"
  "CMakeFiles/dagon_sched.dir/speculation.cpp.o.d"
  "CMakeFiles/dagon_sched.dir/stage_selector.cpp.o"
  "CMakeFiles/dagon_sched.dir/stage_selector.cpp.o.d"
  "CMakeFiles/dagon_sched.dir/task_locality.cpp.o"
  "CMakeFiles/dagon_sched.dir/task_locality.cpp.o.d"
  "libdagon_sched.a"
  "libdagon_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagon_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
