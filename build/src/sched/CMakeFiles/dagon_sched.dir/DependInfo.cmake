
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/delay_scheduling.cpp" "src/sched/CMakeFiles/dagon_sched.dir/delay_scheduling.cpp.o" "gcc" "src/sched/CMakeFiles/dagon_sched.dir/delay_scheduling.cpp.o.d"
  "/root/repo/src/sched/estimator.cpp" "src/sched/CMakeFiles/dagon_sched.dir/estimator.cpp.o" "gcc" "src/sched/CMakeFiles/dagon_sched.dir/estimator.cpp.o.d"
  "/root/repo/src/sched/job_state.cpp" "src/sched/CMakeFiles/dagon_sched.dir/job_state.cpp.o" "gcc" "src/sched/CMakeFiles/dagon_sched.dir/job_state.cpp.o.d"
  "/root/repo/src/sched/speculation.cpp" "src/sched/CMakeFiles/dagon_sched.dir/speculation.cpp.o" "gcc" "src/sched/CMakeFiles/dagon_sched.dir/speculation.cpp.o.d"
  "/root/repo/src/sched/stage_selector.cpp" "src/sched/CMakeFiles/dagon_sched.dir/stage_selector.cpp.o" "gcc" "src/sched/CMakeFiles/dagon_sched.dir/stage_selector.cpp.o.d"
  "/root/repo/src/sched/task_locality.cpp" "src/sched/CMakeFiles/dagon_sched.dir/task_locality.cpp.o" "gcc" "src/sched/CMakeFiles/dagon_sched.dir/task_locality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dagon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/dagon_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dagon_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dagon_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
