
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cost_model.cpp" "src/cluster/CMakeFiles/dagon_cluster.dir/cost_model.cpp.o" "gcc" "src/cluster/CMakeFiles/dagon_cluster.dir/cost_model.cpp.o.d"
  "/root/repo/src/cluster/hdfs.cpp" "src/cluster/CMakeFiles/dagon_cluster.dir/hdfs.cpp.o" "gcc" "src/cluster/CMakeFiles/dagon_cluster.dir/hdfs.cpp.o.d"
  "/root/repo/src/cluster/topology.cpp" "src/cluster/CMakeFiles/dagon_cluster.dir/topology.cpp.o" "gcc" "src/cluster/CMakeFiles/dagon_cluster.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dagon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/dagon_dag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
