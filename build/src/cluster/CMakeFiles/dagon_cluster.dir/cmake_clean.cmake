file(REMOVE_RECURSE
  "CMakeFiles/dagon_cluster.dir/cost_model.cpp.o"
  "CMakeFiles/dagon_cluster.dir/cost_model.cpp.o.d"
  "CMakeFiles/dagon_cluster.dir/hdfs.cpp.o"
  "CMakeFiles/dagon_cluster.dir/hdfs.cpp.o.d"
  "CMakeFiles/dagon_cluster.dir/topology.cpp.o"
  "CMakeFiles/dagon_cluster.dir/topology.cpp.o.d"
  "libdagon_cluster.a"
  "libdagon_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagon_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
