# Empty dependencies file for dagon_cluster.
# This may be replaced when dependencies are built.
