file(REMOVE_RECURSE
  "libdagon_cluster.a"
)
