file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_delay_scheduling.dir/bench_fig10_delay_scheduling.cpp.o"
  "CMakeFiles/bench_fig10_delay_scheduling.dir/bench_fig10_delay_scheduling.cpp.o.d"
  "bench_fig10_delay_scheduling"
  "bench_fig10_delay_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_delay_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
