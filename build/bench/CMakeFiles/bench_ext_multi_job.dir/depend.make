# Empty dependencies file for bench_ext_multi_job.
# This may be replaced when dependencies are built.
