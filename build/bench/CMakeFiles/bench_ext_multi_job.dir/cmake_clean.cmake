file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multi_job.dir/bench_ext_multi_job.cpp.o"
  "CMakeFiles/bench_ext_multi_job.dir/bench_ext_multi_job.cpp.o.d"
  "bench_ext_multi_job"
  "bench_ext_multi_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multi_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
