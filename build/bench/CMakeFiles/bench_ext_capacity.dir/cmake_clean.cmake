file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_capacity.dir/bench_ext_capacity.cpp.o"
  "CMakeFiles/bench_ext_capacity.dir/bench_ext_capacity.cpp.o.d"
  "bench_ext_capacity"
  "bench_ext_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
