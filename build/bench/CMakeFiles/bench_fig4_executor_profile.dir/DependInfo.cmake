
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_executor_profile.cpp" "bench/CMakeFiles/bench_fig4_executor_profile.dir/bench_fig4_executor_profile.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4_executor_profile.dir/bench_fig4_executor_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dagon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dagon_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dagon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dagon_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dagon_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dagon_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dagon_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/dagon_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dagon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
