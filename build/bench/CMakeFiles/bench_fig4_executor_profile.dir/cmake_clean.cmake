file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_executor_profile.dir/bench_fig4_executor_profile.cpp.o"
  "CMakeFiles/bench_fig4_executor_profile.dir/bench_fig4_executor_profile.cpp.o.d"
  "bench_fig4_executor_profile"
  "bench_fig4_executor_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_executor_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
