# Empty dependencies file for bench_fig4_executor_profile.
# This may be replaced when dependencies are built.
