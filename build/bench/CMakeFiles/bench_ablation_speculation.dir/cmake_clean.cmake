file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_speculation.dir/bench_ablation_speculation.cpp.o"
  "CMakeFiles/bench_ablation_speculation.dir/bench_ablation_speculation.cpp.o.d"
  "bench_ablation_speculation"
  "bench_ablation_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
