# Empty compiler generated dependencies file for bench_fig9_task_assignment.
# This may be replaced when dependencies are built.
