file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_task_assignment.dir/bench_fig9_task_assignment.cpp.o"
  "CMakeFiles/bench_fig9_task_assignment.dir/bench_fig9_task_assignment.cpp.o.d"
  "bench_fig9_task_assignment"
  "bench_fig9_task_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_task_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
