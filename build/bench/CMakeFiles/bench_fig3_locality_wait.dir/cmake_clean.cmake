file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_locality_wait.dir/bench_fig3_locality_wait.cpp.o"
  "CMakeFiles/bench_fig3_locality_wait.dir/bench_fig3_locality_wait.cpp.o.d"
  "bench_fig3_locality_wait"
  "bench_fig3_locality_wait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_locality_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
