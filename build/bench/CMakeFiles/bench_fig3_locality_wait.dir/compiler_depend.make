# Empty compiler generated dependencies file for bench_fig3_locality_wait.
# This may be replaced when dependencies are built.
