# Empty compiler generated dependencies file for bench_table3_priority_steps.
# This may be replaced when dependencies are built.
