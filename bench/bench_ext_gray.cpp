// Extension: gray-failure tolerance — heartbeat suspicion, network
// partitions, degraded executors, blacklisting and proactive
// re-replication, swept over a deterministic scenario grid.
//
// Unlike the figure benches this is primarily a robustness harness:
// every scenario must drain to quiescence (SimDriver verifies that
// internally) and pass the block-accounting invariants re-checked here;
// the CSVs are the measurement byproduct.
//
// DAGON_GRAY_SCENARIOS=N caps the grid for smoke runs (CI).
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/driver.hpp"

using namespace dagon;

namespace {

struct Scenario {
  std::string label;
  FaultConfig faults;
  bool speculation = false;
  /// Label-specific expectations, asserted per run.
  bool expect_suspicions = false;
  bool expect_dropped_heartbeats = false;
  bool expect_declared_dead = false;
};

FaultConfig gray_base() {
  FaultConfig f;
  f.enabled = true;
  f.heartbeats = true;
  return f;
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;

  Scenario control;
  control.label = "monitoring-only";
  control.faults = gray_base();
  out.push_back(control);

  // Short partitions: suspicion + recovery, never a death.
  for (const std::int32_t rack : {-1, 0, 1}) {
    Scenario s;
    s.label = "partition 20-32s rack=" + std::to_string(rack);
    s.faults = gray_base();
    s.faults.partitions.push_back(PartitionSpec{20 * kSec, 32 * kSec, rack});
    s.expect_suspicions = true;
    s.expect_dropped_heartbeats = true;
    out.push_back(std::move(s));
  }

  Scenario two_parts;
  two_parts.label = "partitions 20-30s r0 + 45-55s r1";
  two_parts.faults = gray_base();
  two_parts.faults.partitions.push_back(PartitionSpec{20 * kSec, 30 * kSec, 0});
  two_parts.faults.partitions.push_back(PartitionSpec{45 * kSec, 55 * kSec, 1});
  two_parts.expect_suspicions = true;
  two_parts.expect_dropped_heartbeats = true;
  out.push_back(std::move(two_parts));

  Scenario overlap;
  overlap.label = "overlapping partitions r0";
  overlap.faults = gray_base();
  overlap.faults.partitions.push_back(PartitionSpec{20 * kSec, 30 * kSec, 0});
  overlap.faults.partitions.push_back(PartitionSpec{25 * kSec, 34 * kSec, 0});
  overlap.expect_suspicions = true;
  overlap.expect_dropped_heartbeats = true;
  out.push_back(std::move(overlap));

  // Long partition: silence crosses dead_phi (~18.4 intervals) before
  // the heal, so the rack is declared dead and recovered as crashes.
  Scenario dead;
  dead.label = "partition 20-60s (declared dead)";
  dead.faults = gray_base();
  dead.faults.partitions.push_back(PartitionSpec{20 * kSec, 60 * kSec, 0});
  dead.expect_suspicions = true;
  dead.expect_dropped_heartbeats = true;
  dead.expect_declared_dead = true;
  out.push_back(std::move(dead));

  // Degraded executors: late heartbeats make natural false positives;
  // speculation races the slow attempts.
  for (const double slow : {2.5, 4.0}) {
    Scenario s;
    s.label = "degrade x" + TextTable::num(slow, 1) + " 10-120s";
    s.faults = gray_base();
    s.faults.degrades.push_back(
        DegradeSpec{10 * kSec, 120 * kSec, -1, slow});
    s.speculation = true;
    if (slow >= 4.0) s.expect_suspicions = true;
    out.push_back(std::move(s));
  }

  Scenario two_deg;
  two_deg.label = "two degrades x4";
  two_deg.faults = gray_base();
  two_deg.faults.degrades.push_back(DegradeSpec{5 * kSec, 90 * kSec, -1, 4.0});
  two_deg.faults.degrades.push_back(DegradeSpec{15 * kSec, 60 * kSec, -1, 4.0});
  two_deg.speculation = true;
  two_deg.expect_suspicions = true;
  out.push_back(std::move(two_deg));

  Scenario pd;
  pd.label = "partition + degrade";
  pd.faults = gray_base();
  pd.faults.partitions.push_back(PartitionSpec{20 * kSec, 32 * kSec, -1});
  pd.faults.degrades.push_back(DegradeSpec{10 * kSec, 90 * kSec, -1, 3.0});
  pd.speculation = true;
  pd.expect_suspicions = true;
  pd.expect_dropped_heartbeats = true;
  out.push_back(std::move(pd));

  // Chained: a planned crash fires while the other rack is partitioned.
  Scenario chain;
  chain.label = "crash during partition";
  chain.faults = gray_base();
  chain.faults.partitions.push_back(PartitionSpec{20 * kSec, 32 * kSec, 0});
  chain.faults.crashes.push_back(ExecutorCrashSpec{25 * kSec, -1});
  chain.expect_dropped_heartbeats = true;
  out.push_back(std::move(chain));

  // Blacklisting under transient failures, alone and with gray events.
  for (const bool with_partition : {false, true}) {
    Scenario s;
    s.label = std::string("blacklist p=0.03") +
              (with_partition ? " + partition" : "");
    s.faults = gray_base();
    s.faults.task_fail_prob = 0.03;
    s.faults.blacklist_threshold = 2;
    s.faults.blacklist_probation = 20 * kSec;
    if (with_partition) {
      s.faults.partitions.push_back(PartitionSpec{20 * kSec, 32 * kSec, -1});
      s.expect_suspicions = true;
      s.expect_dropped_heartbeats = true;
    }
    out.push_back(std::move(s));
  }

  // Block loss layered on a degrade (recovery under gray pressure).
  Scenario loss;
  loss.label = "block loss + degrade";
  loss.faults = gray_base();
  loss.faults.block_loss_per_gb_hour = 20.0;
  loss.faults.block_loss_interval = 2 * kSec;
  loss.faults.degrades.push_back(DegradeSpec{10 * kSec, 90 * kSec, -1, 3.0});
  loss.speculation = true;
  out.push_back(std::move(loss));

  // Aggressive thresholds: everything is suspicious, nothing may wedge.
  Scenario twitchy;
  twitchy.label = "twitchy detector";
  twitchy.faults = gray_base();
  twitchy.faults.suspect_phi = 0.5;
  twitchy.faults.dead_phi = 6.0;
  twitchy.faults.degrades.push_back(DegradeSpec{5 * kSec, 120 * kSec, -1, 3.0});
  twitchy.faults.partitions.push_back(PartitionSpec{30 * kSec, 40 * kSec, -1});
  twitchy.speculation = true;
  twitchy.expect_suspicions = true;
  twitchy.expect_dropped_heartbeats = true;
  out.push_back(std::move(twitchy));

  Scenario lazy;
  lazy.label = "lazy detector";
  lazy.faults = gray_base();
  lazy.faults.suspect_phi = 3.0;
  lazy.faults.dead_phi = 16.0;
  lazy.faults.partitions.push_back(PartitionSpec{20 * kSec, 32 * kSec, -1});
  lazy.expect_dropped_heartbeats = true;
  out.push_back(std::move(lazy));

  Scenario fast_hb;
  fast_hb.label = "200ms heartbeats + partition";
  fast_hb.faults = gray_base();
  fast_hb.faults.heartbeat_interval = 200 * kMsec;
  // 2 s of silence = 10 intervals: far past suspect_phi, shy of dead_phi.
  fast_hb.faults.partitions.push_back(PartitionSpec{20 * kSec, 22 * kSec, -1});
  fast_hb.expect_suspicions = true;
  fast_hb.expect_dropped_heartbeats = true;
  out.push_back(std::move(fast_hb));

  Scenario everything;
  everything.label = "kitchen sink";
  everything.faults = gray_base();
  everything.faults.partitions.push_back(PartitionSpec{20 * kSec, 32 * kSec, 0});
  everything.faults.degrades.push_back(DegradeSpec{10 * kSec, 80 * kSec, -1, 3.0});
  everything.faults.crashes.push_back(ExecutorCrashSpec{50 * kSec, -1});
  everything.faults.task_fail_prob = 0.02;
  everything.faults.blacklist_threshold = 3;
  everything.faults.block_loss_per_gb_hour = 10.0;
  everything.faults.block_loss_interval = 2 * kSec;
  everything.speculation = true;
  everything.expect_suspicions = true;
  everything.expect_dropped_heartbeats = true;
  out.push_back(std::move(everything));

  return out;
}

/// Two-rack gray cluster: small enough that 50+ scenarios run fast,
/// partitioned-rack fetches actually cross racks.
SimConfig gray_cluster() {
  SimConfig config = paper_testbed();
  config.topology.racks = 2;
  config.topology.nodes_per_rack = 3;
  config.topology.executors_per_node = 2;
  config.topology.cores_per_executor = Cpus{4};
  config.topology.cache_bytes_per_executor = 256 * kMiB;
  config.hdfs.replication = 2;
  return config;
}

void check(bool ok, const std::string& scenario, const std::string& what) {
  if (ok) return;
  std::cerr << "FAILED [" << scenario << "]: " << what << "\n";
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "Extension — gray-failure tolerance (suspicion, partitions, "
      "blacklisting, re-replication)",
      "partial failures (silent racks, slow executors) degrade JCT "
      "gracefully: suspects are sidelined and their sole-copy blocks "
      "re-replicated, recoveries are cheap, and every scenario drains "
      "to a quiescent cluster with consistent block accounting");

  constexpr std::uint64_t kSeeds = 3;
  std::vector<Scenario> cases = scenarios();
  std::size_t limit = cases.size() * kSeeds;
  // dagonlint: allow(nondet-source): bench harness cap, bounds runtime only, not sim state
  if (const char* cap = std::getenv("DAGON_GRAY_SCENARIOS")) {
    limit = static_cast<std::size_t>(std::atoll(cap));
  }

  const Workload w = make_workload(WorkloadId::KMeans, WorkloadScale{0.35});
  const JobProfile profile = exact_profile(w.dag);

  CsvWriter csv(bench::csv_path("ext_gray"),
                {"scenario", "seed", "jct_sec", "suspicions",
                 "false_suspicions", "declared_dead", "heartbeats_dropped",
                 "deferred_reports", "stalled_fetches", "degraded_launches",
                 "blacklist_entries", "blacklist_exits", "rereplications",
                 "rereplicated_bytes", "executor_crashes", "retries"});
  CsvWriter per_csv(bench::csv_path("ext_gray_executors"),
                    {"scenario", "seed", "exec", "crashes", "transient",
                     "suspicions", "false_suspicions", "blacklist_entries",
                     "blacklist_exits", "rereplicated_blocks",
                     "rereplicated_bytes"});

  TextTable t({"scenario", "mean JCT [s]", "suspected", "false+", "dead",
               "re-repl", "deferred"});
  std::size_t ran = 0;
  for (const Scenario& sc : cases) {
    double jct_sum = 0.0;
    std::int64_t suspicions = 0, false_pos = 0, dead = 0, rerepl = 0,
                 deferred = 0;
    std::uint64_t seeds_run = 0;
    for (std::uint64_t seed = 42; seed < 42 + kSeeds; ++seed) {
      if (ran >= limit) break;
      ++ran;
      ++seeds_run;
      SimConfig config = gray_cluster();
      config.seed = seed;
      config.faults = sc.faults;
      config.speculation.enabled = sc.speculation;
      SimDriver driver(w.dag, profile, config);
      // run() ends with verify_quiescent(): cores returned, no attempt
      // running, suspect flags consistent — a wedged scenario throws.
      const RunMetrics m = driver.run();
      const FaultStats& f = m.faults;

      check(m.jct > SimTime{0}, sc.label, "run did not complete");
      check(f.false_suspicions <= f.suspicions, sc.label,
            "more recoveries than suspicions");
      check(f.blacklist_exits <= f.blacklist_entries, sc.label,
            "more blacklist exits than entries");
      if (sc.expect_suspicions) {
        check(f.suspicions > 0, sc.label, "expected suspicions");
      }
      if (sc.expect_dropped_heartbeats) {
        check(f.heartbeats_dropped > 0, sc.label,
              "expected dropped heartbeats");
      }
      check((f.executors_declared_dead > 0) == sc.expect_declared_dead,
            sc.label, "declared-dead expectation violated");

      // Block accounting: no memory copy may be attributed to a dead
      // executor, and per-executor counters must sum to the globals.
      for (const Rdd& rdd : w.dag.rdds()) {
        for (std::int32_t k = 0; k < rdd.num_partitions; ++k) {
          for (const ExecutorId holder :
               driver.master().memory_holders(BlockId{rdd.id, k})) {
            check(driver.state().executor(holder).alive(), sc.label,
                  "memory copy held by a dead executor");
          }
        }
      }
      FaultStats::PerExecutor sum;
      for (const auto& pe : f.per_executor) {
        sum.crashes += pe.crashes;
        sum.transient_failures += pe.transient_failures;
        sum.suspicions += pe.suspicions;
        sum.false_suspicions += pe.false_suspicions;
        sum.blacklist_entries += pe.blacklist_entries;
        sum.blacklist_exits += pe.blacklist_exits;
        sum.rereplicated_blocks += pe.rereplicated_blocks;
        sum.rereplicated_bytes += pe.rereplicated_bytes;
      }
      check(sum.crashes == f.executor_crashes, sc.label,
            "per-executor crash counters diverge");
      check(sum.transient_failures == f.transient_failures, sc.label,
            "per-executor transient counters diverge");
      check(sum.suspicions == f.suspicions &&
                sum.false_suspicions == f.false_suspicions,
            sc.label, "per-executor suspicion counters diverge");
      check(sum.blacklist_entries == f.blacklist_entries &&
                sum.blacklist_exits == f.blacklist_exits,
            sc.label, "per-executor blacklist counters diverge");
      check(sum.rereplicated_blocks == f.proactive_rereplications &&
                sum.rereplicated_bytes == f.rereplicated_bytes,
            sc.label, "per-executor re-replication counters diverge");

      // dagonlint: allow(float-accum): report-only mean over a fixed deterministic run order
      jct_sum += to_seconds(m.jct);
      suspicions += f.suspicions;
      false_pos += f.false_suspicions;
      dead += f.executors_declared_dead;
      rerepl += f.proactive_rereplications;
      deferred += f.deferred_reports;
      csv.add_row({sc.label, std::to_string(seed),
                   TextTable::num(to_seconds(m.jct), 2),
                   std::to_string(f.suspicions),
                   std::to_string(f.false_suspicions),
                   std::to_string(f.executors_declared_dead),
                   std::to_string(f.heartbeats_dropped),
                   std::to_string(f.deferred_reports),
                   std::to_string(f.partition_stalled_fetches),
                   std::to_string(f.degraded_launches),
                   std::to_string(f.blacklist_entries),
                   std::to_string(f.blacklist_exits),
                   std::to_string(f.proactive_rereplications),
                   std::to_string(f.rereplicated_bytes.count()),
                   std::to_string(f.executor_crashes),
                   std::to_string(f.retries)});
      for (std::size_t e = 0; e < f.per_executor.size(); ++e) {
        const auto& pe = f.per_executor[e];
        if (!pe.any()) continue;
        per_csv.add_row({sc.label, std::to_string(seed), std::to_string(e),
                         std::to_string(pe.crashes),
                         std::to_string(pe.transient_failures),
                         std::to_string(pe.suspicions),
                         std::to_string(pe.false_suspicions),
                         std::to_string(pe.blacklist_entries),
                         std::to_string(pe.blacklist_exits),
                         std::to_string(pe.rereplicated_blocks),
                         std::to_string(pe.rereplicated_bytes.count())});
      }
    }
    if (seeds_run == 0) continue;
    t.add_row({sc.label,
               TextTable::num(jct_sum / static_cast<double>(seeds_run), 1),
               std::to_string(suspicions), std::to_string(false_pos),
               std::to_string(dead), std::to_string(rerepl),
               std::to_string(deferred)});
  }
  t.print(std::cout);
  std::cout << "\n" << ran << " scenarios drained to quiescence with "
            << "consistent block accounting\n"
            << "CSV: " << bench::csv_path("ext_gray") << ", "
            << bench::csv_path("ext_gray_executors") << "\n";
  return 0;
}
