// Tail-tolerance ablation: heavy-tailed task durations on a
// heterogeneous cluster, with the tail defenses switched off one at a
// time (BENCH_tail.json).
//
// Cluster: the 18-node testbed with a quarter of the executors 2x slow
// and a quarter 2x fast (tier membership from a dedicated RNG stream).
// Load: a Poisson stream of KMeans jobs over one shared cluster, so
// per-job JCTs give a real latency distribution per point. Injection:
// each attempt independently draws an 8x duration multiplier with
// probability p (the heavy-tail intensity axis).
//
// Variants:
//   full            Dagon + hedged speculation (cancel-on-first-finish)
//                   + critical-path escalation onto the fast tier
//   no-hedging      speculation disabled entirely
//   no-escalation   hedging on, critical-path escalation off
//   no-dag-priority stock-Spark scheduling — FIFO across jobs and
//                   stages, native delay (tail defenses stay on)
//
// Reported per (variant, intensity): pooled per-job JCT p50/p95/p99,
// wasted core-seconds (work burned on cancelled attempts — the price of
// hedging), hedge and escalation counts. Acceptance: under the heaviest
// tail, `full` must not lose to `no-hedging` on JCT p95 — hedging has
// to buy back at least the tail it was built for.
//
// --quick shrinks the grid to the heaviest intensity and one seed.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace dagon;

namespace {

constexpr double kHeavyTailMult = 8.0;
constexpr double kArrivalRate = 0.5;  // jobs/sec

struct Variant {
  std::string name;
  bool dagon = true;    // Dagon priority vs FIFO/native
  bool hedge = true;    // hedged speculation with cancellation
  bool escalate = true; // critical-path escalation to the fast tier
};

SimConfig make_tail_config(const Variant& v, double tail_prob,
                           std::uint64_t seed) {
  SimConfig config = bench::bench_testbed();
  config.seed = seed;
  if (v.dagon) {
    config.scheduler = SchedulerKind::Dagon;
    config.cache = CachePolicyKind::Lrp;
    config.delay = DelayKind::SensitivityAware;
  } else {
    config.scheduler = SchedulerKind::Fifo;
    config.cache = CachePolicyKind::Lrp;
    config.delay = DelayKind::Native;
  }
  config.tail.tiers.push_back(SimConfig::ExecTier{"slow", 0.25, 2.0});
  config.tail.tiers.push_back(SimConfig::ExecTier{"fast", 0.25, 0.5});
  config.tail.escalate = v.escalate;
  config.tail.escalation_wait = 2 * kSec;
  if (tail_prob > 0.0) {
    config.faults.enabled = true;
    config.faults.heavy_tail_prob = tail_prob;
    config.faults.heavy_tail_mult = kHeavyTailMult;
  }
  config.speculation.enabled = v.hedge;
  config.speculation.hedge = v.hedge;
  return config;
}

struct TailPoint {
  std::string variant;
  double tail_prob = 0.0;
  std::vector<double> jct_sec;  // pooled per-job JCTs across seeds
  double jct_p50 = 0.0;
  double jct_p95 = 0.0;
  double jct_p99 = 0.0;
  double wasted_core_sec = 0.0;
  std::int64_t hedges_launched = 0;
  std::int64_t hedges_won = 0;
  std::int64_t escalations = 0;
  std::int64_t heavy_tail_injections = 0;
  std::uint64_t fingerprint = 0;  // first seed's run
};

double percentile(std::vector<double> v, double p) {
  DAGON_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  // dagonlint: allow(narrowing-cast): report-only percentile rank, not a unit quantity
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(v.size())));
  return v[std::min(v.size() - 1, rank == 0 ? 0 : rank - 1)];
}

/// Runs one (variant, intensity) cell across `seeds`, pooling the
/// per-job JCT samples. Asserts the hedge-accounting invariants on
/// every run.
TailPoint run_point(const Variant& v, double tail_prob,
                    std::int32_t jobs,
                    const std::vector<std::uint64_t>& seeds) {
  TailPoint out;
  out.variant = v.name;
  out.tail_prob = tail_prob;
  for (std::size_t si = 0; si < seeds.size(); ++si) {
    std::vector<Workload> instances;
    instances.reserve(static_cast<std::size_t>(jobs));
    for (std::int32_t j = 0; j < jobs; ++j) {
      Workload w = make_workload(WorkloadId::KMeans, WorkloadScale{0.3});
      w.name += "#" + std::to_string(j);
      instances.push_back(std::move(w));
    }
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Poisson;
    spec.rate_per_sec = kArrivalRate;
    spec.seed = seeds[si];
    ServingOptions so;
    // DAG-priority off means stock Spark end to end: FIFO across jobs
    // as well as FIFO stage selection below.
    so.fair_share = v.dagon;
    ServingWorkload sw = make_serving(instances, spec, so);
    SimConfig config = make_tail_config(v, tail_prob, seeds[si]);
    config.serving = sw.serving;

    const RunMetrics m = run_workload(sw.batch.combined, config).metrics;
    if (si == 0) out.fingerprint = metrics_fingerprint(m);

    // Hedge-accounting invariants (the driver already verified
    // quiescence and zero FSM breaches before returning).
    DAGON_CHECK_MSG(m.hedge.hedges_won <= m.hedge.hedges_launched,
                    "more hedges won than launched");
    DAGON_CHECK_MSG(m.hedge.wasted_core_us >= CpuWork{0},
                    "negative wasted core time");
    if (!v.hedge) {
      DAGON_CHECK_MSG(m.hedge.hedges_launched == 0 &&
                          m.hedge.hedges_cancelled == 0,
                      "hedge counters moved with hedging disabled");
    }
    std::int64_t cancelled = 0;
    for (const TaskRecord& t : m.tasks) cancelled += t.cancelled ? 1 : 0;
    if (v.hedge) {
      DAGON_CHECK_MSG(cancelled == m.hedge.hedges_cancelled,
                      "cancelled task records disagree with HedgeStats");
    }
    for (const JobStats& j : m.jobs) {
      DAGON_CHECK_MSG(j.finished >= j.submitted,
                      "job '" << j.name << "' did not quiesce");
      out.jct_sec.push_back(to_seconds(j.jct()));
    }
    // dagonlint: allow(float-accum): report-only mean over a fixed deterministic run order
    out.wasted_core_sec += m.hedge.wasted_core_seconds();
    out.hedges_launched += m.hedge.hedges_launched;
    out.hedges_won += m.hedge.hedges_won;
    out.escalations += m.hedge.escalations;
    out.heavy_tail_injections += m.faults.heavy_tail_injections;
  }
  out.jct_p50 = percentile(out.jct_sec, 50.0);
  out.jct_p95 = percentile(out.jct_sec, 95.0);
  out.jct_p99 = percentile(out.jct_sec, 99.0);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "TAIL — hedged speculation and escalation under heavy-tailed "
      "stragglers",
      "cancellation-on-first-finish hedging and critical-path escalation "
      "bound the JCT tail on a heterogeneous cluster at a measured "
      "wasted-work cost");

  const std::vector<Variant> variants = {
      {"full", true, true, true},
      {"no-hedging", true, false, true},
      {"no-escalation", true, true, false},
      {"no-dag-priority", false, true, true},
  };
  std::vector<double> tail_probs = {0.0, 0.05, 0.15};
  std::int32_t jobs = 8;
  std::vector<std::uint64_t> seeds = {42, 43, 44};
  if (bench::options().quick) {
    tail_probs = {0.15};
    jobs = 4;
    seeds = {42};
  }

  TextTable table({"variant", "tail p", "JCT p50 [s]", "JCT p95 [s]",
                   "JCT p99 [s]", "wasted core-s", "hedges (won)",
                   "escalations"});
  std::vector<TailPoint> points;
  for (const double prob : tail_probs) {
    for (const Variant& v : variants) {
      TailPoint p = run_point(v, prob, jobs, seeds);
      table.add_row(
          {p.variant, TextTable::num(prob, 2),
           TextTable::num(p.jct_p50, 1), TextTable::num(p.jct_p95, 1),
           TextTable::num(p.jct_p99, 1),
           TextTable::num(p.wasted_core_sec, 1),
           std::to_string(p.hedges_launched) + " (" +
               std::to_string(p.hedges_won) + ")",
           std::to_string(p.escalations)});
      points.push_back(std::move(p));
    }
  }
  table.print(std::cout);

  // Headline acceptance: under the heaviest tail, hedging must buy back
  // tail latency — `full` cannot lose to `no-hedging` on JCT p95.
  const double heavy = tail_probs.back();
  double full_p95 = 0.0, nohedge_p95 = 0.0, full_wasted = 0.0;
  for (const TailPoint& p : points) {
    if (p.tail_prob != heavy) continue;
    if (p.variant == "full") {
      full_p95 = p.jct_p95;
      full_wasted = p.wasted_core_sec;
    }
    if (p.variant == "no-hedging") nohedge_p95 = p.jct_p95;
  }
  std::cout << "\nheaviest tail (p=" << TextTable::num(heavy, 2)
            << "): full JCT p95 " << TextTable::num(full_p95, 1)
            << "s vs no-hedging " << TextTable::num(nohedge_p95, 1)
            << "s, for " << TextTable::num(full_wasted, 1)
            << " wasted core-seconds\n";
  DAGON_CHECK_MSG(full_p95 <= nohedge_p95,
                  "hedging must not lose to no-hedging on JCT p95 under "
                  "the heaviest tail");

  const std::string json_path = bench::out_path("BENCH_tail.json");
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"quick\": " << (bench::options().quick ? "true" : "false")
       << ",\n"
       << "  \"workload\": \"Poisson stream of KMeans(scale 0.3) jobs, "
          "fair-share, one shared cluster\",\n"
       << "  \"tiers\": \"slow:0.25:2.0,fast:0.25:0.5\",\n"
       << "  \"heavy_tail_mult\": " << kHeavyTailMult << ",\n"
       << "  \"arrival_rate_per_sec\": " << kArrivalRate << ",\n"
       << "  \"fair_share\": \"all variants except no-dag-priority\",\n"
       << "  \"jobs_per_run\": " << jobs << ",\n"
       << "  \"seeds\": " << seeds.size() << ",\n"
       << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const TailPoint& p = points[i];
    char fp[32];
    std::snprintf(fp, sizeof fp, "%016" PRIx64, p.fingerprint);
    json << "    {\"variant\": \"" << p.variant
         << "\", \"heavy_tail_prob\": " << p.tail_prob
         << ", \"jct_p50_sec\": " << p.jct_p50
         << ", \"jct_p95_sec\": " << p.jct_p95
         << ", \"jct_p99_sec\": " << p.jct_p99
         << ", \"wasted_core_seconds\": " << p.wasted_core_sec
         << ", \"hedges_launched\": " << p.hedges_launched
         << ", \"hedges_won\": " << p.hedges_won
         << ", \"escalations\": " << p.escalations
         << ", \"heavy_tail_injections\": " << p.heavy_tail_injections
         << ", \"fingerprint\": \"" << fp << "\"}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "JSON: " << json_path << "\n";
  return 0;
}
