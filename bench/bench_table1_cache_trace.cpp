// Table I reproduction: accessed and cached data blocks for the Fig. 1
// DAG under {FIFO, DAG-aware} schedules × {LRU, MRD, LRP} caching, with
// a 3-block cache.
//
// Paper totals: FIFO — LRU 7, MRD 12; DAG-aware — LRU 5, MRD 8 (LRP is
// not in the paper's table; it recovers the full 12 here). Our trace
// engine orders same-instant accesses with a strict access clock, which
// shifts LRU's tie-breaks (see EXPERIMENTS.md).
#include "bench_util.hpp"
#include "common/csv.hpp"

using namespace dagon;

namespace {

void print_trace(const JobDag& dag, const char* schedule_name,
                 const std::vector<TraceLaunch>& schedule,
                 CachePolicyKind kind, CsvWriter& csv) {
  const CacheTraceResult result = run_cache_trace(dag, schedule, kind, 3);
  std::cout << "-- " << schedule_name << " + " << cache_policy_name(kind)
            << " --\n";
  TextTable t({"time", "launched", "accessed (hit*)", "cache after",
               "hits"});
  for (const TraceRow& row : result.rows) {
    std::string accessed;
    for (const auto& [block, hit] : row.accesses) {
      if (!accessed.empty()) accessed += ",";
      accessed += block_label(dag, block) + (hit ? "*" : "");
    }
    std::string cache;
    for (const BlockId& b : row.cache_after) {
      if (!cache.empty()) cache += ",";
      cache += block_label(dag, b);
    }
    t.add_row({std::to_string(row.time / kMinute), row.launched, accessed,
               cache, std::to_string(row.hits)});
    csv.add_row({schedule_name, cache_policy_name(kind),
                 std::to_string(row.time / kMinute), accessed, cache,
                 std::to_string(row.hits)});
  }
  t.print(std::cout);
  std::cout << "total hits: " << result.total_hits << " / "
            << result.total_accesses << " accesses\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "Table I — accessed and cached data blocks (Fig. 1 DAG, 3-block "
      "cache)",
      "LRU 7 and MRD 12 hits under FIFO; LRU 5 and MRD 8 under the "
      "DAG-aware schedule — MRD mispredicts once the execution order "
      "stops being stage-id order, and only a priority-aware policy "
      "recovers");

  const Workload w = make_example_dag();
  CsvWriter csv(bench::csv_path("table1_cache_trace"),
                {"schedule", "policy", "minute", "accessed", "cache",
                 "hits"});

  const auto fifo = fifo_fig1_schedule(kMinute);
  const auto dag_aware = dag_aware_fig1_schedule(kMinute);

  print_trace(w.dag, "FIFO", fifo, CachePolicyKind::Lru, csv);
  print_trace(w.dag, "FIFO", fifo, CachePolicyKind::Mrd, csv);
  print_trace(w.dag, "DAG-aware", dag_aware, CachePolicyKind::Lru, csv);
  print_trace(w.dag, "DAG-aware", dag_aware, CachePolicyKind::Mrd, csv);
  print_trace(w.dag, "DAG-aware", dag_aware, CachePolicyKind::Lrp, csv);

  TextTable summary({"schedule", "LRU", "MRD", "LRP"});
  auto hits = [&](const std::vector<TraceLaunch>& s, CachePolicyKind k) {
    return std::to_string(run_cache_trace(w.dag, s, k, 3).total_hits);
  };
  summary.add_row({"FIFO (paper: LRU 7, MRD 12)",
                   hits(fifo, CachePolicyKind::Lru),
                   hits(fifo, CachePolicyKind::Mrd),
                   hits(fifo, CachePolicyKind::Lrp)});
  summary.add_row({"DAG-aware (paper: LRU 5, MRD 8)",
                   hits(dag_aware, CachePolicyKind::Lru),
                   hits(dag_aware, CachePolicyKind::Mrd),
                   hits(dag_aware, CachePolicyKind::Lrp)});
  std::cout << "summary (total cache hits):\n";
  summary.print(std::cout);
  std::cout << "CSV: " << bench::csv_path("table1_cache_trace") << "\n";
  return 0;
}
