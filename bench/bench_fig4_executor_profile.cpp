// Fig. 4 reproduction: pending-task counts and resource-usage profiles
// for two contrasting executors under the default 3s locality wait.
//
// Paper: during stage 0, executor A runs out of node-local pending tasks
// by the 12th second and sits idle until the 24th while executor B (on a
// hot node) keeps launching node-local work and refreshing the wait
// timer; the same repeats during stage 16.
#include <algorithm>

#include "bench_util.hpp"
#include "common/csv.hpp"

using namespace dagon;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "Fig. 4 — pending tasks and executor usage under 3s delay "
      "(case-study cluster)",
      "executors on block-poor nodes idle for tens of seconds during the "
      "scan stages because the taskset's wait timer keeps being "
      "refreshed by node-local launches elsewhere");

  KMeansParams params;
  params.iterations = 15;
  const Workload w = make_kmeans(params);

  SimConfig config = case_study_cluster();
  config.per_executor_profiles = true;
  const RunMetrics m = run_workload(w, config).metrics;

  // Pick the executor with the least busy time (A: starved) and the most
  // (B: on a hot node).
  const ExecutorProfile* exec_a = nullptr;
  const ExecutorProfile* exec_b = nullptr;
  for (const ExecutorProfile& p : m.executor_profiles) {
    const double busy = p.busy_cores.integral(SimTime{0}, m.jct);
    if (!exec_a ||
        busy < exec_a->busy_cores.integral(SimTime{0}, m.jct)) {
      exec_a = &p;
    }
    if (!exec_b ||
        busy > exec_b->busy_cores.integral(SimTime{0}, m.jct)) {
      exec_b = &p;
    }
  }

  CsvWriter csv(bench::csv_path("fig4_executor_profile"),
                {"executor", "time_sec", "pending_node_local",
                 "pending_rack_local", "busy_cores"});

  for (const auto& [label, prof] :
       {std::pair<const char*, const ExecutorProfile*>{"A (starved)",
                                                       exec_a},
        {"B (hot node)", exec_b}}) {
    std::cout << "executor " << label << " (id " << prof->id << ")\n";
    std::cout << "  busy vCPUs (0.." << bench::seconds(m.jct)
              << "s):  " << sparkline(prof->busy_cores, SimTime{0}, m.jct, 60, 4.0)
              << "\n";
    // Pending counts sampled every tick; print a compressed table.
    TextTable t({"t (s)", "pending node-local", "pending rack-local",
                 "busy vCPUs"});
    const std::size_t stride =
        std::max<std::size_t>(1, prof->pending.size() / 24);
    for (std::size_t i = 0; i < prof->pending.size(); i += stride) {
      const PendingSample& s = prof->pending[i];
      t.add_row({bench::seconds(s.time), std::to_string(s.node_local),
                 std::to_string(s.rack_local),
                 TextTable::num(prof->busy_cores.at(s.time), 0)});
      csv.add_row({label, TextTable::num(to_seconds(s.time), 1),
                   std::to_string(s.node_local),
                   std::to_string(s.rack_local),
                   TextTable::num(prof->busy_cores.at(s.time), 0)});
    }
    t.print(std::cout);

    // Idle windows of >= 2s with the job still running.
    std::cout << "  idle windows (>=2s): ";
    bool any = false;
    SimTime idle_start{-1};
    for (const auto& point : prof->busy_cores.points()) {
      if (point.value == 0.0 && idle_start < SimTime{0}) idle_start = point.time;
      if (point.value > 0.0 && idle_start >= SimTime{0}) {
        if (point.time - idle_start >= 2 * kSec) {
          std::cout << "[" << bench::seconds(idle_start) << "s, "
                    << bench::seconds(point.time) << "s] ";
          any = true;
        }
        idle_start = SimTime{-1};
      }
    }
    std::cout << (any ? "\n\n" : "none\n\n");
  }
  std::cout << "CSV: " << bench::csv_path("fig4_executor_profile") << "\n";
  return 0;
}
