// Scalability harness: how far past the paper's 18-node testbed does
// the event core go? Sweeps cluster size and task count together up to
// 10,000 executors / 1,000,000 tasks and records, per point:
//
//   wall-clock seconds, simulator events/sec, peak RSS, simulated JCT,
//   and the metrics fingerprint (so a rerun can assert determinism).
//
// The workload is a deliberately scheduler-bound three-stage DAG:
//
//   src (32 HDFS partitions) --narrow--> prep (32 tasks)
//                                          |
//                                        shuffle
//                                          v
//                                        fan (N tasks, zero output)
//
// The fan stage carries the task count. It is a pure-shuffle consumer,
// so every decision exercises the NO_PREF fast path plus the free-slot
// executor index — the hot path this PR rebuilt — rather than the
// locality memo (whose per-stage table is capped; see
// LocalityCache::kMaxMemoSlots). Keeping the shuffle *parent* at 32
// partitions matters: JobDag::task_inputs enumerates every parent
// partition per consumer task, so a wide parent would turn input
// assembly itself into the bottleneck being measured.
//
// Each point runs in a forked child process and pipes its result back,
// so every "peak RSS" is that point's own high-water mark. (ru_maxrss
// is monotone for the life of a process: sampling it after each point
// in one process reports the LARGEST point so far, not the current one
// — ascending order only masked the bug, it did not fix it.) When fork
// is unavailable the harness falls back to in-process runs and the JSON
// labels the RSS numbers as cumulative. Prefetch is off (its scan is
// O(executors) per tick and belongs to the cache plane, not the event
// core being measured).
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "bench_util.hpp"

using namespace dagon;

namespace {

struct ScalePoint {
  std::int32_t racks = 0;
  std::int32_t nodes_per_rack = 0;
  std::int32_t fan_tasks = 0;
};

struct ScaleResult {
  std::int32_t executors = 0;
  Cpus total_cores{};
  std::int64_t tasks = 0;
  std::int64_t sim_events = 0;
  double wall_sec = 0.0;
  double events_per_sec = 0.0;
  double jct_sec = 0.0;
  double peak_rss_mb = 0.0;
  std::uint64_t fingerprint = 0;
};

constexpr std::int32_t kParents = 32;

Workload make_scale_workload(std::int32_t fan_tasks) {
  JobDagBuilder b("scale_fan_" + std::to_string(fan_tasks));
  const RddId src = b.input_rdd("src", kParents, 64 * kMiB);
  const StageId prep = b.add_stage({.name = "prep",
                                    .inputs = {{src, DepKind::Narrow}},
                                    .num_tasks = kParents,
                                    .task_cpus = Cpus{1},
                                    .task_duration = 2 * kSec,
                                    .output_bytes_per_partition = 64 * kMiB});
  b.add_stage({.name = "fan",
               .inputs = {{b.output_of(prep), DepKind::Shuffle}},
               .num_tasks = fan_tasks,
               .task_cpus = Cpus{1},
               .task_duration = 5 * kSec,
               .output_bytes_per_partition = Bytes{0},
               .cache_output = false});
  Workload w;
  w.name = "scale_fan_" + std::to_string(fan_tasks);
  w.category = WorkloadCategory::Mixed;
  w.dag = b.build();
  return w;
}

SimConfig make_scale_config(const ScalePoint& p) {
  SimConfig config = bench::bench_testbed();
  config.topology.racks = p.racks;
  config.topology.nodes_per_rack = p.nodes_per_rack;
  config.topology.executors_per_node = 4;
  config.topology.cores_per_executor = Cpus{4};
  config.topology.cache_bytes_per_executor = 256 * kMiB;
  config.prefetch_enabled = false;
  config.incremental_scheduling = true;
  return config;
}

double peak_rss_mb_now() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  // ru_maxrss is KiB on Linux.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// True when the per-point RSS numbers came from isolated child
/// processes (accurate) rather than one cumulative process.
std::atomic<bool> g_forked_rss{true};

ScaleResult run_point(const ScalePoint& p) {
  const Workload w = make_scale_workload(p.fan_tasks);
  const SimConfig config = make_scale_config(p);

  const auto start = std::chrono::steady_clock::now();
  const RunResult result = run_workload(w, config);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ScaleResult r;
  r.executors = p.racks * p.nodes_per_rack * 4;
  r.total_cores = Cpus{r.executors * 4};
  r.tasks = static_cast<std::int64_t>(p.fan_tasks) + kParents;
  r.sim_events = result.metrics.sim_events;
  r.wall_sec = wall;
  r.events_per_sec =
      wall > 0.0 ? static_cast<double>(r.sim_events) / wall : 0.0;
  r.jct_sec = to_seconds(result.metrics.jct);
  r.peak_rss_mb = peak_rss_mb_now();
  r.fingerprint = metrics_fingerprint(result.metrics);
  return r;
}

/// Runs the point in a forked child and pipes the (trivially copyable)
/// result back, so ru_maxrss — monotone per process — reflects only
/// this point. Falls back to in-process on fork/pipe failure.
ScaleResult run_point_isolated(const ScalePoint& p) {
  static_assert(std::is_trivially_copyable_v<ScaleResult>);
  int fd[2];
  if (pipe(fd) != 0) {
    g_forked_rss = false;
    return run_point(p);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(fd[0]);
    close(fd[1]);
    g_forked_rss = false;
    return run_point(p);
  }
  if (pid == 0) {
    close(fd[0]);
    const ScaleResult r = run_point(p);
    ssize_t left = sizeof r;
    const char* src = reinterpret_cast<const char*>(&r);
    while (left > 0) {
      const ssize_t n = write(fd[1], src, static_cast<std::size_t>(left));
      if (n <= 0) _exit(1);
      src += n;
      left -= n;
    }
    close(fd[1]);
    _exit(0);
  }
  close(fd[1]);
  ScaleResult r;
  ssize_t got = 0;
  char* dst = reinterpret_cast<char*>(&r);
  while (got < static_cast<ssize_t>(sizeof r)) {
    const ssize_t n = read(fd[0], dst + got, sizeof r - got);
    if (n <= 0) break;
    got += n;
  }
  close(fd[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != static_cast<ssize_t>(sizeof r) || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    // Child died before reporting: rerun here so the sweep completes.
    g_forked_rss = false;
    return run_point(p);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "SCALE — event-core throughput vs cluster and task-count size",
      "the bucketed event queue, SoA task state, and free-slot executor "
      "index keep per-decision cost sublinear in cluster size, so the "
      "simulator sustains 10k executors / 1M tasks in one process");

  // Executors = racks x nodes_per_rack x 4.
  std::vector<ScalePoint> points = {
      {2, 9, 10'000},       //    72 executors (the paper testbed shape)
      {5, 5, 10'000},       //   100 executors
      {5, 50, 100'000},     // 1,000 executors
  };
  if (!bench::options().quick) {
    points.push_back({8, 125, 400'000});    //  4,000 executors
    points.push_back({10, 250, 1'000'000});  // 10,000 executors / ~1M tasks
  }

  TextTable table({"executors", "cores", "tasks", "events", "wall [s]",
                   "events/sec", "JCT [s]", "peak RSS [MB]"});
  std::vector<ScaleResult> results;
  results.reserve(points.size());
  for (const ScalePoint& p : points) {
    const ScaleResult r = run_point_isolated(p);
    results.push_back(r);
    table.add_row({std::to_string(r.executors),
                   std::to_string(r.total_cores.count()), std::to_string(r.tasks),
                   std::to_string(r.sim_events),
                   TextTable::num(r.wall_sec, 2),
                   TextTable::num(r.events_per_sec, 0),
                   TextTable::num(r.jct_sec, 1),
                   TextTable::num(r.peak_rss_mb, 1)});
    std::cout << "done: " << r.executors << " executors / " << r.tasks
              << " tasks in " << TextTable::num(r.wall_sec, 2) << "s\n";
  }
  std::cout << "\n";
  table.print(std::cout);

  const std::string json_path = bench::out_path("BENCH_scale.json");
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"quick\": " << (bench::options().quick ? "true" : "false")
       << ",\n"
       << "  \"workload\": \"src(32 HDFS parts) ->narrow prep(32) "
          "->shuffle fan(N, zero-output)\",\n"
       << "  \"prefetch_enabled\": false,\n"
       << "  \"incremental_scheduling\": true,\n"
       << "  \"peak_rss_note\": \""
       << (g_forked_rss
               ? "each point ran in its own forked child process, so "
                 "peak_rss_mb is that point's true high-water mark"
               : "fork unavailable: points ran in one process, so "
                 "peak_rss_mb is CUMULATIVE (ru_maxrss is monotone) and "
                 "upper-bounds each point by the largest so far")
       << "\",\n"
       << "  \"points\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    char fp[32];
    std::snprintf(fp, sizeof fp, "%016" PRIx64, r.fingerprint);
    json << "    {\"executors\": " << r.executors
         << ", \"total_cores\": " << r.total_cores
         << ", \"tasks\": " << r.tasks
         << ", \"sim_events\": " << r.sim_events
         << ", \"wall_sec\": " << r.wall_sec
         << ", \"events_per_sec\": " << r.events_per_sec
         << ", \"jct_sec\": " << r.jct_sec
         << ", \"peak_rss_mb\": " << r.peak_rss_mb
         << ", \"fingerprint\": \"" << fp << "\"}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nJSON: " << json_path << "\n";
  return 0;
}
