// Ablation: speculative execution (§IV).
//
// The paper's tweak targets "a long tail task due to high parallelism
// or low locality": the copy goes to an executor with free resources
// close to the input data. We exercise exactly that regime — KMeans
// with delay scheduling disabled, where iteration tasks get stolen at
// rack level and run ~9x slow — plus ShortestPaths, whose stragglers
// are intrinsic (skewed task durations) and therefore NOT helped by a
// copy: speculation must pay for itself only where relocation wins.
#include "bench_util.hpp"
#include "common/csv.hpp"

using namespace dagon;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "Ablation — speculative execution on straggler-prone stages",
      "a long-tail task due to high parallelism or low locality gets a "
      "speculative copy close to its input data (§IV)");

  CsvWriter csv(bench::csv_path("ablation_speculation"),
                {"workload", "speculation", "jct_sec", "speculative",
                 "cancelled"});

  for (const WorkloadId id :
       {WorkloadId::KMeans, WorkloadId::ShortestPaths}) {
    const Workload w = make_workload(id, WorkloadScale{1.0});
    TextTable t({"speculation", "JCT [s]", "speculative launches",
                 "cancelled attempts"});
    for (const bool enabled : {false, true}) {
      SimConfig config = case_study_cluster();
      if (id == WorkloadId::KMeans) {
        // Low-locality stragglers: no delay scheduling, so iteration
        // tasks get stolen at rack level and run ~9x slow until a
        // process-local copy rescues them.
        config.waits = LocalityWaits::uniform(SimTime{0});
      }
      config.scheduler = SchedulerKind::Dagon;
      config.cache = CachePolicyKind::Lrp;
      config.speculation.enabled = enabled;
      config.speculation.quantile = 0.6;
      config.speculation.multiplier = 1.5;
      const RunMetrics m = run_workload(w, config).metrics;
      std::int64_t speculative = 0;
      std::int64_t cancelled = 0;
      for (const TaskRecord& task : m.tasks) {
        speculative += task.speculative ? 1 : 0;
        cancelled += task.cancelled ? 1 : 0;
      }
      t.add_row({enabled ? "on" : "off",
                 TextTable::num(to_seconds(m.jct), 1),
                 std::to_string(speculative), std::to_string(cancelled)});
      csv.add_row({workload_name(id), enabled ? "on" : "off",
                   TextTable::num(to_seconds(m.jct), 2),
                   std::to_string(speculative),
                   std::to_string(cancelled)});
    }
    std::cout << workload_name(id) << ":\n";
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "CSV: " << bench::csv_path("ablation_speculation") << "\n";
  return 0;
}
