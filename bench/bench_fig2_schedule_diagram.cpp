// Fig. 2 reproduction: resource scheduling diagrams of the Fig. 1 DAG
// on one 16-vCPU executor under FIFO and under the DAG-aware
// (Dagon/Algorithm 1) assignment, as ASCII Gantt charts over
// (time, vCPUs).
//
// Paper: FIFO wastes 4 vCPUs in [0,4] and fragments [4,13], finishing at
// 13 min; the DAG-aware schedule overlaps the long S2->S3->S4 chain with
// S1 and finishes at 9 min.
#include <algorithm>

#include "bench_util.hpp"
#include "common/csv.hpp"

using namespace dagon;

namespace {

void draw(const JobDag& dag, const char* label, const AssignmentTrace& tr,
          Cpus capacity, CsvWriter& csv) {
  std::cout << "-- " << label << " (makespan "
            << format_duration(tr.makespan) << ", idle "
            << tr.idle_cpu_time / kMinute << " vCPU-min) --\n";

  // One row per vCPU, one column per minute; tasks render as the stage
  // number. Greedy row packing for display only.
  const auto minutes = static_cast<std::size_t>(tr.makespan / kMinute);
  std::vector<std::string> grid(static_cast<std::size_t>(capacity.count()),
                                std::string(minutes, '.'));
  std::vector<SimTime> row_free(static_cast<std::size_t>(capacity.count()),
                                SimTime{0});
  auto placements = tr.placements;
  std::sort(placements.begin(), placements.end(),
            [](const PlacedTask& a, const PlacedTask& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.stage < b.stage;
            });
  for (const PlacedTask& p : placements) {
    // Find `cpus` display rows free at p.start.
    Cpus needed = p.cpus;
    for (std::size_t r = 0; r < grid.size() && needed > Cpus{0}; ++r) {
      if (row_free[r] > p.start) continue;
      for (std::int64_t m = p.start / kMinute; m < p.end / kMinute; ++m) {
        grid[r][static_cast<std::size_t>(m)] =
            static_cast<char>('1' + p.stage.value());
      }
      row_free[r] = p.end;
      --needed;
    }
    csv.add_row({label, std::to_string(p.stage.value() + 1),
                 std::to_string(p.index), std::to_string(p.start / kMinute),
                 std::to_string(p.end / kMinute),
                 std::to_string(p.cpus.count())});
  }
  std::cout << "        minute 0";
  for (std::size_t m = 1; m < minutes; ++m) {
    std::cout << (m % 5 == 0 ? std::to_string(m % 10) : " ");
  }
  std::cout << "\n";
  for (std::size_t r = grid.size(); r-- > 0;) {
    std::cout << "  vCPU " << (r < 9 ? " " : "") << r + 1 << "  "
              << grid[r] << "\n";
  }
  std::cout << "  (digits = stage running on that vCPU; '.' = idle)\n\n";
  (void)dag;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "Fig. 2 — scheduling stages of the Fig. 1 DAG by two schedulers",
      "FIFO: 4 idle vCPUs in [0,4], fragmentation until 13 min. "
      "DAG-aware: full usage in [0,2], overlap of the long chain, done "
      "at 9 min");

  const Workload w = make_example_dag();
  CsvWriter csv(bench::csv_path("fig2_schedule"),
                {"scheduler", "stage", "task", "start_min", "end_min",
                 "cpus"});

  const auto fifo = trace_priority_assignment(w.dag, Cpus{16}, SchedulerKind::Fifo);
  const auto dagon =
      trace_priority_assignment(w.dag, Cpus{16}, SchedulerKind::Dagon);
  draw(w.dag, "FIFO (Fig. 2a)", fifo, Cpus{16}, csv);
  draw(w.dag, "DAG-aware (Fig. 2b)", dagon, Cpus{16}, csv);

  TextTable t({"scheduler", "makespan (min)", "idle vCPU-min",
               "vs lower bound"});
  const SimTime bound = makespan_lower_bound(w.dag, Cpus{16});
  for (const auto& [name, tr] :
       {std::pair<const char*, const AssignmentTrace&>{"FIFO", fifo},
        {"DAG-aware", dagon}}) {
    t.add_row({name, std::to_string(tr.makespan / kMinute),
               std::to_string(tr.idle_cpu_time / kMinute),
               TextTable::num(static_cast<double>(tr.makespan.count()) /
                                  static_cast<double>(bound.count()),
                              2) +
                   "x"});
  }
  t.print(std::cout);
  std::cout << "CSV: " << bench::csv_path("fig2_schedule") << "\n";
  return 0;
}
