// Fig. 3 reproduction: effect of spark.locality.wait on the per-stage
// durations of KMeans (18 stages) on the 7-machine case-study cluster
// with HDFS replication 1.
//
// Paper: without delay, stages 0/16 run 15s/13s and iterations ~3s;
// with the default 3s wait, iterations drop to ~0.7s while stage 0
// grows to 27s and stage 16 to 20s. 1.5s and 5s waits also slow the
// scans by ~60% vs no delay.
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "exp/sweep.hpp"

using namespace dagon;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "Fig. 3 — locality wait vs KMeans stage durations (case-study "
      "cluster, rep=1)",
      "iteration stages are ~15x locality-sensitive (0.7s vs 3s); scan "
      "stages 0/16 are insensitive and only get slower when executors "
      "wait");

  KMeansParams params;
  params.iterations = 15;
  const Workload w = make_kmeans(params);

  const std::vector<std::pair<const char*, SimTime>> waits = {
      {"0s", SimTime{0}},
      {"1.5s", 1500 * kMsec},
      {"3s", 3 * kSec},
      {"5s", 5 * kSec}};

  CsvWriter csv(bench::csv_path("fig3_locality_wait"),
                {"wait", "stage", "name", "duration_sec"});

  std::vector<SweepRun> grid;
  for (const auto& [label, wait] : waits) {
    SimConfig config = case_study_cluster();
    config.waits = LocalityWaits::uniform(wait);
    grid.push_back({std::string("wait=") + label, w, config});
  }
  const SweepReport sweep =
      run_sweep(grid, SweepOptions{bench::options().jobs});
  std::vector<RunMetrics> runs;
  for (const RunResult& r : sweep.runs) runs.push_back(r.metrics);

  TextTable t({"stage", "wait=0s", "wait=1.5s", "wait=3s", "wait=5s"});
  for (const Stage& s : w.dag.stages()) {
    std::vector<std::string> row{std::to_string(s.id.value()) + " (" +
                                 s.name + ")"};
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const double d = runs[i].stage_duration_sec(s.id);
      row.push_back(TextTable::num(d, 2));
      csv.add_row({waits[i].first, std::to_string(s.id.value()), s.name,
                   TextTable::num(d, 3)});
    }
    t.add_row(row);
  }
  t.print(std::cout);

  TextTable summary({"metric", "wait=0s", "wait=1.5s", "wait=3s",
                     "wait=5s"});
  std::vector<std::string> jct{"job completion time (s)"};
  std::vector<std::string> hiloc{"process+node launches"};
  std::vector<std::string> iters{"mean iteration stage (s)"};
  for (const RunMetrics& m : runs) {
    jct.push_back(bench::seconds(m.jct));
    hiloc.push_back(std::to_string(m.locality_count(Locality::Process) +
                                   m.locality_count(Locality::Node)));
    double sum = 0;
    for (std::int32_t s = 1; s <= 15; ++s) {
      // dagonlint: allow(float-accum): report-only mean over a fixed deterministic run order
      sum += m.stage_duration_sec(StageId(s));
    }
    iters.push_back(TextTable::num(sum / 15.0, 2));
  }
  summary.add_row(iters);
  summary.add_row(jct);
  summary.add_row(hiloc);
  std::cout << "\n";
  summary.print(std::cout);
  std::cout << "CSV: " << bench::csv_path("fig3_locality_wait") << "\n";
  return 0;
}
