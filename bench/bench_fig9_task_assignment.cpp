// Fig. 9 reproduction: the scheduling half of Dagon in isolation —
// priority-based task assignment vs FIFO and Graphene with caching
// disabled; plus DecisionTree's task-parallelism and CPU-utilization
// timelines.
//
// Paper: Dagon beats FIFO by 19/19/23% on the CPU-intensive workloads
// and 18/13% on the mixed ones, is less effective on I/O-intensive
// ones, and slightly outperforms Graphene; DecisionTree parallelism and
// utilization improve ~20%.
#include "bench_util.hpp"
#include "common/csv.hpp"

using namespace dagon;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "Fig. 9 — priority-based task assignment (caching disabled)",
      "Dagon > Graphene > FIFO on CPU-intensive and mixed workloads; "
      "little effect on I/O-intensive ones (CPU-only packing)");

  const SchedulerKind schedulers[] = {SchedulerKind::Fifo,
                                      SchedulerKind::Graphene,
                                      SchedulerKind::Dagon};
  CsvWriter csv(bench::csv_path("fig9_task_assignment"),
                {"workload", "scheduler", "jct_sec", "cpu_util",
                 "avg_parallelism"});

  std::cout << "(a) job completion time [s], caching disabled\n";
  TextTable t({"workload", "category", "FIFO", "Graphene", "Dagon",
               "Dagon vs FIFO"});
  for (const WorkloadId id : sparkbench_suite()) {
    const Workload w = make_workload(id, bench::bench_scale());
    std::vector<std::string> row{workload_name(id),
                                 category_name(w.category)};
    double fifo_jct = 0.0;
    double dagon_jct = 0.0;
    for (const SchedulerKind kind : schedulers) {
      SimConfig config = bench::bench_testbed();
      config.cache_enabled = false;
      config.scheduler = kind;
      if (kind == SchedulerKind::Dagon) {
        config.delay = DelayKind::SensitivityAware;
      }
      const RunMetrics m = run_workload(w, config).metrics;
      const double jct = to_seconds(m.jct);
      if (kind == SchedulerKind::Fifo) fifo_jct = jct;
      if (kind == SchedulerKind::Dagon) dagon_jct = jct;
      row.push_back(TextTable::num(jct, 1));
      csv.add_row({workload_name(id), scheduler_name(kind),
                   TextTable::num(jct, 2),
                   TextTable::num(m.cpu_utilization(), 3),
                   TextTable::num(m.avg_parallelism(), 2)});
    }
    row.push_back(bench::delta(dagon_jct, fifo_jct));
    t.add_row(row);
  }
  t.print(std::cout);
  std::cout << "paper: -19/-19/-23% (CPU), -18/-13% (mixed), ~0% (I/O) "
               "vs FIFO\n\n";

  // (b)+(c): DecisionTree timelines.
  std::cout << "(b)+(c) DecisionTree task parallelism and CPU "
               "utilization over time\n";
  const Workload dt =
      make_workload(WorkloadId::DecisionTree, bench::bench_scale());
  for (const SchedulerKind kind :
       {SchedulerKind::Fifo, SchedulerKind::Dagon}) {
    SimConfig config = bench::bench_testbed();
    config.cache_enabled = false;
    config.scheduler = kind;
    if (kind == SchedulerKind::Dagon) {
      config.delay = DelayKind::SensitivityAware;
    }
    const RunMetrics m = run_workload(dt, config).metrics;
    const double cores = static_cast<double>(m.total_cores.count());
    std::cout << "  " << scheduler_name(kind) << " (JCT "
              << bench::seconds(m.jct) << "s):\n"
              << "    parallelism  "
              << sparkline(m.running_tasks, SimTime{0}, m.jct, 64, cores / 2) << "  "
              << "avg " << TextTable::num(m.avg_parallelism(), 1) << "\n"
              << "    busy vCPUs   "
              << sparkline(m.busy_cores, SimTime{0}, m.jct, 64, cores) << "  "
              << "util " << TextTable::percent(m.cpu_utilization())
              << "\n";
  }
  std::cout << "paper: ~20% improvement in DecisionTree JCT, visibly "
               "higher parallelism/utilization\n";
  std::cout << "CSV: " << bench::csv_path("fig9_task_assignment") << "\n";
  return 0;
}
