// Extension: fault injection + lineage recovery — how much of Dagon's
// advantage over stock Spark survives executor crashes and transient
// task failures.
//
// Sweeps the transient failure probability (plus one mid-run executor
// crash scenario) across {FIFO+LRU, Dagon} over several seeds. Failures
// draw from a dedicated RNG stream, so the p=0 rows are bit-identical to
// the fault-free simulator.
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "exp/sweep.hpp"

using namespace dagon;

namespace {

struct Scenario {
  std::string label;
  FaultConfig faults;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  for (const double p : {0.0, 0.01, 0.03, 0.1}) {
    Scenario s;
    s.label = "task-fail p=" + TextTable::num(p, 2);
    s.faults.enabled = p > 0.0;
    s.faults.task_fail_prob = p;
    out.push_back(std::move(s));
  }
  Scenario crash;
  crash.label = "crash 1 exec @30s";
  crash.faults.enabled = true;
  crash.faults.crashes.push_back(ExecutorCrashSpec{30 * kSec, -1});
  out.push_back(std::move(crash));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "Extension — JCT degradation under faults (lineage recovery)",
      "DAG-aware caching keeps paying off under failures: recovery "
      "re-runs only the producing task indices of lost blocks, so the "
      "cached-intermediate advantage is not wiped out by a crash");

  constexpr std::uint64_t kSeeds = 3;
  const Workload w = make_workload(WorkloadId::KMeans, bench::bench_scale());
  const std::vector<SystemCombo> systems = {stock_spark(), dagon_full()};
  const std::vector<Scenario> cases = scenarios();

  std::vector<SweepRun> runs;
  for (const SystemCombo& sys : systems) {
    for (const Scenario& sc : cases) {
      for (std::uint64_t seed = 42; seed < 42 + kSeeds; ++seed) {
        SimConfig config = apply_combo(bench::bench_testbed(), sys);
        config.faults = sc.faults;
        config.seed = seed;
        runs.push_back({sys.label + " / " + sc.label, w, config});
      }
    }
  }
  const SweepReport sweep = run_sweep(runs, SweepOptions{bench::options().jobs});

  CsvWriter csv(bench::csv_path("ext_faults"),
                {"workload", "system", "scenario", "seed", "jct_sec",
                 "hit_ratio", "transient_failures", "crash_failures",
                 "retries", "blocks_fully_lost", "lineage_recomputes"});
  CsvWriter per_csv(bench::csv_path("ext_faults_executors"),
                    {"workload", "system", "scenario", "seed", "exec",
                     "crashes", "transient_failures"});

  TextTable t({"system", "scenario", "mean JCT [s]", "vs fault-free",
               "retries", "recomputes", "hit ratio"});
  std::size_t r = 0;
  for (const SystemCombo& sys : systems) {
    double base_jct = 0.0;
    for (const Scenario& sc : cases) {
      double jct_sum = 0.0;
      double hit_sum = 0.0;
      std::int64_t retries = 0;
      std::int64_t recomputes = 0;
      for (std::uint64_t k = 0; k < kSeeds; ++k, ++r) {
        const RunMetrics& m = sweep.runs[r].metrics;
        // dagonlint: allow(float-accum): report-only mean over a fixed deterministic run order
        jct_sum += to_seconds(m.jct);
        // dagonlint: allow(float-accum): report-only mean over a fixed deterministic run order
        hit_sum += m.cache.hit_ratio();
        retries += m.faults.retries;
        recomputes += m.faults.lineage_recomputes;
        csv.add_row({w.name, sys.label, sc.label,
                     std::to_string(42 + k), TextTable::num(to_seconds(m.jct), 2),
                     TextTable::num(m.cache.hit_ratio(), 3),
                     std::to_string(m.faults.transient_failures),
                     std::to_string(m.faults.crash_failures),
                     std::to_string(m.faults.retries),
                     std::to_string(m.faults.blocks_fully_lost),
                     std::to_string(m.faults.lineage_recomputes)});
        for (std::size_t e = 0; e < m.faults.per_executor.size(); ++e) {
          const auto& pe = m.faults.per_executor[e];
          if (!pe.any()) continue;
          per_csv.add_row({w.name, sys.label, sc.label,
                           std::to_string(42 + k), std::to_string(e),
                           std::to_string(pe.crashes),
                           std::to_string(pe.transient_failures)});
        }
      }
      const double mean_jct = jct_sum / static_cast<double>(kSeeds);
      if (&sc == &cases.front()) base_jct = mean_jct;
      t.add_row({sys.label, sc.label, TextTable::num(mean_jct, 1),
                 bench::delta(mean_jct, base_jct),
                 std::to_string(retries), std::to_string(recomputes),
                 TextTable::percent(hit_sum / static_cast<double>(kSeeds))});
    }
  }
  t.print(std::cout);
  std::cout << "\nCSV: " << bench::csv_path("ext_faults") << ", "
            << bench::csv_path("ext_faults_executors") << "\n";
  return 0;
}
