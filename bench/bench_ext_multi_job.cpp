// Extension: multi-job batches — the regime the paper frames but does
// not measure (§I contrasts Spark's FIFO and Fair schedulers; §III-A2
// motivates the heuristic with multi-tenant clusters).
//
// A mixed batch (one CPU-intensive, one mixed, one I/O-intensive job)
// runs under every scheduler; we report per-job completion times, the
// batch makespan, and mean JCT — the classic makespan-vs-fairness
// trade-off, plus what Dagon's pv ordering does to it.
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "workloads/batch.hpp"

using namespace dagon;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "Extension — multi-job scheduling (FIFO vs Fair vs CP vs Graphene "
      "vs Dagon)",
      "beyond the paper: Dagon's priority values extend naturally across "
      "job boundaries, trading a little fairness for batch makespan");

  const BatchWorkload batch = merge_workloads({
      make_workload(WorkloadId::LogisticRegression, WorkloadScale{1.0}),
      make_workload(WorkloadId::KMeans, WorkloadScale{0.5}),
      make_workload(WorkloadId::ConnectedComponent, WorkloadScale{1.0}),
  });
  std::cout << "batch: " << batch.combined.name << " ("
            << batch.combined.dag.num_stages() << " stages, "
            << batch.combined.dag.total_tasks() << " tasks)\n\n";

  CsvWriter csv(bench::csv_path("ext_multi_job"),
                {"scheduler", "job", "first_launch_sec", "jct_sec"});

  TextTable t({"scheduler", "LogReg JCT", "KMeans JCT", "CC JCT",
               "makespan", "mean JCT"});
  for (const SchedulerKind kind :
       {SchedulerKind::Fifo, SchedulerKind::Fair, SchedulerKind::CriticalPath,
        SchedulerKind::Graphene, SchedulerKind::Dagon}) {
    SimConfig config = bench::bench_testbed();
    config.scheduler = kind;
    config.cache = kind == SchedulerKind::Dagon ? CachePolicyKind::Lrp
                                                : CachePolicyKind::Lru;
    const RunMetrics m = run_workload(batch.combined, config).metrics;
    const auto done = per_job_completions(batch, m);
    double mean = 0.0;
    std::vector<std::string> row{scheduler_name(kind)};
    for (const JobCompletion& jc : done) {
      row.push_back(TextTable::num(to_seconds(jc.finish), 1));
      // dagonlint: allow(float-accum): report-only mean over a fixed deterministic run order
      mean += to_seconds(jc.finish);
      csv.add_row({scheduler_name(kind), jc.name,
                   TextTable::num(to_seconds(jc.first_launch), 2),
                   TextTable::num(to_seconds(jc.finish), 2)});
    }
    row.push_back(TextTable::num(to_seconds(m.jct), 1));
    row.push_back(
        TextTable::num(mean / static_cast<double>(done.size()), 1));
    t.add_row(row);
  }
  t.print(std::cout);
  std::cout << "\nFIFO serializes jobs (great first-job JCT, terrible "
               "last); Fair\ninterleaves (fair but slow everywhere); "
               "Dagon packs by remaining\nwork — near-best makespan "
               "without Fair's uniform slowdown.\n";
  std::cout << "CSV: " << bench::csv_path("ext_multi_job") << "\n";
  return 0;
}
