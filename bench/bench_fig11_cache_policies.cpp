// Fig. 11 reproduction: caching policies under two scheduling modes on
// the I/O-intensive workload set (the MRD paper's workloads).
//
// Paper: (a) MRD beats LRU by ~24% in hit ratio under FIFO but performs
// poorly with Dagon; LRP achieves 11% higher hit ratio than MRD under
// Dagon. (b) Dagon+LRP beats Dagon+MRD by up to 18% in JCT (CC) and
// improves every workload; Dagon+MRD is only marginally better than
// FIFO+MRD because MRD's distances assume FIFO order.
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "exp/sweep.hpp"

using namespace dagon;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "Fig. 11 — caching policies under FIFO and Dagon scheduling "
      "(I/O-intensive set)",
      "coherency matters: MRD pairs with FIFO, LRP pairs with Dagon; "
      "mixing them forfeits most of the caching benefit");

  const auto systems = figure11_systems();
  CsvWriter csv(bench::csv_path("fig11_cache_policies"),
                {"workload", "system", "hit_ratio", "jct_sec",
                 "prefetches", "proactive_evictions"});

  TextTable hits({"workload", "FIFO+LRU", "FIFO+MRD", "Dagon+MRD",
                  "Dagon+LRP"});
  TextTable jct({"workload", "FIFO+LRU", "FIFO+MRD", "Dagon+MRD",
                 "Dagon+LRP", "LRP vs MRD (Dagon)"});
  double lrp_sum = 0.0;
  double mrd_sum = 0.0;

  std::vector<SweepRun> grid;
  for (const WorkloadId id : cache_study_suite()) {
    const Workload w = make_workload(id, bench::bench_scale());
    for (const SystemCombo& combo : systems) {
      grid.push_back({std::string(workload_name(id)) + "/" + combo.label,
                      w, apply_combo(bench::bench_testbed(), combo)});
    }
  }
  const SweepReport sweep =
      run_sweep(grid, SweepOptions{bench::options().jobs});

  std::size_t next = 0;
  for (const WorkloadId id : cache_study_suite()) {
    std::vector<std::string> hit_row{workload_name(id)};
    std::vector<std::string> jct_row{workload_name(id)};
    double dagon_mrd = 0.0;
    double dagon_lrp = 0.0;
    for (const SystemCombo& combo : systems) {
      const RunMetrics& m = sweep.runs[next++].metrics;
      hit_row.push_back(TextTable::percent(m.cache.hit_ratio()));
      jct_row.push_back(TextTable::num(to_seconds(m.jct), 1));
      if (combo.label == "Dagon+MRD") dagon_mrd = to_seconds(m.jct);
      if (combo.label == "Dagon+LRP") dagon_lrp = to_seconds(m.jct);
      csv.add_row({workload_name(id), combo.label,
                   TextTable::num(m.cache.hit_ratio(), 4),
                   TextTable::num(to_seconds(m.jct), 2),
                   std::to_string(m.cache.prefetches),
                   std::to_string(m.cache.proactive_evictions)});
    }
    // dagonlint: allow(float-accum): report-only mean over a fixed deterministic run order
    mrd_sum += dagon_mrd;
    // dagonlint: allow(float-accum): report-only mean over a fixed deterministic run order
    lrp_sum += dagon_lrp;
    jct_row.push_back(bench::delta(dagon_lrp, dagon_mrd));
    hits.add_row(hit_row);
    jct.add_row(jct_row);
  }
  std::cout << "(a) cache hit ratio\n";
  hits.print(std::cout);
  std::cout << "paper: MRD > LRU by ~24% under FIFO; LRP > MRD by ~11% "
               "under Dagon\n\n";
  std::cout << "(b) job completion time [s]\n";
  jct.print(std::cout);
  std::cout << "paper: Dagon+LRP -18% vs Dagon+MRD on CC; our suite "
               "mean: "
            << bench::delta(lrp_sum, mrd_sum) << "\n";
  std::cout << "CSV: " << bench::csv_path("fig11_cache_policies") << "\n";
  std::cout << "sweep: " << sweep.runs.size() << " runs, "
            << TextTable::num(sweep.wall_seconds, 2) << "s wall @ "
            << sweep.jobs << " jobs ("
            << TextTable::num(sweep.runs_per_sec(), 1) << " runs/sec)\n";
  return 0;
}
