// Ablation: prefetching on/off for the two prefetching policies
// (MRD, LRP) on the I/O-intensive workloads.
//
// §IV: "such a prefetch operation effectively overlaps the disk access
// time with computation time" — this quantifies how much of the cache
// policies' benefit comes from eviction choices vs prefetching.
#include "bench_util.hpp"
#include "common/csv.hpp"

using namespace dagon;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "Ablation — prefetching contribution (MRD / LRP under Dagon)",
      "eviction order sets the floor; prefetching converts freed space "
      "into pre-warmed reads that hide disk latency");

  CsvWriter csv(bench::csv_path("ablation_prefetch"),
                {"workload", "policy", "prefetch", "jct_sec", "hit_ratio",
                 "prefetches"});

  for (const WorkloadId id :
       {WorkloadId::ConnectedComponent, WorkloadId::PageRank}) {
    const Workload w = make_workload(id, bench::bench_scale());
    TextTable t({"policy", "prefetch", "JCT [s]", "hit ratio",
                 "prefetched blocks"});
    for (const CachePolicyKind policy :
         {CachePolicyKind::Mrd, CachePolicyKind::Lrp}) {
      for (const bool prefetch : {false, true}) {
        SimConfig config = bench::bench_testbed();
        config.scheduler = SchedulerKind::Dagon;
        config.delay = DelayKind::SensitivityAware;
        config.cache = policy;
        config.prefetch_enabled = prefetch;
        const RunMetrics m = run_workload(w, config).metrics;
        t.add_row({cache_policy_name(policy), prefetch ? "on" : "off",
                   TextTable::num(to_seconds(m.jct), 1),
                   TextTable::percent(m.cache.hit_ratio()),
                   std::to_string(m.cache.prefetches)});
        csv.add_row({workload_name(id), cache_policy_name(policy),
                     prefetch ? "on" : "off",
                     TextTable::num(to_seconds(m.jct), 2),
                     TextTable::num(m.cache.hit_ratio(), 4),
                     std::to_string(m.cache.prefetches)});
      }
    }
    std::cout << workload_name(id) << ":\n";
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "CSV: " << bench::csv_path("ablation_prefetch") << "\n";
  return 0;
}
