// Ablation: how sensitive is Dagon's priority-based assignment to
// AppProfiler estimation error?
//
// The paper profiles with a pilot run plus online cgroup statistics
// (§IV); this sweep injects multiplicative duration error into the
// profile the scheduler sees (the simulator still runs ground truth).
#include "bench_util.hpp"
#include "common/csv.hpp"

using namespace dagon;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "Ablation — profiler estimation noise",
      "pv_i ordering is coarse: Dagon tolerates substantial duration "
      "misprediction before its advantage over FIFO erodes");

  CsvWriter csv(bench::csv_path("ablation_profiler_noise"),
                {"workload", "noise_sigma", "jct_sec", "vs_exact"});

  for (const WorkloadId id :
       {WorkloadId::DecisionTree, WorkloadId::LogisticRegression}) {
    const Workload w = make_workload(id, bench::bench_scale());
    TextTable t({"profiler noise sigma", "JCT [s]", "vs exact profile"});
    double exact = 0.0;
    for (const double noise : {0.0, 0.1, 0.25, 0.5, 1.0}) {
      ProfilerConfig pc;
      pc.noise = noise;
      pc.seed = 1234;
      SimConfig config = bench::bench_testbed();
      config.scheduler = SchedulerKind::Dagon;
      config.cache = CachePolicyKind::Lrp;
      config.delay = DelayKind::SensitivityAware;
      const RunMetrics m =
          run_workload(w, config, AppProfiler(pc)).metrics;
      const double jct = to_seconds(m.jct);
      if (noise == 0.0) exact = jct;
      t.add_row({TextTable::num(noise, 2), TextTable::num(jct, 1),
                 (jct >= exact ? "+" : "") +
                     TextTable::percent(jct / exact - 1.0)});
      csv.add_row({workload_name(id), TextTable::num(noise, 2),
                   TextTable::num(jct, 2),
                   TextTable::num(jct / exact - 1.0, 4)});
    }
    std::cout << workload_name(id) << " (Dagon full stack):\n";
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "CSV: " << bench::csv_path("ablation_profiler_noise")
            << "\n";
  return 0;
}
