// Ablation: Algorithm 2's acceptance slack (est < slack * ect).
//
// slack = 1.0 is the paper's literal Eq. (7) comparison; larger values
// admit more low-locality fills. Sweeps KMeans (locality-sensitive
// iterations, insensitive scans) and ConnectedComponent (I/O) under the
// full Dagon stack.
#include "bench_util.hpp"
#include "common/csv.hpp"

using namespace dagon;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "Ablation — Algorithm 2 acceptance slack",
      "too strict leaves executors idle on insensitive stages; too loose "
      "floods sensitive stages with remote reads");

  CsvWriter csv(bench::csv_path("ablation_ect_slack"),
                {"workload", "slack", "jct_sec", "cpu_util",
                 "high_locality_fraction"});

  const double slacks[] = {1.0, 1.1, 1.3, 1.6, 2.5};
  for (const WorkloadId id :
       {WorkloadId::KMeans, WorkloadId::ConnectedComponent}) {
    const Workload w = make_workload(id, bench::bench_scale());
    TextTable t({"slack", "JCT [s]", "CPU util", "hi-locality share"});
    for (const double slack : slacks) {
      SimConfig config = bench::bench_testbed();
      config.hdfs = case_study_cluster().hdfs;  // rep=1 + skew
      config.scheduler = SchedulerKind::Dagon;
      config.cache = CachePolicyKind::Lrp;
      config.delay = DelayKind::SensitivityAware;
      config.ect_slack = slack;
      const RunMetrics m = run_workload(w, config).metrics;
      t.add_row({TextTable::num(slack, 1),
                 TextTable::num(to_seconds(m.jct), 1),
                 TextTable::percent(m.cpu_utilization()),
                 TextTable::percent(m.high_locality_fraction())});
      csv.add_row({workload_name(id), TextTable::num(slack, 1),
                   TextTable::num(to_seconds(m.jct), 2),
                   TextTable::num(m.cpu_utilization(), 3),
                   TextTable::num(m.high_locality_fraction(), 3)});
    }
    std::cout << workload_name(id) << ":\n";
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "CSV: " << bench::csv_path("ablation_ect_slack") << "\n";
  return 0;
}
