// Fig. 10 reproduction: native delay scheduling vs Dagon's
// sensitivity-aware delay scheduling (Algorithm 2) across the suite.
//
// Paper: 24% average JCT improvement; 14% fewer high-locality launches
// for locality-insensitive stages; +12% average CPU utilization.
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "exp/sweep.hpp"

using namespace dagon;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "Fig. 10 — native vs sensitivity-aware delay scheduling",
      "launching low-locality tasks onto idle executors when the stage "
      "is insensitive cuts JCT ~24%, trims needless high-locality "
      "launches ~14%, and lifts utilization ~12%");

  CsvWriter csv(bench::csv_path("fig10_delay_scheduling"),
                {"workload", "delay", "jct_sec", "high_locality_launches",
                 "cpu_util"});

  TextTable t({"workload", "JCT delay [s]", "JCT aware [s]", "delta",
               "hi-loc delay", "hi-loc aware", "util delay",
               "util aware"});
  double sum_native = 0.0;
  double sum_aware = 0.0;

  std::vector<SweepRun> grid;
  for (const WorkloadId id : sparkbench_suite()) {
    const Workload w = make_workload(id, bench::bench_scale());
    for (const DelayKind kind :
         {DelayKind::Native, DelayKind::SensitivityAware}) {
      // Same cluster + Dagon assignment; only the delay policy differs.
      SimConfig config = bench::bench_testbed();
      config.hdfs = case_study_cluster().hdfs;  // rep=1 + skew
      config.scheduler = SchedulerKind::Dagon;
      config.cache = CachePolicyKind::Lrp;
      config.delay = kind;
      grid.push_back({std::string(workload_name(id)) + "/" +
                          delay_kind_name(kind),
                      w, config});
    }
  }
  const SweepReport sweep =
      run_sweep(grid, SweepOptions{bench::options().jobs});

  std::size_t next = 0;
  for (const WorkloadId id : sparkbench_suite()) {
    RunMetrics m[2];
    for (int i = 0; i < 2; ++i) {
      m[i] = sweep.runs[next++].metrics;
      const DelayKind kind =
          i == 0 ? DelayKind::Native : DelayKind::SensitivityAware;
      const std::int64_t hl = m[i].locality_count(Locality::Process) +
                              m[i].locality_count(Locality::Node);
      csv.add_row({workload_name(id), delay_kind_name(kind),
                   TextTable::num(to_seconds(m[i].jct), 2),
                   std::to_string(hl),
                   TextTable::num(m[i].cpu_utilization(), 3)});
    }
    // dagonlint: allow(float-accum): report-only mean over a fixed deterministic run order
    sum_native += to_seconds(m[0].jct);
    // dagonlint: allow(float-accum): report-only mean over a fixed deterministic run order
    sum_aware += to_seconds(m[1].jct);
    const auto hiloc = [](const RunMetrics& r) {
      return r.locality_count(Locality::Process) +
             r.locality_count(Locality::Node);
    };
    t.add_row({workload_name(id), bench::seconds(m[0].jct),
               bench::seconds(m[1].jct),
               bench::delta(to_seconds(m[1].jct), to_seconds(m[0].jct)),
               std::to_string(hiloc(m[0])), std::to_string(hiloc(m[1])),
               TextTable::percent(m[0].cpu_utilization()),
               TextTable::percent(m[1].cpu_utilization())});
  }
  t.add_row({"suite mean", TextTable::num(sum_native / 7.0, 1),
             TextTable::num(sum_aware / 7.0, 1),
             bench::delta(sum_aware, sum_native), "", "", "", ""});
  t.print(std::cout);
  std::cout << "paper: -24% JCT, -14% high-locality launches on "
               "insensitive stages, +12% utilization (suite averages)\n";
  std::cout << "CSV: " << bench::csv_path("fig10_delay_scheduling")
            << "\n";
  std::cout << "sweep: " << sweep.runs.size() << " runs, "
            << TextTable::num(sweep.wall_seconds, 2) << "s wall @ "
            << sweep.jobs << " jobs ("
            << TextTable::num(sweep.runs_per_sec(), 1) << " runs/sec)\n";
  return 0;
}
