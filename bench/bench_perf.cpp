// Simulator-performance harness: seeds the perf trajectory with two
// wall-clock numbers and writes them to BENCH_perf.json.
//
//  (1) Sweep scaling — a 16-run (4 workloads × 4 systems) sweep executed
//      serially and again in parallel. The parallel job count is clamped
//      to the real hardware-thread count: oversubscribing a small host
//      measures context-switch overhead, not engine scaling. On a
//      single-hardware-thread host the comparison is skipped outright
//      (and the JSON records why) — publishing a "speedup" from
//      time-sliced threads would be noise presented as signal. Results
//      are fingerprint-checked bit-identical whenever both runs happen.
//  (2) Scheduler hot path — the same runs with
//      SimConfig::incremental_scheduling on vs off, reporting simulation
//      events/sec both ways. The toggle covers only the memoized
//      locality + dirty-flag pv pushes; the structural fast paths (the
//      calendar event queue, SoA task state, free-slot executor index,
//      and NO_PREF shortcut) are unconditional, so at testbed scale the
//      two modes are within run-to-run noise of each other. The number
//      that tracks the hot path across revisions is
//      events_per_sec_incremental, floored by bench/perf_floor.json in
//      CI.
#include <algorithm>
#include <fstream>
#include <thread>

#include "bench_util.hpp"
#include "exp/sweep.hpp"

using namespace dagon;

namespace {

std::vector<SweepRun> make_grid(bool incremental) {
  // 4 workloads × the Fig. 8 systems = 16 independent runs (--quick:
  // one workload, 4 runs — the CI smoke grid the perf floor is keyed to).
  std::vector<WorkloadId> ids = {
      WorkloadId::KMeans, WorkloadId::ConnectedComponent,
      WorkloadId::PageRank, WorkloadId::LogisticRegression};
  if (bench::options().quick) ids.resize(1);
  const std::vector<SystemCombo> systems = figure8_systems();
  std::vector<SweepRun> grid;
  grid.reserve(ids.size() * systems.size());
  for (const WorkloadId id : ids) {
    const Workload w = make_workload(id, bench::bench_scale());
    for (const SystemCombo& combo : systems) {
      SimConfig config = apply_combo(bench::bench_testbed(), combo);
      config.incremental_scheduling = incremental;
      grid.push_back({std::string(workload_name(id)) + "/" + combo.label,
                      w, config});
    }
  }
  return grid;
}

std::uint64_t sweep_fingerprint(const SweepReport& r) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const RunResult& run : r.runs) {
    h ^= metrics_fingerprint(run.metrics);
    h *= 1099511628211ULL;
  }
  return h;
}

std::int64_t total_events(const SweepReport& r) {
  std::int64_t n = 0;
  for (const RunResult& run : r.runs) n += run.metrics.sim_events;
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "PERF — sweep-engine scaling and scheduler hot-path throughput",
      "parallel sweeps are bit-identical to serial and divide wall time "
      "by the worker count; the incremental schedule loop gives "
      "identical results at no worse throughput");

  const auto grid = make_grid(/*incremental=*/true);

  // --- (1) sweep scaling: serial vs parallel -----------------------------
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const std::size_t hw = hw_raw == 0 ? 1 : hw_raw;
  // Default to 4 workers, but never more than the machine actually has:
  // oversubscription measures the OS scheduler, not the sweep engine. An
  // explicit --jobs is clamped the same way.
  const std::size_t requested = bench::options().jobs <= 1
                                    ? 4
                                    : resolve_jobs(bench::options().jobs);
  const std::size_t jobs = std::min(requested, hw);
  const bool parallel_skipped = hw < 2;
  const char* skip_reason =
      "only 1 hardware thread visible: a parallel sweep would "
      "time-slice, and its wall clock would measure context-switch "
      "overhead rather than engine scaling";

  const SweepReport serial = run_sweep(grid, SweepOptions{1});
  SweepReport parallel;
  bool identical = true;
  double speedup = 0.0;
  std::cout << "(1) " << grid.size() << "-run sweep, " << hw
            << " hardware threads\n";
  if (parallel_skipped) {
    std::cout << "serial wall: " << TextTable::num(serial.wall_seconds, 2)
              << "s (" << TextTable::num(serial.runs_per_sec(), 1)
              << " runs/sec)\n"
              << "parallel comparison SKIPPED: " << skip_reason << "\n\n";
  } else {
    parallel = run_sweep(grid, SweepOptions{jobs});
    identical = sweep_fingerprint(serial) == sweep_fingerprint(parallel);
    speedup = parallel.wall_seconds > 0.0
                  ? serial.wall_seconds / parallel.wall_seconds
                  : 0.0;
    TextTable scaling({"mode", "wall [s]", "runs/sec", "speedup"});
    scaling.add_row({"serial (1 job)",
                     TextTable::num(serial.wall_seconds, 2),
                     TextTable::num(serial.runs_per_sec(), 1), "1.00"});
    scaling.add_row({"parallel (" + std::to_string(jobs) + " jobs)",
                     TextTable::num(parallel.wall_seconds, 2),
                     TextTable::num(parallel.runs_per_sec(), 1),
                     TextTable::num(speedup, 2)});
    scaling.print(std::cout);
    std::cout << "parallel results bit-identical to serial: "
              << (identical ? "YES" : "NO — DETERMINISM BUG") << "\n\n";
  }

  // --- (2) incremental schedule loop vs recompute baseline ---------------
  // Serial on purpose: isolates single-run throughput from pool scaling.
  const SweepReport baseline =
      run_sweep(make_grid(/*incremental=*/false), SweepOptions{1});
  const SweepReport incremental = run_sweep(grid, SweepOptions{1});

  const double ev_base =
      baseline.wall_seconds > 0.0
          ? static_cast<double>(total_events(baseline)) /
                baseline.wall_seconds
          : 0.0;
  const double ev_incr =
      incremental.wall_seconds > 0.0
          ? static_cast<double>(total_events(incremental)) /
                incremental.wall_seconds
          : 0.0;
  const double improvement = ev_base > 0.0 ? ev_incr / ev_base - 1.0 : 0.0;
  const bool same_results =
      sweep_fingerprint(baseline) == sweep_fingerprint(incremental);

  TextTable hot({"schedule loop", "wall [s]", "events/sec"});
  hot.add_row({"recompute-per-event",
               TextTable::num(baseline.wall_seconds, 2),
               TextTable::num(ev_base, 0)});
  hot.add_row({"incremental", TextTable::num(incremental.wall_seconds, 2),
               TextTable::num(ev_incr, 0)});
  std::cout << "(2) scheduler hot path, " << total_events(incremental)
            << " events per sweep\n";
  hot.print(std::cout);
  std::cout << "events/sec improvement: "
            << (improvement >= 0 ? "+" : "")
            << TextTable::percent(improvement)
            << " (results identical: " << (same_results ? "YES" : "NO")
            << ")\n";

  const std::string json_path = bench::out_path("BENCH_perf.json");
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"quick\": " << (bench::options().quick ? "true" : "false")
       << ",\n"
       << "  \"sweep_runs\": " << grid.size() << ",\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"serial_wall_sec\": " << serial.wall_seconds << ",\n"
       << "  \"serial_runs_per_sec\": " << serial.runs_per_sec() << ",\n";
  if (parallel_skipped) {
    json << "  \"parallel_skipped\": true,\n"
         << "  \"parallel_skip_reason\": \"" << skip_reason << "\",\n";
  } else {
    json << "  \"parallel_skipped\": false,\n"
         << "  \"jobs\": " << jobs << ",\n"
         << "  \"parallel_wall_sec\": " << parallel.wall_seconds << ",\n"
         << "  \"parallel_speedup\": " << speedup << ",\n"
         << "  \"parallel_runs_per_sec\": " << parallel.runs_per_sec()
         << ",\n"
         << "  \"parallel_bit_identical\": "
         << (identical ? "true" : "false") << ",\n";
  }
  json << "  \"events_per_sweep\": " << total_events(incremental) << ",\n"
       << "  \"events_per_sec_baseline\": " << ev_base << ",\n"
       << "  \"events_per_sec_incremental\": " << ev_incr << ",\n"
       << "  \"events_per_sec_improvement\": " << improvement << ",\n"
       << "  \"incremental_bit_identical\": "
       << (same_results ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "\nJSON: " << json_path << "\n";

  return identical && same_results ? 0 : 1;
}
