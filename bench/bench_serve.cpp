// Serving contention bench: LRU / LRC / MRD / LERC under a multi-job
// arrival stream sharing one undersized cache (BENCH_serve.json).
//
// Each arriving job is a small ETL pipeline over one shared input
// dataset:
//
//   ds (shared, cached HDFS input)
//     |--narrow--> a (cacheable)   --+
//     |--narrow--> b (cacheable)   --+--narrow--> join (reads a AND b)
//                                    +--narrow--> agg  (reads a AND b)
//
// join/agg tasks read BOTH intermediate blocks of their partition, so
// every consumer has a two-block peer group: a cache hit is only
// *effective* if a[p] and b[p] are memory-resident together (LERC,
// arXiv:1708.07941). The per-executor cache is sized well below the
// concurrent jobs' aggregate working set, so plain reference counting
// (LRC) strands half-groups while LERC concentrates memory on complete
// groups.
//
// Grid: cache policy x Poisson arrival rate (light / moderate / heavy),
// a few seeds per point. Reported per point: per-job JCT p50/p95,
// effective cache-hit ratio, raw hit ratio, and the Jain fairness index
// over per-job JCTs. The heavy rate is the "contended preset": the run
// asserts LERC >= LRC on effective hit ratio there (full mode).
//
// --quick shrinks the grid to one rate and asserts the serving
// invariants only: every job quiesced (finished >= submitted) and the
// per-job effective-read accounting sums to the aggregate counters.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace dagon;

namespace {

constexpr std::int32_t kParts = 16;
constexpr Bytes kBlockBytes = 8 * kMiB;

/// One serving job: two cacheable intermediates consumed pairwise by
/// two downstream stages. The input dataset is deliberately
/// non-cacheable so the contention (and the peer groups) live entirely
/// in the intermediates.
Workload make_serve_job() {
  JobDagBuilder b("etl");
  const RddId ds = b.input_rdd("ds", kParts, 32 * kMiB);
  b.set_rdd_cacheable(ds, false);
  const StageId load = b.add_stage({.name = "load",
                                   .inputs = {{ds, DepKind::Narrow}},
                                   .num_tasks = kParts,
                                   .task_cpus = Cpus{1},
                                   .task_duration = 1 * kSec,
                                   .output_bytes_per_partition = kBlockBytes,
                                   .output_name = "a"});
  const StageId feat = b.add_stage({.name = "feat",
                                   .inputs = {{ds, DepKind::Narrow}},
                                   .num_tasks = kParts,
                                   .task_cpus = Cpus{1},
                                   .task_duration = 1 * kSec,
                                   .output_bytes_per_partition = kBlockBytes,
                                   .output_name = "b"});
  const RddId a = b.output_of(load);
  const RddId bb = b.output_of(feat);
  b.add_stage({.name = "join",
               .inputs = {{a, DepKind::Narrow}, {bb, DepKind::Narrow}},
               .num_tasks = kParts,
               .task_cpus = Cpus{1},
               .task_duration = 2 * kSec,
               .output_bytes_per_partition = Bytes{0},
               .cache_output = false});
  b.add_stage({.name = "agg",
               .inputs = {{a, DepKind::Narrow}, {bb, DepKind::Narrow}},
               .num_tasks = kParts,
               .task_cpus = Cpus{1},
               .task_duration = 1 * kSec,
               .output_bytes_per_partition = Bytes{0},
               .cache_output = false});
  Workload w;
  w.name = "etl";
  w.category = WorkloadCategory::Mixed;
  w.dag = b.build();
  return w;
}

SimConfig make_serve_config(CachePolicyKind policy, std::uint64_t seed) {
  SimConfig config = bench::bench_testbed();
  config.cache = policy;
  config.seed = seed;
  // Undersized cache: one job's intermediates (its peer groups) are
  // 2 x 16 x 8 MiB = 256 MiB, so the 72 x 16 MiB = 1.1 GiB pool holds
  // ~4 complete groups while the heavy rate keeps ~8 jobs in flight.
  config.topology.cache_bytes_per_executor = 16 * kMiB;
  config.prefetch_enabled = false;
  return config;
}

struct ServePoint {
  CachePolicyKind policy = CachePolicyKind::Lru;
  double rate_per_sec = 0.0;
  std::int32_t jobs = 0;
  std::vector<double> jct_sec;  // across all seeds' jobs
  double jct_p50 = 0.0;
  double jct_p95 = 0.0;
  double effective_hit_ratio = 0.0;
  double hit_ratio = 0.0;
  double jain = 0.0;
  std::int64_t proactive_evictions = 0;
  std::uint64_t fingerprint = 0;  // first seed's run
};

double percentile(std::vector<double> v, double p) {
  DAGON_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  // dagonlint: allow(narrowing-cast): report-only percentile rank, not a unit quantity
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(v.size())));
  return v[std::min(v.size() - 1, rank == 0 ? 0 : rank - 1)];
}

double jain_index(const std::vector<double>& v) {
  double sum = 0.0, sq = 0.0;
  // dagonlint: allow(float-accum): reporting-only reduction over <=24
  // JCTs in a fixed (job-index) order; never feeds back into the sim.
  for (double x : v) {
    sum += x;
    sq += x * x;
  }
  if (sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(v.size()) * sq);
}

/// Runs one (policy, rate) cell across `seeds` and pools the per-job
/// samples. Asserts the serving invariants on every run.
ServePoint run_point(CachePolicyKind policy, double rate, std::int32_t jobs,
                     const std::vector<std::uint64_t>& seeds) {
  ServePoint out;
  out.policy = policy;
  out.rate_per_sec = rate;
  out.jobs = jobs;
  std::int64_t eff_reads = 0, eff_hits = 0, reads = 0, hits = 0;
  for (std::size_t si = 0; si < seeds.size(); ++si) {
    std::vector<Workload> instances;
    instances.reserve(static_cast<std::size_t>(jobs));
    for (std::int32_t j = 0; j < jobs; ++j) {
      Workload w = make_serve_job();
      w.name += "#" + std::to_string(j);
      instances.push_back(std::move(w));
    }
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Poisson;
    spec.rate_per_sec = rate;
    spec.seed = seeds[si];
    ServingOptions so;
    so.fair_share = true;
    ServingWorkload sw = make_serving(instances, spec, so);
    SimConfig config = make_serve_config(policy, seeds[si]);
    config.serving = sw.serving;

    const RunResult result = run_workload(sw.batch.combined, config);
    const RunMetrics& m = result.metrics;
    if (si == 0) out.fingerprint = metrics_fingerprint(m);

    // Serving invariants: every job quiesced, and the per-job
    // effective-read accounting sums to the aggregate counters.
    DAGON_CHECK_MSG(m.jobs.size() == static_cast<std::size_t>(jobs),
                    "per-job stats missing");
    std::int64_t job_reads = 0, job_hits = 0;
    for (const JobStats& j : m.jobs) {
      DAGON_CHECK_MSG(j.finished >= j.submitted,
                      "job '" << j.name << "' did not quiesce");
      DAGON_CHECK_MSG(j.effective_task_hits <= j.effective_task_reads,
                      "job '" << j.name << "' hits exceed reads");
      job_reads += j.effective_task_reads;
      job_hits += j.effective_task_hits;
      out.jct_sec.push_back(to_seconds(j.jct()));
    }
    DAGON_CHECK_MSG(job_reads == m.cache.effective_task_reads &&
                        job_hits == m.cache.effective_task_hits,
                    "per-job effective counters do not sum to aggregate");
    eff_reads += m.cache.effective_task_reads;
    eff_hits += m.cache.effective_task_hits;
    reads += m.cache.total_reads;
    hits += m.cache.local_memory_hits;
    out.proactive_evictions += m.cache.proactive_evictions;
  }
  out.jct_p50 = percentile(out.jct_sec, 50.0);
  out.jct_p95 = percentile(out.jct_sec, 95.0);
  out.effective_hit_ratio =
      eff_reads > 0 ? static_cast<double>(eff_hits) /
                          static_cast<double>(eff_reads)
                    : 0.0;
  out.hit_ratio = reads > 0 ? static_cast<double>(hits) /
                                  static_cast<double>(reads)
                            : 0.0;
  out.jain = jain_index(out.jct_sec);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "SERVE — multi-job serving contention across cache policies",
      "dependency-aware reference counting only pays off when the cache "
      "is shared across concurrent jobs and hits are effective (all peer "
      "blocks cached together) — LERC, arXiv:1708.07941");

  const std::vector<CachePolicyKind> policies = {
      CachePolicyKind::Lru, CachePolicyKind::Lrc, CachePolicyKind::Mrd,
      CachePolicyKind::Lerc};
  // Arrival intensities: light (jobs mostly serial), moderate, heavy
  // (the contended preset — most of the stream is in flight at once).
  std::vector<double> rates = {0.05, 0.5, 2.0};
  std::int32_t jobs = 8;
  std::vector<std::uint64_t> seeds = {42, 43, 44};
  if (bench::options().quick) {
    rates = {2.0};
    jobs = 4;
    seeds = {42};
  }

  TextTable table({"policy", "rate [jobs/s]", "JCT p50 [s]", "JCT p95 [s]",
                   "eff-hit", "hit", "jain"});
  std::vector<ServePoint> points;
  for (const double rate : rates) {
    for (const CachePolicyKind policy : policies) {
      ServePoint p = run_point(policy, rate, jobs, seeds);
      table.add_row({cache_policy_name(policy), TextTable::num(rate, 2),
                     TextTable::num(p.jct_p50, 1),
                     TextTable::num(p.jct_p95, 1),
                     TextTable::percent(p.effective_hit_ratio),
                     TextTable::percent(p.hit_ratio),
                     TextTable::num(p.jain, 3)});
      points.push_back(std::move(p));
    }
  }
  table.print(std::cout);

  // The contended preset is the headline: coordinated all-or-nothing
  // caching must not lose to plain reference counting there.
  const double heavy = rates.back();
  double lerc_eff = 0.0, lrc_eff = 0.0;
  for (const ServePoint& p : points) {
    if (p.rate_per_sec != heavy) continue;
    if (p.policy == CachePolicyKind::Lerc) lerc_eff = p.effective_hit_ratio;
    if (p.policy == CachePolicyKind::Lrc) lrc_eff = p.effective_hit_ratio;
  }
  std::cout << "\ncontended preset (rate " << TextTable::num(heavy, 2)
            << "/s): LERC eff-hit " << TextTable::percent(lerc_eff)
            << " vs LRC " << TextTable::percent(lrc_eff) << "\n";
  DAGON_CHECK_MSG(lerc_eff >= lrc_eff,
                  "LERC must not lose to LRC on effective hit ratio in "
                  "the contended preset");

  const std::string json_path = bench::out_path("BENCH_serve.json");
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"quick\": " << (bench::options().quick ? "true" : "false")
       << ",\n"
       << "  \"workload\": \"ds(16x32MiB, shared, uncacheable) ->narrow "
          "{a,b} (cacheable 8MiB blocks) ->narrow join+agg (each reads "
          "a AND b: paired peer groups)\",\n"
       << "  \"jobs_per_run\": " << jobs << ",\n"
       << "  \"seeds\": " << seeds.size() << ",\n"
       << "  \"fair_share\": true,\n"
       << "  \"cache_bytes_per_executor\": " << 16 * kMiB << ",\n"
       << "  \"contended_rate_per_sec\": " << heavy << ",\n"
       << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ServePoint& p = points[i];
    char fp[32];
    std::snprintf(fp, sizeof fp, "%016" PRIx64, p.fingerprint);
    json << "    {\"policy\": \"" << cache_policy_name(p.policy)
         << "\", \"arrival_rate_per_sec\": " << p.rate_per_sec
         << ", \"jobs\": " << p.jobs
         << ", \"jct_p50_sec\": " << p.jct_p50
         << ", \"jct_p95_sec\": " << p.jct_p95
         << ", \"effective_hit_ratio\": " << p.effective_hit_ratio
         << ", \"hit_ratio\": " << p.hit_ratio
         << ", \"jain_fairness\": " << p.jain
         << ", \"proactive_evictions\": " << p.proactive_evictions
         << ", \"fingerprint\": \"" << fp << "\"}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "JSON: " << json_path << "\n";
  return 0;
}
