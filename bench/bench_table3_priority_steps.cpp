// Table III reproduction: the step-by-step bookkeeping of Dagon's
// priority-based task assignment (Algorithm 1) on the Fig. 1 DAG with
// one 16-vCPU executor pool.
//
// Paper rows (vCPU-minutes): initial w=(48,36), pv=(52,64), free 16;
// step 1 schedules stage 2 -> w2 24, pv2 52, free 10; step 2 stage 1 ->
// w1 32, pv1 36, free 6; step 3 stage 2 -> w2 12, pv2 40, free 0;
// at t=2 free 12; step 4 stage 2 -> w2 0, pv2 28, free 6.
#include "bench_util.hpp"
#include "common/csv.hpp"

using namespace dagon;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "Table III — DAG-aware task assignment steps (Fig. 1 DAG, 16 "
      "vCPUs)",
      "Algorithm 1 always schedules the ready stage with the highest "
      "pv_i; the resulting assignment equals Fig. 2(b)");

  const Workload w = make_example_dag();
  const AssignmentTrace trace =
      trace_priority_assignment(w.dag, Cpus{16}, SchedulerKind::Dagon);

  CsvWriter csv(bench::csv_path("table3_priority_steps"),
                {"step", "minute", "stage", "w1", "pv1", "w2", "pv2", "w3",
                 "pv3", "w4", "pv4", "free"});
  TextTable t({"step", "t(min)", "schedule", "w1", "pv1", "w2", "pv2",
               "w3", "pv3", "w4", "pv4", "free CPUs"});
  for (const AssignmentStep& s : trace.steps) {
    std::vector<std::string> row{
        std::to_string(s.step), std::to_string(s.time / kMinute),
        "Stage " + std::to_string(s.chosen.value() + 1)};
    std::vector<std::string> csv_row{row[0], row[1], row[2]};
    for (std::size_t i = 0; i < 4; ++i) {
      row.push_back(std::to_string(s.w_after[i] / kMinute));
      row.push_back(std::to_string(s.pv_after[i] / kMinute));
      csv_row.push_back(row[row.size() - 2]);
      csv_row.push_back(row[row.size() - 1]);
    }
    row.push_back(std::to_string(s.free_after.count()));
    csv_row.push_back(row.back());
    t.add_row(row);
    csv.add_row(csv_row);
  }
  t.print(std::cout);
  std::cout << "\nmakespan: " << format_duration(trace.makespan)
            << " (Fig. 2(b): 9 min)\n"
            << "idle vCPU-time: " << trace.idle_cpu_time / kMinute
            << " vCPU-min\n"
            << "CSV: " << bench::csv_path("table3_priority_steps") << "\n";
  return 0;
}
