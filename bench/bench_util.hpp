// Shared helpers for the table/figure bench harnesses.
//
// Every bench prints the paper-style rows to stdout and mirrors the
// numbers into a CSV next to the binary so figures can be re-plotted.
#pragma once

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "core/dagon.hpp"

namespace dagon::bench {

/// The benchmark cluster: the paper's 18-node testbed. Workloads run at
/// `kBenchScale` so stages span multiple waves of the 288 vCPUs, as on
/// the real testbed.
inline SimConfig bench_testbed() { return paper_testbed(); }

inline constexpr double kBenchScale = 2.0;

inline WorkloadScale bench_scale() { return WorkloadScale{kBenchScale}; }

/// Prints one experiment header with the reproduction context.
inline void experiment_header(const std::string& id,
                              const std::string& claim) {
  print_banner(std::cout, id);
  std::cout << "paper claim: " << claim << "\n\n";
}

/// CSV path helper (written into the current working directory).
inline std::string csv_path(const std::string& name) {
  return name + ".csv";
}

inline std::string seconds(SimTime t) { return TextTable::num(to_seconds(t), 1); }

/// Formats a relative change of `now` vs `base` as "-12.3%" / "+4.5%".
inline std::string delta(double now, double base) {
  const double change = now / base - 1.0;
  return (change <= 0 ? "-" : "+") +
         TextTable::percent(std::abs(change));
}

}  // namespace dagon::bench
