// Shared helpers for the table/figure bench harnesses.
//
// Every bench prints the paper-style rows to stdout and mirrors the
// numbers into a CSV next to the binary so figures can be re-plotted.
#pragma once

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "core/dagon.hpp"

namespace dagon::bench {

/// Options every bench harness shares. Defaults come from the
/// environment (DAGON_JOBS / DAGON_OUT_DIR) so `for b in bench/*; do $b;
/// done` sweeps can be steered without editing each invocation;
/// command-line flags override.
struct BenchOptions {
  /// Worker threads for sweep-engine harnesses (1 = serial, 0 = #cores).
  std::size_t jobs = 1;
  /// Directory for CSV/JSON outputs (empty = current directory).
  std::string out_dir;
  /// Shrinks the workload grid / sweep points for CI smoke runs.
  bool quick = false;
};

inline BenchOptions& options() {
  // dagonlint: allow(unguarded-global): written only during single-threaded flag parsing in main; read-only once any pool starts
  static BenchOptions opts = [] {
    BenchOptions o;
    // dagonlint: allow(nondet-source): bench harness knob, affects parallelism only, not sim state
    if (const char* jobs = std::getenv("DAGON_JOBS")) {
      o.jobs = static_cast<std::size_t>(std::atoll(jobs));
    }
    // dagonlint: allow(nondet-source): bench harness knob, affects output path only, not sim state
    if (const char* dir = std::getenv("DAGON_OUT_DIR")) o.out_dir = dir;
    // dagonlint: allow(nondet-source): bench harness knob, trims repetitions only, not sim state
    if (std::getenv("DAGON_QUICK") != nullptr) o.quick = true;
    return o;
  }();
  return opts;
}

/// Parses the shared bench flags (--jobs N, --out-dir DIR); exits with
/// a usage message on anything unrecognized.
inline void parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jobs" || arg == "-j") {
      options().jobs = static_cast<std::size_t>(std::atoll(next().c_str()));
    } else if (arg == "--out-dir") {
      options().out_dir = next();
    } else if (arg == "--quick") {
      options().quick = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--jobs N] [--out-dir DIR] [--quick]\n"
                   "  --jobs N      parallel sweep workers (0 = #cores) "
                   "[env DAGON_JOBS; default 1]\n"
                   "  --out-dir DIR write CSVs/JSON under DIR instead of "
                   "the cwd [env DAGON_OUT_DIR]\n"
                   "  --quick       shrink the grid/sweep for CI smoke "
                   "runs [env DAGON_QUICK]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown argument " << arg << " (try --help)\n";
      std::exit(2);
    }
  }
}

/// Joins `filename` onto the configured output directory (creating it
/// on demand) — the fix for CSVs always landing next to the invoker.
inline std::string out_path(const std::string& filename) {
  if (options().out_dir.empty()) return filename;
  std::filesystem::create_directories(options().out_dir);
  return (std::filesystem::path(options().out_dir) / filename).string();
}

/// The benchmark cluster: the paper's 18-node testbed. Workloads run at
/// `kBenchScale` so stages span multiple waves of the 288 vCPUs, as on
/// the real testbed.
inline SimConfig bench_testbed() { return paper_testbed(); }

inline constexpr double kBenchScale = 2.0;

inline WorkloadScale bench_scale() { return WorkloadScale{kBenchScale}; }

/// Prints one experiment header with the reproduction context.
inline void experiment_header(const std::string& id,
                              const std::string& claim) {
  print_banner(std::cout, id);
  std::cout << "paper claim: " << claim << "\n\n";
}

/// CSV path helper; honors --out-dir / DAGON_OUT_DIR.
inline std::string csv_path(const std::string& name) {
  return out_path(name + ".csv");
}

inline std::string seconds(SimTime t) { return TextTable::num(to_seconds(t), 1); }

/// Formats a relative change of `now` vs `base` as "-12.3%" / "+4.5%".
inline std::string delta(double now, double base) {
  const double change = now / base - 1.0;
  return (change <= 0 ? "-" : "+") +
         TextTable::percent(std::abs(change));
}

}  // namespace dagon::bench
