// Extension: multi-tenant capacity fluctuation — the varying RC of
// Eq. (3) the paper cites as the reason an online heuristic (rather
// than re-solving the MIP) is required.
//
// A tenant reserves half the cluster for the middle third of the run;
// we compare how each scheduler absorbs the shock.
#include "bench_util.hpp"
#include "common/csv.hpp"

using namespace dagon;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "Extension — scheduling under capacity fluctuation (Eq. 3's "
      "varying RC)",
      "Algorithm 1 re-evaluates pv_i at every assignment, so Dagon "
      "needs no re-planning when half the cluster disappears");

  CsvWriter csv(bench::csv_path("ext_capacity"),
                {"workload", "scheduler", "phases", "jct_sec",
                 "cpu_util"});

  for (const WorkloadId id :
       {WorkloadId::DecisionTree, WorkloadId::ConnectedComponent}) {
    const Workload w = make_workload(id, bench::bench_scale());
    TextTable t({"scheduler", "steady JCT [s]", "fluctuating JCT [s]",
                 "slowdown"});
    for (const SchedulerKind kind :
         {SchedulerKind::Fifo, SchedulerKind::Graphene,
          SchedulerKind::Dagon}) {
      double jct[2];
      for (const int phase_case : {0, 1}) {
        SimConfig config = bench::bench_testbed();
        config.scheduler = kind;
        config.cache = kind == SchedulerKind::Dagon ? CachePolicyKind::Lrp
                                                    : CachePolicyKind::Lru;
        if (kind == SchedulerKind::Dagon) {
          config.delay = DelayKind::SensitivityAware;
        }
        if (phase_case == 1) {
          // Another tenant takes 50% from t=60s to t=180s.
          config.capacity_phases = {{60 * kSec, 0.5}, {180 * kSec, 0.0}};
        }
        const RunMetrics m = run_workload(w, config).metrics;
        jct[phase_case] = to_seconds(m.jct);
        csv.add_row({workload_name(id), scheduler_name(kind),
                     phase_case ? "50% for [60,180]s" : "none",
                     TextTable::num(jct[phase_case], 2),
                     TextTable::num(m.cpu_utilization(), 3)});
      }
      t.add_row({scheduler_name(kind), TextTable::num(jct[0], 1),
                 TextTable::num(jct[1], 1),
                 "+" + TextTable::percent(jct[1] / jct[0] - 1.0)});
    }
    std::cout << workload_name(id) << ":\n";
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "CSV: " << bench::csv_path("ext_capacity") << "\n";
  return 0;
}
