// Micro-benchmarks (google-benchmark): the per-decision costs of the
// middleware's hot paths. These bound the control-plane overhead Dagon
// would add to a real Spark driver (the paper argues the heuristic must
// run "in a time acceptable to Spark" — §III-A2).
#include <benchmark/benchmark.h>

#include "core/dagon.hpp"

namespace dagon {
namespace {

Workload big_workload() {
  return make_workload(WorkloadId::PregelOperation, WorkloadScale{1.0});
}

void BM_PriorityValues(benchmark::State& state) {
  const Workload w = big_workload();
  const Topology topo(TopologySpec{});
  const JobProfile profile = exact_profile(w.dag);
  JobState js(w.dag, topo, profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(js.priority_values());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.dag.num_stages()));
}
BENCHMARK(BM_PriorityValues);

void BM_DagonSelectorOrder(benchmark::State& state) {
  const Workload w = big_workload();
  const Topology topo(TopologySpec{});
  const JobProfile profile = exact_profile(w.dag);
  JobState js(w.dag, topo, profile);
  const DagonSelector selector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.order(js));
  }
}
BENCHMARK(BM_DagonSelectorOrder);

void BM_GrapheneSelectorOrder(benchmark::State& state) {
  const Workload w = big_workload();
  const Topology topo(TopologySpec{});
  const JobProfile profile = exact_profile(w.dag);
  JobState js(w.dag, topo, profile);
  const GrapheneSelector selector(w.dag, profile, Cpus{4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.order(js));
  }
}
BENCHMARK(BM_GrapheneSelectorOrder);

void BM_OracleReferencePriority(benchmark::State& state) {
  const Workload w = big_workload();
  ReferenceOracle oracle(w.dag);
  const RddId adj = w.dag.stage(StageId(0)).output;
  const BlockId block{adj, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.reference_priority(block));
    benchmark::DoNotOptimize(oracle.stage_distance(block));
  }
}
BENCHMARK(BM_OracleReferencePriority);

void BM_BlockManagerInsertEvict(benchmark::State& state) {
  const Workload w = big_workload();
  ReferenceOracle oracle(w.dag);
  const LrpPolicy policy;
  const RddId adj = w.dag.stage(StageId(0)).output;
  const Bytes bytes = w.dag.rdd(adj).bytes_per_partition;
  BlockManager bm(ExecutorId(0), 8 * bytes, policy);
  std::int32_t p = 0;
  SimTime now{};
  const auto parts = w.dag.rdd(adj).num_partitions;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bm.insert(BlockId{adj, p}, bytes, ++now, oracle));
    p = (p + 1) % parts;
  }
}
BENCHMARK(BM_BlockManagerInsertEvict);

void BM_EventQueue(benchmark::State& state) {
  EventQueue q;
  SimTime t{};
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.push(Event{t + SimTime{(i * 37) % 1000}, EventType::Tick,
                   TaskId::invalid(),
                   ExecutorId::invalid(), BlockId{}});
    }
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(q.pop());
    }
    t += SimTime{1000};
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          128);
}
BENCHMARK(BM_EventQueue);

void BM_FullSimSmall(benchmark::State& state) {
  KMeansParams params;
  params.partitions = 16;
  params.iterations = 3;
  const Workload w = make_kmeans(params);
  SimConfig config;
  config.topology.racks = 1;
  config.topology.nodes_per_rack = 4;
  config.topology.executors_per_node = 2;
  config.scheduler = SchedulerKind::Dagon;
  config.cache = CachePolicyKind::Lrp;
  config.delay = DelayKind::SensitivityAware;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_workload(w, config).metrics.jct);
  }
}
BENCHMARK(BM_FullSimSmall)->Unit(benchmark::kMillisecond);

void BM_CacheTraceTable1(benchmark::State& state) {
  const Workload w = make_example_dag();
  const auto schedule = fifo_fig1_schedule(kMinute);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_cache_trace(w.dag, schedule, CachePolicyKind::Mrd, 3));
  }
}
BENCHMARK(BM_CacheTraceTable1);

}  // namespace
}  // namespace dagon

BENCHMARK_MAIN();
