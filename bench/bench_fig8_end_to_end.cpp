// Fig. 8 reproduction: end-to-end comparison of FIFO+LRU (stock Spark),
// Graphene+LRU, Graphene+MRD and Dagon on the seven SparkBench-like
// workloads over the 18-node testbed.
//
// Paper: Dagon improves average JCT by 42%/31%/20% vs stock /
// Graphene+LRU / Graphene+MRD (up to 42% on ConnectedComponent), raises
// task execution time ~10% vs Graphene+MRD (Fig. 8b), and lifts CPU
// utilization by 26%/18%/13% (46% on ConnectedComponent).
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "exp/sweep.hpp"

using namespace dagon;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::experiment_header(
      "Fig. 8 — JCT, task execution time, CPU utilization across the "
      "suite",
      "Dagon < Graphene+MRD < Graphene+LRU < FIFO+LRU in JCT; Dagon "
      "highest CPU utilization; DAG-aware systems trade slightly longer "
      "tasks for parallelism");

  const auto systems = figure8_systems();
  CsvWriter csv(bench::csv_path("fig8_end_to_end"),
                {"workload", "system", "jct_sec", "jct_norm",
                 "avg_task_sec", "cpu_util", "hit_ratio"});

  TextTable jct({"workload", "FIFO+LRU", "Graphene+LRU", "Graphene+MRD",
                 "Dagon", "Dagon vs stock"});
  TextTable task({"workload", "FIFO+LRU", "Graphene+LRU", "Graphene+MRD",
                  "Dagon"});
  TextTable util({"workload", "FIFO+LRU", "Graphene+LRU", "Graphene+MRD",
                  "Dagon"});

  std::vector<double> sum_jct(systems.size(), 0.0);
  std::vector<double> sum_util(systems.size(), 0.0);
  std::vector<double> sum_task(systems.size(), 0.0);

  // The whole workload × system grid is independent runs: fan it over
  // the sweep engine, then walk the results in submission order.
  std::vector<SweepRun> grid;
  for (const WorkloadId id : sparkbench_suite()) {
    const Workload w = make_workload(id, bench::bench_scale());
    for (const SystemCombo& combo : systems) {
      grid.push_back({std::string(workload_name(id)) + "/" + combo.label,
                      w, apply_combo(bench::bench_testbed(), combo)});
    }
  }
  const SweepReport sweep =
      run_sweep(grid, SweepOptions{bench::options().jobs});

  std::size_t next = 0;
  for (const WorkloadId id : sparkbench_suite()) {
    std::vector<std::string> jct_row{workload_name(id)};
    std::vector<std::string> task_row{workload_name(id)};
    std::vector<std::string> util_row{workload_name(id)};
    double stock_jct = 0.0;
    double dagon_jct = 0.0;
    for (std::size_t i = 0; i < systems.size(); ++i) {
      const RunMetrics& m = sweep.runs[next++].metrics;
      const double jct_sec = to_seconds(m.jct);
      if (i == 0) stock_jct = jct_sec;
      if (i + 1 == systems.size()) dagon_jct = jct_sec;
      jct_row.push_back(TextTable::num(jct_sec, 1));
      task_row.push_back(TextTable::num(m.avg_task_duration_sec(), 2));
      util_row.push_back(TextTable::percent(m.cpu_utilization()));
      sum_jct[i] += jct_sec;
      sum_util[i] += m.cpu_utilization();
      sum_task[i] += m.avg_task_duration_sec();
      csv.add_row({workload_name(id), systems[i].label,
                   TextTable::num(jct_sec, 2),
                   TextTable::num(jct_sec / stock_jct, 3),
                   TextTable::num(m.avg_task_duration_sec(), 3),
                   TextTable::num(m.cpu_utilization(), 3),
                   TextTable::num(m.cache.hit_ratio(), 3)});
    }
    jct_row.push_back(bench::delta(dagon_jct, stock_jct));
    jct.add_row(jct_row);
    task.add_row(task_row);
    util.add_row(util_row);
  }

  const auto n = static_cast<double>(sparkbench_suite().size());
  std::cout << "(a) job completion time [s]\n";
  jct.add_row({"suite mean", TextTable::num(sum_jct[0] / n, 1),
               TextTable::num(sum_jct[1] / n, 1),
               TextTable::num(sum_jct[2] / n, 1),
               TextTable::num(sum_jct[3] / n, 1),
               bench::delta(sum_jct[3], sum_jct[0])});
  jct.print(std::cout);
  std::cout << "paper: Dagon -42% vs stock, -31% vs Graphene+LRU, -20% "
               "vs Graphene+MRD (suite average)\n\n";

  std::cout << "(b) average task execution time [s]\n";
  task.add_row({"suite mean", TextTable::num(sum_task[0] / n, 2),
                TextTable::num(sum_task[1] / n, 2),
                TextTable::num(sum_task[2] / n, 2),
                TextTable::num(sum_task[3] / n, 2)});
  task.print(std::cout);
  std::cout << "paper: DAG-aware systems run ~10% longer tasks than "
               "FIFO (low-locality fills)\n\n";

  std::cout << "(c) CPU utilization\n";
  util.add_row({"suite mean", TextTable::percent(sum_util[0] / n),
                TextTable::percent(sum_util[1] / n),
                TextTable::percent(sum_util[2] / n),
                TextTable::percent(sum_util[3] / n)});
  util.print(std::cout);
  std::cout << "paper: Dagon +26%/+18%/+13% vs stock / G+LRU / G+MRD\n";
  std::cout << "CSV: " << bench::csv_path("fig8_end_to_end") << "\n";
  std::cout << "sweep: " << sweep.runs.size() << " runs, "
            << TextTable::num(sweep.wall_seconds, 2) << "s wall @ "
            << sweep.jobs << " jobs ("
            << TextTable::num(sweep.runs_per_sec(), 1) << " runs/sec)\n";
  return 0;
}
