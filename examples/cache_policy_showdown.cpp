// Example: all four cache policies (LRU / LRC / MRD / LRP) on one
// I/O-intensive workload under both FIFO and Dagon scheduling — a wider
// grid than the paper's Fig. 11, showing where each policy's assumption
// breaks.
//
//   $ ./cache_policy_showdown
#include <iostream>

#include "core/dagon.hpp"

int main() {
  using namespace dagon;

  const Workload w = make_connected_component(48);
  std::cout << "ConnectedComponent: " << w.dag.num_stages()
            << " stages (gather/scatter supersteps over two cached "
               "adjacency views)\n\n";

  SimConfig base = paper_testbed();
  base.topology.racks = 1;
  base.topology.nodes_per_rack = 3;
  base.topology.executors_per_node = 2;
  base.topology.cache_bytes_per_executor = 2 * kGiB;

  TextTable t({"scheduler", "policy", "JCT", "hit ratio", "evictions",
               "proactive", "prefetches"});
  for (const SchedulerKind sched :
       {SchedulerKind::Fifo, SchedulerKind::Dagon}) {
    for (const CachePolicyKind policy :
         {CachePolicyKind::Lru, CachePolicyKind::Lrc, CachePolicyKind::Mrd,
          CachePolicyKind::Lrp}) {
      SimConfig config = base;
      config.scheduler = sched;
      config.cache = policy;
      config.delay = sched == SchedulerKind::Dagon
                         ? DelayKind::SensitivityAware
                         : DelayKind::Native;
      const RunMetrics m = run_workload(w, config).metrics;
      t.add_row({scheduler_name(sched), cache_policy_name(policy),
                 format_duration(m.jct),
                 TextTable::percent(m.cache.hit_ratio()),
                 std::to_string(m.cache.evictions),
                 std::to_string(m.cache.proactive_evictions),
                 std::to_string(m.cache.prefetches)});
    }
  }
  t.print(std::cout);

  std::cout <<
      "\nWhat to look for:\n"
      "  * LRU keeps dead vertex-state blocks (recently written) and\n"
      "    evicts the adjacency the next superstep needs;\n"
      "  * LRC fixes the dead-block problem but is blind to WHEN blocks\n"
      "    are needed;\n"
      "  * MRD predicts 'when' by stage id — right under FIFO, wrong\n"
      "    once Dagon reorders stages by priority value;\n"
      "  * LRP uses the scheduler's own pv_i, so eviction, admission and\n"
      "    prefetch all agree with what will actually run next.\n";
  return 0;
}
