// Quickstart: build the paper's Fig. 1 example DAG, run it through the
// simulated cluster under stock Spark (FIFO+LRU) and under Dagon, and
// print what the middleware changes.
//
//   $ ./quickstart
#include <iostream>

#include "core/dagon.hpp"

int main() {
  using namespace dagon;

  // Seconds instead of minutes so the example runs reflect Fig. 2's
  // shape on a human-readable scale.
  ExampleDagParams params;
  params.minute = kSec;
  const Workload workload = make_example_dag(params);

  std::cout << "Fig. 1 example DAG: " << workload.dag.num_stages()
            << " stages, " << workload.dag.total_tasks() << " tasks, depth "
            << workload.dag.depth() << "\n";
  const auto pv = initial_priority_values(workload.dag);
  for (const Stage& s : workload.dag.stages()) {
    std::cout << "  " << s.name << ": " << s.num_tasks << " tasks x <"
              << s.task_cpus << " vCPU, "
              << format_duration(s.task_duration) << ">, w="
              << s.workload() / kSec << ", pv="
              << pv[static_cast<std::size_t>(s.id.value())] / kSec << "\n";
  }

  // One 16-vCPU executor, as in the paper's walk-through.
  SimConfig base;
  base.topology.racks = 1;
  base.topology.nodes_per_rack = 1;
  base.topology.executors_per_node = 1;
  base.topology.cores_per_executor = Cpus{16};
  base.topology.cache_bytes_per_executor = 64 * kMiB;
  base.hdfs.replication = 1;

  for (const SystemCombo& combo : {stock_spark(), dagon_full()}) {
    const RunResult result = run_system(workload, combo, base);
    std::cout << "\n[" << combo.label << "]\n"
              << "  job completion time: "
              << format_duration(result.metrics.jct) << "\n"
              << "  CPU utilization:     "
              << TextTable::percent(result.metrics.cpu_utilization()) << "\n"
              << "  avg parallelism:     "
              << TextTable::num(result.metrics.avg_parallelism()) << "\n"
              << "  cache hit ratio:     "
              << TextTable::percent(result.metrics.cache.hit_ratio()) << "\n"
              << "  busy vCPUs timeline: "
              << sparkline(result.metrics.busy_cores, SimTime{0}, result.metrics.jct,
                           40, 16.0)
              << "\n";
  }
  std::cout << "\nFIFO leaves 4 vCPUs idle early and serializes the long "
               "S2->S3->S4 chain;\nDagon overlaps it with S1 "
               "(Fig. 2) and finishes ~30% sooner.\n";
  return 0;
}
