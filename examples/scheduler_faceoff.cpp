// Example: all five stage-selection policies (FIFO, Fair, CriticalPath,
// Graphene, Dagon) head-to-head on each SparkBench-like workload, with
// caching pinned to LRU so only the scheduling differs.
//
//   $ ./scheduler_faceoff [scale]          (default scale: 1.0)
#include <cstdlib>
#include <iostream>

#include "core/dagon.hpp"

int main(int argc, char** argv) {
  using namespace dagon;

  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::cout << "scale " << scale
            << " (stage width ~" << static_cast<int>(96 * scale)
            << " tasks on 96 vCPUs)\n\n";

  SimConfig base = paper_testbed();
  base.topology.racks = 1;
  base.topology.nodes_per_rack = 6;
  base.topology.executors_per_node = 4;

  const SchedulerKind schedulers[] = {
      SchedulerKind::Fifo, SchedulerKind::Fair, SchedulerKind::CriticalPath,
      SchedulerKind::Graphene, SchedulerKind::Dagon};

  TextTable t({"workload", "FIFO", "Fair", "CP", "Graphene", "Dagon",
               "best"});
  for (const WorkloadId id : sparkbench_suite()) {
    const Workload w = make_workload(id, WorkloadScale{scale});
    std::vector<std::string> row{workload_name(id)};
    double best = 1e300;
    std::string best_name;
    for (const SchedulerKind kind : schedulers) {
      SimConfig config = base;
      config.scheduler = kind;
      const double jct = to_seconds(run_workload(w, config).metrics.jct);
      row.push_back(TextTable::num(jct, 1));
      if (jct < best) {
        best = jct;
        best_name = scheduler_name(kind);
      }
    }
    row.push_back(best_name);
    t.add_row(row);
  }
  t.print(std::cout);
  std::cout << "\nJCT in seconds; LRU caching and native delay "
               "scheduling everywhere — only stage selection differs.\n";
  return 0;
}
