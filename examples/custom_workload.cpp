// Example: building your own application DAG with JobDagBuilder and
// running it through the middleware — the integration path a downstream
// user follows to evaluate Dagon on their workload.
//
// The DAG below is a small ETL pipeline: two inputs (events, users) are
// parsed in parallel, joined, aggregated along two branches of different
// weight, and exported.
//
//   $ ./custom_workload
#include <iostream>

#include "core/dagon.hpp"

int main() {
  using namespace dagon;

  JobDagBuilder b("etl-pipeline");

  // Inputs: event log (large) and user table (small); neither persisted.
  const RddId events = b.input_rdd("events", 64, 256 * kMiB);
  const RddId users = b.input_rdd("users", 64, 32 * kMiB);
  b.set_rdd_cacheable(events, false);
  b.set_rdd_cacheable(users, false);

  const StageId parse_events =
      b.add_stage({.name = "parse-events",
                   .inputs = {{events, DepKind::Narrow}},
                   .num_tasks = 64,
                   .task_cpus = Cpus{1},
                   .task_duration = 2 * kSec,
                   .output_bytes_per_partition = 96 * kMiB,
                   .output_name = "clean_events"});
  const StageId parse_users =
      b.add_stage({.name = "parse-users",
                   .inputs = {{users, DepKind::Narrow}},
                   .num_tasks = 64,
                   .task_cpus = Cpus{1},
                   .task_duration = kSec,
                   .output_bytes_per_partition = 16 * kMiB,
                   .output_name = "clean_users"});

  // Join is a wide dependency on both sides; its output is persisted and
  // re-read by the two aggregation branches.
  const StageId join = b.add_stage(
      {.name = "join",
       .inputs = {{b.output_of(parse_events), DepKind::Shuffle},
                  {b.output_of(parse_users), DepKind::Shuffle}},
       .num_tasks = 64,
       .task_cpus = Cpus{2},
       .task_duration = 3 * kSec,
       .output_bytes_per_partition = 64 * kMiB,
       .output_name = "joined"});

  const StageId sessionize =
      b.add_stage({.name = "sessionize",
                   .inputs = {{b.output_of(join), DepKind::Narrow}},
                   .num_tasks = 64,
                   .task_cpus = Cpus{3},  // heavy branch
                   .task_duration = 5 * kSec,
                   .output_bytes_per_partition = 8 * kMiB,
                   .cache_output = false});
  const StageId daily_counts =
      b.add_stage({.name = "daily-counts",
                   .inputs = {{b.output_of(join), DepKind::Shuffle}},
                   .num_tasks = 16,
                   .task_cpus = Cpus{1},  // light branch
                   .task_duration = 2 * kSec,
                   .output_bytes_per_partition = kMiB,
                   .cache_output = false});

  b.add_stage({.name = "export",
               .inputs = {{b.output_of(sessionize), DepKind::Shuffle},
                          {b.output_of(daily_counts), DepKind::Shuffle}},
               .num_tasks = 8,
               .task_cpus = Cpus{1},
               .task_duration = kSec,
               .output_bytes_per_partition = Bytes{0}});

  const Workload workload{"etl-pipeline", WorkloadCategory::Mixed,
                          b.build()};

  const DagShape shape = analyze_shape(workload.dag);
  std::cout << "DAG: " << shape.stages << " stages, " << shape.tasks
            << " tasks, depth " << shape.depth << ", critical path "
            << format_duration(shape.critical_path)
            << ", parallelism ratio "
            << TextTable::num(shape.parallelism_ratio, 1) << "\n\n";

  SimConfig cluster = paper_testbed();
  cluster.topology.racks = 1;
  cluster.topology.nodes_per_rack = 4;
  cluster.topology.executors_per_node = 2;

  TextTable t({"system", "JCT", "CPU util", "cache hits", "lower bound x"});
  const SimTime bound =
      makespan_lower_bound(workload.dag, Topology(cluster.topology).total_cores());
  for (const SystemCombo& combo : figure8_systems()) {
    const RunMetrics m = run_system(workload, combo, cluster).metrics;
    t.add_row({combo.label, format_duration(m.jct),
               TextTable::percent(m.cpu_utilization()),
               TextTable::percent(m.cache.hit_ratio()),
               TextTable::num(static_cast<double>(m.jct.count()) /
                                  static_cast<double>(bound.count()),
                              2)});
  }
  t.print(std::cout);
  std::cout << "\nThe heavy sessionize branch (d=3) fragments 4-core\n"
               "executors; watch the DAG-aware systems fill the gaps with\n"
               "daily-counts tasks while FIFO runs them serially.\n";
  return 0;
}
