// Example: the paper's §II-A KMeans case study, interactively.
//
// Runs KMeans on the 7-machine case-study cluster under a sweep of
// spark.locality.wait values and shows how the two scan stages and the
// fifteen iteration stages respond differently — the observation that
// motivates sensitivity-aware delay scheduling.
//
//   $ ./kmeans_locality [wait_seconds...]      (default: 0 1.5 3 5)
#include <cstdlib>
#include <iostream>

#include "core/dagon.hpp"

int main(int argc, char** argv) {
  using namespace dagon;

  std::vector<double> waits{0.0, 1.5, 3.0, 5.0};
  if (argc > 1) {
    waits.clear();
    for (int i = 1; i < argc; ++i) waits.push_back(std::atof(argv[i]));
  }

  const Workload w = make_kmeans();
  std::cout << "KMeans: " << w.dag.num_stages() << " stages, "
            << w.dag.total_tasks() << " tasks\n"
            << "cluster: 7 nodes x 4 executors x 4 vCPUs, HDFS "
               "replication 1 (case study)\n\n";

  TextTable t({"wait", "scan (s0)", "iter mean (s1-15)", "rescan (s16)",
               "final (s17)", "JCT", "hi-locality"});
  for (const double wait_s : waits) {
    SimConfig config = case_study_cluster();
    config.waits = LocalityWaits::uniform(from_seconds(wait_s));
    const RunMetrics m = run_workload(w, config).metrics;
    double iter_sum = 0.0;
    for (std::int32_t s = 1; s <= 15; ++s) {
      iter_sum += m.stage_duration_sec(StageId(s));
    }
    t.add_row({TextTable::num(wait_s, 1) + "s",
               TextTable::num(m.stage_duration_sec(StageId(0)), 1) + "s",
               TextTable::num(iter_sum / 15.0, 2) + "s",
               TextTable::num(m.stage_duration_sec(StageId(16)), 1) + "s",
               TextTable::num(m.stage_duration_sec(StageId(17)), 2) + "s",
               format_duration(m.jct),
               TextTable::percent(m.high_locality_fraction())});
  }
  t.print(std::cout);

  std::cout <<
      "\nReading the table (paper Fig. 3):\n"
      "  * iteration stages re-read cached 64 MiB partitions: without a\n"
      "    wait, idle executors grab them at node/rack level and pay the\n"
      "    ~9x deserialization penalty;\n"
      "  * the scan stages read raw HDFS blocks: a remote read pipelines\n"
      "    over the 10 Gbps link, so waiting only idles executors.\n"
      "Dagon's sensitivity-aware delay scheduling makes that call per\n"
      "stage instead of per cluster-wide wait constant.\n";
  return 0;
}
