// Property tests: the calendar (bucketed) EventQueue must pop the exact
// (time, seq) sequence a plain binary heap would — the total order the
// whole simulator's determinism rests on (DESIGN.md §11).
#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include "sim/event_queue.hpp"

namespace dagon {
namespace {

/// Reference model: the pre-overhaul binary heap on (time, seq).
class ReferenceQueue {
 public:
  void push(const Event& e) { heap_.push(Entry{e, next_seq_++}); }

  bool pop_into(Event& out) {
    if (heap_.empty()) return false;
    out = heap_.top().event;
    heap_.pop();
    return true;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

 private:
  struct Entry {
    Event event;
    std::uint64_t seq;
    bool operator>(const Entry& other) const {
      if (event.time != other.event.time) {
        return event.time > other.event.time;
      }
      return seq > other.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

Event make_event(SimTime t, std::uint32_t tag) {
  Event e;
  e.time = t;
  e.type = EventType::Tick;
  // Tag the payload so sequence mismatches are visible even on time ties.
  e.aux = static_cast<std::int32_t>(tag);
  return e;
}

/// Pops both queues fully and asserts identical (time, payload) streams.
void drain_and_compare(EventQueue& q, ReferenceQueue& ref) {
  Event got;
  Event want;
  std::size_t i = 0;
  while (ref.pop_into(want)) {
    ASSERT_TRUE(q.pop_into(got)) << "bucketed queue ran dry at pop " << i;
    ASSERT_EQ(got.time, want.time) << "time mismatch at pop " << i;
    ASSERT_EQ(got.aux, want.aux) << "order mismatch at pop " << i;
    ++i;
  }
  EXPECT_FALSE(q.pop_into(got)) << "bucketed queue has extra events";
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueProperty, MatchesBinaryHeapOnUniformStorm) {
  std::mt19937_64 rng(20260809);
  std::uniform_int_distribution<std::int64_t> dist(0, (600 * kSec).count());
  for (int round = 0; round < 20; ++round) {
    EventQueue q;
    ReferenceQueue ref;
    std::uint32_t tag = 0;
    for (int i = 0; i < 2000; ++i) {
      const Event e = make_event(SimTime{dist(rng)}, tag++);
      q.push(e);
      ref.push(e);
    }
    drain_and_compare(q, ref);
  }
}

// Heavy duplicate times: seq must break every tie identically.
TEST(EventQueueProperty, MatchesBinaryHeapOnClusteredTies) {
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<std::int64_t> cluster(0, 7);
  for (int round = 0; round < 20; ++round) {
    EventQueue q;
    ReferenceQueue ref;
    std::uint32_t tag = 0;
    for (int i = 0; i < 1500; ++i) {
      const Event e = make_event(cluster(rng) * kMsec, tag++);
      q.push(e);
      ref.push(e);
    }
    drain_and_compare(q, ref);
  }
}

// Interleaved push/pop with a monotone clock, as the sim driver does:
// every pop defines `now`, and pushes are now + bounded delay. Exercises
// in-window bucketing, circular wrap, and bucket advance.
TEST(EventQueueProperty, MatchesBinaryHeapOnMonotoneInterleaving) {
  std::mt19937_64 rng(777);
  std::uniform_int_distribution<std::int64_t> delay(0, (90 * kSec).count());
  std::uniform_int_distribution<int> burst(1, 4);
  for (int round = 0; round < 10; ++round) {
    EventQueue q;
    ReferenceQueue ref;
    std::uint32_t tag = 0;
    const Event seed = make_event(SimTime{0}, tag++);
    q.push(seed);
    ref.push(seed);
    Event got;
    Event want;
    std::size_t pops = 0;
    while (ref.pop_into(want)) {
      ASSERT_TRUE(q.pop_into(got));
      ASSERT_EQ(got.time, want.time) << "at pop " << pops;
      ASSERT_EQ(got.aux, want.aux) << "at pop " << pops;
      ++pops;
      if (pops < 3000) {
        const int n = burst(rng);
        for (int i = 0; i < n; ++i) {
          const Event e =
              make_event(want.time + SimTime{delay(rng)}, tag++);
          q.push(e);
          ref.push(e);
        }
      }
    }
    EXPECT_FALSE(q.pop_into(got));
  }
}

// Far-future jumps force overflow-heap traffic, rebase, and promotion
// back into buckets; stragglers below the re-anchored window must still
// come out in order (they ride the overflow heap).
TEST(EventQueueProperty, MatchesBinaryHeapAcrossHorizonJumps) {
  std::mt19937_64 rng(1234);
  std::uniform_int_distribution<std::int64_t> near(0, (10 * kSec).count());
  std::uniform_int_distribution<std::int64_t> far(0,
                                                  (4 * 3600 * kSec).count());
  std::uniform_int_distribution<int> pick(0, 9);
  for (int round = 0; round < 10; ++round) {
    EventQueue q;
    ReferenceQueue ref;
    std::uint32_t tag = 0;
    SimTime now{};
    for (int step = 0; step < 400; ++step) {
      const int n = pick(rng) + 1;
      for (int i = 0; i < n; ++i) {
        // 30% of pushes land hours out, the rest near `now`.
        const SimTime t =
            pick(rng) < 3 ? SimTime{far(rng)} : now + SimTime{near(rng)};
        const Event e = make_event(t, tag++);
        q.push(e);
        ref.push(e);
      }
      // Pop a few to advance the clock (possibly across the horizon).
      for (int i = 0; i < 3 && !ref.empty(); ++i) {
        Event got;
        Event want;
        ASSERT_TRUE(ref.pop_into(want));
        ASSERT_TRUE(q.pop_into(got));
        ASSERT_EQ(got.time, want.time);
        ASSERT_EQ(got.aux, want.aux);
        now = want.time;
      }
    }
    drain_and_compare(q, ref);
  }
}

// Adversarial boundary sweep: every push lands at the pop clock plus an
// EXACT multiple of the bucket width or the horizon (or its ±1
// neighbor). Pops then walk the clock onto those edges, so rebase
// re-anchors precisely on bucket/horizon boundaries while the overflow
// heap still holds entries at the rim of the new window — the promotion
// split (bucket vs. stay-in-overflow) sits on the == case of every
// comparison, and must match the reference heap pop-for-pop.
TEST(EventQueueProperty, MatchesBinaryHeapOnExactBoundaryJumps) {
  // Mirror of EventQueue's private geometry (event_queue.hpp): 2^15 µs
  // buckets x 1024 buckets = 2^25 µs horizon. Keep in sync.
  constexpr SimTime kWidth{std::int64_t{1} << 15};
  constexpr SimTime kHorizon{std::int64_t{1} << 25};
  constexpr SimTime kTick{1};
  const std::vector<SimTime> offsets = {
      SimTime{0},
      kTick,
      kWidth - kTick,
      kWidth,
      kWidth + kTick,
      2 * kWidth,
      513 * kWidth,  // mid-calendar: forces circular bucket wrap
      kHorizon - kWidth,
      kHorizon - kTick,
      kHorizon,  // first overflow-eligible offset
      kHorizon + kTick,
      2 * kHorizon - kTick,
      2 * kHorizon,
      2 * kHorizon + kTick,
      5 * kHorizon + 3 * kWidth,  // multi-horizon jump, off-rim landing
  };
  std::mt19937_64 rng(9001);
  std::uniform_int_distribution<std::size_t> pick_off(0, offsets.size() - 1);
  std::uniform_int_distribution<int> burst(1, 6);
  std::uniform_int_distribution<int> pops(1, 4);
  for (int round = 0; round < 10; ++round) {
    EventQueue q;
    ReferenceQueue ref;
    std::uint32_t tag = 0;
    SimTime now{};
    const Event seed = make_event(SimTime{0}, tag++);
    q.push(seed);
    ref.push(seed);
    for (int step = 0; step < 600; ++step) {
      // Calendar pushes (offset < horizon) and overflow pushes
      // (offset >= horizon) interleave freely within one burst.
      const int n = burst(rng);
      for (int i = 0; i < n; ++i) {
        const Event e = make_event(now + offsets[pick_off(rng)], tag++);
        q.push(e);
        ref.push(e);
      }
      for (int i = 0, k = pops(rng); i < k && !ref.empty(); ++i) {
        Event got;
        Event want;
        ASSERT_TRUE(ref.pop_into(want));
        ASSERT_TRUE(q.pop_into(got));
        ASSERT_EQ(got.time, want.time)
            << "round " << round << " step " << step;
        ASSERT_EQ(got.aux, want.aux) << "round " << round << " step " << step;
        now = want.time;
      }
    }
    drain_and_compare(q, ref);
  }
}

// Deterministic rim check: one far-forward pop sequence that re-anchors
// the calendar exactly at a horizon multiple, with overflow entries
// sitting at h-1 / h / h+1 around every multiple, plus a straggler
// pushed BELOW the re-anchored window afterwards (it must ride the
// overflow heap back out in (time, seq) order).
TEST(EventQueueProperty, PromotionSplitsExactHorizonRim) {
  constexpr SimTime kWidth{std::int64_t{1} << 15};
  constexpr SimTime kHorizon{std::int64_t{1} << 25};
  constexpr SimTime kTick{1};
  EventQueue q;
  ReferenceQueue ref;
  std::uint32_t tag = 0;
  const auto push = [&](SimTime t) {
    const Event e = make_event(t, tag++);
    q.push(e);
    ref.push(e);
  };
  push(SimTime{0});
  for (std::int64_t k = 1; k <= 4; ++k) {
    push(k * kHorizon - kTick);  // last bucket of the k-1 window
    push(k * kHorizon);          // exactly on the anchor candidate
    push(k * kHorizon + kTick);
    push(k * kHorizon + (kWidth - kTick));  // last slot of the first bucket
    push(k * kHorizon + kWidth);            // first slot of the second
  }
  // Pop through the first rim only: 0, h-1, h, h+1. The pop of `h`
  // lands the rebase anchor exactly on the horizon multiple.
  for (int i = 0; i < 4; ++i) {
    Event got;
    Event want;
    ASSERT_TRUE(ref.pop_into(want));
    ASSERT_TRUE(q.pop_into(got));
    ASSERT_EQ(got.time, want.time) << "rim pop " << i;
    ASSERT_EQ(got.aux, want.aux) << "rim pop " << i;
  }
  push(kWidth);            // straggler far below the re-anchored window
  push(2 * kHorizon);      // duplicate of an already-queued rim time
  push(kHorizon + kWidth);  // ties the queued first-bucket entry
  drain_and_compare(q, ref);
}

TEST(EventQueue, PopReturnsOptionalAndReserveIsHarmless) {
  EventQueue q;
  q.reserve(1024);
  EXPECT_EQ(q.pop(), std::nullopt);
  q.push(make_event(5 * kMsec, 1));
  q.push(make_event(2 * kMsec, 2));
  const auto a = q.pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->time, 2 * kMsec);
  EXPECT_EQ(q.next_time(), 5 * kMsec);
  const auto b = q.pop();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->time, 5 * kMsec);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace dagon
