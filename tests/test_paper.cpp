// Paper-level integration tests: small-scale versions of the paper's
// experiments with directional assertions. These pin the *shape* of
// every headline claim (who wins, in which regime) so a regression in
// any subsystem surfaces as a reversed comparison, not just a number.
#include <gtest/gtest.h>

#include "core/dagon.hpp"

namespace dagon {
namespace {

/// A small paper-testbed-like cluster that keeps runtimes in the
/// millisecond range for CI.
SimConfig mini_testbed() {
  SimConfig config = paper_testbed();
  // 24 vCPUs vs ~50-150 vCPU-wide stages: multi-wave execution, so
  // stage-selection policy actually matters (as on the real testbed).
  config.topology.racks = 1;
  config.topology.nodes_per_rack = 3;
  config.topology.executors_per_node = 2;
  config.topology.cache_bytes_per_executor = 512 * kMiB;
  return config;
}

WorkloadScale mini_scale() { return WorkloadScale{0.5}; }

// --- Fig. 2: the running example --------------------------------------------

TEST(PaperFig2, DagAwareBeatsFifoByPaperMargin) {
  const Workload w = make_example_dag();
  const auto fifo = trace_priority_assignment(w.dag, Cpus{16}, SchedulerKind::Fifo);
  const auto dagon =
      trace_priority_assignment(w.dag, Cpus{16}, SchedulerKind::Dagon);
  EXPECT_EQ(fifo.makespan, 13 * kMinute);
  EXPECT_EQ(dagon.makespan, 9 * kMinute);
  // Fig. 2(a): FIFO wastes 4 vCPUs from t=0 to t=4 on top of the tail.
  EXPECT_GT(fifo.idle_cpu_time, dagon.idle_cpu_time);
}

TEST(PaperFig2, DagonMatchesLowerBoundShape) {
  const Workload w = make_example_dag();
  const auto dagon =
      trace_priority_assignment(w.dag, Cpus{16}, SchedulerKind::Dagon);
  // 9 min vs the 7-min bound: within 30% of optimal for this DAG.
  EXPECT_LE(dagon.makespan, makespan_lower_bound(w.dag, Cpus{16}) * 13 / 10);
}

// --- Fig. 3: locality-wait sensitivity ----------------------------------------

class Fig3KMeans : public ::testing::Test {
 protected:
  static RunResult run_with_wait(SimTime wait) {
    KMeansParams params;
    // 240 feature partitions over 28 executors: ~8.6 cached blocks per
    // executor. The fractional remainder leaves a few executors with
    // longer process-local queues; without delay the others steal those
    // tasks at node/rack level and pay the ~9x deserialization penalty
    // (the paper's Fig. 3 mechanism).
    params.partitions = 240;
    params.iterations = 4;
    const Workload w = make_kmeans(params);
    SimConfig config = case_study_cluster();
    config.waits = LocalityWaits::uniform(wait);
    return run_workload(w, config);
  }
};

TEST_F(Fig3KMeans, DelaySchedulingSpeedsUpIterationStages) {
  const RunResult no_delay = run_with_wait(SimTime{0});
  const RunResult delay = run_with_wait(3 * kSec);
  // Iteration stages (1..4) read cached 64 MiB features: process
  // locality matters ~15x, so the 3 s wait pays off handsomely.
  double iter_no_delay = 0.0;
  double iter_delay = 0.0;
  for (std::int32_t s = 1; s <= 4; ++s) {
    iter_no_delay += no_delay.metrics.stage_duration_sec(StageId(s));
    iter_delay += delay.metrics.stage_duration_sec(StageId(s));
  }
  EXPECT_LT(iter_delay, iter_no_delay * 0.8)
      << "delay=" << iter_delay << "s no-delay=" << iter_no_delay << "s";
}

TEST_F(Fig3KMeans, LongDelaySlowsScanStage) {
  const RunResult no_delay = run_with_wait(SimTime{0});
  const RunResult delay = run_with_wait(5 * kSec);
  // Stage 0 scans raw HDFS blocks (rep=1, skewed): waiting for
  // node-local slots only idles executors (paper: 15 s -> 27 s with a
  // 3+ s wait; our executors refresh the 3 s ladder within a 7 s scan
  // task, so the idling shows from 5 s up).
  EXPECT_GT(delay.metrics.stage_duration_sec(StageId(0)),
            no_delay.metrics.stage_duration_sec(StageId(0)) * 1.1);
}

TEST_F(Fig3KMeans, DelayImprovesIterationLocality) {
  const RunResult no_delay = run_with_wait(SimTime{0});
  const RunResult delay = run_with_wait(3 * kSec);
  EXPECT_GT(delay.metrics.high_locality_fraction(),
            no_delay.metrics.high_locality_fraction());
}

// --- Fig. 8: end-to-end system comparison -------------------------------------

TEST(PaperFig8, DagonNeverLosesToStockSparkAndWinsOverall) {
  double stock_total = 0.0;
  double dagon_total = 0.0;
  for (const WorkloadId id : sparkbench_suite()) {
    const Workload w = make_workload(id, mini_scale());
    const double stock =
        to_seconds(run_system(w, stock_spark(), mini_testbed()).metrics.jct);
    const double dagon =
        to_seconds(run_system(w, dagon_full(), mini_testbed()).metrics.jct);
    // KMeans is a pure chain of uniform d=1 stages: on the symmetric
    // mini cluster every scheduler produces the same schedule, so allow
    // equality per-workload and require a strict win on the suite.
    EXPECT_LE(dagon, stock * 1.001) << workload_name(id);
    stock_total += stock;
    dagon_total += dagon;
  }
  EXPECT_LT(dagon_total, stock_total * 0.95);
}

TEST(PaperFig8, DagonBeatsGrapheneMrdOnAverage) {
  double graphene_total = 0.0;
  double dagon_total = 0.0;
  for (const WorkloadId id : sparkbench_suite()) {
    const Workload w = make_workload(id, mini_scale());
    graphene_total +=
        to_seconds(run_system(w, graphene_mrd(), mini_testbed()).metrics.jct);
    dagon_total +=
        to_seconds(run_system(w, dagon_full(), mini_testbed()).metrics.jct);
  }
  EXPECT_LT(dagon_total, graphene_total);
}

TEST(PaperFig8, DagonImprovesCpuUtilization) {
  double stock_util = 0.0;
  double dagon_util = 0.0;
  for (const WorkloadId id : sparkbench_suite()) {
    const Workload w = make_workload(id, mini_scale());
    stock_util +=
        run_system(w, stock_spark(), mini_testbed()).metrics.cpu_utilization();
    dagon_util +=
        run_system(w, dagon_full(), mini_testbed()).metrics.cpu_utilization();
  }
  EXPECT_GT(dagon_util, stock_util);
}

// --- Fig. 9: task assignment alone (caching disabled) --------------------------

TEST(PaperFig9, PriorityAssignmentBeatsFifoWithCachingOff) {
  SimConfig base = mini_testbed();
  base.cache_enabled = false;
  for (const WorkloadId id :
       {WorkloadId::DecisionTree, WorkloadId::LogisticRegression}) {
    const Workload w = make_workload(id, mini_scale());
    SimConfig fifo = base;
    fifo.scheduler = SchedulerKind::Fifo;
    SimConfig dagon = base;
    dagon.scheduler = SchedulerKind::Dagon;
    const double jct_fifo = to_seconds(run_workload(w, fifo).metrics.jct);
    const double jct_dagon = to_seconds(run_workload(w, dagon).metrics.jct);
    EXPECT_LT(jct_dagon, jct_fifo) << workload_name(id);
  }
}

// --- Fig. 10: sensitivity-aware delay scheduling --------------------------------

TEST(PaperFig10, SensitivityAwareReducesJctAndHighLocalityLaunches) {
  KMeansParams params;
  params.partitions = 240;  // multi-wave scans: idle executors appear
  params.iterations = 4;
  const Workload w = make_kmeans(params);
  SimConfig base = case_study_cluster();
  base.cache_enabled = true;

  SimConfig native = base;
  native.delay = DelayKind::Native;
  SimConfig aware = base;
  aware.delay = DelayKind::SensitivityAware;

  const RunMetrics m_native = run_workload(w, native).metrics;
  const RunMetrics m_aware = run_workload(w, aware).metrics;
  EXPECT_LT(m_aware.jct, m_native.jct);
  // Fewer tasks wait for high locality (the scan stages launch anywhere).
  EXPECT_LE(m_aware.locality_count(Locality::Process) +
                m_aware.locality_count(Locality::Node),
            m_native.locality_count(Locality::Process) +
                m_native.locality_count(Locality::Node));
  EXPECT_GE(m_aware.cpu_utilization(), m_native.cpu_utilization());
}

// --- Fig. 11: cache policy comparison -------------------------------------------

TEST(PaperFig11, MrdBeatsLruUnderFifo) {
  for (const WorkloadId id : cache_study_suite()) {
    const Workload w = make_workload(id, mini_scale());
    SimConfig base = mini_testbed();
    base.topology.cache_bytes_per_executor = 2 * kGiB;  // ~66% of the
    // working set: enough to matter, small enough to force evictions
    const auto systems = figure11_systems();
    const double lru =
        run_system(w, systems[0], base).metrics.cache.hit_ratio();
    const double mrd =
        run_system(w, systems[1], base).metrics.cache.hit_ratio();
    EXPECT_GE(mrd, lru) << workload_name(id);
  }
}

TEST(PaperFig11, DagAwarePoliciesBeatLruInHitRatio) {
  // Paper Fig. 11(a) reports LRP +11% hit ratio over MRD under Dagon.
  // Our LRP instead trades away cheap out-adjacency hits to keep the 4x
  // larger in-adjacency blocks hot: its hit *count* is lower but its
  // JCT is far better (see LrpJctBeatsMrdUnderDagon). What must hold is
  // that every DAG-aware policy dominates LRU, which hoards dead
  // vertex-state blocks.
  for (const WorkloadId id : cache_study_suite()) {
    const Workload w = make_workload(id, mini_scale());
    SimConfig base = mini_testbed();
    base.topology.cache_bytes_per_executor = 2 * kGiB;
    const auto systems = figure11_systems();
    const double lru =
        run_system(w, systems[0], base).metrics.cache.hit_ratio();
    const double mrd =
        run_system(w, systems[2], base).metrics.cache.hit_ratio();
    const double lrp =
        run_system(w, systems[3], base).metrics.cache.hit_ratio();
    EXPECT_GT(mrd, lru) << workload_name(id);
    EXPECT_GT(lrp, lru) << workload_name(id);
  }
}

TEST(PaperFig11, LrpJctBeatsMrdUnderDagon) {
  double mrd_total = 0.0;
  double lrp_total = 0.0;
  for (const WorkloadId id : cache_study_suite()) {
    const Workload w = make_workload(id, mini_scale());
    SimConfig base = mini_testbed();
    base.topology.cache_bytes_per_executor = 2 * kGiB;
    const auto systems = figure11_systems();
    mrd_total += to_seconds(run_system(w, systems[2], base).metrics.jct);
    lrp_total += to_seconds(run_system(w, systems[3], base).metrics.jct);
  }
  EXPECT_LT(lrp_total, mrd_total);
}

// --- joint operation: the paper's central claim ---------------------------------

TEST(PaperJoint, LrpPrioritiesTrackSchedulerState) {
  // Run Dagon+LRP on the Fig. 1 DAG and verify the cache saw priority
  // updates: dead blocks reclaimed, hot blocks hit.
  const Workload w = make_example_dag();
  SimConfig config;
  config.topology.cores_per_executor = Cpus{16};
  config.topology.cache_bytes_per_executor = 3 * kMiB;
  config.scheduler = SchedulerKind::Dagon;
  config.cache = CachePolicyKind::Lrp;
  const RunMetrics m = run_workload(w, config).metrics;
  EXPECT_GT(m.cache.local_memory_hits, 0);
  EXPECT_GT(m.cache.proactive_evictions, 0);  // dead blocks reclaimed
}

}  // namespace
}  // namespace dagon
