// dagonunits acceptance tests (DESIGN.md §14).
//
// Three layers of coverage:
//   1. Compile-time: the operator whitelist admits exactly the documented
//      algebra. SFINAE probes assert that forbidden mixes (time + bytes,
//      double × quantity, bytes × time, ...) do NOT compile, and that
//      whitelisted cross-ops produce the right result type.
//   2. Debug overflow traps: +, -, × on a quantity throw InvariantError
//      at the representation's edge (checked builds only).
//   3. Release equivalence: on non-overflowing inputs, quantity
//      arithmetic is bit-for-bit the raw int64 arithmetic it replaced —
//      the property the pinned fingerprints rest on.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/sim_time.hpp"
#include "common/units.hpp"

namespace dagon {
namespace {

// -- SFINAE probes -----------------------------------------------------------
// Each probe is true iff the expression compiles; no object is evaluated.

template <typename A, typename B, typename = void>
struct CanAdd : std::false_type {};
template <typename A, typename B>
struct CanAdd<A, B,
              std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanSub : std::false_type {};
template <typename A, typename B>
struct CanSub<A, B,
              std::void_t<decltype(std::declval<A>() - std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanMul : std::false_type {};
template <typename A, typename B>
struct CanMul<A, B,
              std::void_t<decltype(std::declval<A>() * std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanDiv : std::false_type {};
template <typename A, typename B>
struct CanDiv<A, B,
              std::void_t<decltype(std::declval<A>() / std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanMod : std::false_type {};
template <typename A, typename B>
struct CanMod<A, B,
              std::void_t<decltype(std::declval<A>() % std::declval<B>())>>
    : std::true_type {};

// Same-dimension arithmetic is allowed...
static_assert(CanAdd<SimTime, SimTime>::value);
static_assert(CanSub<SimTime, SimTime>::value);
static_assert(CanAdd<Bytes, Bytes>::value);
static_assert(CanAdd<CpuWork, CpuWork>::value);
static_assert(CanMod<SimTime, SimTime>::value);

// ...heterogeneous mixes are not.
static_assert(!CanAdd<SimTime, Bytes>::value);
static_assert(!CanAdd<Bytes, SimTime>::value);
static_assert(!CanSub<SimTime, CpuWork>::value);
static_assert(!CanAdd<SimTime, std::int64_t>::value);
static_assert(!CanAdd<std::int64_t, SimTime>::value);

// Integral scaling is allowed; double scaling must not compile (rounding
// decisions go through the named converters in common/).
static_assert(CanMul<SimTime, int>::value);
static_assert(CanMul<long long, Bytes>::value);
static_assert(CanDiv<SimTime, int>::value);
static_assert(!CanMul<SimTime, double>::value);
static_assert(!CanMul<double, SimTime>::value);
static_assert(!CanDiv<Bytes, double>::value);

// Same-tag × same-tag would be a dimension squared — not in the algebra.
static_assert(!CanMul<SimTime, SimTime>::value);
static_assert(!CanMul<Bytes, Bytes>::value);

// The cross-dimension whitelist: exactly Eq. (2) and its inverses.
static_assert(CanMul<Cpus, SimTime>::value);
static_assert(CanMul<SimTime, Cpus>::value);
static_assert(CanDiv<CpuWork, Cpus>::value);
static_assert(CanDiv<CpuWork, SimTime>::value);
static_assert(!CanMul<Bytes, SimTime>::value);
static_assert(!CanMul<Cpus, Bytes>::value);
static_assert(!CanDiv<Bytes, Cpus>::value);
static_assert(!CanDiv<SimTime, CpuWork>::value);

// Whitelisted cross-ops produce the documented result types.
static_assert(std::is_same_v<decltype(std::declval<Cpus>() *
                                      std::declval<SimTime>()),
                             CpuWork>);
static_assert(std::is_same_v<decltype(std::declval<CpuWork>() /
                                      std::declval<Cpus>()),
                             SimTime>);
static_assert(std::is_same_v<decltype(std::declval<CpuWork>() /
                                      std::declval<SimTime>()),
                             std::int64_t>);
static_assert(std::is_same_v<decltype(std::declval<SimTime>() /
                                      std::declval<SimTime>()),
                             std::int64_t>);
static_assert(std::is_same_v<decltype(std::declval<SimTime>() %
                                      std::declval<SimTime>()),
                             SimTime>);

// No implicit conversion in either direction: the only exits from the
// type system are `.count()` and the sanctioned converters.
static_assert(!std::is_convertible_v<std::int64_t, SimTime>);
static_assert(!std::is_convertible_v<SimTime, std::int64_t>);
static_assert(!std::is_convertible_v<SimTime, Bytes>);
static_assert(!std::is_convertible_v<SimTime, bool>);
static_assert(!std::is_convertible_v<double, SimTime>);

// The constants carry their documented magnitudes.
static_assert(kMsec.count() == 1000);
static_assert(kSec.count() == 1000000);
static_assert(kMinute.count() == 60000000);
static_assert(kKiB.count() == 1024);
static_assert(kMiB.count() == 1048576);
static_assert(kGiB.count() == 1073741824);

// -- release equivalence -----------------------------------------------------

TEST(Quantity, ArithmeticMatchesRawInt64OnSampledGrid) {
  // Non-overflowing samples spanning sign, zero, and large magnitudes.
  const std::vector<std::int64_t> samples = {
      0,  1,  -1, 7,  -7, 999,     1000,    1000000,         -1000000,
      42, 60, -3, 17, 5,  1 << 20, -(1 << 20), (1LL << 40), -(1LL << 40)};
  for (std::int64_t a : samples) {
    for (std::int64_t b : samples) {
      const SimTime qa{a};
      const SimTime qb{b};
      EXPECT_EQ((qa + qb).count(), a + b) << a << " + " << b;
      EXPECT_EQ((qa - qb).count(), a - b) << a << " - " << b;
      if (b != 0) {
        EXPECT_EQ(qa / qb, a / b) << a << " / " << b;
        EXPECT_EQ((qa % qb).count(), a % b) << a << " % " << b;
        EXPECT_EQ((qa / static_cast<int>(b % 1000 == 0 ? 8 : b % 1000))
                      .count(),
                  a / (b % 1000 == 0 ? 8 : b % 1000))
            << a << " / scalar(" << b << ")";
      }
    }
    // Scalar multiply, both operand orders (small scalars: no overflow).
    for (int s : {-3, -1, 0, 1, 2, 7, 1000}) {
      if (a > (1LL << 40) || a < -(1LL << 40)) continue;
      EXPECT_EQ((SimTime{a} * s).count(), a * s);
      EXPECT_EQ((s * SimTime{a}).count(), a * s);
    }
  }
}

TEST(Quantity, CrossOpsMatchTheRawFormsTheyReplaced) {
  const Cpus cores{12};
  const SimTime span = 90 * kSec;
  const CpuWork work = cores * span;
  EXPECT_EQ(work.count(),
            static_cast<std::int64_t>(cores.count()) * span.count());
  EXPECT_EQ(work / cores, span);
  EXPECT_EQ(work / span, static_cast<std::int64_t>(cores.count()));
  // Operand order is immaterial.
  EXPECT_EQ(span * cores, work);
}

TEST(Quantity, CompoundOpsAndIncrementsMatchRaw) {
  SimTime t = 5 * kUsec;
  t += 10 * kUsec;
  EXPECT_EQ(t, 15 * kUsec);
  t -= 5 * kUsec;
  EXPECT_EQ(t, 10 * kUsec);
  t *= 3;
  EXPECT_EQ(t, 30 * kUsec);
  t /= 4;
  EXPECT_EQ(t, 7 * kUsec);
  EXPECT_EQ(++t, 8 * kUsec);
  EXPECT_EQ(t++, 8 * kUsec);
  EXPECT_EQ(t--, 9 * kUsec);
  EXPECT_EQ(--t, 7 * kUsec);
  EXPECT_EQ(-t, SimTime{-7});
}

TEST(Quantity, HashEqualsRepresentationHash) {
  EXPECT_EQ(std::hash<SimTime>{}(kSec),
            std::hash<std::int64_t>{}(kSec.count()));
  EXPECT_EQ(std::hash<Bytes>{}(kGiB),
            std::hash<std::int64_t>{}(kGiB.count()));
}

// -- debug overflow traps ----------------------------------------------------

#ifndef NDEBUG
TEST(Quantity, DebugBuildTrapsOnOverflow) {
  const SimTime top = kTimeInfinity;
  const SimTime bottom{INT64_MIN};
  EXPECT_THROW((void)(top + kUsec), InvariantError);
  EXPECT_THROW((void)(bottom - kUsec), InvariantError);
  EXPECT_THROW((void)(top * 2), InvariantError);
  EXPECT_THROW((void)(-bottom), InvariantError);
  EXPECT_THROW((void)(Cpus{1 << 30} * (kTimeInfinity / 2)), InvariantError);
  // Non-overflowing edge cases pass through exactly.
  EXPECT_EQ((top - kUsec + kUsec), top);
}
#endif

// -- from_seconds boundary semantics (DESIGN.md §14) -------------------------

TEST(Quantity, FromSecondsRoundsHalfAwayFromZero) {
  EXPECT_EQ(from_seconds(0.0), SimTime{0});
  EXPECT_EQ(from_seconds(2.0), 2 * kSec);
  EXPECT_EQ(from_seconds(1.5e-6), SimTime{2});
  EXPECT_EQ(from_seconds(1.4e-6), SimTime{1});
  // The fix this PR audits: negative half-microseconds round away from
  // zero, not toward +inf as the old `+ 0.5` form did.
  EXPECT_EQ(from_seconds(-6e-7), SimTime{-1});
  EXPECT_EQ(from_seconds(-4e-7), SimTime{0});
  EXPECT_EQ(from_seconds(-1.5e-6), SimTime{-2});
  EXPECT_EQ(from_seconds(-2.0), SimTime{0} - 2 * kSec);
}

TEST(Quantity, FromSecondsIsSymmetricInSign) {
  for (double s : {1e-7, 4e-7, 5e-7, 6e-7, 1e-6, 1.5e-6, 0.25, 1.0, 3.75,
                   42.0, 9000.5}) {
    EXPECT_EQ(from_seconds(-s), -from_seconds(s)) << "s=" << s;
  }
}

TEST(Quantity, TruncatingConvertersKeepLegacySemantics) {
  // time_from_usec/scale_time truncate toward zero — fingerprints depend
  // on these exact semantics (see sim_time.hpp).
  EXPECT_EQ(time_from_usec(1.9), SimTime{1});
  EXPECT_EQ(time_from_usec(-1.9), SimTime{-1});
  EXPECT_EQ(scale_time(10 * kUsec, 0.55), SimTime{5});
  EXPECT_EQ(scale_time(SimTime{-10}, 0.55), SimTime{-5});
  EXPECT_EQ(bytes_from_double(1.99), Bytes{1});
  EXPECT_EQ(cpus_from_double(2.99), Cpus{2});
}

}  // namespace
}  // namespace dagon
