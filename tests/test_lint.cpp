// Coverage for the dagonlint determinism-audit tool itself: each rule
// fires on its seeded fixture with the exact rule id, path, and line;
// a justified allow() suppresses; a bare allow() is itself a finding;
// and the real src/ tree stays at zero unsuppressed findings.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct LintResult {
  int exit_code = -1;
  std::string output;
};

/// Runs dagonlint with `args`, capturing stdout+stderr and exit code.
LintResult run_lint(const std::string& args) {
  const std::string cmd = std::string(DAGONLINT_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to launch " << cmd;
  LintResult r;
  if (!pipe) return r;
  std::array<char, 4096> buf;
  while (fgets(buf.data(), static_cast<int>(buf.size()), pipe)) {
    r.output += buf.data();
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string fixture(const std::string& name) {
  return std::string(LINT_FIXTURES_DIR) + "/" + name;
}

/// The exact finding prefix dagonlint prints: `path:line: [rule]`.
std::string finding(const std::string& file, int line,
                    const std::string& rule) {
  return fixture(file) + ":" + std::to_string(line) + ": [" + rule + "]";
}

TEST(Lint, UnorderedIterFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("unordered_iter.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("unordered_iter.cpp", 9,
                                  "unordered-iter")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, NondetSourceFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("nondet_source.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(
      r.output.find(finding("nondet_source.cpp", 7, "nondet-source")),
      std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, PtrOrderFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("ptr_order.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("ptr_order.cpp", 7, "ptr-order")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, FloatAccumFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("float_accum.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("float_accum.cpp", 8, "float-accum")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, RawTransitionFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("raw_transition.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("raw_transition.cpp", 9,
                                  "raw-transition")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, EnumSwitchDefaultFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("enum_switch_default.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("enum_switch_default.cpp", 9,
                                  "enum-switch-default")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, EventHandlerGapReportedAtEnumeratorDeclaration) {
  // The fixture subdir holds a 3-enumerator EventType and a driver.cpp
  // dispatching only 2 of them; the gap is reported at the enumerator's
  // declaration site in the header, not in the driver.
  const LintResult r = run_lint(fixture("event_handler"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("event_handler/event_queue.hpp", 6,
                                  "event-handler-complete")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("EventType::Heartbeat"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, EventHandlerRuleInertWithoutDriverInScope) {
  // Linting the header alone must not fire: without driver.cpp in the
  // scanned set there is no dispatch site to check against.
  const LintResult r = run_lint(fixture("event_handler/event_queue.hpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, RawUnitDeclFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("raw_unit_decl.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("raw_unit_decl.cpp", 5, "raw-unit-decl")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, NarrowingCastFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("narrowing_cast.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("narrowing_cast.cpp", 6,
                                  "narrowing-cast")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, MagicUnitConstantFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("magic_unit_constant.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("magic_unit_constant.cpp", 4,
                                  "magic-unit-constant")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, OverflowMulFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("overflow_mul.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("overflow_mul.cpp", 6, "overflow-mul")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, UnguardedGlobalFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("unguarded_global.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("unguarded_global.cpp", 5,
                                  "unguarded-global")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, UnguardedCaptureFixtureFiresAtSubmitSite) {
  const LintResult r = run_lint(fixture("unguarded_capture.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("unguarded_capture.cpp", 14,
                                  "unguarded-capture")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("'total'"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

// The archproj mini-tree exercises the graph pass end-to-end: a
// manifest, an include cycle, an upward include, and a dead include —
// one finding each, at exact locations.
TEST(Lint, ArchprojGraphPassFindsCycleUpwardAndDeadInclude) {
  const LintResult r =
      run_lint("--layers=" + fixture("archproj/layers.toml") + " " +
               fixture("archproj"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("archproj/src/base/cycle_b.hpp", 3,
                                  "layering-cycle")),
            std::string::npos)
      << r.output;
  // The cycle message names the full chain, so the finding is
  // actionable without re-running anything.
  EXPECT_NE(r.output.find("base/cycle_a.hpp -> base/cycle_b.hpp -> "
                          "base/cycle_a.hpp"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find(finding("archproj/src/mid/widget.hpp", 5,
                                  "upward-include")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("(mid -> top)"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find(finding("archproj/src/top/app.cpp", 3,
                                  "dead-include")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("3 finding(s)"), std::string::npos) << r.output;
}

// Without a manifest the layering rules stay off, but dead-include is
// manifest-free and still fires on the archproj tree.
TEST(Lint, DeadIncludeFiresWithoutManifest) {
  const LintResult r = run_lint(fixture("archproj"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("archproj/src/top/app.cpp", 3,
                                  "dead-include")),
            std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("[layering-cycle]"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("[upward-include]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, DocDriftFixtureFiresForFlagPresetAndRuleTable) {
  const LintResult r =
      run_lint("--docs-root=" + fixture("docdrift") + " " +
               fixture("docdrift"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("docdrift/dagonsim.cpp", 9, "doc-drift")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("'--undocumented'"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find(finding("docdrift/dagonsim.cpp", 15, "doc-drift")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("preset 'beta'"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find(finding("docdrift/DESIGN.md", 1, "doc-drift")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("`doc-drift`"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("3 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, DocDriftNeedsDocsRootAndMissingDocsExitTwo) {
  // Without --docs-root the rule is inert even on the drifting fixture.
  const LintResult off = run_lint(fixture("docdrift/dagonsim.cpp"));
  EXPECT_EQ(off.exit_code, 0) << off.output;
  // With a docs root that has no README/DESIGN it is a usage error.
  const LintResult bad = run_lint("--docs-root=" + fixture("archproj") +
                                  " " + fixture("docdrift/dagonsim.cpp"));
  EXPECT_EQ(bad.exit_code, 2) << bad.output;
}

TEST(Lint, GraphDotPrintsClusteredIncludeGraph) {
  const LintResult r =
      run_lint("--layers=" + fixture("archproj/layers.toml") +
               " --graph-dot " + fixture("archproj"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("digraph include_graph {"), std::string::npos)
      << r.output;
  // Clusters follow the manifest order bottom-up.
  const std::size_t base = r.output.find("subgraph \"cluster_base\"");
  const std::size_t mid = r.output.find("subgraph \"cluster_mid\"");
  const std::size_t top = r.output.find("subgraph \"cluster_top\"");
  EXPECT_NE(base, std::string::npos) << r.output;
  EXPECT_NE(mid, std::string::npos) << r.output;
  EXPECT_NE(top, std::string::npos) << r.output;
  EXPECT_LT(base, mid);
  EXPECT_LT(mid, top);
  // Node names are src/-relative, so the output is independent of the
  // invocation path; edges carry the resolved include relation.
  EXPECT_NE(r.output.find("\"mid/widget.hpp\" -> \"base/util.hpp\";"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"top/app.cpp\" -> \"mid/widget.hpp\";"),
            std::string::npos)
      << r.output;
}

TEST(Lint, AllowOnIncludeLineSuppressesLayeringRules) {
  // The `layering` alias must cover an upward include when the allow
  // rides on the include line itself (include lines tokenize to
  // nothing, so allow anchoring needs the explicit code-line merge).
  const std::string dir = fixture("archproj");
  const LintResult ok =
      run_lint("--layers=" + fixture("archproj/layers.toml") + " " + dir +
               "/src/mid/allowed.hpp " + dir + "/src/top/app_defs.hpp");
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
  EXPECT_NE(ok.output.find("0 finding(s)"), std::string::npos) << ok.output;
  // The identical include without an allow still fires — guards that
  // the clean run above is the allow's doing, not a scoping accident.
  const LintResult fires =
      run_lint("--layers=" + fixture("archproj/layers.toml") + " " + dir +
               "/src/mid/widget.hpp " + dir + "/src/base/util.hpp " + dir +
               "/src/top/app_defs.hpp");
  EXPECT_EQ(fires.exit_code, 1) << fires.output;
  EXPECT_NE(fires.output.find("[upward-include]"), std::string::npos)
      << fires.output;
}

TEST(Lint, GithubFormatEmitsErrorAnnotations) {
  const LintResult r =
      run_lint("--format=github " + fixture("unordered_iter.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("::error file=" + fixture("unordered_iter.cpp") +
                          ",line=9,title=dagonlint unordered-iter::"),
            std::string::npos)
      << r.output;
  // Annotations only — no plain-text footer in this format.
  EXPECT_EQ(r.output.find("finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, SarifFormatEmitsResultWithRuleAndLine) {
  const LintResult r =
      run_lint("--format=sarif " + fixture("unordered_iter.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("\"version\":\"2.1.0\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"ruleId\":\"unordered-iter\""),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"startLine\":9"), std::string::npos) << r.output;
}

TEST(Lint, SarifFormatOnCleanFileHasEmptyResults) {
  const LintResult r = run_lint("--format=sarif " + fixture("suppressed.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"results\":[]"), std::string::npos) << r.output;
}

TEST(Lint, UnknownFormatExitsTwo) {
  const LintResult r =
      run_lint("--format=xml " + fixture("unordered_iter.cpp"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

// The scan pass fans out across a thread pool; findings are sorted
// (path, line, rule) before printing, so output must be byte-identical
// to a serial run regardless of worker count — graph and doc passes
// included.
TEST(Lint, ParallelScanOutputMatchesSerial) {
  const std::string args = "--layers=" + fixture("archproj/layers.toml") +
                           " --docs-root=" + fixture("docdrift") + " " +
                           std::string(LINT_FIXTURES_DIR);
  const LintResult serial = run_lint("--jobs=1 " + args);
  const LintResult parallel = run_lint("--jobs=8 " + args);
  EXPECT_EQ(serial.exit_code, parallel.exit_code);
  EXPECT_EQ(serial.output, parallel.output);
}

// --jobs now defaults to hardware_concurrency(); the default must be
// byte-identical to an explicit serial run, not merely equivalent.
TEST(Lint, DefaultJobsOutputMatchesSerial) {
  const std::string args = "--layers=" + fixture("archproj/layers.toml") +
                           " --docs-root=" + fixture("docdrift") + " " +
                           std::string(LINT_FIXTURES_DIR);
  const LintResult serial = run_lint("--jobs=1 " + args);
  const LintResult def = run_lint(args);
  EXPECT_EQ(serial.exit_code, def.exit_code);
  EXPECT_EQ(serial.output, def.output);
}

TEST(Lint, JustifiedAllowSuppressesAndExitsZero) {
  const LintResult r = run_lint(fixture("suppressed.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, BareAllowIsItselfAFinding) {
  const LintResult r = run_lint(fixture("bare_allow.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // The suppression still applies (no unordered-iter report), but the
  // missing justification is reported at the directive's line.
  EXPECT_NE(r.output.find(finding("bare_allow.cpp", 10, "bare-allow")),
            std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("[unordered-iter]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, WholeFixtureDirReportsEveryRuleOnce) {
  const LintResult r =
      run_lint("--layers=" + fixture("archproj/layers.toml") +
               " --docs-root=" + fixture("docdrift") + " " +
               std::string(LINT_FIXTURES_DIR));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  for (const char* rule :
       {"unordered-iter", "nondet-source", "ptr-order", "float-accum",
        "bare-allow", "raw-transition", "enum-switch-default",
        "event-handler-complete", "raw-unit-decl", "narrowing-cast",
        "magic-unit-constant", "overflow-mul", "layering-cycle",
        "upward-include", "dead-include", "unguarded-global",
        "unguarded-capture", "doc-drift"}) {
    EXPECT_NE(r.output.find(std::string("[") + rule + "]"),
              std::string::npos)
        << "missing " << rule << " in:\n"
        << r.output;
  }
  EXPECT_NE(r.output.find("20 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, ListRulesNamesEveryRule) {
  const LintResult r = run_lint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule :
       {"unordered-iter", "nondet-source", "ptr-order", "float-accum",
        "bare-allow", "raw-transition", "enum-switch-default",
        "event-handler-complete", "raw-unit-decl", "narrowing-cast",
        "magic-unit-constant", "overflow-mul", "layering-cycle",
        "upward-include", "dead-include", "unguarded-global",
        "unguarded-capture", "doc-drift"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos) << r.output;
  }
}

TEST(Lint, MissingPathExitsTwo) {
  const LintResult r = run_lint(fixture("no_such_file.cpp"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

// The acceptance gate, enforced continuously: the real source tree has
// zero unsuppressed findings with every pass active — layering against
// the checked-in manifest and doc-drift against the repo root. If this
// fails, either fix the new hazard (or doc gap) or add an audited
// `// dagonlint: allow(<rule>): <why>` annotation.
TEST(Lint, RepoSourceTreeIsClean) {
  const LintResult r =
      run_lint("--layers=" + std::string(DAGON_ROOT_DIR) +
               "/tools/dagonlint/layers.toml --docs-root=" + DAGON_ROOT_DIR +
               " " + DAGON_SRC_DIR + " " + DAGON_TOOLS_DIR + " " +
               DAGON_BENCH_DIR);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

// The checked-in include-graph render must match what the tool emits
// for the current tree; CI diffs the same pair.
TEST(Lint, CheckedInIncludeGraphDotIsCurrent) {
  const LintResult r =
      run_lint("--layers=" + std::string(DAGON_ROOT_DIR) +
               "/tools/dagonlint/layers.toml --graph-dot " + DAGON_SRC_DIR);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::ifstream in(std::string(DAGON_ROOT_DIR) +
                   "/docs/arch/include_graph.dot");
  ASSERT_TRUE(in.good());
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(r.output, golden.str());
}

}  // namespace
