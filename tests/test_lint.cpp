// Coverage for the dagonlint determinism-audit tool itself: each rule
// fires on its seeded fixture with the exact rule id, path, and line;
// a justified allow() suppresses; a bare allow() is itself a finding;
// and the real src/ tree stays at zero unsuppressed findings.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct LintResult {
  int exit_code = -1;
  std::string output;
};

/// Runs dagonlint with `args`, capturing stdout+stderr and exit code.
LintResult run_lint(const std::string& args) {
  const std::string cmd = std::string(DAGONLINT_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to launch " << cmd;
  LintResult r;
  if (!pipe) return r;
  std::array<char, 4096> buf;
  while (fgets(buf.data(), static_cast<int>(buf.size()), pipe)) {
    r.output += buf.data();
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string fixture(const std::string& name) {
  return std::string(LINT_FIXTURES_DIR) + "/" + name;
}

/// The exact finding prefix dagonlint prints: `path:line: [rule]`.
std::string finding(const std::string& file, int line,
                    const std::string& rule) {
  return fixture(file) + ":" + std::to_string(line) + ": [" + rule + "]";
}

TEST(Lint, UnorderedIterFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("unordered_iter.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("unordered_iter.cpp", 9,
                                  "unordered-iter")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, NondetSourceFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("nondet_source.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(
      r.output.find(finding("nondet_source.cpp", 7, "nondet-source")),
      std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, PtrOrderFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("ptr_order.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("ptr_order.cpp", 7, "ptr-order")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, FloatAccumFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("float_accum.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("float_accum.cpp", 8, "float-accum")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, RawTransitionFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("raw_transition.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("raw_transition.cpp", 9,
                                  "raw-transition")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, EnumSwitchDefaultFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("enum_switch_default.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("enum_switch_default.cpp", 9,
                                  "enum-switch-default")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, EventHandlerGapReportedAtEnumeratorDeclaration) {
  // The fixture subdir holds a 3-enumerator EventType and a driver.cpp
  // dispatching only 2 of them; the gap is reported at the enumerator's
  // declaration site in the header, not in the driver.
  const LintResult r = run_lint(fixture("event_handler"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("event_handler/event_queue.hpp", 6,
                                  "event-handler-complete")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("EventType::Heartbeat"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, EventHandlerRuleInertWithoutDriverInScope) {
  // Linting the header alone must not fire: without driver.cpp in the
  // scanned set there is no dispatch site to check against.
  const LintResult r = run_lint(fixture("event_handler/event_queue.hpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, RawUnitDeclFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("raw_unit_decl.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("raw_unit_decl.cpp", 5, "raw-unit-decl")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, NarrowingCastFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("narrowing_cast.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("narrowing_cast.cpp", 6,
                                  "narrowing-cast")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, MagicUnitConstantFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("magic_unit_constant.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("magic_unit_constant.cpp", 4,
                                  "magic-unit-constant")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, OverflowMulFixtureFiresWithExactLocation) {
  const LintResult r = run_lint(fixture("overflow_mul.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(finding("overflow_mul.cpp", 6, "overflow-mul")),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, GithubFormatEmitsErrorAnnotations) {
  const LintResult r =
      run_lint("--format=github " + fixture("unordered_iter.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("::error file=" + fixture("unordered_iter.cpp") +
                          ",line=9,title=dagonlint unordered-iter::"),
            std::string::npos)
      << r.output;
  // Annotations only — no plain-text footer in this format.
  EXPECT_EQ(r.output.find("finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, SarifFormatEmitsResultWithRuleAndLine) {
  const LintResult r =
      run_lint("--format=sarif " + fixture("unordered_iter.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("\"version\":\"2.1.0\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"ruleId\":\"unordered-iter\""),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"startLine\":9"), std::string::npos) << r.output;
}

TEST(Lint, SarifFormatOnCleanFileHasEmptyResults) {
  const LintResult r = run_lint("--format=sarif " + fixture("suppressed.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"results\":[]"), std::string::npos) << r.output;
}

TEST(Lint, UnknownFormatExitsTwo) {
  const LintResult r =
      run_lint("--format=xml " + fixture("unordered_iter.cpp"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

// The scan pass fans out across a thread pool; findings are sorted
// (path, line, rule) before printing, so output must be byte-identical
// to a serial run regardless of worker count.
TEST(Lint, ParallelScanOutputMatchesSerial) {
  const LintResult serial =
      run_lint("--jobs=1 " + std::string(LINT_FIXTURES_DIR));
  const LintResult parallel =
      run_lint("--jobs=8 " + std::string(LINT_FIXTURES_DIR));
  EXPECT_EQ(serial.exit_code, parallel.exit_code);
  EXPECT_EQ(serial.output, parallel.output);
}

TEST(Lint, JustifiedAllowSuppressesAndExitsZero) {
  const LintResult r = run_lint(fixture("suppressed.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, BareAllowIsItselfAFinding) {
  const LintResult r = run_lint(fixture("bare_allow.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // The suppression still applies (no unordered-iter report), but the
  // missing justification is reported at the directive's line.
  EXPECT_NE(r.output.find(finding("bare_allow.cpp", 10, "bare-allow")),
            std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("[unordered-iter]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, WholeFixtureDirReportsEveryRuleOnce) {
  const LintResult r = run_lint(std::string(LINT_FIXTURES_DIR));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  for (const char* rule :
       {"unordered-iter", "nondet-source", "ptr-order", "float-accum",
        "bare-allow", "raw-transition", "enum-switch-default",
        "event-handler-complete", "raw-unit-decl", "narrowing-cast",
        "magic-unit-constant", "overflow-mul"}) {
    EXPECT_NE(r.output.find(std::string("[") + rule + "]"),
              std::string::npos)
        << "missing " << rule << " in:\n"
        << r.output;
  }
  EXPECT_NE(r.output.find("12 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, ListRulesNamesEveryRule) {
  const LintResult r = run_lint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule :
       {"unordered-iter", "nondet-source", "ptr-order", "float-accum",
        "bare-allow", "raw-transition", "enum-switch-default",
        "event-handler-complete", "raw-unit-decl", "narrowing-cast",
        "magic-unit-constant", "overflow-mul"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos) << r.output;
  }
}

TEST(Lint, MissingPathExitsTwo) {
  const LintResult r = run_lint(fixture("no_such_file.cpp"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

// The acceptance gate, enforced continuously: the real source tree has
// zero unsuppressed findings. If this fails, either fix the new hazard
// or add an audited `// dagonlint: allow(<rule>): <why>` annotation.
TEST(Lint, RepoSourceTreeIsClean) {
  const LintResult r =
      run_lint(std::string(DAGON_SRC_DIR) + " " + DAGON_TOOLS_DIR + " " +
               DAGON_BENCH_DIR);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

}  // namespace
