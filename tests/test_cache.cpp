// Unit tests for the cache subsystem: reference oracle, the four
// policies, BlockManager admission/eviction, and BlockManagerMaster.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "cache/block_manager.hpp"
#include "cache/block_manager_master.hpp"
#include "cache/cache_policy.hpp"
#include "cache/ref_oracle.hpp"
#include "common/error.hpp"
#include "dag/job_dag.hpp"
#include "workloads/example_dag.hpp"

namespace dagon {
namespace {

class CacheFixture : public ::testing::Test {
 protected:
  CacheFixture() : workload_(make_example_dag()), oracle_(workload_.dag) {}

  const JobDag& dag() const { return workload_.dag; }

  // Fig. 1 block ids: A=rdd0, C=rdd1, B=rdd2, D=rdd3, E=rdd4, F=rdd5.
  static BlockId A(int p) { return {RddId(0), p}; }
  static BlockId C(int p) { return {RddId(1), p}; }
  static BlockId B(int p) { return {RddId(2), p}; }
  static BlockId D(int p) { return {RddId(3), p}; }
  static BlockId E(int p) { return {RddId(4), p}; }

  Workload workload_;
  ReferenceOracle oracle_;
};

TEST_F(CacheFixture, OracleInitialRefCounts) {
  EXPECT_EQ(oracle_.remaining_ref_count(A(0)), 1);  // S1 only
  EXPECT_EQ(oracle_.remaining_ref_count(C(2)), 1);  // S2 only
  EXPECT_EQ(oracle_.remaining_ref_count(B(0)), 1);  // S4 only
  EXPECT_EQ(oracle_.remaining_ref_count(D(1)), 1);  // S3 only
  // F has no readers.
  EXPECT_EQ(oracle_.remaining_ref_count({RddId(5), 0}), 0);
}

TEST_F(CacheFixture, OracleConsumesNarrowReferencePerTask) {
  EXPECT_EQ(oracle_.remaining_ref_count(A(1)), 1);
  oracle_.on_task_launched(StageId(0), 1);  // S1 task 1 reads A1
  EXPECT_EQ(oracle_.remaining_ref_count(A(1)), 0);
  EXPECT_EQ(oracle_.remaining_ref_count(A(0)), 1);  // untouched
}

TEST_F(CacheFixture, OracleConsumesShuffleReferenceAfterAllTasks) {
  // D blocks are read by both S3 tasks.
  EXPECT_EQ(oracle_.remaining_ref_count(D(0)), 1);
  oracle_.on_task_launched(StageId(2), 0);
  EXPECT_EQ(oracle_.remaining_ref_count(D(0)), 1);  // one reader left
  oracle_.on_task_launched(StageId(2), 1);
  EXPECT_EQ(oracle_.remaining_ref_count(D(0)), 0);
}

TEST_F(CacheFixture, OracleStageFinishKillsReferences) {
  EXPECT_EQ(oracle_.remaining_ref_count(C(0)), 1);
  oracle_.mark_stage_finished(StageId(1));
  EXPECT_EQ(oracle_.remaining_ref_count(C(0)), 0);
  EXPECT_TRUE(oracle_.stage_finished(StageId(1)));
}

TEST_F(CacheFixture, OracleStageDistanceFollowsFifoOrder) {
  oracle_.set_current_stage(StageId(0));
  EXPECT_EQ(oracle_.stage_distance(A(0)), 0);  // S1 is current
  EXPECT_EQ(oracle_.stage_distance(C(0)), 1);  // S2 next
  EXPECT_EQ(oracle_.stage_distance(B(0)), 3);  // S4
  oracle_.set_current_stage(StageId(2));
  EXPECT_EQ(oracle_.stage_distance(B(0)), 1);
  // A stage at or before the current one counts as distance 0.
  EXPECT_EQ(oracle_.stage_distance(C(0)), 0);
}

TEST_F(CacheFixture, OracleDistanceNeverUsed) {
  oracle_.mark_stage_finished(StageId(0));
  EXPECT_EQ(oracle_.stage_distance(A(0)), ReferenceOracle::kNeverUsed);
}

TEST_F(CacheFixture, OracleReferencePriorityIsMaxPvOfReaders) {
  // Initial pv (Table III): pv1=52, pv2=64, pv3=28, pv4=4 (vCPU·min).
  EXPECT_EQ(oracle_.reference_priority(A(0)), CpuWork{52 * kMinute.count()});
  EXPECT_EQ(oracle_.reference_priority(C(0)), CpuWork{64 * kMinute.count()});
  EXPECT_EQ(oracle_.reference_priority(B(0)), CpuWork{4 * kMinute.count()});
  oracle_.mark_stage_finished(StageId(3));
  EXPECT_EQ(oracle_.reference_priority(B(0)), CpuWork{0});
}

TEST_F(CacheFixture, OraclePriorityUpdates) {
  std::vector<CpuWork> pv{CpuWork{10}, CpuWork{20}, CpuWork{30},
                          CpuWork{40}};
  oracle_.set_priority_values(pv);
  EXPECT_EQ(oracle_.priority_value(StageId(2)), CpuWork{30});
  EXPECT_EQ(oracle_.reference_priority(D(0)), CpuWork{30});
}

TEST_F(CacheFixture, OracleLiveReaders) {
  const auto readers = oracle_.live_readers(D(0));
  EXPECT_EQ(readers, std::vector<StageId>{StageId(2)});
}

// --- policy retention/prefetch semantics ---------------------------------

TEST_F(CacheFixture, LruRetentionIsRecency) {
  LruPolicy lru;
  EXPECT_LT(lru.retention_priority(A(0), SimTime{10}, oracle_),
            lru.retention_priority(B(0), SimTime{20}, oracle_));
  EXPECT_TRUE(lru.always_admit());
  EXPECT_FALSE(lru.prefetch_priority(A(0), oracle_).has_value());
  EXPECT_FALSE(lru.is_dead(A(0), oracle_));
}

TEST_F(CacheFixture, LrcRetentionIsRefCount) {
  LrcPolicy lrc;
  oracle_.on_task_launched(StageId(0), 0);  // consume A0
  EXPECT_LT(lrc.retention_priority(A(0), SimTime{99}, oracle_),
            lrc.retention_priority(A(1), SimTime{0}, oracle_));
  EXPECT_TRUE(lrc.is_dead(A(0), oracle_));
}

TEST_F(CacheFixture, MrdEvictsFurthestPrefetchesNearest) {
  MrdPolicy mrd;
  oracle_.set_current_stage(StageId(0));
  // B (used by S4, distance 3) must be evicted before C (distance 1).
  EXPECT_LT(mrd.retention_priority(B(0), SimTime{0}, oracle_),
            mrd.retention_priority(C(0), SimTime{0}, oracle_));
  EXPECT_GT(*mrd.prefetch_priority(C(0), oracle_),
            *mrd.prefetch_priority(B(0), oracle_));
  oracle_.mark_stage_finished(StageId(3));
  EXPECT_FALSE(mrd.prefetch_priority(B(0), oracle_).has_value());
}

TEST_F(CacheFixture, LrpFollowsReferencePriority) {
  LrpPolicy lrp;
  EXPECT_GT(lrp.retention_priority(C(0), SimTime{0}, oracle_),
            lrp.retention_priority(A(0), SimTime{0}, oracle_));
  EXPECT_GT(*lrp.prefetch_priority(C(0), oracle_),
            *lrp.prefetch_priority(B(0), oracle_));
  oracle_.mark_stage_finished(StageId(3));
  EXPECT_TRUE(lrp.is_dead(B(0), oracle_));
  EXPECT_FALSE(lrp.prefetch_priority(B(0), oracle_).has_value());
}

TEST(CachePolicyFactory, MakesAllKinds) {
  for (const auto kind : {CachePolicyKind::Lru, CachePolicyKind::Lrc,
                          CachePolicyKind::Mrd, CachePolicyKind::Lrp,
                          CachePolicyKind::Lerc}) {
    const auto policy = make_cache_policy(kind);
    EXPECT_STREQ(policy->name(), cache_policy_name(kind));
  }
}

TEST(CachePolicyFactory, ErrorEnumeratesAcceptedNames) {
  try {
    (void)make_cache_policy(static_cast<CachePolicyKind>(99));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(kCachePolicyNames),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("lerc"), std::string::npos);
  }
}

// --- LERC peer groups -----------------------------------------------------

/// Paired-intermediate DAG: join's task p reads a[p] AND b[p], so every
/// consumer task has a two-block peer group.
class LercFixture : public ::testing::Test {
 protected:
  LercFixture() {
    JobDagBuilder builder("lerc");
    const RddId ds = builder.input_rdd("ds", 2, 4 * kMiB);
    builder.set_rdd_cacheable(ds, false);
    load_ = builder.add_stage({.name = "load",
                               .inputs = {{ds, DepKind::Narrow}},
                               .num_tasks = 2,
                               .task_cpus = Cpus{1},
                               .task_duration = kSec,
                               .output_bytes_per_partition = kMiB,
                               .output_name = "a"});
    feat_ = builder.add_stage({.name = "feat",
                               .inputs = {{ds, DepKind::Narrow}},
                               .num_tasks = 2,
                               .task_cpus = Cpus{1},
                               .task_duration = kSec,
                               .output_bytes_per_partition = kMiB,
                               .output_name = "b"});
    a_ = builder.output_of(load_);
    b_ = builder.output_of(feat_);
    join_ = builder.add_stage({.name = "join",
                               .inputs = {{a_, DepKind::Narrow},
                                          {b_, DepKind::Narrow}},
                               .num_tasks = 2,
                               .task_cpus = Cpus{1},
                               .task_duration = kSec,
                               .output_bytes_per_partition = Bytes{0},
                               .cache_output = false});
    dag_ = builder.build();
    oracle_ = std::make_unique<ReferenceOracle>(dag_);
    oracle_->enable_peer_tracking();
  }

  BlockId a(int p) const { return {a_, p}; }
  BlockId b(int p) const { return {b_, p}; }

  StageId load_, feat_, join_;
  RddId a_, b_;
  JobDag dag_;
  std::unique_ptr<ReferenceOracle> oracle_;
};

TEST_F(LercFixture, EffectiveCountNeedsWholeGroupResident) {
  // Nothing resident: caching a0 alone would not complete {a0, b0}.
  EXPECT_EQ(oracle_->effective_ref_count(a(0)), 0);
  // With the peer b0 resident, a0 would complete the group for join.
  oracle_->set_memory_resident(b(0), true);
  EXPECT_EQ(oracle_->effective_ref_count(a(0)), 1);
  // b0 itself is still ineffective: ITS group misses a0.
  EXPECT_EQ(oracle_->effective_ref_count(b(0)), 0);
  // Partition 1's group is independent.
  EXPECT_EQ(oracle_->effective_ref_count(a(1)), 0);
  oracle_->set_memory_resident(a(0), true);
  EXPECT_EQ(oracle_->effective_ref_count(a(0)), 1);
  EXPECT_EQ(oracle_->effective_ref_count(b(0)), 1);
}

TEST_F(LercFixture, EvictionBreaksTheGroup) {
  oracle_->set_memory_resident(a(0), true);
  oracle_->set_memory_resident(b(0), true);
  EXPECT_EQ(oracle_->effective_ref_count(a(0)), 1);
  oracle_->set_memory_resident(b(0), false);
  EXPECT_EQ(oracle_->effective_ref_count(a(0)), 0);
  EXPECT_EQ(oracle_->effective_ref_count(b(0)), 1);  // would re-complete
}

TEST_F(LercFixture, ConsumedAndInactiveReadersAreNotEffective) {
  oracle_->set_memory_resident(a(0), true);
  oracle_->set_memory_resident(b(0), true);
  // Launching join task 0 consumes its references on a0/b0.
  oracle_->on_task_launched(join_, 0);
  EXPECT_EQ(oracle_->effective_ref_count(a(0)), 0);
  // Partition 1 is untouched...
  oracle_->set_memory_resident(a(1), true);
  oracle_->set_memory_resident(b(1), true);
  EXPECT_EQ(oracle_->effective_ref_count(a(1)), 1);
  // ...until its job is gated inactive (serving: job not yet arrived).
  oracle_->set_stage_active(join_, false);
  EXPECT_EQ(oracle_->effective_ref_count(a(1)), 0);
  oracle_->set_stage_active(join_, true);
  EXPECT_EQ(oracle_->effective_ref_count(a(1)), 1);
}

TEST_F(LercFixture, LercRetentionRanksCompleteGroupsAboveBroken) {
  LercPolicy lerc;
  oracle_->set_memory_resident(a(0), true);
  oracle_->set_memory_resident(b(0), true);
  oracle_->set_memory_resident(a(1), true);  // b1 missing: broken group
  const double complete = lerc.retention_priority(a(0), SimTime{0}, *oracle_);
  const double broken = lerc.retention_priority(a(1), SimTime{0}, *oracle_);
  EXPECT_GT(complete, broken);
  // The raw reference count still separates broken-but-live data from
  // dead data.
  oracle_->mark_stage_finished(join_);
  EXPECT_LT(lerc.retention_priority(a(0), SimTime{0}, *oracle_), 1.0);
  EXPECT_TRUE(lerc.is_dead(a(0), *oracle_));
}

TEST_F(LercFixture, CompletingBlockDisplacesBrokenResidents) {
  // One-slot-short cache: {a0, b0, a1} resident, b1 arrives. LERC must
  // evict the broken-group a1 to admit the group-completing b1; LRC
  // refuses the tie and strands the half group.
  LercPolicy lerc;
  BlockManager bm(ExecutorId(0), 3 * kMiB, lerc);
  (void)bm.insert(a(0), kMiB, SimTime{1}, *oracle_);
  oracle_->set_memory_resident(a(0), true);
  (void)bm.insert(b(0), kMiB, SimTime{2}, *oracle_);
  oracle_->set_memory_resident(b(0), true);
  (void)bm.insert(a(1), kMiB, SimTime{3}, *oracle_);
  oracle_->set_memory_resident(a(1), true);
  const auto res = bm.insert(b(1), kMiB, SimTime{4}, *oracle_);
  ASSERT_TRUE(res.admitted);
  ASSERT_EQ(res.evicted.size(), 1u);
  EXPECT_EQ(res.evicted[0], a(1));
  EXPECT_TRUE(bm.contains(a(0)));
  EXPECT_TRUE(bm.contains(b(0)));
}

TEST_F(LercFixture, PeerTrackingIsIdempotentAndGated) {
  EXPECT_TRUE(oracle_->peer_tracking_enabled());
  oracle_->enable_peer_tracking();  // idempotent
  EXPECT_TRUE(oracle_->peer_tracking_enabled());
  // A fresh oracle without tracking ignores residency mirroring.
  ReferenceOracle bare(dag_);
  EXPECT_FALSE(bare.peer_tracking_enabled());
  bare.set_memory_resident(a(0), true);  // must be a no-op, not a crash
  EXPECT_EQ(bare.remaining_ref_count(a(0)), 1);
}

// --- BlockManager ---------------------------------------------------------

TEST_F(CacheFixture, ManagerInsertAndCapacity) {
  LruPolicy lru;
  BlockManager bm(ExecutorId(0), 2 * kMiB, lru);
  EXPECT_TRUE(bm.insert(A(0), kMiB, SimTime{1}, oracle_).admitted);
  EXPECT_TRUE(bm.insert(A(1), kMiB, SimTime{2}, oracle_).admitted);
  EXPECT_EQ(bm.free_bytes(), Bytes{0});
  EXPECT_EQ(bm.num_blocks(), 2u);
}

TEST_F(CacheFixture, ManagerLruEvictsOldest) {
  LruPolicy lru;
  BlockManager bm(ExecutorId(0), 2 * kMiB, lru);
  (void)bm.insert(A(0), kMiB, SimTime{1}, oracle_);
  (void)bm.insert(A(1), kMiB, SimTime{2}, oracle_);
  bm.touch(A(0), SimTime{3});  // A0 now most recent
  const auto res = bm.insert(A(2), kMiB, SimTime{4}, oracle_);
  ASSERT_TRUE(res.admitted);
  ASSERT_EQ(res.evicted.size(), 1u);
  EXPECT_EQ(res.evicted[0], A(1));
  EXPECT_TRUE(bm.contains(A(0)));
}

TEST_F(CacheFixture, ManagerReinsertIsTouch) {
  LruPolicy lru;
  BlockManager bm(ExecutorId(0), 2 * kMiB, lru);
  (void)bm.insert(A(0), kMiB, SimTime{1}, oracle_);
  const auto res = bm.insert(A(0), kMiB, SimTime{5}, oracle_);
  EXPECT_TRUE(res.admitted);
  EXPECT_TRUE(res.evicted.empty());
  EXPECT_EQ(bm.used_bytes(), kMiB);
}

TEST_F(CacheFixture, ManagerOversizeBlockRefused) {
  LruPolicy lru;
  BlockManager bm(ExecutorId(0), kMiB, lru);
  EXPECT_FALSE(bm.insert(A(0), 2 * kMiB, SimTime{1}, oracle_).admitted);
  EXPECT_EQ(bm.num_blocks(), 0u);
}

TEST_F(CacheFixture, ManagerLrpDeclinesLowPriorityInsert) {
  LrpPolicy lrp;
  BlockManager bm(ExecutorId(0), 2 * kMiB, lrp);
  // C blocks: priority 64; A blocks: 52; B blocks: 4.
  (void)bm.insert(C(0), kMiB, SimTime{1}, oracle_);
  (void)bm.insert(C(1), kMiB, SimTime{1}, oracle_);
  const auto res = bm.insert(B(0), kMiB, SimTime{2}, oracle_);
  EXPECT_FALSE(res.admitted);  // would displace more valuable C blocks
  EXPECT_TRUE(res.evicted.empty());
  EXPECT_TRUE(bm.contains(C(0)));
  EXPECT_TRUE(bm.contains(C(1)));
}

TEST_F(CacheFixture, ManagerLrpEvictsLowestPriority) {
  LrpPolicy lrp;
  BlockManager bm(ExecutorId(0), 2 * kMiB, lrp);
  (void)bm.insert(B(0), kMiB, SimTime{1}, oracle_);  // priority 4
  (void)bm.insert(A(0), kMiB, SimTime{1}, oracle_);  // priority 52
  const auto res = bm.insert(C(0), kMiB, SimTime{2}, oracle_);  // priority 64
  ASSERT_TRUE(res.admitted);
  ASSERT_EQ(res.evicted.size(), 1u);
  EXPECT_EQ(res.evicted[0], B(0));
}

TEST_F(CacheFixture, ManagerStrictAdmissionRejectsEqualValue) {
  LrpPolicy lrp;
  BlockManager bm(ExecutorId(0), kMiB, lrp);
  (void)bm.insert(A(0), kMiB, SimTime{1}, oracle_);
  // A1 has the same priority as A0: a strict (prefetch) insert must not
  // thrash; a normal insert may swap.
  EXPECT_FALSE(bm.insert(A(1), kMiB, SimTime{2}, oracle_, true).admitted);
  EXPECT_TRUE(bm.contains(A(0)));
}

TEST_F(CacheFixture, ManagerProactiveEviction) {
  LrpPolicy lrp;
  BlockManager bm(ExecutorId(0), 4 * kMiB, lrp);
  (void)bm.insert(A(0), kMiB, SimTime{1}, oracle_);
  (void)bm.insert(C(0), kMiB, SimTime{1}, oracle_);
  oracle_.on_task_launched(StageId(0), 0);  // consumes A0
  const auto evicted = bm.evict_dead(oracle_);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], A(0));
  EXPECT_TRUE(bm.contains(C(0)));
}

TEST_F(CacheFixture, ManagerMinRetention) {
  LrpPolicy lrp;
  BlockManager bm(ExecutorId(0), 4 * kMiB, lrp);
  EXPECT_TRUE(std::isinf(bm.min_retention(oracle_)));
  (void)bm.insert(B(0), kMiB, SimTime{1}, oracle_);
  (void)bm.insert(C(0), kMiB, SimTime{1}, oracle_);
  EXPECT_DOUBLE_EQ(bm.min_retention(oracle_),
                   static_cast<double>((4 * kMinute).count()));
}

TEST_F(CacheFixture, ManagerRemove) {
  LruPolicy lru;
  BlockManager bm(ExecutorId(0), 4 * kMiB, lru);
  (void)bm.insert(A(0), kMiB, SimTime{1}, oracle_);
  EXPECT_TRUE(bm.remove(A(0)));
  EXPECT_FALSE(bm.remove(A(0)));
  EXPECT_EQ(bm.used_bytes(), Bytes{0});
}

// --- BlockManagerMaster ----------------------------------------------------

class MasterFixture : public CacheFixture {
 protected:
  MasterFixture()
      : topo_(make_spec()),
        rng_(1),
        hdfs_(dag(), topo_, make_hdfs(), rng_),
        policy_(make_cache_policy(CachePolicyKind::Lrp)),
        master_(topo_, dag(), hdfs_, oracle_, *policy_) {}

  static TopologySpec make_spec() {
    TopologySpec spec;
    spec.racks = 1;
    spec.nodes_per_rack = 2;
    spec.executors_per_node = 1;
    spec.cores_per_executor = Cpus{4};
    spec.cache_bytes_per_executor = 3 * kMiB;
    return spec;
  }
  static HdfsSpec make_hdfs() {
    HdfsSpec spec;
    spec.replication = 1;
    return spec;
  }

  Topology topo_;
  Rng rng_;
  HdfsPlacement hdfs_;
  std::unique_ptr<CachePolicy> policy_;
  BlockManagerMaster master_;
};

TEST_F(MasterFixture, LookupPrefersMemoryOverDisk) {
  master_.seed_initial_cache(SimTime{0});
  // A0..A2 are seeded into the executor on their replica node.
  const auto holders = master_.memory_holders(A(0));
  ASSERT_EQ(holders.size(), 1u);
  const ExecutorId holder = holders[0];
  EXPECT_EQ(master_.lookup(A(0), holder).source, BlockSource::LocalMemory);
  const ExecutorId other(holder == ExecutorId(0) ? 1 : 0);
  const auto remote = master_.lookup(A(0), other);
  EXPECT_EQ(remote.source, BlockSource::RackMemory);
  EXPECT_EQ(remote.holder, holder);
}

TEST_F(MasterFixture, LookupFallsBackToHdfsDisk) {
  const auto look = master_.lookup(C(0), ExecutorId(0));
  EXPECT_FALSE(is_memory_source(look.source));
  EXPECT_TRUE(look.disk_node.valid());
}

TEST_F(MasterFixture, LookupNonexistentBlockThrows) {
  EXPECT_THROW((void)master_.lookup(B(0), ExecutorId(0)), InvariantError);
  EXPECT_FALSE(master_.exists(B(0)));
}

TEST_F(MasterFixture, ProducedBlockGetsDiskAndMemoryCopy) {
  master_.on_block_produced(B(0), ExecutorId(0), SimTime{5});
  EXPECT_TRUE(master_.exists(B(0)));
  const auto disks = master_.disk_holders(B(0));
  ASSERT_EQ(disks.size(), 1u);
  EXPECT_EQ(disks[0], topo_.node_of(ExecutorId(0)));
  // B priority is low (pv4) but the cache has room -> admitted.
  EXPECT_EQ(master_.lookup(B(0), ExecutorId(0)).source,
            BlockSource::LocalMemory);
}

TEST_F(MasterFixture, EvictionDropsMemoryNotDisk) {
  master_.on_block_produced(B(0), ExecutorId(0), SimTime{1});
  ASSERT_TRUE(master_.manager(ExecutorId(0)).contains(B(0)));
  // Fill the 3-block cache with higher-priority C blocks (pv2 = 64).
  master_.on_block_read(C(0), ExecutorId(0),
                        master_.lookup(C(0), ExecutorId(0)), SimTime{2});
  master_.on_block_read(C(1), ExecutorId(0),
                        master_.lookup(C(1), ExecutorId(0)), SimTime{3});
  master_.on_block_read(C(2), ExecutorId(0),
                        master_.lookup(C(2), ExecutorId(0)), SimTime{4});
  EXPECT_FALSE(master_.manager(ExecutorId(0)).contains(B(0)));
  // Disk copy survives; lookup degrades to local disk.
  EXPECT_EQ(master_.lookup(B(0), ExecutorId(0)).source,
            BlockSource::LocalDisk);
}

TEST_F(MasterFixture, DiskReadOfCacheableRddCaches) {
  const auto look = master_.lookup(C(0), ExecutorId(0));
  master_.on_block_read(C(0), ExecutorId(0), look, SimTime{1});
  EXPECT_EQ(master_.lookup(C(0), ExecutorId(0)).source,
            BlockSource::LocalMemory);
}

TEST_F(MasterFixture, RemoteMemoryReadDoesNotDuplicate) {
  master_.seed_initial_cache(SimTime{0});
  const ExecutorId holder = master_.memory_holders(A(0))[0];
  const ExecutorId other(holder == ExecutorId(0) ? 1 : 0);
  const auto look = master_.lookup(A(0), other);
  master_.on_block_read(A(0), other, look, SimTime{1});
  EXPECT_EQ(master_.memory_holders(A(0)).size(), 1u);
}

TEST_F(MasterFixture, ProactiveSweepDropsDeadBlocks) {
  master_.seed_initial_cache(SimTime{0});
  oracle_.mark_stage_finished(StageId(0));  // A is now dead
  const int dropped = master_.proactive_sweep();
  EXPECT_EQ(dropped, 3);
  EXPECT_TRUE(master_.memory_holders(A(0)).empty());
}

TEST_F(MasterFixture, PrefetchCandidatePicksHighestPriorityLocalBlock) {
  // C blocks (priority 64) sit on some node's disk; its executor should
  // choose them.
  const auto replicas = hdfs_.replicas(C(0));
  ASSERT_EQ(replicas.size(), 1u);
  const ExecutorId exec = topo_.node(replicas[0]).executors[0];
  const auto choice = master_.prefetch_candidate(exec);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->block.rdd, RddId(1));
  EXPECT_TRUE(master_.finish_prefetch(choice->block, exec, SimTime{1}));
  EXPECT_EQ(master_.lookup(choice->block, exec).source,
            BlockSource::LocalMemory);
}

TEST_F(MasterFixture, PrefetchSkipsBlocksAlreadyInMemory) {
  master_.seed_initial_cache(SimTime{0});
  for (const Executor& e : topo_.executors()) {
    if (const auto choice = master_.prefetch_candidate(e.id)) {
      EXPECT_NE(choice->block.rdd, RddId(0));  // A blocks are cached
    }
  }
}

TEST_F(MasterFixture, CacheDisabledMasterIsInert) {
  BlockManagerMaster off(topo_, dag(), hdfs_, oracle_, *policy_,
                         /*cache_enabled=*/false);
  off.seed_initial_cache(SimTime{0});
  EXPECT_TRUE(off.memory_holders(A(0)).empty());
  off.on_block_produced(B(0), ExecutorId(0), SimTime{1});
  EXPECT_EQ(off.lookup(B(0), ExecutorId(0)).source, BlockSource::LocalDisk);
  EXPECT_FALSE(off.prefetch_candidate(ExecutorId(0)).has_value());
  EXPECT_EQ(off.proactive_sweep(), 0);
}

TEST_F(MasterFixture, CountersTrackActivity) {
  master_.seed_initial_cache(SimTime{0});
  const auto& counters = master_.counters();
  EXPECT_EQ(counters.insertions, 3);
  oracle_.mark_stage_finished(StageId(0));
  master_.proactive_sweep();
  EXPECT_EQ(master_.counters().proactive_evictions, 3);
}

}  // namespace
}  // namespace dagon
