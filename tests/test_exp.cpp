// Sweep-engine tests: the determinism contract (parallel == serial,
// bit-for-bit, for every workload × policy combination) and the thread
// pool's drain/join semantics under exceptions.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/dagon.hpp"
#include "exp/sweep.hpp"
#include "exp/thread_pool.hpp"

namespace dagon {
namespace {

std::vector<SweepRun> policy_grid() {
  // 3 workloads × 3 (scheduler, cache) systems, distinct seeds — small
  // scale keeps the 9 runs fast while still exercising every subsystem.
  const std::vector<WorkloadId> ids = {WorkloadId::KMeans,
                                       WorkloadId::PageRank,
                                       WorkloadId::ConnectedComponent};
  struct System {
    SchedulerKind scheduler;
    CachePolicyKind cache;
    DelayKind delay;
  };
  const std::vector<System> systems = {
      {SchedulerKind::Fifo, CachePolicyKind::Lru, DelayKind::Native},
      {SchedulerKind::Graphene, CachePolicyKind::Mrd, DelayKind::Native},
      {SchedulerKind::Dagon, CachePolicyKind::Lrp,
       DelayKind::SensitivityAware}};

  std::vector<SweepRun> grid;
  std::uint64_t seed = 7;
  for (const WorkloadId id : ids) {
    const Workload w = make_workload(id, WorkloadScale{0.5});
    for (const System& sys : systems) {
      SimConfig config = paper_testbed();
      config.scheduler = sys.scheduler;
      config.cache = sys.cache;
      config.delay = sys.delay;
      config.seed = seed++;
      grid.push_back({workload_name(id), w, config});
    }
  }
  return grid;
}

TEST(Sweep, ParallelBitIdenticalToSerial) {
  const auto grid = policy_grid();
  const SweepReport serial = run_sweep(grid, SweepOptions{1});
  const SweepReport parallel = run_sweep(grid, SweepOptions{4});

  ASSERT_EQ(serial.runs.size(), grid.size());
  ASSERT_EQ(parallel.runs.size(), grid.size());
  EXPECT_EQ(serial.jobs, 1u);
  EXPECT_EQ(parallel.jobs, 4u);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(metrics_fingerprint(serial.runs[i].metrics),
              metrics_fingerprint(parallel.runs[i].metrics))
        << "run " << i << " (" << grid[i].label << ") diverged";
  }
}

TEST(Sweep, RepeatedParallelRunsAreStable) {
  // Re-running the same parallel sweep must reproduce itself — catches
  // any hidden shared state between SimDrivers.
  const auto grid = policy_grid();
  const SweepReport a = run_sweep(grid, SweepOptions{3});
  const SweepReport b = run_sweep(grid, SweepOptions{3});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(metrics_fingerprint(a.runs[i].metrics),
              metrics_fingerprint(b.runs[i].metrics));
  }
}

TEST(Sweep, IncrementalFlagDoesNotChangeResults) {
  // The hot-path optimization is an optimization, not a behaviour
  // change: incremental_scheduling on/off must be bit-identical.
  auto grid = policy_grid();
  const SweepReport incremental = run_sweep(grid, SweepOptions{1});
  for (SweepRun& r : grid) r.config.incremental_scheduling = false;
  const SweepReport baseline = run_sweep(grid, SweepOptions{1});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(metrics_fingerprint(incremental.runs[i].metrics),
              metrics_fingerprint(baseline.runs[i].metrics))
        << "run " << i << " (" << grid[i].label << ") diverged";
  }
}

TEST(Sweep, SerialModeUsesNoPool) {
  const auto grid = policy_grid();
  const SweepReport r =
      run_sweep({grid.begin(), grid.begin() + 2}, SweepOptions{1});
  EXPECT_EQ(r.jobs, 1u);
  EXPECT_EQ(r.runs.size(), 2u);
}

TEST(Sweep, ZeroJobsResolvesToHardware) {
  EXPECT_GE(resolve_jobs(0), 1u);
  EXPECT_EQ(resolve_jobs(3), 3u);
}

TEST(ThreadPool, RunsAllTasks) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitRethrowsFirstExceptionAfterDraining) {
  // Sibling tasks submitted after the throwing one must still run: the
  // pool drains the whole queue before wait() rethrows.
  std::atomic<int> completed{0};
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 20; ++i) {
    pool.submit([&completed] { ++completed; });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  EXPECT_EQ(completed.load(), 20);

  // The error is consumed: the pool stays usable and a clean wait()
  // does not rethrow stale exceptions.
  pool.submit([&completed] { ++completed; });
  EXPECT_NO_THROW(pool.wait());
  EXPECT_EQ(completed.load(), 21);
}

TEST(ThreadPool, DestructorDrainsAndJoins) {
  // Submit work and destroy the pool without wait(): the destructor
  // must finish the queue and join every worker (no detached threads,
  // no lost tasks) — even when a task throws.
  std::atomic<int> completed{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&completed] { ++completed; });
    }
    pool.submit([] { throw std::runtime_error("boom"); });
    for (int i = 0; i < 50; ++i) {
      pool.submit([&completed] { ++completed; });
    }
  }
  EXPECT_EQ(completed.load(), 100);
}

TEST(ThreadPool, SweepExceptionPropagatesWithSiblingsCompleted) {
  // run_sweep propagates a run's exception but only after the sibling
  // runs finished (ThreadPool::wait semantics). An invalid config makes
  // one run throw.
  auto grid = policy_grid();
  grid[1].config.topology.racks = 0;  // SimDriver::validate rejects
  EXPECT_THROW((void)run_sweep(grid, SweepOptions{2}), std::exception);
}

}  // namespace
}  // namespace dagon
