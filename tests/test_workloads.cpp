// Tests for the workload generators: structural signatures of each
// SparkBench-like application, scale knob, and the random-DAG generator.
#include <gtest/gtest.h>

#include <set>

#include "dag/dag_analysis.hpp"
#include "workloads/example_dag.hpp"
#include "workloads/graph_workloads.hpp"
#include "workloads/ml_workloads.hpp"
#include "workloads/random_dag.hpp"
#include "workloads/suite.hpp"

namespace dagon {
namespace {

TEST(ExampleDag, MatchesPaperStructure) {
  const Workload w = make_example_dag();
  ASSERT_EQ(w.dag.num_stages(), 4u);
  EXPECT_EQ(w.dag.stage(StageId(0)).num_tasks, 3);
  EXPECT_EQ(w.dag.stage(StageId(0)).task_cpus, Cpus{4});
  EXPECT_EQ(w.dag.stage(StageId(1)).task_cpus, Cpus{6});
  EXPECT_EQ(w.dag.stage(StageId(2)).num_tasks, 2);
  EXPECT_EQ(w.dag.stage(StageId(3)).num_tasks, 1);
  // RDD names match Fig. 1 for readable trace output.
  EXPECT_EQ(w.dag.rdd(RddId(0)).name, "A");
  EXPECT_EQ(w.dag.rdd(RddId(1)).name, "C");
  EXPECT_EQ(w.dag.rdd(w.dag.stage(StageId(0)).output).name, "B");
  EXPECT_EQ(w.dag.rdd(w.dag.stage(StageId(1)).output).name, "D");
  EXPECT_EQ(w.dag.rdd(w.dag.stage(StageId(2)).output).name, "E");
}

TEST(ExampleDag, CustomTimebase) {
  ExampleDagParams p;
  p.minute = kSec;
  const Workload w = make_example_dag(p);
  EXPECT_EQ(w.dag.stage(StageId(0)).task_duration, 4 * kSec);
}

TEST(KMeans, HasPaperStageCount) {
  const Workload w = make_kmeans();
  // scan + 15 iterations + rescan + final = 18 stages (Fig. 3's 0..17).
  EXPECT_EQ(w.dag.num_stages(), 18u);
  EXPECT_EQ(w.category, WorkloadCategory::Mixed);
}

TEST(KMeans, RawInputIsNotCacheable) {
  const Workload w = make_kmeans();
  EXPECT_FALSE(w.dag.rdd(RddId(0)).cacheable);
}

TEST(KMeans, IterationsReadCachedFeaturesNarrowly) {
  const Workload w = make_kmeans();
  const RddId features = w.dag.stage(StageId(0)).output;
  EXPECT_TRUE(w.dag.rdd(features).cacheable);
  for (std::size_t s = 1; s <= 15; ++s) {
    const Stage& stage = w.dag.stage(StageId(static_cast<std::int32_t>(s)));
    ASSERT_FALSE(stage.inputs.empty());
    EXPECT_EQ(stage.inputs[0].rdd, features);
    EXPECT_EQ(stage.inputs[0].kind, DepKind::Narrow);
  }
}

TEST(KMeans, ChainIsSequential) {
  const Workload w = make_kmeans();
  EXPECT_EQ(w.dag.depth(), 18);
}

TEST(MlWorkloads, CategoriesMatchPaperGrouping) {
  EXPECT_EQ(make_linear_regression().category,
            WorkloadCategory::CpuIntensive);
  EXPECT_EQ(make_logistic_regression().category,
            WorkloadCategory::CpuIntensive);
  EXPECT_EQ(make_decision_tree().category, WorkloadCategory::CpuIntensive);
  EXPECT_EQ(make_triangle_count().category, WorkloadCategory::Mixed);
  EXPECT_EQ(make_connected_component().category,
            WorkloadCategory::IoIntensive);
  EXPECT_EQ(make_pregel_operation().category,
            WorkloadCategory::IoIntensive);
}

TEST(MlWorkloads, HeterogeneousDemands) {
  // The DAG-aware scheduling result depends on demand heterogeneity; the
  // CPU-intensive generators must emit more than one distinct d_i.
  for (const Workload& w :
       {make_linear_regression(), make_logistic_regression(),
        make_decision_tree()}) {
    std::set<Cpus> demands;
    for (const Stage& s : w.dag.stages()) demands.insert(s.task_cpus);
    EXPECT_GT(demands.size(), 1u) << w.name;
  }
}

TEST(MlWorkloads, ParallelBranchesExist) {
  // The iteration ladders fork: some stage must feed both a chain stage
  // and a light side stage (the Fig. 1 motif the schedulers exploit).
  for (const Workload& w :
       {make_linear_regression(), make_logistic_regression(),
        make_decision_tree()}) {
    bool any_fork = false;
    for (const Stage& s : w.dag.stages()) {
      if (s.children.size() >= 2) any_fork = true;
    }
    EXPECT_TRUE(any_fork) << w.name;
  }
}

TEST(GraphWorkloads, SuperstepSkeleton) {
  const Workload w = make_connected_component(32);
  // 2 adjacency builds + 8 supersteps x (gather, scatter, update) +
  // collect = 27 stages.
  EXPECT_EQ(w.dag.num_stages(), 27u);
  // Every gather re-reads the out-adjacency narrowly; every scatter the
  // in-adjacency.
  const RddId adj = w.dag.stage(StageId(0)).output;
  const RddId radj = w.dag.stage(StageId(1)).output;
  EXPECT_TRUE(w.dag.rdd(adj).cacheable);
  EXPECT_TRUE(w.dag.rdd(radj).cacheable);
  int adj_readers = 0;
  int radj_readers = 0;
  for (const Stage& s : w.dag.stages()) {
    for (const RddRef& ref : s.inputs) {
      if (ref.rdd == adj) {
        ++adj_readers;
        EXPECT_EQ(ref.kind, DepKind::Narrow);
      }
      if (ref.rdd == radj) ++radj_readers;
    }
  }
  EXPECT_EQ(adj_readers, 8);
  EXPECT_EQ(radj_readers, 8);
}

TEST(GraphWorkloads, ScatterOutranksGather) {
  // Dagon must run the heavy scatter before the light gather even
  // though the gather has the smaller stage id — the inversion that
  // separates LRP from MRD (Fig. 11).
  const Workload w = make_connected_component(32);
  const auto pv = initial_priority_values(w.dag);
  const Stage& gather1 = w.dag.stage(StageId(2));
  const Stage& scatter1 = w.dag.stage(StageId(3));
  ASSERT_EQ(gather1.name, "gather1");
  ASSERT_EQ(scatter1.name, "scatter1");
  EXPECT_GT(pv[3], pv[2]);
}

TEST(GraphWorkloads, PregelHasInitBranch) {
  const Workload w = make_pregel_operation(32);
  EXPECT_GE(w.dag.root_stages().size(), 2u);
}

TEST(GraphWorkloads, ShortestPathsHasSkew) {
  const Workload w = make_shortest_paths(32);
  bool any_skew = false;
  for (const Stage& s : w.dag.stages()) {
    if (!s.duration_skew.empty()) any_skew = true;
  }
  EXPECT_TRUE(any_skew);
}

TEST(Suite, AllWorkloadsBuildAtAllScales) {
  for (const auto id :
       {WorkloadId::LinearRegression, WorkloadId::LogisticRegression,
        WorkloadId::DecisionTree, WorkloadId::KMeans,
        WorkloadId::TriangleCount, WorkloadId::ConnectedComponent,
        WorkloadId::PregelOperation, WorkloadId::PageRank,
        WorkloadId::ShortestPaths}) {
    for (const double size : {0.05, 0.25, 1.0}) {
      const Workload w = make_workload(id, WorkloadScale{size});
      EXPECT_EQ(w.name, workload_name(id));
      EXPECT_GT(w.dag.num_stages(), 2u);
      EXPECT_GT(w.dag.total_tasks(), 0);
    }
  }
}

TEST(Suite, ScaleShrinksTasks) {
  const Workload big = make_workload(WorkloadId::KMeans, WorkloadScale{1.0});
  const Workload small =
      make_workload(WorkloadId::KMeans, WorkloadScale{0.1});
  EXPECT_GT(big.dag.total_tasks(), 5 * small.dag.total_tasks());
}

TEST(Suite, SparkbenchSuiteHasPaperSeven) {
  const auto suite = sparkbench_suite();
  EXPECT_EQ(suite.size(), 7u);
  EXPECT_EQ(cache_study_suite().size(), 4u);
}

TEST(RandomDag, AlwaysValid) {
  Rng rng(1234);
  for (int i = 0; i < 50; ++i) {
    const Workload w = make_random_dag(rng);
    EXPECT_GE(w.dag.num_stages(), 3u);
    // Build succeeded => acyclic + wired; spot-check topo order length.
    EXPECT_EQ(w.dag.topological_order().size(), w.dag.num_stages());
  }
}

TEST(RandomDag, DeterministicForRngState) {
  RandomDagParams params;
  Rng a(9);
  Rng b(9);
  const Workload wa = make_random_dag(a, params);
  const Workload wb = make_random_dag(b, params);
  ASSERT_EQ(wa.dag.num_stages(), wb.dag.num_stages());
  for (std::size_t i = 0; i < wa.dag.num_stages(); ++i) {
    const Stage& sa = wa.dag.stages()[i];
    const Stage& sb = wb.dag.stages()[i];
    EXPECT_EQ(sa.num_tasks, sb.num_tasks);
    EXPECT_EQ(sa.task_cpus, sb.task_cpus);
    EXPECT_EQ(sa.task_duration, sb.task_duration);
  }
}

TEST(Categories, Names) {
  EXPECT_STREQ(category_name(WorkloadCategory::CpuIntensive),
               "CPU-intensive");
  EXPECT_STREQ(category_name(WorkloadCategory::IoIntensive),
               "I/O-intensive");
}

}  // namespace
}  // namespace dagon
