// Drives the dagonsim binary end-to-end: flag hardening (unknown /
// duplicate / malformed values exit 2 on the ConfigError path), valid
// runs exit 0, and --fingerprint is stable across identical invocations.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;
};

/// Runs the binary with `args`, capturing stdout+stderr and exit code.
CliResult run_cli(const std::string& args) {
  const std::string cmd = std::string(DAGONSIM_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to launch " << cmd;
  CliResult r;
  if (!pipe) return r;
  std::array<char, 4096> buf;
  while (fgets(buf.data(), static_cast<int>(buf.size()), pipe)) {
    r.output += buf.data();
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

/// A fast valid run: tiny workload on the small case-study cluster.
const char* kTinyRun = "--preset case --workload KMeans --scale 0.05";

TEST(Cli, HelpAndListExitZero) {
  EXPECT_EQ(run_cli("--help").exit_code, 0);
  const CliResult list = run_cli("--list");
  EXPECT_EQ(list.exit_code, 0);
  EXPECT_NE(list.output.find("KMeans"), std::string::npos);
}

// The full --help text is pinned at docs/cli/dagonsim_help.txt: adding
// or renaming a flag must update the snapshot in the same commit
// (dagonlint's doc-drift rule separately requires README coverage).
TEST(Cli, HelpTextMatchesCheckedInSnapshot) {
  const CliResult r = run_cli("--help");
  EXPECT_EQ(r.exit_code, 0);
  std::ifstream in(DAGONSIM_HELP_SNAPSHOT);
  ASSERT_TRUE(in.good()) << "missing snapshot " << DAGONSIM_HELP_SNAPSHOT;
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(r.output, golden.str());
}

TEST(Cli, ValidRunExitsZero) {
  const CliResult r = run_cli(kTinyRun);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("job completion time"), std::string::npos);
}

TEST(Cli, UnknownFlagExitsTwo) {
  const CliResult r = run_cli("--frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown argument"), std::string::npos);
}

TEST(Cli, DuplicateFlagExitsTwo) {
  const CliResult r = run_cli("--seed 1 --seed 2");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("duplicate flag"), std::string::npos);
}

TEST(Cli, RepeatableFaultFlagsAreExemptFromDuplicateCheck) {
  // Partitions need the two-rack testbed, not the one-rack case preset.
  const CliResult r = run_cli(
      "--workload KMeans --scale 0.05"
      " --fault-partition 5:8 --fault-partition 10:12"
      " --fault-degrade 2:20:2.0 --fault-degrade 4:10:3.0");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Cli, MalformedValuesExitTwo) {
  for (const char* args : {
           "--scale 1.5x",
           "--seed twelve",
           "--wait",  // missing value
           "--fault-task-fail 0.5abc",
           "--fault-crash ten",
           "--fault-partition 10",          // needs at least T:H
           "--fault-partition 10:20:0:9",   // too many fields
           "--fault-degrade 10:20",         // needs a slowdown factor
           "--fault-degrade 10:20:abc",
           "--heartbeat-interval -",
           "--blacklist-threshold 2.5",
           "--preset nope",
       }) {
    const CliResult r = run_cli(args);
    EXPECT_EQ(r.exit_code, 2) << args << "\n" << r.output;
  }
}

TEST(Cli, InvalidFaultConfigHitsConfigErrorPath) {
  // Lexically fine, semantically rejected (heals before it starts):
  // FaultPlan throws ConfigError, the driver front-end maps it to 2.
  const CliResult r = run_cli(std::string(kTinyRun) +
                              " --fault-partition 20:10");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("invalid config"), std::string::npos);
}

TEST(Cli, FingerprintIsPrintedAndStable) {
  const std::string args = std::string(kTinyRun) + " --fingerprint";
  const CliResult a = run_cli(args);
  const CliResult b = run_cli(args);
  ASSERT_EQ(a.exit_code, 0) << a.output;
  const auto extract = [](const std::string& out) {
    const auto pos = out.find("metrics fingerprint: 0x");
    EXPECT_NE(pos, std::string::npos) << out;
    return pos == std::string::npos ? std::string()
                                    : out.substr(pos, 37);
  };
  const std::string fa = extract(a.output);
  EXPECT_FALSE(fa.empty());
  EXPECT_EQ(fa, extract(b.output));
}

TEST(Cli, RepeatFingerprintRowsMatchAcrossJobs) {
  // The CLI face of the sweep-equivalence contract: with --repeat K and
  // --fingerprint, each repeat row carries its own digest, and fanning
  // the repeats over a pool (--jobs 3) must reproduce the serial rows
  // bit-for-bit.
  const std::string base =
      std::string(kTinyRun) + " --repeat 3 --fingerprint --jobs ";
  const CliResult serial = run_cli(base + "1");
  const CliResult parallel = run_cli(base + "3");
  ASSERT_EQ(serial.exit_code, 0) << serial.output;
  ASSERT_EQ(parallel.exit_code, 0) << parallel.output;

  // Collect every 0x-prefixed 16-digit digest, in row order.
  const auto digests = [](const std::string& out) {
    std::vector<std::string> v;
    for (std::size_t pos = out.find("0x"); pos != std::string::npos;
         pos = out.find("0x", pos + 2)) {
      if (pos + 18 <= out.size()) v.push_back(out.substr(pos, 18));
    }
    return v;
  };
  const std::vector<std::string> a = digests(serial.output);
  const std::vector<std::string> b = digests(parallel.output);
  ASSERT_GE(a.size(), 3u) << serial.output;
  EXPECT_EQ(a, b) << "serial:\n"
                  << serial.output << "\nparallel:\n"
                  << parallel.output;
}

TEST(Cli, GrayboxPresetRunsWithFaultTable) {
  const CliResult r =
      run_cli("--preset graybox --workload KMeans --scale 0.2");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("suspicions"), std::string::npos);
  EXPECT_NE(r.output.find("fault injection"), std::string::npos);
}

}  // namespace
