// Cross-module integration tests: the joint scheduler/cache coupling
// the paper's architecture (Fig. 7) establishes, plus end-to-end
// consistency checks that span dag + cluster + cache + sched + sim.
#include <gtest/gtest.h>

#include <set>

#include "core/dagon.hpp"

namespace dagon {
namespace {

SimConfig small_cluster() {
  SimConfig config;
  config.topology.racks = 2;
  config.topology.nodes_per_rack = 2;
  config.topology.executors_per_node = 2;
  config.topology.cores_per_executor = Cpus{4};
  config.topology.cache_bytes_per_executor = 512 * kMiB;
  return config;
}

TEST(JointOperation, LrpSeesLivePriorityUpdates) {
  // Under Dagon+LRP the cache must track pv decay: after the run, every
  // block's reference priority is zero (all stages done, all refs
  // consumed) — verified indirectly by proactive evictions happening
  // while the job ran.
  const Workload w = make_connected_component(16);
  SimConfig config = small_cluster();
  config.scheduler = SchedulerKind::Dagon;
  config.cache = CachePolicyKind::Lrp;
  const RunMetrics m = run_workload(w, config).metrics;
  EXPECT_GT(m.cache.proactive_evictions, 0);
  EXPECT_GT(m.cache.local_memory_hits, 0);
}

TEST(JointOperation, SchedulerOrderChangesCacheBehaviour) {
  // The same cache policy must make different decisions under FIFO and
  // Dagon — the incoherency the paper builds on. Verified via the
  // fetch-time totals (different schedules -> different hit patterns).
  const Workload w = make_connected_component(24);
  SimConfig fifo = small_cluster();
  fifo.cache = CachePolicyKind::Mrd;
  fifo.scheduler = SchedulerKind::Fifo;
  SimConfig dagon = fifo;
  dagon.scheduler = SchedulerKind::Dagon;
  const RunMetrics mf = run_workload(w, fifo).metrics;
  const RunMetrics md = run_workload(w, dagon).metrics;
  EXPECT_NE(mf.cache.local_memory_hits, md.cache.local_memory_hits);
}

TEST(JointOperation, CachePolicyDoesNotChangeTaskCount) {
  const Workload w = make_pagerank(16);
  std::set<std::size_t> task_counts;
  for (const CachePolicyKind policy :
       {CachePolicyKind::Lru, CachePolicyKind::Lrc, CachePolicyKind::Mrd,
        CachePolicyKind::Lrp}) {
    SimConfig config = small_cluster();
    config.cache = policy;
    task_counts.insert(run_workload(w, config).metrics.tasks.size());
  }
  // Work conservation: caching changes durations, never the work.
  EXPECT_EQ(task_counts.size(), 1u);
}

TEST(JointOperation, CacheOnlyEverHelps) {
  // With everything else fixed, enabling the cache must not make JCT
  // worse on a cache-friendly workload.
  KMeansParams params;
  params.partitions = 32;
  params.iterations = 5;
  const Workload w = make_kmeans(params);
  SimConfig off = small_cluster();
  off.cache_enabled = false;
  SimConfig on = small_cluster();
  on.cache = CachePolicyKind::Lrp;
  on.scheduler = SchedulerKind::Dagon;
  off.scheduler = SchedulerKind::Dagon;
  EXPECT_LE(run_workload(w, on).metrics.jct,
            run_workload(w, off).metrics.jct);
}

TEST(JointOperation, ProfilerNoiseNeverBreaksExecution) {
  // Bad estimates may reorder stages but every invariant must hold.
  const Workload w = make_decision_tree({.partitions = 16, .levels = 3});
  for (const double noise : {0.5, 2.0}) {
    ProfilerConfig pc;
    pc.noise = noise;
    pc.seed = 99;
    SimConfig config = small_cluster();
    config.scheduler = SchedulerKind::Dagon;
    const RunMetrics m = run_workload(w, config, AppProfiler(pc)).metrics;
    std::int64_t completed = 0;
    for (const TaskRecord& t : m.tasks) completed += t.cancelled ? 0 : 1;
    EXPECT_EQ(completed, w.dag.total_tasks());
    EXPECT_DOUBLE_EQ(m.busy_cores.value(), 0.0);
  }
}

TEST(JointOperation, HeterogeneousDemandNeverOversubscribes) {
  // Mixed d=1..4 tasks on 4-core executors: the per-executor free-core
  // accounting must never go negative — checked cluster-wide via the
  // busy-cores ceiling.
  const Workload w =
      make_logistic_regression({.partitions = 16, .iterations = 3});
  for (const SchedulerKind kind :
       {SchedulerKind::Fifo, SchedulerKind::Graphene, SchedulerKind::Dagon}) {
    SimConfig config = small_cluster();
    config.scheduler = kind;
    const RunMetrics m = run_workload(w, config).metrics;
    EXPECT_LE(m.busy_cores.max_over(SimTime{0}, m.jct),
              static_cast<double>(m.total_cores.count()));
  }
}

TEST(JointOperation, RunnerEndToEndAcrossTheWholeGrid) {
  // Smoke the full (scheduler x cache x delay) grid on one workload:
  // every combination completes with sane metrics.
  const Workload w = make_triangle_count({.partitions = 12});
  for (const SchedulerKind sched :
       {SchedulerKind::Fifo, SchedulerKind::Fair, SchedulerKind::CriticalPath,
        SchedulerKind::Graphene, SchedulerKind::Dagon}) {
    for (const CachePolicyKind cache :
         {CachePolicyKind::Lru, CachePolicyKind::Lrp}) {
      for (const DelayKind delay :
           {DelayKind::Native, DelayKind::SensitivityAware}) {
        SimConfig config = small_cluster();
        config.scheduler = sched;
        config.cache = cache;
        config.delay = delay;
        const RunMetrics m = run_workload(w, config).metrics;
        EXPECT_GT(m.jct, SimTime{0}) << scheduler_name(sched);
        EXPECT_GT(m.cpu_utilization(), 0.0);
        EXPECT_LE(m.cpu_utilization(), 1.0);
      }
    }
  }
}

TEST(JointOperation, ChromeTraceRoundTripsFromRunner) {
  const Workload w = make_example_dag();
  SimConfig config;
  config.topology.cores_per_executor = Cpus{16};
  const RunResult r = run_workload(w, config);
  const std::string json = chrome_trace_json(r.metrics, w.dag);
  EXPECT_GT(json.size(), 100u);
}

TEST(JointOperation, AssignmentTraceAgreesWithFullSim) {
  // The resource-only tracer and the full simulator must agree on the
  // Fig. 1 makespans when fetch costs are negligible.
  const Workload w = make_example_dag();
  for (const SchedulerKind kind :
       {SchedulerKind::Fifo, SchedulerKind::Dagon}) {
    const auto trace = trace_priority_assignment(w.dag, Cpus{16}, kind);
    SimConfig config;
    config.topology.racks = 1;
    config.topology.nodes_per_rack = 1;
    config.topology.executors_per_node = 1;
    config.topology.cores_per_executor = Cpus{16};
    config.scheduler = kind;
    const RunMetrics m = run_workload(w, config).metrics;
    EXPECT_NEAR(to_seconds(m.jct), to_seconds(trace.makespan),
                to_seconds(trace.makespan) * 0.05);
  }
}

TEST(JointOperation, FairSchedulerBalancesTwoBranches) {
  // Two equal-work parallel chains: Fair must interleave them (neither
  // branch finishes an epoch ahead of the other).
  JobDagBuilder b("two-branches");
  const RddId in = b.input_rdd("in", 8, kMiB);
  const StageId a = b.add_stage({.name = "a",
                                 .inputs = {{in, DepKind::Narrow}},
                                 .num_tasks = 8,
                                 .task_cpus = Cpus{1},
                                 .task_duration = 4 * kSec});
  const StageId c = b.add_stage({.name = "b",
                                 .inputs = {{in, DepKind::Narrow}},
                                 .num_tasks = 8,
                                 .task_cpus = Cpus{1},
                                 .task_duration = 4 * kSec});
  b.add_stage({.name = "join",
               .inputs = {{b.output_of(a), DepKind::Shuffle},
                          {b.output_of(c), DepKind::Shuffle}},
               .num_tasks = 2,
               .task_cpus = Cpus{1},
               .task_duration = kSec});
  const Workload w{"two-branches", WorkloadCategory::Mixed, b.build()};
  SimConfig config;
  config.topology.racks = 1;
  config.topology.nodes_per_rack = 1;
  config.topology.executors_per_node = 1;
  config.topology.cores_per_executor = Cpus{8};
  config.scheduler = SchedulerKind::Fair;
  const RunMetrics m = run_workload(w, config).metrics;
  const double fin_a = to_seconds(m.stages[0].finish_time);
  const double fin_b = to_seconds(m.stages[1].finish_time);
  EXPECT_NEAR(fin_a, fin_b, 4.5);
}

}  // namespace
}  // namespace dagon
