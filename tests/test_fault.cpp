// Fault injection + lineage recovery: FaultPlan validation, crash /
// transient-failure / block-loss recovery correctness, and the
// bit-identity guarantee for fault-free runs.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/presets.hpp"
#include "core/runner.hpp"
#include "fault/fault_plan.hpp"
#include "sim/driver.hpp"
#include "workloads/example_dag.hpp"
#include "workloads/suite.hpp"

namespace dagon {
namespace {

// --- FaultPlan --------------------------------------------------------------

FaultConfig enabled_faults() {
  FaultConfig f;
  f.enabled = true;
  return f;
}

TEST(FaultPlan, RejectsBadKnobs) {
  auto plan = [](FaultConfig f) { return FaultPlan(f, 4, 1, 1); };
  FaultConfig f = enabled_faults();
  f.task_fail_prob = 1.0;
  EXPECT_THROW(plan(f), ConfigError);
  f = enabled_faults();
  f.task_fail_prob = -0.1;
  EXPECT_THROW(plan(f), ConfigError);
  f = enabled_faults();
  f.block_loss_per_gb_hour = -1.0;
  EXPECT_THROW(plan(f), ConfigError);
  f = enabled_faults();
  f.block_loss_interval = SimTime{0};
  EXPECT_THROW(plan(f), ConfigError);
  f = enabled_faults();
  f.retry_backoff_base = SimTime{0};
  EXPECT_THROW(plan(f), ConfigError);
  f = enabled_faults();
  f.retry_backoff_cap = f.retry_backoff_base / 2;
  EXPECT_THROW(plan(f), ConfigError);
  f = enabled_faults();
  f.max_task_retries = 0;
  EXPECT_THROW(plan(f), ConfigError);
  f = enabled_faults();
  f.crashes.push_back({-kSec, 0});
  EXPECT_THROW(plan(f), ConfigError);
  f = enabled_faults();
  f.crashes.push_back({kSec, 7});  // only executors 0..3 exist
  EXPECT_THROW(plan(f), ConfigError);
  f = enabled_faults();
  for (int i = 0; i < 4; ++i) f.crashes.push_back({kSec, -1});
  EXPECT_THROW(plan(f), ConfigError);  // would crash the whole cluster
}

TEST(FaultPlan, ResolvesRandomTargetsToDistinctExecutors) {
  FaultConfig f = enabled_faults();
  f.crashes = {{30 * kSec, -1}, {10 * kSec, -1}, {20 * kSec, -1}};
  const FaultPlan plan(f, 4, 1, 42);
  ASSERT_EQ(plan.crashes().size(), 3u);
  // Sorted by time, distinct in-range targets.
  EXPECT_EQ(plan.crashes()[0].at, 10 * kSec);
  EXPECT_EQ(plan.crashes()[2].at, 30 * kSec);
  std::vector<std::int32_t> targets;
  for (const auto& c : plan.crashes()) {
    EXPECT_TRUE(c.exec.valid());
    EXPECT_LT(c.exec.value(), 4);
    targets.push_back(c.exec.value());
  }
  std::sort(targets.begin(), targets.end());
  EXPECT_TRUE(std::adjacent_find(targets.begin(), targets.end()) ==
              targets.end());

  // Same seed resolves identically.
  const FaultPlan again(f, 4, 1, 42);
  for (std::size_t i = 0; i < plan.crashes().size(); ++i) {
    EXPECT_EQ(plan.crashes()[i].exec, again.crashes()[i].exec);
  }
}

TEST(FaultPlan, BackoffIsCappedExponential) {
  FaultConfig f = enabled_faults();
  f.retry_backoff_base = kSec;
  f.retry_backoff_cap = 30 * kSec;
  FaultPlan plan(f, 4, 1, 1);
  EXPECT_EQ(plan.retry_backoff(0), kSec);
  EXPECT_EQ(plan.retry_backoff(1), 2 * kSec);
  EXPECT_EQ(plan.retry_backoff(4), 16 * kSec);
  EXPECT_EQ(plan.retry_backoff(5), 30 * kSec);   // 32s capped
  EXPECT_EQ(plan.retry_backoff(60), 30 * kSec);  // no overflow
}

// --- SimConfig validation ----------------------------------------------------

SimConfig fault_test_cluster() {
  SimConfig config;
  config.topology.racks = 1;
  config.topology.nodes_per_rack = 2;
  config.topology.executors_per_node = 2;
  config.topology.cores_per_executor = Cpus{8};
  config.topology.cache_bytes_per_executor = 64 * kMiB;
  config.hdfs.replication = 1;
  return config;
}

TEST(SimConfigValidation, RejectsOutOfRangeKnobs) {
  const Workload w = make_example_dag();
  const JobProfile profile = exact_profile(w.dag);
  auto expect_rejected = [&](SimConfig config) {
    EXPECT_THROW(SimDriver(w.dag, profile, config), ConfigError);
  };
  SimConfig config = fault_test_cluster();
  config.duration_noise = -0.5;
  expect_rejected(config);
  config = fault_test_cluster();
  config.ect_slack = 0.0;
  expect_rejected(config);
  config = fault_test_cluster();
  config.speculation.quantile = 1.5;
  expect_rejected(config);
  config = fault_test_cluster();
  config.speculation.multiplier = 0.0;
  expect_rejected(config);
  config = fault_test_cluster();
  config.max_sim_time = SimTime{0};
  expect_rejected(config);
  config = fault_test_cluster();
  config.faults.enabled = true;
  config.faults.task_fail_prob = 2.0;
  expect_rejected(config);
}

// --- recovery correctness ----------------------------------------------------

TEST(FaultRecovery, ZeroKnobFaultConfigIsBitIdentical) {
  const Workload w = make_example_dag();
  SimConfig off = fault_test_cluster();
  const RunMetrics a = run_workload(w, off).metrics;

  SimConfig zeroed = fault_test_cluster();
  zeroed.faults.enabled = true;  // enabled, but nothing can fire
  const RunMetrics b = run_workload(w, zeroed).metrics;
  EXPECT_EQ(metrics_fingerprint(a), metrics_fingerprint(b));
  EXPECT_FALSE(b.faults.any());
}

TEST(FaultRecovery, CompletesUnderExecutorCrash) {
  const Workload w = make_example_dag();
  SimConfig config = fault_test_cluster();
  config.faults.enabled = true;
  config.faults.crashes = {{120 * kSec, 0}};
  const RunMetrics m = run_workload(w, config).metrics;
  EXPECT_EQ(m.faults.executor_crashes, 1);
  for (const StageRecord& s : m.stages) EXPECT_GE(s.finish_time, SimTime{0});
  // No task record ever ran on the dead executor after the crash.
  for (const TaskRecord& t : m.tasks) {
    if (t.exec == ExecutorId(0)) {
      EXPECT_LE(t.launch, 120 * kSec);
    }
  }
}

TEST(FaultRecovery, CompletesUnderTransientFailures) {
  const Workload w = make_example_dag();
  SimConfig config = fault_test_cluster();
  config.faults.enabled = true;
  config.faults.task_fail_prob = 0.2;
  const RunMetrics m = run_workload(w, config).metrics;
  EXPECT_GT(m.faults.transient_failures, 0);
  EXPECT_GT(m.faults.retries, 0);
  for (const StageRecord& s : m.stages) EXPECT_GE(s.finish_time, SimTime{0});

  // Failed attempts are excluded from the mean task duration.
  SimConfig clean = fault_test_cluster();
  const RunMetrics base = run_workload(w, clean).metrics;
  EXPECT_GE(m.jct, base.jct);
}

TEST(FaultRecovery, CompletesUnderBlockLoss) {
  const Workload w = make_example_dag();
  SimConfig config = fault_test_cluster();
  config.faults.enabled = true;
  // Blocks are ~1 MiB, so an honest per-GB rate never fires; crank it so
  // losses are near-certain over the run.
  config.faults.block_loss_per_gb_hour = 2e5;
  config.faults.block_loss_interval = kSec;
  const RunMetrics m = run_workload(w, config).metrics;
  EXPECT_GT(m.faults.memory_blocks_lost, 0);
  EXPECT_EQ(m.faults.blocks_fully_lost, 0);  // disk copies survive
  for (const StageRecord& s : m.stages) EXPECT_GE(s.finish_time, SimTime{0});
}

TEST(FaultRecovery, FaultyRunsAreDeterministic) {
  const Workload w = make_example_dag();
  SimConfig config = fault_test_cluster();
  config.duration_noise = 0.1;
  config.faults.enabled = true;
  config.faults.crashes = {{90 * kSec, -1}};
  config.faults.task_fail_prob = 0.1;
  config.faults.block_loss_per_gb_hour = 10.0;
  const RunMetrics a = run_workload(w, config).metrics;
  const RunMetrics b = run_workload(w, config).metrics;
  EXPECT_EQ(metrics_fingerprint(a), metrics_fingerprint(b));
  EXPECT_TRUE(a.faults.any());
}

TEST(FaultRecovery, CrashedExecutorLeavesClusterAndCacheStaysDiskBacked) {
  const Workload w = make_example_dag();
  const JobProfile profile = exact_profile(w.dag);
  SimConfig config = fault_test_cluster();
  config.faults.enabled = true;
  config.faults.crashes = {{120 * kSec, 0}};
  SimDriver driver(w.dag, profile, config);
  const RunMetrics m = driver.run();
  EXPECT_EQ(m.faults.executor_crashes, 1);

  EXPECT_FALSE(driver.state().executor(ExecutorId(0)).alive());
  EXPECT_EQ(driver.state().executor(ExecutorId(0)).free_cores(), Cpus{0});
  EXPECT_EQ(driver.master().manager(ExecutorId(0)).num_blocks(), 0u);

  // Recovery invariant: every memory copy anywhere is still disk-backed,
  // so ordinary eviction can never lose data.
  for (const Executor& e : driver.topology().executors()) {
    for (const auto& entry : driver.master().manager(e.id).entries()) {
      EXPECT_FALSE(driver.master().disk_holders(entry.id).empty())
          << "block " << entry.id << " cached without a disk copy";
    }
  }
}

TEST(FaultRecovery, LostBlocksAreRecomputedFromLineage) {
  const Workload w = make_example_dag();
  SimConfig config = fault_test_cluster();
  config.faults.enabled = true;
  // Crash two of the four executors just after the first stages finish
  // (~240s): some produced blocks lose their only copies and must be
  // recomputed from lineage before the join stage can run.
  config.faults.crashes = {{250 * kSec, 0}, {251 * kSec, 2}};
  const RunMetrics m = run_workload(w, config).metrics;
  EXPECT_EQ(m.faults.executor_crashes, 2);
  EXPECT_GT(m.faults.disk_copies_lost, 0);
  EXPECT_GT(m.faults.blocks_fully_lost, 0);
  EXPECT_GT(m.faults.lineage_recomputes, 0);
  for (const StageRecord& s : m.stages) EXPECT_GE(s.finish_time, SimTime{0});

  // Recomputation costs time: the faulty run cannot beat the clean one.
  SimConfig clean = fault_test_cluster();
  EXPECT_GT(m.jct, run_workload(w, clean).metrics.jct);
}

TEST(FaultRecovery, JctMonotoneInFailureRate) {
  const Workload w = make_example_dag();
  double prev = 0.0;
  for (const double p : {0.0, 0.1, 0.3}) {
    double sum = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      SimConfig config = fault_test_cluster();
      config.seed = seed;
      config.faults.enabled = p > 0.0;
      config.faults.task_fail_prob = p;
      sum += to_seconds(run_workload(w, config).metrics.jct);
    }
    const double mean = sum / 5.0;
    EXPECT_GE(mean, prev) << "mean JCT dropped at failure rate " << p;
    prev = mean;
  }
}

TEST(FaultRecovery, FaultyPresetRunsToCompletion) {
  // The paper topology cannot fit the example DAG's 6-vCPU stage, so
  // drive the preset with a suite workload instead.
  const Workload w = make_workload(WorkloadId::KMeans, WorkloadScale{0.5});
  const SimConfig config = faulty_testbed();
  const RunMetrics m = run_workload(w, config).metrics;
  EXPECT_TRUE(m.faults.any());
  for (const StageRecord& s : m.stages) EXPECT_GE(s.finish_time, SimTime{0});
}

}  // namespace
}  // namespace dagon
