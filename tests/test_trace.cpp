// Tests for the trace-export module: Chrome-trace JSON, stage spans,
// binned series, locality breakdowns, timeline CSV.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/runner.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/timeline.hpp"
#include "workloads/example_dag.hpp"

namespace dagon {
namespace {

class TraceFixture : public ::testing::Test {
 protected:
  TraceFixture() : workload_(make_example_dag()) {
    SimConfig config;
    config.topology.cores_per_executor = Cpus{16};
    config.topology.cache_bytes_per_executor = 16 * kMiB;
    config.scheduler = SchedulerKind::Dagon;
    metrics_ = run_workload(workload_, config).metrics;
  }

  Workload workload_;
  RunMetrics metrics_;
};

TEST_F(TraceFixture, ChromeTraceContainsEveryTask) {
  const std::string json = chrome_trace_json(metrics_, workload_.dag);
  // One "X" complete event per task attempt.
  std::size_t events = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos; ++pos) {
    ++events;
  }
  EXPECT_EQ(events, metrics_.tasks.size());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("S1[0]"), std::string::npos);
  EXPECT_NE(json.find("PROCESS_LOCAL"), std::string::npos);
}

TEST_F(TraceFixture, ChromeTraceHasExecutorMetadataAndCounters) {
  const std::string json = chrome_trace_json(metrics_, workload_.dag);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"busy vCPUs\""), std::string::npos);
  // Well-formed JSON boundaries (cheap structural check).
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST_F(TraceFixture, ChromeTraceWritesFile) {
  const std::string path = ::testing::TempDir() + "/dagon_trace.json";
  write_chrome_trace(metrics_, workload_.dag, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, chrome_trace_json(metrics_, workload_.dag));
  std::remove(path.c_str());
}

TEST(ChromeTrace, EscapesSpecialCharacters) {
  JobDagBuilder b("quoted");
  const RddId in = b.input_rdd("in", 1, kMiB);
  b.add_stage({.name = "stage \"x\"\n", .inputs = {{in, DepKind::Narrow}},
               .num_tasks = 1,
               .task_cpus = Cpus{1},
               .task_duration = kSec});
  const Workload w{"quoted", WorkloadCategory::Mixed, b.build()};
  const RunMetrics m = run_workload(w, SimConfig{}).metrics;
  const std::string json = chrome_trace_json(m, w.dag);
  EXPECT_NE(json.find("stage \\\"x\\\"\\n"), std::string::npos);
}

TEST_F(TraceFixture, StageSpansOrderedByLaunch) {
  const auto spans = stage_spans(metrics_);
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].first_launch, spans[i - 1].first_launch);
  }
  for (const StageSpan& s : spans) {
    EXPECT_GE(s.first_launch, s.ready);
    EXPECT_GE(s.queue_delay(), SimTime{0});
    EXPECT_GT(s.finish, s.first_launch);
  }
}

TEST_F(TraceFixture, BinnedSeriesAverageMatchesMetrics) {
  const BinnedSeries util = utilization_series(metrics_, 20);
  ASSERT_EQ(util.values.size(), 20u);
  double sum = 0.0;
  for (const double v : util.values) sum += v;
  // The mean of the binned means approximates the exact time-weighted
  // mean (bins are equal width).
  EXPECT_NEAR(sum / 20.0,
              metrics_.busy_cores.average(SimTime{0}, metrics_.jct),
              0.5);
  const BinnedSeries par = parallelism_series(metrics_, 10);
  EXPECT_EQ(par.values.size(), 10u);
}

TEST_F(TraceFixture, BinnedSeriesEmptyCases) {
  EXPECT_TRUE(utilization_series(metrics_, 0).values.empty());
  RunMetrics empty;
  EXPECT_TRUE(utilization_series(empty, 10).values.empty());
}

TEST_F(TraceFixture, LocalityBreakdownCoversAllLaunches) {
  const auto breakdown = stage_locality_breakdown(metrics_, workload_.dag);
  ASSERT_EQ(breakdown.size(), 4u);
  std::int64_t total = 0;
  for (const StageLocality& s : breakdown) {
    total += s.total();
    EXPECT_GE(s.high_locality_fraction(), 0.0);
    EXPECT_LE(s.high_locality_fraction(), 1.0);
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(metrics_.tasks.size()));
}

TEST_F(TraceFixture, TimelineCsvHasOneRowPerStage) {
  const std::string path = ::testing::TempDir() + "/dagon_timeline.csv";
  write_timeline_csv(metrics_, workload_.dag, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 1 + 4);  // header + 4 stages
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dagon
