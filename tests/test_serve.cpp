// Tests for online multi-job serving: arrival generation, shared-input
// merging, stage gating, inter-job fair share, per-job metrics, and
// serving determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/dagon.hpp"

namespace dagon {
namespace {

Workload paired_job(const std::string& name) {
  JobDagBuilder b(name);
  const RddId ds = b.input_rdd("ds", 4, 4 * kMiB);
  b.set_rdd_cacheable(ds, false);
  const StageId load = b.add_stage({.name = "load",
                                    .inputs = {{ds, DepKind::Narrow}},
                                    .num_tasks = 4,
                                    .task_cpus = Cpus{1},
                                    .task_duration = kSec,
                                    .output_bytes_per_partition = kMiB,
                                    .output_name = "a"});
  const StageId feat = b.add_stage({.name = "feat",
                                    .inputs = {{ds, DepKind::Narrow}},
                                    .num_tasks = 4,
                                    .task_cpus = Cpus{1},
                                    .task_duration = kSec,
                                    .output_bytes_per_partition = kMiB,
                                    .output_name = "b"});
  b.add_stage({.name = "join",
               .inputs = {{b.output_of(load), DepKind::Narrow},
                          {b.output_of(feat), DepKind::Narrow}},
               .num_tasks = 4,
               .task_cpus = Cpus{1},
               .task_duration = kSec,
               .output_bytes_per_partition = Bytes{0},
               .cache_output = false});
  return Workload{name, WorkloadCategory::Mixed, b.build()};
}

SimConfig serve_cluster() {
  SimConfig config;
  config.topology.racks = 1;
  config.topology.nodes_per_rack = 2;
  config.topology.executors_per_node = 2;
  config.topology.cores_per_executor = Cpus{2};
  return config;
}

// --- arrival generation ---------------------------------------------------

TEST(Arrivals, PoissonIsDeterministicAndOrdered) {
  ArrivalSpec spec;
  spec.rate_per_sec = 1.0;
  spec.seed = 7;
  const auto a = generate_arrivals(spec, 16);
  const auto b = generate_arrivals(spec, 16);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 16u);
  EXPECT_EQ(a.front(), SimTime{0});  // the stream starts with work
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_GT(a.back(), SimTime{0});
  // A different seed draws a different pattern.
  spec.seed = 8;
  EXPECT_NE(generate_arrivals(spec, 16), a);
}

TEST(Arrivals, TraceGapsCycle) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::Trace;
  spec.trace_gaps_sec = {1.0, 2.0};
  const auto at = generate_arrivals(spec, 5);
  const std::vector<SimTime> expected = {SimTime{0}, kSec, 3 * kSec,
                                         4 * kSec, 6 * kSec};
  EXPECT_EQ(at, expected);
}

TEST(Arrivals, TraceNeedsGaps) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::Trace;
  EXPECT_THROW(generate_arrivals(spec, 2), InvariantError);
}

TEST(Arrivals, BurstyAlternatesPhases) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::Bursty;
  spec.burst_rate_per_sec = 100.0;
  spec.idle_rate_per_sec = 0.01;
  spec.burst_len = 4;
  spec.seed = 3;
  const auto at = generate_arrivals(spec, 12);
  EXPECT_TRUE(std::is_sorted(at.begin(), at.end()));
  // Jobs 0..3 land in a burst; the 4..7 idle phase dwarfs it.
  const SimTime burst_span = at[3] - at[0];
  const SimTime idle_span = at[7] - at[3];
  EXPECT_GT(idle_span, burst_span * 10);
}

// --- shared-input merging -------------------------------------------------

TEST(ServeMerge, SharedInputsDedupeAcrossJobs) {
  const std::vector<Workload> jobs = {paired_job("j0"), paired_job("j1")};
  const BatchWorkload shared = merge_workloads(jobs, /*share_inputs=*/true);
  const BatchWorkload isolated =
      merge_workloads(jobs, /*share_inputs=*/false);
  // One "ds" dataset in the shared merge, two private copies otherwise.
  const auto count_inputs = [](const BatchWorkload& bw) {
    std::int64_t n = 0;
    for (const Rdd& r : bw.combined.dag.rdds()) n += r.is_input ? 1 : 0;
    return n;
  };
  EXPECT_EQ(count_inputs(shared), 1);
  EXPECT_EQ(count_inputs(isolated), 2);
}

TEST(ServeMerge, SharedInputShapeMismatchThrows) {
  Workload other("other", WorkloadCategory::Mixed, [] {
    JobDagBuilder b("other");
    const RddId ds = b.input_rdd("ds", 8, kMiB);  // different shape
    b.add_stage({.name = "map",
                 .inputs = {{ds, DepKind::Narrow}},
                 .num_tasks = 8,
                 .task_cpus = Cpus{1},
                 .task_duration = kSec,
                 .output_bytes_per_partition = Bytes{0},
                 .cache_output = false});
    return b.build();
  }());
  EXPECT_THROW(
      merge_workloads({paired_job("j0"), other}, /*share_inputs=*/true),
      ConfigError);
}

// --- make_serving ---------------------------------------------------------

TEST(MakeServing, BuildsGatedJobsWithArrivals) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::Trace;
  spec.trace_gaps_sec = {5.0};
  ServingOptions opt;
  opt.weights = {1, 3};
  const ServingWorkload sw =
      make_serving({paired_job("j0"), paired_job("j1")}, spec, opt);
  ASSERT_EQ(sw.serving.jobs.size(), 2u);
  EXPECT_EQ(sw.serving.jobs[0].submit_at, SimTime{0});
  EXPECT_EQ(sw.serving.jobs[1].submit_at, 5 * kSec);
  EXPECT_EQ(sw.serving.jobs[1].weight, 3);
  EXPECT_EQ(sw.serving.jobs[0].stages,
            (std::vector<StageId>{StageId(0), StageId(1), StageId(2)}));
  EXPECT_TRUE(sw.serving.enabled());
}

TEST(MakeServing, WeightCountMismatchThrows) {
  ServingOptions opt;
  opt.weights = {1};
  EXPECT_THROW(
      make_serving({paired_job("j0"), paired_job("j1")}, ArrivalSpec{}, opt),
      ConfigError);
}

// --- end-to-end serving runs ----------------------------------------------

RunMetrics run_serving(std::int32_t jobs, double gap_sec, bool fair,
                       CachePolicyKind cache, std::uint64_t seed = 42) {
  std::vector<Workload> instances;
  for (std::int32_t j = 0; j < jobs; ++j) {
    instances.push_back(paired_job("job" + std::to_string(j)));
  }
  ArrivalSpec spec;
  spec.kind = ArrivalKind::Trace;
  spec.trace_gaps_sec = {gap_sec};
  ServingOptions opt;
  opt.fair_share = fair;
  const ServingWorkload sw = make_serving(instances, spec, opt);
  SimConfig config = serve_cluster();
  config.serving = sw.serving;
  config.cache = cache;
  config.seed = seed;
  return run_workload(sw.batch.combined, config).metrics;
}

TEST(Serving, EveryJobQuiescesAndAccountsItsReads) {
  const RunMetrics m =
      run_serving(3, 2.0, /*fair=*/true, CachePolicyKind::Lrp);
  ASSERT_EQ(m.jobs.size(), 3u);
  std::int64_t reads = 0, hits = 0, tasks = 0;
  for (const JobStats& j : m.jobs) {
    EXPECT_GE(j.first_launch, j.submitted) << j.name;
    EXPECT_GT(j.finished, j.submitted) << j.name;
    EXPECT_GT(j.jct(), SimTime{0}) << j.name;
    EXPECT_LE(j.effective_task_hits, j.effective_task_reads) << j.name;
    reads += j.effective_task_reads;
    hits += j.effective_task_hits;
    tasks += j.tasks;
  }
  EXPECT_EQ(reads, m.cache.effective_task_reads);
  EXPECT_EQ(hits, m.cache.effective_task_hits);
  EXPECT_EQ(tasks, 3 * 12);  // 3 jobs x (3 stages x 4 tasks)
  // The last finisher defines the stream's makespan.
  SimTime last{};
  for (const JobStats& j : m.jobs) last = std::max(last, j.finished);
  EXPECT_EQ(last, m.jct);
}

TEST(Serving, GatedJobsNeverLaunchBeforeArrival) {
  const RunMetrics m =
      run_serving(3, 4.0, /*fair=*/false, CachePolicyKind::Lrp);
  ASSERT_EQ(m.jobs.size(), 3u);
  EXPECT_EQ(m.jobs[1].submitted, 4 * kSec);
  EXPECT_EQ(m.jobs[2].submitted, 8 * kSec);
  for (const JobStats& j : m.jobs) {
    EXPECT_GE(j.first_launch, j.submitted) << j.name;
  }
}

TEST(Serving, FairShareStartsLateJobsEarlier) {
  // Simultaneous arrivals on a tight cluster: under FIFO the last job
  // waits for the earlier ones; fair share interleaves all three.
  const RunMetrics fifo =
      run_serving(3, 0.0, /*fair=*/false, CachePolicyKind::Lrp);
  const RunMetrics fair =
      run_serving(3, 0.0, /*fair=*/true, CachePolicyKind::Lrp);
  EXPECT_LT(fair.jobs[2].first_launch, fifo.jobs[2].first_launch);
  // Interleaving trades the first job's finish for the last one's start.
  EXPECT_GE(fair.jobs[0].finished, fifo.jobs[0].finished);
}

TEST(Serving, WeightedFairShareFavorsHeavyJobs) {
  // Two simultaneous jobs, weight 1 vs 4, one four-core executor: the
  // min-share rule gives the heavy job 3 of 4 cores (1:1 only below
  // that granularity), so it must finish first.
  std::vector<Workload> instances = {paired_job("light"),
                                     paired_job("heavy")};
  ArrivalSpec spec;
  spec.kind = ArrivalKind::Trace;
  spec.trace_gaps_sec = {0.0};
  ServingOptions opt;
  opt.fair_share = true;
  opt.weights = {1, 4};
  const ServingWorkload sw = make_serving(instances, spec, opt);
  SimConfig config = serve_cluster();
  config.topology.nodes_per_rack = 1;
  config.topology.executors_per_node = 1;
  config.topology.cores_per_executor = Cpus{4};
  config.serving = sw.serving;
  const RunMetrics m = run_workload(sw.batch.combined, config).metrics;
  EXPECT_LT(m.jobs[1].finished, m.jobs[0].finished);
}

TEST(Serving, RunsAreDeterministicPerSeed) {
  const RunMetrics a =
      run_serving(3, 1.0, /*fair=*/true, CachePolicyKind::Lerc, 7);
  const RunMetrics b =
      run_serving(3, 1.0, /*fair=*/true, CachePolicyKind::Lerc, 7);
  EXPECT_EQ(metrics_fingerprint(a), metrics_fingerprint(b));
}

TEST(Serving, LercServingRunProducesEffectiveHits) {
  const RunMetrics m =
      run_serving(3, 1.0, /*fair=*/true, CachePolicyKind::Lerc);
  // Every join task reads a cacheable pair: 4 tasks x 3 jobs.
  EXPECT_EQ(m.cache.effective_task_reads, 12);
  EXPECT_GT(m.cache.effective_task_hits, 0);
  EXPECT_GT(m.cache.effective_hit_ratio(), 0.0);
}

TEST(Serving, SingleJobRunsReportNoJobTable) {
  const RunMetrics m =
      run_workload(paired_job("solo"), serve_cluster()).metrics;
  EXPECT_TRUE(m.jobs.empty());
}

TEST(Serving, ValidatesStagePartition) {
  const ServingWorkload sw = make_serving({paired_job("j0")}, ArrivalSpec{});
  SimConfig config = serve_cluster();
  config.serving = sw.serving;
  config.serving.jobs[0].stages.pop_back();  // stage 2 now unowned
  EXPECT_THROW(run_workload(sw.batch.combined, config), ConfigError);
  config.serving = sw.serving;
  config.serving.jobs[0].weight = 0;
  EXPECT_THROW(run_workload(sw.batch.combined, config), ConfigError);
}

}  // namespace
}  // namespace dagon
