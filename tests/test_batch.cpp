// Tests for multi-job batches (workloads/batch) and multi-tenant
// capacity fluctuation (SimConfig::capacity_phases).
#include <gtest/gtest.h>

#include "core/dagon.hpp"
#include "workloads/batch.hpp"

namespace dagon {
namespace {

Workload tiny_job(const std::string& name, SimTime duration, Cpus cpus) {
  JobDagBuilder b(name);
  const RddId in = b.input_rdd("in", 8, 4 * kMiB);
  const StageId first = b.add_stage({.name = "map",
                                     .inputs = {{in, DepKind::Narrow}},
                                     .num_tasks = 8,
                                     .task_cpus = cpus,
                                     .task_duration = duration,
                                     .output_bytes_per_partition = kMiB});
  b.add_stage({.name = "reduce",
               .inputs = {{b.output_of(first), DepKind::Shuffle}},
               .num_tasks = 4,
               .task_cpus = Cpus{1},
               .task_duration = duration / 2,
               .output_bytes_per_partition = Bytes{0}});
  return Workload{name, WorkloadCategory::Mixed, b.build()};
}

TEST(Batch, MergePreservesStructure) {
  const BatchWorkload batch = merge_workloads(
      {tiny_job("alpha", 2 * kSec, Cpus{1}), tiny_job("beta", 4 * kSec, Cpus{2})});
  EXPECT_EQ(batch.combined.name, "alpha+beta");
  EXPECT_EQ(batch.combined.dag.num_stages(), 4u);
  ASSERT_EQ(batch.jobs.size(), 2u);
  EXPECT_EQ(batch.jobs[0].stages,
            (std::vector<StageId>{StageId(0), StageId(1)}));
  EXPECT_EQ(batch.jobs[1].stages,
            (std::vector<StageId>{StageId(2), StageId(3)}));
  // Jobs are disconnected components: no cross-job edges.
  for (const StageId sid : batch.jobs[0].stages) {
    for (const StageId child : batch.combined.dag.stage(sid).children) {
      EXPECT_LT(child.value(), 2);
    }
  }
  // Names are prefixed for readability.
  EXPECT_EQ(batch.combined.dag.stage(StageId(2)).name, "beta/map");
}

TEST(Batch, MergePreservesWorkloads) {
  const Workload a = tiny_job("alpha", 2 * kSec, Cpus{1});
  const Workload b = tiny_job("beta", 4 * kSec, Cpus{2});
  const BatchWorkload batch = merge_workloads({a, b});
  EXPECT_EQ(batch.combined.dag.total_workload(),
            a.dag.total_workload() + b.dag.total_workload());
}

TEST(Batch, MergeRejectsEmpty) {
  EXPECT_THROW(merge_workloads({}), ConfigError);
}

TEST(Batch, PerJobCompletionsAreConsistent) {
  const BatchWorkload batch = merge_workloads(
      {tiny_job("alpha", 2 * kSec, Cpus{1}), tiny_job("beta", 4 * kSec, Cpus{1})});
  SimConfig config;
  config.topology.racks = 1;
  config.topology.nodes_per_rack = 2;
  config.topology.executors_per_node = 1;
  config.topology.cores_per_executor = Cpus{4};
  const RunMetrics m = run_workload(batch.combined, config).metrics;
  const auto completions = per_job_completions(batch, m);
  ASSERT_EQ(completions.size(), 2u);
  SimTime latest{};
  for (const JobCompletion& jc : completions) {
    EXPECT_GT(jc.finish, jc.first_launch);
    latest = std::max(latest, jc.finish);
  }
  EXPECT_EQ(latest, m.jct);
}

TEST(Batch, FairSharesAcrossJobsFifoSerializes) {
  // Two identical jobs on a tight cluster: FIFO runs alpha before beta
  // (beta's first launch is late); Fair interleaves (both start early).
  const BatchWorkload batch = merge_workloads(
      {tiny_job("alpha", 4 * kSec, Cpus{1}), tiny_job("beta", 4 * kSec, Cpus{1})});
  SimConfig config;
  config.topology.racks = 1;
  config.topology.nodes_per_rack = 1;
  config.topology.executors_per_node = 1;
  config.topology.cores_per_executor = Cpus{4};  // 8+8 tasks on 4 cores

  config.scheduler = SchedulerKind::Fifo;
  const auto fifo =
      per_job_completions(batch, run_workload(batch.combined,
                                              config).metrics);
  config.scheduler = SchedulerKind::Fair;
  const auto fair =
      per_job_completions(batch, run_workload(batch.combined,
                                              config).metrics);
  EXPECT_LT(fair[1].first_launch, fifo[1].first_launch);
  // Fair trades beta's start for alpha's finish.
  EXPECT_GE(fair[0].finish, fifo[0].finish);
}

TEST(Batch, DagonPrioritizesBiggerRemainingWork) {
  // A heavy and a light job: Dagon's pv ranks the heavy job's stages
  // first, so the light job finishes close to last (makespan-friendly).
  const BatchWorkload batch = merge_workloads(
      {tiny_job("light", kSec, Cpus{1}), tiny_job("heavy", 8 * kSec, Cpus{1})});
  SimConfig config;
  config.topology.racks = 1;
  config.topology.nodes_per_rack = 1;
  config.topology.executors_per_node = 1;
  config.topology.cores_per_executor = Cpus{4};
  config.scheduler = SchedulerKind::Dagon;
  const auto done =
      per_job_completions(batch, run_workload(batch.combined,
                                              config).metrics);
  // The heavy job starts first despite its higher stage ids.
  EXPECT_LE(done[1].first_launch, done[0].first_launch);
}

// --- capacity fluctuation ----------------------------------------------------

SimConfig capacity_cluster() {
  SimConfig config;
  config.topology.racks = 1;
  config.topology.nodes_per_rack = 2;
  config.topology.executors_per_node = 2;
  config.topology.cores_per_executor = Cpus{4};
  return config;
}

Workload wide_job() {
  JobDagBuilder b("wide");
  const RddId in = b.input_rdd("in", 48, 4 * kMiB);
  b.add_stage({.name = "map",
               .inputs = {{in, DepKind::Narrow}},
               .num_tasks = 48,  // 3 waves on 16 cores, 6 on 8
               .task_cpus = Cpus{1},
               .task_duration = 4 * kSec,
               .output_bytes_per_partition = Bytes{0}});
  return Workload{"wide", WorkloadCategory::Mixed, b.build()};
}

TEST(CapacityPhases, ReservationSlowsTheJob) {
  const Workload w = wide_job();
  SimConfig config = capacity_cluster();
  const SimTime base = run_workload(w, config).metrics.jct;
  config.capacity_phases = {{SimTime{0}, 0.5}};
  const RunMetrics m = run_workload(w, config).metrics;
  EXPECT_GT(m.jct, base * 15 / 10);
  // Reservations never preempt: the first wave (launched before the
  // phase applied) runs to completion, then the full 8-core reservation
  // holds for the rest of the job.
  EXPECT_DOUBLE_EQ(m.reserved_cores.at(m.jct - SimTime{1}), 8.0);
  EXPECT_GE(m.reserved_cores.average(kSec, m.jct), 6.0);
}

TEST(CapacityPhases, ReleaseRestoresCapacity) {
  const Workload w = tiny_job("job", 4 * kSec, Cpus{1});
  SimConfig config = capacity_cluster();
  config.capacity_phases = {{SimTime{0}, 0.5}, {6 * kSec, 0.0}};
  const RunMetrics m = run_workload(w, config).metrics;
  EXPECT_DOUBLE_EQ(m.reserved_cores.at(7 * kSec), 0.0);
  // Busy + reserved never exceed capacity.
  for (const auto& p : m.busy_cores.points()) {
    EXPECT_LE(p.value + m.reserved_cores.at(p.time), 16.0 + 1e-9);
  }
}

TEST(CapacityPhases, PendingReservationClaimsAsTasksFinish) {
  // Reserve 100%-ish mid-run: claims must wait for completions, never
  // preempt, and the job must still finish.
  const Workload w = tiny_job("job", 4 * kSec, Cpus{1});
  SimConfig config = capacity_cluster();
  config.capacity_phases = {{kSec, 0.75}, {10 * kSec, 0.0}};
  const RunMetrics m = run_workload(w, config).metrics;
  std::int64_t completed = 0;
  for (const TaskRecord& t : m.tasks) completed += t.cancelled ? 0 : 1;
  EXPECT_EQ(completed, w.dag.total_tasks());
  EXPECT_DOUBLE_EQ(m.busy_cores.value(), 0.0);
}

TEST(CapacityPhases, RejectsBadPhases) {
  const Workload w = tiny_job("job", kSec, Cpus{1});
  SimConfig config = capacity_cluster();
  config.capacity_phases = {{5 * kSec, 0.5}, {2 * kSec, 0.1}};  // unsorted
  EXPECT_THROW(run_workload(w, config), ConfigError);
  config.capacity_phases = {{SimTime{0}, 1.5}};  // fraction out of range
  EXPECT_THROW(run_workload(w, config), ConfigError);
}

TEST(CapacityPhases, DeterministicUnderFluctuation) {
  const Workload w = tiny_job("job", 2 * kSec, Cpus{1});
  SimConfig config = capacity_cluster();
  config.capacity_phases = {{kSec, 0.5}, {4 * kSec, 0.25}};
  config.duration_noise = 0.2;
  const SimTime a = run_workload(w, config).metrics.jct;
  const SimTime b = run_workload(w, config).metrics.jct;
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dagon
