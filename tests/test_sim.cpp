// Unit + integration tests for the simulation engine: event queue,
// metrics, and full SimDriver runs over small DAGs.
#include <gtest/gtest.h>

#include "common/sorted_view.hpp"
#include "core/runner.hpp"
#include "sim/driver.hpp"
#include "sim/event_queue.hpp"
#include "workloads/example_dag.hpp"
#include "workloads/graph_workloads.hpp"
#include "workloads/ml_workloads.hpp"

namespace dagon {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(Event{SimTime{30}, EventType::Tick, TaskId::invalid(),
               ExecutorId::invalid(), BlockId{}});
  q.push(Event{SimTime{10}, EventType::TaskFinish, TaskId(1), ExecutorId::invalid(),
               BlockId{}});
  q.push(Event{SimTime{20}, EventType::PrefetchDone, TaskId::invalid(),
               ExecutorId(0), BlockId{}});
  EXPECT_EQ(q.next_time(), SimTime{10});
  EXPECT_EQ(q.pop()->type, EventType::TaskFinish);
  EXPECT_EQ(q.pop()->type, EventType::PrefetchDone);
  EXPECT_EQ(q.pop()->type, EventType::Tick);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  q.push(Event{SimTime{5}, EventType::TaskFinish, TaskId(1), ExecutorId::invalid(),
               BlockId{}});
  q.push(Event{SimTime{5}, EventType::TaskFinish, TaskId(2), ExecutorId::invalid(),
               BlockId{}});
  EXPECT_EQ(q.pop()->task, TaskId(1));
  EXPECT_EQ(q.pop()->task, TaskId(2));
}

TEST(EventQueue, RejectsNegativeTime) {
  EventQueue q;
  EXPECT_THROW(q.push(Event{SimTime{-1}, EventType::Tick, TaskId::invalid(),
                            ExecutorId::invalid(), BlockId{}}),
               InvariantError);
}

// --- RunMetrics -------------------------------------------------------------

TEST(RunMetrics, DerivedQuantities) {
  RunMetrics m;
  m.jct = 10 * kSec;
  m.total_cores = Cpus{10};
  m.busy_cores.set(SimTime{0}, 5.0);
  m.busy_cores.set(10 * kSec, 0.0);
  EXPECT_DOUBLE_EQ(m.cpu_utilization(), 0.5);

  m.running_tasks.set(SimTime{0}, 4.0);
  m.running_tasks.set(10 * kSec, 0.0);
  EXPECT_DOUBLE_EQ(m.avg_parallelism(), 4.0);

  m.locality_histogram[static_cast<std::size_t>(Locality::Process)] = 3;
  m.locality_histogram[static_cast<std::size_t>(Locality::Rack)] = 1;
  EXPECT_DOUBLE_EQ(m.high_locality_fraction(), 0.75);
}

TEST(RunMetrics, CacheHitRatio) {
  CacheStats stats;
  stats.local_memory_hits = 3;
  stats.total_reads = 4;
  EXPECT_DOUBLE_EQ(stats.hit_ratio(), 0.75);
  EXPECT_DOUBLE_EQ(CacheStats{}.hit_ratio(), 0.0);
}

// --- SimDriver integration ---------------------------------------------------

SimConfig single_executor_config() {
  SimConfig config;
  config.topology.racks = 1;
  config.topology.nodes_per_rack = 1;
  config.topology.executors_per_node = 1;
  config.topology.cores_per_executor = Cpus{16};
  config.topology.cache_bytes_per_executor = 64 * kMiB;
  config.hdfs.replication = 1;
  return config;
}

TEST(SimDriver, Fig1FifoFinishesAt13Minutes) {
  const Workload w = make_example_dag();
  SimConfig config = single_executor_config();
  config.scheduler = SchedulerKind::Fifo;
  const RunResult r = run_workload(w, config);
  // Fig. 2(a): FIFO finishes at 13 min (fetch costs are ~ms noise).
  EXPECT_NEAR(to_seconds(r.metrics.jct), 13 * 60, 2.0);
}

TEST(SimDriver, Fig1DagonFinishesAt9Minutes) {
  const Workload w = make_example_dag();
  SimConfig config = single_executor_config();
  config.scheduler = SchedulerKind::Dagon;
  config.cache = CachePolicyKind::Lrp;
  config.delay = DelayKind::SensitivityAware;
  const RunResult r = run_workload(w, config);
  // Fig. 2(b): the DAG-aware schedule finishes at 9 min.
  EXPECT_NEAR(to_seconds(r.metrics.jct), 9 * 60, 2.0);
}

TEST(SimDriver, ConservesResourceAccounting) {
  const Workload w = make_example_dag();
  SimConfig config = single_executor_config();
  const RunResult r = run_workload(w, config);
  // Busy cores returns to zero and never exceeds capacity.
  EXPECT_DOUBLE_EQ(r.metrics.busy_cores.value(), 0.0);
  EXPECT_LE(r.metrics.busy_cores.max_over(SimTime{0}, r.metrics.jct), 16.0);
  EXPECT_DOUBLE_EQ(r.metrics.running_tasks.value(), 0.0);
}

TEST(SimDriver, AllTasksRunExactlyOnce) {
  const Workload w = make_example_dag();
  const RunResult r = run_workload(w, single_executor_config());
  EXPECT_EQ(r.metrics.tasks.size(),
            static_cast<std::size_t>(w.dag.total_tasks()));
  for (const TaskRecord& t : r.metrics.tasks) {
    EXPECT_FALSE(t.cancelled);
    EXPECT_GE(t.launch, SimTime{0});
    EXPECT_GT(t.finish, t.launch);
  }
}

TEST(SimDriver, StageRecordsRespectDependencies) {
  const Workload w = make_example_dag();
  const RunResult r = run_workload(w, single_executor_config());
  for (const StageRecord& s : r.metrics.stages) {
    EXPECT_GE(s.first_launch, SimTime{0});
    EXPECT_GT(s.finish_time, s.first_launch);
    for (const StageId p : w.dag.stage(s.id).parents) {
      EXPECT_GE(s.first_launch, r.metrics.stages[static_cast<std::size_t>(
                                    p.value())]
                                    .finish_time);
    }
  }
}

TEST(SimDriver, DeterministicAcrossRuns) {
  KMeansParams params;
  params.partitions = 16;
  params.iterations = 3;
  const Workload w = make_kmeans(params);
  SimConfig config;
  config.topology.racks = 1;
  config.topology.nodes_per_rack = 4;
  config.topology.executors_per_node = 2;
  config.topology.cores_per_executor = Cpus{4};
  config.seed = 77;
  config.duration_noise = 0.1;
  const RunResult a = run_workload(w, config);
  const RunResult b = run_workload(w, config);
  EXPECT_EQ(a.metrics.jct, b.metrics.jct);
  ASSERT_EQ(a.metrics.tasks.size(), b.metrics.tasks.size());
  for (std::size_t i = 0; i < a.metrics.tasks.size(); ++i) {
    EXPECT_EQ(a.metrics.tasks[i].launch, b.metrics.tasks[i].launch);
    EXPECT_EQ(a.metrics.tasks[i].exec, b.metrics.tasks[i].exec);
  }
}

TEST(SimDriver, SeedChangesPlacement) {
  KMeansParams params;
  params.partitions = 16;
  params.iterations = 3;
  const Workload w = make_kmeans(params);
  const JobProfile profile = exact_profile(w.dag);
  SimConfig config;
  config.topology.nodes_per_rack = 4;
  config.hdfs.replication = 1;
  config.seed = 1;
  const SimDriver a(w.dag, profile, config);
  config.seed = 2;
  const SimDriver b(w.dag, profile, config);
  // Different seeds almost surely place at least one block differently.
  bool any_diff = false;
  for (std::int64_t ord = 0; ord < a.hdfs().num_blocks(); ++ord) {
    if (b.hdfs().replicas_by_ord(ord) != a.hdfs().replicas_by_ord(ord)) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SimDriver, CacheDisabledRunsAndNeverHits) {
  const Workload w = make_example_dag();
  SimConfig config = single_executor_config();
  config.cache_enabled = false;
  const RunResult r = run_workload(w, config);
  EXPECT_EQ(r.metrics.cache.local_memory_hits, 0);
  EXPECT_EQ(r.metrics.cache.insertions, 0);
  EXPECT_GT(r.metrics.cache.disk_reads, 0);
}

TEST(SimDriver, RejectsUnplaceableDemand) {
  JobDagBuilder b("toofat");
  const RddId in = b.input_rdd("in", 1, kMiB);
  b.add_stage({.name = "s",
               .inputs = {{in, DepKind::Narrow}},
               .num_tasks = 1,
               .task_cpus = Cpus{32},  // > 16-core executors
               .task_duration = kSec});
  const Workload w{"toofat", WorkloadCategory::Mixed, b.build()};
  EXPECT_THROW(run_workload(w, single_executor_config()), ConfigError);
}

TEST(SimDriver, SingleShot) {
  const Workload w = make_example_dag();
  const JobProfile profile = exact_profile(w.dag);
  SimDriver driver(w.dag, profile, single_executor_config());
  (void)driver.run();
  EXPECT_THROW((void)driver.run(), InvariantError);
}

TEST(SimDriver, SpeculationRecoversFromStraggler) {
  // One stage, 8 tasks, one pathological straggler (100x).
  JobDagBuilder b("straggler");
  const RddId in = b.input_rdd("in", 8, kMiB);
  std::vector<double> skew(8, 1.0);
  skew[3] = 100.0;
  b.add_stage({.name = "s",
               .inputs = {{in, DepKind::Narrow}},
               .num_tasks = 8,
               .task_cpus = Cpus{1},
               .task_duration = 2 * kSec,
               .output_bytes_per_partition = Bytes{0},
               .cache_output = false,
               .duration_skew = skew});
  const Workload w{"straggler", WorkloadCategory::Mixed, b.build()};

  SimConfig config;
  config.topology.racks = 1;
  config.topology.nodes_per_rack = 2;
  config.topology.executors_per_node = 2;
  config.topology.cores_per_executor = Cpus{4};

  const RunResult without = run_workload(w, config);
  config.speculation.enabled = true;
  config.speculation.quantile = 0.5;
  config.speculation.multiplier = 2.0;
  const RunResult with = run_workload(w, config);

  // The straggler's skewed compute time is baked into the copy too (the
  // simulator treats skew as task-intrinsic), so speculation cannot help
  // here by construction — but it must at least not corrupt accounting.
  EXPECT_DOUBLE_EQ(with.metrics.busy_cores.value(), 0.0);
  std::int64_t speculative = 0;
  for (const TaskRecord& t : with.metrics.tasks) {
    speculative += t.speculative ? 1 : 0;
  }
  EXPECT_GE(speculative, 1);
  EXPECT_LE(with.metrics.jct, without.metrics.jct * 11 / 10);
}

TEST(SimDriver, PerExecutorProfilesCollectedOnDemand) {
  const Workload w = make_example_dag();
  SimConfig config = single_executor_config();
  EXPECT_TRUE(run_workload(w, config).metrics.executor_profiles.empty());
  config.per_executor_profiles = true;
  const RunResult r = run_workload(w, config);
  ASSERT_EQ(r.metrics.executor_profiles.size(), 1u);
  EXPECT_FALSE(r.metrics.executor_profiles[0].pending.empty());
}

TEST(SimDriver, PrefetchingHappensForLrp) {
  // ConnectedComponent: each superstep kills the previous vertex-state
  // RDD; the proactive sweep frees space and the evicted in-adjacency
  // blocks get prefetched back from local disk.
  const Workload w = make_connected_component(16);
  SimConfig config;
  config.topology.racks = 1;
  config.topology.nodes_per_rack = 2;
  config.topology.executors_per_node = 2;
  config.topology.cores_per_executor = Cpus{4};
  config.topology.cache_bytes_per_executor = 512 * kMiB;
  config.cache = CachePolicyKind::Lrp;
  const RunResult r = run_workload(w, config);
  EXPECT_GT(r.metrics.cache.prefetches, 0);
  EXPECT_GT(r.metrics.cache.proactive_evictions, 0);
}

TEST(SimDriver, LocalityHistogramPopulated) {
  const Workload w = make_example_dag();
  const RunResult r = run_workload(w, single_executor_config());
  std::int64_t total = 0;
  for (std::size_t l = 0; l < r.metrics.locality_histogram.size(); ++l) {
    total += r.metrics.locality_histogram[l];
  }
  EXPECT_EQ(total, w.dag.total_tasks());
}

}  // namespace
}  // namespace dagon
