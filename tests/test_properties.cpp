// Property-based tests: sweep random DAGs (TEST_P over seeds) and assert
// the simulator's invariants hold under every scheduler/cache
// combination — resource conservation, dependency order, cache-stat
// consistency, and bit-exact determinism.
#include <gtest/gtest.h>

#include "core/dagon.hpp"

namespace dagon {
namespace {

SimConfig property_cluster(std::uint64_t seed) {
  SimConfig config;
  config.topology.racks = 2;
  config.topology.nodes_per_rack = 2;
  config.topology.executors_per_node = 2;
  config.topology.cores_per_executor = Cpus{8};
  config.topology.cache_bytes_per_executor = 64 * kMiB;
  config.hdfs.replication = 2;
  config.seed = seed;
  return config;
}

struct PropertyCase {
  std::uint64_t seed;
  SchedulerKind scheduler;
  CachePolicyKind cache;
  DelayKind delay;
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  return std::string("seed") + std::to_string(info.param.seed) + "_" +
         scheduler_name(info.param.scheduler) + "_" +
         cache_policy_name(info.param.cache) + "_" +
         (info.param.delay == DelayKind::Native ? "native" : "aware");
}

class SimInvariants : public ::testing::TestWithParam<PropertyCase> {
 protected:
  static RandomDagParams dag_params() {
    RandomDagParams p;
    p.max_stages = 14;
    p.max_tasks = 12;
    p.max_cpus = Cpus{4};
    return p;
  }
};

TEST_P(SimInvariants, HoldOnRandomDags) {
  const PropertyCase param = GetParam();
  Rng rng(param.seed);
  const Workload w = make_random_dag(rng, dag_params());

  SimConfig config = property_cluster(param.seed);
  config.scheduler = param.scheduler;
  config.cache = param.cache;
  config.delay = param.delay;

  const RunMetrics m = run_workload(w, config).metrics;

  // 1. Every task ran exactly once (no speculation configured).
  std::int64_t completed = 0;
  for (const TaskRecord& t : m.tasks) {
    if (!t.cancelled) ++completed;
  }
  EXPECT_EQ(completed, w.dag.total_tasks());

  // 2. Resource conservation: busy cores within [0, capacity], back to 0.
  EXPECT_DOUBLE_EQ(m.busy_cores.value(), 0.0);
  EXPECT_LE(m.busy_cores.max_over(SimTime{0}, m.jct),
            static_cast<double>(m.total_cores.count()));
  EXPECT_DOUBLE_EQ(m.running_tasks.value(), 0.0);

  // 3. Stage dependency order.
  for (const StageRecord& s : m.stages) {
    for (const StageId p : w.dag.stage(s.id).parents) {
      EXPECT_GE(s.first_launch,
                m.stages[static_cast<std::size_t>(p.value())].finish_time);
    }
  }

  // 4. JCT is bounded below by the DAG's critical path through actual
  //    compute times (fetches only add).
  EXPECT_GE(m.jct, critical_path(w.dag));

  // 5. Cache accounting is consistent.
  EXPECT_EQ(m.cache.local_memory_hits + m.cache.other_memory_hits +
                m.cache.disk_reads,
            m.cache.total_reads);
  EXPECT_GE(m.cache.hit_ratio(), 0.0);
  EXPECT_LE(m.cache.hit_ratio(), 1.0);

  // 6. Locality histogram covers every attempt.
  std::int64_t launches = 0;
  for (const std::int64_t c : m.locality_histogram) launches += c;
  EXPECT_EQ(launches, static_cast<std::int64_t>(m.tasks.size()));

  // 7. Determinism: rerunning is bit-identical.
  Rng rng2(param.seed);
  const Workload w2 = make_random_dag(rng2, dag_params());
  const RunMetrics m2 = run_workload(w2, config).metrics;
  EXPECT_EQ(m.jct, m2.jct);
  EXPECT_EQ(m.cache.local_memory_hits, m2.cache.local_memory_hits);
}

std::vector<PropertyCase> property_cases() {
  std::vector<PropertyCase> cases;
  const SchedulerKind schedulers[] = {
      SchedulerKind::Fifo, SchedulerKind::Fair, SchedulerKind::CriticalPath,
      SchedulerKind::Graphene, SchedulerKind::Dagon};
  const CachePolicyKind caches[] = {CachePolicyKind::Lru,
                                    CachePolicyKind::Lrc,
                                    CachePolicyKind::Mrd,
                                    CachePolicyKind::Lrp};
  std::uint64_t seed = 100;
  for (const SchedulerKind s : schedulers) {
    for (const CachePolicyKind c : caches) {
      cases.push_back(PropertyCase{seed++, s, c,
                                   seed % 2 ? DelayKind::Native
                                            : DelayKind::SensitivityAware});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSystems, SimInvariants,
                         ::testing::ValuesIn(property_cases()), case_name);

// --- assignment-trace invariants over random DAGs ------------------------------

class TraceInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceInvariants, HoldForEverySelector) {
  Rng rng(GetParam());
  RandomDagParams p;
  p.max_stages = 16;
  p.max_tasks = 10;
  p.max_cpus = Cpus{4};
  const Workload w = make_random_dag(rng, p);
  const Cpus capacity{12};

  for (const SchedulerKind kind :
       {SchedulerKind::Fifo, SchedulerKind::Fair, SchedulerKind::CriticalPath,
        SchedulerKind::Graphene, SchedulerKind::Dagon}) {
    const auto trace = trace_priority_assignment(w.dag, capacity, kind);

    // Every task placed exactly once.
    EXPECT_EQ(trace.placements.size(),
              static_cast<std::size_t>(w.dag.total_tasks()));

    // Capacity respected at every placement start.
    for (const PlacedTask& t : trace.placements) {
      Cpus busy{};
      for (const PlacedTask& q : trace.placements) {
        if (q.start <= t.start && t.start < q.end) busy += q.cpus;
      }
      EXPECT_LE(busy, capacity);
    }

    // Dependencies respected; makespan >= lower bound.
    EXPECT_GE(trace.makespan, makespan_lower_bound(w.dag, capacity));
    for (const Stage& s : w.dag.stages()) {
      SimTime first = kTimeInfinity;
      SimTime parent_last{};
      for (const PlacedTask& t : trace.placements) {
        if (t.stage == s.id) first = std::min(first, t.start);
        for (const StageId parent : s.parents) {
          if (t.stage == parent) parent_last = std::max(parent_last, t.end);
        }
      }
      EXPECT_GE(first, parent_last);
    }

    // Fragmentation accounting is exact.
    CpuWork busy_time{};
    for (const PlacedTask& t : trace.placements) {
      busy_time += t.cpus * (t.end - t.start);
    }
    EXPECT_EQ(trace.idle_cpu_time,
              capacity * trace.makespan - busy_time);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceInvariants,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- cache-policy invariants under random reference patterns --------------------

class PolicyInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolicyInvariants, RetentionAndPrefetchAgree) {
  Rng rng(GetParam());
  RandomDagParams p;
  p.max_stages = 10;
  const Workload w = make_random_dag(rng, p);
  ReferenceOracle oracle(w.dag);
  oracle.set_current_stage(w.dag.stages().front().id);

  for (const CachePolicyKind kind :
       {CachePolicyKind::Mrd, CachePolicyKind::Lrp}) {
    const auto policy = make_cache_policy(kind);
    for (const Rdd& rdd : w.dag.rdds()) {
      for (std::int32_t part = 0; part < rdd.num_partitions; ++part) {
        const BlockId block{rdd.id, part};
        const auto prefetch = policy->prefetch_priority(block, oracle);
        const double retention =
            policy->retention_priority(block, SimTime{0}, oracle);
        if (prefetch.has_value()) {
          // The two scales must agree, or prefetch admission thrashes.
          EXPECT_DOUBLE_EQ(*prefetch, retention)
              << cache_policy_name(kind);
          EXPECT_FALSE(policy->is_dead(block, oracle));
        } else {
          // Nothing prefetchable is worth keeping either (dead), except
          // LRP's zero-priority convention.
          EXPECT_TRUE(policy->is_dead(block, oracle) ||
                      oracle.reference_priority(block) <= CpuWork{0});
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyInvariants,
                         ::testing::Range<std::uint64_t>(50, 60));

// --- block-level reference consumption ------------------------------------------

class OracleInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleInvariants, RefCountsNeverGoNegativeAndReachZero) {
  Rng rng(GetParam());
  RandomDagParams p;
  p.max_stages = 12;
  p.max_tasks = 8;
  const Workload w = make_random_dag(rng, p);
  ReferenceOracle oracle(w.dag);

  // Launch every task of every stage in topological order.
  for (const StageId sid : w.dag.topological_order()) {
    const Stage& s = w.dag.stage(sid);
    for (std::int32_t t = 0; t < s.num_tasks; ++t) {
      oracle.on_task_launched(sid, t);
    }
    oracle.mark_stage_finished(sid);
  }
  for (const Rdd& rdd : w.dag.rdds()) {
    for (std::int32_t part = 0; part < rdd.num_partitions; ++part) {
      const BlockId block{rdd.id, part};
      EXPECT_EQ(oracle.remaining_ref_count(block), 0);
      EXPECT_EQ(oracle.reference_priority(block), CpuWork{0});
      EXPECT_EQ(oracle.stage_distance(block), ReferenceOracle::kNeverUsed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleInvariants,
                         ::testing::Range<std::uint64_t>(200, 210));

}  // namespace
}  // namespace dagon
