// Unit tests for the scheduler module: job state bookkeeping, locality
// classification, estimators, delay scheduling (native + Algorithm 2),
// stage selectors, and speculation.
#include <gtest/gtest.h>

#include "cache/block_manager_master.hpp"
#include "sched/delay_scheduling.hpp"
#include "sched/estimator.hpp"
#include "sched/job_state.hpp"
#include "sched/speculation.hpp"
#include "sched/stage_selector.hpp"
#include "sched/task_locality.hpp"
#include "workloads/example_dag.hpp"

namespace dagon {
namespace {

/// Shared rig: Fig. 1 DAG on a 2-rack, 4-node cluster.
class SchedFixture : public ::testing::Test {
 protected:
  SchedFixture()
      : workload_(make_example_dag()),
        profile_(exact_profile(workload_.dag)),
        topo_(spec()),
        rng_(3),
        hdfs_(workload_.dag, topo_, hdfs_spec(), rng_),
        oracle_(workload_.dag),
        policy_(make_cache_policy(CachePolicyKind::Lru)),
        master_(topo_, workload_.dag, hdfs_, oracle_, *policy_),
        state_(workload_.dag, topo_, profile_),
        cost_(CostModelSpec{}) {}

  static TopologySpec spec() {
    TopologySpec s;
    s.racks = 2;
    s.nodes_per_rack = 2;
    s.executors_per_node = 1;
    s.cores_per_executor = Cpus{16};
    s.cache_bytes_per_executor = 16 * kMiB;
    return s;
  }
  static HdfsSpec hdfs_spec() {
    HdfsSpec s;
    s.replication = 1;
    return s;
  }

  const JobDag& dag() const { return workload_.dag; }

  Workload workload_;
  JobProfile profile_;
  Topology topo_;
  Rng rng_;
  HdfsPlacement hdfs_;
  ReferenceOracle oracle_;
  std::unique_ptr<CachePolicy> policy_;
  BlockManagerMaster master_;
  JobState state_;
  CostModel cost_;
};

TEST_F(SchedFixture, InitialJobState) {
  EXPECT_TRUE(state_.stage(StageId(0)).ready);
  EXPECT_TRUE(state_.stage(StageId(1)).ready);
  EXPECT_FALSE(state_.stage(StageId(2)).ready);
  EXPECT_FALSE(state_.stage(StageId(3)).ready);
  EXPECT_EQ(state_.schedulable_stages().size(), 2u);
  EXPECT_FALSE(state_.all_finished());
  EXPECT_TRUE(state_.any_free_cores());
}

TEST_F(SchedFixture, PriorityValuesMatchTable3Initial) {
  EXPECT_EQ(state_.priority_value(StageId(0)), CpuWork{52 * kMinute.count()});
  EXPECT_EQ(state_.priority_value(StageId(1)), CpuWork{64 * kMinute.count()});
}

TEST_F(SchedFixture, MarkLaunchedUpdatesWorkAndCores) {
  state_.mark_launched(StageId(1), 0, ExecutorId(0), SimTime{0});
  // Table III step 1: w2 36 -> 24, pv2 64 -> 52, free 16 -> 10.
  EXPECT_EQ(state_.stage(StageId(1)).remaining_work,
            CpuWork{24 * kMinute.count()});
  EXPECT_EQ(state_.priority_value(StageId(1)), CpuWork{52 * kMinute.count()});
  EXPECT_EQ(state_.executor(ExecutorId(0)).free_cores(), Cpus{10});
  EXPECT_EQ(state_.stage(StageId(1)).running, 1);
  EXPECT_EQ(state_.stage(StageId(1)).pending.size(), 2u);
}

TEST_F(SchedFixture, MarkLaunchedRejectsOverflow) {
  state_.mark_launched(StageId(1), 0, ExecutorId(0), SimTime{0});
  state_.mark_launched(StageId(1), 1, ExecutorId(0), SimTime{0});
  // 4 free cores < 6 demanded.
  EXPECT_THROW(state_.mark_launched(StageId(1), 2, ExecutorId(0), SimTime{0}),
               InvariantError);
}

TEST_F(SchedFixture, MarkFinishedCompletesStage) {
  for (const std::int32_t t : {0, 1, 2}) {
    state_.mark_launched(StageId(0), t, ExecutorId(t), SimTime{0});
  }
  EXPECT_FALSE(state_.mark_finished(StageId(0), 0, ExecutorId(0),
                                    Locality::Node, SimTime{0}, 4 * kMinute));
  EXPECT_FALSE(state_.mark_finished(StageId(0), 1, ExecutorId(1),
                                    Locality::Node, SimTime{0}, 4 * kMinute));
  EXPECT_TRUE(state_.mark_finished(StageId(0), 2, ExecutorId(2),
                                   Locality::Node, SimTime{0}, 4 * kMinute));
  EXPECT_TRUE(state_.stage(StageId(0)).finished);
  EXPECT_EQ(state_.stage(StageId(0)).finish_time, 4 * kMinute);
  EXPECT_EQ(state_.executor(ExecutorId(0)).free_cores(), Cpus{16});
}

TEST_F(SchedFixture, RefreshReadyPromotesChildren) {
  // Finish S2 -> S3 becomes ready; S4 still blocked on S1/S3.
  for (const std::int32_t t : {0, 1, 2}) {
    state_.mark_launched(StageId(1), t, ExecutorId(t), SimTime{0});
    state_.mark_finished(StageId(1), t, ExecutorId(t), Locality::Node, SimTime{0},
                         2 * kMinute);
  }
  const auto newly = state_.refresh_ready(2 * kMinute);
  EXPECT_EQ(newly, std::vector<StageId>{StageId(2)});
  EXPECT_TRUE(state_.stage(StageId(2)).ready);
  EXPECT_FALSE(state_.stage(StageId(3)).ready);
}

TEST_F(SchedFixture, ObservedDurations) {
  state_.mark_launched(StageId(0), 0, ExecutorId(0), SimTime{0});
  state_.mark_finished(StageId(0), 0, ExecutorId(0), Locality::Process, SimTime{0},
                       10 * kSec);
  state_.mark_launched(StageId(0), 1, ExecutorId(0), SimTime{0});
  state_.mark_finished(StageId(0), 1, ExecutorId(0), Locality::Process, SimTime{0},
                       20 * kSec);
  EXPECT_EQ(*state_.observed_duration(StageId(0), Locality::Process),
            15 * kSec);
  EXPECT_FALSE(
      state_.observed_duration(StageId(0), Locality::Rack).has_value());
  EXPECT_EQ(*state_.observed_duration(StageId(0)), 15 * kSec);
}

TEST_F(SchedFixture, ReaddPendingRestoresWork) {
  state_.mark_launched(StageId(0), 0, ExecutorId(0), SimTime{0});
  const CpuWork after_launch = state_.stage(StageId(0)).remaining_work;
  // The legal route back to pending is through a failure (the retry
  // path the driver takes); readd_pending enforces Failed -> Pending.
  state_.mark_failed(StageId(0), 0);
  state_.readd_pending(StageId(0), 0);
  EXPECT_EQ(state_.stage(StageId(0)).remaining_work,
            after_launch + CpuWork{16 * kMinute.count()});
  EXPECT_EQ(state_.stage(StageId(0)).pending.size(), 3u);
}

// --- locality ---------------------------------------------------------------

TEST_F(SchedFixture, TaskPreferencesFollowHdfsReplicas) {
  // S1 task 0 reads A0 (no memory copy yet): node preference only.
  const TaskPreferences prefs =
      task_preferences(dag(), master_, topo_, StageId(0), 0);
  EXPECT_TRUE(prefs.executors.empty());
  EXPECT_EQ(prefs.nodes, hdfs_.replicas(BlockId{RddId(0), 0}));
}

TEST_F(SchedFixture, TaskPreferencesIncludeMemoryHolders) {
  master_.seed_initial_cache(SimTime{0});
  const TaskPreferences prefs =
      task_preferences(dag(), master_, topo_, StageId(0), 0);
  ASSERT_EQ(prefs.executors.size(), 1u);
  EXPECT_EQ(prefs.executors[0], master_.memory_holders(BlockId{RddId(0), 0})[0]);
}

TEST_F(SchedFixture, TaskLocalityLevels) {
  master_.seed_initial_cache(SimTime{0});
  const ExecutorId holder = master_.memory_holders(BlockId{RddId(0), 0})[0];
  EXPECT_EQ(task_locality_on(dag(), master_, topo_, StageId(0), 0, holder),
            Locality::Process);
  // Shuffle-only task (S3) has no preference anywhere.
  EXPECT_EQ(task_locality_on(dag(), master_, topo_, StageId(2), 0,
                             ExecutorId(0)),
            Locality::NoPref);
}

TEST_F(SchedFixture, ValidLocalityLevels) {
  master_.seed_initial_cache(SimTime{0});
  const auto levels_s1 =
      valid_locality_levels(dag(), master_, topo_, state_.stage(StageId(0)));
  ASSERT_FALSE(levels_s1.empty());
  EXPECT_EQ(levels_s1.front(), Locality::Process);
  EXPECT_EQ(levels_s1.back(), Locality::Any);

  const auto levels_s3 =
      valid_locality_levels(dag(), master_, topo_, state_.stage(StageId(2)));
  EXPECT_EQ(levels_s3.front(), Locality::NoPref);
}

// --- estimator ---------------------------------------------------------------

TEST_F(SchedFixture, EstimatorUsesObservedDurations) {
  const TaskTimeEstimator est(state_, cost_);
  state_.mark_launched(StageId(0), 0, ExecutorId(0), SimTime{0});
  state_.mark_finished(StageId(0), 0, ExecutorId(0), Locality::Rack, SimTime{0},
                       9 * kSec);
  EXPECT_EQ(est.estimate(StageId(0), Locality::Rack), 9 * kSec);
}

TEST_F(SchedFixture, EstimatorFallsBackToCostModel) {
  const TaskTimeEstimator est(state_, cost_);
  const SimTime process = est.estimate(StageId(0), Locality::Process);
  const SimTime any = est.estimate(StageId(0), Locality::Any);
  EXPECT_GT(any, process);
  EXPECT_GE(process, dag().stage(StageId(0)).task_duration);
}

TEST_F(SchedFixture, EarliestCompletionTime) {
  const TaskTimeEstimator est(state_, cost_);
  // 3 pending on a 64-core cluster: optimistically one wave (Eq. 7 with
  // the stage's potential parallelism).
  const SimTime ect0 = est.earliest_completion(StageId(0));
  EXPECT_GE(ect0, dag().stage(StageId(0)).task_duration);
  EXPECT_LT(ect0, 2 * dag().stage(StageId(0)).task_duration);
  state_.mark_launched(StageId(0), 0, ExecutorId(0), SimTime{0});
  state_.mark_launched(StageId(0), 1, ExecutorId(1), SimTime{0});
  const SimTime ect1 = est.earliest_completion(StageId(0));
  EXPECT_LE(ect1, ect0);
}

TEST_F(SchedFixture, EarliestCompletionZeroWhenNoPending) {
  const TaskTimeEstimator est(state_, cost_);
  for (const std::int32_t t : {0, 1, 2}) {
    state_.mark_launched(StageId(0), t, ExecutorId(0), SimTime{0});
  }
  EXPECT_EQ(est.earliest_completion(StageId(0)), SimTime{0});
}

// --- delay scheduling ---------------------------------------------------------

TEST_F(SchedFixture, NativeDelayLaunchesBestLocalityImmediately) {
  const NativeDelayPolicy delay(LocalityWaits::uniform(3 * kSec), cost_);
  const auto a = delay.find(state_, master_, StageId(0), SimTime{0});
  ASSERT_TRUE(a.has_value());
  // With replication 1 the task must be node-local on its replica node.
  EXPECT_EQ(a->locality, Locality::Node);
  EXPECT_EQ(topo_.node_of(a->exec),
            hdfs_.replicas(BlockId{RddId(0), a->task_index})[0]);
}

TEST_F(SchedFixture, NativeDelayHoldsBackLowLocality) {
  const NativeDelayPolicy delay(LocalityWaits::uniform(3 * kSec), cost_);
  // Drain every node-local task; the remaining pending tasks would be
  // rack/any on every executor with spare cores.
  // Occupy the replica nodes' executors fully with fake core usage.
  for (const ExecutorRuntime& e : state_.executors()) {
    state_.set_free_cores(e.id, Cpus{0});
  }
  const NodeId n0 = hdfs_.replicas(BlockId{RddId(0), 0})[0];
  // Give cores only to an executor on a different rack.
  for (const Executor& e : topo_.executors()) {
    if (topo_.rack_of(topo_.node_of(e.id)) != topo_.rack_of(n0)) {
      state_.set_free_cores(e.id, Cpus{16});
      break;
    }
  }
  const auto a = delay.find(state_, master_, StageId(0), SimTime{0});
  // All pending S1 tasks might still be node-local for that rack's own
  // executor if a replica landed there; accept either "no launch" or a
  // node-local launch, but never a rack/any launch at t=0.
  if (a.has_value()) {
    EXPECT_TRUE(at_least(a->locality, Locality::Node));
  }
}

TEST_F(SchedFixture, NativeDelayEscalatesAfterWait) {
  const NativeDelayPolicy delay(LocalityWaits::uniform(3 * kSec), cost_);
  for (const ExecutorRuntime& e : state_.executors()) {
    state_.set_free_cores(e.id, Cpus{0});
  }
  const NodeId n0 = hdfs_.replicas(BlockId{RddId(0), 0})[0];
  ExecutorId far = ExecutorId::invalid();
  for (const Executor& e : topo_.executors()) {
    if (topo_.rack_of(topo_.node_of(e.id)) != topo_.rack_of(n0)) {
      far = e.id;
      break;
    }
  }
  ASSERT_TRUE(far.valid());
  state_.set_free_cores(far, Cpus{16});
  // Find a task that is NOT local to `far` to ensure the low-locality
  // case exists; after two full waits (node -> rack -> any) every task
  // is launchable anywhere.
  const auto late = delay.find(state_, master_, StageId(0), 7 * kSec);
  ASSERT_TRUE(late.has_value());
}

TEST_F(SchedFixture, ZeroWaitDisablesDelay) {
  const NativeDelayPolicy delay(LocalityWaits::uniform(SimTime{0}), cost_);
  for (const ExecutorRuntime& e : state_.executors()) {
    state_.set_free_cores(e.id, Cpus{0});
  }
  const NodeId n0 = hdfs_.replicas(BlockId{RddId(0), 0})[0];
  for (const Executor& e : topo_.executors()) {
    if (topo_.rack_of(topo_.node_of(e.id)) != topo_.rack_of(n0)) {
      state_.set_free_cores(e.id, Cpus{16});
      break;
    }
  }
  const auto a = delay.find(state_, master_, StageId(0), SimTime{0});
  EXPECT_TRUE(a.has_value());  // anything goes immediately
}

TEST_F(SchedFixture, DelayRespectsResourceDemand) {
  const NativeDelayPolicy delay(LocalityWaits::uniform(SimTime{0}), cost_);
  for (const ExecutorRuntime& e : state_.executors()) {
    state_.set_free_cores(e.id, Cpus{5});
  }
  // S2 demands 6 vCPUs: no executor fits.
  EXPECT_FALSE(delay.find(state_, master_, StageId(1), SimTime{0}).has_value());
  // S1 demands 4: fits.
  EXPECT_TRUE(delay.find(state_, master_, StageId(0), SimTime{0}).has_value());
}

TEST_F(SchedFixture, SensitivityAwareLaunchesInsensitiveTasksEarly) {
  const SensitivityAwareDelayPolicy delay(LocalityWaits::uniform(3 * kSec),
                                          cost_);
  // Make only a remote executor available; S1's 1 MiB inputs make any
  // locality penalty negligible vs its 4-minute compute, so Algorithm 2
  // must launch immediately instead of idling.
  for (const ExecutorRuntime& e : state_.executors()) {
    state_.set_free_cores(e.id, Cpus{0});
  }
  const NodeId n0 = hdfs_.replicas(BlockId{RddId(0), 0})[0];
  for (const Executor& e : topo_.executors()) {
    if (topo_.rack_of(topo_.node_of(e.id)) != topo_.rack_of(n0)) {
      state_.set_free_cores(e.id, Cpus{16});
      break;
    }
  }
  const auto a = delay.find(state_, master_, StageId(0), SimTime{0});
  ASSERT_TRUE(a.has_value());
}

TEST_F(SchedFixture, SensitivityAwareHoldsBackSensitiveTasks) {
  // Build a state where the stage is locality-sensitive: huge input,
  // tiny compute. Use the KMeans-style calibration via a custom DAG.
  JobDagBuilder b("sensitive");
  const RddId in = b.input_rdd("in", 4, kMiB);
  const StageId parse = b.add_stage({.name = "parse",
                                     .inputs = {{in, DepKind::Narrow}},
                                     .num_tasks = 4,
                                     .task_cpus = Cpus{1},
                                     .task_duration = kSec,
                                     .output_bytes_per_partition =
                                         256 * kMiB});
  b.add_stage({.name = "iter",
               .inputs = {{b.output_of(parse), DepKind::Narrow}},
               .num_tasks = 4,
               .task_cpus = Cpus{1},
               .task_duration = 100 * kMsec,
               .output_bytes_per_partition = Bytes{0}});
  const JobDag dag2 = b.build();
  const JobProfile profile2 = exact_profile(dag2);

  CostModelSpec cm;
  cm.serde_sec_per_byte = 40e-9;
  const CostModel cost2(cm);
  Rng rng2(5);
  HdfsSpec h;
  h.replication = 1;
  const HdfsPlacement hdfs2(dag2, topo_, h, rng2);
  ReferenceOracle oracle2(dag2);
  const auto policy2 = make_cache_policy(CachePolicyKind::Lru);
  BlockManagerMaster master2(topo_, dag2, hdfs2, oracle2, *policy2);
  JobState state2(dag2, topo_, profile2);

  // Pretend parse finished and cached its 256 MiB outputs on executor 0.
  state2.stage(StageId(0)).finished = true;
  for (std::int32_t t = 0; t < 4; ++t) {
    state2.stage(StageId(0)).pending.clear();
    master2.on_block_produced(BlockId{dag2.stage(StageId(0)).output, t},
                              ExecutorId(0), SimTime{0});
  }
  state2.refresh_ready(SimTime{0});

  const SensitivityAwareDelayPolicy delay(LocalityWaits::uniform(3 * kSec),
                                          cost2);
  // Only a cross-rack executor has cores: its est. duration (~10s of
  // serde) dwarfs ect (~0.4s for 4 process-local waves), so Algorithm 2
  // must NOT launch there at t=0.
  for (const ExecutorRuntime& e : state2.executors()) {
    state2.set_free_cores(e.id, Cpus{0});
  }
  for (const Executor& e : topo_.executors()) {
    if (topo_.rack_of(topo_.node_of(e.id)) !=
        topo_.rack_of(topo_.node_of(ExecutorId(0)))) {
      state2.set_free_cores(e.id, Cpus{16});
      break;
    }
  }
  EXPECT_FALSE(delay.find(state2, master2, StageId(1), SimTime{0}).has_value());
  // The data-holding executor is immediately usable. (The fixture's
  // 16 MiB caches cannot hold the 256 MiB partitions, so the best
  // locality is Node — the block sits on executor 0's node disk.)
  state2.set_free_cores(ExecutorId(0), Cpus{16});
  const auto a = delay.find(state2, master2, StageId(1), SimTime{0});
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(at_least(a->locality, Locality::Node));
  EXPECT_EQ(topo_.node_of(a->exec), topo_.node_of(ExecutorId(0)));
}

TEST_F(SchedFixture, DelayPolicyFactory) {
  EXPECT_STREQ(
      make_delay_policy(DelayKind::Native, LocalityWaits{}, cost_)->name(),
      "delay");
  EXPECT_STREQ(make_delay_policy(DelayKind::SensitivityAware,
                                 LocalityWaits{}, cost_)
                   ->name(),
               "sensitivity-aware");
}

// --- stage selectors -----------------------------------------------------------

TEST_F(SchedFixture, FifoOrdersByStageId) {
  const FifoSelector fifo;
  EXPECT_EQ(fifo.order(state_),
            (std::vector<StageId>{StageId(0), StageId(1)}));
}

TEST_F(SchedFixture, DagonOrdersByPriorityValue) {
  const DagonSelector dagon;
  // pv2=64 > pv1=52.
  EXPECT_EQ(dagon.order(state_),
            (std::vector<StageId>{StageId(1), StageId(0)}));
  // After one S2 assignment both pv are 52: tie goes to the lower id
  // (Table III step 2 picks stage 1).
  state_.mark_launched(StageId(1), 0, ExecutorId(0), SimTime{0});
  EXPECT_EQ(dagon.order(state_),
            (std::vector<StageId>{StageId(0), StageId(1)}));
}

TEST_F(SchedFixture, CriticalPathOrdersByRemainingChain) {
  const CriticalPathSelector cp(dag());
  // S2 chain (2+4+1=7min) > S1 chain (4+1=5min).
  EXPECT_EQ(cp.order(state_),
            (std::vector<StageId>{StageId(1), StageId(0)}));
}

TEST_F(SchedFixture, FairPrefersLeastAllocated) {
  const FairSelector fair;
  state_.mark_launched(StageId(0), 0, ExecutorId(0), SimTime{0});
  // S1 now holds 4 cores, S2 none -> S2 first.
  EXPECT_EQ(fair.order(state_),
            (std::vector<StageId>{StageId(1), StageId(0)}));
}

TEST_F(SchedFixture, GrapheneFlagsTroublesomeStages) {
  const GrapheneSelector graphene(dag(), profile_, Cpus{16});
  // S1 and S3 (4-minute tasks) are long-running; S2 (6/16 cores) is not
  // hard-to-pack under the 0.5 default, S4 is neither.
  EXPECT_TRUE(graphene.troublesome(StageId(0)));
  EXPECT_TRUE(graphene.troublesome(StageId(2)));
  EXPECT_FALSE(graphene.troublesome(StageId(3)));
  const auto order = graphene.order(state_);
  EXPECT_EQ(order.front(), StageId(0));  // troublesome first
}

TEST_F(SchedFixture, GrapheneDemandFractionFlagsWideStages) {
  const GrapheneSelector graphene(dag(), profile_, Cpus{8}, 0.99, 0.5);
  // With 8-core executors, S2's 6-vCPU tasks exceed half an executor.
  EXPECT_TRUE(graphene.troublesome(StageId(1)));
}

TEST_F(SchedFixture, SelectorFactoryCoversAllKinds) {
  for (const auto kind :
       {SchedulerKind::Fifo, SchedulerKind::Fair, SchedulerKind::CriticalPath,
        SchedulerKind::Graphene, SchedulerKind::Dagon}) {
    const auto sel = make_stage_selector(kind, dag(), profile_, Cpus{16});
    EXPECT_STREQ(sel->name(), scheduler_name(kind));
    EXPECT_FALSE(sel->order(state_).empty());
  }
}

// --- speculation -----------------------------------------------------------------

TEST_F(SchedFixture, SpeculationFlagsStragglers) {
  SpeculationConfig config;
  config.enabled = true;
  config.quantile = 0.5;
  config.multiplier = 1.5;

  // Two of three S1 tasks finished in 10s; one has been running 60s.
  StageRuntime& rt = state_.stage(StageId(0));
  rt.finished_tasks = 2;
  rt.finished_durations = {10 * kSec, 10 * kSec};

  std::vector<TaskRuntime> running(1);
  running[0].stage = StageId(0);
  running[0].index = 2;
  running[0].status = TaskStatus::Running;
  running[0].launch_time = SimTime{0};

  const auto candidates =
      speculation_candidates(state_, running, config, 60 * kSec);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].task_index, 2);
  EXPECT_EQ(candidates[0].threshold, 15 * kSec);
}

TEST_F(SchedFixture, SpeculationMedianAveragesEvenSampleCounts) {
  SpeculationConfig config;
  config.enabled = true;
  config.quantile = 0.5;
  config.multiplier = 2.0;

  // Four unsorted samples: sorted {1s, 2s, 3s, 4s} → true median 2.5s →
  // threshold 5s. The old upper-median shortcut said 3s → 6s.
  StageRuntime& rt = state_.stage(StageId(0));
  rt.finished_tasks = 3;
  rt.finished_durations = {2 * kSec, 4 * kSec, kSec, 3 * kSec};

  std::vector<TaskRuntime> running(1);
  running[0].stage = StageId(0);
  running[0].index = 2;
  running[0].status = TaskStatus::Running;
  running[0].launch_time = SimTime{0};

  EXPECT_TRUE(
      speculation_candidates(state_, running, config, 5 * kSec).empty());
  const auto candidates =
      speculation_candidates(state_, running, config, 5 * kSec + kMsec);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].threshold, 5 * kSec);
}

TEST_F(SchedFixture, SpeculationRespectsQuantileGate) {
  SpeculationConfig config;
  config.enabled = true;
  config.quantile = 0.9;  // needs 90% finished
  StageRuntime& rt = state_.stage(StageId(0));
  rt.finished_tasks = 2;  // only 66%
  rt.finished_durations = {kSec, kSec};
  std::vector<TaskRuntime> running(1);
  running[0].stage = StageId(0);
  running[0].status = TaskStatus::Running;
  running[0].launch_time = SimTime{0};
  EXPECT_TRUE(
      speculation_candidates(state_, running, config, kMinute).empty());
}

TEST_F(SchedFixture, SpeculationIgnoresSpeculativeAttempts) {
  SpeculationConfig config;
  config.enabled = true;
  config.quantile = 0.1;
  StageRuntime& rt = state_.stage(StageId(0));
  rt.finished_tasks = 2;
  rt.finished_durations = {kSec, kSec};
  std::vector<TaskRuntime> running(1);
  running[0].stage = StageId(0);
  running[0].status = TaskStatus::Running;
  running[0].launch_time = SimTime{0};
  running[0].speculative = true;
  EXPECT_TRUE(
      speculation_candidates(state_, running, config, kMinute).empty());
}

TEST_F(SchedFixture, SpeculationDisabled) {
  const SpeculationConfig config;  // enabled = false
  std::vector<TaskRuntime> running(1);
  running[0].stage = StageId(0);
  running[0].status = TaskStatus::Running;
  EXPECT_TRUE(
      speculation_candidates(state_, running, config, kMinute).empty());
}

}  // namespace
}  // namespace dagon
