// Focused tests of the delay-scheduling wait ladder — the Spark
// TaskSetManager semantics that both Figs. 3 and 4 hinge on: per-level
// waits, escalation timing, timer refresh on launches, ladder reset to
// the launched level, and interactions with changing valid-level sets.
#include <gtest/gtest.h>

#include "cache/block_manager_master.hpp"
#include "sched/delay_scheduling.hpp"
#include "workloads/example_dag.hpp"

namespace dagon {
namespace {

/// A two-rack cluster with the Fig. 1 DAG where every pending task of
/// stage 0 is node-local on rack 0 and the only free executor is on
/// rack 1 — the classic "idle executor vs rack-local task" decision.
class LadderFixture : public ::testing::Test {
 protected:
  LadderFixture()
      : workload_(make_example_dag()),
        profile_(exact_profile(workload_.dag)),
        topo_(spec()),
        rng_(3),
        hdfs_(workload_.dag, topo_, hdfs_spec(), rng_),
        oracle_(workload_.dag),
        policy_(make_cache_policy(CachePolicyKind::Lru)),
        master_(topo_, workload_.dag, hdfs_, oracle_, *policy_),
        state_(workload_.dag, topo_, profile_),
        cost_(CostModelSpec{}) {}

  static TopologySpec spec() {
    TopologySpec s;
    s.racks = 2;
    s.nodes_per_rack = 2;
    s.executors_per_node = 1;
    s.cores_per_executor = Cpus{16};
    s.cache_bytes_per_executor = 16 * kMiB;
    return s;
  }
  static HdfsSpec hdfs_spec() {
    HdfsSpec s;
    s.replication = 1;
    s.skew = 1.0;  // everything on node 0 (rack 0)
    s.hot_nodes = 1;
    return s;
  }

  /// Leaves cores only on an executor whose rack holds no input data.
  ExecutorId isolate_far_executor() {
    for (const ExecutorRuntime& e : state_.executors()) {
      state_.set_free_cores(e.id, Cpus{0});
    }
    for (const Executor& e : topo_.executors()) {
      if (topo_.rack_of(topo_.node_of(e.id)) == RackId(1)) {
        state_.set_free_cores(e.id, Cpus{16});
        return e.id;
      }
    }
    throw std::logic_error("no rack-1 executor");
  }

  Workload workload_;
  JobProfile profile_;
  Topology topo_;
  Rng rng_;
  HdfsPlacement hdfs_;
  ReferenceOracle oracle_;
  std::unique_ptr<CachePolicy> policy_;
  BlockManagerMaster master_;
  JobState state_;
  CostModel cost_;
};

TEST_F(LadderFixture, HoldsAtNodeLevelWithinWait) {
  const NativeDelayPolicy delay(LocalityWaits::uniform(3 * kSec), cost_);
  isolate_far_executor();
  // Inside the 3s node wait: the far executor gets nothing.
  EXPECT_FALSE(delay.find(state_, master_, StageId(0), SimTime{0}).has_value());
  EXPECT_FALSE(
      delay.find(state_, master_, StageId(0), 2900 * kMsec).has_value());
}

TEST_F(LadderFixture, EscalatesToRackAfterNodeWait) {
  const NativeDelayPolicy delay(LocalityWaits::uniform(3 * kSec), cost_);
  const ExecutorId far = isolate_far_executor();
  // Skew puts every block on rack 0 -> the far executor sees Any tasks
  // only. Node wait (3s) + rack wait (3s) must elapse.
  EXPECT_FALSE(
      delay.find(state_, master_, StageId(0), 3100 * kMsec).has_value());
  const auto a = delay.find(state_, master_, StageId(0), 6100 * kMsec);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->exec, far);
  EXPECT_EQ(a->locality, Locality::Any);
}

TEST_F(LadderFixture, PerLevelWaitsDiffer) {
  LocalityWaits waits;
  waits.process = SimTime{0};
  waits.node = 1 * kSec;
  waits.rack = 10 * kSec;
  const NativeDelayPolicy delay(waits, cost_);
  isolate_far_executor();
  // After the 1s node wait the ladder sits at Rack; the Any-level task
  // still needs the 10s rack wait.
  EXPECT_FALSE(
      delay.find(state_, master_, StageId(0), 1500 * kMsec).has_value());
  EXPECT_TRUE(
      delay.find(state_, master_, StageId(0), 11500 * kMsec).has_value());
}

TEST_F(LadderFixture, LaunchResetsTheTimer) {
  const NativeDelayPolicy delay(LocalityWaits::uniform(3 * kSec), cost_);
  isolate_far_executor();
  // A node-local launch elsewhere at t=2.9s refreshes the wait: the far
  // executor must wait another full node+rack wait from that launch.
  delay.on_launch(state_, master_, StageId(0), Locality::Node,
                  2900 * kMsec);
  EXPECT_FALSE(
      delay.find(state_, master_, StageId(0), 5500 * kMsec).has_value());
  EXPECT_TRUE(
      delay.find(state_, master_, StageId(0), 9000 * kMsec).has_value());
}

TEST_F(LadderFixture, LaunchAtLowerLevelKeepsLadderThere) {
  const NativeDelayPolicy delay(LocalityWaits::uniform(3 * kSec), cost_);
  isolate_far_executor();
  // Escalate to Any and launch there: the ladder index stays at the
  // launched level, so the next Any task is immediately admissible.
  const auto first = delay.find(state_, master_, StageId(0), 7 * kSec);
  ASSERT_TRUE(first.has_value());
  state_.mark_launched(StageId(0), first->task_index, first->exec,
                       7 * kSec);
  delay.on_launch(state_, master_, StageId(0), first->locality, 7 * kSec);
  const auto second =
      delay.find(state_, master_, StageId(0), 7 * kSec + 100 * kMsec);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->locality, Locality::Any);
}

TEST_F(LadderFixture, NoPrefTasksLaunchImmediately) {
  // Stage 3 (S3) is a pure shuffle consumer: NoPref, no waiting — even
  // at t=0 on the far executor.
  state_.stage(StageId(2)).ready = true;
  state_.stage(StageId(2)).ready_time = SimTime{0};
  // Pretend D exists so lookups at launch would succeed (not needed for
  // find(), which only consults locality).
  const NativeDelayPolicy delay(LocalityWaits::uniform(3 * kSec), cost_);
  isolate_far_executor();
  const auto a = delay.find(state_, master_, StageId(2), SimTime{0});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->locality, Locality::NoPref);
}

TEST_F(LadderFixture, ZeroWaitsCollapseTheLadder) {
  const NativeDelayPolicy delay(LocalityWaits::uniform(SimTime{0}), cost_);
  isolate_far_executor();
  const auto a = delay.find(state_, master_, StageId(0), SimTime{0});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->locality, Locality::Any);
}

TEST_F(LadderFixture, ReadyTimeAnchorsTheWait) {
  const NativeDelayPolicy delay(LocalityWaits::uniform(3 * kSec), cost_);
  isolate_far_executor();
  // A stage becoming ready late must wait from its ready time, not from
  // t=0: pretend stage 0 becomes ready at t=100s.
  StageRuntime& rt = state_.stage(StageId(0));
  rt.ready_time = 100 * kSec;
  rt.locality_timer = SimTime{0};  // stale timer from before readiness
  EXPECT_FALSE(
      delay.find(state_, master_, StageId(0), 101 * kSec).has_value());
  EXPECT_TRUE(
      delay.find(state_, master_, StageId(0), 107 * kSec).has_value());
}

TEST_F(LadderFixture, SensitivityAwareSkipsLadderForInsensitiveTasks) {
  // Same starved setup, but stage 0's tasks are insensitive (1 MiB raw
  // inputs, 4-minute compute): Algorithm 2 launches at t=0.
  const SensitivityAwareDelayPolicy delay(LocalityWaits::uniform(3 * kSec),
                                          cost_);
  isolate_far_executor();
  const auto a = delay.find(state_, master_, StageId(0), SimTime{0});
  ASSERT_TRUE(a.has_value());
}

TEST_F(LadderFixture, WaitForLevelAccessors) {
  LocalityWaits waits;
  waits.process = SimTime{1};
  waits.node = SimTime{2};
  waits.rack = SimTime{3};
  EXPECT_EQ(waits.wait_for(Locality::Process), SimTime{1});
  EXPECT_EQ(waits.wait_for(Locality::Node), SimTime{2});
  EXPECT_EQ(waits.wait_for(Locality::Rack), SimTime{3});
  EXPECT_EQ(waits.wait_for(Locality::NoPref), SimTime{0});
  EXPECT_EQ(waits.wait_for(Locality::Any), SimTime{0});
  EXPECT_EQ(LocalityWaits::uniform(SimTime{5}).node, SimTime{5});
}

}  // namespace
}  // namespace dagon
