// Unit tests for the common substrate: ids, time, RNG, statistics,
// tables, CSV.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/stats.hpp"
#include "common/strong_id.hpp"
#include "common/table.hpp"

namespace dagon {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  StageId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, StageId::invalid());
}

TEST(StrongId, ComparesAndHashes) {
  StageId a(1);
  StageId b(2);
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(StageId(1), a);
  std::unordered_set<StageId> set{a, b, StageId(1)};
  EXPECT_EQ(set.size(), 2u);
}

TEST(StrongId, DistinctTagTypesDoNotMix) {
  static_assert(!std::is_convertible_v<StageId, TaskId>);
  static_assert(!std::is_assignable_v<StageId&, RddId>);
  SUCCEED();
}

TEST(SimTime, Conversions) {
  EXPECT_EQ(from_seconds(1.5), SimTime{1'500'000});
  EXPECT_DOUBLE_EQ(to_seconds(2 * kSec + 500 * kMsec), 2.5);
  EXPECT_EQ(kMinute, 60 * kSec);
}

TEST(SimTime, FormatDuration) {
  EXPECT_EQ(format_duration(500 * kUsec), "0.5ms");
  EXPECT_EQ(format_duration(2 * kSec), "2.00s");
  EXPECT_EQ(format_duration(3 * kMinute), "3.0min");
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(10);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::unordered_set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(3);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_range(5, 7);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 7);
    hit_lo |= v == 5;
    hit_hi |= v == 7;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(42);
  Rng fork = a.fork(1);
  const auto before = a.next();
  Rng b(42);
  (void)b.fork(1);
  EXPECT_EQ(before, b.next());  // forking does not perturb the parent
  EXPECT_NE(fork.next(), before);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, RejectsNonPositiveBound) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(0), InvariantError);
}

TEST(MedianOf, OddAndEvenSampleCounts) {
  EXPECT_EQ(median_of({SimTime{7}}), SimTime{7});
  EXPECT_EQ(median_of({SimTime{3}, SimTime{1}, SimTime{2}}), SimTime{2});
  // Even count: midpoint of the two middle elements, not the upper one.
  EXPECT_EQ(median_of({4 * kSec, 2 * kSec, kSec, 3 * kSec}),
            2 * kSec + kSec / 2);
  EXPECT_EQ(median_of({SimTime{10}, SimTime{20}}), SimTime{15});
  // Duplicates around the middle collapse to the shared value.
  EXPECT_EQ(median_of({SimTime{5}, SimTime{5}, SimTime{1}, SimTime{9}}),
            SimTime{5});
}

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
}

TEST(OnlineStats, MergeEqualsCombined) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats all;
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(0, 10);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(SampleSet, Quantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, EmptyIsZero) {
  SampleSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(StepFunction, IntegralAndAverage) {
  StepFunction f(0.0);
  f.set(SimTime{0}, 4.0);
  f.set(SimTime{10}, 8.0);
  f.set(SimTime{20}, 0.0);
  // [0,10): 4, [10,20): 8 -> integral 120, average 6 over [0,20).
  EXPECT_DOUBLE_EQ(f.integral(SimTime{0}, SimTime{20}), 120.0);
  EXPECT_DOUBLE_EQ(f.average(SimTime{0}, SimTime{20}), 6.0);
  EXPECT_DOUBLE_EQ(f.average(SimTime{5}, SimTime{15}), 6.0);
}

TEST(StepFunction, AddDelta) {
  StepFunction f;
  f.add(SimTime{0}, 3.0);
  f.add(SimTime{5}, 2.0);
  f.add(SimTime{10}, -5.0);
  EXPECT_DOUBLE_EQ(f.at(SimTime{0}), 3.0);
  EXPECT_DOUBLE_EQ(f.at(SimTime{7}), 5.0);
  EXPECT_DOUBLE_EQ(f.at(SimTime{10}), 0.0);
  EXPECT_DOUBLE_EQ(f.max_over(SimTime{0}, SimTime{11}), 5.0);
}

TEST(StepFunction, UpdatesAtSameInstantCollapse) {
  StepFunction f;
  f.add(SimTime{5}, 1.0);
  f.add(SimTime{5}, 1.0);
  f.add(SimTime{5}, -2.0);
  EXPECT_DOUBLE_EQ(f.at(SimTime{5}), 0.0);
  EXPECT_DOUBLE_EQ(f.integral(SimTime{0}, SimTime{10}), 0.0);
}

TEST(StepFunction, RejectsTimeTravel) {
  StepFunction f;
  f.set(SimTime{10}, 1.0);
  EXPECT_THROW(f.set(SimTime{5}, 2.0), InvariantError);
}

TEST(StepFunction, AtBeforeFirstPoint) {
  StepFunction f(2.5);
  EXPECT_DOUBLE_EQ(f.at(SimTime{0}), 2.5);
  EXPECT_DOUBLE_EQ(f.at(SimTime{1000}), 2.5);
}

TEST(Sparkline, ProducesExpectedWidth) {
  StepFunction f;
  f.set(SimTime{0}, 1.0);
  f.set(SimTime{50}, 8.0);
  const std::string line =
      sparkline(f, SimTime{0}, SimTime{100}, 10, 8.0);
  // Each glyph is a 3-byte UTF-8 codepoint (or a 1-byte space).
  EXPECT_GE(line.size(), 10u);
}

TEST(TextTable, RendersAlignedTable) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22.5  |"), std::string::npos);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvariantError);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::percent(0.423, 1), "42.3%");
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesFile) {
  const std::string path = ::testing::TempDir() + "/dagon_csv_test.csv";
  {
    CsvWriter w(path, {"x", "y"});
    w.add_row({"1", "2"});
    w.add_row({"a,b", "3"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "\"a,b\",3");
  std::remove(path.c_str());
}

TEST(Csv, WrongWidthThrows) {
  const std::string path = ::testing::TempDir() + "/dagon_csv_test2.csv";
  CsvWriter w(path, {"x", "y"});
  EXPECT_THROW(w.add_row({"1"}), InvariantError);
  std::remove(path.c_str());
}

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    DAGON_CHECK_MSG(1 == 2, "custom detail " << 42);
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace dagon
