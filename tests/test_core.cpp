// Tests for the core module: AppProfiler, presets, Runner, and the two
// trace engines (cache trace, assignment trace).
#include <gtest/gtest.h>

#include "core/app_profiler.hpp"
#include "core/assignment_trace.hpp"
#include "core/cache_trace.hpp"
#include "core/presets.hpp"
#include "core/runner.hpp"
#include "workloads/example_dag.hpp"

namespace dagon {
namespace {

TEST(AppProfiler, NoiselessProfileIsExact) {
  const Workload w = make_example_dag();
  const AppProfiler profiler;
  const JobProfile p = profiler.profile(w.dag);
  for (const Stage& s : w.dag.stages()) {
    EXPECT_EQ(p.stage(s.id).task_duration, s.task_duration);
    EXPECT_EQ(p.stage(s.id).task_cpus, s.task_cpus);
  }
}

TEST(AppProfiler, NoisePerturbsDurationsDeterministically) {
  const Workload w = make_example_dag();
  ProfilerConfig config;
  config.noise = 0.3;
  config.seed = 11;
  const AppProfiler profiler(config);
  const JobProfile a = profiler.profile(w.dag);
  const JobProfile b = profiler.profile(w.dag);
  bool any_diff = false;
  for (const Stage& s : w.dag.stages()) {
    EXPECT_EQ(a.stage(s.id).task_duration, b.stage(s.id).task_duration);
    if (a.stage(s.id).task_duration != s.task_duration) any_diff = true;
    // Demands are never perturbed (Spark knows spark.task.cpus exactly).
    EXPECT_EQ(a.stage(s.id).task_cpus, s.task_cpus);
  }
  EXPECT_TRUE(any_diff);
}

TEST(AppProfiler, NoiseClamped) {
  const Workload w = make_example_dag();
  ProfilerConfig config;
  config.noise = 10.0;  // extreme
  config.min_factor = 0.5;
  config.max_factor = 2.0;
  const AppProfiler profiler(config);
  const JobProfile p = profiler.profile(w.dag);
  for (const Stage& s : w.dag.stages()) {
    EXPECT_GE(p.stage(s.id).task_duration, s.task_duration / 2);
    EXPECT_LE(p.stage(s.id).task_duration, s.task_duration * 2);
  }
}

TEST(AppProfiler, RejectsBadConfig) {
  ProfilerConfig config;
  config.noise = -1;
  EXPECT_THROW(AppProfiler{config}, ConfigError);
}

TEST(Presets, PaperTestbedShape) {
  const SimConfig config = paper_testbed();
  const Topology topo(config.topology);
  EXPECT_EQ(topo.num_nodes(), 18u);
  EXPECT_EQ(topo.num_executors(), 72u);
  EXPECT_EQ(topo.executor(ExecutorId(0)).cores, Cpus{4});
  EXPECT_EQ(config.hdfs.replication, 3);
}

TEST(Presets, CaseStudyClusterShape) {
  const SimConfig config = case_study_cluster();
  const Topology topo(config.topology);
  EXPECT_EQ(topo.num_nodes(), 7u);
  EXPECT_EQ(config.hdfs.replication, 1);
}

TEST(Presets, SystemCombos) {
  EXPECT_EQ(stock_spark().scheduler, SchedulerKind::Fifo);
  EXPECT_EQ(graphene_mrd().cache, CachePolicyKind::Mrd);
  EXPECT_EQ(dagon_full().scheduler, SchedulerKind::Dagon);
  EXPECT_EQ(dagon_full().cache, CachePolicyKind::Lrp);
  EXPECT_EQ(dagon_full().delay, DelayKind::SensitivityAware);
  EXPECT_EQ(figure8_systems().size(), 4u);
  EXPECT_EQ(figure11_systems().size(), 4u);
}

TEST(Presets, ApplyCombo) {
  const SimConfig config = apply_combo(paper_testbed(), dagon_full());
  EXPECT_EQ(config.scheduler, SchedulerKind::Dagon);
  EXPECT_EQ(config.cache, CachePolicyKind::Lrp);
}

TEST(Runner, RunsWorkloadEndToEnd) {
  ExampleDagParams p;
  p.minute = kSec;
  const Workload w = make_example_dag(p);
  SimConfig config;
  config.topology.cores_per_executor = Cpus{16};
  const RunResult r = run_workload(w, config);
  EXPECT_GT(r.metrics.jct, SimTime{0});
  EXPECT_EQ(r.profile.stages.size(), w.dag.num_stages());
}

// --- cache trace (Table I machinery) ----------------------------------------

TEST(CacheTrace, BlockLabels) {
  const Workload w = make_example_dag();
  EXPECT_EQ(block_label(w.dag, BlockId{RddId(0), 0}), "A1");
  EXPECT_EQ(block_label(w.dag, BlockId{RddId(2), 2}), "B3");
}

TEST(CacheTrace, FifoScheduleShapes) {
  const auto schedule = fifo_fig1_schedule(kMinute);
  ASSERT_EQ(schedule.size(), 5u);
  EXPECT_EQ(schedule[0].stage, StageId(0));
  EXPECT_EQ(schedule[0].tasks.size(), 3u);
  EXPECT_EQ(schedule.back().time, 12 * kMinute);
}

TEST(CacheTrace, LruUnderFifoLosesToMrd) {
  const Workload w = make_example_dag();
  const auto lru = run_cache_trace(w.dag, fifo_fig1_schedule(kMinute),
                                   CachePolicyKind::Lru, 3);
  const auto mrd = run_cache_trace(w.dag, fifo_fig1_schedule(kMinute),
                                   CachePolicyKind::Mrd, 3);
  // Paper Table I: LRU 7 vs MRD 12. Our trace engine orders same-instant
  // reads/writes with a strict access clock, which costs LRU a few more
  // hits (measured: 4) but preserves the ordering the paper argues.
  EXPECT_EQ(lru.total_hits, 4);
  EXPECT_EQ(mrd.total_hits, 12);
  EXPECT_LT(lru.total_hits, mrd.total_hits);
  EXPECT_EQ(lru.rows.size(), 5u);
  // The first step reads the three pre-cached A blocks: 3 hits.
  EXPECT_EQ(lru.rows[0].hits, 3);
}

TEST(CacheTrace, MrdUnderFifoMatchesPaper12Hits) {
  const Workload w = make_example_dag();
  const auto result = run_cache_trace(w.dag, fifo_fig1_schedule(kMinute),
                                      CachePolicyKind::Mrd, 3);
  EXPECT_EQ(result.total_hits, 12);
}

TEST(CacheTrace, MrdPrefetchesCBlocksAfterStage1) {
  const Workload w = make_example_dag();
  const auto result = run_cache_trace(w.dag, fifo_fig1_schedule(kMinute),
                                      CachePolicyKind::Mrd, 3);
  // At the t=4 step the cache must hold C1..C3 (paper Table I row 2).
  const TraceRow& row = result.rows[1];
  ASSERT_EQ(row.cache_after.size(), 3u);
  for (const BlockId& b : row.cache_after) {
    EXPECT_EQ(b.rdd, RddId(1)) << "expected only C blocks";
  }
  EXPECT_EQ(row.hits, 2);  // C1, C2
}

TEST(CacheTrace, PoliciesDegradeUnderDagAwareSchedule) {
  const Workload w = make_example_dag();
  const auto schedule = dag_aware_fig1_schedule(kMinute);
  const int lru = run_cache_trace(w.dag, schedule, CachePolicyKind::Lru, 3)
                      .total_hits;
  const int mrd = run_cache_trace(w.dag, schedule, CachePolicyKind::Mrd, 3)
                      .total_hits;
  const int lrp = run_cache_trace(w.dag, schedule, CachePolicyKind::Lrp, 3)
                      .total_hits;
  // Paper: LRU 5, MRD 8 under the DAG-aware scheduler (both far below
  // MRD's 12 under FIFO); LRP, designed for DAG-aware scheduling,
  // recovers the full 12. Our access-clock trace measures LRU 1 / MRD 9
  // / LRP 12 — same ordering, same story.
  EXPECT_LE(lru, 5);
  EXPECT_NEAR(mrd, 8, 1);
  const int mrd_fifo = run_cache_trace(w.dag, fifo_fig1_schedule(kMinute),
                                       CachePolicyKind::Mrd, 3)
                           .total_hits;
  EXPECT_LT(mrd, mrd_fifo);  // MRD degrades off its native FIFO order
  EXPECT_GT(lrp, mrd);
  EXPECT_EQ(lrp, 12);
}

TEST(CacheTrace, RejectsUnorderedSchedule) {
  const Workload w = make_example_dag();
  auto schedule = fifo_fig1_schedule(kMinute);
  std::swap(schedule[0], schedule[1]);
  EXPECT_THROW(
      run_cache_trace(w.dag, schedule, CachePolicyKind::Lru, 3),
      InvariantError);
}

// --- assignment trace (Table III / Fig. 2 machinery) -------------------------

TEST(AssignmentTrace, FifoMakespanIs13Minutes) {
  const Workload w = make_example_dag();
  const auto trace =
      trace_priority_assignment(w.dag, Cpus{16}, SchedulerKind::Fifo);
  EXPECT_EQ(trace.makespan, 13 * kMinute);
}

TEST(AssignmentTrace, DagonMakespanIs9Minutes) {
  const Workload w = make_example_dag();
  const auto trace =
      trace_priority_assignment(w.dag, Cpus{16}, SchedulerKind::Dagon);
  EXPECT_EQ(trace.makespan, 9 * kMinute);
}

TEST(AssignmentTrace, DagonReducesFragmentation) {
  const Workload w = make_example_dag();
  const auto fifo = trace_priority_assignment(w.dag, Cpus{16}, SchedulerKind::Fifo);
  const auto dagon =
      trace_priority_assignment(w.dag, Cpus{16}, SchedulerKind::Dagon);
  EXPECT_LT(dagon.idle_cpu_time, fifo.idle_cpu_time);
}

TEST(AssignmentTrace, Table3FirstSteps) {
  const Workload w = make_example_dag();
  const auto trace =
      trace_priority_assignment(w.dag, Cpus{16}, SchedulerKind::Dagon);
  ASSERT_GE(trace.steps.size(), 4u);
  // Step 1: stage 2 chosen; w2 36->24, pv2 64->52, free 16->10.
  EXPECT_EQ(trace.steps[0].chosen, StageId(1));
  EXPECT_EQ(trace.steps[0].w_after[1], CpuWork{24 * kMinute.count()});
  EXPECT_EQ(trace.steps[0].pv_after[1], CpuWork{52 * kMinute.count()});
  EXPECT_EQ(trace.steps[0].free_after, Cpus{10});
  // Step 2: tie pv1 == pv2 == 52 -> stage 1; w1 48->32, free 10->6.
  EXPECT_EQ(trace.steps[1].chosen, StageId(0));
  EXPECT_EQ(trace.steps[1].w_after[0], CpuWork{32 * kMinute.count()});
  EXPECT_EQ(trace.steps[1].pv_after[0], CpuWork{36 * kMinute.count()});
  EXPECT_EQ(trace.steps[1].free_after, Cpus{6});
  // Step 3: stage 2 again; w2 24->12, pv 52->40, free 6->0.
  EXPECT_EQ(trace.steps[2].chosen, StageId(1));
  EXPECT_EQ(trace.steps[2].pv_after[1], CpuWork{40 * kMinute.count()});
  EXPECT_EQ(trace.steps[2].free_after, Cpus{0});
  // Step 4 (t=2): stage 2's last task; w2 -> 0, pv2 -> 28, free 12->6.
  EXPECT_EQ(trace.steps[3].chosen, StageId(1));
  EXPECT_EQ(trace.steps[3].time, 2 * kMinute);
  EXPECT_EQ(trace.steps[3].w_after[1], CpuWork{0});
  EXPECT_EQ(trace.steps[3].pv_after[1], CpuWork{28 * kMinute.count()});
  EXPECT_EQ(trace.steps[3].free_after, Cpus{6});
}

TEST(AssignmentTrace, PlacementsRespectCapacityAndDeps) {
  const Workload w = make_example_dag();
  for (const auto kind :
       {SchedulerKind::Fifo, SchedulerKind::Dagon, SchedulerKind::Graphene,
        SchedulerKind::CriticalPath}) {
    const auto trace = trace_priority_assignment(w.dag, Cpus{16}, kind);
    // Capacity: sample each placement boundary.
    for (const PlacedTask& p : trace.placements) {
      Cpus busy{};
      for (const PlacedTask& q : trace.placements) {
        if (q.start <= p.start && p.start < q.end) busy += q.cpus;
      }
      EXPECT_LE(busy, Cpus{16});
    }
    // Dependencies: a stage's first start >= parents' last end.
    for (const Stage& s : w.dag.stages()) {
      SimTime first = kTimeInfinity;
      for (const PlacedTask& p : trace.placements) {
        if (p.stage == s.id) first = std::min(first, p.start);
      }
      for (const StageId parent : s.parents) {
        SimTime last{};
        for (const PlacedTask& p : trace.placements) {
          if (p.stage == parent) last = std::max(last, p.end);
        }
        EXPECT_GE(first, last);
      }
    }
  }
}

TEST(AssignmentTrace, RejectsOversizedDemand) {
  const Workload w = make_example_dag();
  EXPECT_THROW(trace_priority_assignment(w.dag, Cpus{4}, SchedulerKind::Fifo),
               ConfigError);
}

}  // namespace
}  // namespace dagon
