// Gray-failure tolerance: phi-accrual failure detection, rack
// partitions, degraded executors, blacklisting, proactive
// re-replication — and the bit-identity guarantee that none of it costs
// anything when switched off.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/presets.hpp"
#include "core/runner.hpp"
#include "fault/failure_detector.hpp"
#include "fault/fault_plan.hpp"
#include "sim/driver.hpp"
#include "workloads/example_dag.hpp"
#include "workloads/suite.hpp"

namespace dagon {
namespace {

// --- FailureDetector --------------------------------------------------------

TEST(FailureDetector, ClassifiesByAccruedPhi) {
  FailureDetector d(kSec, 1.0, 8.0);
  const ExecutorId e0(0);
  d.track(e0, SimTime{0});
  EXPECT_TRUE(d.tracking(e0));
  for (SimTime t = kSec; t <= 3 * kSec; t += kSec) d.record_heartbeat(e0, t);
  // phi = log10(e) * elapsed / mean ~= 0.434 * elapsed_intervals.
  EXPECT_EQ(d.classify(e0, 3 * kSec + kSec / 2), FailureDetector::State::Healthy);
  EXPECT_EQ(d.classify(e0, 3 * kSec + 3 * kSec),
            FailureDetector::State::Suspect);
  EXPECT_EQ(d.classify(e0, 3 * kSec + 19 * kSec),
            FailureDetector::State::Dead);
  // A heartbeat resets the accrual: healthy again instantly.
  d.record_heartbeat(e0, 25 * kSec);
  EXPECT_EQ(d.classify(e0, 25 * kSec + kSec), FailureDetector::State::Healthy);
}

TEST(FailureDetector, UntrackedAndStoppedExecutorsAreDead) {
  FailureDetector d(kSec, 1.0, 8.0);
  EXPECT_FALSE(d.tracking(ExecutorId(3)));
  EXPECT_EQ(d.classify(ExecutorId(3), kSec), FailureDetector::State::Dead);
  d.track(ExecutorId(3), SimTime{0});
  EXPECT_EQ(d.classify(ExecutorId(3), kSec), FailureDetector::State::Healthy);
  d.stop(ExecutorId(3));
  EXPECT_FALSE(d.tracking(ExecutorId(3)));
  EXPECT_EQ(d.classify(ExecutorId(3), kSec), FailureDetector::State::Dead);
}

TEST(FailureDetector, WindowAdaptsToObservedCadence) {
  FailureDetector d(kSec, 1.0, 8.0);
  const ExecutorId e0(0);
  d.track(e0, SimTime{0});
  EXPECT_EQ(d.mean_interval(e0), kSec);
  // A slow-but-steady 3s cadence drags the window mean up, so the same
  // wall-clock silence accrues less phi (degraded executors eventually
  // stop being suspected once their cadence is learned).
  SimTime t{};
  for (int i = 0; i < 16; ++i) d.record_heartbeat(e0, t += 3 * kSec);
  EXPECT_EQ(d.mean_interval(e0), 3 * kSec);
  EXPECT_EQ(d.classify(e0, t + 4 * kSec), FailureDetector::State::Healthy);

  // Duplicate timestamps (zero interval) are ignored, not averaged in.
  d.record_heartbeat(e0, t);
  EXPECT_EQ(d.mean_interval(e0), 3 * kSec);
}

// --- FaultPlan gray validation ----------------------------------------------

FaultConfig gray_faults() {
  FaultConfig f;
  f.enabled = true;
  f.heartbeats = true;
  return f;
}

TEST(FaultPlanGray, RejectsBadGrayKnobs) {
  auto plan = [](FaultConfig f) { return FaultPlan(f, 4, 2, 1); };
  FaultConfig f = gray_faults();
  f.partitions.push_back({10 * kSec, 5 * kSec, 0});  // heals before it starts
  EXPECT_THROW(plan(f), ConfigError);
  f = gray_faults();
  f.partitions.push_back({10 * kSec, 20 * kSec, 9});  // no such rack
  EXPECT_THROW(plan(f), ConfigError);
  f = gray_faults();
  f.partitions.push_back({10 * kSec, 20 * kSec, 0});
  EXPECT_THROW(FaultPlan(f, 4, 1, 1), ConfigError);  // single-rack cluster
  f = gray_faults();
  f.degrades.push_back({10 * kSec, 5 * kSec, 0, 2.0});  // ends before start
  EXPECT_THROW(plan(f), ConfigError);
  f = gray_faults();
  f.degrades.push_back({10 * kSec, 20 * kSec, 7, 2.0});  // no such executor
  EXPECT_THROW(plan(f), ConfigError);
  f = gray_faults();
  f.degrades.push_back({10 * kSec, 20 * kSec, 0, 0.5});  // speed-up, not slow
  EXPECT_THROW(plan(f), ConfigError);
  f = gray_faults();
  f.heartbeat_interval = SimTime{0};
  EXPECT_THROW(plan(f), ConfigError);
  f = gray_faults();
  f.suspect_phi = 0.0;
  EXPECT_THROW(plan(f), ConfigError);
  f = gray_faults();
  f.dead_phi = f.suspect_phi / 2;  // would declare dead before suspect
  EXPECT_THROW(plan(f), ConfigError);
  f = gray_faults();
  f.blacklist_threshold = -1;
  EXPECT_THROW(plan(f), ConfigError);
  f = gray_faults();
  f.blacklist_probation = SimTime{0};
  EXPECT_THROW(plan(f), ConfigError);
}

TEST(FaultPlanGray, PartitionAndDegradeQueries) {
  FaultConfig f = gray_faults();
  f.partitions.push_back({10 * kSec, 20 * kSec, 0});
  f.partitions.push_back({15 * kSec, 30 * kSec, 0});  // overlapping
  f.degrades.push_back({10 * kSec, 20 * kSec, 1, 2.0});
  f.degrades.push_back({15 * kSec, 25 * kSec, 1, 3.0});
  const FaultPlan plan(f, 4, 2, 1);
  EXPECT_TRUE(plan.monitors_heartbeats());

  EXPECT_EQ(plan.partitioned_until(RackId(0), 5 * kSec), SimTime{0});
  // Heal of the window(s) active *now*; a chained window extending the
  // outage is picked up on re-examination at the first heal (that is
  // why deferred reports re-check instead of trusting one timestamp).
  EXPECT_EQ(plan.partitioned_until(RackId(0), 12 * kSec), 20 * kSec);
  EXPECT_EQ(plan.partitioned_until(RackId(0), 17 * kSec), 30 * kSec);
  EXPECT_EQ(plan.partitioned_until(RackId(0), 25 * kSec), 30 * kSec);
  EXPECT_EQ(plan.partitioned_until(RackId(0), 30 * kSec), SimTime{0});  // healed
  EXPECT_EQ(plan.partitioned_until(RackId(1), 12 * kSec), SimTime{0});

  // Same rack never crosses a partition; distinct racks stall when
  // either side is isolated.
  EXPECT_EQ(plan.cross_partition_heal(RackId(0), RackId(0), 12 * kSec),
            SimTime{0});
  EXPECT_EQ(plan.cross_partition_heal(RackId(0), RackId(1), 12 * kSec),
            20 * kSec);
  EXPECT_EQ(plan.cross_partition_heal(RackId(1), RackId(0), 17 * kSec),
            30 * kSec);

  EXPECT_EQ(plan.degrade_factor(ExecutorId(0), 12 * kSec), 1.0);
  EXPECT_EQ(plan.degrade_factor(ExecutorId(1), 12 * kSec), 2.0);
  // Overlapping degrade windows compound.
  EXPECT_EQ(plan.degrade_factor(ExecutorId(1), 17 * kSec), 6.0);
  EXPECT_EQ(plan.degrade_factor(ExecutorId(1), 22 * kSec), 3.0);
  EXPECT_EQ(plan.degrade_factor(ExecutorId(1), 25 * kSec), 1.0);
}

TEST(FaultPlanGray, RandomTargetsResolveDeterministically) {
  FaultConfig f = gray_faults();
  f.partitions.push_back({10 * kSec, 20 * kSec, -1});
  f.degrades.push_back({10 * kSec, 20 * kSec, -1, 2.0});
  const FaultPlan a(f, 8, 2, 7);
  const FaultPlan b(f, 8, 2, 7);
  ASSERT_EQ(a.partitions().size(), 1u);
  ASSERT_EQ(a.degrades().size(), 1u);
  EXPECT_EQ(a.partitions()[0].rack, b.partitions()[0].rack);
  EXPECT_EQ(a.degrades()[0].exec, b.degrades()[0].exec);
  EXPECT_TRUE(a.partitions()[0].rack.valid());
  EXPECT_LT(a.partitions()[0].rack.value(), 2);
  EXPECT_TRUE(a.degrades()[0].exec.valid());
  EXPECT_LT(a.degrades()[0].exec.value(), 8);
}

// --- bit-identity regression -------------------------------------------------

/// Two racks of two single-executor nodes: executors {0,1} in rack 0,
/// {2,3} in rack 1.
SimConfig gray_test_cluster() {
  SimConfig config;
  config.topology.racks = 2;
  config.topology.nodes_per_rack = 2;
  config.topology.executors_per_node = 1;
  config.topology.cores_per_executor = Cpus{8};
  config.topology.cache_bytes_per_executor = 64 * kMiB;
  config.hdfs.replication = 1;
  return config;
}

TEST(GrayBitIdentity, DormantGrayKnobsAreBitIdentical) {
  const Workload w = make_example_dag();
  const RunMetrics off = run_workload(w, gray_test_cluster()).metrics;

  // Faults enabled and gray thresholds tuned — but no heartbeats, no
  // partition, no degrade, and blacklisting with nothing to count:
  // nothing may fire and nothing may perturb the trace.
  SimConfig dormant = gray_test_cluster();
  dormant.faults.enabled = true;
  dormant.faults.suspect_phi = 0.5;
  dormant.faults.dead_phi = 4.0;
  dormant.faults.blacklist_threshold = 3;
  const RunMetrics b = run_workload(w, dormant).metrics;
  EXPECT_EQ(metrics_fingerprint(off), metrics_fingerprint(b));
  EXPECT_FALSE(b.faults.any());
}

// Fingerprints of the standard presets at scale 0.3, pinned from the
// commit that introduced the gray-failure layer (verified identical to
// the pre-gray build). If one of these moves, a supposedly dormant code
// path changed observable behavior — that is a regression, not churn.
TEST(GrayBitIdentity, FaultsOffPresetFingerprintsArePinned) {
  struct Pin {
    const char* preset;
    SystemCombo combo;
    WorkloadId workload;
    std::uint64_t fingerprint;
  };
  const Pin pins[] = {
      {"testbed", stock_spark(), WorkloadId::KMeans, 0x775c8db45cb1eea9ull},
      {"testbed", graphene_mrd(), WorkloadId::LogisticRegression,
       0xca3462953330a22full},
      {"testbed", dagon_full(), WorkloadId::PageRank, 0xc0c5c10cae20654full},
      {"case", stock_spark(), WorkloadId::KMeans, 0x522c5cce30cc306aull},
      {"case", graphene_mrd(), WorkloadId::PageRank, 0x2eaa00db92fac5c9ull},
      {"case", dagon_full(), WorkloadId::LogisticRegression,
       0x044aea48bb8d844cull},
  };
  for (const Pin& pin : pins) {
    const SimConfig base = std::string(pin.preset) == "testbed"
                               ? paper_testbed()
                               : case_study_cluster();
    const Workload w = make_workload(pin.workload, WorkloadScale{0.3});
    const RunMetrics m = run_system(w, pin.combo, base).metrics;
    EXPECT_EQ(metrics_fingerprint(m), pin.fingerprint)
        << pin.preset << " / " << pin.combo.label << " / " << w.name;
  }
}

// --- suspicion lifecycle -----------------------------------------------------

TEST(GraySuspicion, SuspectedThenRecoveredExecutorIsReadmitted) {
  const Workload w = make_example_dag();
  SimConfig config = gray_test_cluster();
  config.faults.enabled = true;
  // Rack 0 goes silent for 10 s: well past suspect_phi (~2.3 s), well
  // short of dead_phi (~18.4 s).
  const SimTime heal = 70 * kSec;
  config.faults.partitions.push_back({60 * kSec, heal, 0});
  const JobProfile profile = exact_profile(w.dag);
  SimDriver driver(w.dag, profile, config);
  const RunMetrics m = driver.run();

  EXPECT_GT(m.faults.suspicions, 0);
  EXPECT_EQ(m.faults.false_suspicions, m.faults.suspicions);
  EXPECT_EQ(m.faults.executors_declared_dead, 0);
  EXPECT_EQ(m.faults.executor_crashes, 0);
  EXPECT_GT(m.faults.heartbeats_dropped, 0);

  // False-positive handling: nobody died, accounting intact, and the
  // formerly-suspect rack-0 executors run tasks again after the heal.
  for (const ExecutorRuntime& e : driver.state().executors()) {
    EXPECT_TRUE(e.alive());
    EXPECT_FALSE(e.suspect());
  }
  bool readmitted = false;
  for (const TaskRecord& t : m.tasks) {
    if (t.exec.value() <= 1 && t.launch >= heal && !t.cancelled) {
      readmitted = true;
      break;
    }
  }
  EXPECT_TRUE(readmitted)
      << "no task launched on a recovered executor after the heal";
}

TEST(GraySuspicion, NeverResumingSuspectIsDeclaredDeadAndRecovered) {
  const Workload w = make_example_dag();
  SimConfig config = gray_test_cluster();
  config.faults.enabled = true;
  // Rack 0 stays silent far past dead_phi (~18.4 s): its two executors
  // are declared dead at ~78 s and recovered exactly like crashes, long
  // before the nominal heal. (The heal stays inside the sim horizon
  // because cross-partition fetches stall until it.)
  config.faults.partitions.push_back({60 * kSec, 600 * kSec, 0});
  const JobProfile profile = exact_profile(w.dag);
  SimDriver driver(w.dag, profile, config);
  const RunMetrics m = driver.run();

  EXPECT_EQ(m.faults.executors_declared_dead, 2);
  EXPECT_EQ(m.faults.executor_crashes, 2);  // recovered via the crash path
  EXPECT_EQ(m.faults.false_suspicions, 0);
  EXPECT_FALSE(driver.state().executor(ExecutorId(0)).alive());
  EXPECT_FALSE(driver.state().executor(ExecutorId(1)).alive());
  // The job still finishes, on the surviving rack alone.
  EXPECT_GT(m.jct, SimTime{0});
  for (const StageRecord& s : m.stages) EXPECT_GE(s.finish_time, SimTime{0});
  // No dead executor holds a memory copy.
  EXPECT_EQ(driver.master().manager(ExecutorId(0)).num_blocks(), 0u);
  EXPECT_EQ(driver.master().manager(ExecutorId(1)).num_blocks(), 0u);
}

TEST(GraySuspicion, PartitionDefersReportsAndStallsCrossRackFetches) {
  // KMeans has short, frequent tasks, so completions land inside the
  // 15 s window (the example dag's minute-long tasks would not).
  const Workload w = make_workload(WorkloadId::KMeans, WorkloadScale{0.3});
  SimConfig config = gray_test_cluster();
  config.faults.enabled = true;
  config.faults.partitions.push_back({20 * kSec, 35 * kSec, 0});
  const RunMetrics m = run_workload(w, config).metrics;
  // Completions inside the window surface only at the heal; no report
  // may be observed while its executor is unreachable.
  EXPECT_GT(m.faults.deferred_reports, 0);
  EXPECT_GT(m.faults.heartbeats_dropped, 0);
  for (const StageRecord& s : m.stages) EXPECT_GE(s.finish_time, SimTime{0});
}

TEST(GraySuspicion, ProactiveRereplicationProtectsSoleCopies) {
  const Workload w = make_workload(WorkloadId::KMeans, WorkloadScale{0.3});
  SimConfig config = gray_test_cluster();
  config.faults.enabled = true;
  // By 30 s KMeans has produced cached intermediates on rack 0;
  // suspecting its executors must give the sole copies a healthy home.
  config.faults.partitions.push_back({30 * kSec, 45 * kSec, 0});
  const RunMetrics m = run_workload(w, config).metrics;
  EXPECT_GT(m.faults.proactive_rereplications, 0);
  EXPECT_GT(m.faults.rereplicated_bytes, Bytes{0});
}

// --- degraded executors ------------------------------------------------------

TEST(GrayDegrade, DegradedAttemptsAreSpeculatedAsStragglers) {
  const Workload w = make_example_dag();
  SimConfig config = gray_test_cluster();
  config.faults.enabled = true;
  config.speculation.enabled = true;
  config.faults.degrades.push_back({30 * kSec, 100000 * kSec, 0, 8.0});
  const RunMetrics m = run_workload(w, config).metrics;
  EXPECT_GT(m.faults.degraded_launches, 0);
  const bool speculated =
      std::any_of(m.tasks.begin(), m.tasks.end(),
                  [](const TaskRecord& t) { return t.speculative; });
  EXPECT_TRUE(speculated)
      << "8x-degraded attempts never drew a speculative twin";
  for (const StageRecord& s : m.stages) EXPECT_GE(s.finish_time, SimTime{0});
}

TEST(GrayDegrade, DegradeSlowsExactlyTheTargetExecutor) {
  const Workload w = make_example_dag();
  SimConfig slow = gray_test_cluster();
  slow.faults.enabled = true;
  slow.faults.degrades.push_back({SimTime{0}, 100000 * kSec, 0, 4.0});
  const RunMetrics m = run_workload(w, slow).metrics;
  // Same-stage attempts share the base compute (noise is off here), so
  // wherever executor 0 did run, its attempts must take ~4x the compute
  // of same-stage twins elsewhere. (The permanently-slow executor is
  // suspected early, so it may only see the first launch wave.)
  struct Sums {
    double on = 0.0, off = 0.0;
    std::int64_t n_on = 0, n_off = 0;
  };
  std::vector<Sums> per_stage(w.dag.num_stages());
  for (const TaskRecord& t : m.tasks) {
    if (t.cancelled || t.failed) continue;
    Sums& s = per_stage[static_cast<std::size_t>(t.stage.value())];
    if (t.exec == ExecutorId(0)) {
      s.on += static_cast<double>(t.compute_time.count());
      ++s.n_on;
    } else {
      s.off += static_cast<double>(t.compute_time.count());
      ++s.n_off;
    }
  }
  std::int64_t comparable = 0;
  for (const Sums& s : per_stage) {
    if (s.n_on == 0 || s.n_off == 0) continue;
    ++comparable;
    EXPECT_GT(s.on / static_cast<double>(s.n_on),
              3.0 * s.off / static_cast<double>(s.n_off));
  }
  EXPECT_GT(comparable, 0) << "executor 0 never ran a comparable stage";
}

// --- blacklisting ------------------------------------------------------------

TEST(GrayBlacklist, SchedulableGatesOnLivenessSuspicionAndProbation) {
  ExecutorRuntime e;
  EXPECT_TRUE(e.schedulable(10 * kSec));
  fsm::transition(e.health, ExecutorHealth::Suspect);
  EXPECT_FALSE(e.schedulable(10 * kSec));
  fsm::transition(e.health, ExecutorHealth::Healthy);
  e.blacklisted_until = 20 * kSec;
  EXPECT_FALSE(e.schedulable(10 * kSec));
  EXPECT_TRUE(e.schedulable(20 * kSec));  // probation over
  e.blacklisted_until = SimTime{0};
  fsm::transition(e.health, ExecutorHealth::Dead);
  EXPECT_FALSE(e.schedulable(10 * kSec));
}

TEST(GrayBlacklist, RepeatOffendersEnterAndLeaveProbation) {
  const Workload w = make_example_dag();
  SimConfig config = gray_test_cluster();
  config.faults.enabled = true;
  config.faults.task_fail_prob = 0.15;
  config.faults.blacklist_threshold = 2;
  config.faults.blacklist_probation = 30 * kSec;
  const RunMetrics m = run_workload(w, config).metrics;
  EXPECT_GT(m.faults.blacklist_entries, 0);
  EXPECT_GT(m.faults.blacklist_exits, 0);
  EXPECT_LE(m.faults.blacklist_exits, m.faults.blacklist_entries);
  for (const StageRecord& s : m.stages) EXPECT_GE(s.finish_time, SimTime{0});

  // Per-executor counters reconcile with the globals.
  std::int64_t entries = 0, exits = 0;
  for (const auto& pe : m.faults.per_executor) {
    entries += pe.blacklist_entries;
    exits += pe.blacklist_exits;
  }
  EXPECT_EQ(entries, m.faults.blacklist_entries);
  EXPECT_EQ(exits, m.faults.blacklist_exits);
}

// --- chained faults ----------------------------------------------------------

TEST(GrayChained, CrashDuringPartitionDrainsToQuiescence) {
  const Workload w = make_example_dag();
  SimConfig config = gray_test_cluster();
  config.faults.enabled = true;
  // 15 s outage: suspicion fires, death (18.4 s) does not.
  config.faults.partitions.push_back({60 * kSec, 75 * kSec, 0});
  // A healthy rack-1 executor dies while rack 0 is unreachable: the
  // cluster is briefly down to one reachable executor.
  config.faults.crashes.push_back({65 * kSec, 2});
  const JobProfile profile = exact_profile(w.dag);
  SimDriver driver(w.dag, profile, config);
  const RunMetrics m = driver.run();
  EXPECT_EQ(m.faults.executor_crashes, 1);
  EXPECT_GT(m.faults.suspicions, 0);
  EXPECT_EQ(m.faults.executors_declared_dead, 0);
  EXPECT_FALSE(driver.state().executor(ExecutorId(2)).alive());
  for (const StageRecord& s : m.stages) EXPECT_GE(s.finish_time, SimTime{0});
}

TEST(GrayChained, BlockLossOnBlacklistedExecutorRecovers) {
  const Workload w = make_example_dag();
  SimConfig config = gray_test_cluster();
  config.faults.enabled = true;
  config.faults.heartbeats = true;
  config.faults.task_fail_prob = 0.15;
  config.faults.blacklist_threshold = 2;
  config.faults.blacklist_probation = 30 * kSec;
  config.faults.block_loss_per_gb_hour = 2e5;
  config.faults.block_loss_interval = kSec;
  const RunMetrics m = run_workload(w, config).metrics;
  EXPECT_GT(m.faults.blacklist_entries, 0);
  EXPECT_GT(m.faults.memory_blocks_lost, 0);
  EXPECT_EQ(m.faults.blocks_fully_lost, 0);  // disk copies survive
  for (const StageRecord& s : m.stages) EXPECT_GE(s.finish_time, SimTime{0});
}

// --- determinism -------------------------------------------------------------

TEST(GrayDeterminism, KitchenSinkRunsAreBitIdentical) {
  const Workload w = make_example_dag();
  SimConfig config = gray_test_cluster();
  config.duration_noise = 0.1;
  config.speculation.enabled = true;
  config.faults.enabled = true;
  config.faults.partitions.push_back({60 * kSec, 75 * kSec, -1});
  config.faults.degrades.push_back({30 * kSec, 200 * kSec, -1, 3.0});
  config.faults.crashes.push_back({90 * kSec, -1});
  config.faults.task_fail_prob = 0.05;
  config.faults.blacklist_threshold = 3;
  const RunMetrics a = run_workload(w, config).metrics;
  const RunMetrics b = run_workload(w, config).metrics;
  EXPECT_EQ(metrics_fingerprint(a), metrics_fingerprint(b));
  EXPECT_TRUE(a.faults.any());
}

TEST(GrayDeterminism, GraySpecsDoNotPerturbCrashResolution) {
  // Appending gray specs must not consume crash-resolution RNG draws:
  // the planned crash resolves to the same executor either way.
  FaultConfig crash_only;
  crash_only.enabled = true;
  crash_only.crashes.push_back({30 * kSec, -1});
  const FaultPlan a(crash_only, 8, 2, 11);

  FaultConfig with_gray = crash_only;
  with_gray.partitions.push_back({10 * kSec, 20 * kSec, -1});
  with_gray.degrades.push_back({10 * kSec, 20 * kSec, -1, 2.0});
  const FaultPlan b(with_gray, 8, 2, 11);
  ASSERT_EQ(a.crashes().size(), 1u);
  ASSERT_EQ(b.crashes().size(), 1u);
  EXPECT_EQ(a.crashes()[0].exec, b.crashes()[0].exec);
}

TEST(GrayDeterminism, GrayboxPresetCompletesOnSuiteWorkloads) {
  for (const WorkloadId id :
       {WorkloadId::KMeans, WorkloadId::PageRank}) {
    const Workload w = make_workload(id, WorkloadScale{0.3});
    const RunMetrics m = run_system(w, dagon_full(), graybox_testbed()).metrics;
    EXPECT_GT(m.jct, SimTime{0});
    EXPECT_TRUE(m.faults.any()) << w.name;
    for (const StageRecord& s : m.stages) EXPECT_GE(s.finish_time, SimTime{0});
  }
}

}  // namespace
}  // namespace dagon
