// Unit tests for the cluster substrate: topology construction, locality
// classification, HDFS placement, and the data-plane cost model.
#include <gtest/gtest.h>

#include "cluster/cost_model.hpp"
#include "cluster/hdfs.hpp"
#include "common/sorted_view.hpp"
#include "cluster/topology.hpp"
#include "workloads/example_dag.hpp"

namespace dagon {
namespace {

TopologySpec small_spec() {
  TopologySpec spec;
  spec.racks = 2;
  spec.nodes_per_rack = 3;
  spec.executors_per_node = 2;
  spec.cores_per_executor = Cpus{4};
  spec.cache_bytes_per_executor = 256 * kMiB;
  return spec;
}

TEST(Topology, BuildsExpectedShape) {
  const Topology topo(small_spec());
  EXPECT_EQ(topo.num_nodes(), 6u);
  EXPECT_EQ(topo.num_executors(), 12u);
  EXPECT_EQ(topo.total_cores(), Cpus{48});
}

TEST(Topology, NodeAndRackWiring) {
  const Topology topo(small_spec());
  for (const Executor& e : topo.executors()) {
    const Node& n = topo.node(e.node);
    EXPECT_NE(std::find(n.executors.begin(), n.executors.end(), e.id),
              n.executors.end());
  }
  EXPECT_EQ(topo.rack_of(NodeId(0)), RackId(0));
  EXPECT_EQ(topo.rack_of(NodeId(3)), RackId(1));
}

TEST(Topology, NodeLocalityClassification) {
  const Topology topo(small_spec());
  const ExecutorId e0 = topo.node(NodeId(0)).executors[0];
  EXPECT_EQ(topo.node_locality(e0, NodeId(0)), Locality::Node);
  EXPECT_EQ(topo.node_locality(e0, NodeId(1)), Locality::Rack);
  EXPECT_EQ(topo.node_locality(e0, NodeId(3)), Locality::Any);
}

TEST(Topology, RejectsInvalidSpec) {
  TopologySpec spec = small_spec();
  spec.cores_per_executor = Cpus{0};
  EXPECT_THROW(Topology{spec}, ConfigError);
}

TEST(Locality, OrderingAndNames) {
  EXPECT_TRUE(at_least(Locality::Process, Locality::Node));
  EXPECT_TRUE(at_least(Locality::Node, Locality::Node));
  EXPECT_FALSE(at_least(Locality::Rack, Locality::Node));
  EXPECT_STREQ(locality_name(Locality::NoPref), "NO_PREF");
  EXPECT_STREQ(locality_name(Locality::Any), "ANY");
}

TEST(Hdfs, PlacesAllInputBlocksWithReplication) {
  const Workload w = make_example_dag();
  const Topology topo(small_spec());
  Rng rng(1);
  HdfsSpec spec;
  spec.replication = 2;
  const HdfsPlacement hdfs(w.dag, topo, spec, rng);
  for (const Rdd& r : w.dag.rdds()) {
    if (!r.is_input) continue;
    for (std::int32_t p = 0; p < r.num_partitions; ++p) {
      const auto& nodes = hdfs.replicas(BlockId{r.id, p});
      ASSERT_EQ(nodes.size(), 2u);
      EXPECT_NE(nodes[0], nodes[1]);
    }
  }
}

TEST(Hdfs, NonInputBlocksHaveNoReplicas) {
  const Workload w = make_example_dag();
  const Topology topo(small_spec());
  Rng rng(1);
  const HdfsPlacement hdfs(w.dag, topo, HdfsSpec{}, rng);
  // RDD B (a stage output) is not HDFS-resident.
  const RddId b_rdd = w.dag.stage(StageId(0)).output;
  EXPECT_TRUE(hdfs.replicas(BlockId{b_rdd, 0}).empty());
}

TEST(Hdfs, ReplicationClampedToClusterSize) {
  const Workload w = make_example_dag();
  TopologySpec tiny;
  tiny.racks = 1;
  tiny.nodes_per_rack = 2;
  const Topology topo(tiny);
  Rng rng(1);
  HdfsSpec spec;
  spec.replication = 5;
  const HdfsPlacement hdfs(w.dag, topo, spec, rng);
  EXPECT_EQ(hdfs.replicas(BlockId{RddId(0), 0}).size(), 2u);
}

TEST(Hdfs, SkewConcentratesBlocks) {
  JobDagBuilder b("big-input");
  b.input_rdd("in", 400, kMiB);
  b.add_stage({.name = "s",
               .inputs = {{RddId(0), DepKind::Narrow}},
               .num_tasks = 400,
               .task_cpus = Cpus{1},
               .task_duration = kSec});
  const JobDag dag = b.build();
  const Topology topo(small_spec());

  HdfsSpec skewed;
  skewed.replication = 1;
  skewed.skew = 0.8;
  skewed.hot_nodes = 1;
  Rng rng(2);
  const HdfsPlacement hdfs(dag, topo, skewed, rng);
  int on_hot = 0;
  for (std::int64_t ord = 0; ord < hdfs.num_blocks(); ++ord) {
    const auto& nodes = hdfs.replicas_by_ord(ord);
    if (!nodes.empty() && nodes.front() == NodeId(0)) ++on_hot;
  }
  // ~80% should land on the single hot node vs ~17% under even spread.
  EXPECT_GT(on_hot, 250);
}

TEST(Hdfs, DeterministicForSeed) {
  const Workload w = make_example_dag();
  const Topology topo(small_spec());
  Rng rng1(99);
  Rng rng2(99);
  const HdfsPlacement a(w.dag, topo, HdfsSpec{}, rng1);
  const HdfsPlacement b(w.dag, topo, HdfsSpec{}, rng2);
  ASSERT_EQ(a.num_blocks(), b.num_blocks());
  for (std::int64_t ord = 0; ord < a.num_blocks(); ++ord) {
    EXPECT_EQ(a.replicas_by_ord(ord), b.replicas_by_ord(ord));
  }
}

TEST(Hdfs, RejectsNonPositiveReplication) {
  const Workload w = make_example_dag();
  const Topology topo(small_spec());
  Rng rng(1);
  HdfsSpec spec;
  spec.replication = 0;
  EXPECT_THROW(HdfsPlacement(w.dag, topo, spec, rng), ConfigError);
}

TEST(CostModel, MemoryFastestDiskSlower) {
  const CostModel cost{CostModelSpec{}};
  const Bytes b = 64 * kMiB;
  const SimTime mem = cost.fetch_time(b, BlockSource::LocalMemory);
  const SimTime disk = cost.fetch_time(b, BlockSource::LocalDisk);
  const SimTime cross = cost.fetch_time(b, BlockSource::RemoteDisk);
  EXPECT_LT(mem, disk);
  EXPECT_LE(disk, cross);
}

TEST(CostModel, ZeroBytesIsFree) {
  const CostModel cost{CostModelSpec{}};
  for (const auto src :
       {BlockSource::LocalMemory, BlockSource::LocalDisk,
        BlockSource::RemoteDisk}) {
    EXPECT_EQ(cost.fetch_time(Bytes{0}, src), SimTime{0});
  }
}

TEST(CostModel, SerdeAppliesToAllButLocalMemory) {
  CostModelSpec spec;
  spec.serde_sec_per_byte = 0.0;
  const CostModel cost(spec);
  const Bytes b = 64 * kMiB;
  const double serde = 40e-9;  // 40 ns/B
  EXPECT_EQ(cost.fetch_time(b, BlockSource::LocalMemory, serde),
            cost.fetch_time(b, BlockSource::LocalMemory, 0.0));
  const SimTime extra = time_from_usec(
      serde * static_cast<double>(b.count()) *
      static_cast<double>(kSec.count()));
  EXPECT_EQ(cost.fetch_time(b, BlockSource::RackMemory, serde),
            cost.fetch_time(b, BlockSource::RackMemory, 0.0) + extra);
  EXPECT_EQ(cost.fetch_time(b, BlockSource::LocalDisk, serde),
            cost.fetch_time(b, BlockSource::LocalDisk, 0.0) + extra);
}

TEST(CostModel, Fig3Calibration) {
  // The paper's Fig. 3 analysis: reading a remote 64 MiB cached
  // partition costs >= 10x an in-process read.
  CostModelSpec spec;
  spec.serde_sec_per_byte = 40e-9;
  const CostModel cost(spec);
  const Bytes b = 64 * kMiB;
  const SimTime process = cost.fetch_time(b, BlockSource::LocalMemory);
  const SimTime rack = cost.fetch_time(b, BlockSource::RackMemory);
  EXPECT_GT(rack, 10 * process);
}

TEST(CostModel, ScanStagesAreLocalityInsensitive) {
  // Raw HDFS reads (no serde): local-disk vs rack-disk within ~30%,
  // because the remote read pipelines over a 10 Gbps link.
  const CostModel cost{CostModelSpec{}};
  const Bytes b = 256 * kMiB;
  const double local =
      static_cast<double>(cost.fetch_time(b, BlockSource::LocalDisk, 0.0).count());
  const double rack =
      static_cast<double>(cost.fetch_time(b, BlockSource::RackDisk, 0.0).count());
  EXPECT_LT(rack / local, 1.3);
}

TEST(CostModel, RejectsBadSpec) {
  CostModelSpec spec;
  spec.disk_bw = 0;
  EXPECT_THROW(CostModel{spec}, ConfigError);
}

TEST(CostModel, RejectsNonPositiveLatencies) {
  CostModelSpec spec;
  spec.disk_latency = SimTime{0};
  EXPECT_THROW(CostModel{spec}, ConfigError);
  spec = CostModelSpec{};
  spec.net_latency = SimTime{-1};
  EXPECT_THROW(CostModel{spec}, ConfigError);
}

TEST(CostModel, RejectsNegativeSerdeRate) {
  CostModelSpec spec;
  spec.serde_sec_per_byte = -1e-9;
  EXPECT_THROW(CostModel{spec}, ConfigError);
  // Zero is the raw-HDFS-input case and must stay legal.
  spec.serde_sec_per_byte = 0.0;
  EXPECT_NO_THROW(CostModel{spec});
}

TEST(CostModel, DefaultedSerdeArgumentUsesTheSpecRate) {
  CostModelSpec spec;
  spec.serde_sec_per_byte = 1e-8;
  const CostModel cost(spec);
  const Bytes b = 64 * kMiB;
  // Omitting the override reads the spec; passing it explicitly and
  // passing 0.0 bracket the defaulted value.
  EXPECT_EQ(cost.fetch_time(b, BlockSource::RackMemory),
            cost.fetch_time(b, BlockSource::RackMemory, 1e-8));
  EXPECT_GT(cost.fetch_time(b, BlockSource::RackMemory),
            cost.fetch_time(b, BlockSource::RackMemory, 0.0));
}

TEST(CostModel, SlowdownScalesTheWholeFetch) {
  const CostModel cost{CostModelSpec{}};
  const Bytes b = 64 * kMiB;
  const SimTime base = cost.fetch_time(b, BlockSource::LocalDisk);
  EXPECT_EQ(cost.fetch_time(b, BlockSource::LocalDisk, std::nullopt, 2.0),
            scale_time(base, 2.0));
}

TEST(BlockSource, Names) {
  EXPECT_STREQ(block_source_name(BlockSource::LocalMemory), "local-mem");
  EXPECT_STREQ(block_source_name(BlockSource::RemoteDisk), "remote-disk");
  EXPECT_TRUE(is_memory_source(BlockSource::RackMemory));
  EXPECT_FALSE(is_memory_source(BlockSource::LocalDisk));
}

}  // namespace
}  // namespace dagon
