// Tail-tolerance subsystem: heavy-tail duration injection, executor
// speed tiers, hedged speculation with cancellation-on-first-finish,
// and critical-path escalation — plus the bit-identity guarantee that
// all of it costs nothing when switched off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/presets.hpp"
#include "core/runner.hpp"
#include "fault/fault_plan.hpp"
#include "sim/driver.hpp"
#include "workloads/example_dag.hpp"
#include "workloads/suite.hpp"

namespace dagon {
namespace {

// --- validation --------------------------------------------------------------

TEST(TailValidation, FaultPlanRejectsBadHeavyTailKnobs) {
  auto plan = [](FaultConfig f) { return FaultPlan(f, 4, 2, 1); };
  FaultConfig f;
  f.enabled = true;
  f.heavy_tail_prob = -0.1;
  EXPECT_THROW(plan(f), ConfigError);
  f.heavy_tail_prob = 1.5;
  EXPECT_THROW(plan(f), ConfigError);
  f.heavy_tail_prob = 0.1;
  f.heavy_tail_mult = 0.5;  // would shrink durations, not stretch them
  EXPECT_THROW(plan(f), ConfigError);
  f.heavy_tail_mult = 6.0;
  EXPECT_NO_THROW(plan(f));
}

TEST(TailValidation, DriverRejectsBadTierAndEscalationKnobs) {
  const Workload w = make_example_dag();
  const JobProfile profile = exact_profile(w.dag);
  auto driver_with = [&](SimConfig config) {
    SimDriver driver(w.dag, profile, config);
  };
  SimConfig base = paper_testbed();
  base.topology.cores_per_executor = Cpus{8};  // fits the example dag's 6-vCPU stage

  SimConfig config = base;
  config.tail.tiers.push_back(SimConfig::ExecTier{"bad", -0.1, 2.0});
  EXPECT_THROW(driver_with(config), ConfigError);

  config = base;
  config.tail.tiers.push_back(SimConfig::ExecTier{"bad", 1.5, 2.0});
  EXPECT_THROW(driver_with(config), ConfigError);

  config = base;
  config.tail.tiers.push_back(SimConfig::ExecTier{"bad", 0.25, 0.0});
  EXPECT_THROW(driver_with(config), ConfigError);

  config = base;
  config.tail.tiers.push_back(SimConfig::ExecTier{"a", 0.6, 2.0});
  config.tail.tiers.push_back(SimConfig::ExecTier{"b", 0.6, 0.5});
  EXPECT_THROW(driver_with(config), ConfigError);  // fractions sum > 1

  config = base;
  config.tail.tiers.push_back(SimConfig::ExecTier{"slow", 0.25, 2.0});
  config.tail.escalate = true;
  config.tail.escalation_wait = SimTime{0};
  EXPECT_THROW(driver_with(config), ConfigError);

  config = base;
  config.tail.tiers.push_back(SimConfig::ExecTier{"slow", 0.25, 2.0});
  config.tail.tiers.push_back(SimConfig::ExecTier{"fast", 0.25, 0.5});
  config.tail.escalate = true;
  EXPECT_NO_THROW(driver_with(config));
}

// --- tier assignment ---------------------------------------------------------

/// Two racks of two single-executor nodes (executors {0,1} in rack 0,
/// {2,3} in rack 1), 8 cores each — the gray-failure micro cluster.
SimConfig quad_cluster() {
  SimConfig config;
  config.topology.racks = 2;
  config.topology.nodes_per_rack = 2;
  config.topology.executors_per_node = 1;
  config.topology.cores_per_executor = Cpus{8};
  config.topology.cache_bytes_per_executor = 64 * kMiB;
  config.hdfs.replication = 1;
  return config;
}

TEST(TierAssignment, CountsMatchFractionsAndResolveDeterministically) {
  const Workload w = make_example_dag();
  SimConfig config = quad_cluster();
  config.tail.tiers.push_back(SimConfig::ExecTier{"slow", 0.5, 2.0});
  config.tail.tiers.push_back(SimConfig::ExecTier{"fast", 0.25, 0.5});
  const JobProfile profile = exact_profile(w.dag);

  SimDriver a(w.dag, profile, config);
  std::int32_t slow = 0, fast = 0, normal = 0;
  for (const ExecutorRuntime& e : a.state().executors()) {
    if (e.speed_tier == 0) {
      ++slow;
      EXPECT_EQ(e.speed_mult, 2.0);
    } else if (e.speed_tier == 1) {
      ++fast;
      EXPECT_EQ(e.speed_mult, 0.5);
    } else {
      ++normal;
      EXPECT_EQ(e.speed_tier, -1);
      EXPECT_EQ(e.speed_mult, 1.0);
    }
  }
  // round(0.5 * 4) = 2 slow, round(0.25 * 4) = 1 fast, 1 untouched.
  EXPECT_EQ(slow, 2);
  EXPECT_EQ(fast, 1);
  EXPECT_EQ(normal, 1);

  // Same seed => same membership; the tier stream is independent of the
  // fault plan, so adding faults must not reshuffle the tiers.
  SimConfig with_faults = config;
  with_faults.faults.enabled = true;
  with_faults.faults.crashes.push_back(ExecutorCrashSpec{3600 * kSec, 0});
  SimDriver b(w.dag, profile, with_faults);
  for (std::size_t i = 0; i < a.state().executors().size(); ++i) {
    EXPECT_EQ(a.state().executors()[i].speed_tier,
              b.state().executors()[i].speed_tier);
  }
}

TEST(TierAssignment, SlowTierStretchesComputeProportionally) {
  // Noise off: same-stage attempts share the base compute, so per-stage
  // mean compute on a 2x executor must be ~2x the mean elsewhere (same
  // shape as the gray-degrade regression, but driven by tiers).
  const Workload w = make_example_dag();
  SimConfig config = quad_cluster();
  config.tail.tiers.push_back(SimConfig::ExecTier{"slow", 0.25, 2.0});
  const JobProfile profile = exact_profile(w.dag);
  SimDriver driver(w.dag, profile, config);
  std::int32_t slow_exec = -1;
  for (const ExecutorRuntime& e : driver.state().executors()) {
    if (e.speed_tier == 0) slow_exec = e.id.value();
  }
  ASSERT_GE(slow_exec, 0);
  const RunMetrics m = driver.run();

  struct Sums {
    double on = 0.0, off = 0.0;
    std::int64_t n_on = 0, n_off = 0;
  };
  std::vector<Sums> per_stage(w.dag.num_stages());
  for (const TaskRecord& t : m.tasks) {
    if (t.cancelled || t.failed) continue;
    Sums& s = per_stage[static_cast<std::size_t>(t.stage.value())];
    if (t.exec.value() == slow_exec) {
      s.on += static_cast<double>(t.compute_time.count());
      ++s.n_on;
    } else {
      s.off += static_cast<double>(t.compute_time.count());
      ++s.n_off;
    }
  }
  std::int64_t comparable = 0;
  for (const Sums& s : per_stage) {
    if (s.n_on == 0 || s.n_off == 0) continue;
    ++comparable;
    const double on = s.on / static_cast<double>(s.n_on);
    const double off = s.off / static_cast<double>(s.n_off);
    EXPECT_GT(on, 1.9 * off);
    EXPECT_LT(on, 2.1 * off);
  }
  EXPECT_GT(comparable, 0) << "slow executor never ran a comparable stage";
}

// --- dormancy ----------------------------------------------------------------

TEST(TailDormancy, DormantTailKnobsAreBitIdentical) {
  const Workload w = make_example_dag();
  const RunMetrics off = run_workload(w, quad_cluster()).metrics;

  // Every tail knob armed but inert: faults on with a zero heavy-tail
  // probability, hedge mode set without speculation, escalation set
  // without tiers. Nothing may fire and nothing may perturb the trace.
  SimConfig dormant = quad_cluster();
  dormant.faults.enabled = true;
  dormant.faults.heavy_tail_prob = 0.0;
  dormant.faults.heavy_tail_mult = 6.0;
  dormant.speculation.enabled = false;
  dormant.speculation.hedge = true;
  dormant.tail.escalate = true;  // no tiers => tail.enabled() is false
  const RunMetrics b = run_workload(w, dormant).metrics;
  EXPECT_EQ(metrics_fingerprint(off), metrics_fingerprint(b));
  EXPECT_FALSE(b.faults.any());
  EXPECT_FALSE(b.hedge.any());
}

// --- heavy-tail injection ----------------------------------------------------

TEST(HeavyTail, InjectionsStretchJctDeterministically) {
  const Workload w = make_workload(WorkloadId::KMeans, WorkloadScale{0.3});
  const RunMetrics base = run_workload(w, quad_cluster()).metrics;

  SimConfig config = quad_cluster();
  config.faults.enabled = true;
  config.faults.heavy_tail_prob = 0.3;
  config.faults.heavy_tail_mult = 4.0;
  const RunMetrics tail = run_workload(w, config).metrics;

  EXPECT_GT(tail.faults.heavy_tail_injections, 0);
  EXPECT_LE(tail.faults.heavy_tail_injections,
            static_cast<std::int64_t>(tail.tasks.size()));
  // Stretching a third of all attempts 4x must cost wall-clock time.
  EXPECT_GT(tail.jct, base.jct);

  const RunMetrics again = run_workload(w, config).metrics;
  EXPECT_EQ(metrics_fingerprint(tail), metrics_fingerprint(again));
}

// --- hedged speculation micro-schedules --------------------------------------

/// One rack, two single-core executors. With zero-byte inputs every
/// fetch costs exactly 0, so task timings are exact multiples of the
/// declared durations — good enough to hand-compute whole schedules.
SimConfig two_exec_cluster() {
  SimConfig config;
  config.topology.racks = 1;
  config.topology.nodes_per_rack = 2;
  config.topology.executors_per_node = 1;
  config.topology.cores_per_executor = Cpus{1};
  config.topology.cache_bytes_per_executor = 64 * kMiB;
  config.hdfs.replication = 2;
  return config;
}

/// Two independent 1-second tasks over a zero-byte input.
Workload two_task_stage() {
  JobDagBuilder b("tail-micro");
  const RddId in = b.input_rdd("in", 2, Bytes{0});
  b.add_stage({.name = "S",
               .inputs = {{in, DepKind::Narrow}},
               .num_tasks = 2,
               .task_cpus = Cpus{1},
               .task_duration = kSec,
               .output_bytes_per_partition = Bytes{0},
               .output_name = "out"});
  return Workload{"tail-micro", WorkloadCategory::Mixed, b.build()};
}

/// Hedge-mode speculation that fires as soon as half the stage is done
/// and the straggler exceeds 1x the finished median.
SpeculationConfig eager_hedge() {
  SpeculationConfig s;
  s.enabled = true;
  s.hedge = true;
  s.quantile = 0.5;
  s.multiplier = 1.0;
  return s;
}

TEST(Hedge, SameTickFinishTieGoesToTheOriginal) {
  // One executor 2.1x slow: both tasks launch at t=0, the fast copy
  // finishes at 1.0s, and at the 1.1s tick the straggler (elapsed 1.1s >
  // 1.0s median) draws a hedge on the *other* executor (its own hosts a
  // live sibling). Hedge and original both finish at exactly t=2.1s —
  // the original's terminal event carries the lower sequence number, so
  // it wins the tie and the hedge is cancelled in the same tick.
  SimConfig config = two_exec_cluster();
  config.tail.tiers.push_back(SimConfig::ExecTier{"slow", 0.5, 2.1});
  config.speculation = eager_hedge();
  const Workload w = two_task_stage();
  const RunMetrics m = run_workload(w, config).metrics;

  EXPECT_EQ(m.jct, 2100 * kMsec);
  EXPECT_EQ(m.hedge.hedges_launched, 1);
  EXPECT_EQ(m.hedge.hedges_won, 0);
  EXPECT_EQ(m.hedge.hedges_cancelled, 1);
  // The cancelled hedge held one core from 1.1s to 2.1s.
  EXPECT_EQ(m.hedge.wasted_core_us.count(), kSec.count());
  EXPECT_EQ(m.hedge.escalations, 0);
  EXPECT_FALSE(m.fsm.any());
  EXPECT_FALSE(m.faults.any());

  ASSERT_EQ(m.tasks.size(), 3u);  // two originals + one hedge
  const TaskRecord* hedge = nullptr;
  const TaskRecord* straggler = nullptr;
  for (const TaskRecord& t : m.tasks) {
    if (t.speculative) {
      hedge = &t;
    } else if (t.finish == 2100 * kMsec) {
      straggler = &t;
    }
  }
  ASSERT_NE(hedge, nullptr);
  ASSERT_NE(straggler, nullptr);
  // Cancellation-on-first-finish hit exactly the losing hedge, and the
  // hedge never shared the straggler's executor.
  EXPECT_TRUE(hedge->cancelled);
  EXPECT_FALSE(straggler->cancelled);
  EXPECT_NE(hedge->exec, straggler->exec);
  EXPECT_EQ(hedge->launch, 1100 * kMsec);
  EXPECT_EQ(hedge->finish, 2100 * kMsec);

  const RunMetrics again = run_workload(w, config).metrics;
  EXPECT_EQ(metrics_fingerprint(m), metrics_fingerprint(again));
}

TEST(Hedge, WinningHedgeCancelsTheOriginal) {
  // 3x straggler: the hedge launched at 1.1s on the fast executor
  // finishes at 2.1s, strictly before the original's 3.0s — the hedge
  // wins and the original is cancelled after 2.1s of wasted work.
  SimConfig config = two_exec_cluster();
  config.tail.tiers.push_back(SimConfig::ExecTier{"slow", 0.5, 3.0});
  config.speculation = eager_hedge();
  const RunMetrics m = run_workload(two_task_stage(), config).metrics;

  EXPECT_EQ(m.jct, 2100 * kMsec);
  EXPECT_EQ(m.hedge.hedges_launched, 1);
  EXPECT_EQ(m.hedge.hedges_won, 1);
  EXPECT_EQ(m.hedge.hedges_cancelled, 1);  // the out-raced original
  EXPECT_EQ(m.hedge.wasted_core_us.count(), (2100 * kMsec).count());
  EXPECT_FALSE(m.fsm.any());
  const TaskRecord* original = nullptr;
  for (const TaskRecord& t : m.tasks) {
    if (t.cancelled) original = &t;
  }
  ASSERT_NE(original, nullptr);
  EXPECT_FALSE(original->speculative);
  EXPECT_EQ(original->launch, SimTime{0});
  EXPECT_EQ(original->finish, 2100 * kMsec);
}

TEST(Hedge, HedgeExecutorCrashLeavesTheOriginalToFinish) {
  // Same 3x-straggler schedule, but the executor hosting the hedge
  // crashes at 1.5s — mid-hedge, before its 2.1s win. The hedge dies
  // through the crash path (Failed, not Cancelled), no retry is owed
  // because the original is still live, and the original finishes the
  // stage at 3.0s.
  SimConfig config = two_exec_cluster();
  config.tail.tiers.push_back(SimConfig::ExecTier{"slow", 0.5, 3.0});
  config.speculation = eager_hedge();

  // Tier membership is seed-deterministic: probe which executor is the
  // fast one (the hedge always lands there) with a throwaway driver.
  const Workload w = two_task_stage();
  const JobProfile profile = exact_profile(w.dag);
  std::int32_t fast_exec = -1;
  {
    SimDriver probe(w.dag, profile, config);
    for (const ExecutorRuntime& e : probe.state().executors()) {
      if (e.speed_tier == -1) fast_exec = e.id.value();
    }
  }
  ASSERT_GE(fast_exec, 0);

  config.faults.enabled = true;
  config.faults.crashes.push_back(ExecutorCrashSpec{1500 * kMsec, fast_exec});
  SimDriver driver(w.dag, profile, config);
  const RunMetrics m = driver.run();

  EXPECT_EQ(m.jct, 3 * kSec);
  EXPECT_EQ(m.hedge.hedges_launched, 1);
  EXPECT_EQ(m.hedge.hedges_won, 0);
  EXPECT_EQ(m.hedge.hedges_cancelled, 0);  // crash != cancellation
  EXPECT_EQ(m.hedge.wasted_core_us.count(), 0);
  EXPECT_EQ(m.faults.executor_crashes, 1);
  EXPECT_EQ(m.faults.crash_failures, 1);
  EXPECT_EQ(m.faults.retries, 0) << "live original owes no retry";
  EXPECT_FALSE(m.fsm.any());
  std::int64_t failed = 0, cancelled = 0;
  for (const TaskRecord& t : m.tasks) {
    failed += t.failed ? 1 : 0;
    cancelled += t.cancelled ? 1 : 0;
    if (t.failed) {
      EXPECT_TRUE(t.speculative);
    }
  }
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(cancelled, 0);
}

// --- hedging under lineage recovery ------------------------------------------

TEST(Hedge, SurvivesLineageRecoveryReopeningHedgedStages) {
  // Kitchen sink: heavy tails breed hedges, a mid-run crash plus random
  // cached-block loss force lineage recomputes that re-open finished
  // stages — including ones speculation already raced. The run must
  // quiesce with clean FSM accounting and stay bit-identical.
  const Workload w = make_workload(WorkloadId::KMeans, WorkloadScale{0.3});
  SimConfig config = quad_cluster();
  config.tail.tiers.push_back(SimConfig::ExecTier{"slow", 0.25, 2.0});
  config.tail.tiers.push_back(SimConfig::ExecTier{"fast", 0.25, 0.5});
  config.tail.escalate = true;
  config.tail.escalation_wait = kSec;
  config.speculation = eager_hedge();
  config.speculation.multiplier = 1.2;
  config.faults.enabled = true;
  config.faults.heavy_tail_prob = 0.15;
  config.faults.heavy_tail_mult = 6.0;
  config.faults.crashes.push_back(ExecutorCrashSpec{30 * kSec, -1});
  config.faults.block_loss_per_gb_hour = 50.0;
  config.faults.block_loss_interval = 5 * kSec;
  const RunMetrics m = run_workload(w, config).metrics;

  EXPECT_GT(m.faults.heavy_tail_injections, 0);
  EXPECT_EQ(m.faults.executor_crashes, 1);
  EXPECT_GT(m.faults.lineage_recomputes, 0);
  EXPECT_GT(m.hedge.hedges_launched, 0);
  EXPECT_FALSE(m.fsm.any());
  for (const StageRecord& s : m.stages) EXPECT_GE(s.finish_time, SimTime{0});
  // Hedge accounting stays coherent under the chaos: every cancelled
  // record is a HedgeStats cancellation and vice versa.
  std::int64_t cancelled = 0;
  for (const TaskRecord& t : m.tasks) cancelled += t.cancelled ? 1 : 0;
  EXPECT_EQ(cancelled, m.hedge.hedges_cancelled);
  EXPECT_GE(m.hedge.hedges_won + m.hedge.hedges_cancelled,
            m.hedge.hedges_launched)
      << "a hedge neither won, lost, nor died by crash";

  const RunMetrics again = run_workload(w, config).metrics;
  EXPECT_EQ(metrics_fingerprint(m), metrics_fingerprint(again));
}

// --- critical-path escalation ------------------------------------------------

TEST(Escalation, FiresOntoTheFastTierUnderCongestion) {
  // The tail preset's 18-node cluster at full PageRank scale keeps the
  // critical path queued well past a 0.5s patience, so escalation must
  // actually fire (and the run still quiesces cleanly).
  const Workload w = make_workload(WorkloadId::PageRank, WorkloadScale{1.0});
  SimConfig config = tail_testbed();
  config.tail.escalation_wait = 500 * kMsec;
  const RunMetrics m = run_workload(w, config).metrics;
  EXPECT_GT(m.hedge.escalations, 0);
  EXPECT_FALSE(m.fsm.any());
  for (const StageRecord& s : m.stages) EXPECT_GE(s.finish_time, SimTime{0});
}

TEST(Escalation, StaysQuietWithoutCongestion) {
  // A near-empty cluster never leaves critical-path work pending past
  // the patience window: tiers alone must not trigger escalations.
  const Workload w = make_example_dag();
  SimConfig config = quad_cluster();
  config.tail.tiers.push_back(SimConfig::ExecTier{"fast", 0.25, 0.5});
  config.tail.escalate = true;
  config.tail.escalation_wait = 3600 * kSec;
  const RunMetrics m = run_workload(w, config).metrics;
  EXPECT_EQ(m.hedge.escalations, 0);
}

}  // namespace
}  // namespace dagon
