// Coverage for the dagonflow lifecycle state machines (common/fsm.hpp):
// every legal path in the three transition tables, illegal edges
// throwing under Mode::Strict with the machine/edge/entity named,
// Mode::Count applying the write while charging the Violations sink,
// the retry-reopen and suspect-re-admission round trips the engine
// relies on, and the DOT rendering --dump-fsm prints.
#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "common/fsm.hpp"

namespace dagon {
namespace {

using fsm::Mode;
using fsm::Violations;

// ---------------------------------------------------------------------------
// Legal paths.

TEST(FsmTask, FullRetryAndReopenRoundTrip) {
  TaskStatus s = TaskStatus::Pending;
  // Launch, fail, requeue, relaunch, finish: the retry loop.
  EXPECT_TRUE(fsm::transition(s, TaskStatus::Running));
  EXPECT_TRUE(fsm::transition(s, TaskStatus::Failed));
  EXPECT_TRUE(fsm::transition(s, TaskStatus::Pending));
  EXPECT_TRUE(fsm::transition(s, TaskStatus::Running));
  EXPECT_TRUE(fsm::transition(s, TaskStatus::Finished));
  // Lineage recovery re-opens a finished task whose output was lost.
  EXPECT_TRUE(fsm::transition(s, TaskStatus::Pending));
  EXPECT_EQ(s, TaskStatus::Pending);
}

TEST(FsmBlock, MaterializeEvictReadmitAndLoseRecompute) {
  BlockResidency r = BlockResidency::Absent;
  EXPECT_TRUE(fsm::transition(r, BlockResidency::Materializing));
  EXPECT_TRUE(fsm::transition(r, BlockResidency::Memory));  // admitted
  EXPECT_TRUE(fsm::transition(r, BlockResidency::Evicted));
  EXPECT_TRUE(fsm::transition(r, BlockResidency::Memory));  // re-admit
  EXPECT_TRUE(fsm::transition(r, BlockResidency::Lost));
  EXPECT_TRUE(fsm::transition(r, BlockResidency::Materializing));
  EXPECT_TRUE(fsm::transition(r, BlockResidency::Disk));  // admission refused
  EXPECT_TRUE(fsm::transition(r, BlockResidency::Memory));  // read-admit
  EXPECT_EQ(r, BlockResidency::Memory);
}

TEST(FsmBlock, DiskAndEvictedCopiesCanDie) {
  BlockResidency r = BlockResidency::Disk;
  EXPECT_TRUE(fsm::transition(r, BlockResidency::Lost));
  r = BlockResidency::Evicted;
  EXPECT_TRUE(fsm::transition(r, BlockResidency::Lost));
}

TEST(FsmExecutor, SuspectReadmissionThenDeath) {
  ExecutorHealth h = ExecutorHealth::Healthy;
  // Gray band round trip: suspected, heartbeats back, suspected again,
  // finally declared dead.
  EXPECT_TRUE(fsm::transition(h, ExecutorHealth::Suspect));
  EXPECT_TRUE(fsm::transition(h, ExecutorHealth::Healthy));
  EXPECT_TRUE(fsm::transition(h, ExecutorHealth::Suspect));
  EXPECT_TRUE(fsm::transition(h, ExecutorHealth::Dead));
  EXPECT_EQ(h, ExecutorHealth::Dead);
}

TEST(FsmExecutor, HardCrashSkipsTheGrayBand) {
  ExecutorHealth h = ExecutorHealth::Healthy;
  EXPECT_TRUE(fsm::transition(h, ExecutorHealth::Dead));
}

// ---------------------------------------------------------------------------
// Illegal edges: Strict throws with a message naming the edge.

TEST(FsmStrict, IllegalTaskEdgeThrowsNamingMachineEdgeAndEntity) {
  TaskStatus s = TaskStatus::Pending;
  try {
    fsm::transition(s, TaskStatus::Finished, 42, nullptr, Mode::Strict);
    FAIL() << "Pending -> Finished must not be accepted";
  } catch (const InvariantError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("task-status"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Pending -> Finished"), std::string::npos) << msg;
    EXPECT_NE(msg.find("entity 42"), std::string::npos) << msg;
  }
  // The write must not have been applied.
  EXPECT_EQ(s, TaskStatus::Pending);
}

TEST(FsmStrict, DeadExecutorIsTerminal) {
  ExecutorHealth h = ExecutorHealth::Dead;
  EXPECT_THROW(
      fsm::transition(h, ExecutorHealth::Healthy, 3, nullptr, Mode::Strict),
      InvariantError);
  EXPECT_THROW(
      fsm::transition(h, ExecutorHealth::Suspect, 3, nullptr, Mode::Strict),
      InvariantError);
  EXPECT_EQ(h, ExecutorHealth::Dead);
}

TEST(FsmStrict, EvictionRequiresAMemoryCopy) {
  BlockResidency r = BlockResidency::Disk;
  EXPECT_THROW(
      fsm::transition(r, BlockResidency::Evicted, -1, nullptr, Mode::Strict),
      InvariantError);
}

TEST(FsmStrict, NegativeEntityIsOmittedFromTheMessage) {
  TaskStatus s = TaskStatus::Running;
  try {
    fsm::transition(s, TaskStatus::Running, -1, nullptr, Mode::Strict);
    FAIL() << "self-loop Running -> Running is not in the table";
  } catch (const InvariantError& e) {
    EXPECT_EQ(std::string(e.what()).find("entity"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Count mode: the release-build posture. The breach is charged to the
// sink, the write still lands, and the run keeps going — the
// fingerprint gate (RunMetrics::FsmStats) flags it instead.

TEST(FsmCount, BreachIsCountedAndWriteApplied) {
  Violations sink;
  TaskStatus s = TaskStatus::Pending;
  EXPECT_FALSE(fsm::transition(s, TaskStatus::Finished, 7, &sink,
                               Mode::Count));
  EXPECT_EQ(s, TaskStatus::Finished);
  EXPECT_EQ(sink.illegal, 1);
  EXPECT_TRUE(sink.any());
  // Legal transitions do not touch the sink.
  EXPECT_TRUE(fsm::transition(s, TaskStatus::Pending, 7, &sink,
                              Mode::Count));
  EXPECT_EQ(sink.illegal, 1);
}

TEST(FsmCount, NullSinkIsTolerated) {
  ExecutorHealth h = ExecutorHealth::Dead;
  EXPECT_FALSE(
      fsm::transition(h, ExecutorHealth::Healthy, -1, nullptr, Mode::Count));
  EXPECT_EQ(h, ExecutorHealth::Healthy);
}

// ---------------------------------------------------------------------------
// Table/introspection surface.

TEST(FsmTables, AllowedMatchesTheDocumentedEdgeCounts) {
  // allowed() is constexpr: table membership folds at compile time.
  static_assert(fsm::allowed(TaskStatus::Pending, TaskStatus::Running));
  static_assert(!fsm::allowed(TaskStatus::Pending, TaskStatus::Finished));
  static_assert(fsm::allowed(BlockResidency::Lost,
                             BlockResidency::Materializing));
  static_assert(!fsm::allowed(BlockResidency::Lost, BlockResidency::Memory));
  static_assert(fsm::allowed(ExecutorHealth::Suspect, ExecutorHealth::Dead));
  static_assert(!fsm::allowed(ExecutorHealth::Dead, ExecutorHealth::Suspect));
  static_assert(fsm::allowed(TaskStatus::Running, TaskStatus::Cancelled));
  static_assert(!fsm::allowed(TaskStatus::Cancelled, TaskStatus::Running));
  EXPECT_EQ(fsm::StateMachine<TaskStatus>::kEdges.size(), 6u);
  EXPECT_EQ(fsm::StateMachine<BlockResidency>::kEdges.size(), 10u);
  EXPECT_EQ(fsm::StateMachine<ExecutorHealth>::kEdges.size(), 4u);
}

TEST(FsmTables, StateNamesRoundTrip) {
  EXPECT_STREQ(to_string(TaskStatus::Pending), "Pending");
  EXPECT_STREQ(to_string(BlockResidency::Materializing), "Materializing");
  EXPECT_STREQ(to_string(ExecutorHealth::Suspect), "Suspect");
}

TEST(FsmDot, RendersEveryEdgeInTableOrder) {
  const std::string dot = fsm::to_dot<TaskStatus>();
  EXPECT_NE(dot.find("digraph task_status {"), std::string::npos) << dot;
  EXPECT_NE(dot.find("\"Pending\" -> \"Running\";"), std::string::npos)
      << dot;
  EXPECT_NE(dot.find("\"Finished\" -> \"Pending\";"), std::string::npos)
      << dot;
  // Table order is deterministic: launch edge precedes the reopen edge.
  EXPECT_LT(dot.find("\"Pending\" -> \"Running\";"),
            dot.find("\"Finished\" -> \"Pending\";"));
  const std::string block = fsm::to_dot<BlockResidency>();
  EXPECT_NE(block.find("digraph block_residency {"), std::string::npos);
  EXPECT_NE(block.find("\"Lost\" -> \"Materializing\";"), std::string::npos);
  const std::string exec = fsm::to_dot<ExecutorHealth>();
  EXPECT_NE(exec.find("digraph executor_health {"), std::string::npos);
  EXPECT_NE(exec.find("\"Suspect\" -> \"Dead\";"), std::string::npos);
}

}  // namespace
}  // namespace dagon
