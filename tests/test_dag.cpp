// Unit tests for the DAG model: builder validation, topology queries,
// task inputs, workloads, critical paths and priority values.
#include <gtest/gtest.h>

#include "dag/dag_analysis.hpp"
#include "dag/job_dag.hpp"
#include "dag/profile.hpp"
#include "workloads/example_dag.hpp"

namespace dagon {
namespace {

/// diamond: in -> a -> {b, c} -> d
JobDag make_diamond() {
  JobDagBuilder b("diamond");
  const RddId in = b.input_rdd("in", 4, kMiB);
  const StageId a = b.add_stage({.name = "a",
                                 .inputs = {{in, DepKind::Narrow}},
                                 .num_tasks = 4,
                                 .task_cpus = Cpus{1},
                                 .task_duration = kSec,
                                 .output_bytes_per_partition = kMiB});
  const StageId s_b = b.add_stage({.name = "b",
                                   .inputs = {{b.output_of(a),
                                               DepKind::Narrow}},
                                   .num_tasks = 4,
                                   .task_cpus = Cpus{2},
                                   .task_duration = 2 * kSec,
                                   .output_bytes_per_partition = kMiB});
  const StageId s_c = b.add_stage({.name = "c",
                                   .inputs = {{b.output_of(a),
                                               DepKind::Shuffle}},
                                   .num_tasks = 2,
                                   .task_cpus = Cpus{1},
                                   .task_duration = 3 * kSec,
                                   .output_bytes_per_partition = kMiB});
  b.add_stage({.name = "d",
               .inputs = {{b.output_of(s_b), DepKind::Shuffle},
                          {b.output_of(s_c), DepKind::Shuffle}},
               .num_tasks = 2,
               .task_cpus = Cpus{1},
               .task_duration = kSec,
               .output_bytes_per_partition = Bytes{0}});
  return b.build();
}

TEST(JobDagBuilder, BuildsDiamond) {
  const JobDag dag = make_diamond();
  EXPECT_EQ(dag.num_stages(), 4u);
  EXPECT_EQ(dag.rdds().size(), 5u);  // in + 4 outputs
  EXPECT_EQ(dag.total_tasks(), 12);
  EXPECT_EQ(dag.depth(), 3);
}

TEST(JobDagBuilder, ParentChildLinks) {
  const JobDag dag = make_diamond();
  const Stage& a = dag.stage(StageId(0));
  const Stage& d = dag.stage(StageId(3));
  EXPECT_TRUE(a.parents.empty());
  EXPECT_EQ(a.children.size(), 2u);
  EXPECT_EQ(d.parents.size(), 2u);
  EXPECT_TRUE(d.children.empty());
}

TEST(JobDagBuilder, RootsAndLeaves) {
  const JobDag dag = make_diamond();
  EXPECT_EQ(dag.root_stages(), std::vector<StageId>{StageId(0)});
  EXPECT_EQ(dag.leaf_stages(), std::vector<StageId>{StageId(3)});
}

TEST(JobDagBuilder, TopologicalOrderRespectsParents) {
  const JobDag dag = make_diamond();
  const auto& topo = dag.topological_order();
  ASSERT_EQ(topo.size(), 4u);
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[static_cast<std::size_t>(topo[i].value())] = i;
  for (const Stage& s : dag.stages()) {
    for (const StageId p : s.parents) {
      EXPECT_LT(pos[static_cast<std::size_t>(p.value())],
                pos[static_cast<std::size_t>(s.id.value())]);
    }
  }
}

TEST(JobDagBuilder, SuccessorSets) {
  const JobDag dag = make_diamond();
  const auto succ_a = dag.successor_set(StageId(0));
  EXPECT_EQ(succ_a.size(), 3u);
  EXPECT_TRUE(dag.successor_set(StageId(3)).empty());
  const auto succ_b = dag.successor_set(StageId(1));
  EXPECT_EQ(succ_b, std::vector<StageId>{StageId(3)});
}

TEST(JobDagBuilder, ProducerOf) {
  const JobDag dag = make_diamond();
  EXPECT_FALSE(dag.producer_of(RddId(0)).has_value());  // input
  EXPECT_EQ(dag.producer_of(dag.stage(StageId(1)).output), StageId(1));
}

TEST(JobDagBuilder, RejectsMismatchedNarrowDep) {
  JobDagBuilder b("bad");
  const RddId in = b.input_rdd("in", 4, kMiB);
  EXPECT_THROW(b.add_stage({.name = "s",
                            .inputs = {{in, DepKind::Narrow}},
                            .num_tasks = 3,  // != 4 partitions
                            .task_cpus = Cpus{1},
                            .task_duration = kSec}),
               ConfigError);
}

TEST(JobDagBuilder, RejectsUnknownRdd) {
  JobDagBuilder b("bad");
  EXPECT_THROW(b.add_stage({.name = "s",
                            .inputs = {{RddId(99), DepKind::Shuffle}},
                            .num_tasks = 2,
                            .task_cpus = Cpus{1},
                            .task_duration = kSec}),
               ConfigError);
}

TEST(JobDagBuilder, RejectsNonPositiveFields) {
  JobDagBuilder b("bad");
  const RddId in = b.input_rdd("in", 2, kMiB);
  EXPECT_THROW(b.add_stage({.name = "s",
                            .inputs = {{in, DepKind::Shuffle}},
                            .num_tasks = 0,
                            .task_cpus = Cpus{1},
                            .task_duration = kSec}),
               ConfigError);
  EXPECT_THROW(b.add_stage({.name = "s",
                            .inputs = {{in, DepKind::Shuffle}},
                            .num_tasks = 2,
                            .task_cpus = Cpus{0},
                            .task_duration = kSec}),
               ConfigError);
  EXPECT_THROW(b.add_stage({.name = "s",
                            .inputs = {{in, DepKind::Shuffle}},
                            .num_tasks = 2,
                            .task_cpus = Cpus{1},
                            .task_duration = SimTime{0}}),
               ConfigError);
}

TEST(JobDagBuilder, RejectsEmptyJob) {
  JobDagBuilder b("empty");
  EXPECT_THROW((void)b.build(), ConfigError);
}

TEST(JobDagBuilder, RejectsBadSkewVector) {
  JobDagBuilder b("bad");
  const RddId in = b.input_rdd("in", 2, kMiB);
  EXPECT_THROW(b.add_stage({.name = "s",
                            .inputs = {{in, DepKind::Narrow}},
                            .num_tasks = 2,
                            .task_cpus = Cpus{1},
                            .task_duration = kSec,
                            .output_bytes_per_partition = Bytes{0},
                            .cache_output = true,
                            .duration_skew = {1.0}}),
               ConfigError);
}

TEST(JobDag, TaskInputsNarrow) {
  const JobDag dag = make_diamond();
  const auto inputs = dag.task_inputs(StageId(0), 2);
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_EQ(inputs[0].block, (BlockId{RddId(0), 2}));
  EXPECT_EQ(inputs[0].bytes, kMiB);
}

TEST(JobDag, TaskInputsShuffleSlicesAllParents) {
  const JobDag dag = make_diamond();
  // Stage c (id 2) shuffles over a's 4-partition output.
  const auto inputs = dag.task_inputs(StageId(2), 0);
  ASSERT_EQ(inputs.size(), 4u);
  for (const TaskInput& in : inputs) {
    EXPECT_EQ(in.bytes, kMiB / 2);  // block bytes / 2 tasks
  }
}

TEST(JobDag, StageInputBlocksDeduplicated) {
  const JobDag dag = make_diamond();
  const auto blocks = dag.stage_input_blocks(StageId(2));
  EXPECT_EQ(blocks.size(), 4u);
}

TEST(JobDag, TaskInputBytes) {
  const JobDag dag = make_diamond();
  EXPECT_EQ(dag.task_input_bytes(StageId(0), 0), kMiB);
  EXPECT_EQ(dag.task_input_bytes(StageId(2), 0), 4 * (kMiB / 2));
}

TEST(Stage, WorkloadAndSkew) {
  JobDagBuilder b("skewed");
  const RddId in = b.input_rdd("in", 2, kMiB);
  b.add_stage({.name = "s",
               .inputs = {{in, DepKind::Narrow}},
               .num_tasks = 2,
               .task_cpus = Cpus{3},
               .task_duration = 10 * kSec,
               .output_bytes_per_partition = Bytes{0},
               .cache_output = true,
               .duration_skew = {1.0, 2.0}});
  const JobDag dag = b.build();
  const Stage& s = dag.stage(StageId(0));
  EXPECT_EQ(s.task_compute_time(0), 10 * kSec);
  EXPECT_EQ(s.task_compute_time(1), 20 * kSec);
  EXPECT_EQ(s.workload(), Cpus{3} * ((10 + 20) * kSec));
}

TEST(DagAnalysis, ExampleDagWorkloadsMatchPaper) {
  // w1=48, w2=36, w3=24, w4=4 vCPU-minutes (paper §III-A).
  const Workload w = make_example_dag();
  const JobDag& dag = w.dag;
  EXPECT_EQ(dag.stage(StageId(0)).workload(), CpuWork{48 * kMinute.count()});
  EXPECT_EQ(dag.stage(StageId(1)).workload(), CpuWork{36 * kMinute.count()});
  EXPECT_EQ(dag.stage(StageId(2)).workload(), CpuWork{24 * kMinute.count()});
  EXPECT_EQ(dag.stage(StageId(3)).workload(), CpuWork{4 * kMinute.count()});
}

TEST(DagAnalysis, ExampleDagPriorityValuesMatchTable3) {
  // pv1 = 52, pv2 = 64 vCPU-minutes (Table III, initial row).
  const Workload w = make_example_dag();
  const auto pv = initial_priority_values(w.dag);
  EXPECT_EQ(pv[0], CpuWork{52 * kMinute.count()});
  EXPECT_EQ(pv[1], CpuWork{64 * kMinute.count()});
  EXPECT_EQ(pv[2], CpuWork{28 * kMinute.count()});
  EXPECT_EQ(pv[3], CpuWork{4 * kMinute.count()});
}

TEST(DagAnalysis, CriticalPath) {
  const JobDag dag = make_diamond();
  // a(1s) -> c(3s) -> d(1s) = 5s is the longest chain.
  EXPECT_EQ(critical_path(dag), 5 * kSec);
  const auto cp = critical_path_lengths(dag);
  EXPECT_EQ(cp[0], 5 * kSec);
  EXPECT_EQ(cp[1], 3 * kSec);  // b(2) -> d(1)
  EXPECT_EQ(cp[2], 4 * kSec);  // c(3) -> d(1)
  EXPECT_EQ(cp[3], 1 * kSec);
}

TEST(DagAnalysis, MakespanLowerBound) {
  const Workload w = make_example_dag();
  // Total work 112 vCPU-min on 16 vCPUs -> 7 min; critical path
  // S2->S3->S4 = 7 min.
  EXPECT_EQ(makespan_lower_bound(w.dag, Cpus{16}), 7 * kMinute);
}

TEST(DagAnalysis, ShapeSummary) {
  const Workload w = make_example_dag();
  const DagShape shape = analyze_shape(w.dag);
  EXPECT_EQ(shape.stages, 4u);
  EXPECT_EQ(shape.tasks, 9);
  EXPECT_EQ(shape.depth, 3);
  EXPECT_EQ(shape.total_work, CpuWork{112 * kMinute.count()});
  EXPECT_EQ(shape.critical_path, 7 * kMinute);
}

TEST(Profile, ExactProfileMatchesDag) {
  const Workload w = make_example_dag();
  const JobProfile p = exact_profile(w.dag);
  ASSERT_EQ(p.stages.size(), 4u);
  EXPECT_EQ(p.stage(StageId(0)).task_duration, 4 * kMinute);
  EXPECT_EQ(p.stage(StageId(1)).task_cpus, Cpus{6});
  EXPECT_EQ(p.workload(StageId(0), 3), CpuWork{48 * kMinute.count()});
  EXPECT_EQ(p.workload(StageId(0), 1), CpuWork{16 * kMinute.count()});
}

TEST(Profile, InitiallyCachedPartitions) {
  const Workload w = make_example_dag();
  const Rdd& a = w.dag.rdd(RddId(0));
  EXPECT_TRUE(a.is_input);
  EXPECT_EQ(a.initially_cached_partitions, 3);
}

TEST(JobDag, UnknownIdsThrow) {
  const JobDag dag = make_diamond();
  EXPECT_THROW((void)dag.stage(StageId(99)), InvariantError);
  EXPECT_THROW((void)dag.rdd(RddId(99)), InvariantError);
  EXPECT_THROW((void)dag.task_inputs(StageId(0), 99), InvariantError);
}

TEST(JobDagBuilder, SetCacheableFlags) {
  JobDagBuilder b("flags");
  const RddId in = b.input_rdd("in", 2, kMiB);
  b.set_rdd_cacheable(in, false);
  const StageId s = b.add_stage({.name = "s",
                                 .inputs = {{in, DepKind::Narrow}},
                                 .num_tasks = 2,
                                 .task_cpus = Cpus{1},
                                 .task_duration = kSec,
                                 .output_bytes_per_partition = kMiB});
  b.set_output_cacheable(s, false);
  const JobDag dag = b.build();
  EXPECT_FALSE(dag.rdd(RddId(0)).cacheable);
  EXPECT_FALSE(dag.rdd(dag.stage(StageId(0)).output).cacheable);
}

}  // namespace
}  // namespace dagon
