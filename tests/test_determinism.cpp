// The determinism acceptance gates (DESIGN.md §9):
//
//  1. The all-faults-off metrics_fingerprint for every preset × system ×
//     workload row is pinned bit-for-bit. Any hash-order leak, float
//     reassociation, or hidden entropy source moves at least one row.
//  2. A sweep over the same 24-row matrix is bit-identical between
//     --jobs 1 and --jobs N, per row — the parallel engine may change
//     wall-clock, never results.
//
// If a pin moves because of an *intentional* model change, re-derive the
// table (tools/dagonsim --fingerprint, or the loop below) and update the
// values in the same commit with a note explaining why.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/presets.hpp"
#include "core/runner.hpp"
#include "exp/sweep.hpp"
#include "workloads/suite.hpp"

namespace dagon {
namespace {

struct Pin {
  const char* preset;
  SystemCombo combo;
  WorkloadId workload;
  std::uint64_t fingerprint;
};

// 2 presets × 4 systems × 3 workloads at WorkloadScale{0.3}, pinned
// against the PR 3 build. Kept in matrix order: preset-major, then
// system, then workload.
std::vector<Pin> pinned_matrix() {
  return {
      {"testbed", stock_spark(), WorkloadId::KMeans, 0x775c8db45cb1eea9ull},
      {"testbed", stock_spark(), WorkloadId::LogisticRegression,
       0xb07cf5bbd3c89007ull},
      {"testbed", stock_spark(), WorkloadId::PageRank, 0x16d4a6af5e737521ull},
      {"testbed", graphene_lru(), WorkloadId::KMeans, 0x775c8db45cb1eea9ull},
      {"testbed", graphene_lru(), WorkloadId::LogisticRegression,
       0xe9298c0347add383ull},
      {"testbed", graphene_lru(), WorkloadId::PageRank, 0x570db489caec0925ull},
      {"testbed", graphene_mrd(), WorkloadId::KMeans, 0x696ab99a0d43feb1ull},
      {"testbed", graphene_mrd(), WorkloadId::LogisticRegression,
       0xca3462953330a22full},
      {"testbed", graphene_mrd(), WorkloadId::PageRank, 0x118d94557c3e6272ull},
      {"testbed", dagon_full(), WorkloadId::KMeans, 0x696ab99a0d43feb1ull},
      {"testbed", dagon_full(), WorkloadId::LogisticRegression,
       0xa4cfd10d67254d23ull},
      {"testbed", dagon_full(), WorkloadId::PageRank, 0xc0c5c10cae20654full},
      {"case", stock_spark(), WorkloadId::KMeans, 0x522c5cce30cc306aull},
      {"case", stock_spark(), WorkloadId::LogisticRegression,
       0xbc99af41fe78936full},
      {"case", stock_spark(), WorkloadId::PageRank, 0xa17334dc8261e411ull},
      {"case", graphene_lru(), WorkloadId::KMeans, 0x522c5cce30cc306aull},
      {"case", graphene_lru(), WorkloadId::LogisticRegression,
       0x057c1a59c174401aull},
      {"case", graphene_lru(), WorkloadId::PageRank, 0xe7076f933ac57056ull},
      {"case", graphene_mrd(), WorkloadId::KMeans, 0xe82bc0b2739da8a2ull},
      {"case", graphene_mrd(), WorkloadId::LogisticRegression,
       0x3835097fb732c6feull},
      {"case", graphene_mrd(), WorkloadId::PageRank, 0x2eaa00db92fac5c9ull},
      {"case", dagon_full(), WorkloadId::KMeans, 0xe82bc0b2739da8a2ull},
      {"case", dagon_full(), WorkloadId::LogisticRegression,
       0x044aea48bb8d844cull},
      {"case", dagon_full(), WorkloadId::PageRank, 0xa2c77a8103d33672ull},
  };
}

SimConfig preset_config(const char* preset) {
  return std::string(preset) == "testbed" ? paper_testbed()
                                          : case_study_cluster();
}

TEST(Determinism, AllFaultsOffMatrixFingerprintsArePinned) {
  for (const Pin& pin : pinned_matrix()) {
    const Workload w = make_workload(pin.workload, WorkloadScale{0.3});
    const RunMetrics m =
        run_system(w, pin.combo, preset_config(pin.preset)).metrics;
    EXPECT_EQ(metrics_fingerprint(m), pin.fingerprint)
        << pin.preset << " / " << pin.combo.label << " / " << w.name;
  }
}

// The tail-tolerance preset (tiers + heavy tail + hedging + escalation)
// exercises every tail subsystem at once; its digests are pinned so the
// whole response — tier membership, heavy-tail draws, hedge races,
// escalations — stays bit-reproducible. Unlike the fault presets, its
// base trace is NOT expected to match paper_testbed(): tiers reshape
// compute from t=0.
TEST(Determinism, TailPresetFingerprintsArePinned) {
  const Pin pins[] = {
      {"tail", dagon_full(), WorkloadId::KMeans, 0xefaf88f41789fd7eull},
      {"tail", dagon_full(), WorkloadId::LogisticRegression,
       0x678d7345a763f1f8ull},
      {"tail", dagon_full(), WorkloadId::PageRank, 0xaa6c9ded6740f437ull},
      {"tail", stock_spark(), WorkloadId::KMeans, 0xe622812fd8117369ull},
  };
  for (const Pin& pin : pins) {
    const Workload w = make_workload(pin.workload, WorkloadScale{0.3});
    const RunMetrics m = run_system(w, pin.combo, tail_testbed()).metrics;
    EXPECT_EQ(metrics_fingerprint(m), pin.fingerprint)
        << pin.preset << " / " << pin.combo.label << " / " << w.name;
    // The tail machinery must actually have fired on these rows.
    EXPECT_GT(m.faults.heavy_tail_injections, 0) << w.name;
    EXPECT_GT(m.hedge.hedges_launched, 0) << w.name;
    EXPECT_FALSE(m.fsm.any()) << w.name;
  }
}

TEST(Determinism, MatrixSweepJobs1EqualsJobsN) {
  // Same 24 rows, driven through the sweep engine: per-row fingerprints
  // must match between the serial and the parallel schedule.
  std::vector<SweepRun> grid;
  for (const Pin& pin : pinned_matrix()) {
    const Workload w = make_workload(pin.workload, WorkloadScale{0.3});
    const SimConfig config =
        apply_combo(preset_config(pin.preset), pin.combo);
    grid.push_back(
        {std::string(pin.preset) + "/" + pin.combo.label + "/" + w.name, w,
         config});
  }

  const SweepReport serial = run_sweep(grid, SweepOptions{1});
  const SweepReport parallel = run_sweep(grid, SweepOptions{4});
  ASSERT_EQ(serial.runs.size(), grid.size());
  ASSERT_EQ(parallel.runs.size(), grid.size());
  const std::vector<Pin> pins = pinned_matrix();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const std::uint64_t s = metrics_fingerprint(serial.runs[i].metrics);
    const std::uint64_t p = metrics_fingerprint(parallel.runs[i].metrics);
    EXPECT_EQ(s, p) << "row " << grid[i].label
                    << " diverged between --jobs 1 and --jobs 4";
    // The sweep path must also agree with the direct run_system() path —
    // one engine, one answer.
    EXPECT_EQ(s, pins[i].fingerprint) << "row " << grid[i].label;
  }
}

}  // namespace
}  // namespace dagon
