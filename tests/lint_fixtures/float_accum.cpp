// dagonlint fixture: one unsuppressed float-accum violation (line 8).
#include <vector>

double fixture_mean(const std::vector<double>& xs) {
  double acc = 0.0;

  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += xs[i];
  }
  return acc / static_cast<double>(xs.size());
}
