// dagonlint fixture: EventType::Heartbeat (line 6) has no dispatch in
// the sibling driver.cpp — one event-handler-complete violation.
enum class EventType {
  TaskFinish,
  Tick,
  Heartbeat,
};
