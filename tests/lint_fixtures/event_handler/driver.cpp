// dagonlint fixture driver: dispatches TaskFinish and Tick but not
// Heartbeat; the gap is reported at the enumerator's declaration in
// event_queue.hpp, not here.
#include "event_queue.hpp"

int fixture_dispatch(EventType t) {
  switch (t) {
    case EventType::TaskFinish:
      return 1;
    case EventType::Tick:
      return 2;
  }
  return 0;
}
