// mid layer: base/util.hpp is a legal downward include; the
// top/app_defs.hpp include points UP the manifest order (mid -> top)
// and carries the upward-include finding.
#include "base/util.hpp"
#include "top/app_defs.hpp"
struct Widget {
  int size = base_util();
  AppDefs defs;
};
