// mid-layer peer of widget.hpp: the same upward include, but with a
// justified layering allow riding on the include line itself.
#pragma once
#include "top/app_defs.hpp"  // dagonlint: allow(layering): transitional shim until AppDefs moves down to base
struct Allowed {
  AppDefs defs;
};
