// Top-layer header that mid/widget.hpp reaches UP for — the target of
// the upward-include violation.
struct AppDefs {
  int version = 7;
};
