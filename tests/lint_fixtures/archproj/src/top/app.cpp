// top layer consumer: mid/widget.hpp is alive (Widget is used), while
// base/unused.hpp contributes nothing referenced here — dead-include.
#include "base/unused.hpp"
#include "mid/widget.hpp"
int main() {
  Widget w;
  return w.size;
}
