// Dead-include target: top/app.cpp includes this header but never
// references unused_helper (or anything else it provides).
inline int unused_helper() { return 3; }
