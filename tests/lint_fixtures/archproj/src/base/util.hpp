// Legal downward-include target: mid/widget.hpp uses base_util().
inline int base_util() { return 1; }
