// Other half of the include cycle: this include closes the loop back
// to cycle_a.hpp, so it carries the layering-cycle finding.
#include "base/cycle_a.hpp"
struct CycleB {
  CycleA* peer = nullptr;
};
