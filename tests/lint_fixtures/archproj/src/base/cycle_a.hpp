// One half of an include cycle: cycle_b.hpp includes this file back.
#include "base/cycle_b.hpp"
struct CycleA {
  CycleB* peer = nullptr;
};
