// dagonlint fixture: allow() without a justification (line 10) is
// itself a finding — every suppression in the tree must stay audited.
#include <unordered_map>

struct FixtureBare {
  std::unordered_map<int, int> table_;

  int sum() const {
    int total = 0;
    // dagonlint: allow(unordered-iter)
    for (const auto& [k, v] : table_) total += v;
    return total;
  }
};
