// doc-drift fixture: `--undocumented` and preset "beta" are parsed
// here but missing from the sibling README.md, and the sibling
// DESIGN.md rule table deliberately lacks the `doc-drift` id itself —
// three findings with --docs-root pointed at this directory.
#include <string>

bool parse_flag(const std::string& arg) {
  if (arg == "--documented") return true;
  if (arg == "--undocumented") return true;
  return false;
}

bool parse_preset(const std::string& name) {
  if (name == "alpha") return true;
  if (name == "beta") return true;
  return false;
}
