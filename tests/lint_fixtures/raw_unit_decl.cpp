// dagonlint fixture: one unsuppressed raw-unit-decl violation (line 5).
#include <cstdint>

struct FixtureBudget {
  std::int64_t deadline_us = 0;
};
