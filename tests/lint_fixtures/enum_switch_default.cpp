// dagonlint fixture: one enum-switch-default violation (line 9): the
// `default:` arm defeats -Wswitch-enum exhaustiveness.
enum class FixtureMode { Fifo, Fair };

int fixture_pick(FixtureMode m) {
  switch (m) {
    case FixtureMode::Fifo:
      return 1;
    default:
      return 0;
  }
}
