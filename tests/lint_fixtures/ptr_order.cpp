// dagonlint fixture: one unsuppressed ptr-order violation (line 7).
#include <functional>
#include <map>

struct FixtureWidget {};

using FixtureRank = std::map<FixtureWidget*, int, std::less<FixtureWidget*>>;
