// dagonlint fixture: one unsuppressed raw-transition violation (line
// 9): the lifecycle write bypasses fsm::transition().
enum class Phase { Idle, Busy };

struct FixtureWorker {
  Phase status = Phase::Idle;

  void begin() {
    status = Phase::Busy;
  }
};
