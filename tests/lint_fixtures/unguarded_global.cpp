// unguarded-global fixture: the function-local `static` counter below
// is shared mutable state with no atomic/mutex/thread_local evidence —
// two pooled tasks calling next_ticket() race on it.
inline int next_ticket() {
  static int calls = 0;
  ++calls;
  return calls;
}
