// dagonlint fixture: a justified allow() — this file must lint clean.
#include <unordered_map>

struct FixtureClean {
  std::unordered_map<int, int> table_;

  int count_even() const {
    int even = 0;
    // dagonlint: allow(unordered-iter): counting is order-independent.
    for (const auto& [k, v] : table_) {
      if (v % 2 == 0) ++even;
    }
    return even;
  }
};
