// dagonlint fixture: one unsuppressed unordered-iter violation (line 9).
#include <unordered_map>

struct FixtureTable {
  std::unordered_map<int, int> table_;

  int sum() const {
    int total = 0;
    for (const auto& [k, v] : table_) total += v;
    return total;
  }
};
