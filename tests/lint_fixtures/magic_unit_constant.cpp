// dagonlint fixture: one unsuppressed magic-unit-constant violation (line 4).

long long fixture_deadline(long long ticks) {
  const auto deadline_us = ticks * 1000000;
  return deadline_us;
}
