// dagonlint fixture: one unsuppressed nondet-source violation (line 7).
#include <cstdlib>

struct FixtureSeed {};

int ambient_seed() {
  return rand();
}
