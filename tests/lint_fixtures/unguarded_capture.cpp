// unguarded-capture fixture: the lambda handed to submit() captures
// `total` by reference and mutates it with no lock/atomic evidence in
// the body — the classic fan-out data race.
struct FixturePool {
  template <typename F>
  void submit(F&& task) {
    task();
  }
};

inline int racy_sum() {
  FixturePool pool;
  int total = 0;
  pool.submit([&total] { total += 1; });
  return total;
}
