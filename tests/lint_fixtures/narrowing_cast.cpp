// dagonlint fixture: one unsuppressed narrowing-cast violation (line 6).
#include <cstdint>

std::int64_t fixture_micros(double seconds) {
  const double scaled = seconds * 1e6;
  return static_cast<std::int64_t>(scaled);
}
