// dagonlint fixture: one unsuppressed overflow-mul violation (line 6).

long long fixture_product(long long a, long long b) {
  const auto span_us = a;
  const auto load_work = b;
  return span_us * load_work;
}
