// Parallel sweep engine: fans independent (workload, SimConfig) runs
// across a thread pool and collects results in deterministic submission
// order.
//
// Determinism guarantee: each SimDriver owns every piece of mutable
// state it touches (RNG seeded from SimConfig::seed, block managers,
// job state, event queue), so a run's RunMetrics depend only on its
// (workload, config, profiler) triple — never on which thread ran it or
// in what order runs interleaved. run_sweep() therefore returns results
// that are bit-identical to serial execution (metrics_fingerprint
// equality is asserted in tests/test_exp.cpp), while the wall clock
// divides by the number of workers.
//
//   std::vector<SweepRun> runs;
//   for (auto seed : seeds) runs.push_back({label(seed), workload, cfg(seed)});
//   const SweepReport r = run_sweep(runs, {.jobs = 8});
//   // r.runs[i] corresponds to runs[i]; r.runs_per_sec() for throughput
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/runner.hpp"

namespace dagon {

/// One unit of sweep work: a workload run under a config, profiled with
/// `profiler` (noiseless by default, as run_workload's default).
struct SweepRun {
  std::string label;
  Workload workload;
  SimConfig config;
  ProfilerConfig profiler{};
};

struct SweepOptions {
  /// Worker threads. 1 = run serially on the calling thread (no pool);
  /// 0 = one worker per hardware thread.
  std::size_t jobs = 1;
};

struct SweepReport {
  /// results[i] is runs[i]'s outcome, regardless of completion order.
  std::vector<RunResult> runs;
  /// Worker count actually used.
  std::size_t jobs = 1;
  /// Wall-clock time of the whole sweep.
  double wall_seconds = 0.0;

  [[nodiscard]] double runs_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(runs.size()) / wall_seconds
               : 0.0;
  }
};

/// Resolves a --jobs value: 0 -> hardware concurrency (at least 1).
[[nodiscard]] std::size_t resolve_jobs(std::size_t jobs);

/// Executes every run and returns the results in submission order.
/// With jobs == 1 the sweep is genuinely serial (no pool, no threads).
/// If a run throws, the exception propagates; with jobs > 1 the
/// remaining runs still complete first (ThreadPool::wait semantics).
[[nodiscard]] SweepReport run_sweep(const std::vector<SweepRun>& runs,
                                    const SweepOptions& opts = {});

}  // namespace dagon
