// A small fixed-size thread pool for fanning independent simulation
// runs across cores (the sweep engine's execution substrate).
//
// Semantics chosen for experiment harnesses:
//  * submit() enqueues a task; workers drain the queue FIFO;
//  * a task that throws does NOT kill the pool — the first exception is
//    captured and rethrown from wait(), after the queue has drained, so
//    sibling runs still complete and produce results;
//  * the destructor drains outstanding work and joins every worker, so
//    a pool can never leak running threads past its scope.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dagon {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains remaining work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues `task` for execution on some worker.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw,
  /// rethrows the first captured exception (subsequent ones are
  /// dropped); the pool remains usable afterwards.
  void wait();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

}  // namespace dagon
