#include "exp/sweep.hpp"

#include <chrono>
#include <thread>

#include "exp/thread_pool.hpp"

namespace dagon {

std::size_t resolve_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

SweepReport run_sweep(const std::vector<SweepRun>& runs,
                      const SweepOptions& opts) {
  SweepReport report;
  report.jobs = resolve_jobs(opts.jobs);
  report.runs.resize(runs.size());

  const auto start = std::chrono::steady_clock::now();
  if (report.jobs <= 1 || runs.size() <= 1) {
    report.jobs = 1;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      report.runs[i] = run_workload(runs[i].workload, runs[i].config,
                                    AppProfiler(runs[i].profiler));
    }
  } else {
    ThreadPool pool(std::min(report.jobs, runs.size()));
    for (std::size_t i = 0; i < runs.size(); ++i) {
      pool.submit([&runs, &report, i] {
        report.runs[i] = run_workload(runs[i].workload, runs[i].config,
                                      AppProfiler(runs[i].profiler));
      });
    }
    pool.wait();
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

}  // namespace dagon
