#include "exp/thread_pool.hpp"

#include <algorithm>

namespace dagon {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (err && !first_error_) first_error_ = err;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dagon
