#include "cache/ref_oracle.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dag/dag_analysis.hpp"

namespace dagon {

ReferenceOracle::ReferenceOracle(const JobDag& dag) : dag_(&dag) {
  finished_.assign(dag.num_stages(), false);
  pv_ = initial_priority_values(dag);
  refs_.resize(static_cast<std::size_t>(dag.num_blocks()));
  for (const Stage& s : dag.stages()) {
    for (const RddRef& ref : s.inputs) {
      const Rdd& parent = dag.rdd(ref.rdd);
      if (ref.kind == DepKind::Narrow) {
        // Block k is read by exactly task k.
        for (std::int32_t t = 0; t < s.num_tasks; ++t) {
          refs_of(BlockId{ref.rdd, t}).push_back(Ref{s.id, 1});
        }
      } else {
        // Every task pulls a slice of every parent block.
        for (std::int32_t p = 0; p < parent.num_partitions; ++p) {
          refs_of(BlockId{ref.rdd, p}).push_back(Ref{s.id, s.num_tasks});
        }
      }
    }
  }
  for (std::vector<Ref>& refs : refs_) {
    if (refs.empty()) continue;
    std::sort(refs.begin(), refs.end(),
              [](const Ref& a, const Ref& b) { return a.stage < b.stage; });
    // Merge duplicate (block, stage) records (a stage may reference one
    // RDD through several edges; keep the max remaining count).
    std::vector<Ref> merged;
    for (const Ref& r : refs) {
      if (!merged.empty() && merged.back().stage == r.stage) {
        merged.back().remaining = std::max(merged.back().remaining,
                                           r.remaining);
      } else {
        merged.push_back(r);
      }
    }
    refs = std::move(merged);
  }
}

void ReferenceOracle::on_task_launched(StageId stage, std::int32_t task) {
  ++epoch_;
  for (const TaskInput& in : dag_->task_inputs(stage, task)) {
    for (Ref& r : refs_of(in.block)) {
      if (r.stage == stage && r.remaining > 0) {
        --r.remaining;
        break;
      }
    }
  }
}

void ReferenceOracle::mark_stage_finished(StageId stage) {
  DAGON_CHECK(stage.valid() &&
              static_cast<std::size_t>(stage.value()) < finished_.size());
  ++epoch_;
  finished_[static_cast<std::size_t>(stage.value())] = true;
}

void ReferenceOracle::restore_task_refs(StageId stage, std::int32_t task) {
  DAGON_CHECK(stage.valid() &&
              static_cast<std::size_t>(stage.value()) < finished_.size());
  ++epoch_;
  finished_[static_cast<std::size_t>(stage.value())] = false;
  for (const TaskInput& in : dag_->task_inputs(stage, task)) {
    for (Ref& r : refs_of(in.block)) {
      if (r.stage == stage) {
        ++r.remaining;
        break;
      }
    }
  }
}

void ReferenceOracle::set_priority_values(std::vector<CpuWork> pv) {
  DAGON_CHECK(pv.size() == finished_.size());
  ++epoch_;
  pv_ = std::move(pv);
}

void ReferenceOracle::set_current_stage(StageId stage) {
  DAGON_CHECK(stage.valid());
  ++epoch_;
  current_stage_ord_ = stage.value();
}

int ReferenceOracle::remaining_ref_count(const BlockId& block) const {
  int count = 0;
  for (const Ref& r : refs_of(block)) {
    if (live(r)) ++count;
  }
  return count;
}

int ReferenceOracle::stage_distance(const BlockId& block) const {
  int best = kNeverUsed;
  for (const Ref& r : refs_of(block)) {
    if (!live(r)) continue;
    // MRD measures distance in stage-id (FIFO) order; a stage at or
    // before the current one is about to run: distance 0.
    const int d = std::max(0, r.stage.value() - current_stage_ord_);
    best = std::min(best, d);
  }
  return best;
}

CpuWork ReferenceOracle::reference_priority(const BlockId& block) const {
  CpuWork best = 0;
  for (const Ref& r : refs_of(block)) {
    if (!live(r)) continue;
    best = std::max(best, pv_[static_cast<std::size_t>(r.stage.value())]);
  }
  return best;
}

std::vector<StageId> ReferenceOracle::live_readers(
    const BlockId& block) const {
  std::vector<StageId> out;
  for (const Ref& r : refs_of(block)) {
    if (live(r)) out.push_back(r.stage);
  }
  return out;
}

bool ReferenceOracle::stage_finished(StageId stage) const {
  DAGON_CHECK(stage.valid() &&
              static_cast<std::size_t>(stage.value()) < finished_.size());
  return finished_[static_cast<std::size_t>(stage.value())];
}

CpuWork ReferenceOracle::priority_value(StageId stage) const {
  DAGON_CHECK(stage.valid() &&
              static_cast<std::size_t>(stage.value()) < pv_.size());
  return pv_[static_cast<std::size_t>(stage.value())];
}

}  // namespace dagon
