#include "cache/ref_oracle.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dag/dag_analysis.hpp"

namespace dagon {

ReferenceOracle::ReferenceOracle(const JobDag& dag) : dag_(&dag) {
  finished_.assign(dag.num_stages(), false);
  active_.assign(dag.num_stages(), 1);
  pv_ = initial_priority_values(dag);
  refs_.resize(static_cast<std::size_t>(dag.num_blocks()));
  for (const Stage& s : dag.stages()) {
    for (const RddRef& ref : s.inputs) {
      const Rdd& parent = dag.rdd(ref.rdd);
      if (ref.kind == DepKind::Narrow) {
        // Block k is read by exactly task k.
        for (std::int32_t t = 0; t < s.num_tasks; ++t) {
          refs_of(BlockId{ref.rdd, t}).push_back(Ref{s.id, 1});
        }
      } else {
        // Every task pulls a slice of every parent block.
        for (std::int32_t p = 0; p < parent.num_partitions; ++p) {
          refs_of(BlockId{ref.rdd, p}).push_back(Ref{s.id, s.num_tasks});
        }
      }
    }
  }
  for (std::vector<Ref>& refs : refs_) {
    if (refs.empty()) continue;
    std::sort(refs.begin(), refs.end(),
              [](const Ref& a, const Ref& b) { return a.stage < b.stage; });
    // Merge duplicate (block, stage) records (a stage may reference one
    // RDD through several edges; keep the max remaining count).
    std::vector<Ref> merged;
    for (const Ref& r : refs) {
      if (!merged.empty() && merged.back().stage == r.stage) {
        merged.back().remaining = std::max(merged.back().remaining,
                                           r.remaining);
      } else {
        merged.push_back(r);
      }
    }
    refs = std::move(merged);
  }
}

void ReferenceOracle::on_task_launched(StageId stage, std::int32_t task) {
  ++epoch_;
  for (const TaskInput& in : dag_->task_inputs(stage, task)) {
    for (Ref& r : refs_of(in.block)) {
      if (r.stage == stage && r.remaining > 0) {
        --r.remaining;
        break;
      }
    }
  }
}

void ReferenceOracle::mark_stage_finished(StageId stage) {
  DAGON_CHECK(stage.valid() &&
              static_cast<std::size_t>(stage.value()) < finished_.size());
  ++epoch_;
  finished_[static_cast<std::size_t>(stage.value())] = true;
}

void ReferenceOracle::restore_task_refs(StageId stage, std::int32_t task) {
  DAGON_CHECK(stage.valid() &&
              static_cast<std::size_t>(stage.value()) < finished_.size());
  ++epoch_;
  finished_[static_cast<std::size_t>(stage.value())] = false;
  for (const TaskInput& in : dag_->task_inputs(stage, task)) {
    for (Ref& r : refs_of(in.block)) {
      if (r.stage == stage) {
        ++r.remaining;
        break;
      }
    }
  }
}

void ReferenceOracle::set_priority_values(std::vector<CpuWork> pv) {
  DAGON_CHECK(pv.size() == finished_.size());
  ++epoch_;
  pv_ = std::move(pv);
}

void ReferenceOracle::set_current_stage(StageId stage) {
  DAGON_CHECK(stage.valid());
  ++epoch_;
  current_stage_ord_ = stage.value();
}

void ReferenceOracle::set_stage_active(StageId stage, bool stage_on) {
  DAGON_CHECK(stage.valid() &&
              static_cast<std::size_t>(stage.value()) < active_.size());
  auto& slot = active_[static_cast<std::size_t>(stage.value())];
  const char next = stage_on ? 1 : 0;
  if (slot == next) return;
  ++epoch_;
  slot = next;
}

void ReferenceOracle::enable_peer_tracking() {
  if (peer_tracking_) return;
  peer_tracking_ = true;
  in_memory_.assign(static_cast<std::size_t>(dag_->num_blocks()), 0);
  // A task's peer group = partition p of every cacheable parent it
  // reads through a narrow dep (a non-cacheable block can never be
  // memory-resident, so including it would make all-or-nothing
  // unsatisfiable forever; a shuffle read touches every parent block,
  // so it carries no per-task group).
  narrow_readers_.assign(dag_->rdds().size(), {});
  task_group_offset_.assign(static_cast<std::size_t>(dag_->num_stages()) + 1,
                            0);
  for (const Stage& s : dag_->stages()) {
    const auto i = static_cast<std::size_t>(s.id.value());
    task_group_offset_[i + 1] = task_group_offset_[i] + s.num_tasks;
  }
  task_missing_.assign(static_cast<std::size_t>(task_group_offset_.back()),
                       0);
  for (const Stage& s : dag_->stages()) {
    for (const RddRef& ref : s.inputs) {
      if (ref.kind != DepKind::Narrow) continue;
      if (!dag_->rdd(ref.rdd).cacheable) continue;
      auto& readers = narrow_readers_[static_cast<std::size_t>(
          ref.rdd.value())];
      // A stage may read one RDD through several narrow edges; the
      // group slot counts the distinct block once.
      if (std::find(readers.begin(), readers.end(), s.id) != readers.end()) {
        continue;
      }
      readers.push_back(s.id);
      for (std::int32_t t = 0; t < s.num_tasks; ++t) {
        ++task_missing_[group_ord(s.id, t)];
      }
    }
  }
}

void ReferenceOracle::set_memory_resident(const BlockId& block,
                                          bool resident) {
  if (!peer_tracking_) return;
  if (!dag_->rdd(block.rdd).cacheable) return;
  const auto o = static_cast<std::size_t>(dag_->block_ord(block));
  const char next = resident ? 1 : 0;
  if (in_memory_[o] == next) return;
  ++epoch_;
  in_memory_[o] = next;
  const std::int32_t delta = resident ? -1 : 1;
  for (const StageId s :
       narrow_readers_[static_cast<std::size_t>(block.rdd.value())]) {
    auto& missing = task_missing_[group_ord(s, block.partition)];
    missing += delta;
    DAGON_CHECK(missing >= 0);
  }
}

int ReferenceOracle::effective_ref_count(const BlockId& block) const {
  DAGON_CHECK_MSG(peer_tracking_,
                  "effective_ref_count needs enable_peer_tracking()");
  const auto o = static_cast<std::size_t>(dag_->block_ord(block));
  if (!dag_->rdd(block.rdd).cacheable) return 0;
  // If `block` itself is absent it still contributes one "missing" slot
  // to each of its groups; the question LERC asks is whether caching it
  // would *complete* the group.
  const std::int32_t self_missing = in_memory_[o] == 0 ? 1 : 0;
  const auto& readers =
      narrow_readers_[static_cast<std::size_t>(block.rdd.value())];
  int count = 0;
  for (const Ref& r : refs_[o]) {
    if (!live(r)) continue;
    if (std::find(readers.begin(), readers.end(), r.stage) ==
        readers.end()) {
      continue;  // shuffle-only reader: no per-task peer group
    }
    if (task_missing_[group_ord(r.stage, block.partition)] - self_missing ==
        0) {
      ++count;
    }
  }
  return count;
}

int ReferenceOracle::remaining_ref_count(const BlockId& block) const {
  int count = 0;
  for (const Ref& r : refs_of(block)) {
    if (live(r)) ++count;
  }
  return count;
}

int ReferenceOracle::stage_distance(const BlockId& block) const {
  int best = kNeverUsed;
  for (const Ref& r : refs_of(block)) {
    if (!live(r)) continue;
    // MRD measures distance in stage-id (FIFO) order; a stage at or
    // before the current one is about to run: distance 0.
    const int d = std::max(0, r.stage.value() - current_stage_ord_);
    best = std::min(best, d);
  }
  return best;
}

CpuWork ReferenceOracle::reference_priority(const BlockId& block) const {
  CpuWork best{};
  for (const Ref& r : refs_of(block)) {
    if (!live(r)) continue;
    best = std::max(best, pv_[static_cast<std::size_t>(r.stage.value())]);
  }
  return best;
}

std::vector<StageId> ReferenceOracle::live_readers(
    const BlockId& block) const {
  std::vector<StageId> out;
  for (const Ref& r : refs_of(block)) {
    if (live(r)) out.push_back(r.stage);
  }
  return out;
}

bool ReferenceOracle::stage_finished(StageId stage) const {
  DAGON_CHECK(stage.valid() &&
              static_cast<std::size_t>(stage.value()) < finished_.size());
  return finished_[static_cast<std::size_t>(stage.value())];
}

CpuWork ReferenceOracle::priority_value(StageId stage) const {
  DAGON_CHECK(stage.valid() &&
              static_cast<std::size_t>(stage.value()) < pv_.size());
  return pv_[static_cast<std::size_t>(stage.value())];
}

}  // namespace dagon
