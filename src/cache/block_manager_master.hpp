// BlockManagerMaster: cluster-wide view of block copies and the decision
// point for caching, lookup, proactive eviction and prefetch — the
// simulator analogue of the paper's modified Spark component (Fig. 7).
//
// Physical data rules (see DESIGN.md §4):
//  * input RDD blocks live on HDFS node disks per HdfsPlacement, forever;
//  * every produced block is durably written to the producer node's disk;
//  * memory copies are the cache: eviction drops the memory copy only.
//
// All per-block state is stored in flat arrays indexed by the DAG's
// dense block ordinal (JobDag::block_ord); ordinal order is ascending
// BlockId order, so index-order walks are the deterministic walks the
// sorted_view discipline used to provide (DESIGN.md §11).
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "cache/block_manager.hpp"
#include "cluster/cost_model.hpp"
#include "cluster/hdfs.hpp"
#include "cluster/topology.hpp"
#include "common/fsm.hpp"

namespace dagon {

class BlockManagerMaster {
 public:
  /// `cache_enabled = false` models the paper's caching-disabled ablation
  /// (Fig. 9/10): no block is ever admitted to memory.
  BlockManagerMaster(const Topology& topo, const JobDag& dag,
                     const HdfsPlacement& hdfs, ReferenceOracle& oracle,
                     const CachePolicy& policy, bool cache_enabled = true);

  /// Seeds memory with the DAG's initially-cached input partitions (the
  /// black blocks of Fig. 1): each goes to the first executor of its
  /// primary HDFS replica node.
  void seed_initial_cache(SimTime now);

  /// Where executor `reader` would read `block` from right now, best
  /// source first. Throws InvariantError if the block exists nowhere
  /// (reading a block before its producer finished is a scheduler bug).
  struct Lookup {
    BlockSource source = BlockSource::LocalDisk;
    /// Holder executor for memory sources.
    ExecutorId holder = ExecutorId::invalid();
    /// Holder node for disk sources.
    NodeId disk_node = NodeId::invalid();
  };
  [[nodiscard]] Lookup lookup(const BlockId& block, ExecutorId reader) const;

  [[nodiscard]] bool exists(const BlockId& block) const;

  /// A task on `exec` finished producing `block`: record the durable
  /// disk copy and (for cacheable RDDs) try to admit it to memory.
  void on_block_produced(const BlockId& block, ExecutorId exec, SimTime now);

  /// A task on `exec` read `block` via `how`. Updates recency; on a disk
  /// read of a cacheable RDD, admits the block into the reader's memory
  /// (Spark caches a persisted partition where it is first materialized).
  void on_block_read(const BlockId& block, ExecutorId exec,
                     const Lookup& how, SimTime now);

  /// Proactively evicts dead blocks everywhere (policies that opt in).
  /// Returns the number of blocks dropped.
  int proactive_sweep();

  /// Best node-local prefetch candidate for `exec`: a disk-resident
  /// block with no memory copy anywhere, ranked by the policy's prefetch
  /// priority. Returns nullopt when the policy does not prefetch or no
  /// candidate fits.
  struct PrefetchChoice {
    BlockId block;
    Bytes bytes{};
    NodeId from_disk = NodeId::invalid();
  };
  [[nodiscard]] std::optional<PrefetchChoice> prefetch_candidate(
      ExecutorId exec) const;

  /// Completes a prefetch: admit into `exec`'s memory (may be refused if
  /// the cache filled up meanwhile).
  bool finish_prefetch(const BlockId& block, ExecutorId exec, SimTime now);

  /// Executors holding `block` in memory (for locality preferences).
  /// Returns a view into internal state; invalidated by any mutation.
  [[nodiscard]] const std::vector<ExecutorId>& memory_holders(
      const BlockId& block) const {
    return memory_copies_[ord(block)];
  }

  /// Nodes holding `block` on disk (HDFS replicas + produced copies,
  /// deduplicated). Returns a view into a lazily maintained per-block
  /// cache — no per-call allocation; invalidated when a new durable copy
  /// of the block appears.
  [[nodiscard]] const std::vector<NodeId>& disk_holders(
      const BlockId& block) const;

  /// HDFS replica nodes of `block` (empty for non-input blocks).
  [[nodiscard]] const std::vector<NodeId>& hdfs_replicas(
      const BlockId& block) const {
    return hdfs_->replicas(block);
  }

  /// Nodes holding a produced durable copy of `block`.
  [[nodiscard]] const std::vector<NodeId>& produced_disk_nodes(
      const BlockId& block) const {
    return produced_disk_[ord(block)];
  }

  // -- fault injection ----------------------------------------------------

  /// Everything an executor crash destroyed, from the master's view.
  struct DropResult {
    std::int64_t memory_dropped = 0;
    std::int64_t disk_dropped = 0;
    /// Disk copies re-materialized from a surviving memory holder (keeps
    /// the "every memory block is disk-backed" invariant that makes
    /// normal eviction safe).
    std::int64_t rereplicated = 0;
    /// Blocks whose last copy died: lineage recovery must recompute them.
    std::vector<BlockId> lost;
  };

  /// Executor `exec` crashed: drop its memory copies and every produced
  /// durable disk copy it wrote. Blocks with a surviving memory copy get
  /// a replacement disk copy at the holder's node; blocks with no copy
  /// left anywhere are returned in `lost` (ascending id order).
  DropResult drop_executor(ExecutorId exec);

  /// Random block loss: destroys one memory copy (the disk copy, if any,
  /// survives). Returns false if `exec` no longer holds the block.
  bool drop_memory_block(const BlockId& block, ExecutorId exec);

  // -- gray failures ------------------------------------------------------

  /// Marks `exec` suspect (or clears the mark). Suspect executors still
  /// serve reads — a gray-failed executor is reachable, just untrusted —
  /// but their memory copies grant no locality preference, so the
  /// scheduler stops steering tasks toward them. Bumps
  /// placement_version() on a change so LocalityCache resyncs.
  void set_executor_suspect(ExecutorId exec, bool suspect);
  [[nodiscard]] bool executor_suspect(ExecutorId exec) const {
    return suspect_[static_cast<std::size_t>(exec.value())] != 0;
  }

  /// Any memory holder of `block` that is not suspect? (The locality
  /// layer's definition of a usable Process preference.)
  [[nodiscard]] bool any_healthy_memory_holder(const BlockId& block) const;

  /// Proactive re-replication: every block whose copies (memory holders,
  /// produced-disk attributions) all live on *currently suspect*
  /// executors and that has no HDFS replica would be fully lost if those
  /// suspects die. Write each such block a durable disk copy attributed
  /// to `target` (same re-materialization as drop_executor), so a later
  /// death degrades to a plain crash with zero lineage recomputes.
  struct RereplicationResult {
    std::int64_t blocks = 0;
    Bytes bytes{};
  };
  RereplicationResult rereplicate_suspect_blocks(ExecutorId target);

  [[nodiscard]] BlockManager& manager(ExecutorId exec);
  [[nodiscard]] const BlockManager& manager(ExecutorId exec) const;

  [[nodiscard]] const ReferenceOracle& oracle() const { return *oracle_; }
  [[nodiscard]] bool cache_enabled() const { return cache_enabled_; }

  [[nodiscard]] Bytes block_bytes(const BlockId& block) const;

  /// Lifetime counters for metrics.
  struct Counters {
    std::int64_t insertions = 0;
    std::int64_t evictions = 0;
    std::int64_t proactive_evictions = 0;
    std::int64_t prefetches = 0;
    std::int64_t rejected_admissions = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Monotonic counter bumped on every change of block placement
  /// (memory admit/evict, new durable disk copy). Consumers caching
  /// placement-derived data (e.g. LocalityCache) compare it to decide
  /// whether their caches are still valid.
  [[nodiscard]] std::uint64_t placement_version() const {
    return placement_version_;
  }

  // -- lifecycle (fsm::StateMachine<BlockResidency>) -----------------------

  /// Current residency of `block`. Input blocks start at Disk (HDFS);
  /// a never-produced block reports Absent. Tracked through the block
  /// transition table purely as a shadow of the copy maps — placement
  /// decisions never read it, so it cannot perturb fingerprints.
  [[nodiscard]] BlockResidency residency(const BlockId& block) const {
    return residency_[ord(block)];
  }

  /// Checks every tracked block's residency against the copy maps
  /// (Memory ⟺ a memory holder exists, Disk/Evicted ⟹ durable copy
  /// only, Lost/Absent ⟹ no copy anywhere). Throws InvariantError on
  /// divergence; the driver runs this at quiescence.
  void verify_residency() const;

  /// Release-build sink for illegal residency transitions (folded into
  /// metrics_fingerprint by the driver). Null = throw-only enforcement.
  void set_fsm_violations(fsm::Violations* sink) { fsm_violations_ = sink; }

 private:
  [[nodiscard]] std::size_t ord(const BlockId& block) const {
    return static_cast<std::size_t>(dag_->block_ord(block));
  }

  void apply_insert(const BlockManager::InsertResult& result,
                    const BlockId& block, ExecutorId exec);
  void note_evicted(const BlockId& block, ExecutorId exec);
  /// Routes every residency write through the transition table.
  void set_residency(const BlockId& block, BlockResidency to);

  // -- prefetch candidate index -------------------------------------------
  // prefetchable_[o] flags blocks that are cacheable, durably on disk,
  // and in no executor's memory; prefetch_by_node_[n] holds exactly the
  // flagged ordinals with a disk copy (HDFS or produced) on node n, so
  // prefetch_candidate() scans only the node-local subset. Invariant:
  // flagged ⟺ indexed under every current disk-holder node. Any code
  // mutating a flagged block's disk-node set must unindex first and
  // reindex after (see drop_executor / on_block_produced).
  void index_prefetchable(std::size_t o);
  void unindex_prefetchable(std::size_t o);
  void add_prefetchable(std::size_t o);
  void remove_prefetchable(std::size_t o);

  const Topology* topo_;
  const JobDag* dag_;
  const HdfsPlacement* hdfs_;
  ReferenceOracle* oracle_;
  const CachePolicy* policy_;
  bool cache_enabled_;

  std::vector<BlockManager> managers_;  // indexed by executor id
  /// Executors holding a memory copy, indexed by block ordinal.
  std::vector<std::vector<ExecutorId>> memory_copies_;
  /// Produced blocks' durable disk nodes (inputs are answered via
  /// hdfs_), indexed by block ordinal.
  std::vector<std::vector<NodeId>> produced_disk_;
  /// Executors that wrote a durable copy of each produced block — the
  /// attribution drop_executor() needs to rebuild produced_disk_ after a
  /// crash. Indexed by block ordinal.
  std::vector<std::vector<ExecutorId>> produced_by_;
  /// Prefetch candidate flags + per-node candidate sets (see above).
  std::vector<char> prefetchable_;
  std::vector<std::set<std::int64_t>> prefetch_by_node_;
  /// 1 = suspected by the failure detector (indexed by executor id).
  std::vector<char> suspect_;
  /// Lazily built union of hdfs_replicas + produced_disk_nodes per
  /// block ordinal, so disk_holders() is a view. Invalidated when a new
  /// produced copy lands (disk copies are never removed otherwise).
  mutable std::vector<std::vector<NodeId>> disk_union_;
  mutable std::vector<char> disk_union_valid_;
  /// Shadow lifecycle state per block ordinal
  /// (fsm::StateMachine<BlockResidency>); Absent until seeded/produced.
  /// Every write flows through set_residency() / fsm::transition().
  std::vector<BlockResidency> residency_;
  fsm::Violations* fsm_violations_ = nullptr;
  Counters counters_;
  std::uint64_t placement_version_ = 1;
};

}  // namespace dagon
