#include "cache/block_manager.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "cache/ref_oracle.hpp"
#include "common/error.hpp"

namespace dagon {

BlockManager::BlockManager(ExecutorId executor, Bytes capacity,
                           const CachePolicy& policy)
    : executor_(executor), capacity_(capacity), policy_(&policy) {
  DAGON_CHECK(capacity >= Bytes{0});
}

namespace {

struct EntryLess {
  bool operator()(const BlockManager::Entry& e, const BlockId& id) const {
    return e.id < id;
  }
};

}  // namespace

const BlockManager::Entry* BlockManager::find(const BlockId& block) const {
  const auto it =
      std::lower_bound(blocks_.begin(), blocks_.end(), block, EntryLess{});
  if (it == blocks_.end() || it->id != block) return nullptr;
  return &*it;
}

BlockManager::Entry* BlockManager::find(const BlockId& block) {
  return const_cast<Entry*>(std::as_const(*this).find(block));
}

double BlockManager::min_retention(const ReferenceOracle& oracle) const {
  double best = std::numeric_limits<double>::infinity();
  for (const Entry& e : blocks_) {
    best = std::min(
        best, policy_->retention_priority(e.id, e.meta.last_access, oracle));
  }
  return best;
}

BlockManager::InsertResult BlockManager::insert(const BlockId& block,
                                                Bytes bytes, SimTime now,
                                                const ReferenceOracle& oracle,
                                                bool strict_admission) {
  InsertResult result;
  DAGON_CHECK(bytes >= Bytes{0});
  if (Entry* e = find(block)) {
    e->meta.last_access = now;
    result.admitted = true;
    return result;
  }
  if (bytes > capacity_) return result;  // can never fit

  // Select the victim set up-front (smallest retention first) so a
  // refused admission leaves the cache untouched.
  std::vector<BlockId> victims;
  if (used_ + bytes > capacity_) {
    struct Candidate {
      double retention;
      SimTime last_access;
      BlockId block;
      Bytes bytes;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(blocks_.size());
    for (const Entry& e : blocks_) {
      candidates.push_back(Candidate{
          policy_->retention_priority(e.id, e.meta.last_access, oracle),
          e.meta.last_access, e.id, e.meta.bytes});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.retention != b.retention) {
                  return a.retention < b.retention;
                }
                if (a.last_access != b.last_access) {
                  return a.last_access < b.last_access;
                }
                return a.block < b.block;
              });
    const double new_ret = policy_->retention_priority(block, now, oracle);
    Bytes freed{};
    for (const Candidate& c : candidates) {
      if (used_ - freed + bytes <= capacity_) break;
      // Value-aware policies (MRD/LRP) refuse to displace blocks that
      // are at least as valuable as the incoming one — equal-value swaps
      // would only churn the cache. LRU always admits (except on the
      // strict prefetch path, which LRU never uses).
      if ((strict_admission || !policy_->always_admit()) &&
          c.retention >= new_ret) {
        return result;
      }
      victims.push_back(c.block);
      freed += c.bytes;
    }
  }
  for (const BlockId& v : victims) remove(v);
  result.evicted = std::move(victims);
  const auto it =
      std::lower_bound(blocks_.begin(), blocks_.end(), block, EntryLess{});
  blocks_.insert(it, Entry{block, CachedBlock{bytes, now, now}});
  used_ += bytes;
  inserted_since_sweep_ = true;
  result.admitted = true;
  return result;
}

void BlockManager::touch(const BlockId& block, SimTime now) {
  if (Entry* e = find(block)) e->meta.last_access = now;
}

bool BlockManager::remove(const BlockId& block) {
  const auto it =
      std::lower_bound(blocks_.begin(), blocks_.end(), block, EntryLess{});
  if (it == blocks_.end() || it->id != block) return false;
  used_ -= it->meta.bytes;
  blocks_.erase(it);
  return true;
}

std::vector<BlockId> BlockManager::evict_dead(const ReferenceOracle& oracle) {
  std::vector<BlockId> evicted;
  if (!policy_->proactive_eviction()) return evicted;
  // A block's deadness depends only on the block and oracle state, and
  // the previous sweep removed everything dead then — so with the same
  // oracle epoch and no new inserts, there is nothing to find.
  if (swept_epoch_ == oracle.epoch() && !inserted_since_sweep_) {
    return evicted;
  }
  // Ascending block id (storage order) so the evicted list — and the
  // master's bookkeeping driven by it — is deterministic.
  std::size_t keep = 0;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (policy_->is_dead(blocks_[i].id, oracle)) {
      used_ -= blocks_[i].meta.bytes;
      evicted.push_back(blocks_[i].id);
    } else {
      blocks_[keep++] = blocks_[i];
    }
  }
  blocks_.resize(keep);
  swept_epoch_ = oracle.epoch();
  inserted_since_sweep_ = false;
  return evicted;
}

}  // namespace dagon
