#include "cache/block_manager.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace dagon {

BlockManager::BlockManager(ExecutorId executor, Bytes capacity,
                           const CachePolicy& policy)
    : executor_(executor), capacity_(capacity), policy_(&policy) {
  DAGON_CHECK(capacity >= 0);
}

std::unordered_map<BlockId, BlockManager::CachedBlock>::const_iterator
BlockManager::find_victim(const ReferenceOracle& oracle) const {
  auto victim = blocks_.end();
  double victim_ret = 0.0;
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    const double ret =
        policy_->retention_priority(it->first, it->second.last_access, oracle);
    const bool better =
        victim == blocks_.end() || ret < victim_ret ||
        (ret == victim_ret &&
         (it->second.last_access < victim->second.last_access ||
          (it->second.last_access == victim->second.last_access &&
           it->first < victim->first)));
    if (better) {
      victim = it;
      victim_ret = ret;
    }
  }
  return victim;
}

double BlockManager::min_retention(const ReferenceOracle& oracle) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [id, meta] : blocks_) {
    best = std::min(best,
                    policy_->retention_priority(id, meta.last_access, oracle));
  }
  return best;
}

BlockManager::InsertResult BlockManager::insert(const BlockId& block,
                                                Bytes bytes, SimTime now,
                                                const ReferenceOracle& oracle,
                                                bool strict_admission) {
  InsertResult result;
  DAGON_CHECK(bytes >= 0);
  if (const auto it = blocks_.find(block); it != blocks_.end()) {
    it->second.last_access = now;
    result.admitted = true;
    return result;
  }
  if (bytes > capacity_) return result;  // can never fit

  // Select the victim set up-front (smallest retention first) so a
  // refused admission leaves the cache untouched.
  std::vector<BlockId> victims;
  if (used_ + bytes > capacity_) {
    struct Candidate {
      double retention;
      SimTime last_access;
      BlockId block;
      Bytes bytes;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(blocks_.size());
    for (const auto& [id, meta] : blocks_) {
      candidates.push_back(Candidate{
          policy_->retention_priority(id, meta.last_access, oracle),
          meta.last_access, id, meta.bytes});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.retention != b.retention) {
                  return a.retention < b.retention;
                }
                if (a.last_access != b.last_access) {
                  return a.last_access < b.last_access;
                }
                return a.block < b.block;
              });
    const double new_ret = policy_->retention_priority(block, now, oracle);
    Bytes freed = 0;
    for (const Candidate& c : candidates) {
      if (used_ - freed + bytes <= capacity_) break;
      // Value-aware policies (MRD/LRP) refuse to displace blocks that
      // are at least as valuable as the incoming one — equal-value swaps
      // would only churn the cache. LRU always admits (except on the
      // strict prefetch path, which LRU never uses).
      if ((strict_admission || !policy_->always_admit()) &&
          c.retention >= new_ret) {
        return result;
      }
      victims.push_back(c.block);
      freed += c.bytes;
    }
  }
  for (const BlockId& v : victims) {
    const auto it = blocks_.find(v);
    used_ -= it->second.bytes;
    blocks_.erase(it);
  }
  result.evicted = std::move(victims);
  blocks_.emplace(block, CachedBlock{bytes, now, now});
  used_ += bytes;
  result.admitted = true;
  return result;
}

void BlockManager::touch(const BlockId& block, SimTime now) {
  if (const auto it = blocks_.find(block); it != blocks_.end()) {
    it->second.last_access = now;
  }
}

bool BlockManager::remove(const BlockId& block) {
  const auto it = blocks_.find(block);
  if (it == blocks_.end()) return false;
  used_ -= it->second.bytes;
  blocks_.erase(it);
  return true;
}

std::vector<BlockId> BlockManager::evict_dead(const ReferenceOracle& oracle) {
  std::vector<BlockId> evicted;
  if (!policy_->proactive_eviction()) return evicted;
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (policy_->is_dead(it->first, oracle)) {
      used_ -= it->second.bytes;
      evicted.push_back(it->first);
      it = blocks_.erase(it);
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace dagon
