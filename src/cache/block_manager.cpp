#include "cache/block_manager.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/sorted_view.hpp"

namespace dagon {

BlockManager::BlockManager(ExecutorId executor, Bytes capacity,
                           const CachePolicy& policy)
    : executor_(executor), capacity_(capacity), policy_(&policy) {
  DAGON_CHECK(capacity >= 0);
}

double BlockManager::min_retention(const ReferenceOracle& oracle) const {
  double best = std::numeric_limits<double>::infinity();
  // dagonlint: allow(unordered-iter): min over independently computed
  // doubles is iteration-order independent.
  for (const auto& [id, meta] : blocks_) {
    best = std::min(best,
                    policy_->retention_priority(id, meta.last_access, oracle));
  }
  return best;
}

BlockManager::InsertResult BlockManager::insert(const BlockId& block,
                                                Bytes bytes, SimTime now,
                                                const ReferenceOracle& oracle,
                                                bool strict_admission) {
  InsertResult result;
  DAGON_CHECK(bytes >= 0);
  if (const auto it = blocks_.find(block); it != blocks_.end()) {
    it->second.last_access = now;
    result.admitted = true;
    return result;
  }
  if (bytes > capacity_) return result;  // can never fit

  // Select the victim set up-front (smallest retention first) so a
  // refused admission leaves the cache untouched.
  std::vector<BlockId> victims;
  if (used_ + bytes > capacity_) {
    struct Candidate {
      double retention;
      SimTime last_access;
      BlockId block;
      Bytes bytes;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(blocks_.size());
    // dagonlint: allow(unordered-iter): collection order is erased by
    // the total (retention, last_access, block) sort just below.
    for (const auto& [id, meta] : blocks_) {
      candidates.push_back(Candidate{
          policy_->retention_priority(id, meta.last_access, oracle),
          meta.last_access, id, meta.bytes});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.retention != b.retention) {
                  return a.retention < b.retention;
                }
                if (a.last_access != b.last_access) {
                  return a.last_access < b.last_access;
                }
                return a.block < b.block;
              });
    const double new_ret = policy_->retention_priority(block, now, oracle);
    Bytes freed = 0;
    for (const Candidate& c : candidates) {
      if (used_ - freed + bytes <= capacity_) break;
      // Value-aware policies (MRD/LRP) refuse to displace blocks that
      // are at least as valuable as the incoming one — equal-value swaps
      // would only churn the cache. LRU always admits (except on the
      // strict prefetch path, which LRU never uses).
      if ((strict_admission || !policy_->always_admit()) &&
          c.retention >= new_ret) {
        return result;
      }
      victims.push_back(c.block);
      freed += c.bytes;
    }
  }
  for (const BlockId& v : victims) {
    const auto it = blocks_.find(v);
    used_ -= it->second.bytes;
    blocks_.erase(it);
  }
  result.evicted = std::move(victims);
  blocks_.emplace(block, CachedBlock{bytes, now, now});
  used_ += bytes;
  result.admitted = true;
  return result;
}

void BlockManager::touch(const BlockId& block, SimTime now) {
  if (const auto it = blocks_.find(block); it != blocks_.end()) {
    it->second.last_access = now;
  }
}

bool BlockManager::remove(const BlockId& block) {
  const auto it = blocks_.find(block);
  if (it == blocks_.end()) return false;
  used_ -= it->second.bytes;
  blocks_.erase(it);
  return true;
}

std::vector<BlockId> BlockManager::evict_dead(const ReferenceOracle& oracle) {
  std::vector<BlockId> evicted;
  if (!policy_->proactive_eviction()) return evicted;
  // Ascending block id so the evicted list (and the master's bookkeeping
  // driven by it) does not depend on hash order.
  for (const BlockId& id : sorted_keys(blocks_)) {
    const auto it = blocks_.find(id);
    if (!policy_->is_dead(it->first, oracle)) continue;
    used_ -= it->second.bytes;
    evicted.push_back(it->first);
    blocks_.erase(it);
  }
  return evicted;
}

}  // namespace dagon
