#include "cache/cache_policy.hpp"

#include "common/error.hpp"

namespace dagon {

bool CachePolicy::is_dead(const BlockId& block,
                          const ReferenceOracle& oracle) const {
  return oracle.remaining_ref_count(block) == 0;
}

double LruPolicy::retention_priority(const BlockId& /*block*/,
                                     SimTime last_access,
                                     const ReferenceOracle& /*oracle*/) const {
  return static_cast<double>(last_access.count());
}

double LrcPolicy::retention_priority(const BlockId& block,
                                     SimTime /*last_access*/,
                                     const ReferenceOracle& oracle) const {
  return static_cast<double>(oracle.remaining_ref_count(block));
}

double MrdPolicy::retention_priority(const BlockId& block,
                                     SimTime /*last_access*/,
                                     const ReferenceOracle& oracle) const {
  // Furthest reference distance evicted first -> smallest retention.
  const int d = oracle.stage_distance(block);
  if (d == ReferenceOracle::kNeverUsed) return -1e18;
  return -static_cast<double>(d);
}

std::optional<double> MrdPolicy::prefetch_priority(
    const BlockId& block, const ReferenceOracle& oracle) const {
  const int d = oracle.stage_distance(block);
  if (d == ReferenceOracle::kNeverUsed) return std::nullopt;
  return -static_cast<double>(d);  // nearest first
}

double LrpPolicy::retention_priority(const BlockId& block,
                                     SimTime /*last_access*/,
                                     const ReferenceOracle& oracle) const {
  return static_cast<double>(oracle.reference_priority(block).count());
}

std::optional<double> LrpPolicy::prefetch_priority(
    const BlockId& block, const ReferenceOracle& oracle) const {
  const CpuWork p = oracle.reference_priority(block);
  if (p <= CpuWork{0}) return std::nullopt;
  return static_cast<double>(p.count());
}

double LercPolicy::retention_priority(const BlockId& block,
                                      SimTime /*last_access*/,
                                      const ReferenceOracle& oracle) const {
  // Effective count dominates; the raw count breaks ties inside one
  // effectiveness class (both are bounded by the stage count, so the
  // scaled sum stays exact in a double).
  return static_cast<double>(oracle.effective_ref_count(block)) * 65536.0 +
         static_cast<double>(oracle.remaining_ref_count(block));
}

std::unique_ptr<CachePolicy> make_cache_policy(CachePolicyKind kind) {
  switch (kind) {
    case CachePolicyKind::Lru: return std::make_unique<LruPolicy>();
    case CachePolicyKind::Lrc: return std::make_unique<LrcPolicy>();
    case CachePolicyKind::Mrd: return std::make_unique<MrdPolicy>();
    case CachePolicyKind::Lrp: return std::make_unique<LrpPolicy>();
    case CachePolicyKind::Lerc: return std::make_unique<LercPolicy>();
  }
  throw ConfigError(std::string("unknown cache policy kind (expected ") +
                    kCachePolicyNames + ")");
}

}  // namespace dagon
