#include "cache/block_manager_master.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/sorted_view.hpp"

namespace dagon {

BlockManagerMaster::BlockManagerMaster(const Topology& topo,
                                       const JobDag& dag,
                                       const HdfsPlacement& hdfs,
                                       ReferenceOracle& oracle,
                                       const CachePolicy& policy,
                                       bool cache_enabled)
    : topo_(&topo),
      dag_(&dag),
      hdfs_(&hdfs),
      oracle_(&oracle),
      policy_(&policy),
      cache_enabled_(cache_enabled) {
  managers_.reserve(topo.num_executors());
  for (const Executor& e : topo.executors()) {
    managers_.emplace_back(e.id, e.cache_bytes, policy);
  }
  suspect_.assign(topo.num_executors(), 0);
  // Input blocks are born on HDFS node disks: Disk is their *initial*
  // lifecycle state, seeded directly (there is no edge into it from
  // Absent — only produced blocks materialize).
  for (const Rdd& rdd : dag.rdds()) {
    if (!rdd.is_input) continue;
    for (std::int32_t p = 0; p < rdd.num_partitions; ++p) {
      const BlockId block{rdd.id, p};
      if (!hdfs.replicas(block).empty()) {
        residency_.emplace(block, BlockResidency::Disk);
      }
    }
  }
  // Cacheable input blocks start on HDFS disk with no memory copy: they
  // are the initial prefetch candidates (MRD pre-warms the first
  // stages' inputs this way).
  if (cache_enabled_) {
    for (const Rdd& rdd : dag.rdds()) {
      if (!rdd.is_input || !rdd.cacheable) continue;
      for (std::int32_t p = 0; p < rdd.num_partitions; ++p) {
        prefetchable_.insert(BlockId{rdd.id, p});
      }
    }
  }
}

BlockResidency BlockManagerMaster::residency(const BlockId& block) const {
  const auto it = residency_.find(block);
  return it == residency_.end() ? BlockResidency::Absent : it->second;
}

void BlockManagerMaster::set_residency(const BlockId& block,
                                       BlockResidency to) {
  // Entity id packs (rdd, partition) for transition diagnostics.
  const auto entity =
      (static_cast<std::int64_t>(block.rdd.value()) << 32) | block.partition;
  const auto it = residency_.try_emplace(block, BlockResidency::Absent).first;
  fsm::transition(it->second, to, entity, fsm_violations_);
}

void BlockManagerMaster::verify_residency() const {
  for (const auto& [block, r] : sorted_view(residency_)) {
    const bool in_memory = memory_copies_.contains(block);
    switch (r) {
      case BlockResidency::Absent:
      case BlockResidency::Lost:
        DAGON_CHECK_MSG(!exists(block),
                        "block " << block << " is " << to_string(r)
                                 << " but a copy exists");
        break;
      case BlockResidency::Materializing:
        DAGON_CHECK_MSG(false, "block " << block
                                        << " stuck Materializing");
        break;
      case BlockResidency::Memory:
        DAGON_CHECK_MSG(in_memory,
                        "block " << block << " is Memory but no holder");
        break;
      case BlockResidency::Disk:
      case BlockResidency::Evicted:
        DAGON_CHECK_MSG(!in_memory && exists(block),
                        "block " << block << " is " << to_string(r)
                                 << " but copies diverge");
        break;
    }
  }
}

Bytes BlockManagerMaster::block_bytes(const BlockId& block) const {
  return dag_->rdd(block.rdd).bytes_per_partition;
}

void BlockManagerMaster::seed_initial_cache(SimTime now) {
  if (!cache_enabled_) return;
  for (const Rdd& rdd : dag_->rdds()) {
    if (!rdd.is_input || rdd.initially_cached_partitions == 0) continue;
    for (std::int32_t p = 0; p < rdd.initially_cached_partitions; ++p) {
      const BlockId block{rdd.id, p};
      const auto& replicas = hdfs_->replicas(block);
      DAGON_CHECK_MSG(!replicas.empty(),
                      "initially-cached block " << block << " not on HDFS");
      const Node& node = topo_->node(replicas.front());
      DAGON_CHECK(!node.executors.empty());
      const ExecutorId exec = node.executors.front();
      auto result = managers_[static_cast<std::size_t>(exec.value())].insert(
          block, rdd.bytes_per_partition, now, *oracle_);
      apply_insert(result, block, exec);
    }
  }
}

bool BlockManagerMaster::exists(const BlockId& block) const {
  if (memory_copies_.contains(block)) return true;
  if (produced_disk_.contains(block)) return true;
  return !hdfs_->replicas(block).empty();
}

BlockManagerMaster::Lookup BlockManagerMaster::lookup(
    const BlockId& block, ExecutorId reader) const {
  const NodeId my_node = topo_->node_of(reader);
  const RackId my_rack = topo_->rack_of(my_node);

  Lookup best;
  int best_rank = INT32_MAX;
  auto consider = [&](BlockSource src, ExecutorId holder, NodeId disk_node) {
    const int rank = static_cast<int>(src);
    if (rank < best_rank) {
      best_rank = rank;
      best = Lookup{src, holder, disk_node};
    }
  };

  if (const auto it = memory_copies_.find(block);
      it != memory_copies_.end()) {
    for (const ExecutorId holder : it->second) {
      if (holder == reader) {
        consider(BlockSource::LocalMemory, holder, NodeId::invalid());
      } else {
        const NodeId hn = topo_->node_of(holder);
        if (hn == my_node) {
          consider(BlockSource::SameNodeMemory, holder, NodeId::invalid());
        } else if (topo_->rack_of(hn) == my_rack) {
          consider(BlockSource::RackMemory, holder, NodeId::invalid());
        } else {
          consider(BlockSource::RemoteMemory, holder, NodeId::invalid());
        }
      }
    }
  }

  auto consider_disk = [&](NodeId n) {
    if (n == my_node) {
      consider(BlockSource::LocalDisk, ExecutorId::invalid(), n);
    } else if (topo_->rack_of(n) == my_rack) {
      consider(BlockSource::RackDisk, ExecutorId::invalid(), n);
    } else {
      consider(BlockSource::RemoteDisk, ExecutorId::invalid(), n);
    }
  };
  for (const NodeId n : hdfs_->replicas(block)) consider_disk(n);
  if (const auto it = produced_disk_.find(block);
      it != produced_disk_.end()) {
    for (const NodeId n : it->second) consider_disk(n);
  }

  DAGON_CHECK_MSG(best_rank != INT32_MAX,
                  "block " << block << " read before it exists anywhere");
  return best;
}

void BlockManagerMaster::apply_insert(
    const BlockManager::InsertResult& result, const BlockId& block,
    ExecutorId exec) {
  for (const BlockId& evicted : result.evicted) {
    note_evicted(evicted, exec);
    ++counters_.evictions;
  }
  if (result.admitted) {
    auto& holders = memory_copies_[block];
    if (std::find(holders.begin(), holders.end(), exec) == holders.end()) {
      holders.push_back(exec);
      ++placement_version_;
    }
    // First holder promotes the block to Memory (from Materializing on
    // the produce path, Disk on a read-admit, Evicted on a re-admit).
    if (residency(block) != BlockResidency::Memory) {
      set_residency(block, BlockResidency::Memory);
    }
    prefetchable_.erase(block);
    ++counters_.insertions;
  } else {
    ++counters_.rejected_admissions;
    // A refused produce-time admission still has its durable disk copy.
    if (residency(block) == BlockResidency::Materializing) {
      set_residency(block, BlockResidency::Disk);
    }
    if (dag_->rdd(block.rdd).cacheable && !memory_copies_.contains(block)) {
      prefetchable_.insert(block);
    }
  }
}

void BlockManagerMaster::note_evicted(const BlockId& block, ExecutorId exec) {
  const auto it = memory_copies_.find(block);
  if (it == memory_copies_.end()) return;
  auto& holders = it->second;
  holders.erase(std::remove(holders.begin(), holders.end(), exec),
                holders.end());
  ++placement_version_;
  if (holders.empty()) {
    memory_copies_.erase(it);
    // Last memory copy gone; the durable disk copy keeps the block
    // recoverable (eviction is always safe, DESIGN.md §4).
    set_residency(block, BlockResidency::Evicted);
    if (dag_->rdd(block.rdd).cacheable) prefetchable_.insert(block);
  }
}

void BlockManagerMaster::on_block_produced(const BlockId& block,
                                           ExecutorId exec, SimTime now) {
  const NodeId node = topo_->node_of(exec);
  auto& producers = produced_by_[block];
  if (std::find(producers.begin(), producers.end(), exec) ==
      producers.end()) {
    producers.push_back(exec);
  }
  auto& disks = produced_disk_[block];
  if (std::find(disks.begin(), disks.end(), node) == disks.end()) {
    disks.push_back(node);
    disk_union_.erase(block);
    ++placement_version_;
  }
  // Lifecycle: Absent → Materializing on first production, Lost →
  // Materializing on a lineage recompute; apply_insert (or the
  // non-cacheable early-out below) then settles Memory vs Disk.
  set_residency(block, BlockResidency::Materializing);
  const Rdd& rdd = dag_->rdd(block.rdd);
  if (!cache_enabled_ || !rdd.cacheable || rdd.bytes_per_partition <= 0) {
    set_residency(block, BlockResidency::Disk);
    return;
  }
  auto result = managers_[static_cast<std::size_t>(exec.value())].insert(
      block, rdd.bytes_per_partition, now, *oracle_);
  apply_insert(result, block, exec);
}

void BlockManagerMaster::on_block_read(const BlockId& block, ExecutorId exec,
                                       const Lookup& how, SimTime now) {
  if (!cache_enabled_) return;
  if (how.source == BlockSource::LocalMemory) {
    managers_[static_cast<std::size_t>(exec.value())].touch(block, now);
    return;
  }
  if (is_memory_source(how.source)) {
    // Remote-memory reads refresh the holder's recency but do not
    // duplicate the block locally (Spark semantics).
    if (how.holder.valid()) {
      managers_[static_cast<std::size_t>(how.holder.value())].touch(block,
                                                                    now);
    }
    return;
  }
  // Disk read of a persisted RDD: materialize in the reader's cache.
  const Rdd& rdd = dag_->rdd(block.rdd);
  if (!rdd.cacheable || rdd.bytes_per_partition <= 0) return;
  auto result = managers_[static_cast<std::size_t>(exec.value())].insert(
      block, rdd.bytes_per_partition, now, *oracle_);
  apply_insert(result, block, exec);
}

int BlockManagerMaster::proactive_sweep() {
  if (!cache_enabled_ || !policy_->proactive_eviction()) return 0;
  int dropped = 0;
  for (BlockManager& m : managers_) {
    for (const BlockId& b : m.evict_dead(*oracle_)) {
      note_evicted(b, m.executor());
      ++counters_.proactive_evictions;
      ++dropped;
    }
  }
  return dropped;
}

std::optional<BlockManagerMaster::PrefetchChoice>
BlockManagerMaster::prefetch_candidate(ExecutorId exec) const {
  if (!cache_enabled_) return std::nullopt;
  const NodeId my_node = topo_->node_of(exec);
  const BlockManager& mgr =
      managers_[static_cast<std::size_t>(exec.value())];

  std::optional<PrefetchChoice> best;
  double best_priority = 0.0;
  // Prefetch fills FREE space only: "when the free cache space reaches a
  // certain threshold, it prefetches the in-disk data block whose
  // reference priority is the largest" (§IV). Eviction-to-prefetch (as
  // in MRD's own paper) measured net-negative here — see the prefetch
  // ablation bench. Node-local disk blocks only: prefetching is a local
  // disk->memory promotion that overlaps computation. The candidate set
  // is maintained incrementally (cacheable + on disk + not in memory).
  for (const BlockId& block : prefetchable_) {
    const Bytes bytes = block_bytes(block);
    if (bytes <= 0 || bytes > mgr.free_bytes()) continue;
    const auto& hdfs_nodes = hdfs_->replicas(block);
    const auto& disk_nodes = produced_disk_nodes(block);
    const bool local =
        std::find(hdfs_nodes.begin(), hdfs_nodes.end(), my_node) !=
            hdfs_nodes.end() ||
        std::find(disk_nodes.begin(), disk_nodes.end(), my_node) !=
            disk_nodes.end();
    if (!local) continue;
    const auto priority = policy_->prefetch_priority(block, *oracle_);
    if (!priority) continue;
    if (!best || *priority > best_priority ||
        (*priority == best_priority && block < best->block)) {
      best = PrefetchChoice{block, bytes, my_node};
      best_priority = *priority;
    }
  }
  return best;
}

bool BlockManagerMaster::finish_prefetch(const BlockId& block,
                                         ExecutorId exec, SimTime now) {
  if (!cache_enabled_) return false;
  auto result = managers_[static_cast<std::size_t>(exec.value())].insert(
      block, block_bytes(block), now, *oracle_, /*strict_admission=*/true);
  apply_insert(result, block, exec);
  if (result.admitted) ++counters_.prefetches;
  return result.admitted;
}

const std::vector<ExecutorId>& BlockManagerMaster::memory_holders(
    const BlockId& block) const {
  const auto it = memory_copies_.find(block);
  return it == memory_copies_.end() ? no_holders_ : it->second;
}

const std::vector<NodeId>& BlockManagerMaster::hdfs_replicas(
    const BlockId& block) const {
  return hdfs_->replicas(block);
}

const std::vector<NodeId>& BlockManagerMaster::produced_disk_nodes(
    const BlockId& block) const {
  const auto it = produced_disk_.find(block);
  return it == produced_disk_.end() ? no_nodes_ : it->second;
}

const std::vector<NodeId>& BlockManagerMaster::disk_holders(
    const BlockId& block) const {
  if (const auto it = disk_union_.find(block); it != disk_union_.end()) {
    return it->second;
  }
  std::vector<NodeId> nodes = hdfs_->replicas(block);
  if (const auto it = produced_disk_.find(block);
      it != produced_disk_.end()) {
    for (const NodeId n : it->second) {
      if (std::find(nodes.begin(), nodes.end(), n) == nodes.end()) {
        nodes.push_back(n);
      }
    }
  }
  return disk_union_.emplace(block, std::move(nodes)).first->second;
}

BlockManagerMaster::DropResult BlockManagerMaster::drop_executor(
    ExecutorId exec) {
  DropResult result;

  // 1. Destroy the executor's memory store (ascending block id for
  // deterministic placement_version / prefetchable churn).
  BlockManager& mgr = manager(exec);
  for (const BlockId& block : sorted_keys(mgr.blocks())) {
    mgr.remove(block);
    note_evicted(block, exec);
    ++result.memory_dropped;
  }

  // 2. Destroy the durable disk copies this executor produced. The node
  // keeps a copy only if another (surviving) producer on the same node
  // also wrote it.
  std::vector<BlockId> disk_blocks;
  for (const auto& [block, producers] : sorted_view(produced_by_)) {
    if (std::find(producers.begin(), producers.end(), exec) !=
        producers.end()) {
      disk_blocks.push_back(block);
    }
  }
  for (const BlockId& block : disk_blocks) {
    auto& producers = produced_by_[block];
    producers.erase(std::remove(producers.begin(), producers.end(), exec),
                    producers.end());
    std::vector<NodeId> nodes;
    for (const ExecutorId p : producers) {
      const NodeId n = topo_->node_of(p);
      if (std::find(nodes.begin(), nodes.end(), n) == nodes.end()) {
        nodes.push_back(n);
      }
    }
    auto& disks = produced_disk_[block];
    if (nodes.size() == disks.size()) continue;  // node copy survives
    result.disk_dropped +=
        static_cast<std::int64_t>(disks.size() - nodes.size());
    disks = std::move(nodes);
    if (disks.empty()) produced_disk_.erase(block);
    disk_union_.erase(block);
    ++placement_version_;

    if (produced_disk_.contains(block) || !hdfs_->replicas(block).empty()) {
      continue;  // a durable copy survives elsewhere
    }
    // Last disk copy gone. If some executor still caches the block,
    // immediately re-materialize a disk copy at that holder's node so
    // the eviction-is-always-safe invariant keeps holding.
    const auto mem_it = memory_copies_.find(block);
    if (mem_it != memory_copies_.end() && !mem_it->second.empty()) {
      const ExecutorId holder =
          *std::min_element(mem_it->second.begin(), mem_it->second.end());
      produced_by_[block].push_back(holder);
      produced_disk_[block].push_back(topo_->node_of(holder));
      disk_union_.erase(block);
      ++placement_version_;
      ++result.rereplicated;
    } else {
      // No copy anywhere: only lineage recomputation can bring it back.
      // The memory-drop pass above already moved the block to Evicted if
      // this executor held the last memory copy, so the edge here is
      // Disk → Lost or Evicted → Lost.
      set_residency(block, BlockResidency::Lost);
      prefetchable_.erase(block);
      result.lost.push_back(block);
    }
  }
  return result;
}

bool BlockManagerMaster::drop_memory_block(const BlockId& block,
                                           ExecutorId exec) {
  if (!manager(exec).remove(block)) return false;
  note_evicted(block, exec);
  return true;
}

void BlockManagerMaster::set_executor_suspect(ExecutorId exec, bool suspect) {
  auto& flag = suspect_[static_cast<std::size_t>(exec.value())];
  const char value = suspect ? 1 : 0;
  if (flag == value) return;
  flag = value;
  // No block moved, but locality answers derived from this executor's
  // memory copies just changed — invalidate the memos.
  ++placement_version_;
}

bool BlockManagerMaster::any_healthy_memory_holder(
    const BlockId& block) const {
  for (const ExecutorId holder : memory_holders(block)) {
    if (!executor_suspect(holder)) return true;
  }
  return false;
}

BlockManagerMaster::RereplicationResult
BlockManagerMaster::rereplicate_suspect_blocks(ExecutorId target) {
  RereplicationResult result;
  DAGON_CHECK(!executor_suspect(target));

  // At-risk = every produced-disk attribution on a suspect executor, no
  // HDFS replica, and no healthy memory holder. Sorted scan for
  // deterministic placement_version churn.
  std::vector<BlockId> at_risk;
  for (const auto& [block, producers] : sorted_view(produced_by_)) {
    if (producers.empty()) continue;
    bool all_suspect = true;
    for (const ExecutorId p : producers) {
      if (!executor_suspect(p)) {
        all_suspect = false;
        break;
      }
    }
    if (!all_suspect) continue;
    if (!hdfs_->replicas(block).empty()) continue;
    if (any_healthy_memory_holder(block)) continue;
    at_risk.push_back(block);
  }

  const NodeId target_node = topo_->node_of(target);
  for (const BlockId& block : at_risk) {
    produced_by_[block].push_back(target);
    auto& disks = produced_disk_[block];
    if (std::find(disks.begin(), disks.end(), target_node) == disks.end()) {
      disks.push_back(target_node);
    }
    disk_union_.erase(block);
    ++placement_version_;
    ++result.blocks;
    result.bytes += std::max<Bytes>(block_bytes(block), 0);
  }
  return result;
}

BlockManager& BlockManagerMaster::manager(ExecutorId exec) {
  DAGON_CHECK(exec.valid() &&
              static_cast<std::size_t>(exec.value()) < managers_.size());
  return managers_[static_cast<std::size_t>(exec.value())];
}

const BlockManager& BlockManagerMaster::manager(ExecutorId exec) const {
  DAGON_CHECK(exec.valid() &&
              static_cast<std::size_t>(exec.value()) < managers_.size());
  return managers_[static_cast<std::size_t>(exec.value())];
}

}  // namespace dagon
