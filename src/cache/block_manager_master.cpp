#include "cache/block_manager_master.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dagon {

BlockManagerMaster::BlockManagerMaster(const Topology& topo,
                                       const JobDag& dag,
                                       const HdfsPlacement& hdfs,
                                       ReferenceOracle& oracle,
                                       const CachePolicy& policy,
                                       bool cache_enabled)
    : topo_(&topo),
      dag_(&dag),
      hdfs_(&hdfs),
      oracle_(&oracle),
      policy_(&policy),
      cache_enabled_(cache_enabled) {
  managers_.reserve(topo.num_executors());
  for (const Executor& e : topo.executors()) {
    managers_.emplace_back(e.id, e.cache_bytes, policy);
  }
  const auto nb = static_cast<std::size_t>(dag.num_blocks());
  memory_copies_.resize(nb);
  produced_disk_.resize(nb);
  produced_by_.resize(nb);
  prefetchable_.assign(nb, 0);
  prefetch_by_node_.resize(topo.num_nodes());
  suspect_.assign(topo.num_executors(), 0);
  disk_union_.resize(nb);
  disk_union_valid_.assign(nb, 0);
  residency_.assign(nb, BlockResidency::Absent);
  // Input blocks are born on HDFS node disks: Disk is their *initial*
  // lifecycle state, seeded directly (there is no edge into it from
  // Absent — only produced blocks materialize).
  for (const Rdd& rdd : dag.rdds()) {
    if (!rdd.is_input) continue;
    for (std::int32_t p = 0; p < rdd.num_partitions; ++p) {
      const BlockId block{rdd.id, p};
      if (!hdfs.replicas(block).empty()) {
        // dagonlint: allow(raw-transition): initial-state seed, not a
        // transition — input blocks are born Disk and no table edge
        // leads there from Absent.
        residency_[ord(block)] = BlockResidency::Disk;
      }
    }
  }
  // Cacheable input blocks start on HDFS disk with no memory copy: they
  // are the initial prefetch candidates (MRD pre-warms the first
  // stages' inputs this way).
  if (cache_enabled_) {
    for (const Rdd& rdd : dag.rdds()) {
      if (!rdd.is_input || !rdd.cacheable) continue;
      for (std::int32_t p = 0; p < rdd.num_partitions; ++p) {
        add_prefetchable(ord(BlockId{rdd.id, p}));
      }
    }
  }
}

void BlockManagerMaster::index_prefetchable(std::size_t o) {
  const auto signed_ord = static_cast<std::int64_t>(o);
  for (const NodeId n : hdfs_->replicas_by_ord(signed_ord)) {
    prefetch_by_node_[static_cast<std::size_t>(n.value())].insert(signed_ord);
  }
  for (const NodeId n : produced_disk_[o]) {
    prefetch_by_node_[static_cast<std::size_t>(n.value())].insert(signed_ord);
  }
}

void BlockManagerMaster::unindex_prefetchable(std::size_t o) {
  const auto signed_ord = static_cast<std::int64_t>(o);
  for (const NodeId n : hdfs_->replicas_by_ord(signed_ord)) {
    prefetch_by_node_[static_cast<std::size_t>(n.value())].erase(signed_ord);
  }
  for (const NodeId n : produced_disk_[o]) {
    prefetch_by_node_[static_cast<std::size_t>(n.value())].erase(signed_ord);
  }
}

void BlockManagerMaster::add_prefetchable(std::size_t o) {
  if (prefetchable_[o] != 0) return;
  prefetchable_[o] = 1;
  index_prefetchable(o);
}

void BlockManagerMaster::remove_prefetchable(std::size_t o) {
  if (prefetchable_[o] == 0) return;
  prefetchable_[o] = 0;
  unindex_prefetchable(o);
}

void BlockManagerMaster::set_residency(const BlockId& block,
                                       BlockResidency to) {
  // Entity id packs (rdd, partition) for transition diagnostics.
  const auto entity =
      (static_cast<std::int64_t>(block.rdd.value()) << 32) | block.partition;
  fsm::transition(residency_[ord(block)], to, entity, fsm_violations_);
}

void BlockManagerMaster::verify_residency() const {
  for (std::int64_t o = 0; o < dag_->num_blocks(); ++o) {
    const BlockId block = dag_->block_at(o);
    const BlockResidency r = residency_[static_cast<std::size_t>(o)];
    const bool in_memory = !memory_copies_[static_cast<std::size_t>(o)].empty();
    switch (r) {
      case BlockResidency::Absent:
      case BlockResidency::Lost:
        DAGON_CHECK_MSG(!exists(block),
                        "block " << block << " is " << to_string(r)
                                 << " but a copy exists");
        break;
      case BlockResidency::Materializing:
        DAGON_CHECK_MSG(false, "block " << block
                                        << " stuck Materializing");
        break;
      case BlockResidency::Memory:
        DAGON_CHECK_MSG(in_memory,
                        "block " << block << " is Memory but no holder");
        break;
      case BlockResidency::Disk:
      case BlockResidency::Evicted:
        DAGON_CHECK_MSG(!in_memory && exists(block),
                        "block " << block << " is " << to_string(r)
                                 << " but copies diverge");
        break;
    }
  }
}

Bytes BlockManagerMaster::block_bytes(const BlockId& block) const {
  return dag_->rdd(block.rdd).bytes_per_partition;
}

void BlockManagerMaster::seed_initial_cache(SimTime now) {
  if (!cache_enabled_) return;
  for (const Rdd& rdd : dag_->rdds()) {
    if (!rdd.is_input || rdd.initially_cached_partitions == 0) continue;
    for (std::int32_t p = 0; p < rdd.initially_cached_partitions; ++p) {
      const BlockId block{rdd.id, p};
      const auto& replicas = hdfs_->replicas(block);
      DAGON_CHECK_MSG(!replicas.empty(),
                      "initially-cached block " << block << " not on HDFS");
      const Node& node = topo_->node(replicas.front());
      DAGON_CHECK(!node.executors.empty());
      const ExecutorId exec = node.executors.front();
      auto result = managers_[static_cast<std::size_t>(exec.value())].insert(
          block, rdd.bytes_per_partition, now, *oracle_);
      apply_insert(result, block, exec);
    }
  }
}

bool BlockManagerMaster::exists(const BlockId& block) const {
  const std::size_t o = ord(block);
  if (!memory_copies_[o].empty()) return true;
  if (!produced_disk_[o].empty()) return true;
  return !hdfs_->replicas_by_ord(static_cast<std::int64_t>(o)).empty();
}

BlockManagerMaster::Lookup BlockManagerMaster::lookup(
    const BlockId& block, ExecutorId reader) const {
  const NodeId my_node = topo_->node_of(reader);
  const RackId my_rack = topo_->rack_of(my_node);
  const std::size_t o = ord(block);

  Lookup best;
  int best_rank = INT32_MAX;
  auto consider = [&](BlockSource src, ExecutorId holder, NodeId disk_node) {
    const int rank = static_cast<int>(src);
    if (rank < best_rank) {
      best_rank = rank;
      best = Lookup{src, holder, disk_node};
    }
  };

  for (const ExecutorId holder : memory_copies_[o]) {
    if (holder == reader) {
      consider(BlockSource::LocalMemory, holder, NodeId::invalid());
    } else {
      const NodeId hn = topo_->node_of(holder);
      if (hn == my_node) {
        consider(BlockSource::SameNodeMemory, holder, NodeId::invalid());
      } else if (topo_->rack_of(hn) == my_rack) {
        consider(BlockSource::RackMemory, holder, NodeId::invalid());
      } else {
        consider(BlockSource::RemoteMemory, holder, NodeId::invalid());
      }
    }
  }

  auto consider_disk = [&](NodeId n) {
    if (n == my_node) {
      consider(BlockSource::LocalDisk, ExecutorId::invalid(), n);
    } else if (topo_->rack_of(n) == my_rack) {
      consider(BlockSource::RackDisk, ExecutorId::invalid(), n);
    } else {
      consider(BlockSource::RemoteDisk, ExecutorId::invalid(), n);
    }
  };
  for (const NodeId n : hdfs_->replicas_by_ord(static_cast<std::int64_t>(o))) {
    consider_disk(n);
  }
  for (const NodeId n : produced_disk_[o]) consider_disk(n);

  DAGON_CHECK_MSG(best_rank != INT32_MAX,
                  "block " << block << " read before it exists anywhere");
  return best;
}

void BlockManagerMaster::apply_insert(
    const BlockManager::InsertResult& result, const BlockId& block,
    ExecutorId exec) {
  for (const BlockId& evicted : result.evicted) {
    note_evicted(evicted, exec);
    ++counters_.evictions;
  }
  const std::size_t o = ord(block);
  if (result.admitted) {
    auto& holders = memory_copies_[o];
    if (std::find(holders.begin(), holders.end(), exec) == holders.end()) {
      holders.push_back(exec);
      ++placement_version_;
    }
    // First holder promotes the block to Memory (from Materializing on
    // the produce path, Disk on a read-admit, Evicted on a re-admit).
    if (residency_[o] != BlockResidency::Memory) {
      set_residency(block, BlockResidency::Memory);
      // Mirror into the oracle's LERC peer groups (no-op unless enabled).
      oracle_->set_memory_resident(block, true);
    }
    remove_prefetchable(o);
    ++counters_.insertions;
  } else {
    ++counters_.rejected_admissions;
    // A refused produce-time admission still has its durable disk copy.
    if (residency_[o] == BlockResidency::Materializing) {
      set_residency(block, BlockResidency::Disk);
    }
    if (dag_->rdd(block.rdd).cacheable && memory_copies_[o].empty()) {
      add_prefetchable(o);
    }
  }
}

void BlockManagerMaster::note_evicted(const BlockId& block, ExecutorId exec) {
  const std::size_t o = ord(block);
  auto& holders = memory_copies_[o];
  if (holders.empty()) return;
  holders.erase(std::remove(holders.begin(), holders.end(), exec),
                holders.end());
  ++placement_version_;
  if (holders.empty()) {
    // Last memory copy gone; the durable disk copy keeps the block
    // recoverable (eviction is always safe, DESIGN.md §4).
    set_residency(block, BlockResidency::Evicted);
    // Mirror into the oracle's LERC peer groups (no-op unless enabled).
    oracle_->set_memory_resident(block, false);
    if (dag_->rdd(block.rdd).cacheable) add_prefetchable(o);
  }
}

void BlockManagerMaster::on_block_produced(const BlockId& block,
                                           ExecutorId exec, SimTime now) {
  const NodeId node = topo_->node_of(exec);
  const std::size_t o = ord(block);
  auto& producers = produced_by_[o];
  if (std::find(producers.begin(), producers.end(), exec) ==
      producers.end()) {
    producers.push_back(exec);
  }
  auto& disks = produced_disk_[o];
  if (std::find(disks.begin(), disks.end(), node) == disks.end()) {
    // A flagged block gains a disk-holder node: keep the per-node
    // candidate index in sync (unindex before, reindex after).
    const bool was_pf = prefetchable_[o] != 0;
    if (was_pf) unindex_prefetchable(o);
    disks.push_back(node);
    if (was_pf) index_prefetchable(o);
    disk_union_valid_[o] = 0;
    ++placement_version_;
  }
  // Lifecycle: Absent → Materializing on first production, Lost →
  // Materializing on a lineage recompute; apply_insert (or the
  // non-cacheable early-out below) then settles Memory vs Disk.
  set_residency(block, BlockResidency::Materializing);
  const Rdd& rdd = dag_->rdd(block.rdd);
  if (!cache_enabled_ || !rdd.cacheable ||
      rdd.bytes_per_partition <= Bytes{0}) {
    set_residency(block, BlockResidency::Disk);
    return;
  }
  auto result = managers_[static_cast<std::size_t>(exec.value())].insert(
      block, rdd.bytes_per_partition, now, *oracle_);
  apply_insert(result, block, exec);
}

void BlockManagerMaster::on_block_read(const BlockId& block, ExecutorId exec,
                                       const Lookup& how, SimTime now) {
  if (!cache_enabled_) return;
  if (how.source == BlockSource::LocalMemory) {
    managers_[static_cast<std::size_t>(exec.value())].touch(block, now);
    return;
  }
  if (is_memory_source(how.source)) {
    // Remote-memory reads refresh the holder's recency but do not
    // duplicate the block locally (Spark semantics).
    if (how.holder.valid()) {
      managers_[static_cast<std::size_t>(how.holder.value())].touch(block,
                                                                    now);
    }
    return;
  }
  // Disk read of a persisted RDD: materialize in the reader's cache.
  const Rdd& rdd = dag_->rdd(block.rdd);
  if (!rdd.cacheable || rdd.bytes_per_partition <= Bytes{0}) return;
  auto result = managers_[static_cast<std::size_t>(exec.value())].insert(
      block, rdd.bytes_per_partition, now, *oracle_);
  apply_insert(result, block, exec);
}

int BlockManagerMaster::proactive_sweep() {
  if (!cache_enabled_ || !policy_->proactive_eviction()) return 0;
  int dropped = 0;
  for (BlockManager& m : managers_) {
    for (const BlockId& b : m.evict_dead(*oracle_)) {
      note_evicted(b, m.executor());
      ++counters_.proactive_evictions;
      ++dropped;
    }
  }
  return dropped;
}

std::optional<BlockManagerMaster::PrefetchChoice>
BlockManagerMaster::prefetch_candidate(ExecutorId exec) const {
  if (!cache_enabled_) return std::nullopt;
  const NodeId my_node = topo_->node_of(exec);
  const BlockManager& mgr =
      managers_[static_cast<std::size_t>(exec.value())];

  std::optional<PrefetchChoice> best;
  double best_priority = 0.0;
  // Prefetch fills FREE space only: "when the free cache space reaches a
  // certain threshold, it prefetches the in-disk data block whose
  // reference priority is the largest" (§IV). Eviction-to-prefetch (as
  // in MRD's own paper) measured net-negative here — see the prefetch
  // ablation bench. Node-local disk blocks only: prefetching is a local
  // disk->memory promotion that overlaps computation, so the scan covers
  // exactly this node's candidate set (cacheable + on local disk + not
  // in memory), maintained incrementally. Ascending ordinal == ascending
  // block id, so ties resolve to the smallest block id as before.
  for (const std::int64_t o :
       prefetch_by_node_[static_cast<std::size_t>(my_node.value())]) {
    const BlockId block = dag_->block_at(o);
    const Bytes bytes = block_bytes(block);
    if (bytes <= Bytes{0} || bytes > mgr.free_bytes()) continue;
    const auto priority = policy_->prefetch_priority(block, *oracle_);
    if (!priority) continue;
    if (!best || *priority > best_priority ||
        (*priority == best_priority && block < best->block)) {
      best = PrefetchChoice{block, bytes, my_node};
      best_priority = *priority;
    }
  }
  return best;
}

bool BlockManagerMaster::finish_prefetch(const BlockId& block,
                                         ExecutorId exec, SimTime now) {
  if (!cache_enabled_) return false;
  auto result = managers_[static_cast<std::size_t>(exec.value())].insert(
      block, block_bytes(block), now, *oracle_, /*strict_admission=*/true);
  apply_insert(result, block, exec);
  if (result.admitted) ++counters_.prefetches;
  return result.admitted;
}

const std::vector<NodeId>& BlockManagerMaster::disk_holders(
    const BlockId& block) const {
  const std::size_t o = ord(block);
  if (disk_union_valid_[o] != 0) return disk_union_[o];
  std::vector<NodeId> nodes = hdfs_->replicas_by_ord(static_cast<std::int64_t>(o));
  for (const NodeId n : produced_disk_[o]) {
    if (std::find(nodes.begin(), nodes.end(), n) == nodes.end()) {
      nodes.push_back(n);
    }
  }
  disk_union_[o] = std::move(nodes);
  disk_union_valid_[o] = 1;
  return disk_union_[o];
}

BlockManagerMaster::DropResult BlockManagerMaster::drop_executor(
    ExecutorId exec) {
  DropResult result;

  // 1. Destroy the executor's memory store (ascending block id for
  // deterministic placement_version / prefetchable churn).
  BlockManager& mgr = manager(exec);
  std::vector<BlockId> mem_blocks;
  mem_blocks.reserve(mgr.num_blocks());
  for (const BlockManager::Entry& e : mgr.entries()) {
    mem_blocks.push_back(e.id);
  }
  for (const BlockId& block : mem_blocks) {
    mgr.remove(block);
    note_evicted(block, exec);
    ++result.memory_dropped;
  }

  // 2. Destroy the durable disk copies this executor produced. The node
  // keeps a copy only if another (surviving) producer on the same node
  // also wrote it. Ascending-ordinal scan == ascending block id.
  std::vector<std::size_t> disk_blocks;
  for (std::size_t o = 0; o < produced_by_.size(); ++o) {
    const auto& producers = produced_by_[o];
    if (std::find(producers.begin(), producers.end(), exec) !=
        producers.end()) {
      disk_blocks.push_back(o);
    }
  }
  for (const std::size_t o : disk_blocks) {
    const BlockId block = dag_->block_at(static_cast<std::int64_t>(o));
    auto& producers = produced_by_[o];
    producers.erase(std::remove(producers.begin(), producers.end(), exec),
                    producers.end());
    std::vector<NodeId> nodes;
    for (const ExecutorId p : producers) {
      const NodeId n = topo_->node_of(p);
      if (std::find(nodes.begin(), nodes.end(), n) == nodes.end()) {
        nodes.push_back(n);
      }
    }
    auto& disks = produced_disk_[o];
    if (nodes.size() == disks.size()) continue;  // node copy survives
    result.disk_dropped +=
        static_cast<std::int64_t>(disks.size() - nodes.size());
    // The block's disk-holder set is about to change; a flagged block
    // must leave the per-node index for the stale set and rejoin for the
    // new one (or not at all, if it ends up Lost).
    const bool was_pf = prefetchable_[o] != 0;
    if (was_pf) unindex_prefetchable(o);
    disks = std::move(nodes);
    disk_union_valid_[o] = 0;
    ++placement_version_;

    if (!disks.empty() ||
        !hdfs_->replicas_by_ord(static_cast<std::int64_t>(o)).empty()) {
      if (was_pf) index_prefetchable(o);
      continue;  // a durable copy survives elsewhere
    }
    // Last disk copy gone. If some executor still caches the block,
    // immediately re-materialize a disk copy at that holder's node so
    // the eviction-is-always-safe invariant keeps holding.
    const auto& mem = memory_copies_[o];
    if (!mem.empty()) {
      const ExecutorId holder = *std::min_element(mem.begin(), mem.end());
      producers.push_back(holder);
      disks.push_back(topo_->node_of(holder));
      disk_union_valid_[o] = 0;
      ++placement_version_;
      ++result.rereplicated;
      if (was_pf) index_prefetchable(o);
    } else {
      // No copy anywhere: only lineage recomputation can bring it back.
      // The memory-drop pass above already moved the block to Evicted if
      // this executor held the last memory copy, so the edge here is
      // Disk → Lost or Evicted → Lost.
      set_residency(block, BlockResidency::Lost);
      prefetchable_[o] = 0;  // already unindexed above (if flagged)
      result.lost.push_back(block);
    }
  }
  return result;
}

bool BlockManagerMaster::drop_memory_block(const BlockId& block,
                                           ExecutorId exec) {
  if (!manager(exec).remove(block)) return false;
  note_evicted(block, exec);
  return true;
}

void BlockManagerMaster::set_executor_suspect(ExecutorId exec, bool suspect) {
  auto& flag = suspect_[static_cast<std::size_t>(exec.value())];
  const char value = suspect ? 1 : 0;
  if (flag == value) return;
  flag = value;
  // No block moved, but locality answers derived from this executor's
  // memory copies just changed — invalidate the memos.
  ++placement_version_;
}

bool BlockManagerMaster::any_healthy_memory_holder(
    const BlockId& block) const {
  for (const ExecutorId holder : memory_holders(block)) {
    if (!executor_suspect(holder)) return true;
  }
  return false;
}

BlockManagerMaster::RereplicationResult
BlockManagerMaster::rereplicate_suspect_blocks(ExecutorId target) {
  RereplicationResult result;
  DAGON_CHECK(!executor_suspect(target));

  // At-risk = every produced-disk attribution on a suspect executor, no
  // HDFS replica, and no healthy memory holder. Ascending-ordinal scan
  // for deterministic placement_version churn.
  std::vector<std::size_t> at_risk;
  for (std::size_t o = 0; o < produced_by_.size(); ++o) {
    const auto& producers = produced_by_[o];
    if (producers.empty()) continue;
    bool all_suspect = true;
    for (const ExecutorId p : producers) {
      if (!executor_suspect(p)) {
        all_suspect = false;
        break;
      }
    }
    if (!all_suspect) continue;
    if (!hdfs_->replicas_by_ord(static_cast<std::int64_t>(o)).empty()) {
      continue;
    }
    bool any_healthy = false;
    for (const ExecutorId holder : memory_copies_[o]) {
      if (!executor_suspect(holder)) {
        any_healthy = true;
        break;
      }
    }
    if (any_healthy) continue;
    at_risk.push_back(o);
  }

  const NodeId target_node = topo_->node_of(target);
  for (const std::size_t o : at_risk) {
    produced_by_[o].push_back(target);
    auto& disks = produced_disk_[o];
    if (std::find(disks.begin(), disks.end(), target_node) == disks.end()) {
      const bool was_pf = prefetchable_[o] != 0;
      if (was_pf) unindex_prefetchable(o);
      disks.push_back(target_node);
      if (was_pf) index_prefetchable(o);
    }
    disk_union_valid_[o] = 0;
    ++placement_version_;
    ++result.blocks;
    result.bytes +=
        std::max(block_bytes(dag_->block_at(static_cast<std::int64_t>(o))),
                 Bytes{0});
  }
  return result;
}

BlockManager& BlockManagerMaster::manager(ExecutorId exec) {
  DAGON_CHECK(exec.valid() &&
              static_cast<std::size_t>(exec.value()) < managers_.size());
  return managers_[static_cast<std::size_t>(exec.value())];
}

const BlockManager& BlockManagerMaster::manager(ExecutorId exec) const {
  DAGON_CHECK(exec.valid() &&
              static_cast<std::size_t>(exec.value()) < managers_.size());
  return managers_[static_cast<std::size_t>(exec.value())];
}

}  // namespace dagon
