// Cache replacement/prefetch policies.
//
// A policy is a pure decision function over (block, local LRU state,
// ReferenceOracle); the BlockManager owns the mechanics (capacity,
// victim search, admission). Implemented policies:
//   LRU  — Spark's default BlockManager policy (DAG-oblivious)
//   LRC  — least reference count [Yu et al., INFOCOM'17]
//   MRD  — most reference distance, FIFO stage order [Perez et al., ICPP'18]
//   LRP  — least reference priority, the paper's contribution (§III-C)
//   LERC — least effective reference count [Yu et al., ICDCS'17]:
//          all-or-nothing caching per consumer stage, so memory is only
//          spent on blocks whose whole peer group can produce effective
//          hits (needs ReferenceOracle peer tracking)
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "cache/ref_oracle.hpp"
#include "common/sim_time.hpp"

namespace dagon {

enum class CachePolicyKind { Lru, Lrc, Mrd, Lrp, Lerc };

[[nodiscard]] constexpr const char* cache_policy_name(CachePolicyKind k) {
  switch (k) {
    case CachePolicyKind::Lru: return "LRU";
    case CachePolicyKind::Lrc: return "LRC";
    case CachePolicyKind::Mrd: return "MRD";
    case CachePolicyKind::Lrp: return "LRP";
    case CachePolicyKind::Lerc: return "LERC";
  }
  return "?";
}

/// The accepted --cache / config spellings, for actionable errors.
inline constexpr const char* kCachePolicyNames =
    "lru | lrc | mrd | lrp | lerc";

class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Retention priority of a cached block: at eviction time the block
  /// with the SMALLEST value goes first. Ties are broken by the
  /// BlockManager using least-recent access.
  [[nodiscard]] virtual double retention_priority(
      const BlockId& block, SimTime last_access,
      const ReferenceOracle& oracle) const = 0;

  /// Whether blocks that can never be referenced again should be dropped
  /// eagerly to free space (LRP §III-C; MRD behaves the same way).
  [[nodiscard]] virtual bool proactive_eviction() const { return false; }

  /// True when a block has no remaining value under this policy and is a
  /// proactive-eviction candidate.
  [[nodiscard]] virtual bool is_dead(const BlockId& block,
                                     const ReferenceOracle& oracle) const;

  /// Whether newly produced/read blocks are always admitted (LRU), or
  /// only when their retention priority beats the would-be victims'
  /// (MRD/LRP — this is how MRD declines to cache RDD B in Table I).
  [[nodiscard]] virtual bool always_admit() const { return false; }

  /// Prefetch desirability: HIGHEST value fetched first; nullopt when the
  /// block should not be prefetched at all. Default: no prefetching.
  [[nodiscard]] virtual std::optional<double> prefetch_priority(
      const BlockId& block, const ReferenceOracle& oracle) const {
    (void)block;
    (void)oracle;
    return std::nullopt;
  }
};

/// LRU: retention = last access time; always admits; never prefetches.
class LruPolicy final : public CachePolicy {
 public:
  [[nodiscard]] const char* name() const override { return "LRU"; }
  [[nodiscard]] double retention_priority(
      const BlockId& block, SimTime last_access,
      const ReferenceOracle& oracle) const override;
  [[nodiscard]] bool always_admit() const override { return true; }
  [[nodiscard]] bool is_dead(const BlockId&,
                             const ReferenceOracle&) const override {
    return false;
  }
};

/// LRC: retention = remaining reference count.
class LrcPolicy final : public CachePolicy {
 public:
  [[nodiscard]] const char* name() const override { return "LRC"; }
  [[nodiscard]] double retention_priority(
      const BlockId& block, SimTime last_access,
      const ReferenceOracle& oracle) const override;
  [[nodiscard]] bool proactive_eviction() const override { return true; }
};

/// MRD: retention = −(stage reference distance in FIFO order); prefetches
/// the nearest-distance disk blocks.
class MrdPolicy final : public CachePolicy {
 public:
  [[nodiscard]] const char* name() const override { return "MRD"; }
  [[nodiscard]] double retention_priority(
      const BlockId& block, SimTime last_access,
      const ReferenceOracle& oracle) const override;
  [[nodiscard]] bool proactive_eviction() const override { return true; }
  [[nodiscard]] std::optional<double> prefetch_priority(
      const BlockId& block, const ReferenceOracle& oracle) const override;
};

/// LRP (the paper's §III-C): retention = reference priority (max pv of
/// unfinished reader stages); proactively drops zero-priority blocks;
/// prefetches the highest-priority disk blocks.
class LrpPolicy final : public CachePolicy {
 public:
  [[nodiscard]] const char* name() const override { return "LRP"; }
  [[nodiscard]] double retention_priority(
      const BlockId& block, SimTime last_access,
      const ReferenceOracle& oracle) const override;
  [[nodiscard]] bool proactive_eviction() const override { return true; }
  [[nodiscard]] std::optional<double> prefetch_priority(
      const BlockId& block, const ReferenceOracle& oracle) const override;
};

/// LERC [Yu et al., ICDCS'17]: retention = effective reference count
/// (live reader stages whose peer group is — or, with this block, would
/// be — fully cached), with the raw reference count as tie-break so
/// dead data still leaves before merely ineffective data. Proactively
/// evicts dead blocks; admission must beat a victim (all-or-nothing
/// pressure: a block of an uncachable-in-full group scores 0 and loses
/// to any effective block). Requires
/// ReferenceOracle::enable_peer_tracking().
class LercPolicy final : public CachePolicy {
 public:
  [[nodiscard]] const char* name() const override { return "LERC"; }
  [[nodiscard]] double retention_priority(
      const BlockId& block, SimTime last_access,
      const ReferenceOracle& oracle) const override;
  [[nodiscard]] bool proactive_eviction() const override { return true; }
};

[[nodiscard]] std::unique_ptr<CachePolicy> make_cache_policy(
    CachePolicyKind kind);

}  // namespace dagon
