// ReferenceOracle: the shared "who will still use this block" knowledge
// base behind every DAG-aware cache policy.
//
// It is the simulator-side equivalent of the paper's reference-priority
// profile maintained by BlockManagerMaster (Fig. 7): the DAG fixes which
// stages read which blocks; the scheduler streams in live stage state
// (task launches, finished stages, current stage, priority values pv_i),
// and the policies query derived quantities:
//   * remaining reference count          -> LRC
//   * stage reference distance (FIFO)    -> MRD
//   * reference priority (max pv)        -> LRP (Definition 1)
//
// References are tracked per (block, stage) pair and *consumed* as the
// reading tasks launch: once every task of stage s that reads block b
// has started, s no longer holds a reference on b — this is what lets
// MRD/LRP discard data the moment its last reader has picked it up
// (Fig. 6's per-stage reference deletion).
//
// Online serving extends the same structure across jobs. The merged
// serving DAG contains every job's stages, so one oracle aggregates
// remaining references over all of them; stages of jobs that have not
// *arrived* yet are marked inactive (set_stage_active) and hold no live
// references until their JobSubmit fires — a cache policy only ever
// sees demand from jobs the cluster actually knows about. The LERC
// policy (arXiv:1708.07941) additionally needs peer-group state: a
// consumer task's peers are the cacheable blocks it reads together (for
// narrow deps, partition p of every cacheable parent), and a hit is
// only effective when the whole group is memory-resident.
// BlockManagerMaster mirrors residency in via set_memory_resident;
// effective_ref_count(b) then counts the live reader stages whose
// consuming task's peer group would be fully cached if b itself were —
// the "effective cache hit" criterion (all-or-nothing caching per
// consumer task). Peer tracking is off unless enabled explicitly, so
// non-LERC runs never touch (or pay for) the mirror.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/units.hpp"
#include "dag/job_dag.hpp"

namespace dagon {

class ReferenceOracle {
 public:
  /// Distance value meaning "no unfinished stage will ever read this".
  static constexpr int kNeverUsed = std::numeric_limits<int>::max();

  explicit ReferenceOracle(const JobDag& dag);

  // -- updates streamed from the scheduler / simulation ------------------

  /// A (non-speculative) task launched: consume its block references.
  void on_task_launched(StageId stage, std::int32_t task);

  /// Marks stage finished: all its remaining references disappear.
  void mark_stage_finished(StageId stage);

  /// Lineage recovery: exact inverse of on_task_launched for a re-opened
  /// task — its block references become live again (and the stage is
  /// un-finished) so cache policies keep the recomputation's inputs warm.
  void restore_task_refs(StageId stage, std::int32_t task);

  /// Current priority values pv_i (Eq. 6), indexed by stage id. The
  /// Dagon scheduler pushes these after every assignment; other
  /// schedulers push the statically derived values so LRP stays
  /// well-defined under any scheduler (used in ablations).
  void set_priority_values(std::vector<CpuWork> pv);

  /// The stage whose tasks are currently being launched, as a position
  /// in FIFO (stage-id) order; MRD measures distances from here.
  void set_current_stage(StageId stage);

  /// Serving mode: stages of jobs that have not arrived yet are marked
  /// inactive — their references are not live, so cross-job policies
  /// only see demand from submitted jobs. Stages default to active.
  void set_stage_active(StageId stage, bool active);

  // -- LERC peer groups (effective-cache-hit management) -----------------

  /// Builds the per-task peer-group counters (for every consumer task,
  /// how many of its cacheable narrow input blocks are NOT
  /// memory-resident). Must be called before the first
  /// set_memory_resident; idempotent. Only the LERC policy needs this —
  /// when never enabled, residency mirroring is a no-op and single-job
  /// runs stay bit-identical.
  void enable_peer_tracking();

  [[nodiscard]] bool peer_tracking_enabled() const {
    return peer_tracking_;
  }

  /// BlockManagerMaster mirrors memory residency here: `resident` flips
  /// when `block` gains its first / loses its last memory copy anywhere
  /// in the cluster. No-op unless peer tracking is enabled.
  void set_memory_resident(const BlockId& block, bool resident);

  /// LERC's count: live narrow-reader stages of `block` whose consuming
  /// task's peer group (partition p of every cacheable narrow parent)
  /// would be fully memory-resident if `block` itself were cached. A
  /// block with effective count 0 cannot currently produce an effective
  /// hit, so caching it is wasted memory — while a block that would
  /// *complete* a group outranks every broken-group resident. Requires
  /// peer tracking.
  [[nodiscard]] int effective_ref_count(const BlockId& block) const;

  // -- queries ------------------------------------------------------------

  /// Number of live stage references on `block` (LRC's count).
  [[nodiscard]] int remaining_ref_count(const BlockId& block) const;

  /// MRD's stage reference distance: (next live reader's stage id) −
  /// (current stage id), minimum over live references; >= 0; kNeverUsed
  /// when no live reference remains.
  [[nodiscard]] int stage_distance(const BlockId& block) const;

  /// LRP's reference priority: max pv over live reader stages; 0 when
  /// none (inactive data, proactively evictable).
  [[nodiscard]] CpuWork reference_priority(const BlockId& block) const;

  /// Stages still holding a live reference on `block`.
  [[nodiscard]] std::vector<StageId> live_readers(const BlockId& block) const;

  [[nodiscard]] bool stage_finished(StageId stage) const;

  [[nodiscard]] const JobDag& dag() const { return *dag_; }

  [[nodiscard]] CpuWork priority_value(StageId stage) const;

  /// Monotonic counter bumped on every mutation (launch/finish/restore/
  /// pv/current-stage). Consumers caching oracle-derived answers (e.g.
  /// BlockManager's dead-block sweep) compare it to skip re-computation
  /// when nothing could have changed.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  struct Ref {
    StageId stage;
    /// Reading tasks that have not launched yet; 0 = consumed.
    std::int32_t remaining = 0;
  };

  [[nodiscard]] const std::vector<Ref>& refs_of(const BlockId& block) const {
    return refs_[static_cast<std::size_t>(dag_->block_ord(block))];
  }
  [[nodiscard]] std::vector<Ref>& refs_of(const BlockId& block) {
    return refs_[static_cast<std::size_t>(dag_->block_ord(block))];
  }
  [[nodiscard]] bool live(const Ref& ref) const {
    return ref.remaining > 0 && !stage_finished(ref.stage) &&
           active_[static_cast<std::size_t>(ref.stage.value())] != 0;
  }

  const JobDag* dag_;
  /// Per-stage reference records (ascending stage id), indexed by dense
  /// block ordinal (JobDag::block_ord); empty for unreferenced blocks.
  std::vector<std::vector<Ref>> refs_;
  std::vector<bool> finished_;
  /// 0 = the stage's job has not arrived; its references are inactive.
  std::vector<char> active_;
  std::vector<CpuWork> pv_;
  std::int32_t current_stage_ord_ = 0;
  std::uint64_t epoch_ = 0;

  // -- peer-group state (populated by enable_peer_tracking) --------------
  [[nodiscard]] std::size_t group_ord(StageId stage,
                                      std::int32_t task) const {
    return static_cast<std::size_t>(
        task_group_offset_[static_cast<std::size_t>(stage.value())] + task);
  }

  bool peer_tracking_ = false;
  /// 1 = some executor holds this block ordinal in memory.
  std::vector<char> in_memory_;
  /// Stages reading each RDD through a narrow dep (cacheable parents
  /// only): the consumers whose task-level peer groups the RDD's blocks
  /// belong to. Indexed by RDD id.
  std::vector<std::vector<StageId>> narrow_readers_;
  /// Per (stage, task) — flattened via task_group_offset_: cacheable
  /// narrow input blocks of that task currently NOT memory-resident.
  /// 0 means the task's whole peer group is cached (its read would be
  /// an effective hit).
  std::vector<std::int32_t> task_missing_;
  /// Prefix sums of num_tasks by stage id; size num_stages + 1.
  std::vector<std::int64_t> task_group_offset_;
};

}  // namespace dagon
