// Per-executor in-memory block store — the simulator's analogue of
// Spark's BlockManager memory store.
//
// Capacity is in bytes; victim selection and admission are delegated to
// the configured CachePolicy. The manager never loses data: every block
// also has a disk copy (input blocks on HDFS, produced blocks on the
// producer's local disk), so eviction only drops the memory copy.
//
// Storage is a flat vector sorted by block id: caches hold at most a
// few hundred blocks, so binary-search lookups beat hashing, and every
// walk is in ascending block-id order by construction — no sorted_view
// detour, no hash-order hazard.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache_policy.hpp"
#include "common/strong_id.hpp"
#include "common/units.hpp"

namespace dagon {

class BlockManager {
 public:
  BlockManager(ExecutorId executor, Bytes capacity,
               const CachePolicy& policy);

  struct CachedBlock {
    Bytes bytes{};
    SimTime last_access{};
    SimTime inserted_at{};
  };

  struct Entry {
    BlockId id;
    CachedBlock meta;
  };

  struct InsertResult {
    bool admitted = false;
    std::vector<BlockId> evicted;
  };

  /// Tries to cache `block`. May evict lower-retention blocks; under
  /// non-always-admit policies (MRD/LRP) the insert is refused when the
  /// new block would displace strictly more valuable ones. With
  /// `strict_admission` (prefetch path) the block must strictly beat
  /// every victim — equal-value swaps would thrash.
  InsertResult insert(const BlockId& block, Bytes bytes, SimTime now,
                      const ReferenceOracle& oracle,
                      bool strict_admission = false);

  /// Smallest retention priority among cached blocks (+inf when empty);
  /// lets callers predict whether an insert/prefetch would be admitted.
  [[nodiscard]] double min_retention(const ReferenceOracle& oracle) const;

  [[nodiscard]] bool contains(const BlockId& block) const {
    return find(block) != nullptr;
  }

  /// Records an access for recency bookkeeping.
  void touch(const BlockId& block, SimTime now);

  /// Removes one block (no-op if absent); returns true if removed.
  bool remove(const BlockId& block);

  /// Proactively evicts blocks the policy declares dead (zero remaining
  /// references / zero reference priority). Returns the evicted ids.
  /// Cheap when nothing changed: the scan is skipped unless the oracle's
  /// epoch moved or a block was inserted since the last sweep (a block's
  /// deadness depends only on the block and the oracle state).
  std::vector<BlockId> evict_dead(const ReferenceOracle& oracle);

  [[nodiscard]] ExecutorId executor() const { return executor_; }
  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] Bytes used_bytes() const { return used_; }
  [[nodiscard]] Bytes free_bytes() const { return capacity_ - used_; }
  [[nodiscard]] std::size_t num_blocks() const { return blocks_.size(); }

  /// The store, sorted by ascending block id — range-iteration order is
  /// deterministic. Invalidated by any mutation; callers that mutate
  /// while walking must copy the ids first.
  [[nodiscard]] const std::vector<Entry>& entries() const { return blocks_; }

  [[nodiscard]] const CachePolicy& policy() const { return *policy_; }

 private:
  [[nodiscard]] const Entry* find(const BlockId& block) const;
  [[nodiscard]] Entry* find(const BlockId& block);

  ExecutorId executor_;
  Bytes capacity_;
  const CachePolicy* policy_;
  std::vector<Entry> blocks_;  // sorted by Entry::id
  Bytes used_{};
  /// Dead-sweep memo: last oracle epoch swept at, and whether an insert
  /// landed since (see evict_dead).
  std::uint64_t swept_epoch_ = ~std::uint64_t{0};
  bool inserted_since_sweep_ = false;
};

}  // namespace dagon
