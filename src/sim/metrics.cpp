#include "sim/metrics.hpp"

#include "common/error.hpp"

namespace dagon {

double RunMetrics::cpu_utilization() const {
  if (jct <= 0 || total_cores <= 0) return 0.0;
  return busy_cores.average(0, jct) / static_cast<double>(total_cores);
}

double RunMetrics::avg_parallelism() const {
  if (jct <= 0) return 0.0;
  return running_tasks.average(0, jct);
}

double RunMetrics::avg_task_duration_sec() const {
  double sum = 0.0;
  std::int64_t n = 0;
  for (const TaskRecord& t : tasks) {
    if (t.cancelled) continue;
    sum += to_seconds(t.duration());
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double RunMetrics::stage_duration_sec(StageId id) const {
  for (const StageRecord& s : stages) {
    if (s.id == id) return to_seconds(s.duration());
  }
  throw InvariantError("stage not found in metrics");
}

double RunMetrics::high_locality_fraction() const {
  std::int64_t high = locality_count(Locality::Process) +
                      locality_count(Locality::Node);
  std::int64_t total = 0;
  for (const std::int64_t c : locality_histogram) total += c;
  return total > 0 ? static_cast<double>(high) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace dagon
