#include "sim/metrics.hpp"

#include <cstring>
#include <type_traits>

#include "common/error.hpp"

namespace dagon {

double RunMetrics::cpu_utilization() const {
  if (jct <= SimTime{0} || total_cores <= Cpus{0}) return 0.0;
  return busy_cores.average(SimTime{0}, jct) /
         static_cast<double>(total_cores.count());
}

double RunMetrics::avg_parallelism() const {
  if (jct <= SimTime{0}) return 0.0;
  return running_tasks.average(SimTime{0}, jct);
}

double RunMetrics::avg_task_duration_sec() const {
  double sum = 0.0;
  std::int64_t n = 0;
  for (const TaskRecord& t : tasks) {
    if (t.cancelled || t.failed) continue;
    sum += to_seconds(t.duration());
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double RunMetrics::stage_duration_sec(StageId id) const {
  for (const StageRecord& s : stages) {
    if (s.id == id) return to_seconds(s.duration());
  }
  throw InvariantError("stage not found in metrics");
}

namespace {

class Fnv1a {
 public:
  void mix(const void* data, std::size_t len) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  template <typename T>
  void mix_value(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    mix(&v, sizeof(v));
  }
  void mix_step(const StepFunction& f) {
    for (const StepFunction::Point& p : f.points()) {
      mix_value(p.time);
      mix_value(p.value);
    }
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace

std::uint64_t metrics_fingerprint(const RunMetrics& m) {
  Fnv1a h;
  h.mix_value(m.jct);
  h.mix_value(m.total_cores);
  h.mix_value(m.sim_events);
  for (const TaskRecord& t : m.tasks) {
    h.mix_value(t.stage.value());
    h.mix_value(t.index);
    h.mix_value(t.exec.value());
    h.mix_value(static_cast<int>(t.locality));
    h.mix_value(t.launch);
    h.mix_value(t.finish);
    h.mix_value(t.fetch_time);
    h.mix_value(t.compute_time);
    h.mix_value(t.speculative);
    h.mix_value(t.cancelled);
  }
  for (const StageRecord& s : m.stages) {
    h.mix_value(s.id.value());
    h.mix(s.name.data(), s.name.size());
    h.mix_value(s.ready_time);
    h.mix_value(s.first_launch);
    h.mix_value(s.finish_time);
  }
  h.mix_value(m.cache.local_memory_hits);
  h.mix_value(m.cache.other_memory_hits);
  h.mix_value(m.cache.disk_reads);
  h.mix_value(m.cache.total_reads);
  h.mix_value(m.cache.insertions);
  h.mix_value(m.cache.evictions);
  h.mix_value(m.cache.proactive_evictions);
  h.mix_value(m.cache.prefetches);
  h.mix_value(m.cache.rejected_admissions);
  for (const std::int64_t c : m.locality_histogram) h.mix_value(c);
  h.mix_step(m.busy_cores);
  h.mix_step(m.running_tasks);
  h.mix_step(m.reserved_cores);
  // Fault counters enter the digest only when a fault actually fired, so
  // fault-free runs keep the exact digests of pre-fault-subsystem builds.
  if (m.faults.any()) {
    h.mix_value(m.faults.executor_crashes);
    h.mix_value(m.faults.transient_failures);
    h.mix_value(m.faults.crash_failures);
    h.mix_value(m.faults.retries);
    h.mix_value(m.faults.memory_blocks_lost);
    h.mix_value(m.faults.disk_copies_lost);
    h.mix_value(m.faults.rereplications);
    h.mix_value(m.faults.blocks_fully_lost);
    h.mix_value(m.faults.lineage_recomputes);
    h.mix_value(m.faults.suspicions);
    h.mix_value(m.faults.false_suspicions);
    h.mix_value(m.faults.executors_declared_dead);
    h.mix_value(m.faults.heartbeats_dropped);
    h.mix_value(m.faults.deferred_reports);
    h.mix_value(m.faults.partition_stalled_fetches);
    h.mix_value(m.faults.degraded_launches);
    // Nested gate: faulty runs that predate heavy-tail injection mixed
    // no such counter, so a zero value must stay out of their digests.
    if (m.faults.heavy_tail_injections != 0) {
      h.mix_value(m.faults.heavy_tail_injections);
    }
    h.mix_value(m.faults.blacklist_entries);
    h.mix_value(m.faults.blacklist_exits);
    h.mix_value(m.faults.proactive_rereplications);
    h.mix_value(m.faults.rereplicated_bytes.count());
    for (const FaultStats::PerExecutor& e : m.faults.per_executor) {
      h.mix_value(e.crashes);
      h.mix_value(e.transient_failures);
      h.mix_value(e.suspicions);
      h.mix_value(e.false_suspicions);
      h.mix_value(e.blacklist_entries);
      h.mix_value(e.blacklist_exits);
      h.mix_value(e.rereplicated_blocks);
      h.mix_value(e.rereplicated_bytes.count());
    }
    for (const TaskRecord& t : m.tasks) h.mix_value(t.failed);
  }
  // Hedged-speculation accounting gates in only when hedging actually
  // did something, so hedge-off runs keep their pinned digests.
  if (m.hedge.any()) {
    h.mix_value(m.hedge.hedges_launched);
    h.mix_value(m.hedge.hedges_won);
    h.mix_value(m.hedge.hedges_cancelled);
    h.mix_value(m.hedge.wasted_core_us.count());
    h.mix_value(m.hedge.escalations);
  }
  // Lifecycle breaches likewise gate in only when one fired: clean runs
  // keep their pinned digests, while a release-build run that bypassed a
  // transition table can never alias a clean run's fingerprint.
  if (m.fsm.any()) {
    h.mix_value(m.fsm.task.illegal);
    h.mix_value(m.fsm.block.illegal);
    h.mix_value(m.fsm.executor.illegal);
  }
  // Serving fields gate in only on multi-job runs, keeping every
  // single-job digest bit-identical to pre-serving builds. The
  // effective-hit counters ride along here for the same reason.
  if (!m.jobs.empty()) {
    h.mix_value(m.cache.effective_task_reads);
    h.mix_value(m.cache.effective_task_hits);
    for (const JobStats& j : m.jobs) {
      h.mix(j.name.data(), j.name.size());
      h.mix_value(j.weight);
      h.mix_value(j.submitted);
      h.mix_value(j.first_launch);
      h.mix_value(j.finished);
      h.mix_value(j.tasks);
      h.mix_value(j.stages);
      h.mix_value(j.effective_task_reads);
      h.mix_value(j.effective_task_hits);
    }
  }
  return h.value();
}

double RunMetrics::high_locality_fraction() const {
  std::int64_t high = locality_count(Locality::Process) +
                      locality_count(Locality::Node);
  std::int64_t total = 0;
  for (const std::int64_t c : locality_histogram) total += c;
  return total > 0 ? static_cast<double>(high) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace dagon
