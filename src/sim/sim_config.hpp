// Complete configuration of one simulated run: cluster, data plane,
// scheduler, cache policy, delay-scheduling variant, and noise knobs.
//
// The paper's four evaluated systems map to:
//   stock Spark (FIFO+LRU):  {Fifo,   Lru, Native}
//   Graphene+LRU:            {Graphene, Lru, Native}
//   Graphene+MRD:            {Graphene, Mrd, Native}
//   Dagon:                   {Dagon,  Lrp, SensitivityAware}
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_policy.hpp"
#include "cluster/cost_model.hpp"
#include "cluster/hdfs.hpp"
#include "cluster/topology.hpp"
#include "fault/fault_config.hpp"
#include "sched/delay_scheduling.hpp"
#include "sched/speculation.hpp"
#include "sched/stage_selector.hpp"

namespace dagon {

struct SimConfig {
  TopologySpec topology;
  HdfsSpec hdfs;
  CostModelSpec cost;

  SchedulerKind scheduler = SchedulerKind::Fifo;
  CachePolicyKind cache = CachePolicyKind::Lru;
  DelayKind delay = DelayKind::Native;
  LocalityWaits waits;
  /// Algorithm 2 acceptance slack: a low-locality task is admitted when
  /// its estimated duration < ect_slack * ect (Eq. 7). 1.0 = strict.
  double ect_slack = 1.1;

  /// Disables all memory caching (the paper's Fig. 9/10 ablations run
  /// with "caching disabled").
  bool cache_enabled = true;
  /// Enables prefetching for policies that support it (MRD/LRP).
  bool prefetch_enabled = true;

  SpeculationConfig speculation;

  /// One executor speed tier: `fraction` of the cluster's executors run
  /// all compute (and data movement) scaled by `mult` (< 1 = faster
  /// than baseline, > 1 = slower). Executors not covered by any tier
  /// stay at 1.0 ("normal").
  struct ExecTier {
    std::string name;
    double fraction = 0.0;
    double mult = 1.0;
  };

  /// Executor heterogeneity + congestion-aware escalation knobs.
  struct TailConfig {
    /// Speed tiers; empty = homogeneous cluster, bit-identical to
    /// builds without the subsystem. Tier membership is assigned at
    /// driver construction from a dedicated forked RNG stream.
    std::vector<ExecTier> tiers;
    /// Critical-path escalation: when a stage on the DAG's critical
    /// path has pending tasks that have waited >= `escalation_wait`
    /// and a faster-tier executor has free cores, launch there even at
    /// worse locality (delay-scheduling-style patience, then escalate).
    bool escalate = false;
    SimTime escalation_wait = 2 * kSec;

    [[nodiscard]] bool enabled() const { return !tiers.empty(); }
  };
  TailConfig tail;

  /// Failure model (executor crashes, block loss, transient task
  /// failures) and lineage-recovery knobs. Default off: every fault draw
  /// comes from a dedicated RNG stream, so fault-free runs are
  /// bit-identical to builds without the subsystem.
  FaultConfig faults;

  /// Scheduler wake-up period (Spark's revive interval).
  SimTime tick_interval = 100 * kMsec;

  /// Incremental hot paths in the per-event schedule loop: memoized
  /// (stage, task, executor) locality invalidated on block-placement
  /// changes, and dirty-flag-guarded priority pushes into the oracle.
  /// Results are identical either way; `false` keeps the recompute-
  /// per-event baseline for A/B measurement (bench_perf).
  bool incremental_scheduling = true;

  /// Lognormal-ish multiplicative noise on task compute durations
  /// (sigma of a normal factor centred at 1; 0 = deterministic).
  double duration_noise = 0.0;

  /// RNG seed (HDFS placement, noise).
  std::uint64_t seed = 42;

  /// Collect per-executor busy profiles and pending-task samples (needed
  /// by the Fig. 4 bench only; costs O(executors) per tick).
  bool per_executor_profiles = false;

  /// Multi-tenant capacity fluctuation (the paper's varying RC in
  /// Eq. (3)): from `at` onward, `reserved_fraction` of every executor's
  /// vCPUs belongs to other tenants. Reservations are claimed from free
  /// cores first and from task completions after; phases must be sorted
  /// by time.
  struct CapacityPhase {
    SimTime at{};
    double reserved_fraction = 0.0;
  };
  std::vector<CapacityPhase> capacity_phases;

  /// Online serving: one logical job inside a merged multi-job DAG.
  /// `stages` lists the stage ids belonging to this job (a partition of
  /// the DAG's stages across all jobs); until `submit_at` those stages
  /// are gated (not schedulable, references inactive in the oracle).
  struct ServingJob {
    std::string name;
    SimTime submit_at{};
    /// Weighted-fair-share weight (>=1); a job with weight 2 is entitled
    /// to twice the running cores of a weight-1 job under contention.
    std::int32_t weight = 1;
    std::vector<StageId> stages;
  };

  /// Online multi-job serving mode. Empty `jobs` = classic single-job
  /// batch semantics, bit-identical to builds without the subsystem.
  struct ServingConfig {
    std::vector<ServingJob> jobs;
    /// Inter-job weighted fair sharing: the schedule loop offers free
    /// cores to the job with the lowest running_cores/weight ratio
    /// first. Off = FIFO across jobs (arrival order, stage-selector
    /// order within).
    bool fair_share = false;

    [[nodiscard]] bool enabled() const { return !jobs.empty(); }
  };
  ServingConfig serving;

  /// Hard wall on simulated time (runaway guard).
  SimTime max_sim_time = 24LL * 3600 * kSec;
};

}  // namespace dagon
