// Discrete-event queue with a total, deterministic order:
// (time, insertion sequence). Two runs that push the same events pop
// them identically — the foundation of the simulator's reproducibility.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>

#include "common/sim_time.hpp"
#include "common/strong_id.hpp"
#include "dag/block.hpp"

namespace dagon {

enum class EventType {
  TaskFinish,
  PrefetchDone,
  /// Periodic scheduler wake-up; lets delay-scheduling timers expire
  /// even when no task event occurs.
  Tick,
  /// Multi-tenant reservation change (SimConfig::capacity_phases).
  CapacityChange,
  /// Fault injection: an executor dies (FaultConfig::crashes).
  ExecutorCrash,
  /// Fault injection: a running attempt fails partway through.
  TaskFail,
  /// A failed task index's retry backoff expired; re-queue it.
  TaskRetry,
  /// Periodic cached-block loss sampling (FaultConfig block loss).
  FaultTick,
  /// An executor's periodic heartbeat emission reaches the driver
  /// (gray-failure monitoring; dropped while the executor's rack is
  /// partitioned).
  Heartbeat,
};

struct Event {
  SimTime time = 0;
  EventType type = EventType::Tick;
  /// TaskFinish / TaskFail: which attempt.
  TaskId task = TaskId::invalid();
  /// PrefetchDone: which executor and block. ExecutorCrash: the victim.
  ExecutorId exec = ExecutorId::invalid();
  BlockId block;
  /// CapacityChange: index into SimConfig::capacity_phases.
  /// TaskRetry: stage id (with `aux2` the task index).
  std::int32_t aux = -1;
  std::int32_t aux2 = -1;
};

class EventQueue {
 public:
  void push(const Event& e);

  /// Pops the earliest event; nullopt when empty.
  std::optional<Event> pop();

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest event (kTimeInfinity when empty).
  [[nodiscard]] SimTime next_time() const;

 private:
  struct Entry {
    Event event;
    std::uint64_t seq;
    bool operator>(const Entry& other) const {
      if (event.time != other.event.time) return event.time > other.event.time;
      return seq > other.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dagon
