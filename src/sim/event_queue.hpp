// Discrete-event queue with a total, deterministic order:
// (time, insertion sequence). Two runs that push the same events pop
// them identically — the foundation of the simulator's reproducibility.
//
// Implementation: a calendar (bucketed) queue. Near-future events land
// in one of 1024 fixed-width time buckets (32.768 ms each, so shifts
// replace divisions), each a small binary min-heap on (time, seq); the
// occupancy bitmap lets pop() skip runs of empty buckets 64 at a time.
// Events beyond the ~33.5 s horizon — and stragglers below the current
// window after a far-forward jump — go to an overflow min-heap, the
// heap fallback for sparse tails. pop() compares the first occupied
// bucket's top against the overflow top, so the (time, seq) order is
// exact by construction, independent of bucket geometry.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/sim_time.hpp"
#include "common/strong_id.hpp"
#include "dag/block.hpp"

namespace dagon {

enum class EventType {
  TaskFinish,
  PrefetchDone,
  /// Periodic scheduler wake-up; lets delay-scheduling timers expire
  /// even when no task event occurs.
  Tick,
  /// Multi-tenant reservation change (SimConfig::capacity_phases).
  CapacityChange,
  /// Fault injection: an executor dies (FaultConfig::crashes).
  ExecutorCrash,
  /// Fault injection: a running attempt fails partway through.
  TaskFail,
  /// A failed task index's retry backoff expired; re-queue it.
  TaskRetry,
  /// Periodic cached-block loss sampling (FaultConfig block loss).
  FaultTick,
  /// An executor's periodic heartbeat emission reaches the driver
  /// (gray-failure monitoring; dropped while the executor's rack is
  /// partitioned).
  Heartbeat,
  /// Online serving: a job arrives (`aux` = index into
  /// SimConfig::serving.jobs); its stages leave the gated state.
  JobSubmit,
  /// Online serving: a job's last stage completed (`aux` = job index).
  /// Emitted for metrics/trace symmetry — all bookkeeping already
  /// happened at the final TaskFinish.
  JobFinish,
};

struct Event {
  SimTime time{};
  EventType type = EventType::Tick;
  /// TaskFinish / TaskFail: which attempt.
  TaskId task = TaskId::invalid();
  /// PrefetchDone: which executor and block. ExecutorCrash: the victim.
  ExecutorId exec = ExecutorId::invalid();
  BlockId block;
  /// CapacityChange: index into SimConfig::capacity_phases.
  /// TaskRetry: stage id (with `aux2` the task index).
  std::int32_t aux = -1;
  std::int32_t aux2 = -1;
};

class EventQueue {
 public:
  void push(const Event& e);

  /// Pops the earliest event; nullopt when empty.
  std::optional<Event> pop();

  /// Allocation-free drain-loop fast path: writes the earliest event
  /// into `out` and returns true, or returns false when empty.
  bool pop_into(Event& out);

  /// Pre-sizes the overflow heap (the only container that grows with
  /// far-future backlog); bucket storage is allocated lazily on first
  /// push and reused for the rest of the run.
  void reserve(std::size_t n) { overflow_.reserve(n); }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Time of the earliest event (kTimeInfinity when empty).
  [[nodiscard]] SimTime next_time() const;

 private:
  struct Entry {
    Event event;
    std::uint64_t seq;
    bool operator>(const Entry& other) const {
      if (event.time != other.event.time) return event.time > other.event.time;
      return seq > other.seq;
    }
  };

  static constexpr int kWidthBits = 15;   // 32.768 ms per bucket
  static constexpr int kBucketBits = 10;  // 1024 buckets
  static constexpr SimTime kWidth{std::int64_t{1} << kWidthBits};
  static constexpr std::size_t kNumBuckets = std::size_t{1} << kBucketBits;
  static constexpr SimTime kHorizon{kWidth.count() *
                                    static_cast<std::int64_t>(kNumBuckets)};

  [[nodiscard]] static std::size_t bucket_of(SimTime t) {
    return static_cast<std::size_t>(t.count() >> kWidthBits) &
           (kNumBuckets - 1);
  }
  [[nodiscard]] static SimTime window_start(SimTime t) {
    return SimTime{(t.count() >> kWidthBits) << kWidthBits};
  }

  void init_calendar(SimTime t);
  void bucket_push(const Entry& entry);
  /// Re-anchors the (empty) calendar at `t` and promotes overflow
  /// entries that now fall inside the horizon into their buckets.
  void rebase(SimTime t);
  /// First occupied bucket at/after cur_ (circular). Pre: bucketed_ > 0.
  [[nodiscard]] std::size_t first_occupied() const;

  std::vector<std::vector<Entry>> buckets_;  // per-bucket min-heaps
  std::vector<std::uint64_t> occupied_;      // bitmap over buckets_
  std::vector<Entry> overflow_;              // min-heap (heap fallback)
  SimTime base_{};     // window start of bucket cur_
  std::size_t cur_ = 0;  // bucket holding the current time window
  std::size_t bucketed_ = 0;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dagon
