// SimDriver: the discrete-event simulation of one Spark application run
// on one cluster, under a chosen (scheduler, cache policy, delay policy)
// combination.
//
// One driver = one run. Construction wires the substrates together
// (topology, HDFS placement, cost model, reference oracle, block
// managers, job state); run() executes to completion and returns the
// collected metrics. Runs are deterministic for a fixed SimConfig::seed.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cache/block_manager_master.hpp"
#include "fault/failure_detector.hpp"
#include "fault/fault_plan.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/sim_config.hpp"

namespace dagon {

class SimDriver {
 public:
  SimDriver(const JobDag& dag, const JobProfile& profile,
            const SimConfig& config);

  /// Runs the job to completion; callable once.
  [[nodiscard]] RunMetrics run();

  // Accessors for tests and diagnostics.
  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] const BlockManagerMaster& master() const { return master_; }
  [[nodiscard]] const JobState& state() const { return state_; }
  [[nodiscard]] const HdfsPlacement& hdfs() const { return hdfs_; }

 private:
  void validate() const;
  void schedule_loop(SimTime now);
  void launch_task(StageId s, const Assignment& a, SimTime now,
                   bool speculative);
  void handle_task_finish(TaskId id, SimTime now);
  void cancel_attempt(TaskId id, SimTime now);
  void handle_prefetch_done(const Event& e, SimTime now);
  /// Applies SimConfig::capacity_phases[index]: re-targets per-executor
  /// tenant reservations, claiming free cores now and task completions
  /// later (claim_reservation).
  void handle_capacity_change(std::int32_t index, SimTime now);
  /// Moves up to `pending_reservation` cores of `exec` from free to
  /// reserved (called whenever cores free up).
  void claim_reservation(ExecutorId exec, SimTime now);
  void issue_prefetches(SimTime now);
  void try_speculation(SimTime now);
  // -- tail tolerance -----------------------------------------------------
  /// Assigns a speed tier (TailConfig::tiers) to each executor at
  /// construction, from a dedicated forked RNG stream.
  void assign_speed_tiers();
  /// Congestion-aware escalation (TailConfig::escalate): a critical-path
  /// stage whose pending tasks have waited past `escalation_wait` gets
  /// its next task launched on the fastest free tier, bypassing the
  /// locality ladder.
  void try_escalation(SimTime now);
  // -- fault injection & lineage recovery --------------------------------
  /// Kills `exec`: fails its running attempts, removes its cores, drops
  /// its blocks and recovers whatever data died with it.
  void handle_executor_crash(ExecutorId exec, SimTime now);
  /// Terminal failure of one running attempt (transient fault or crash);
  /// returns cores and schedules a retry when no live twin remains.
  void fail_attempt(TaskId id, SimTime now, bool from_crash);
  /// Queues a TaskRetry for (s, index) after capped exponential backoff.
  void schedule_retry(StageId s, std::int32_t index, SimTime now);
  /// Backoff expired: re-queue the task index unless it completed (or
  /// re-queued) meanwhile; recovers missing inputs first.
  void handle_task_retry(StageId s, std::int32_t index, SimTime now);
  /// Periodic random cached-block loss sampling (FaultTick).
  void handle_fault_tick(SimTime now);
  /// Recomputes every input block of (s, index) that no longer exists.
  void ensure_inputs_available(StageId s, std::int32_t index, SimTime now);
  /// Lineage recovery of one lost block: re-opens the producing task
  /// index (and, recursively, whatever *its* recompute needs).
  void recover_block(const BlockId& block, SimTime now);
  /// All task attempts of (s, index) currently in Running state?
  [[nodiscard]] bool has_live_attempt(StageId s, std::int32_t index) const;
  // -- gray failures (heartbeats, suspicion, partitions, blacklist) -------
  /// A heartbeat emission from `exec` reached (or failed to reach, if
  /// partitioned) the driver; feeds the detector and re-arms the next
  /// emission.
  void handle_heartbeat(ExecutorId exec, SimTime now);
  /// Re-classifies every live executor against the detector (Tick).
  void evaluate_suspicions(SimTime now);
  /// Applies the detector's verdict for one executor: enter/clear
  /// suspicion, or declare it dead.
  void evaluate_executor(ExecutorId exec, SimTime now);
  void enter_suspicion(ExecutorId exec, SimTime now);
  /// `recovered` = the executor resumed heartbeating (a false positive,
  /// re-admitted); false when clearing state on the way to a crash.
  void clear_suspicion(ExecutorId exec, SimTime now, bool recovered);
  /// Suspect never resumed: recover it exactly like a planned crash.
  void declare_dead(ExecutorId exec, SimTime now);
  /// Blacklist accounting for one attempt failure on `exec`.
  void note_attempt_failure(ExecutorId exec, SimTime now);
  /// Ends probation for blacklisted executors whose timer expired.
  void expire_blacklists(SimTime now);
  /// True (and re-queues the event to heal time) when the attempt's
  /// executor sits behind an active partition, so the driver cannot
  /// observe the completion/failure yet.
  bool defer_partitioned_report(const Event& e, SimTime now);
  [[nodiscard]] RackId rack_of_exec(ExecutorId exec) const {
    return topo_.rack_of(topo_.node_of(exec));
  }
  [[nodiscard]] FaultStats::PerExecutor& exec_faults(ExecutorId exec) {
    return metrics_.faults.per_executor[static_cast<std::size_t>(
        exec.value())];
  }
  // -- online serving (multi-job mode) ------------------------------------
  /// JobSubmit fired: ungates the job's stages and re-activates their
  /// references in the oracle.
  void handle_job_submit(std::int32_t job, SimTime now);
  /// Job index owning stage `s`; -1 on single-job runs.
  [[nodiscard]] std::int32_t job_of(StageId s) const {
    return serving_ ? stage_job_[static_cast<std::size_t>(s.value())] : -1;
  }
  /// End-of-run invariant: every resource returned, no half-open state.
  void verify_quiescent() const;
  /// Pushes current pv values / current stage into the oracle so the
  /// cache policies see live scheduler state (the paper's Fig. 7 arrow
  /// from TaskScheduler to BlockManagerMaster).
  void push_priority_update();
  void sample_pending(SimTime now);
  void finalize_metrics(SimTime end);

  /// Dense global ordinal of task (s, index): prefix sums of stage task
  /// counts, so all per-task bookkeeping lives in flat arrays.
  [[nodiscard]] std::size_t task_ord(StageId s, std::int32_t index) const {
    return static_cast<std::size_t>(
        task_offset_[static_cast<std::size_t>(s.value())] + index);
  }

  SimConfig config_;
  const JobDag* dag_;
  JobProfile profile_;
  Topology topo_;
  Rng rng_;
  CostModel cost_;
  HdfsPlacement hdfs_;
  ReferenceOracle oracle_;
  std::unique_ptr<CachePolicy> policy_;
  BlockManagerMaster master_;
  JobState state_;
  std::unique_ptr<StageSelector> selector_;
  std::unique_ptr<DelayPolicy> delay_;
  EventQueue queue_;
  /// Present iff config_.faults.enabled (construction validates knobs).
  std::optional<FaultPlan> fault_plan_;
  /// True when the plan can actually perturb the run.
  bool faults_active_ = false;
  /// True when the gray layer runs: heartbeats are emitted and the
  /// suspicion detector classifies executors.
  bool gray_active_ = false;
  /// Present iff gray_active_.
  std::optional<FailureDetector> detector_;
  // -- tail-tolerance state -----------------------------------------------
  /// True when hedged speculation is on (speculation.enabled && hedge):
  /// losing attempts go Running → Cancelled and HedgeStats is kept.
  bool hedge_active_ = false;
  /// True when tier escalation runs (tiers configured && tail.escalate).
  bool escalate_active_ = false;
  /// stage id -> 1 when the stage sits on the DAG's critical path
  /// (longest cp-length chain); sized only when escalation is active.
  std::vector<char> stage_critical_;
  /// Last non-speculative launch time per stage (-1 = none yet); the
  /// escalation wait runs from max(ready_time, last launch).
  std::vector<SimTime> stage_last_launch_;

  /// One task attempt. The attempt's own lifecycle lives in
  /// task.status; `Cancelled` marks a hedge/speculation loser torn down
  /// when a sibling finished first.
  struct AttemptRuntime {
    TaskRuntime task;
  };
  std::vector<AttemptRuntime> attempts_;  // indexed by TaskId
  /// task_offset_[s] = global ordinal of stage s's task 0 (see task_ord).
  std::vector<std::int64_t> task_offset_;
  /// Attempt chain per task ordinal (speculation twins, retries): an
  /// intrusive singly-linked list of attempt ids in launch order —
  /// first/last per task, next per attempt, -1 = none.
  std::vector<std::int64_t> attempt_first_;
  std::vector<std::int64_t> attempt_last_;
  std::vector<std::int64_t> attempt_next_;  // parallel to attempts_
  /// per stage: which task indices have produced their output block.
  std::vector<std::vector<bool>> produced_;
  /// 1 = a prefetch of this block ordinal is in flight somewhere.
  std::vector<char> prefetch_inflight_;
  /// failures so far per task ordinal, for retry backoff / the cap.
  std::vector<std::int32_t> retry_counts_;

  // -- online serving state (empty on single-job runs) --------------------
  /// True iff config_.serving.enabled(): multi-job mode.
  bool serving_ = false;
  /// Stage -> owning job index (dense, from ServingConfig::jobs).
  std::vector<std::int32_t> stage_job_;
  struct JobRuntime {
    bool submitted = false;
    SimTime submit_time{};
    SimTime first_launch{-1};
    SimTime finished{-1};
    /// Stages of this job not yet finished; 0 = job complete.
    std::int32_t unfinished_stages = 0;
    /// vCPUs its running attempts hold right now (fair-share numerator).
    Cpus running_cores{};
    std::int64_t effective_task_reads = 0;
    std::int64_t effective_task_hits = 0;
  };
  std::vector<JobRuntime> jobs_;
  /// Scratch job ordering for the fair-share schedule loop.
  std::vector<std::int32_t> job_order_;

  RunMetrics metrics_;
  /// Last JobState::pv_epoch pushed into the oracle (0 = never).
  std::uint64_t pushed_pv_epoch_ = 0;
  bool ran_ = false;
};

}  // namespace dagon
