#include "sim/driver.hpp"

#include <algorithm>
#include <array>

#include "common/error.hpp"
#include "common/fsm.hpp"
#include "common/log.hpp"
#include "common/sorted_view.hpp"
#include "dag/dag_analysis.hpp"
#include "sched/task_locality.hpp"

namespace dagon {

namespace {

/// Rng::fork stream id reserved for speed-tier membership draws.
/// Dedicated (like the fault streams) so configuring tiers never
/// perturbs HDFS placement or duration noise, and tiers-off runs never
/// draw from it at all.
constexpr std::uint64_t kTierRngStream = 0x7165;

}  // namespace

SimDriver::SimDriver(const JobDag& dag, const JobProfile& profile,
                     const SimConfig& config)
    : config_(config),
      dag_(&dag),
      profile_(profile),
      topo_(config.topology),
      rng_(config.seed),
      cost_(config.cost),
      hdfs_(dag, topo_, config.hdfs, rng_),
      oracle_(dag),
      policy_(make_cache_policy(config.cache)),
      master_(topo_, dag, hdfs_, oracle_, *policy_, config.cache_enabled),
      state_(dag, topo_, profile_),
      selector_(make_stage_selector(config.scheduler, dag, profile_,
                                    config.topology.cores_per_executor)),
      delay_(make_delay_policy(config.delay, config.waits, cost_,
                               config.ect_slack)) {
  validate();
  // Release-build lifecycle enforcement: illegal transitions in
  // job_state / cache master / the driver itself land in these counters
  // and poison the fingerprint (see metrics_fingerprint).
  state_.set_fsm_violations(&metrics_.fsm.task);
  master_.set_fsm_violations(&metrics_.fsm.block);
  if (config_.faults.enabled) {
    fault_plan_.emplace(config_.faults, topo_.num_executors(),
                        topo_.num_racks(), config_.seed);
    faults_active_ = config_.faults.active();
    gray_active_ = fault_plan_->monitors_heartbeats();
    if (gray_active_) {
      detector_.emplace(config_.faults.heartbeat_interval,
                        config_.faults.suspect_phi, config_.faults.dead_phi);
    }
    metrics_.faults.per_executor.resize(topo_.num_executors());
  }
  hedge_active_ = config_.speculation.enabled && config_.speculation.hedge;
  if (config_.tail.enabled()) assign_speed_tiers();
  escalate_active_ = config_.tail.enabled() && config_.tail.escalate;
  if (escalate_active_) {
    // Mark the DAG's critical chain: stage s is critical when the
    // longest root-to-s prefix plus the cp-length through s spans the
    // whole critical path (so ties mark every maximal chain).
    const std::vector<SimTime> cp = critical_path_lengths(dag);
    SimTime total{};
    for (const SimTime v : cp) total = std::max(total, v);
    std::vector<SimTime> up(dag.num_stages());
    for (const StageId sid : dag.topological_order()) {
      const Stage& st = dag.stage(sid);
      SimTime longest_task{};
      for (std::int32_t t = 0; t < st.num_tasks; ++t) {
        longest_task = std::max(longest_task, st.task_compute_time(t));
      }
      for (const StageId c : st.children) {
        SimTime& u = up[static_cast<std::size_t>(c.value())];
        u = std::max(u,
                     up[static_cast<std::size_t>(sid.value())] + longest_task);
      }
    }
    stage_critical_.assign(dag.num_stages(), 0);
    for (std::size_t i = 0; i < dag.num_stages(); ++i) {
      if (up[i] + cp[i] == total) stage_critical_[i] = 1;
    }
    stage_last_launch_.assign(dag.num_stages(), SimTime{-1});
  }
  delay_->set_locality_cache_enabled(config_.incremental_scheduling);
  // LERC scores blocks by effective reference count, which needs the
  // oracle's peer-group residency mirror. Enabled only for LERC so every
  // other policy's runs stay bit-identical to pre-LERC builds.
  if (config_.cache == CachePolicyKind::Lerc) {
    oracle_.enable_peer_tracking();
  }
  serving_ = config_.serving.enabled();
  if (serving_) {
    stage_job_.assign(dag.num_stages(), -1);
    jobs_.resize(config_.serving.jobs.size());
    for (std::size_t j = 0; j < config_.serving.jobs.size(); ++j) {
      const SimConfig::ServingJob& job = config_.serving.jobs[j];
      jobs_[j].submit_time = std::max(SimTime{0}, job.submit_at);
      jobs_[j].unfinished_stages =
          static_cast<std::int32_t>(job.stages.size());
      for (const StageId s : job.stages) {
        stage_job_[static_cast<std::size_t>(s.value())] =
            static_cast<std::int32_t>(j);
        // Every job starts gated; run() ungates submit-at-0 jobs before
        // the first schedule pass and queues JobSubmit for the rest.
        state_.set_stage_gated(s, true);
        oracle_.set_stage_active(s, false);
      }
    }
  }
  produced_.resize(dag.num_stages());
  for (const Stage& s : dag.stages()) {
    produced_[static_cast<std::size_t>(s.id.value())].assign(
        static_cast<std::size_t>(s.num_tasks), false);
  }
  task_offset_.reserve(dag.num_stages());
  std::int64_t total_tasks = 0;
  for (const Stage& s : dag.stages()) {
    task_offset_.push_back(total_tasks);
    total_tasks += s.num_tasks;
  }
  attempt_first_.assign(static_cast<std::size_t>(total_tasks), -1);
  attempt_last_.assign(static_cast<std::size_t>(total_tasks), -1);
  attempt_next_.reserve(static_cast<std::size_t>(total_tasks));
  attempts_.reserve(static_cast<std::size_t>(total_tasks));
  retry_counts_.assign(static_cast<std::size_t>(total_tasks), 0);
  prefetch_inflight_.assign(static_cast<std::size_t>(dag.num_blocks()), 0);
  // Pre-size the event queue's overflow heap from the task count: only
  // far-future events land there, so a modest clamp suffices.
  queue_.reserve(static_cast<std::size_t>(
      std::min<std::int64_t>(total_tasks + 64, 1 << 16)));
  metrics_.total_cores = topo_.total_cores();
  if (config_.per_executor_profiles) {
    metrics_.executor_profiles.resize(topo_.num_executors());
    for (const Executor& e : topo_.executors()) {
      metrics_.executor_profiles[static_cast<std::size_t>(e.id.value())].id =
          e.id;
    }
  }
}

void SimDriver::validate() const {
  Cpus max_cores{};
  for (const Executor& e : topo_.executors()) {
    max_cores = std::max(max_cores, e.cores);
  }
  for (const Stage& s : dag_->stages()) {
    if (s.task_cpus > max_cores) {
      throw ConfigError("stage '" + s.name +
                        "' demands more vCPUs than any executor has");
    }
  }
  if (config_.tick_interval <= SimTime{0}) {
    throw ConfigError("tick_interval must be positive");
  }
  if (config_.max_sim_time <= SimTime{0}) {
    throw ConfigError("max_sim_time must be positive");
  }
  if (config_.duration_noise < 0.0) {
    throw ConfigError("duration_noise must be non-negative");
  }
  if (config_.ect_slack <= 0.0) {
    throw ConfigError("ect_slack must be positive");
  }
  if (config_.speculation.quantile < 0.0 ||
      config_.speculation.quantile > 1.0) {
    throw ConfigError("speculation quantile must be in [0, 1]");
  }
  if (config_.speculation.multiplier <= 0.0) {
    throw ConfigError("speculation multiplier must be positive");
  }
  double tier_total = 0.0;
  // dagonlint: allow(float-accum): config validation over a fixed,
  // spec-ordered tier list; the sum never feeds back into the sim.
  for (const SimConfig::ExecTier& tier : config_.tail.tiers) {
    if (tier.fraction < 0.0 || tier.fraction > 1.0) {
      throw ConfigError("exec tier '" + tier.name +
                        "' fraction must be in [0, 1]");
    }
    if (tier.mult <= 0.0) {
      throw ConfigError("exec tier '" + tier.name +
                        "' mult must be positive");
    }
    tier_total += tier.fraction;
  }
  if (tier_total > 1.0 + 1e-9) {
    throw ConfigError("exec tier fractions must sum to <= 1");
  }
  if (config_.tail.escalation_wait <= SimTime{0}) {
    throw ConfigError("tail.escalation_wait must be positive");
  }
  if (config_.serving.enabled()) {
    std::vector<char> owned(dag_->num_stages(), 0);
    for (const SimConfig::ServingJob& job : config_.serving.jobs) {
      if (job.weight < 1) {
        throw ConfigError("serving job '" + job.name +
                          "' needs weight >= 1");
      }
      if (job.stages.empty()) {
        throw ConfigError("serving job '" + job.name + "' has no stages");
      }
      for (const StageId s : job.stages) {
        if (!s.valid() ||
            static_cast<std::size_t>(s.value()) >= owned.size()) {
          throw ConfigError("serving job '" + job.name +
                            "' lists an unknown stage");
        }
        if (owned[static_cast<std::size_t>(s.value())] != 0) {
          throw ConfigError("serving jobs must partition the DAG: stage "
                            "owned twice");
        }
        owned[static_cast<std::size_t>(s.value())] = 1;
      }
    }
    for (const char o : owned) {
      if (o == 0) {
        throw ConfigError(
            "serving jobs must partition the DAG: unowned stage");
      }
    }
  }
  SimTime prev{-1};
  for (const SimConfig::CapacityPhase& phase : config_.capacity_phases) {
    if (phase.at < SimTime{0} || phase.at <= prev) {
      throw ConfigError("capacity_phases must be sorted by time");
    }
    if (phase.reserved_fraction < 0.0 || phase.reserved_fraction >= 1.0) {
      throw ConfigError("reserved_fraction must be in [0, 1)");
    }
    prev = phase.at;
  }
}

RunMetrics SimDriver::run() {
  DAGON_CHECK_MSG(!ran_, "SimDriver::run() is single-shot");
  ran_ = true;

  master_.seed_initial_cache(SimTime{0});
  if (serving_) {
    for (std::size_t j = 0; j < config_.serving.jobs.size(); ++j) {
      const SimTime at = config_.serving.jobs[j].submit_at;
      if (at <= SimTime{0}) {
        // Already here at start of time: ungate directly, no event.
        handle_job_submit(static_cast<std::int32_t>(j), SimTime{0});
      } else {
        queue_.push(Event{at, EventType::JobSubmit, TaskId::invalid(),
                          ExecutorId::invalid(), BlockId{},
                          static_cast<std::int32_t>(j)});
      }
    }
  }
  state_.refresh_ready(SimTime{0});
  push_priority_update();
  schedule_loop(SimTime{0});
  issue_prefetches(SimTime{0});
  if (config_.per_executor_profiles) sample_pending(SimTime{0});
  queue_.push(Event{config_.tick_interval, EventType::Tick,
                    TaskId::invalid(), ExecutorId::invalid(), BlockId{}});
  for (std::size_t i = 0; i < config_.capacity_phases.size(); ++i) {
    queue_.push(Event{config_.capacity_phases[i].at,
                      EventType::CapacityChange, TaskId::invalid(),
                      ExecutorId::invalid(), BlockId{},
                      static_cast<std::int32_t>(i)});
  }
  if (faults_active_) {
    for (const FaultPlan::Crash& c : fault_plan_->crashes()) {
      queue_.push(Event{c.at, EventType::ExecutorCrash, TaskId::invalid(),
                        c.exec, BlockId{}});
    }
    if (fault_plan_->samples_block_loss()) {
      queue_.push(Event{config_.faults.block_loss_interval,
                        EventType::FaultTick, TaskId::invalid(),
                        ExecutorId::invalid(), BlockId{}});
    }
  }
  if (gray_active_) {
    for (const Executor& e : topo_.executors()) {
      detector_->track(e.id, SimTime{0});
      queue_.push(Event{config_.faults.heartbeat_interval,
                        EventType::Heartbeat, TaskId::invalid(), e.id,
                        BlockId{}});
    }
  }

  SimTime now{};
  Event ev;
  while (!state_.all_finished()) {
    DAGON_CHECK_MSG(queue_.pop_into(ev),
                    "simulation deadlock: job unfinished, no events");
    now = ev.time;
    if (now > config_.max_sim_time) {
      throw InvariantError("simulation exceeded max_sim_time — livelock?");
    }
    ++metrics_.sim_events;
    switch (ev.type) {
      case EventType::TaskFinish:
        // A completion behind an active partition is invisible to the
        // driver until the partition heals.
        if (gray_active_ && defer_partitioned_report(ev, now)) break;
        handle_task_finish(ev.task, now);
        break;
      case EventType::PrefetchDone:
        handle_prefetch_done(ev, now);
        break;
      case EventType::CapacityChange:
        handle_capacity_change(ev.aux, now);
        break;
      case EventType::Tick:
        if (!state_.all_finished()) {
          if (gray_active_) evaluate_suspicions(now);
          if (faults_active_) expire_blacklists(now);
          try_speculation(now);
          if (escalate_active_) try_escalation(now);
          if (config_.per_executor_profiles) sample_pending(now);
          queue_.push(Event{now + config_.tick_interval, EventType::Tick,
                            TaskId::invalid(), ExecutorId::invalid(),
                            BlockId{}});
        }
        break;
      case EventType::ExecutorCrash:
        handle_executor_crash(ev.exec, now);
        break;
      case EventType::TaskFail:
        if (gray_active_ && defer_partitioned_report(ev, now)) break;
        fail_attempt(ev.task, now, /*from_crash=*/false);
        break;
      case EventType::TaskRetry:
        handle_task_retry(StageId(ev.aux), ev.aux2, now);
        break;
      case EventType::FaultTick:
        handle_fault_tick(now);
        break;
      case EventType::Heartbeat:
        handle_heartbeat(ev.exec, now);
        break;
      case EventType::JobSubmit:
        handle_job_submit(ev.aux, now);
        break;
      case EventType::JobFinish:
        // Bookkeeping already ran at the job's final TaskFinish; the
        // event makes the completion visible in the event stream.
        DAGON_DEBUG("t=" << format_duration(now) << " job "
                         << config_.serving.jobs[static_cast<std::size_t>(
                                                     ev.aux)]
                                .name
                         << " finished");
        break;
    }
    schedule_loop(now);
    // Proactive sweeps and prefetch scans are O(cached blocks) /
    // O(candidates x executors): run them at tick granularity (plus on
    // stage completions inside handle_task_finish), not on every event —
    // and not on heartbeats, which arrive once per executor per interval.
    if (ev.type != EventType::TaskFinish &&
        ev.type != EventType::Heartbeat) {
      master_.proactive_sweep();
      issue_prefetches(now);
    }
  }
  verify_quiescent();
  finalize_metrics(now);
  return std::move(metrics_);
}

void SimDriver::schedule_loop(SimTime now) {
  // Algorithm 1: repeat {order stages; first admissible launch; restart}
  // until no stage can place a task.
  const bool fair = serving_ && config_.serving.fair_share;
  bool progress = true;
  while (progress) {
    progress = false;
    if (!state_.any_free_cores()) break;
    const std::vector<StageId> order = selector_->order(state_);
    if (!fair) {
      for (const StageId s : order) {
        const auto a = delay_->find(state_, master_, s, now);
        if (a) {
          launch_task(s, *a, now, /*speculative=*/false);
          progress = true;
          break;
        }
      }
      continue;
    }
    // Weighted fair share: offer the next slot to jobs in ascending
    // running_cores/weight order (exact int64 cross-multiplication;
    // ties to the lower job index), falling through to the next job
    // when a job has no admissible task — the loop stays
    // work-conserving. Within one job, the stage selector's order is
    // preserved.
    job_order_.clear();
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      if (jobs_[j].submitted && jobs_[j].unfinished_stages > 0) {
        job_order_.push_back(static_cast<std::int32_t>(j));
      }
    }
    std::sort(job_order_.begin(), job_order_.end(),
              [&](std::int32_t a, std::int32_t b) {
                const auto ca = static_cast<std::int64_t>(
                    jobs_[static_cast<std::size_t>(a)].running_cores.count());
                const auto cb = static_cast<std::int64_t>(
                    jobs_[static_cast<std::size_t>(b)].running_cores.count());
                const auto wa = static_cast<std::int64_t>(
                    config_.serving.jobs[static_cast<std::size_t>(a)]
                        .weight);
                const auto wb = static_cast<std::int64_t>(
                    config_.serving.jobs[static_cast<std::size_t>(b)]
                        .weight);
                if (ca * wb != cb * wa) return ca * wb < cb * wa;
                return a < b;
              });
    for (const std::int32_t j : job_order_) {
      for (const StageId s : order) {
        if (stage_job_[static_cast<std::size_t>(s.value())] != j) continue;
        const auto a = delay_->find(state_, master_, s, now);
        if (a) {
          launch_task(s, *a, now, /*speculative=*/false);
          progress = true;
          break;
        }
      }
      if (progress) break;
    }
  }
}

void SimDriver::launch_task(StageId s, const Assignment& a, SimTime now,
                            bool speculative) {
  // Input fetches: cost + cache accounting + cache fills. Fetches from
  // one source category are pipelined (Spark batches shuffle fetches per
  // remote endpoint), so per-fetch latency is paid once per category,
  // not once per block: bytes are summed and costed in one call.
  std::array<Bytes, 7> bytes_by_source{};
  Bytes serde_bytes{};
  // Gray faults: a degraded executor's transfers and compute are scaled
  // by the slowdown factor; a fetch whose best source sits across an
  // active partition stalls until the heal. Speed tiers compose
  // multiplicatively (a fast tier's mult < 1 speeds everything up).
  const double degrade =
      gray_active_ ? fault_plan_->degrade_factor(a.exec, now) : 1.0;
  const double slow = degrade * state_.executor(a.exec).speed_mult;
  SimTime partition_stall{};
  // Effective-hit accounting (LERC's metric): the read is effective only
  // when EVERY cacheable narrow input is served from cluster memory —
  // a remote-memory read is still a BlockManager cache hit; only a disk
  // read or recompute breaks the peer group's effectiveness.
  bool any_cacheable_narrow = false;
  bool all_inputs_memory = true;
  for (const TaskInput& in : dag_->task_inputs(s, a.task_index)) {
    const auto lookup = master_.lookup(in.block, a.exec);
    const Rdd& rdd = dag_->rdd(in.block.rdd);
    bytes_by_source[static_cast<std::size_t>(lookup.source)] += in.bytes;
    if (gray_active_) {
      const NodeId src_node = is_memory_source(lookup.source)
                                  ? topo_.node_of(lookup.holder)
                                  : lookup.disk_node;
      const SimTime heal = fault_plan_->cross_partition_heal(
          rack_of_exec(a.exec), topo_.rack_of(src_node), now);
      if (heal > now) {
        partition_stall = std::max(partition_stall, heal - now);
      }
    }
    // Raw HDFS input pays no deserialization; RDD data does, on every
    // source except the reader's own memory store.
    if (!rdd.is_input && lookup.source != BlockSource::LocalMemory) {
      serde_bytes += in.bytes;
    }
    // Cache statistics cover persisted-RDD block *gets* only (narrow
    // reads of cacheable RDDs), matching Spark's BlockManager
    // accounting: shuffle fetches and unpersisted inputs never count.
    if (rdd.cacheable && in.kind == DepKind::Narrow) {
      ++metrics_.cache.total_reads;
      any_cacheable_narrow = true;
      if (lookup.source == BlockSource::LocalMemory) {
        ++metrics_.cache.local_memory_hits;
      } else if (is_memory_source(lookup.source)) {
        ++metrics_.cache.other_memory_hits;
      } else {
        ++metrics_.cache.disk_reads;
        all_inputs_memory = false;
      }
    }
    master_.on_block_read(in.block, a.exec, lookup, now);
  }
  if (any_cacheable_narrow) {
    ++metrics_.cache.effective_task_reads;
    if (all_inputs_memory) ++metrics_.cache.effective_task_hits;
    if (serving_) {
      JobRuntime& j = jobs_[static_cast<std::size_t>(job_of(s))];
      ++j.effective_task_reads;
      if (all_inputs_memory) ++j.effective_task_hits;
    }
  }
  SimTime fetch{};
  for (std::size_t src = 0; src < bytes_by_source.size(); ++src) {
    if (bytes_by_source[src] > Bytes{0}) {
      fetch += cost_.fetch_time(bytes_by_source[src],
                                static_cast<BlockSource>(src), 0.0, slow);
    }
  }
  fetch += time_from_usec(cost_.spec().serde_sec_per_byte *
                          static_cast<double>(serde_bytes.count()) *
                          static_cast<double>(kSec.count()) * slow);
  if (partition_stall > SimTime{0}) {
    fetch += partition_stall;
    ++metrics_.faults.partition_stalled_fetches;
  }

  SimTime compute = dag_->stage(s).task_compute_time(a.task_index);
  if (config_.duration_noise > 0.0) {
    const double factor =
        std::max(0.1, rng_.normal(1.0, config_.duration_noise));
    compute = scale_time(compute, factor);
  }
  if (slow != 1.0) {
    compute = scale_time(compute, slow);
  }
  if (degrade > 1.0) ++metrics_.faults.degraded_launches;
  // Heavy-tail injection: one dedicated-stream draw per attempt. The
  // multiplier sticks to THIS attempt only, so a hedge launched later
  // redraws and can genuinely escape the tail.
  if (faults_active_ && fault_plan_->samples_heavy_tail() &&
      fault_plan_->draw_heavy_tail()) {
    compute = scale_time(compute, config_.faults.heavy_tail_mult);
    ++metrics_.faults.heavy_tail_injections;
  }

  const TaskId id(static_cast<std::int64_t>(attempts_.size()));
  AttemptRuntime attempt;
  attempt.task.stage = s;
  attempt.task.index = a.task_index;
  fsm::transition(attempt.task.status, TaskStatus::Running, id.value(),
                  &metrics_.fsm.task);
  attempt.task.executor = a.exec;
  attempt.task.locality = a.locality;
  attempt.task.launch_time = now;
  attempt.task.fetch_time = fetch;
  attempt.task.compute_time = compute;
  attempt.task.speculative = speculative;
  attempts_.push_back(attempt);
  attempt_next_.push_back(-1);
  const std::size_t ord = task_ord(s, a.task_index);
  if (attempt_first_[ord] < 0) {
    attempt_first_[ord] = id.value();
  } else {
    attempt_next_[static_cast<std::size_t>(attempt_last_[ord])] = id.value();
  }
  attempt_last_[ord] = id.value();

  const Cpus demand = dag_->stage(s).task_cpus;
  if (speculative) {
    DAGON_CHECK(state_.executor(a.exec).free_cores() >= demand);
    state_.add_free_cores(a.exec, -demand);
    ++state_.stage(s).running;
    if (hedge_active_) ++metrics_.hedge.hedges_launched;
  } else {
    if (escalate_active_) {
      stage_last_launch_[static_cast<std::size_t>(s.value())] = now;
    }
    state_.mark_launched(s, a.task_index, a.exec, now);
    delay_->on_launch(state_, master_, s, a.locality, now);
    oracle_.on_task_launched(s, a.task_index);
    oracle_.set_current_stage(s);
    push_priority_update();
  }

  if (serving_) {
    JobRuntime& j = jobs_[static_cast<std::size_t>(job_of(s))];
    j.running_cores += demand;
    if (j.first_launch < SimTime{0}) j.first_launch = now;
  }

  metrics_.busy_cores.add(now, static_cast<double>(demand.count()));
  metrics_.running_tasks.add(now, 1.0);
  ++metrics_.locality_histogram[static_cast<std::size_t>(a.locality)];
  if (config_.per_executor_profiles) {
    metrics_.executor_profiles[static_cast<std::size_t>(a.exec.value())]
        .busy_cores.add(now, static_cast<double>(demand.count()));
  }

  // Transient-failure draw (dedicated RNG stream: fault-free runs never
  // reach this). A doomed attempt gets a TaskFail event at a random
  // point of its lifetime instead of a TaskFinish.
  SimTime terminal_at = now + fetch + compute;
  EventType terminal = EventType::TaskFinish;
  if (faults_active_ && fault_plan_->samples_task_failures() &&
      fault_plan_->draw_task_failure()) {
    const double point = fault_plan_->draw_failure_point();
    terminal_at =
        now + std::max(SimTime{1},
                       time_from_usec(point * static_cast<double>(
                                                  (fetch + compute).count())));
    terminal = EventType::TaskFail;
  }
  queue_.push(Event{terminal_at, terminal, id, ExecutorId::invalid(),
                    BlockId{}});
  DAGON_TRACE("t=" << format_duration(now) << " launch stage " << s
                   << " task " << a.task_index << " on exec " << a.exec
                   << " @" << locality_name(a.locality)
                   << (speculative ? " (speculative)" : ""));
}

void SimDriver::handle_task_finish(TaskId id, SimTime now) {
  DAGON_CHECK(id.valid() &&
              static_cast<std::size_t>(id.value()) < attempts_.size());
  AttemptRuntime& attempt = attempts_[static_cast<std::size_t>(id.value())];
  // Cancelled = lost a hedge/speculation race; Failed = crashed earlier.
  // Either way the attempt's terminal event is stale — ignore it.
  if (attempt.task.status == TaskStatus::Cancelled) return;
  if (attempt.task.status == TaskStatus::Failed) return;
  DAGON_CHECK(attempt.task.status == TaskStatus::Running);
  fsm::transition(attempt.task.status, TaskStatus::Finished, id.value(),
                  &metrics_.fsm.task);
  attempt.task.finish_time = now;
  if (hedge_active_ && attempt.task.speculative) ++metrics_.hedge.hedges_won;

  const StageId s = attempt.task.stage;
  const std::int32_t index = attempt.task.index;
  const Cpus demand = dag_->stage(s).task_cpus;

  // Cancel the losing twin attempts before stage bookkeeping.
  for (std::int64_t other = attempt_first_[task_ord(s, index)]; other >= 0;
       other = attempt_next_[static_cast<std::size_t>(other)]) {
    if (TaskId(other) == id) continue;
    cancel_attempt(TaskId(other), now);
  }

  const bool stage_done = state_.mark_finished(
      s, index, attempt.task.executor, attempt.task.locality,
      attempt.task.launch_time, now);
  claim_reservation(attempt.task.executor, now);
  if (serving_) {
    jobs_[static_cast<std::size_t>(job_of(s))].running_cores -= demand;
  }

  metrics_.busy_cores.add(now, -static_cast<double>(demand.count()));
  metrics_.running_tasks.add(now, -1.0);
  if (config_.per_executor_profiles) {
    metrics_
        .executor_profiles[static_cast<std::size_t>(
            attempt.task.executor.value())]
        .busy_cores.add(now, -static_cast<double>(demand.count()));
  }

  // Materialize the output block exactly once per task index.
  auto& produced = produced_[static_cast<std::size_t>(s.value())];
  if (!produced[static_cast<std::size_t>(index)]) {
    produced[static_cast<std::size_t>(index)] = true;
    const Rdd& out = dag_->rdd(dag_->stage(s).output);
    if (out.bytes_per_partition > Bytes{0}) {
      master_.on_block_produced(BlockId{out.id, index},
                                attempt.task.executor, now);
    }
  }

  if (stage_done) {
    oracle_.mark_stage_finished(s);
    state_.refresh_ready(now);
    master_.proactive_sweep();
    DAGON_DEBUG("t=" << format_duration(now) << " stage " << s << " ("
                     << dag_->stage(s).name << ") finished");
    if (serving_) {
      const std::int32_t ji = job_of(s);
      JobRuntime& j = jobs_[static_cast<std::size_t>(ji)];
      DAGON_CHECK(j.unfinished_stages > 0);
      if (--j.unfinished_stages == 0) {
        j.finished = now;
        queue_.push(Event{now, EventType::JobFinish, TaskId::invalid(),
                          ExecutorId::invalid(), BlockId{}, ji});
      }
    }
  }
  push_priority_update();
}

void SimDriver::cancel_attempt(TaskId id, SimTime now) {
  AttemptRuntime& attempt = attempts_[static_cast<std::size_t>(id.value())];
  if (attempt.task.status != TaskStatus::Running) return;
  // Cancellation-on-first-finish: the losing sibling is torn down
  // through the one sanctioned Running → Cancelled edge and its cores
  // return immediately; its in-flight terminal event later early-returns
  // on the Cancelled status.
  fsm::transition(attempt.task.status, TaskStatus::Cancelled, id.value(),
                  &metrics_.fsm.task);
  attempt.task.finish_time = now;
  const Cpus demand = dag_->stage(attempt.task.stage).task_cpus;
  if (hedge_active_) {
    ++metrics_.hedge.hedges_cancelled;
    // Work burned on the loser: cores held × time run (core-µs).
    metrics_.hedge.wasted_core_us +=
        demand * (now - attempt.task.launch_time);
  }
  state_.add_free_cores(attempt.task.executor, demand);
  --state_.stage(attempt.task.stage).running;
  claim_reservation(attempt.task.executor, now);
  if (serving_) {
    jobs_[static_cast<std::size_t>(job_of(attempt.task.stage))]
        .running_cores -= demand;
  }
  metrics_.busy_cores.add(now, -static_cast<double>(demand.count()));
  metrics_.running_tasks.add(now, -1.0);
  if (config_.per_executor_profiles) {
    metrics_
        .executor_profiles[static_cast<std::size_t>(
            attempt.task.executor.value())]
        .busy_cores.add(now, -static_cast<double>(demand.count()));
  }
}

void SimDriver::handle_capacity_change(std::int32_t index, SimTime now) {
  DAGON_CHECK(index >= 0 && static_cast<std::size_t>(index) <
                                config_.capacity_phases.size());
  const double fraction =
      config_.capacity_phases[static_cast<std::size_t>(index)]
          .reserved_fraction;
  for (ExecutorRuntime& e : state_.executors()) {
    if (!e.alive()) continue;  // crashed executors have no cores to reserve
    const Cpus cores = topo_.executor(e.id).cores;
    const Cpus target =
        cpus_from_double(fraction * static_cast<double>(cores.count()) + 0.5);
    const Cpus current = e.reserved_cores + e.pending_reservation;
    Cpus delta = target - current;
    if (delta > Cpus{0}) {
      const Cpus take = std::min(e.free_cores(), delta);
      state_.add_free_cores(e.id, -take);
      e.reserved_cores += take;
      e.pending_reservation += delta - take;
      metrics_.reserved_cores.add(now, static_cast<double>(take.count()));
    } else if (delta < Cpus{0}) {
      // Release pending demand first, then actual reservations.
      const Cpus from_pending = std::min(e.pending_reservation, -delta);
      e.pending_reservation -= from_pending;
      delta += from_pending;
      if (delta < Cpus{0}) {
        const Cpus release = std::min(e.reserved_cores, -delta);
        e.reserved_cores -= release;
        state_.add_free_cores(e.id, release);
        metrics_.reserved_cores.add(now, -static_cast<double>(release.count()));
      }
    }
  }
}

void SimDriver::claim_reservation(ExecutorId exec, SimTime now) {
  ExecutorRuntime& e = state_.executor(exec);
  if (!e.alive() || e.pending_reservation <= Cpus{0}) return;
  const Cpus take = std::min(e.free_cores(), e.pending_reservation);
  if (take > Cpus{0}) {
    state_.add_free_cores(exec, -take);
    e.reserved_cores += take;
    e.pending_reservation -= take;
    metrics_.reserved_cores.add(now, static_cast<double>(take.count()));
  }
}

void SimDriver::handle_prefetch_done(const Event& e, SimTime now) {
  prefetch_inflight_[static_cast<std::size_t>(dag_->block_ord(e.block))] = 0;
  ExecutorRuntime& ex = state_.executor(e.exec);
  ex.prefetching.reset();
  // The executor died while the IO was in flight: the data never landed.
  if (!ex.alive()) return;
  master_.finish_prefetch(e.block, e.exec, now);
}

void SimDriver::issue_prefetches(SimTime now) {
  if (!config_.prefetch_enabled || !config_.cache_enabled) return;
  for (ExecutorRuntime& e : state_.executors()) {
    // Suspect executors get no prefetch IO: filling a possibly-dying
    // cache wastes the channel.
    if (!e.alive() || e.suspect() || e.prefetching.has_value()) continue;
    const auto choice = master_.prefetch_candidate(e.id);
    if (!choice) continue;
    const auto block_ord =
        static_cast<std::size_t>(dag_->block_ord(choice->block));
    if (prefetch_inflight_[block_ord] != 0) continue;
    prefetch_inflight_[block_ord] = 1;
    e.prefetching = choice->block;
    const SimTime fetch =
        cost_.fetch_time(choice->bytes, BlockSource::LocalDisk);
    queue_.push(Event{now + fetch, EventType::PrefetchDone,
                      TaskId::invalid(), e.id, choice->block});
  }
}

void SimDriver::try_speculation(SimTime now) {
  if (!config_.speculation.enabled) return;
  std::vector<TaskRuntime> running;
  std::vector<bool> impaired;
  for (const AttemptRuntime& a : attempts_) {
    if (a.task.status == TaskStatus::Running) {
      running.push_back(a.task);
      // Attempts on suspect or degraded executors are straggler
      // candidates with a relaxed threshold (gray-failure defense).
      if (gray_active_) {
        impaired.push_back(
            state_.executor(a.task.executor).suspect() ||
            fault_plan_->degrade_factor(a.task.executor, now) > 1.0);
      }
    }
  }
  for (const SpeculationCandidate& c : speculation_candidates(
           state_, running, impaired, config_.speculation, now)) {
    // Already has a live speculative copy?
    bool has_copy = false;
    for (std::int64_t id = attempt_first_[task_ord(c.stage, c.task_index)];
         id >= 0; id = attempt_next_[static_cast<std::size_t>(id)]) {
      const AttemptRuntime& a = attempts_[static_cast<std::size_t>(id)];
      if (a.task.status == TaskStatus::Running && a.task.speculative) {
        has_copy = true;
        break;
      }
    }
    if (has_copy) continue;
    // Under faults the candidate's inputs may have just died with an
    // executor; the recompute is pending and a copy launched now would
    // read a missing block.
    if (faults_active_) {
      bool inputs_ok = true;
      for (const TaskInput& in :
           dag_->task_inputs(c.stage, c.task_index)) {
        if (!master_.exists(in.block)) {
          inputs_ok = false;
          break;
        }
      }
      if (!inputs_ok) continue;
    }
    // Place the copy on the free executor with the best locality for the
    // task's input data (§IV: "close to the input data"). Hedge mode
    // instead optimizes the straggler escape: never co-locate with a
    // live sibling attempt, fastest tier first, locality as tiebreak.
    const Cpus demand = dag_->stage(c.stage).task_cpus;
    const auto hosts_live_sibling = [&](ExecutorId exec) {
      for (std::int64_t id =
               attempt_first_[task_ord(c.stage, c.task_index)];
           id >= 0; id = attempt_next_[static_cast<std::size_t>(id)]) {
        const AttemptRuntime& a = attempts_[static_cast<std::size_t>(id)];
        if (a.task.status == TaskStatus::Running &&
            a.task.executor == exec) {
          return true;
        }
      }
      return false;
    };
    std::optional<Assignment> best;
    double best_mult = 0.0;
    for (const ExecutorRuntime& e : state_.executors()) {
      if (!e.schedulable(now)) continue;
      if (e.free_cores() < demand) continue;
      if (hedge_active_ && hosts_live_sibling(e.id)) continue;
      const Locality l = task_locality_on(*dag_, master_, topo_, c.stage,
                                          c.task_index, e.id);
      if (hedge_active_) {
        if (!best || e.speed_mult < best_mult ||
            (e.speed_mult == best_mult &&
             static_cast<int>(l) < static_cast<int>(best->locality))) {
          best = Assignment{c.task_index, e.id, l};
          best_mult = e.speed_mult;
        }
      } else if (!best ||
                 static_cast<int>(l) < static_cast<int>(best->locality)) {
        best = Assignment{c.task_index, e.id, l};
      }
    }
    if (best) {
      launch_task(c.stage, *best, now, /*speculative=*/true);
    }
  }
}

void SimDriver::assign_speed_tiers() {
  // Dedicated forked stream so tier placement never perturbs the
  // scheduling/fault RNG sequences (same discipline as kFaultRngStream).
  Rng tier_rng = Rng(config_.seed).fork(kTierRngStream);
  const std::size_t n = state_.executors().size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  // Fisher–Yates so tier membership is an unbiased random subset.
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(
        tier_rng.uniform_int(static_cast<std::int64_t>(i)));
    std::swap(order[i - 1], order[j]);
  }
  std::size_t next = 0;
  for (std::size_t t = 0; t < config_.tail.tiers.size(); ++t) {
    const SimConfig::ExecTier& tier = config_.tail.tiers[t];
    // dagonlint: allow(narrowing-cast): rounded tier headcount, a dimensionless executor count
    std::size_t count = static_cast<std::size_t>(
        tier.fraction * static_cast<double>(n) + 0.5);
    count = std::min(count, n - next);
    for (std::size_t k = 0; k < count; ++k, ++next) {
      ExecutorRuntime& e = state_.executors()[order[next]];
      e.speed_tier = static_cast<std::int32_t>(t);
      e.speed_mult = tier.mult;
    }
  }
}

void SimDriver::try_escalation(SimTime now) {
  for (const StageId s : state_.schedulable_stages()) {
    if (stage_critical_[static_cast<std::size_t>(s.value())] == 0) continue;
    const StageRuntime& rt = state_.stage(s);
    if (rt.pending.empty()) continue;
    // Delay-scheduling-style patience: escalate only once the stage's
    // head-of-line task has sat past the configured wait with no
    // ordinary launch relieving the queue.
    const SimTime since = std::max(
        rt.ready_time,
        stage_last_launch_[static_cast<std::size_t>(s.value())]);
    if (since < SimTime{0} || now - since < config_.tail.escalation_wait) {
      continue;
    }
    const Cpus demand = dag_->stage(s).task_cpus;
    const std::int32_t index = *rt.pending.begin();
    if (faults_active_) {
      bool inputs_ok = true;
      for (const TaskInput& in : dag_->task_inputs(s, index)) {
        if (!master_.exists(in.block)) {
          inputs_ok = false;
          break;
        }
      }
      if (!inputs_ok) continue;
    }
    // Only escalate onto a strictly faster tier — an escalation onto
    // baseline hardware is just a worse-locality ordinary launch.
    std::optional<Assignment> best;
    double best_mult = 1.0;
    for (const ExecutorRuntime& e : state_.executors()) {
      if (!e.schedulable(now)) continue;
      if (e.free_cores() < demand) continue;
      if (e.speed_mult >= 1.0) continue;
      const Locality l =
          task_locality_on(*dag_, master_, topo_, s, index, e.id);
      if (!best || e.speed_mult < best_mult ||
          (e.speed_mult == best_mult &&
           static_cast<int>(l) < static_cast<int>(best->locality))) {
        best = Assignment{index, e.id, l};
        best_mult = e.speed_mult;
      }
    }
    if (!best) continue;
    ++metrics_.hedge.escalations;
    launch_task(s, *best, now, /*speculative=*/false);
  }
}

void SimDriver::handle_executor_crash(ExecutorId exec, SimTime now) {
  ExecutorRuntime& e = state_.executor(exec);
  if (!e.alive()) return;
  std::int64_t alive = 0;
  for (const ExecutorRuntime& other : state_.executors()) {
    if (other.alive()) ++alive;
  }
  DAGON_CHECK_MSG(alive > 1, "fault plan would crash the last executor");
  // Tear down the gray-failure state first so suspicion/blacklist flags
  // never survive on a dead executor.
  if (e.suspect()) clear_suspicion(exec, now, /*recovered=*/false);
  e.blacklisted_until = SimTime{0};
  e.blacklist_failures = 0;
  if (detector_) detector_->stop(exec);
  ++metrics_.faults.executor_crashes;
  if (!metrics_.faults.per_executor.empty()) ++exec_faults(exec).crashes;
  DAGON_DEBUG("t=" << format_duration(now) << " executor " << exec
                   << " crashed");

  // 1. Fail every attempt running on the victim (returns their cores to
  // the still-alive bookkeeping, schedules retries).
  std::vector<TaskId> victims;
  for (std::size_t i = 0; i < attempts_.size(); ++i) {
    const AttemptRuntime& a = attempts_[i];
    if (a.task.status == TaskStatus::Running && a.task.executor == exec) {
      victims.push_back(TaskId(static_cast<std::int64_t>(i)));
    }
  }
  for (const TaskId id : victims) fail_attempt(id, now, /*from_crash=*/true);

  // 2. Remove the executor from the cluster for good. Suspicion was
  // cleared above, so the edge here is always Healthy → Dead.
  fsm::transition(e.health, ExecutorHealth::Dead, exec.value(),
                  &metrics_.fsm.executor);
  if (e.reserved_cores > Cpus{0}) {
    metrics_.reserved_cores.add(now,
                                -static_cast<double>(e.reserved_cores.count()));
  }
  e.reserved_cores = Cpus{0};
  e.pending_reservation = Cpus{0};
  state_.set_free_cores(exec, Cpus{0});

  // 3. Drop its blocks. Blocks whose last copy died are recomputed from
  // lineage — eagerly when a live reader still wants them, lazily (via
  // ensure_inputs_available at retry time) otherwise.
  const auto drop = master_.drop_executor(exec);
  metrics_.faults.memory_blocks_lost += drop.memory_dropped;
  metrics_.faults.disk_copies_lost += drop.disk_dropped;
  metrics_.faults.rereplications += drop.rereplicated;
  metrics_.faults.blocks_fully_lost +=
      static_cast<std::int64_t>(drop.lost.size());
  for (const BlockId& block : drop.lost) {
    if (!oracle_.live_readers(block).empty()) recover_block(block, now);
  }
  // Stages whose parents were re-opened must wait for the recompute.
  state_.demote_unready();
  push_priority_update();
}

void SimDriver::fail_attempt(TaskId id, SimTime now, bool from_crash) {
  DAGON_CHECK(id.valid() &&
              static_cast<std::size_t>(id.value()) < attempts_.size());
  AttemptRuntime& attempt = attempts_[static_cast<std::size_t>(id.value())];
  if (attempt.task.status != TaskStatus::Running) {
    return;  // lost a speculation race / already failed via the crash
  }
  fsm::transition(attempt.task.status, TaskStatus::Failed, id.value(),
                  &metrics_.fsm.task);
  attempt.task.finish_time = now;

  const StageId s = attempt.task.stage;
  const std::int32_t index = attempt.task.index;
  const Cpus demand = dag_->stage(s).task_cpus;
  state_.add_free_cores(attempt.task.executor, demand);
  --state_.stage(s).running;
  claim_reservation(attempt.task.executor, now);
  if (serving_) {
    jobs_[static_cast<std::size_t>(job_of(s))].running_cores -= demand;
  }

  metrics_.busy_cores.add(now, -static_cast<double>(demand.count()));
  metrics_.running_tasks.add(now, -1.0);
  if (config_.per_executor_profiles) {
    metrics_
        .executor_profiles[static_cast<std::size_t>(
            attempt.task.executor.value())]
        .busy_cores.add(now, -static_cast<double>(demand.count()));
  }
  if (from_crash) {
    ++metrics_.faults.crash_failures;
  } else {
    ++metrics_.faults.transient_failures;
    if (!metrics_.faults.per_executor.empty()) {
      ++exec_faults(attempt.task.executor).transient_failures;
    }
    note_attempt_failure(attempt.task.executor, now);
  }
  DAGON_DEBUG("t=" << format_duration(now) << " stage " << s << " task "
                   << index << " failed on exec " << attempt.task.executor
                   << (from_crash ? " (executor crash)" : " (transient)"));

  // Retry only when nothing else can still complete the index: no twin
  // attempt running, output not already produced.
  if (!produced_[static_cast<std::size_t>(s.value())]
               [static_cast<std::size_t>(index)] &&
      !has_live_attempt(s, index)) {
    // Nothing can still complete the index: it fails at the task level
    // too (Running → Failed); the retry requeue moves it back to
    // Pending.
    state_.mark_failed(s, index);
    schedule_retry(s, index, now);
  }
}

void SimDriver::schedule_retry(StageId s, std::int32_t index, SimTime now) {
  std::int32_t& count = retry_counts_[task_ord(s, index)];
  if (count >= config_.faults.max_task_retries) {
    throw InvariantError("task exceeded max_task_retries — job failed");
  }
  const SimTime backoff = fault_plan_->retry_backoff(count);
  ++count;
  ++metrics_.faults.retries;
  queue_.push(Event{now + backoff, EventType::TaskRetry, TaskId::invalid(),
                    ExecutorId::invalid(), BlockId{}, s.value(), index});
}

void SimDriver::handle_task_retry(StageId s, std::int32_t index,
                                  SimTime now) {
  // The index may have completed (a twin finished), be running again, or
  // have been re-queued by lineage recovery while the backoff ran.
  if (produced_[static_cast<std::size_t>(s.value())]
              [static_cast<std::size_t>(index)]) {
    return;
  }
  if (has_live_attempt(s, index)) return;
  if (state_.stage(s).pending.contains(index)) return;
  // A crash between failure and retry may have destroyed the inputs.
  ensure_inputs_available(s, index, now);
  // The failed launch consumed this task's block references; make them
  // live again so cache policies keep the inputs warm for the re-run.
  oracle_.restore_task_refs(s, index);
  state_.readd_pending(s, index);
  state_.demote_unready();
  push_priority_update();
  DAGON_DEBUG("t=" << format_duration(now) << " retrying stage " << s
                   << " task " << index);
}

void SimDriver::handle_fault_tick(SimTime now) {
  const SimTime interval = config_.faults.block_loss_interval;
  for (const ExecutorRuntime& e : state_.executors()) {
    if (!e.alive()) continue;
    const BlockManager& mgr = master_.manager(e.id);
    // Snapshot ids first (ascending storage order): the loop body drops
    // blocks, which would invalidate a live walk of the store.
    std::vector<BlockId> cached;
    cached.reserve(mgr.num_blocks());
    for (const BlockManager::Entry& be : mgr.entries()) {
      cached.push_back(be.id);
    }
    for (const BlockId& block : cached) {
      if (!fault_plan_->draw_block_loss(master_.block_bytes(block),
                                        interval)) {
        continue;
      }
      // Memory-only loss: the durable disk copy survives, so no
      // recovery is needed — the next reader pays a disk read.
      master_.drop_memory_block(block, e.id);
      ++metrics_.faults.memory_blocks_lost;
      DAGON_TRACE("t=" << format_duration(now) << " lost cached block "
                       << block << " on exec " << e.id);
    }
  }
  queue_.push(Event{now + interval, EventType::FaultTick, TaskId::invalid(),
                    ExecutorId::invalid(), BlockId{}});
}

void SimDriver::ensure_inputs_available(StageId s, std::int32_t index,
                                        SimTime now) {
  for (const TaskInput& in : dag_->task_inputs(s, index)) {
    if (!master_.exists(in.block)) recover_block(in.block, now);
  }
}

void SimDriver::recover_block(const BlockId& block, SimTime now) {
  if (master_.exists(block)) return;
  const Rdd& rdd = dag_->rdd(block.rdd);
  // Zero-byte outputs are never materialized (and never read): nothing
  // to recover.
  if (rdd.bytes_per_partition <= Bytes{0}) return;
  const auto producer = dag_->producer_of(block.rdd);
  DAGON_CHECK_MSG(producer.has_value(),
                  "lost block " << block << " has no producer stage");
  const StageId s = *producer;
  const std::int32_t p = block.partition;
  auto& produced = produced_[static_cast<std::size_t>(s.value())];
  if (!produced[static_cast<std::size_t>(p)]) {
    return;  // recompute already pending (or running)
  }
  produced[static_cast<std::size_t>(p)] = false;
  const bool was_finished = state_.stage(s).finished;
  state_.reopen_task(s, p);
  oracle_.restore_task_refs(s, p);
  // A re-opened stage un-finishes its job: completion will be detected
  // (and a fresh JobFinish emitted) when the recompute lands.
  if (serving_ && was_finished) {
    JobRuntime& j = jobs_[static_cast<std::size_t>(job_of(s))];
    if (j.unfinished_stages++ == 0) j.finished = SimTime{-1};
  }
  ++metrics_.faults.lineage_recomputes;
  DAGON_DEBUG("t=" << format_duration(now) << " recomputing stage " << s
                   << " task " << p << " for lost block " << block);
  // The recompute reads the producer's own inputs — recurse if the same
  // crash destroyed those too (bounded by DAG depth; raw inputs always
  // survive on HDFS).
  ensure_inputs_available(s, p, now);
}

bool SimDriver::has_live_attempt(StageId s, std::int32_t index) const {
  for (std::int64_t id = attempt_first_[task_ord(s, index)]; id >= 0;
       id = attempt_next_[static_cast<std::size_t>(id)]) {
    const AttemptRuntime& a = attempts_[static_cast<std::size_t>(id)];
    if (a.task.status == TaskStatus::Running) return true;
  }
  return false;
}

bool SimDriver::defer_partitioned_report(const Event& e, SimTime now) {
  DAGON_CHECK(e.task.valid() &&
              static_cast<std::size_t>(e.task.value()) < attempts_.size());
  const AttemptRuntime& a =
      attempts_[static_cast<std::size_t>(e.task.value())];
  // Cancelled / already-failed attempts fall through to the handler's
  // normal early-return; only a live attempt's report can be held back.
  if (a.task.status != TaskStatus::Running) return false;
  const SimTime heal =
      fault_plan_->partitioned_until(rack_of_exec(a.task.executor), now);
  if (heal <= now) return false;
  ++metrics_.faults.deferred_reports;
  Event deferred = e;
  deferred.time = heal;  // re-examined at heal (partitions may overlap)
  queue_.push(deferred);
  DAGON_TRACE("t=" << format_duration(now) << " deferring report of stage "
                   << a.task.stage << " task " << a.task.index
                   << " to heal at " << format_duration(heal));
  return true;
}

void SimDriver::handle_heartbeat(ExecutorId exec, SimTime now) {
  const ExecutorRuntime& e = state_.executor(exec);
  // Dead executors emit no heartbeats; a late declared-dead executor
  // never re-registers (Spark would refuse the stale executor id too).
  if (!e.alive()) return;
  if (fault_plan_->partitioned_until(rack_of_exec(exec), now) > now) {
    ++metrics_.faults.heartbeats_dropped;
  } else {
    detector_->record_heartbeat(exec, now);
    // Re-classify on arrival so a resumed executor is re-admitted
    // immediately, not at the next tick.
    evaluate_executor(exec, now);
  }
  // The emission cadence itself degrades with the executor: a slowed
  // executor heartbeats late, which is exactly what makes it suspicious.
  const double slow = fault_plan_->degrade_factor(exec, now);
  const SimTime interval =
      scale_time(config_.faults.heartbeat_interval, slow);
  queue_.push(Event{now + interval, EventType::Heartbeat, TaskId::invalid(),
                    exec, BlockId{}});
}

void SimDriver::evaluate_suspicions(SimTime now) {
  for (const ExecutorRuntime& e : state_.executors()) {
    if (e.alive()) evaluate_executor(e.id, now);
  }
}

void SimDriver::evaluate_executor(ExecutorId exec, SimTime now) {
  ExecutorRuntime& e = state_.executor(exec);
  if (!e.alive()) return;
  switch (detector_->classify(exec, now)) {
    case FailureDetector::State::Healthy:
      if (e.suspect()) clear_suspicion(exec, now, /*recovered=*/true);
      break;
    case FailureDetector::State::Suspect:
      if (!e.suspect()) enter_suspicion(exec, now);
      break;
    case FailureDetector::State::Dead:
      declare_dead(exec, now);
      break;
  }
}

void SimDriver::enter_suspicion(ExecutorId exec, SimTime now) {
  ExecutorRuntime& e = state_.executor(exec);
  fsm::transition(e.health, ExecutorHealth::Suspect, exec.value(),
                  &metrics_.fsm.executor);
  master_.set_executor_suspect(exec, true);
  ++metrics_.faults.suspicions;
  ++exec_faults(exec).suspicions;
  DAGON_DEBUG("t=" << format_duration(now) << " executor " << exec
                   << " suspected (phi=" << detector_->phi(exec, now)
                   << ")");
  // Proactive re-replication: give every block whose copies all sit on
  // suspect executors a durable copy on the first healthy executor, so a
  // later death costs zero lineage recomputes. (The copy is modelled as
  // instantaneous; its bytes are reported, not charged to the network.)
  ExecutorId target = ExecutorId::invalid();
  for (const ExecutorRuntime& other : state_.executors()) {
    if (other.alive() && !other.suspect()) {
      target = other.id;
      break;
    }
  }
  if (!target.valid()) return;  // every survivor suspect: nowhere to copy
  const auto rr = master_.rereplicate_suspect_blocks(target);
  if (rr.blocks > 0) {
    metrics_.faults.proactive_rereplications += rr.blocks;
    metrics_.faults.rereplicated_bytes += rr.bytes;
    exec_faults(exec).rereplicated_blocks += rr.blocks;
    exec_faults(exec).rereplicated_bytes += rr.bytes;
    DAGON_DEBUG("t=" << format_duration(now) << " re-replicated "
                     << rr.blocks << " at-risk blocks to exec " << target);
  }
}

void SimDriver::clear_suspicion(ExecutorId exec, SimTime now,
                                bool recovered) {
  ExecutorRuntime& e = state_.executor(exec);
  fsm::transition(e.health, ExecutorHealth::Healthy, exec.value(),
                  &metrics_.fsm.executor);
  master_.set_executor_suspect(exec, false);
  if (recovered) {
    ++metrics_.faults.false_suspicions;
    ++exec_faults(exec).false_suspicions;
    DAGON_DEBUG("t=" << format_duration(now) << " executor " << exec
                     << " resumed heartbeating; re-admitted");
  }
}

void SimDriver::declare_dead(ExecutorId exec, SimTime now) {
  // Never kill the last survivor on silence alone (e.g. every rack
  // partitioned at once): keep it suspect and let the heal decide.
  std::int64_t alive = 0;
  for (const ExecutorRuntime& other : state_.executors()) {
    if (other.alive()) ++alive;
  }
  if (alive <= 1) return;
  ++metrics_.faults.executors_declared_dead;
  DAGON_DEBUG("t=" << format_duration(now) << " executor " << exec
                   << " declared dead (phi=" << detector_->phi(exec, now)
                   << ")");
  // Exactly the planned-crash recovery path: fail attempts, drop blocks,
  // recompute what died (handle_executor_crash also stops the detector).
  handle_executor_crash(exec, now);
}

void SimDriver::note_attempt_failure(ExecutorId exec, SimTime now) {
  const std::int32_t threshold = config_.faults.blacklist_threshold;
  if (threshold <= 0) return;
  ExecutorRuntime& e = state_.executor(exec);
  if (!e.alive()) return;
  ++e.blacklist_failures;
  if (e.blacklisted_until <= now && e.blacklist_failures >= threshold) {
    e.blacklisted_until = now + config_.faults.blacklist_probation;
    ++metrics_.faults.blacklist_entries;
    ++exec_faults(exec).blacklist_entries;
    DAGON_DEBUG("t=" << format_duration(now) << " executor " << exec
                     << " blacklisted until "
                     << format_duration(e.blacklisted_until));
  }
}

void SimDriver::expire_blacklists(SimTime now) {
  if (config_.faults.blacklist_threshold <= 0) return;
  for (ExecutorRuntime& e : state_.executors()) {
    if (!e.alive() || e.blacklisted_until == SimTime{0} ||
        e.blacklisted_until > now) {
      continue;
    }
    // Probation over: clean slate.
    e.blacklisted_until = SimTime{0};
    e.blacklist_failures = 0;
    ++metrics_.faults.blacklist_exits;
    ++exec_faults(e.id).blacklist_exits;
    DAGON_DEBUG("t=" << format_duration(now) << " executor " << e.id
                     << " leaves blacklist probation");
  }
}

void SimDriver::handle_job_submit(std::int32_t job, SimTime now) {
  DAGON_CHECK(job >= 0 &&
              static_cast<std::size_t>(job) < jobs_.size());
  JobRuntime& j = jobs_[static_cast<std::size_t>(job)];
  DAGON_CHECK_MSG(!j.submitted, "job submitted twice");
  j.submitted = true;
  j.submit_time = now;
  for (const StageId s :
       config_.serving.jobs[static_cast<std::size_t>(job)].stages) {
    state_.set_stage_gated(s, false);
    oracle_.set_stage_active(s, true);
  }
  // Promotion runs the normal parent check, so root stages of the job
  // become schedulable now and downstream stages wait as usual.
  state_.refresh_ready(now);
  push_priority_update();
  DAGON_DEBUG("t=" << format_duration(now) << " job "
                   << config_.serving.jobs[static_cast<std::size_t>(job)]
                          .name
                   << " submitted");
}

void SimDriver::verify_quiescent() const {
  DAGON_CHECK_MSG(metrics_.busy_cores.value() == 0.0,
                  "end of run: busy_cores did not return to zero");
  DAGON_CHECK_MSG(metrics_.running_tasks.value() == 0.0,
                  "end of run: running_tasks did not return to zero");
  for (const ExecutorRuntime& e : state_.executors()) {
    if (e.alive()) {
      DAGON_CHECK_MSG(
          e.free_cores() + e.reserved_cores == topo_.executor(e.id).cores,
          "end of run: cores leaked on executor " << e.id);
      DAGON_CHECK_MSG(e.pending_reservation == Cpus{0},
                      "end of run: unclaimed reservation on executor "
                          << e.id);
    } else {
      DAGON_CHECK_MSG(e.free_cores() == Cpus{0} &&
                          e.reserved_cores == Cpus{0} &&
                          e.pending_reservation == Cpus{0},
                      "end of run: crashed executor " << e.id
                                                      << " holds cores");
      DAGON_CHECK_MSG(!e.suspect(), "end of run: dead executor "
                                      << e.id << " still marked suspect");
    }
    DAGON_CHECK_MSG(e.suspect() == master_.executor_suspect(e.id),
                    "end of run: suspect flag for executor "
                        << e.id << " diverged between driver and master");
  }
  for (const StageRuntime& s : state_.stages()) {
    DAGON_CHECK_MSG(s.finished && s.running == 0 && s.pending.empty() &&
                        s.finished_tasks == s.num_tasks,
                    "end of run: stage " << s.id << " not quiescent");
    for (std::int32_t t = 0; t < s.num_tasks; ++t) {
      DAGON_CHECK_MSG(s.status_of(t) == TaskStatus::Finished,
                      "end of run: stage " << s.id << " task " << t
                                           << " is "
                                           << to_string(s.status_of(t)));
    }
  }
  if (serving_) {
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      const JobRuntime& job = jobs_[j];
      DAGON_CHECK_MSG(job.submitted && job.unfinished_stages == 0 &&
                          job.finished >= SimTime{0},
                      "end of run: serving job " << j << " incomplete");
      DAGON_CHECK_MSG(job.running_cores == Cpus{0},
                      "end of run: serving job " << j << " holds cores");
      DAGON_CHECK_MSG(job.effective_task_hits <= job.effective_task_reads,
                      "end of run: job " << j
                                         << " effective-hit accounting");
    }
  }
  // Residency lifecycle must agree with the copy maps at quiescence.
  master_.verify_residency();
  DAGON_CHECK_MSG(!metrics_.fsm.any(),
                  "end of run: lifecycle transition breaches counted");
  for (const AttemptRuntime& a : attempts_) {
    DAGON_CHECK_MSG(a.task.status != TaskStatus::Running,
                    "end of run: attempt of stage "
                        << a.task.stage << " task " << a.task.index
                        << " still running");
  }
  if (config_.per_executor_profiles) {
    for (const ExecutorProfile& p : metrics_.executor_profiles) {
      DAGON_CHECK_MSG(p.busy_cores.value() == 0.0,
                      "end of run: executor " << p.id
                                              << " profile still busy");
    }
  }
}

void SimDriver::push_priority_update() {
  // pv values derive solely from per-stage remaining_work; JobState
  // bumps pv_epoch whenever any of those change, so pushes on events
  // that launched or finished nothing are skipped entirely.
  if (config_.incremental_scheduling &&
      state_.pv_epoch() == pushed_pv_epoch_) {
    return;
  }
  pushed_pv_epoch_ = state_.pv_epoch();
  oracle_.set_priority_values(state_.priority_values());
}

void SimDriver::sample_pending(SimTime now) {
  for (const Executor& exec : topo_.executors()) {
    PendingSample sample;
    sample.time = now;
    for (const StageId s : state_.schedulable_stages()) {
      for (const std::int32_t index : state_.stage(s).pending) {
        const Locality l =
            task_locality_on(*dag_, master_, topo_, s, index, exec.id);
        if (l == Locality::Process || l == Locality::Node) {
          ++sample.node_local;
        } else if (l == Locality::Rack) {
          ++sample.rack_local;
        }
      }
    }
    metrics_.executor_profiles[static_cast<std::size_t>(exec.id.value())]
        .pending.push_back(sample);
  }
}

void SimDriver::finalize_metrics(SimTime end) {
  metrics_.jct = end;
  metrics_.busy_cores.set(end, metrics_.busy_cores.value());
  metrics_.running_tasks.set(end, metrics_.running_tasks.value());
  metrics_.reserved_cores.set(end, metrics_.reserved_cores.value());

  metrics_.stages.reserve(dag_->num_stages());
  for (const Stage& s : dag_->stages()) {
    const StageRuntime& rt = state_.stage(s.id);
    StageRecord record;
    record.id = s.id;
    record.name = s.name;
    record.ready_time = rt.ready_time;
    record.first_launch = rt.first_launch;
    record.finish_time = rt.finish_time;
    metrics_.stages.push_back(std::move(record));
  }

  metrics_.tasks.reserve(attempts_.size());
  for (const AttemptRuntime& a : attempts_) {
    TaskRecord record;
    record.stage = a.task.stage;
    record.index = a.task.index;
    record.exec = a.task.executor;
    record.locality = a.task.locality;
    record.launch = a.task.launch_time;
    record.finish = a.task.finish_time;
    record.fetch_time = a.task.fetch_time;
    record.compute_time = a.task.compute_time;
    record.speculative = a.task.speculative;
    record.cancelled = a.task.status == TaskStatus::Cancelled;
    record.failed = a.task.status == TaskStatus::Failed;
    metrics_.tasks.push_back(record);
  }

  const auto& counters = master_.counters();
  metrics_.cache.insertions = counters.insertions;
  metrics_.cache.evictions = counters.evictions;
  metrics_.cache.proactive_evictions = counters.proactive_evictions;
  metrics_.cache.prefetches = counters.prefetches;
  metrics_.cache.rejected_admissions = counters.rejected_admissions;

  if (serving_) {
    metrics_.jobs.reserve(jobs_.size());
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      const SimConfig::ServingJob& spec = config_.serving.jobs[j];
      const JobRuntime& rt = jobs_[j];
      JobStats stats;
      stats.name = spec.name;
      stats.weight = spec.weight;
      stats.submitted = rt.submit_time;
      stats.first_launch = rt.first_launch;
      stats.finished = rt.finished;
      stats.stages = static_cast<std::int64_t>(spec.stages.size());
      for (const StageId s : spec.stages) {
        stats.tasks += dag_->stage(s).num_tasks;
      }
      stats.effective_task_reads = rt.effective_task_reads;
      stats.effective_task_hits = rt.effective_task_hits;
      metrics_.jobs.push_back(std::move(stats));
    }
  }
}

}  // namespace dagon
