// Run metrics: everything the paper's evaluation section reports.
//
// Populated incrementally by the driver; consumed by benches and tests.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "cluster/locality.hpp"
#include "common/fsm.hpp"
#include "common/stats.hpp"
#include "common/strong_id.hpp"
#include "common/units.hpp"

namespace dagon {

struct TaskRecord {
  StageId stage;
  std::int32_t index = -1;
  ExecutorId exec = ExecutorId::invalid();
  Locality locality = Locality::Any;
  SimTime launch{};
  SimTime finish{};
  SimTime fetch_time{};
  SimTime compute_time{};
  bool speculative = false;
  bool cancelled = false;
  /// Attempt died (transient failure or executor crash) and was retried.
  bool failed = false;

  [[nodiscard]] SimTime duration() const { return finish - launch; }
};

struct StageRecord {
  StageId id;
  std::string name;
  SimTime ready_time{-1};
  SimTime first_launch{-1};
  SimTime finish_time{-1};

  [[nodiscard]] SimTime duration() const {
    return (first_launch >= SimTime{0} && finish_time >= SimTime{0})
               ? finish_time - first_launch
               : SimTime{0};
  }
};

struct CacheStats {
  std::int64_t local_memory_hits = 0;   // block in the reader's cache
  std::int64_t other_memory_hits = 0;   // in some other executor's memory
  std::int64_t disk_reads = 0;
  std::int64_t total_reads = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  std::int64_t proactive_evictions = 0;
  std::int64_t prefetches = 0;
  std::int64_t rejected_admissions = 0;

  /// Effective-hit accounting (LERC, arXiv:1708.07941): a task *read* is
  /// effective only when EVERY cacheable narrow input of the task was
  /// served from cluster memory (local or remote) — a single disk read
  /// or recompute stalls the task just as badly as missing them all.
  /// Counted per task (with >=1 cacheable narrow input), not per block.
  /// Excluded from the base fingerprint mix so pre-serving digests are
  /// preserved; serving runs gate them in via the jobs block.
  std::int64_t effective_task_reads = 0;
  std::int64_t effective_task_hits = 0;

  /// The paper's "cache hit ratio": reads served from the local memory
  /// store over all block reads.
  [[nodiscard]] double hit_ratio() const {
    return total_reads > 0 ? static_cast<double>(local_memory_hits) /
                                 static_cast<double>(total_reads)
                           : 0.0;
  }

  /// Fraction of tasks (with cacheable narrow inputs) whose entire input
  /// peer group was served from cluster memory.
  [[nodiscard]] double effective_hit_ratio() const {
    return effective_task_reads > 0
               ? static_cast<double>(effective_task_hits) /
                     static_cast<double>(effective_task_reads)
               : 0.0;
  }
};

/// Fault-injection and lineage-recovery counters; all zero unless
/// SimConfig::faults is active.
struct FaultStats {
  /// Executors killed by the fault plan.
  std::int64_t executor_crashes = 0;
  /// Attempts that failed transiently (FaultConfig::task_fail_prob).
  std::int64_t transient_failures = 0;
  /// Attempts killed because their executor crashed.
  std::int64_t crash_failures = 0;
  /// Retry events scheduled (backoff expiries).
  std::int64_t retries = 0;
  /// Cached memory copies destroyed (executor crash or random loss).
  std::int64_t memory_blocks_lost = 0;
  /// Produced durable disk copies destroyed by executor crashes.
  std::int64_t disk_copies_lost = 0;
  /// Disk copies re-materialized from a surviving memory holder.
  std::int64_t rereplications = 0;
  /// Blocks whose last copy died and had to be recomputed from lineage.
  std::int64_t blocks_fully_lost = 0;
  /// Finished task indices re-opened to recompute a lost output block.
  std::int64_t lineage_recomputes = 0;

  // -- gray-failure counters ---------------------------------------------

  /// Executors whose phi crossed suspect_phi (suspicion entries).
  std::int64_t suspicions = 0;
  /// Suspicions cleared because the executor resumed heartbeating.
  std::int64_t false_suspicions = 0;
  /// Suspects whose phi crossed dead_phi and were recovered as crashes.
  std::int64_t executors_declared_dead = 0;
  /// Heartbeats emitted inside an active partition (never delivered).
  std::int64_t heartbeats_dropped = 0;
  /// Task completions/failures whose report was held back by a partition
  /// and re-delivered at heal time.
  std::int64_t deferred_reports = 0;
  /// Launched attempts whose input fetch stalled on an active partition.
  std::int64_t partition_stalled_fetches = 0;
  /// Attempts launched on an executor inside a degrade window.
  std::int64_t degraded_launches = 0;
  /// Attempts whose duration drew the heavy tail
  /// (FaultConfig::heavy_tail_prob/mult).
  std::int64_t heavy_tail_injections = 0;
  /// Executors entering / leaving blacklist probation.
  std::int64_t blacklist_entries = 0;
  std::int64_t blacklist_exits = 0;
  /// Sole-copy blocks proactively re-replicated off suspect executors,
  /// and the bytes that moved.
  std::int64_t proactive_rereplications = 0;
  Bytes rereplicated_bytes{};

  /// Per-executor fault breakdown (fault-stats table, bench CSVs).
  /// Sized to the cluster only when faults are enabled.
  struct PerExecutor {
    std::int64_t crashes = 0;
    std::int64_t transient_failures = 0;
    std::int64_t suspicions = 0;
    std::int64_t false_suspicions = 0;
    std::int64_t blacklist_entries = 0;
    std::int64_t blacklist_exits = 0;
    std::int64_t rereplicated_blocks = 0;
    Bytes rereplicated_bytes{};

    [[nodiscard]] bool any() const {
      return crashes | transient_failures | suspicions | false_suspicions |
             blacklist_entries | blacklist_exits | rereplicated_blocks |
             rereplicated_bytes.count();
    }
  };
  std::vector<PerExecutor> per_executor;

  [[nodiscard]] bool any() const {
    return executor_crashes | transient_failures | crash_failures |
           retries | memory_blocks_lost | disk_copies_lost |
           rereplications | blocks_fully_lost | lineage_recomputes |
           suspicions | false_suspicions | executors_declared_dead |
           heartbeats_dropped | deferred_reports |
           partition_stalled_fetches | degraded_launches |
           heavy_tail_injections | blacklist_entries | blacklist_exits |
           proactive_rereplications | rereplicated_bytes.count();
  }
};

/// Hedged-speculation accounting (SpeculationConfig::hedge); all zero
/// unless hedge mode is on, and folded into metrics_fingerprint only
/// when non-zero so hedge-off runs keep their pinned digests.
struct HedgeStats {
  /// Hedged (speculative) attempts launched.
  std::int64_t hedges_launched = 0;
  /// Hedges that finished before the original attempt.
  std::int64_t hedges_won = 0;
  /// Attempts cancelled because a sibling finished first (either the
  /// losing hedge or the out-raced original).
  std::int64_t hedges_cancelled = 0;
  /// Core-microseconds (vCPU-work) spent on attempts that were later
  /// cancelled — the price paid for the tail latency won.
  CpuWork wasted_core_us{};
  /// Critical-path launches escalated to a faster tier past the
  /// locality ladder (TailConfig::escalate).
  std::int64_t escalations = 0;

  [[nodiscard]] double wasted_core_seconds() const {
    return static_cast<double>(wasted_core_us.count()) / 1e6;
  }

  [[nodiscard]] bool any() const {
    return hedges_launched | hedges_won | hedges_cancelled |
           wasted_core_us.count() | escalations;
  }
};

/// Release-build lifecycle breach counters, one sink per state machine
/// (see common/fsm.hpp). All zero on a correct run; any non-zero counter
/// is folded into metrics_fingerprint so a violating run can never alias
/// a clean one's digest.
struct FsmStats {
  fsm::Violations task;
  fsm::Violations block;
  fsm::Violations executor;

  [[nodiscard]] bool any() const {
    return task.any() || block.any() || executor.any();
  }
};

/// Per-job metrics of one online-serving run; empty unless
/// SimConfig::serving is enabled.
struct JobStats {
  std::string name;
  std::int32_t weight = 1;
  SimTime submitted{};
  SimTime first_launch{-1};
  SimTime finished{-1};
  std::int64_t tasks = 0;
  std::int64_t stages = 0;
  /// Per-job slice of CacheStats::effective_task_{reads,hits}.
  std::int64_t effective_task_reads = 0;
  std::int64_t effective_task_hits = 0;

  /// Job completion time = finish − submit (the serving latency, which
  /// includes any queueing delay before the first launch).
  [[nodiscard]] SimTime jct() const {
    return finished >= SimTime{0} ? finished - submitted : SimTime{-1};
  }
};

/// Sampled pending-task counts for one executor (Fig. 4 top panes).
struct PendingSample {
  SimTime time{};
  std::int32_t node_local = 0;
  std::int32_t rack_local = 0;
};

struct ExecutorProfile {
  ExecutorId id;
  StepFunction busy_cores;
  std::vector<PendingSample> pending;
};

class RunMetrics {
 public:
  /// Job completion time (time the last stage finished).
  SimTime jct{};

  /// Busy vCPUs across the cluster over time.
  StepFunction busy_cores;
  /// Number of running tasks over time (the paper's task parallelism).
  StepFunction running_tasks;
  /// vCPUs reserved by other tenants over time (capacity fluctuation).
  StepFunction reserved_cores;

  Cpus total_cores{};

  /// Number of discrete events the driver processed — the denominator
  /// of the simulator-throughput (events/sec) figure bench_perf reports.
  /// Deterministic for a fixed config (unlike wall-clock time).
  std::int64_t sim_events = 0;

  std::vector<TaskRecord> tasks;
  std::vector<StageRecord> stages;
  CacheStats cache;
  FaultStats faults;
  HedgeStats hedge;
  FsmStats fsm;
  /// Per-job serving metrics, indexed like SimConfig::serving.jobs;
  /// empty on single-job (batch) runs.
  std::vector<JobStats> jobs;
  /// Launch counts per locality level (Fig. 10b).
  std::array<std::int64_t, 5> locality_histogram{};

  /// Only populated when SimConfig::per_executor_profiles is set.
  std::vector<ExecutorProfile> executor_profiles;

  // -- derived ------------------------------------------------------------

  /// Time-weighted mean CPU utilization over [0, jct].
  [[nodiscard]] double cpu_utilization() const;

  /// Mean running-task parallelism over [0, jct].
  [[nodiscard]] double avg_parallelism() const;

  /// Mean duration of completed (non-cancelled) task attempts.
  [[nodiscard]] double avg_task_duration_sec() const;

  /// Duration of stage `id` (first launch to finish), seconds.
  [[nodiscard]] double stage_duration_sec(StageId id) const;

  /// Fraction of launches at Process or Node locality.
  [[nodiscard]] double high_locality_fraction() const;

  /// Count of launches at exactly `l`.
  [[nodiscard]] std::int64_t locality_count(Locality l) const {
    return locality_histogram[static_cast<std::size_t>(l)];
  }
};

/// Order-sensitive FNV-1a digest over everything a run observably
/// produced: jct, every task/stage record, cache stats, locality
/// histogram, busy/running/reserved timelines and the event count. Two
/// runs with equal fingerprints produced bit-identical metrics — this is
/// how the sweep engine's determinism guarantee (parallel == serial) is
/// checked in tests and bench_perf.
[[nodiscard]] std::uint64_t metrics_fingerprint(const RunMetrics& m);

}  // namespace dagon
