#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <functional>

#include "common/error.hpp"

namespace dagon {

void EventQueue::init_calendar(SimTime t) {
  buckets_.resize(kNumBuckets);
  occupied_.assign(kNumBuckets / 64, 0);
  base_ = window_start(t);
  cur_ = bucket_of(t);
}

void EventQueue::bucket_push(const Entry& entry) {
  const std::size_t b = bucket_of(entry.event.time);
  auto& heap = buckets_[b];
  heap.push_back(entry);
  std::push_heap(heap.begin(), heap.end(), std::greater<>{});
  occupied_[b >> 6] |= std::uint64_t{1} << (b & 63);
  ++bucketed_;
}

void EventQueue::push(const Event& e) {
  DAGON_CHECK_MSG(e.time >= SimTime{0}, "event scheduled at negative time");
  const Entry entry{e, next_seq_++};
  ++size_;
  if (buckets_.empty()) init_calendar(e.time);
  // In-horizon events are bucketed; everything else — far future, or a
  // straggler below the current window after a far-forward rebase —
  // falls back to the overflow heap. Pop order stays exact either way.
  if (e.time >= base_ && e.time - base_ < kHorizon) {
    bucket_push(entry);
  } else {
    overflow_.push_back(entry);
    std::push_heap(overflow_.begin(), overflow_.end(), std::greater<>{});
  }
}

std::size_t EventQueue::first_occupied() const {
  // Scan the occupancy bitmap circularly from cur_, one 64-bucket word
  // at a time. bucketed_ > 0 guarantees termination within one lap.
  std::size_t word = cur_ >> 6;
  std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (cur_ & 63));
  while (bits == 0) {
    word = (word + 1) & (occupied_.size() - 1);
    bits = occupied_[word];
  }
  return (word << 6) | static_cast<std::size_t>(std::countr_zero(bits));
}

void EventQueue::rebase(SimTime t) {
  base_ = window_start(t);
  cur_ = bucket_of(t);
  // Promote overflow entries that now fall inside the horizon. They are
  // the heap's smallest, so draining from the top visits exactly them.
  while (!overflow_.empty() &&
         overflow_.front().event.time - base_ < kHorizon) {
    std::pop_heap(overflow_.begin(), overflow_.end(), std::greater<>{});
    const Entry entry = overflow_.back();
    overflow_.pop_back();
    bucket_push(entry);
  }
}

bool EventQueue::pop_into(Event& out) {
  if (size_ == 0) return false;
  std::size_t b = 0;
  const Entry* bucket_min = nullptr;
  if (bucketed_ > 0) {
    b = first_occupied();
    bucket_min = &buckets_[b].front();
  }
  const bool from_overflow =
      bucket_min == nullptr ||
      (!overflow_.empty() && *bucket_min > overflow_.front());
  if (from_overflow) {
    std::pop_heap(overflow_.begin(), overflow_.end(), std::greater<>{});
    const Entry entry = overflow_.back();
    overflow_.pop_back();
    out = entry.event;
    --size_;
    // The calendar is empty and time jumped forward: re-anchor it at the
    // popped time so subsequent pushes land in buckets again.
    if (bucketed_ == 0 && !buckets_.empty()) rebase(entry.event.time);
    return true;
  }
  // Advance the current window to bucket b (k forward steps, circular).
  const std::size_t steps = (b - cur_) & (kNumBuckets - 1);
  base_ += static_cast<std::int64_t>(steps) * kWidth;
  cur_ = b;
  auto& heap = buckets_[b];
  std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
  out = heap.back().event;
  heap.pop_back();
  if (heap.empty()) occupied_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
  --bucketed_;
  --size_;
  return true;
}

std::optional<Event> EventQueue::pop() {
  Event e;
  if (!pop_into(e)) return std::nullopt;
  return e;
}

SimTime EventQueue::next_time() const {
  if (size_ == 0) return kTimeInfinity;
  SimTime best = kTimeInfinity;
  if (bucketed_ > 0) best = buckets_[first_occupied()].front().event.time;
  if (!overflow_.empty()) {
    best = std::min(best, overflow_.front().event.time);
  }
  return best;
}

}  // namespace dagon
