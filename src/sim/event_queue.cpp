#include "sim/event_queue.hpp"

#include "common/error.hpp"

namespace dagon {

void EventQueue::push(const Event& e) {
  DAGON_CHECK_MSG(e.time >= 0, "event scheduled at negative time");
  heap_.push(Entry{e, next_seq_++});
}

std::optional<Event> EventQueue::pop() {
  if (heap_.empty()) return std::nullopt;
  Event e = heap_.top().event;
  heap_.pop();
  return e;
}

SimTime EventQueue::next_time() const {
  return heap_.empty() ? kTimeInfinity : heap_.top().event.time;
}

}  // namespace dagon
