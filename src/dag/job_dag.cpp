#include "dag/job_dag.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "common/error.hpp"
#include "common/sorted_view.hpp"

namespace dagon {

const Stage& JobDag::stage(StageId id) const {
  DAGON_CHECK_MSG(id.valid() &&
                      static_cast<std::size_t>(id.value()) < stages_.size(),
                  "unknown stage " << id);
  return stages_[static_cast<std::size_t>(id.value())];
}

const Rdd& JobDag::rdd(RddId id) const {
  DAGON_CHECK_MSG(id.valid() &&
                      static_cast<std::size_t>(id.value()) < rdds_.size(),
                  "unknown rdd " << id);
  return rdds_[static_cast<std::size_t>(id.value())];
}

BlockId JobDag::block_at(std::int64_t ord) const {
  DAGON_CHECK_MSG(ord >= 0 && ord < num_blocks(),
                  "block ordinal " << ord << " out of range");
  const auto it =
      std::upper_bound(block_offset_.begin(), block_offset_.end(), ord) - 1;
  const auto rdd_idx = static_cast<std::int32_t>(it - block_offset_.begin());
  return BlockId{RddId(rdd_idx), static_cast<std::int32_t>(ord - *it)};
}

std::optional<StageId> JobDag::producer_of(RddId rdd) const {
  for (const Stage& s : stages_) {
    if (s.output == rdd) return s.id;
  }
  return std::nullopt;
}

std::vector<StageId> JobDag::root_stages() const {
  std::vector<StageId> out;
  for (const Stage& s : stages_) {
    if (s.parents.empty()) out.push_back(s.id);
  }
  return out;
}

std::vector<StageId> JobDag::leaf_stages() const {
  std::vector<StageId> out;
  for (const Stage& s : stages_) {
    if (s.children.empty()) out.push_back(s.id);
  }
  return out;
}

const std::vector<StageId>& JobDag::successor_set(StageId id) const {
  DAGON_CHECK(id.valid() &&
              static_cast<std::size_t>(id.value()) < successor_sets_.size());
  return successor_sets_[static_cast<std::size_t>(id.value())];
}

std::vector<TaskInput> JobDag::task_inputs(StageId id,
                                           std::int32_t task) const {
  const Stage& s = stage(id);
  DAGON_CHECK_MSG(task >= 0 && task < s.num_tasks,
                  "task " << task << " out of range for stage " << id);
  std::vector<TaskInput> inputs;
  for (const RddRef& ref : s.inputs) {
    const Rdd& parent = rdd(ref.rdd);
    // Zero-byte RDDs (pure control dependencies) carry no data to read.
    if (parent.bytes_per_partition <= Bytes{0}) continue;
    if (ref.kind == DepKind::Narrow) {
      inputs.push_back(TaskInput{BlockId{ref.rdd, task},
                                 parent.bytes_per_partition,
                                 DepKind::Narrow});
    } else {
      // Shuffle: every task pulls a slice of every parent block.
      const Bytes slice = std::max(
          Bytes{1}, parent.bytes_per_partition / std::max(1, s.num_tasks));
      for (std::int32_t p = 0; p < parent.num_partitions; ++p) {
        inputs.push_back(TaskInput{BlockId{ref.rdd, p}, slice,
                                   DepKind::Shuffle});
      }
    }
  }
  return inputs;
}

std::vector<BlockId> JobDag::stage_input_blocks(StageId id) const {
  const Stage& s = stage(id);
  std::vector<BlockId> inputs;
  for (const RddRef& ref : s.inputs) {
    const Rdd& parent = rdd(ref.rdd);
    if (ref.kind == DepKind::Narrow) {
      for (std::int32_t t = 0; t < s.num_tasks; ++t) {
        inputs.push_back(BlockId{ref.rdd, t});
      }
    } else {
      for (std::int32_t p = 0; p < parent.num_partitions; ++p) {
        inputs.push_back(BlockId{ref.rdd, p});
      }
    }
  }
  std::sort(inputs.begin(), inputs.end());
  inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
  return inputs;
}

Bytes JobDag::task_input_bytes(StageId id, std::int32_t task) const {
  Bytes total{};
  for (const TaskInput& in : task_inputs(id, task)) total += in.bytes;
  return total;
}

int JobDag::depth() const {
  std::vector<int> depth(stages_.size(), 1);
  int best = stages_.empty() ? 0 : 1;
  for (const StageId sid : topo_order_) {
    const Stage& s = stage(sid);
    for (const StageId c : s.children) {
      auto& d = depth[static_cast<std::size_t>(c.value())];
      d = std::max(d, depth[static_cast<std::size_t>(sid.value())] + 1);
      best = std::max(best, d);
    }
  }
  return best;
}

CpuWork JobDag::total_workload() const {
  CpuWork total{};
  for (const Stage& s : stages_) total += s.workload();
  return total;
}

std::int64_t JobDag::total_tasks() const {
  std::int64_t total = 0;
  for (const Stage& s : stages_) total += s.num_tasks;
  return total;
}

// ---------------------------------------------------------------------------
// Builder

JobDagBuilder::JobDagBuilder(std::string name) {
  dag_.name_ = std::move(name);
}

RddId JobDagBuilder::input_rdd(std::string name, std::int32_t partitions,
                               Bytes bytes_per_partition,
                               std::int32_t initially_cached) {
  DAGON_CHECK(!built_);
  if (partitions <= 0) {
    throw ConfigError("input RDD '" + name + "' needs positive partitions");
  }
  if (initially_cached < 0 || initially_cached > partitions) {
    throw ConfigError("input RDD '" + name +
                      "': initially_cached out of range");
  }
  Rdd r;
  r.id = RddId(static_cast<std::int32_t>(dag_.rdds_.size()));
  r.name = std::move(name);
  r.num_partitions = partitions;
  r.bytes_per_partition = bytes_per_partition;
  r.is_input = true;
  r.initially_cached_partitions = initially_cached;
  dag_.rdds_.push_back(r);
  return r.id;
}

StageId JobDagBuilder::add_stage(const StageParams& params) {
  DAGON_CHECK(!built_);
  if (params.num_tasks <= 0) {
    throw ConfigError("stage '" + params.name + "' needs positive tasks");
  }
  if (params.task_cpus <= Cpus{0}) {
    throw ConfigError("stage '" + params.name + "' needs positive d_i");
  }
  if (params.task_duration <= SimTime{0}) {
    throw ConfigError("stage '" + params.name + "' needs positive duration");
  }
  if (!params.duration_skew.empty() &&
      params.duration_skew.size() !=
          static_cast<std::size_t>(params.num_tasks)) {
    throw ConfigError("stage '" + params.name +
                      "': duration_skew size != num_tasks");
  }
  for (const RddRef& ref : params.inputs) {
    if (!ref.rdd.valid() ||
        static_cast<std::size_t>(ref.rdd.value()) >= dag_.rdds_.size()) {
      throw ConfigError("stage '" + params.name + "' reads unknown RDD");
    }
    const Rdd& parent = dag_.rdds_[static_cast<std::size_t>(ref.rdd.value())];
    if (ref.kind == DepKind::Narrow &&
        parent.num_partitions != params.num_tasks) {
      throw ConfigError("stage '" + params.name + "': narrow dep on '" +
                        parent.name + "' requires matching partitions");
    }
  }

  // The implicit output RDD.
  Rdd out;
  out.id = RddId(static_cast<std::int32_t>(dag_.rdds_.size()));
  out.name = params.output_name.empty() ? params.name + ".out"
                                        : params.output_name;
  out.num_partitions = params.num_tasks;
  out.bytes_per_partition = params.output_bytes_per_partition;
  out.is_input = false;
  out.cacheable = params.cache_output;
  dag_.rdds_.push_back(out);

  Stage s;
  s.id = StageId(static_cast<std::int32_t>(dag_.stages_.size()));
  s.name = params.name;
  s.inputs = params.inputs;
  s.output = out.id;
  s.num_tasks = params.num_tasks;
  s.task_cpus = params.task_cpus;
  s.task_duration = params.task_duration;
  s.duration_skew = params.duration_skew;
  dag_.stages_.push_back(std::move(s));
  return dag_.stages_.back().id;
}

RddId JobDagBuilder::output_of(StageId stage) const {
  DAGON_CHECK(stage.valid() &&
              static_cast<std::size_t>(stage.value()) < dag_.stages_.size());
  return dag_.stages_[static_cast<std::size_t>(stage.value())].output;
}

void JobDagBuilder::set_output_cacheable(StageId stage, bool cacheable) {
  const RddId out = output_of(stage);
  dag_.rdds_[static_cast<std::size_t>(out.value())].cacheable = cacheable;
}

void JobDagBuilder::set_rdd_cacheable(RddId rdd, bool cacheable) {
  DAGON_CHECK(rdd.valid() &&
              static_cast<std::size_t>(rdd.value()) < dag_.rdds_.size());
  dag_.rdds_[static_cast<std::size_t>(rdd.value())].cacheable = cacheable;
}

JobDag JobDagBuilder::build() {
  DAGON_CHECK(!built_);
  built_ = true;
  if (dag_.stages_.empty()) {
    throw ConfigError("job '" + dag_.name_ + "' has no stages");
  }

  // Wire parent/child stage links through RDD producers.
  for (Stage& s : dag_.stages_) {
    for (const RddRef& ref : s.inputs) {
      if (const auto producer = dag_.producer_of(ref.rdd)) {
        if (std::find(s.parents.begin(), s.parents.end(), *producer) ==
            s.parents.end()) {
          s.parents.push_back(*producer);
          dag_.stages_[static_cast<std::size_t>(producer->value())]
              .children.push_back(s.id);
        }
      }
    }
  }

  // Kahn's algorithm: topological order + cycle detection. Stages are
  // created before their consumers so cycles cannot normally occur, but
  // we validate anyway (Gsl-style: trust nothing you didn't check).
  std::vector<int> pending(dag_.stages_.size());
  std::priority_queue<std::int32_t, std::vector<std::int32_t>,
                      std::greater<>> ready;
  for (const Stage& s : dag_.stages_) {
    pending[static_cast<std::size_t>(s.id.value())] =
        static_cast<int>(s.parents.size());
    if (s.parents.empty()) ready.push(s.id.value());
  }
  while (!ready.empty()) {
    const StageId sid(ready.top());
    ready.pop();
    dag_.topo_order_.push_back(sid);
    for (const StageId c : dag_.stage(sid).children) {
      if (--pending[static_cast<std::size_t>(c.value())] == 0) {
        ready.push(c.value());
      }
    }
  }
  if (dag_.topo_order_.size() != dag_.stages_.size()) {
    throw ConfigError("job '" + dag_.name_ + "' contains a dependency cycle");
  }

  // Transitive successor sets (the paper's SuccessorSet_i), computed in
  // reverse topological order with set union.
  dag_.successor_sets_.assign(dag_.stages_.size(), {});
  for (auto it = dag_.topo_order_.rbegin(); it != dag_.topo_order_.rend();
       ++it) {
    const Stage& s = dag_.stage(*it);
    std::unordered_set<std::int32_t> acc;
    for (const StageId c : s.children) {
      acc.insert(c.value());
      for (const StageId g :
           dag_.successor_sets_[static_cast<std::size_t>(c.value())]) {
        acc.insert(g.value());
      }
    }
    auto& out = dag_.successor_sets_[static_cast<std::size_t>(s.id.value())];
    out.reserve(acc.size());
    for (const std::int32_t v : sorted_keys(acc)) out.push_back(StageId(v));
  }

  // Dense block ordinals: prefix sums of partition counts in rdd-id
  // order, so ordinal order == ascending BlockId order.
  dag_.block_offset_.reserve(dag_.rdds_.size() + 1);
  std::int64_t total_blocks = 0;
  for (const Rdd& r : dag_.rdds_) {
    dag_.block_offset_.push_back(total_blocks);
    total_blocks += r.num_partitions;
  }
  dag_.block_offset_.push_back(total_blocks);

  return std::move(dag_);
}

}  // namespace dagon
