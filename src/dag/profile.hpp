// Job profile: the scheduler-visible estimate of per-stage task cost.
//
// In the paper, AppProfiler produces this from a pilot run on a small
// dataset plus online statistics (§IV). Schedulers consult the profile —
// never the simulator's ground truth — so estimation error degrades them
// realistically (exercised by the profiler-noise ablation bench).
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/sim_time.hpp"
#include "common/units.hpp"
#include "dag/job_dag.hpp"

namespace dagon {

struct StageEstimate {
  /// Estimated base compute duration of one task.
  SimTime task_duration{};
  /// Per-task vCPU demand; Spark knows this exactly (spark.task.cpus),
  /// so it is not subject to profiling noise.
  Cpus task_cpus{1};
  /// Estimated bytes one task reads (for locality-penalty predictions).
  Bytes task_input_bytes{};
  /// Of those, bytes that are serialized RDD data and pay the ser/de
  /// cost on any non-process read (raw HDFS input does not) — this is
  /// what makes a stage locality-sensitive.
  Bytes task_serde_bytes{};
};

struct JobProfile {
  std::vector<StageEstimate> stages;  // indexed by stage id

  [[nodiscard]] const StageEstimate& stage(StageId id) const {
    DAGON_CHECK(id.valid() &&
                static_cast<std::size_t>(id.value()) < stages.size());
    return stages[static_cast<std::size_t>(id.value())];
  }

  /// Estimated stage workload w_i in vCPU-time units over `pending`
  /// tasks (Eq. 2 discussion; used for pv bookkeeping).
  [[nodiscard]] CpuWork workload(StageId id, std::int32_t pending) const {
    const StageEstimate& e = stage(id);
    return e.task_cpus * e.task_duration * pending;
  }
};

/// A perfect profile taken straight from the DAG's ground truth.
[[nodiscard]] inline JobProfile exact_profile(const JobDag& dag) {
  JobProfile p;
  p.stages.reserve(dag.num_stages());
  for (const Stage& s : dag.stages()) {
    StageEstimate e;
    e.task_duration = s.task_duration;
    e.task_cpus = s.task_cpus;
    if (s.num_tasks > 0) {
      for (const TaskInput& in : dag.task_inputs(s.id, 0)) {
        e.task_input_bytes += in.bytes;
        if (!dag.rdd(in.block.rdd).is_input) {
          e.task_serde_bytes += in.bytes;
        }
      }
    }
    p.stages.push_back(e);
  }
  return p;
}

}  // namespace dagon
