// Static DAG analyses shared by schedulers and tests: critical-path
// lengths, the paper's initial priority values pv_i (Eq. 6), and simple
// shape statistics.
#pragma once

#include <vector>

#include "dag/job_dag.hpp"

namespace dagon {

/// Critical-path length of each stage: the stage's own task duration plus
/// the longest chain of descendant stage durations. Used by the classic
/// critical-path scheduler [Graham'69] that the paper cites as baseline.
[[nodiscard]] std::vector<SimTime> critical_path_lengths(const JobDag& dag);

/// Length of the whole DAG's critical path (max over roots).
[[nodiscard]] SimTime critical_path(const JobDag& dag);

/// Initial priority value pv_i = w_i + sum of successor workloads
/// (Eq. 6) for every stage, before any task has been assigned.
[[nodiscard]] std::vector<CpuWork> initial_priority_values(const JobDag& dag);

/// Lower bound on makespan given `capacity` total vCPUs: max(critical
/// path, total workload / capacity). Benches report schedules relative
/// to this bound.
[[nodiscard]] SimTime makespan_lower_bound(const JobDag& dag, Cpus capacity);

struct DagShape {
  int depth = 0;
  std::size_t stages = 0;
  std::int64_t tasks = 0;
  CpuWork total_work{};
  SimTime critical_path{};
  /// Work divided by (critical path · max task demand): a rough measure
  /// of how much parallelism the DAG offers.
  double parallelism_ratio = 0.0;
};

[[nodiscard]] DagShape analyze_shape(const JobDag& dag);

}  // namespace dagon
