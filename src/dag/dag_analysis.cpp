#include "dag/dag_analysis.hpp"

#include <algorithm>

namespace dagon {

std::vector<SimTime> critical_path_lengths(const JobDag& dag) {
  std::vector<SimTime> cp(dag.num_stages());
  const auto& topo = dag.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const Stage& s = dag.stage(*it);
    SimTime best_child{};
    for (const StageId c : s.children) {
      best_child =
          std::max(best_child, cp[static_cast<std::size_t>(c.value())]);
    }
    // A stage's serial contribution is its longest task.
    SimTime longest_task{};
    for (std::int32_t t = 0; t < s.num_tasks; ++t) {
      longest_task = std::max(longest_task, s.task_compute_time(t));
    }
    cp[static_cast<std::size_t>(s.id.value())] = longest_task + best_child;
  }
  return cp;
}

SimTime critical_path(const JobDag& dag) {
  const auto cp = critical_path_lengths(dag);
  SimTime best{};
  for (const SimTime v : cp) best = std::max(best, v);
  return best;
}

std::vector<CpuWork> initial_priority_values(const JobDag& dag) {
  std::vector<CpuWork> pv(dag.num_stages());
  for (const Stage& s : dag.stages()) {
    CpuWork v = s.workload();
    for (const StageId succ : dag.successor_set(s.id)) {
      v += dag.stage(succ).workload();
    }
    pv[static_cast<std::size_t>(s.id.value())] = v;
  }
  return pv;
}

SimTime makespan_lower_bound(const JobDag& dag, Cpus capacity) {
  const SimTime cp = critical_path(dag);
  const CpuWork work = dag.total_workload();
  const SimTime packing =
      capacity > Cpus{0} ? work / capacity : kTimeInfinity;
  return std::max(cp, packing);
}

DagShape analyze_shape(const JobDag& dag) {
  DagShape shape;
  shape.depth = dag.depth();
  shape.stages = dag.num_stages();
  shape.tasks = dag.total_tasks();
  shape.total_work = dag.total_workload();
  shape.critical_path = critical_path(dag);
  Cpus max_demand{1};
  for (const Stage& s : dag.stages()) {
    max_demand = std::max(max_demand, s.task_cpus);
  }
  if (shape.critical_path > SimTime{0}) {
    shape.parallelism_ratio =
        static_cast<double>(shape.total_work.count()) /
        (static_cast<double>(shape.critical_path.count()) *
         static_cast<double>(max_demand.count()));
  }
  return shape;
}

}  // namespace dagon
