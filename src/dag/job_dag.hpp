// Job DAG: immutable description of one application's stages and RDDs.
//
// Construction goes through JobDagBuilder, which wires parent/child
// links, validates narrow-dependency partition counts, and rejects
// cyclic or dangling structures — so a JobDag in hand is always sound.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dag/block.hpp"
#include "dag/rdd.hpp"
#include "dag/stage.hpp"

namespace dagon {

class JobDag {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] const std::vector<Stage>& stages() const { return stages_; }
  [[nodiscard]] const std::vector<Rdd>& rdds() const { return rdds_; }

  [[nodiscard]] const Stage& stage(StageId id) const;
  [[nodiscard]] const Rdd& rdd(RddId id) const;

  [[nodiscard]] std::size_t num_stages() const { return stages_.size(); }

  /// Stage producing `rdd`, or nullopt for input RDDs.
  [[nodiscard]] std::optional<StageId> producer_of(RddId rdd) const;

  /// Stages with no parents (ready at t=0).
  [[nodiscard]] std::vector<StageId> root_stages() const;
  /// Stages with no children.
  [[nodiscard]] std::vector<StageId> leaf_stages() const;

  /// Stage ids in a valid topological order (parents first). Stable:
  /// among ready stages, lower ids first — this is also the FIFO order.
  [[nodiscard]] const std::vector<StageId>& topological_order() const {
    return topo_order_;
  }

  /// All transitive descendants of `id` (the paper's SuccessorSet_i).
  [[nodiscard]] const std::vector<StageId>& successor_set(StageId id) const;

  /// Input reads of task `task` of stage `id`: full parent blocks for
  /// narrow deps, per-task shuffle slices for wide deps.
  [[nodiscard]] std::vector<TaskInput> task_inputs(StageId id,
                                                   std::int32_t task) const;

  /// Distinct blocks accessed by the whole stage (union over tasks).
  [[nodiscard]] std::vector<BlockId> stage_input_blocks(StageId id) const;

  /// Total bytes task `task` of stage `id` reads.
  [[nodiscard]] Bytes task_input_bytes(StageId id, std::int32_t task) const;

  /// Longest chain length in stages (DAG depth).
  [[nodiscard]] int depth() const;

  /// Sum of all stage workloads (vCPU-time).
  [[nodiscard]] CpuWork total_workload() const;

  /// Total number of tasks across stages.
  [[nodiscard]] std::int64_t total_tasks() const;

  // -- dense block ordinals ------------------------------------------------
  // Every block of the DAG (one per RDD partition) has a dense ordinal in
  // [0, num_blocks()), assigned in ascending BlockId order: all blocks of
  // rdd 0 first, then rdd 1, ... Hot-path state (HDFS placement, copy
  // sets, reference records) is stored in flat arrays indexed by ordinal
  // instead of hash maps, and iterating ordinals ascending IS the sorted
  // block-id order the determinism discipline requires.

  /// Total number of blocks across all RDDs.
  [[nodiscard]] std::int64_t num_blocks() const {
    return block_offset_.empty() ? 0 : block_offset_.back();
  }

  /// Dense ordinal of `b`; `b` must be a valid block of this DAG.
  [[nodiscard]] std::int64_t block_ord(BlockId b) const {
    return block_offset_[static_cast<std::size_t>(b.rdd.value())] +
           b.partition;
  }

  /// Inverse of block_ord.
  [[nodiscard]] BlockId block_at(std::int64_t ord) const;

 private:
  friend class JobDagBuilder;

  std::string name_;
  std::vector<Stage> stages_;
  std::vector<Rdd> rdds_;
  std::vector<StageId> topo_order_;
  /// successor_sets_[i] = transitive descendants of stage i.
  std::vector<std::vector<StageId>> successor_sets_;
  /// block_offset_[r] = ordinal of rdd r's partition 0; one trailing
  /// entry holds num_blocks(). Built by JobDagBuilder::build().
  std::vector<std::int64_t> block_offset_;
};

/// Incremental builder; see workloads/ for usage examples.
class JobDagBuilder {
 public:
  explicit JobDagBuilder(std::string name);

  /// Registers an input RDD, materialized on HDFS before the job starts.
  /// `initially_cached` partitions begin resident in executor memory
  /// (the paper's Fig. 1 black blocks).
  RddId input_rdd(std::string name, std::int32_t partitions,
                  Bytes bytes_per_partition,
                  std::int32_t initially_cached = 0);

  struct StageParams {
    std::string name;
    std::vector<RddRef> inputs;
    std::int32_t num_tasks = 0;
    Cpus task_cpus{1};
    SimTime task_duration{};
    /// Size of each output partition; 0 for terminal stages whose output
    /// is written out / discarded.
    Bytes output_bytes_per_partition{};
    /// Whether the output RDD is persisted (enters the cache).
    bool cache_output = true;
    std::vector<double> duration_skew;
    /// Name of the output RDD; defaults to "<stage>.out".
    std::string output_name;
  };

  /// Adds a stage and its implicit output RDD; returns the stage id.
  StageId add_stage(const StageParams& params);

  /// Output RDD of a previously added stage (for wiring descendants).
  [[nodiscard]] RddId output_of(StageId stage) const;

  /// Marks the output of `stage` as not cacheable (pure shuffle data the
  /// application never persists).
  void set_output_cacheable(StageId stage, bool cacheable);

  /// Sets whether an RDD (typically a raw input the application never
  /// persists) enters the cache when read.
  void set_rdd_cacheable(RddId rdd, bool cacheable);

  /// Validates and produces the immutable JobDag. Throws ConfigError on
  /// structural problems. The builder must not be reused afterwards.
  [[nodiscard]] JobDag build();

 private:
  JobDag dag_;
  bool built_ = false;
};

}  // namespace dagon
