// RDD descriptor.
#pragma once

#include <string>

#include "common/strong_id.hpp"
#include "common/units.hpp"

namespace dagon {

struct Rdd {
  RddId id;
  std::string name;
  std::int32_t num_partitions = 0;
  /// Size of each partition block.
  Bytes bytes_per_partition{};
  /// Input RDDs are materialized on HDFS (node disks) before the job
  /// starts; non-input RDDs come into existence when their producer
  /// stage's tasks finish.
  bool is_input = false;
  /// Whether the application asked to persist this RDD (MEMORY_AND_DISK):
  /// its blocks are inserted into the cache as they are read/produced.
  bool cacheable = true;
  /// Number of partitions already resident in executor memory at t=0
  /// (the black blocks of the paper's Fig. 1). Only meaningful for
  /// input RDDs.
  std::int32_t initially_cached_partitions = 0;

  [[nodiscard]] Bytes total_bytes() const {
    return bytes_per_partition * num_partitions;
  }
};

}  // namespace dagon
