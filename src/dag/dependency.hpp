// RDD dependency kinds, following Spark's narrow/wide split.
#pragma once

#include "common/strong_id.hpp"

namespace dagon {

/// How a stage's tasks read a parent RDD.
enum class DepKind {
  /// Task k reads partition k of the parent (map-like). Requires the
  /// parent partition count to equal the stage's task count.
  Narrow,
  /// Every task reads a shuffle slice of every parent partition
  /// (reduce/join-like): task bytes per block = block bytes / tasks.
  Shuffle,
};

/// One edge from a stage to an RDD it consumes.
struct RddRef {
  RddId rdd;
  DepKind kind = DepKind::Narrow;
};

[[nodiscard]] constexpr const char* dep_kind_name(DepKind k) {
  return k == DepKind::Narrow ? "narrow" : "shuffle";
}

}  // namespace dagon
