// Block identity: one partition of one RDD.
//
// Blocks are the unit of caching, HDFS placement, and data access —
// exactly Spark's `RDDBlockId(rddId, splitIndex)`.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

#include "common/strong_id.hpp"

namespace dagon {

struct BlockId {
  RddId rdd;
  std::int32_t partition = -1;

  [[nodiscard]] bool valid() const { return rdd.valid() && partition >= 0; }

  auto operator<=>(const BlockId&) const = default;

  friend std::ostream& operator<<(std::ostream& os, const BlockId& b) {
    return os << "rdd_" << b.rdd << '_' << b.partition;
  }
};

}  // namespace dagon

namespace std {

template <>
struct hash<dagon::BlockId> {
  size_t operator()(const dagon::BlockId& b) const noexcept {
    const auto h1 = static_cast<size_t>(b.rdd.value());
    const auto h2 = static_cast<size_t>(b.partition);
    return h1 * 0x9e3779b97f4a7c15ULL ^ (h2 + (h1 << 6) + (h1 >> 2));
  }
};

}  // namespace std
