// Stage descriptor: a set of identical-shape tasks, one per output
// partition, with the paper's per-task resource demand d_i and duration.
#pragma once

#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "common/strong_id.hpp"
#include "common/units.hpp"
#include "dag/dependency.hpp"

namespace dagon {

struct Stage {
  StageId id;
  std::string name;

  /// RDDs this stage's tasks read.
  std::vector<RddRef> inputs;
  /// RDD this stage materializes; task k writes block (output, k).
  RddId output;

  std::int32_t num_tasks = 0;
  /// Per-task vCPU demand (the paper's d_i).
  Cpus task_cpus{1};
  /// Base compute duration of one task, excluding input fetch time.
  SimTime task_duration{};
  /// Optional per-task duration multipliers (stragglers, skew). Empty
  /// means uniform 1.0. Size must equal num_tasks when present.
  std::vector<double> duration_skew;

  /// Filled by JobDagBuilder::build(): stages producing our inputs /
  /// consuming our output.
  std::vector<StageId> parents;
  std::vector<StageId> children;

  /// Compute duration of task `t` including skew.
  [[nodiscard]] SimTime task_compute_time(std::int32_t t) const {
    if (duration_skew.empty()) return task_duration;
    return scale_time(task_duration,
                      duration_skew[static_cast<std::size_t>(t)]);
  }

  /// The paper's stage workload w_i (Eq. 2 discussion): total resource
  /// requirement in vCPU-time units, summed over tasks.
  [[nodiscard]] CpuWork workload() const {
    CpuWork w{};
    for (std::int32_t t = 0; t < num_tasks; ++t) {
      w += task_cpus * task_compute_time(t);
    }
    return w;
  }
};

/// One input read performed by a task: which block and how many bytes of
/// it this task pulls (full block for narrow deps, a shuffle slice for
/// wide deps).
struct TaskInput {
  BlockId block;
  Bytes bytes{};
  DepKind kind = DepKind::Narrow;
};

}  // namespace dagon
