#include "workloads/example_dag.hpp"

namespace dagon {

Workload make_example_dag(const ExampleDagParams& params) {
  JobDagBuilder b("fig1-example");

  const RddId a = b.input_rdd("A", 3, params.block_bytes,
                              params.cached_a_partitions);
  const RddId c = b.input_rdd("C", 3, params.block_bytes);

  // Stage 1: A -> B, 3 tasks, <4 vCPU, 4 min>.
  const StageId s1 = b.add_stage({.name = "S1",
                                  .inputs = {{a, DepKind::Narrow}},
                                  .num_tasks = 3,
                                  .task_cpus = Cpus{4},
                                  .task_duration = 4 * params.minute,
                                  .output_bytes_per_partition =
                                      params.block_bytes,
                                  .output_name = "B"});
  // Stage 2: C -> D, 3 tasks, <6 vCPU, 2 min>.
  const StageId s2 = b.add_stage({.name = "S2",
                                  .inputs = {{c, DepKind::Narrow}},
                                  .num_tasks = 3,
                                  .task_cpus = Cpus{6},
                                  .task_duration = 2 * params.minute,
                                  .output_bytes_per_partition =
                                      params.block_bytes,
                                  .output_name = "D"});
  // Stage 3: D -> E, 2 tasks, <3 vCPU, 4 min>, shuffle over D.
  const StageId s3 =
      b.add_stage({.name = "S3",
                   .inputs = {{b.output_of(s2), DepKind::Shuffle}},
                   .num_tasks = 2,
                   .task_cpus = Cpus{3},
                   .task_duration = 4 * params.minute,
                   .output_bytes_per_partition = params.block_bytes,
                   .output_name = "E"});
  // Stage 4: B,E -> F, 1 task, <4 vCPU, 1 min>, joins both branches.
  b.add_stage({.name = "S4",
               .inputs = {{b.output_of(s1), DepKind::Shuffle},
                          {b.output_of(s3), DepKind::Shuffle}},
               .num_tasks = 1,
               .task_cpus = Cpus{4},
               .task_duration = 1 * params.minute,
               .output_bytes_per_partition = Bytes{},
               .output_name = "F"});

  return Workload{"fig1-example", WorkloadCategory::Mixed, b.build()};
}

}  // namespace dagon
