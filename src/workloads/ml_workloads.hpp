// SparkBench-like machine-learning workload generators (§V-A):
// LinearRegression, LogisticRegression, DecisionTree (CPU-intensive) and
// KMeans (mixed).
//
// The generators emit the structural signature of each application —
// stage graph, per-stage ⟨demand, duration⟩, input volumes, and which
// RDDs the application persists — which is all the paper's mechanisms
// consume (see DESIGN.md §1 on this substitution).
#pragma once

#include "workloads/workload.hpp"

namespace dagon {

struct KMeansParams {
  /// Partitions of the input dataset. The paper's case study (Fig. 3/4)
  /// runs ~224 tasks per stage over 7 machines (112 vCPUs). 240 gives
  /// the same ~2-wave pressure plus an uneven tasks-per-executor
  /// remainder — the queue-drain imbalance that makes delay scheduling
  /// matter for the cached iteration stages.
  std::int32_t partitions = 240;
  std::int32_t iterations = 15;  // stages 1..15 of Fig. 3
  Bytes input_block = 512 * kMiB;
  Bytes feature_block = 64 * kMiB;
  SimTime scan_compute = 3500 * kMsec;
  /// 0.35 s compute + ~8 ms in-process read vs ~3 s remote read: the
  /// paper's "almost 15x" locality sensitivity for iteration stages.
  SimTime iter_compute = 350 * kMsec;
};

[[nodiscard]] Workload make_kmeans(const KMeansParams& params = {});

struct LinearRegressionParams {
  std::int32_t partitions = 96;
  std::int32_t iterations = 10;
  Bytes input_block = 128 * kMiB;
  Bytes train_block = 32 * kMiB;
  SimTime parse_compute = 2 * kSec;
  SimTime gradient_compute = 3 * kSec;
};

[[nodiscard]] Workload make_linear_regression(
    const LinearRegressionParams& params = {});

struct LogisticRegressionParams {
  std::int32_t partitions = 96;
  std::int32_t iterations = 12;
  Bytes input_block = 128 * kMiB;
  Bytes train_block = 32 * kMiB;
  SimTime parse_compute = 2 * kSec;
  SimTime gradient_compute = 2500 * kMsec;
};

[[nodiscard]] Workload make_logistic_regression(
    const LogisticRegressionParams& params = {});

struct DecisionTreeParams {
  std::int32_t partitions = 96;
  std::int32_t levels = 6;
  Bytes input_block = 128 * kMiB;
  Bytes feature_block = 32 * kMiB;
  SimTime parse_compute = 2 * kSec;
  SimTime stats_compute = 4 * kSec;
};

[[nodiscard]] Workload make_decision_tree(
    const DecisionTreeParams& params = {});

}  // namespace dagon
