#include "workloads/graph_workloads.hpp"

#include <algorithm>

namespace dagon {

Workload make_triangle_count(const TriangleCountParams& p) {
  JobDagBuilder b("TriangleCount");
  const std::int32_t n = p.partitions;
  const RddId edges = b.input_rdd("edges", n, p.input_block);
  b.set_rdd_cacheable(edges, false);

  const StageId load = b.add_stage({.name = "load",
                                    .inputs = {{edges, DepKind::Narrow}},
                                    .num_tasks = n,
                                    .task_cpus = Cpus{1},
                                    .task_duration = 2 * kSec,
                                    .output_bytes_per_partition =
                                        p.adj_block});
  const RddId adj = b.output_of(load);

  // Two parallel consumers of the adjacency: a short degree count and a
  // long heavy neighbourhood materialization.
  const StageId degrees = b.add_stage({.name = "degrees",
                                       .inputs = {{adj, DepKind::Narrow}},
                                       .num_tasks = n,
                                       .task_cpus = Cpus{1},
                                       .task_duration = kSec,
                                       .output_bytes_per_partition = kMiB,
                                       .cache_output = false});
  const StageId neighbors =
      b.add_stage({.name = "neighbors",
                   .inputs = {{adj, DepKind::Shuffle}},
                   .num_tasks = n,
                   .task_cpus = Cpus{2},
                   .task_duration = 3 * kSec,
                   .output_bytes_per_partition = p.adj_block,
                   .cache_output = false});

  const StageId join =
      b.add_stage({.name = "pair-join",
                   .inputs = {{b.output_of(neighbors), DepKind::Shuffle},
                              {adj, DepKind::Narrow}},
                   .num_tasks = n,
                   .task_cpus = Cpus{3},
                   .task_duration = 4 * kSec,
                   .output_bytes_per_partition = 16 * kMiB,
                   .cache_output = false});

  b.add_stage({.name = "count",
               .inputs = {{b.output_of(join), DepKind::Shuffle},
                          {b.output_of(degrees), DepKind::Shuffle}},
               .num_tasks = std::max(2, n / 4),
               .task_cpus = Cpus{2},
               .task_duration = 2 * kSec,
               .output_bytes_per_partition = Bytes{}});

  return Workload{"TriangleCount", WorkloadCategory::Mixed, b.build()};
}

Workload make_superstep_graph(const SuperstepParams& p) {
  JobDagBuilder b(p.name);
  const std::int32_t n = p.partitions;
  const RddId edges = b.input_rdd("edges", n, p.input_block);
  b.set_rdd_cacheable(edges, false);

  StageId init = StageId::invalid();
  if (p.init_branch) {
    // Initial vertex state from its own (small) input file, so the init
    // branch does not contend with the adjacency builds for disk-local
    // slots on the edge blocks.
    const RddId vertices = b.input_rdd("vertices", n, p.state_block);
    b.set_rdd_cacheable(vertices, false);
    init = b.add_stage({.name = "init-state",
                        .inputs = {{vertices, DepKind::Narrow}},
                        .num_tasks = n,
                        .task_cpus = Cpus{1},
                        .task_duration = kSec,
                        .output_bytes_per_partition = p.state_block});
  }

  const StageId build = b.add_stage({.name = "build-adj",
                                     .inputs = {{edges, DepKind::Narrow}},
                                     .num_tasks = n,
                                     .task_cpus = Cpus{1},
                                     .task_duration = p.build_compute,
                                     .output_bytes_per_partition =
                                         p.adj_block});
  const RddId adj = b.output_of(build);
  const StageId rbuild = b.add_stage({.name = "build-radj",
                                      .inputs = {{edges, DepKind::Shuffle}},
                                      .num_tasks = n,
                                      .task_cpus = Cpus{1},
                                      .task_duration = p.build_compute,
                                      .output_bytes_per_partition =
                                          p.radj_block});
  const RddId radj = b.output_of(rbuild);

  RddId state_rdd = init.valid() ? b.output_of(init) : RddId::invalid();
  for (std::int32_t step = 1; step <= p.supersteps; ++step) {
    // Light gather over the out-edges (lower stage id).
    std::vector<RddRef> gather_inputs{{adj, DepKind::Narrow}};
    if (state_rdd.valid()) gather_inputs.push_back({state_rdd, DepKind::Shuffle});
    const StageId gather =
        b.add_stage({.name = "gather" + std::to_string(step),
                     .inputs = std::move(gather_inputs),
                     .num_tasks = n,
                     .task_cpus = Cpus{1},
                     .task_duration = p.gather_compute,
                     .output_bytes_per_partition = p.message_block / 2,
                     .cache_output = false});

    // Heavy scatter over the in-edges (higher stage id, higher pv:
    // Dagon runs it first — the inversion MRD cannot see).
    std::vector<double> skew;
    if (p.skew > 0.0) {
      skew.resize(static_cast<std::size_t>(n), 1.0);
      // A deterministic straggler pattern: every 8th task slower.
      for (std::size_t t = 0; t < skew.size(); t += 8) {
        skew[t] = 1.0 + p.skew;
      }
    }
    std::vector<RddRef> scatter_inputs{{radj, DepKind::Narrow}};
    if (state_rdd.valid()) scatter_inputs.push_back({state_rdd, DepKind::Shuffle});
    // d=3 on 4-core executors: one spare vCPU per executor that only
    // the gather stage's d=1 tasks can use — DAG-aware packing fodder.
    const StageId scatter =
        b.add_stage({.name = "scatter" + std::to_string(step),
                     .inputs = std::move(scatter_inputs),
                     .num_tasks = n,
                     .task_cpus = Cpus{3},
                     .task_duration = p.scatter_compute,
                     .output_bytes_per_partition = p.message_block,
                     .cache_output = false,
                     .duration_skew = std::move(skew)});

    const StageId update =
        b.add_stage({.name = "update" + std::to_string(step),
                     .inputs = {{b.output_of(gather), DepKind::Shuffle},
                                {b.output_of(scatter), DepKind::Shuffle}},
                     .num_tasks = n,
                     .task_cpus = Cpus{1},
                     .task_duration = p.update_compute,
                     .output_bytes_per_partition = p.state_block});
    // The previous superstep's state is now dead: proactive-eviction
    // policies (MRD/LRP) reclaim its cache space immediately.
    state_rdd = b.output_of(update);
  }

  b.add_stage({.name = "collect",
               .inputs = {{state_rdd, DepKind::Shuffle}},
               .num_tasks = std::max(2, n / 8),
               .task_cpus = Cpus{1},
               .task_duration = kSec,
               .output_bytes_per_partition = Bytes{}});

  return Workload{p.name, p.category, b.build()};
}

Workload make_connected_component(std::int32_t partitions) {
  SuperstepParams p;
  p.name = "ConnectedComponent";
  p.partitions = partitions;
  p.supersteps = 8;
  return make_superstep_graph(p);
}

Workload make_pregel_operation(std::int32_t partitions) {
  SuperstepParams p;
  p.name = "PregelOperation";
  p.partitions = partitions;
  p.supersteps = 10;
  p.message_block = 128 * kMiB;
  p.init_branch = true;
  return make_superstep_graph(p);
}

Workload make_pagerank(std::int32_t partitions) {
  SuperstepParams p;
  p.name = "PageRank";
  p.partitions = partitions;
  p.supersteps = 8;
  p.message_block = 112 * kMiB;
  p.state_block = 96 * kMiB;
  p.init_branch = true;
  return make_superstep_graph(p);
}

Workload make_shortest_paths(std::int32_t partitions) {
  SuperstepParams p;
  p.name = "ShortestPaths";
  p.partitions = partitions;
  p.supersteps = 9;
  p.skew = 1.5;
  return make_superstep_graph(p);
}

}  // namespace dagon
