// SparkBench-like graph workload generators: TriangleCount (mixed) and
// the I/O-intensive superstep family — ConnectedComponent,
// PregelOperation, PageRank, ShortestPaths (the last two mirror the MRD
// paper's workload set used by the paper's Fig. 11 comparison).
//
// The superstep family follows GraphX's gather/scatter structure: two
// persisted adjacency views (out-edges and the heavier in-edges) are
// re-read by every superstep's gather and scatter stages, which then
// join into the next vertex-state RDD. Two properties matter for the
// paper's evaluation:
//   * aggregate working set > cluster cache (eviction pressure), and
//   * the scatter stage (created after gather, so higher stage id) has
//     the larger priority value — Dagon runs it first, inverting the
//     FIFO stage-id order that MRD's reference distances assume. That
//     inversion is exactly where LRP and MRD part ways (Fig. 11).
#pragma once

#include "workloads/workload.hpp"

namespace dagon {

struct TriangleCountParams {
  std::int32_t partitions = 96;
  Bytes input_block = 256 * kMiB;
  Bytes adj_block = 128 * kMiB;
};

[[nodiscard]] Workload make_triangle_count(
    const TriangleCountParams& params = {});

struct SuperstepParams {
  std::string name = "graph";
  WorkloadCategory category = WorkloadCategory::IoIntensive;
  std::int32_t partitions = 96;
  std::int32_t supersteps = 8;
  Bytes input_block = 512 * kMiB;
  /// Out-edge adjacency read by the (light) gather stages: cheap to
  /// re-read on a miss.
  Bytes adj_block = 64 * kMiB;
  /// In-edge adjacency read by the (heavy) scatter stages: expensive to
  /// re-read — the block a good policy keeps cached.
  Bytes radj_block = 256 * kMiB;
  Bytes message_block = 96 * kMiB;
  Bytes state_block = 64 * kMiB;
  SimTime build_compute = 3 * kSec;
  SimTime gather_compute = 800 * kMsec;
  SimTime scatter_compute = 2 * kSec;
  SimTime update_compute = 800 * kMsec;
  /// Per-superstep straggler skew applied to scatter stages (0 = none);
  /// ShortestPaths uses this to model frontier imbalance.
  double skew = 0.0;
  /// Adds a parallel init branch reading a separate vertex input
  /// (PregelOperation / PageRank initial state).
  bool init_branch = false;
};

[[nodiscard]] Workload make_superstep_graph(const SuperstepParams& params);

[[nodiscard]] Workload make_connected_component(std::int32_t partitions = 96);
[[nodiscard]] Workload make_pregel_operation(std::int32_t partitions = 96);
[[nodiscard]] Workload make_pagerank(std::int32_t partitions = 96);
[[nodiscard]] Workload make_shortest_paths(std::int32_t partitions = 96);

}  // namespace dagon
