#include "workloads/ml_workloads.hpp"

#include <algorithm>

namespace dagon {

Workload make_kmeans(const KMeansParams& p) {
  JobDagBuilder b("KMeans");
  const std::int32_t n = p.partitions;

  // Raw input; the application does not persist it (stage 0 and the
  // re-scan stage 16 stay disk-bound and locality-INsensitive).
  const RddId points = b.input_rdd("points", n, p.input_block);
  b.set_rdd_cacheable(points, false);

  // Stage 0: scan + featurize; persists "features" (64 MiB partitions —
  // re-reading one remotely costs ~9x the in-process read, which is what
  // makes the iteration stages locality-sensitive in Fig. 3).
  const StageId scan = b.add_stage({.name = "scan",
                                    .inputs = {{points, DepKind::Narrow}},
                                    .num_tasks = n,
                                    .task_cpus = Cpus{1},
                                    .task_duration = p.scan_compute,
                                    .output_bytes_per_partition =
                                        p.feature_block});
  const RddId features = b.output_of(scan);

  // Stages 1..iterations: Lloyd iterations. Each reads the cached
  // features narrowly plus the previous (tiny) centers via shuffle.
  RddId prev_centers = RddId::invalid();
  StageId last_iter = scan;
  for (std::int32_t i = 1; i <= p.iterations; ++i) {
    std::vector<RddRef> inputs{{features, DepKind::Narrow}};
    if (prev_centers.valid()) {
      inputs.push_back({prev_centers, DepKind::Shuffle});
    }
    const StageId iter =
        b.add_stage({.name = "iter" + std::to_string(i),
                     .inputs = std::move(inputs),
                     .num_tasks = n,
                     .task_cpus = Cpus{1},
                     .task_duration = p.iter_compute,
                     .output_bytes_per_partition = 64 * kKiB,
                     .cache_output = false});
    prev_centers = b.output_of(iter);
    last_iter = iter;
  }

  // Stage 16: re-scan of the raw input to assign final clusters
  // (disk-bound again, Fig. 3's second insensitive stage).
  const StageId rescan =
      b.add_stage({.name = "rescan",
                   .inputs = {{points, DepKind::Narrow},
                              {b.output_of(last_iter), DepKind::Shuffle}},
                   .num_tasks = n,
                   .task_cpus = Cpus{1},
                   .task_duration = p.scan_compute * 9 / 10,
                   .output_bytes_per_partition = p.feature_block,
                   .cache_output = false});

  // Stage 17: summarize assignments against the cached features.
  b.add_stage({.name = "final",
               .inputs = {{features, DepKind::Narrow},
                          {b.output_of(rescan), DepKind::Shuffle}},
               .num_tasks = n,
               .task_cpus = Cpus{1},
               .task_duration = p.iter_compute,
               .output_bytes_per_partition = Bytes{}});

  return Workload{"KMeans", WorkloadCategory::Mixed, b.build()};
}

// The CPU-intensive generators share the paper's Fig. 1 motif at every
// rung of their iteration ladders: a heavy long-chain stage (the
// critical path) becomes ready together with a light side stage whose
// output is needed only at the very end. A DAG-blind scheduler drains
// the side stage first (its stage id is smaller) and delays the chain;
// a DAG-aware one starts the chain immediately and packs the light
// d=1 tasks into the cores the chain's d=2/d=3 tasks cannot use.

Workload make_linear_regression(const LinearRegressionParams& p) {
  JobDagBuilder b("LinearRegression");
  const std::int32_t n = p.partitions;
  const RddId data = b.input_rdd("data", n, p.input_block);
  b.set_rdd_cacheable(data, false);

  const StageId parse = b.add_stage({.name = "parse",
                                     .inputs = {{data, DepKind::Narrow}},
                                     .num_tasks = n,
                                     .task_cpus = Cpus{1},
                                     .task_duration = p.parse_compute,
                                     .output_bytes_per_partition =
                                         p.train_block});
  const RddId train = b.output_of(parse);

  std::vector<RddRef> eval_outputs;
  RddId prev = RddId::invalid();
  StageId last = parse;
  for (std::int32_t i = 1; i <= p.iterations; ++i) {
    // Light per-iteration loss evaluation (side branch, created first so
    // FIFO prefers it — the Fig. 1 mistake).
    std::vector<RddRef> eval_inputs{{train, DepKind::Narrow}};
    if (prev.valid()) eval_inputs.push_back({prev, DepKind::Shuffle});
    const StageId eval =
        b.add_stage({.name = "eval" + std::to_string(i),
                     .inputs = std::move(eval_inputs),
                     .num_tasks = n,
                     .task_cpus = Cpus{1},
                     .task_duration = p.gradient_compute,
                     .output_bytes_per_partition = 64 * kKiB,
                     .cache_output = false});
    eval_outputs.push_back({b.output_of(eval), DepKind::Shuffle});

    // Heavy gradient step (the chain).
    std::vector<RddRef> inputs{{train, DepKind::Narrow}};
    if (prev.valid()) inputs.push_back({prev, DepKind::Shuffle});
    const StageId grad =
        b.add_stage({.name = "gradient" + std::to_string(i),
                     .inputs = std::move(inputs),
                     .num_tasks = n,
                     .task_cpus = Cpus{3},
                     .task_duration = p.gradient_compute,
                     .output_bytes_per_partition = 64 * kKiB,
                     .cache_output = false});
    prev = b.output_of(grad);
    last = grad;
  }

  // Model update joins the gradient chain with every evaluation.
  std::vector<RddRef> update_inputs{{b.output_of(last), DepKind::Shuffle}};
  update_inputs.insert(update_inputs.end(), eval_outputs.begin(),
                       eval_outputs.end());
  b.add_stage({.name = "update",
               .inputs = std::move(update_inputs),
               .num_tasks = std::max(2, n / 4),
               .task_cpus = Cpus{2},
               .task_duration = 2 * kSec,
               .output_bytes_per_partition = Bytes{}});

  return Workload{"LinearRegression", WorkloadCategory::CpuIntensive,
                  b.build()};
}

Workload make_logistic_regression(const LogisticRegressionParams& p) {
  JobDagBuilder b("LogisticRegression");
  const std::int32_t n = p.partitions;
  const RddId data = b.input_rdd("data", n, p.input_block);
  b.set_rdd_cacheable(data, false);

  const StageId parse = b.add_stage({.name = "parse",
                                     .inputs = {{data, DepKind::Narrow}},
                                     .num_tasks = n,
                                     .task_cpus = Cpus{1},
                                     .task_duration = p.parse_compute,
                                     .output_bytes_per_partition =
                                         p.train_block});
  const RddId train = b.output_of(parse);

  // Tough-to-pack regularization sweep (d=4, a whole executor per task):
  // Graphene calls these troublesome; FIFO wedges them late.
  const StageId reg = b.add_stage({.name = "reg-path",
                                   .inputs = {{train, DepKind::Shuffle}},
                                   .num_tasks = std::max(2, n / 4),
                                   .task_cpus = Cpus{4},
                                   .task_duration = 8 * kSec,
                                   .output_bytes_per_partition = kMiB,
                                   .cache_output = false});

  std::vector<RddRef> side_outputs{{b.output_of(reg), DepKind::Shuffle}};
  RddId prev = RddId::invalid();
  StageId last = parse;
  for (std::int32_t i = 1; i <= p.iterations; ++i) {
    // Light convergence diagnostics (side branch, lower stage id).
    std::vector<RddRef> diag_inputs{{train, DepKind::Narrow}};
    if (prev.valid()) diag_inputs.push_back({prev, DepKind::Shuffle});
    const StageId diag =
        b.add_stage({.name = "diag" + std::to_string(i),
                     .inputs = std::move(diag_inputs),
                     .num_tasks = n,
                     .task_cpus = Cpus{1},
                     .task_duration = p.gradient_compute,
                     .output_bytes_per_partition = 64 * kKiB,
                     .cache_output = false});
    side_outputs.push_back({b.output_of(diag), DepKind::Shuffle});

    std::vector<RddRef> inputs{{train, DepKind::Narrow}};
    if (prev.valid()) inputs.push_back({prev, DepKind::Shuffle});
    const StageId grad =
        b.add_stage({.name = "lbfgs" + std::to_string(i),
                     .inputs = std::move(inputs),
                     .num_tasks = n,
                     .task_cpus = Cpus{3},
                     .task_duration = p.gradient_compute,
                     .output_bytes_per_partition = 64 * kKiB,
                     .cache_output = false});
    prev = b.output_of(grad);
    last = grad;
  }

  std::vector<RddRef> select_inputs{{b.output_of(last), DepKind::Shuffle}};
  select_inputs.insert(select_inputs.end(), side_outputs.begin(),
                       side_outputs.end());
  b.add_stage({.name = "model-select",
               .inputs = std::move(select_inputs),
               .num_tasks = std::max(2, n / 4),
               .task_cpus = Cpus{2},
               .task_duration = 2 * kSec,
               .output_bytes_per_partition = Bytes{}});

  return Workload{"LogisticRegression", WorkloadCategory::CpuIntensive,
                  b.build()};
}

Workload make_decision_tree(const DecisionTreeParams& p) {
  JobDagBuilder b("DecisionTree");
  const std::int32_t n = p.partitions;
  const RddId data = b.input_rdd("data", n, p.input_block);
  b.set_rdd_cacheable(data, false);

  // Short preprocessing branch scheduled first by FIFO.
  const StageId labels = b.add_stage({.name = "label-index",
                                      .inputs = {{data, DepKind::Narrow}},
                                      .num_tasks = n,
                                      .task_cpus = Cpus{2},
                                      .task_duration = 3 * kSec,
                                      .output_bytes_per_partition = kMiB});
  const StageId parse = b.add_stage({.name = "binning",
                                     .inputs = {{data, DepKind::Narrow}},
                                     .num_tasks = n,
                                     .task_cpus = Cpus{1},
                                     .task_duration = p.parse_compute,
                                     .output_bytes_per_partition =
                                         p.feature_block});
  const RddId features = b.output_of(parse);

  // Long chain: per tree level, a light per-node impurity sample (side
  // branch, consumed only by the final assembly) plus a heavy statistics
  // aggregation (d=3) over the cached features, then a split selection.
  std::vector<RddRef> prune_outputs;
  RddId prev_split = b.output_of(labels);
  for (std::int32_t level = 1; level <= p.levels; ++level) {
    const StageId prune = b.add_stage(
        {.name = "prune" + std::to_string(level),
         .inputs = {{prev_split, DepKind::Shuffle}},
         .num_tasks = n,
         .task_cpus = Cpus{1},
         .task_duration = 4 * kSec,
         .output_bytes_per_partition = kMiB,
         .cache_output = false});
    prune_outputs.push_back({b.output_of(prune), DepKind::Shuffle});

    const StageId stats = b.add_stage(
        {.name = "stats" + std::to_string(level),
         .inputs = {{features, DepKind::Narrow},
                    {prev_split, DepKind::Shuffle}},
         .num_tasks = n,
         .task_cpus = Cpus{3},
         .task_duration = p.stats_compute,
         .output_bytes_per_partition = 4 * kMiB,
         .cache_output = false});
    const StageId split = b.add_stage(
        {.name = "split" + std::to_string(level),
         .inputs = {{b.output_of(stats), DepKind::Shuffle}},
         .num_tasks = std::max(2, n / 8),
         .task_cpus = Cpus{1},
         .task_duration = kSec,
         .output_bytes_per_partition = kMiB,
         .cache_output = false});
    prev_split = b.output_of(split);
  }

  std::vector<RddRef> assemble_inputs{{prev_split, DepKind::Shuffle}};
  assemble_inputs.insert(assemble_inputs.end(), prune_outputs.begin(),
                         prune_outputs.end());
  b.add_stage({.name = "assemble",
               .inputs = std::move(assemble_inputs),
               .num_tasks = 2,
               .task_cpus = Cpus{2},
               .task_duration = kSec,
               .output_bytes_per_partition = Bytes{}});

  return Workload{"DecisionTree", WorkloadCategory::CpuIntensive, b.build()};
}

}  // namespace dagon
