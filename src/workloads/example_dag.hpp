// The paper's running example (Fig. 1): a 4-stage DAG with heterogeneous
// per-task demands and durations, reconstructed from the paper's own
// numbers:
//
//   stage 1: A -> B   3 tasks, <4 vCPU, 4 min>   w1 = 48
//   stage 2: C -> D   3 tasks, <6 vCPU, 2 min>   w2 = 36
//   stage 3: D -> E   2 tasks, <3 vCPU, 4 min>   w3 = 24  (shuffle)
//   stage 4: B,E -> F 1 task,  <4 vCPU, 1 min>   w4 = 4   (shuffle)
//
// giving pv1 = w1+w4 = 52 and pv2 = w2+w3+w4 = 64, exactly the initial
// values of Table III. RDD A's three partitions start cached (the black
// blocks); the FIFO schedule on one 16-vCPU executor finishes at 13 min,
// the DAG-aware one at 9 min (Fig. 2).
#pragma once

#include "workloads/workload.hpp"

namespace dagon {

struct ExampleDagParams {
  /// Minutes are mapped to this many simulated time units so the same
  /// structure also serves fast unit tests.
  SimTime minute = kMinute;
  /// Block size for all RDD partitions (kept small: Fig. 1/2 reasoning
  /// ignores fetch costs).
  Bytes block_bytes = kMiB;
  /// Partitions of A initially resident in memory (3 in the paper).
  std::int32_t cached_a_partitions = 3;
};

[[nodiscard]] Workload make_example_dag(const ExampleDagParams& params = {});

}  // namespace dagon
