// Multi-job batches: several applications submitted to one cluster.
//
// The paper evaluates one application at a time but frames Dagon for
// multi-tenant clusters (§III-A2) and contrasts Spark's FIFO and Fair
// schedulers (§I). A batch merges several job DAGs into one disconnected
// super-DAG: FIFO then orders stages job-by-job (submission order), Fair
// balances allocated cores across the jobs' ready stages, and Dagon's
// pv_i ranks stages across job boundaries by remaining downstream work.
#pragma once

#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "workloads/workload.hpp"

namespace dagon {

struct BatchJob {
  std::string name;
  /// Stage ids of this job inside the merged DAG.
  std::vector<StageId> stages;
};

struct BatchWorkload {
  /// The merged super-DAG (one connected component per job).
  Workload combined;
  std::vector<BatchJob> jobs;
};

/// Merges `workloads` (in submission order) into one BatchWorkload.
/// Stage and RDD ids are renumbered job by job, so FIFO's stage-id order
/// equals submission order.
///
/// With `share_inputs`, input RDDs keep their bare names and identically
/// named inputs across jobs become ONE dataset in the merged DAG (their
/// shape must match exactly) — the structural basis for cross-job cache
/// sharing in serving mode: one job's cached read benefits every other
/// job touching the same input. Without it, inputs are prefixed
/// "job/name" and stay private.
[[nodiscard]] BatchWorkload merge_workloads(
    const std::vector<Workload>& workloads, bool share_inputs);

[[nodiscard]] inline BatchWorkload merge_workloads(
    const std::vector<Workload>& workloads) {
  return merge_workloads(workloads, /*share_inputs=*/false);
}

/// Per-job completion times extracted from a merged run.
struct JobCompletion {
  std::string name;
  SimTime first_launch{};
  SimTime finish{};

  [[nodiscard]] SimTime jct() const { return finish; }
};

[[nodiscard]] std::vector<JobCompletion> per_job_completions(
    const BatchWorkload& batch, const RunMetrics& metrics);

}  // namespace dagon
