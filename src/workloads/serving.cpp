#include "workloads/serving.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dagon {

namespace {

/// One exponential inter-arrival gap at `rate_per_sec`, in SimTime µs.
SimTime exponential_gap(Rng& rng, double rate_per_sec) {
  DAGON_CHECK_MSG(rate_per_sec > 0.0, "arrival rate must be positive");
  // 1 - uniform() is in (0, 1], so the log argument never hits zero.
  const double gap_sec = -std::log(1.0 - rng.uniform()) / rate_per_sec;
  return std::max(
      SimTime{1},
      time_from_usec(gap_sec * static_cast<double>(kSec.count())));
}

}  // namespace

std::vector<SimTime> generate_arrivals(const ArrivalSpec& spec,
                                       std::int32_t n) {
  DAGON_CHECK_MSG(n > 0, "need at least one arriving job");
  // Dedicated stream: the same seed drives HDFS placement etc. in the
  // run itself, and arrivals must not perturb those draws.
  Rng rng = Rng(spec.seed).fork(/*stream=*/0x5e21);
  std::vector<SimTime> at;
  at.reserve(static_cast<std::size_t>(n));
  SimTime t{};
  for (std::int32_t i = 0; i < n; ++i) {
    if (i > 0) {
      switch (spec.kind) {
        case ArrivalKind::Poisson:
          t += exponential_gap(rng, spec.rate_per_sec);
          break;
        case ArrivalKind::Trace: {
          DAGON_CHECK_MSG(!spec.trace_gaps_sec.empty(),
                          "trace arrivals need at least one gap");
          const double gap_sec =
              spec.trace_gaps_sec[static_cast<std::size_t>(i - 1) %
                                  spec.trace_gaps_sec.size()];
          DAGON_CHECK_MSG(gap_sec >= 0.0, "trace gaps must be >= 0");
          t += time_from_usec(gap_sec * static_cast<double>(kSec.count()));
          break;
        }
        case ArrivalKind::Bursty: {
          DAGON_CHECK_MSG(spec.burst_len > 0, "burst_len must be positive");
          // Phases alternate every burst_len arrivals: jobs 0..L-1 land
          // in a burst, L..2L-1 trickle in, and so on.
          const bool in_burst = (i / spec.burst_len) % 2 == 0;
          t += exponential_gap(rng, in_burst ? spec.burst_rate_per_sec
                                             : spec.idle_rate_per_sec);
          break;
        }
      }
    }
    at.push_back(t);
  }
  return at;
}

ServingWorkload make_serving(const std::vector<Workload>& jobs,
                             const ArrivalSpec& spec,
                             const ServingOptions& opt) {
  DAGON_CHECK_MSG(!jobs.empty(), "make_serving needs at least one job");
  if (!opt.weights.empty() && opt.weights.size() != jobs.size()) {
    throw ConfigError("serving weights must match the job count");
  }
  ServingWorkload out;
  out.batch = merge_workloads(jobs, opt.share_inputs);
  const std::vector<SimTime> arrivals =
      generate_arrivals(spec, static_cast<std::int32_t>(jobs.size()));
  out.serving.fair_share = opt.fair_share;
  out.serving.jobs.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    SimConfig::ServingJob sj;
    sj.name = out.batch.jobs[j].name;
    sj.submit_at = arrivals[j];
    sj.weight = opt.weights.empty() ? 1 : opt.weights[j];
    sj.stages = out.batch.jobs[j].stages;
    out.serving.jobs.push_back(std::move(sj));
  }
  return out;
}

}  // namespace dagon
