// The SparkBench-like workload suite used throughout the evaluation
// (§V-A): three CPU-intensive, two mixed, two I/O-intensive workloads,
// plus the Fig. 11 graph set.
#pragma once

#include <vector>

#include "workloads/workload.hpp"

namespace dagon {

enum class WorkloadId {
  LinearRegression,
  LogisticRegression,
  DecisionTree,
  KMeans,
  TriangleCount,
  ConnectedComponent,
  PregelOperation,
  PageRank,
  ShortestPaths,
};

[[nodiscard]] const char* workload_name(WorkloadId id);

/// Builds a workload at the given scale (1.0 = paper calibration).
[[nodiscard]] Workload make_workload(WorkloadId id,
                                     const WorkloadScale& scale = {});

/// The seven evaluation workloads of Fig. 8/9/10, grouped as in the
/// paper: CPU-intensive first, then mixed, then I/O-intensive.
[[nodiscard]] std::vector<WorkloadId> sparkbench_suite();

/// The four I/O-intensive workloads of the Fig. 11 cache comparison
/// (the MRD paper's workload set).
[[nodiscard]] std::vector<WorkloadId> cache_study_suite();

}  // namespace dagon
