#include "workloads/batch.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dagon {

BatchWorkload merge_workloads(const std::vector<Workload>& workloads,
                              bool share_inputs) {
  if (workloads.empty()) {
    throw ConfigError("merge_workloads needs at least one workload");
  }
  // Shared input datasets registered so far: (bare name, merged id),
  // linear-searched — input counts are tiny.
  struct SharedInput {
    std::string name;
    RddId id;
    std::int32_t num_partitions;
    Bytes bytes_per_partition;
    bool cacheable;
  };
  std::vector<SharedInput> shared;
  std::string name;
  std::size_t name_len = 0;
  for (const Workload& w : workloads) name_len += w.name.size() + 1;
  name.reserve(name_len);
  for (const Workload& w : workloads) {
    if (!name.empty()) name += "+";
    name += w.name;
  }
  JobDagBuilder builder(name);
  BatchWorkload batch;
  batch.jobs.reserve(workloads.size());

  for (const Workload& w : workloads) {
    BatchJob job;
    job.name = w.name;
    job.stages.reserve(w.dag.stages().size());
    // Renumber this job's RDDs/stages into the merged builder. Input
    // RDDs are re-registered; stage outputs are created implicitly by
    // add_stage, so we track the old->new RDD id mapping as we go.
    std::vector<RddId> rdd_map(w.dag.rdds().size(), RddId::invalid());
    for (const Rdd& r : w.dag.rdds()) {
      if (!r.is_input) continue;
      if (share_inputs) {
        const SharedInput* found = nullptr;
        for (const SharedInput& si : shared) {
          if (si.name == r.name) {
            found = &si;
            break;
          }
        }
        if (found != nullptr) {
          if (found->num_partitions != r.num_partitions ||
              found->bytes_per_partition != r.bytes_per_partition ||
              found->cacheable != r.cacheable) {
            throw ConfigError("shared input '" + r.name +
                              "' has mismatched shapes across jobs");
          }
          rdd_map[static_cast<std::size_t>(r.id.value())] = found->id;
          continue;
        }
        const RddId id =
            builder.input_rdd(r.name, r.num_partitions,
                              r.bytes_per_partition,
                              r.initially_cached_partitions);
        if (!r.cacheable) builder.set_rdd_cacheable(id, false);
        shared.push_back(SharedInput{r.name, id, r.num_partitions,
                                     r.bytes_per_partition, r.cacheable});
        rdd_map[static_cast<std::size_t>(r.id.value())] = id;
        continue;
      }
      const RddId id =
          builder.input_rdd(w.name + "/" + r.name, r.num_partitions,
                            r.bytes_per_partition,
                            r.initially_cached_partitions);
      if (!r.cacheable) builder.set_rdd_cacheable(id, false);
      rdd_map[static_cast<std::size_t>(r.id.value())] = id;
    }
    // Stages in topological (== id) order so inputs are always mapped.
    for (const Stage& s : w.dag.stages()) {
      JobDagBuilder::StageParams params;
      params.name = w.name + "/" + s.name;
      params.inputs.reserve(s.inputs.size());
      for (const RddRef& ref : s.inputs) {
        const RddId mapped =
            rdd_map[static_cast<std::size_t>(ref.rdd.value())];
        DAGON_CHECK_MSG(mapped.valid(),
                        "stage '" << s.name << "' reads an unmapped RDD");
        params.inputs.push_back({mapped, ref.kind});
      }
      params.num_tasks = s.num_tasks;
      params.task_cpus = s.task_cpus;
      params.task_duration = s.task_duration;
      const Rdd& out = w.dag.rdd(s.output);
      params.output_bytes_per_partition = out.bytes_per_partition;
      params.cache_output = out.cacheable;
      params.duration_skew = s.duration_skew;
      params.output_name = w.name + "/" + out.name;
      const StageId sid = builder.add_stage(params);
      rdd_map[static_cast<std::size_t>(s.output.value())] =
          builder.output_of(sid);
      job.stages.push_back(sid);
    }
    batch.jobs.push_back(std::move(job));
  }

  WorkloadCategory category = workloads.front().category;
  batch.combined = Workload{std::move(name), category, builder.build()};
  return batch;
}

std::vector<JobCompletion> per_job_completions(const BatchWorkload& batch,
                                               const RunMetrics& metrics) {
  std::vector<JobCompletion> out;
  out.reserve(batch.jobs.size());
  for (const BatchJob& job : batch.jobs) {
    JobCompletion jc;
    jc.name = job.name;
    jc.first_launch = kTimeInfinity;
    for (const StageId sid : job.stages) {
      const StageRecord& rec =
          metrics.stages[static_cast<std::size_t>(sid.value())];
      DAGON_CHECK(rec.id == sid);
      jc.first_launch = std::min(jc.first_launch, rec.first_launch);
      jc.finish = std::max(jc.finish, rec.finish_time);
    }
    out.push_back(std::move(jc));
  }
  return out;
}

}  // namespace dagon
