// Random layered DAG generator for property-based tests: arbitrary (but
// always valid) stage graphs with heterogeneous demands, durations and
// dependency kinds.
#pragma once

#include "common/rng.hpp"
#include "workloads/workload.hpp"

namespace dagon {

struct RandomDagParams {
  std::int32_t min_stages = 3;
  std::int32_t max_stages = 24;
  std::int32_t max_parents = 3;
  std::int32_t min_tasks = 1;
  std::int32_t max_tasks = 32;
  Cpus max_cpus{4};
  SimTime min_duration = 200 * kMsec;
  SimTime max_duration = 8 * kSec;
  Bytes max_block = 64 * kMiB;
  /// Probability a dependency is a shuffle (vs narrow).
  double shuffle_prob = 0.5;
  /// Probability a stage's output is persisted.
  double cache_prob = 0.7;
};

/// Generates a random DAG; identical for identical (params, rng state).
[[nodiscard]] Workload make_random_dag(Rng& rng,
                                       const RandomDagParams& params = {});

}  // namespace dagon
