// Online multi-job serving: a stream of job arrivals over one shared
// cluster and cache.
//
// The paper evaluates one application per run; production Spark
// clusters instead serve a stream of concurrent jobs whose cached data
// compete for the same memory (the setting LERC [Yu et al.,
// arXiv:1708.07941] targets). This module turns a list of per-job
// Workloads into one serving run: an arrival process assigns each job a
// submit time, the jobs' DAGs merge into one super-DAG (optionally
// sharing identically named input datasets, so one job's cache fill
// serves another's read), and the resulting SimConfig::ServingConfig
// gates each job's stages until its JobSubmit event fires.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/sim_config.hpp"
#include "workloads/batch.hpp"

namespace dagon {

enum class ArrivalKind {
  /// Memoryless arrivals: exponential inter-arrival gaps at `rate`.
  Poisson,
  /// Trace-driven: explicit gap sequence, repeated cyclically.
  Trace,
  /// Heavy-traffic bursts: alternating phases of `burst_len` jobs at
  /// `burst_rate` and `burst_len` jobs at `idle_rate`.
  Bursty,
};

[[nodiscard]] constexpr const char* arrival_kind_name(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::Poisson: return "poisson";
    case ArrivalKind::Trace: return "trace";
    case ArrivalKind::Bursty: return "bursty";
  }
  return "?";
}

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::Poisson;
  /// Poisson mean arrival rate, jobs per second.
  double rate_per_sec = 0.5;
  /// Trace gaps between consecutive arrivals, seconds; cycled when the
  /// job count exceeds the trace length.
  std::vector<double> trace_gaps_sec;
  /// Bursty: in-burst and between-burst rates (jobs per second).
  double burst_rate_per_sec = 4.0;
  double idle_rate_per_sec = 0.25;
  /// Jobs per bursty phase.
  std::int32_t burst_len = 4;
  /// Arrival draws use a dedicated forked stream off this seed, so the
  /// arrival pattern never perturbs the run's other random choices.
  std::uint64_t seed = 42;
};

/// Submit times for `n` jobs: non-decreasing, first arrival at t=0 (the
/// stream starts with work). Deterministic in (spec, n).
[[nodiscard]] std::vector<SimTime> generate_arrivals(
    const ArrivalSpec& spec, std::int32_t n);

struct ServingOptions {
  /// Merge identically named input RDDs across jobs into one dataset
  /// (cross-job cache sharing). Off = private prefixed inputs.
  bool share_inputs = true;
  /// Inter-job weighted fair sharing in the schedule loop.
  bool fair_share = true;
  /// Per-job fair-share weights; empty = all 1. Length must match the
  /// job count otherwise.
  std::vector<std::int32_t> weights;
};

struct ServingWorkload {
  /// Merged super-DAG plus per-job stage lists.
  BatchWorkload batch;
  /// Ready to assign into SimConfig::serving.
  SimConfig::ServingConfig serving;
};

/// Builds a serving run: merges `jobs` and pairs each with its arrival
/// time from `spec`.
[[nodiscard]] ServingWorkload make_serving(const std::vector<Workload>& jobs,
                                           const ArrivalSpec& spec,
                                           const ServingOptions& opt = {});

}  // namespace dagon
