#include "workloads/suite.hpp"

#include "common/error.hpp"
#include "workloads/graph_workloads.hpp"
#include "workloads/ml_workloads.hpp"

namespace dagon {

const char* workload_name(WorkloadId id) {
  switch (id) {
    case WorkloadId::LinearRegression: return "LinearRegression";
    case WorkloadId::LogisticRegression: return "LogisticRegression";
    case WorkloadId::DecisionTree: return "DecisionTree";
    case WorkloadId::KMeans: return "KMeans";
    case WorkloadId::TriangleCount: return "TriangleCount";
    case WorkloadId::ConnectedComponent: return "ConnectedComponent";
    case WorkloadId::PregelOperation: return "PregelOperation";
    case WorkloadId::PageRank: return "PageRank";
    case WorkloadId::ShortestPaths: return "ShortestPaths";
  }
  return "?";
}

Workload make_workload(WorkloadId id, const WorkloadScale& scale) {
  switch (id) {
    case WorkloadId::LinearRegression: {
      LinearRegressionParams p;
      p.partitions = scale.parts(p.partitions);
      return make_linear_regression(p);
    }
    case WorkloadId::LogisticRegression: {
      LogisticRegressionParams p;
      p.partitions = scale.parts(p.partitions);
      return make_logistic_regression(p);
    }
    case WorkloadId::DecisionTree: {
      DecisionTreeParams p;
      p.partitions = scale.parts(p.partitions);
      return make_decision_tree(p);
    }
    case WorkloadId::KMeans: {
      KMeansParams p;
      p.partitions = scale.parts(p.partitions);
      return make_kmeans(p);
    }
    case WorkloadId::TriangleCount: {
      TriangleCountParams p;
      p.partitions = scale.parts(p.partitions);
      return make_triangle_count(p);
    }
    case WorkloadId::ConnectedComponent:
      return make_connected_component(scale.parts(96));
    case WorkloadId::PregelOperation:
      return make_pregel_operation(scale.parts(96));
    case WorkloadId::PageRank:
      return make_pagerank(scale.parts(96));
    case WorkloadId::ShortestPaths:
      return make_shortest_paths(scale.parts(96));
  }
  throw ConfigError("unknown workload id");
}

std::vector<WorkloadId> sparkbench_suite() {
  return {WorkloadId::LinearRegression, WorkloadId::LogisticRegression,
          WorkloadId::DecisionTree,     WorkloadId::KMeans,
          WorkloadId::TriangleCount,    WorkloadId::ConnectedComponent,
          WorkloadId::PregelOperation};
}

std::vector<WorkloadId> cache_study_suite() {
  return {WorkloadId::ConnectedComponent, WorkloadId::PregelOperation,
          WorkloadId::PageRank, WorkloadId::ShortestPaths};
}

}  // namespace dagon
