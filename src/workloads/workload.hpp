// Workload: a named JobDag plus the paper's resource-consumption
// category (§V-A groups SparkBench applications into CPU-intensive,
// mixed, and I/O-intensive).
#pragma once

#include <string>

#include "dag/job_dag.hpp"

namespace dagon {

enum class WorkloadCategory { CpuIntensive, Mixed, IoIntensive };

[[nodiscard]] constexpr const char* category_name(WorkloadCategory c) {
  switch (c) {
    case WorkloadCategory::CpuIntensive: return "CPU-intensive";
    case WorkloadCategory::Mixed: return "mixed";
    case WorkloadCategory::IoIntensive: return "I/O-intensive";
  }
  return "?";
}

struct Workload {
  std::string name;
  WorkloadCategory category = WorkloadCategory::Mixed;
  JobDag dag;
};

/// Global scale knob: 1.0 reproduces the paper-calibrated sizes; smaller
/// values shrink partition counts for fast tests.
struct WorkloadScale {
  double size = 1.0;

  [[nodiscard]] std::int32_t parts(std::int32_t base) const {
    const auto scaled =
        // dagonlint: allow(narrowing-cast): scaled partition count, dimensionless
        static_cast<std::int32_t>(static_cast<double>(base) * size);
    return std::max<std::int32_t>(2, scaled);
  }
};

}  // namespace dagon
