#include "workloads/random_dag.hpp"

#include <algorithm>

namespace dagon {

Workload make_random_dag(Rng& rng, const RandomDagParams& p) {
  JobDagBuilder b("random");
  const auto num_stages = static_cast<std::int32_t>(
      rng.uniform_range(p.min_stages, p.max_stages));

  const auto rand_tasks = [&] {
    return static_cast<std::int32_t>(
        rng.uniform_range(p.min_tasks, p.max_tasks));
  };
  const auto rand_bytes = [&] {
    return Bytes{rng.uniform_range(kMiB.count(), p.max_block.count())};
  };

  // A couple of input RDDs for the roots to read.
  std::vector<RddId> inputs;
  const auto num_inputs = static_cast<std::int32_t>(rng.uniform_range(1, 3));
  std::vector<std::int32_t> input_parts;
  for (std::int32_t i = 0; i < num_inputs; ++i) {
    const std::int32_t parts = rand_tasks();
    inputs.push_back(b.input_rdd("in" + std::to_string(i), parts,
                                 rand_bytes()));
    input_parts.push_back(parts);
  }

  struct Made {
    StageId stage;
    RddId output;
    std::int32_t parts;
  };
  std::vector<Made> made;

  for (std::int32_t s = 0; s < num_stages; ++s) {
    const std::int32_t tasks = rand_tasks();
    std::vector<RddRef> refs;

    // Choose parents among earlier stages (guaranteeing acyclicity) or
    // input RDDs for roots.
    const auto num_parents = static_cast<std::int32_t>(rng.uniform_range(
        made.empty() ? 1 : 1, std::min<std::int32_t>(p.max_parents,
                                                     1 + (made.empty()
                                                              ? 0
                                                              : 2))));
    for (std::int32_t q = 0; q < num_parents; ++q) {
      const bool from_input = made.empty() || rng.bernoulli(0.25);
      if (from_input) {
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(static_cast<std::int64_t>(inputs.size())));
        const bool can_narrow = input_parts[idx] == tasks;
        const bool shuffle = !can_narrow || rng.bernoulli(p.shuffle_prob);
        refs.push_back({inputs[idx],
                        shuffle ? DepKind::Shuffle : DepKind::Narrow});
      } else {
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(static_cast<std::int64_t>(made.size())));
        const bool can_narrow = made[idx].parts == tasks;
        const bool shuffle = !can_narrow || rng.bernoulli(p.shuffle_prob);
        refs.push_back({made[idx].output,
                        shuffle ? DepKind::Shuffle : DepKind::Narrow});
      }
    }
    // De-duplicate references to the same RDD.
    std::sort(refs.begin(), refs.end(),
              [](const RddRef& a, const RddRef& b2) {
                return a.rdd < b2.rdd;
              });
    refs.erase(std::unique(refs.begin(), refs.end(),
                           [](const RddRef& a, const RddRef& b2) {
                             return a.rdd == b2.rdd;
                           }),
               refs.end());

    const StageId sid = b.add_stage(
        {.name = "s" + std::to_string(s),
         .inputs = std::move(refs),
         .num_tasks = tasks,
         .task_cpus = Cpus{static_cast<std::int32_t>(
             rng.uniform_range(1, p.max_cpus.count()))},
         .task_duration = SimTime{rng.uniform_range(p.min_duration.count(),
                                    p.max_duration.count())},
         .output_bytes_per_partition = rand_bytes(),
         .cache_output = rng.bernoulli(p.cache_prob)});
    made.push_back(Made{sid, b.output_of(sid), tasks});
  }

  return Workload{"random", WorkloadCategory::Mixed, b.build()};
}

}  // namespace dagon
