// Runner: the one-call public API — profile a workload, wire a
// simulated cluster, run it under a system combination, return metrics.
//
//   auto workload = dagon::make_workload(dagon::WorkloadId::KMeans);
//   auto result = dagon::run_system(workload, dagon::dagon_full(),
//                                   dagon::paper_testbed());
//   std::cout << dagon::to_seconds(result.metrics.jct) << "s\n";
#pragma once

#include "core/app_profiler.hpp"
#include "core/presets.hpp"
#include "sim/driver.hpp"
#include "workloads/workload.hpp"

namespace dagon {

struct RunResult {
  RunMetrics metrics;
  JobProfile profile;
};

/// Runs `workload` under `config`, using `profiler` for the scheduler's
/// estimates.
[[nodiscard]] RunResult run_workload(const Workload& workload,
                                     const SimConfig& config,
                                     const AppProfiler& profiler);

/// Same with a perfect (noiseless) profile.
[[nodiscard]] RunResult run_workload(const Workload& workload,
                                     const SimConfig& config);

/// Convenience: applies a named system combo onto a base cluster config.
[[nodiscard]] RunResult run_system(const Workload& workload,
                                   const SystemCombo& combo,
                                   const SimConfig& base,
                                   const AppProfiler& profiler);

[[nodiscard]] RunResult run_system(const Workload& workload,
                                   const SystemCombo& combo,
                                   const SimConfig& base);

}  // namespace dagon
