#include "core/assignment_trace.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"
#include "dag/dag_analysis.hpp"
#include "dag/profile.hpp"

namespace dagon {

namespace {

struct StageState {
  std::int32_t next_task = 0;
  std::int32_t finished = 0;
  std::int32_t running = 0;
  CpuWork remaining{};
  bool ready = false;
  bool finished_all = false;
};

}  // namespace

AssignmentTrace trace_priority_assignment(const JobDag& dag, Cpus capacity,
                                          SchedulerKind kind) {
  DAGON_CHECK(capacity > Cpus{0});
  for (const Stage& s : dag.stages()) {
    if (s.task_cpus > capacity) {
      throw ConfigError("stage '" + s.name + "' cannot fit the pool");
    }
  }

  const std::vector<SimTime> cp = critical_path_lengths(dag);
  std::vector<StageState> st(dag.num_stages());
  std::vector<CpuWork> per_task(dag.num_stages());
  for (const Stage& s : dag.stages()) {
    auto& state = st[static_cast<std::size_t>(s.id.value())];
    state.remaining = s.workload();
    state.ready = s.parents.empty();
    per_task[static_cast<std::size_t>(s.id.value())] =
        s.num_tasks > 0 ? s.workload() / s.num_tasks : CpuWork{0};
  }

  const auto pv_of = [&](StageId id) {
    CpuWork v = st[static_cast<std::size_t>(id.value())].remaining;
    for (const StageId succ : dag.successor_set(id)) {
      v += st[static_cast<std::size_t>(succ.value())].remaining;
    }
    return v;
  };

  // Offer order per policy (mirrors the StageSelector implementations,
  // over this tracer's lightweight state).
  const auto order = [&]() {
    std::vector<StageId> ready;
    for (const Stage& s : dag.stages()) {
      const auto& state = st[static_cast<std::size_t>(s.id.value())];
      if (state.ready && !state.finished_all &&
          state.next_task < s.num_tasks) {
        ready.push_back(s.id);
      }
    }
    switch (kind) {
      case SchedulerKind::Fifo:
      case SchedulerKind::Fair:
        std::sort(ready.begin(), ready.end());
        break;
      case SchedulerKind::CriticalPath:
        std::stable_sort(ready.begin(), ready.end(),
                         [&](StageId a, StageId b) {
                           const SimTime ca =
                               cp[static_cast<std::size_t>(a.value())];
                           const SimTime cb =
                               cp[static_cast<std::size_t>(b.value())];
                           if (ca != cb) return ca > cb;
                           return a < b;
                         });
        break;
      case SchedulerKind::Graphene: {
        std::stable_sort(ready.begin(), ready.end(),
                         [&](StageId a, StageId b) {
                           const auto score = [&](StageId id) {
                             const Stage& s = dag.stage(id);
                             return static_cast<double>(s.task_duration.count()) *
                                    s.task_cpus.count();
                           };
                           const double sa = score(a);
                           const double sb = score(b);
                           if (sa != sb) return sa > sb;
                           return a < b;
                         });
        break;
      }
      case SchedulerKind::Dagon:
        std::stable_sort(ready.begin(), ready.end(),
                         [&](StageId a, StageId b) {
                           const CpuWork pa = pv_of(a);
                           const CpuWork pb = pv_of(b);
                           if (pa != pb) return pa > pb;
                           return a < b;
                         });
        break;
    }
    return ready;
  };

  struct Finish {
    SimTime time;
    StageId stage;
    std::int32_t task;
    bool operator>(const Finish& o) const {
      if (time != o.time) return time > o.time;
      if (stage != o.stage) return stage > o.stage;
      return task > o.task;
    }
  };
  std::priority_queue<Finish, std::vector<Finish>, std::greater<>> finishes;

  AssignmentTrace trace;
  Cpus free = capacity;
  SimTime now{};
  int step = 0;

  const auto try_assign = [&]() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (const StageId sid : order()) {
        const Stage& s = dag.stage(sid);
        if (s.task_cpus > free) continue;
        auto& state = st[static_cast<std::size_t>(sid.value())];
        const std::int32_t task = state.next_task++;
        ++state.running;
        state.remaining = std::max(
            CpuWork{0}, state.remaining -
                   per_task[static_cast<std::size_t>(sid.value())]);
        free -= s.task_cpus;
        const SimTime end = now + s.task_compute_time(task);
        finishes.push(Finish{end, sid, task});
        trace.placements.push_back(
            PlacedTask{sid, task, now, end, s.task_cpus});

        AssignmentStep rec;
        rec.step = ++step;
        rec.time = now;
        rec.chosen = sid;
        rec.free_after = free;
        rec.w_after.reserve(dag.num_stages());
        rec.pv_after.reserve(dag.num_stages());
        for (const Stage& each : dag.stages()) {
          rec.w_after.push_back(
              st[static_cast<std::size_t>(each.id.value())].remaining);
          rec.pv_after.push_back(pv_of(each.id));
        }
        trace.steps.push_back(std::move(rec));
        progress = true;
        break;
      }
    }
  };

  try_assign();
  while (!finishes.empty()) {
    // Drain every completion at this instant before reassigning, so the
    // free-CPU column matches the paper's Table III (16 free at t=0,
    // 12 free after the two stage-2 tasks complete at t=2, ...).
    now = finishes.top().time;
    while (!finishes.empty() && finishes.top().time == now) {
      const Finish f = finishes.top();
      finishes.pop();
      const Stage& s = dag.stage(f.stage);
      auto& state = st[static_cast<std::size_t>(f.stage.value())];
      --state.running;
      free += s.task_cpus;
      if (++state.finished == s.num_tasks) {
        state.finished_all = true;
        // Promote children whose parents are all done.
        for (const Stage& child : dag.stages()) {
          auto& cs = st[static_cast<std::size_t>(child.id.value())];
          if (cs.ready || cs.finished_all) continue;
          const bool ok = std::all_of(
              child.parents.begin(), child.parents.end(), [&](StageId p) {
                return st[static_cast<std::size_t>(p.value())].finished_all;
              });
          if (ok) cs.ready = true;
        }
      }
    }
    try_assign();
  }

  for (const StageState& state : st) {
    DAGON_CHECK_MSG(state.finished_all,
                    "tracer finished with incomplete stages");
  }
  trace.makespan = now;

  // Fragmentation: capacity·makespan − total useful work actually run.
  CpuWork busy{};
  for (const PlacedTask& p : trace.placements) {
    busy += p.cpus * (p.end - p.start);
  }
  trace.idle_cpu_time = capacity * trace.makespan - busy;
  return trace;
}

}  // namespace dagon
