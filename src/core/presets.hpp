// Experiment presets: the paper's testbed and case-study clusters, and
// the named scheduler+cache system combinations evaluated in §V.
#pragma once

#include <string>
#include <vector>

#include "sim/sim_config.hpp"

namespace dagon {

/// The §V-A testbed: 18 worker nodes (two racks), four 4-core executors
/// per node, 10 Gbps Ethernet, HDD storage, HDFS replication 3.
[[nodiscard]] SimConfig paper_testbed();

/// The §II-A case-study cluster: 7 machines, HDFS replication 1 — the
/// configuration that exposes the delay-scheduling pathology of
/// Figs. 3/4.
[[nodiscard]] SimConfig case_study_cluster();

/// The testbed with a representative failure model layered on: one
/// mid-run executor crash, 1% transient task failures, and mild random
/// cached-block loss. Base trace (scheduling, placement, noise draws) is
/// bit-identical to paper_testbed() until the first fault fires.
[[nodiscard]] SimConfig faulty_testbed();

/// The testbed under gray failures: heartbeat monitoring on, one rack
/// partitioned for 15 s mid-run, one executor degraded 3x for several
/// minutes, 1% transient task failures with blacklisting, and
/// speculation enabled so degraded attempts can be raced. Base trace is
/// bit-identical to paper_testbed() until the first gray event fires.
[[nodiscard]] SimConfig graybox_testbed();

/// The testbed as a heterogeneous, heavy-tailed cluster: a quarter of
/// the executors run 2x slow and a quarter 2x fast, 5% of attempts draw
/// a 6x heavy-tail duration, and the full tail-tolerance response is on
/// (hedged speculation with cancellation + critical-path escalation).
/// Base trace is NOT bit-identical to paper_testbed(): tiers reshape
/// every compute time from t=0.
[[nodiscard]] SimConfig tail_testbed();

/// A named (scheduler, cache, delay) combination.
struct SystemCombo {
  std::string label;
  SchedulerKind scheduler = SchedulerKind::Fifo;
  CachePolicyKind cache = CachePolicyKind::Lru;
  DelayKind delay = DelayKind::Native;
};

/// stock Spark: FIFO scheduling + LRU caching + native delay scheduling.
[[nodiscard]] SystemCombo stock_spark();
/// Graphene scheduling + LRU caching.
[[nodiscard]] SystemCombo graphene_lru();
/// Graphene scheduling + MRD caching (the paper's main competitor).
[[nodiscard]] SystemCombo graphene_mrd();
/// Dagon: priority-based assignment + LRP caching + sensitivity-aware
/// delay scheduling.
[[nodiscard]] SystemCombo dagon_full();

/// The Fig. 8 lineup, in paper order.
[[nodiscard]] std::vector<SystemCombo> figure8_systems();

/// The Fig. 11 lineup: {FIFO,Dagon} × {LRU,MRD,LRP} subsets the paper
/// compares (FIFO+LRU, FIFO+MRD, Dagon+MRD, Dagon+LRP).
[[nodiscard]] std::vector<SystemCombo> figure11_systems();

/// Applies a combo onto a base config.
[[nodiscard]] SimConfig apply_combo(SimConfig base, const SystemCombo& combo);

}  // namespace dagon
