#include "core/cache_trace.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "cache/block_manager.hpp"
#include "common/error.hpp"
#include "common/sorted_view.hpp"
#include "dag/profile.hpp"

namespace dagon {

std::string block_label(const JobDag& dag, const BlockId& b) {
  return dag.rdd(b.rdd).name + std::to_string(b.partition + 1);
}

namespace {

/// Running pv bookkeeping (Eq. 6) over exact per-stage workloads.
class PvTracker {
 public:
  explicit PvTracker(const JobDag& dag) : dag_(&dag) {
    remaining_.reserve(dag.num_stages());
    per_task_.reserve(dag.num_stages());
    for (const Stage& s : dag.stages()) {
      remaining_.push_back(s.workload());
      per_task_.push_back(s.num_tasks > 0 ? s.workload() / s.num_tasks
                                          : CpuWork{0});
    }
  }

  void on_launch(StageId s) {
    auto& rem = remaining_[static_cast<std::size_t>(s.value())];
    rem = std::max(
        CpuWork{0},
        rem - per_task_[static_cast<std::size_t>(s.value())]);
  }

  [[nodiscard]] std::vector<CpuWork> values() const {
    std::vector<CpuWork> pv(remaining_.size());
    for (const Stage& s : dag_->stages()) {
      CpuWork v = remaining_[static_cast<std::size_t>(s.id.value())];
      for (const StageId succ : dag_->successor_set(s.id)) {
        v += remaining_[static_cast<std::size_t>(succ.value())];
      }
      pv[static_cast<std::size_t>(s.id.value())] = v;
    }
    return pv;
  }

 private:
  const JobDag* dag_;
  std::vector<CpuWork> remaining_;
  std::vector<CpuWork> per_task_;
};

}  // namespace

CacheTraceResult run_cache_trace(const JobDag& dag,
                                 const std::vector<TraceLaunch>& schedule,
                                 CachePolicyKind policy_kind,
                                 std::int32_t capacity_blocks) {
  DAGON_CHECK(capacity_blocks > 0);
  // Uniform block size across the DAG (the paper's simplification).
  Bytes block_bytes{};
  for (const Rdd& r : dag.rdds()) {
    if (r.bytes_per_partition > Bytes{0}) {
      if (block_bytes == Bytes{0}) block_bytes = r.bytes_per_partition;
      DAGON_CHECK_MSG(r.bytes_per_partition == block_bytes,
                      "cache trace requires uniform block sizes");
    }
  }
  DAGON_CHECK(block_bytes > Bytes{0});

  const auto policy = make_cache_policy(policy_kind);
  ReferenceOracle oracle(dag);
  PvTracker pv(dag);
  BlockManager bm(ExecutorId(0), capacity_blocks * block_bytes, *policy);

  // Blocks that exist (readable / prefetchable): inputs + written output.
  std::set<BlockId> on_disk;
  for (const Rdd& r : dag.rdds()) {
    if (!r.is_input) continue;
    for (std::int32_t p = 0; p < r.num_partitions; ++p) {
      on_disk.insert(BlockId{r.id, p});
    }
    for (std::int32_t p = 0; p < r.initially_cached_partitions; ++p) {
      // Seeded before the job starts: strictly older than any access.
      const auto res =
          bm.insert(BlockId{r.id, p}, block_bytes, SimTime{-1}, oracle);
      DAGON_CHECK(res.admitted);
    }
  }

  struct Running {
    SimTime finish;
    StageId stage;
    std::int32_t task;
  };
  std::vector<Running> running;
  std::vector<std::int32_t> launched(dag.num_stages(), 0);
  std::vector<std::int32_t> done(dag.num_stages(), 0);

  CacheTraceResult result;
  SimTime now{};
  // Sub-step access clock: LRU recency within one time step follows the
  // order in which reads/writes actually happen.
  SimTime lamport{};

  const auto process_finishes = [&](SimTime until) {
    std::sort(running.begin(), running.end(),
              [](const Running& a, const Running& b) {
                if (a.finish != b.finish) return a.finish < b.finish;
                if (a.stage != b.stage) return a.stage < b.stage;
                return a.task < b.task;
              });
    std::vector<Running> still;
    for (const Running& r : running) {
      if (r.finish > until) {
        still.push_back(r);
        continue;
      }
      const Stage& s = dag.stage(r.stage);
      const Rdd& out = dag.rdd(s.output);
      const BlockId block{out.id, r.task};
      if (out.bytes_per_partition > Bytes{0}) {
        on_disk.insert(block);
        if (out.cacheable) {
          bm.insert(block, block_bytes, r.finish + lamport++, oracle);
        }
      }
      if (++done[static_cast<std::size_t>(r.stage.value())] ==
          s.num_tasks) {
        oracle.mark_stage_finished(r.stage);
      }
      // Sweep after every completion so dead blocks free space exactly
      // when the paper's walk-through expects.
      if (policy->proactive_eviction()) bm.evict_dead(oracle);
    }
    running = std::move(still);
  };

  const auto prefetch_loop = [&](SimTime at) {
    for (;;) {
      std::optional<BlockId> best;
      double best_priority = 0.0;
      const double floor = bm.min_retention(oracle);
      for (const BlockId& b : on_disk) {
        if (bm.contains(b)) continue;
        if (!dag.rdd(b.rdd).cacheable) continue;
        const auto priority = policy->prefetch_priority(b, oracle);
        if (!priority) continue;
        if (block_bytes > bm.free_bytes() && *priority <= floor) continue;
        if (!best || *priority > best_priority ||
            (*priority == best_priority && b < *best)) {
          best = b;
          best_priority = *priority;
        }
      }
      if (!best) return;
      const auto res = bm.insert(*best, block_bytes, at + lamport++, oracle,
                                 /*strict_admission=*/true);
      if (!res.admitted) return;
    }
  };

  for (const TraceLaunch& step : schedule) {
    DAGON_CHECK_MSG(step.time >= now, "trace steps must be time-ordered");
    now = step.time;
    process_finishes(now);
    oracle.set_current_stage(step.stage);
    prefetch_loop(now);

    TraceRow row;
    row.time = now;
    const Stage& s = dag.stage(step.stage);
    for (std::size_t i = 0; i < step.tasks.size(); ++i) {
      row.launched += (i ? "," : "") + s.name;
    }

    // Distinct blocks this step reads, in id order.
    std::set<BlockId> reads;
    for (const std::int32_t t : step.tasks) {
      for (const TaskInput& in : dag.task_inputs(step.stage, t)) {
        reads.insert(in.block);
      }
    }
    for (const BlockId& b : reads) {
      const bool hit = bm.contains(b);
      row.accesses.emplace_back(b, hit);
      ++result.total_accesses;
      if (hit) {
        ++result.total_hits;
        ++row.hits;
        bm.touch(b, now + lamport++);
      } else if (dag.rdd(b.rdd).cacheable) {
        bm.insert(b, block_bytes, now + lamport++, oracle);
      }
    }

    // Consume references and pv as the tasks start.
    for (const std::int32_t t : step.tasks) {
      oracle.on_task_launched(step.stage, t);
      pv.on_launch(step.stage);
      ++launched[static_cast<std::size_t>(step.stage.value())];
      running.push_back(
          Running{now + s.task_compute_time(t), step.stage, t});
    }
    oracle.set_priority_values(pv.values());

    row.cache_after.reserve(bm.num_blocks());
    for (const BlockManager::Entry& e : bm.entries()) {
      row.cache_after.push_back(e.id);
    }
    result.rows.push_back(std::move(row));
  }
  process_finishes(kTimeInfinity);
  return result;
}

std::vector<TraceLaunch> fifo_fig1_schedule(SimTime minute) {
  return {
      {0 * minute, StageId(0), {0, 1, 2}},
      {4 * minute, StageId(1), {0, 1}},
      {6 * minute, StageId(1), {2}},
      {8 * minute, StageId(2), {0, 1}},
      {12 * minute, StageId(3), {0}},
  };
}

std::vector<TraceLaunch> dag_aware_fig1_schedule(SimTime minute) {
  // Order within each instant follows Algorithm 1's decision sequence
  // (Table III: stage 2 first at t=0).
  return {
      {0 * minute, StageId(1), {0, 1}},
      {0 * minute, StageId(0), {0}},
      {2 * minute, StageId(1), {2}},
      {2 * minute, StageId(0), {1}},
      {4 * minute, StageId(2), {0, 1}},
      {4 * minute, StageId(0), {2}},
      {8 * minute, StageId(3), {0}},
  };
}

}  // namespace dagon
