// Resource-only schedule tracer: runs a stage-selection policy against a
// single pool of vCPUs with exact task durations, ignoring locality and
// caching. This isolates the paper's Algorithm 1 so that:
//   * Table III's step-by-step (w_i, pv_i, free CPUs) bookkeeping can be
//     printed verbatim, and
//   * Fig. 2's FIFO vs DAG-aware schedule diagrams can be regenerated.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "dag/job_dag.hpp"
#include "sched/stage_selector.hpp"

namespace dagon {

/// One Algorithm 1 assignment (Table III row).
struct AssignmentStep {
  int step = 0;
  SimTime time{};
  StageId chosen;
  /// Remaining workloads w_i and priority values pv_i AFTER the
  /// assignment, indexed by stage.
  std::vector<CpuWork> w_after;
  std::vector<CpuWork> pv_after;
  Cpus free_after{};
};

/// One placed task (for the Fig. 2 schedule diagram).
struct PlacedTask {
  StageId stage;
  std::int32_t index = -1;
  SimTime start{};
  SimTime end{};
  Cpus cpus{};
};

struct AssignmentTrace {
  std::vector<AssignmentStep> steps;
  std::vector<PlacedTask> placements;
  SimTime makespan{};
  /// Integral of (capacity − busy) over [0, makespan): the resource
  /// fragmentation the paper's Fig. 2 narration quantifies (vCPU·time).
  CpuWork idle_cpu_time{};
};

/// Runs `kind` (Fifo / Fair / CriticalPath / Graphene / Dagon) over the
/// DAG on one `capacity`-vCPU executor pool.
[[nodiscard]] AssignmentTrace trace_priority_assignment(const JobDag& dag,
                                                        Cpus capacity,
                                                        SchedulerKind kind);

}  // namespace dagon
