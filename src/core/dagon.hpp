// Umbrella header: the Dagon library's public API surface.
//
// Layering (each depends only on layers above it):
//   common    — ids, time, RNG, stats, tables
//   dag       — RDDs, stages, job DAGs, profiles, analyses
//   cluster   — topology, HDFS placement, locality, cost model
//   cache     — reference oracle, policies (LRU/LRC/MRD/LRP), managers
//   sched     — job state, delay scheduling, stage selectors, speculation
//   sim       — event queue, metrics, the discrete-event driver
//   trace     — Chrome-tracing / timeline exports of run metrics
//   workloads — Fig. 1 example + SparkBench-like generators
//   core      — AppProfiler, presets, Runner facade, trace engines
//   exp       — parallel sweep engine + thread pool (include
//               "exp/sweep.hpp" and link dagon_exp; not part of this
//               umbrella so core-only consumers need no thread deps)
#pragma once

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/stats.hpp"
#include "common/strong_id.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

#include "dag/dag_analysis.hpp"
#include "dag/job_dag.hpp"
#include "dag/profile.hpp"

#include "cluster/cost_model.hpp"
#include "cluster/hdfs.hpp"
#include "cluster/locality.hpp"
#include "cluster/topology.hpp"

#include "cache/block_manager.hpp"
#include "cache/block_manager_master.hpp"
#include "cache/cache_policy.hpp"
#include "cache/ref_oracle.hpp"

#include "sched/delay_scheduling.hpp"
#include "sched/estimator.hpp"
#include "sched/job_state.hpp"
#include "sched/speculation.hpp"
#include "sched/stage_selector.hpp"
#include "sched/task_locality.hpp"

#include "sim/driver.hpp"
#include "sim/metrics.hpp"
#include "sim/sim_config.hpp"

#include "trace/chrome_trace.hpp"
#include "trace/timeline.hpp"

#include "workloads/batch.hpp"
#include "workloads/example_dag.hpp"
#include "workloads/graph_workloads.hpp"
#include "workloads/ml_workloads.hpp"
#include "workloads/random_dag.hpp"
#include "workloads/serving.hpp"
#include "workloads/suite.hpp"

#include "core/app_profiler.hpp"
#include "core/assignment_trace.hpp"
#include "core/cache_trace.hpp"
#include "core/presets.hpp"
#include "core/runner.hpp"
