// AppProfiler (§IV): learns the application DAG and estimates per-stage
// task duration and resource demand.
//
// The paper's implementation profiles a pilot run on a small dataset and
// refines estimates from cgroup statistics during execution. Here the
// pilot run is simulated directly: the profiler starts from the DAG's
// ground truth and perturbs durations with configurable multiplicative
// noise — noise = 0 models a converged profile, larger values model a
// cold or badly-extrapolated one (swept by the profiler-noise ablation).
#pragma once

#include "common/rng.hpp"
#include "dag/profile.hpp"

namespace dagon {

struct ProfilerConfig {
  /// Sigma of the multiplicative duration error (normal around 1.0).
  double noise = 0.0;
  /// Worst-case clamp of the error factor.
  double min_factor = 0.25;
  double max_factor = 4.0;
  std::uint64_t seed = 7;
};

class AppProfiler {
 public:
  explicit AppProfiler(const ProfilerConfig& config = {});

  /// Profiles one application DAG (the paper's pilot-run step).
  [[nodiscard]] JobProfile profile(const JobDag& dag) const;

  [[nodiscard]] const ProfilerConfig& config() const { return config_; }

 private:
  ProfilerConfig config_;
};

}  // namespace dagon
