// Synchronous cache-trace engine: replays an explicit task-launch
// schedule against one executor's BlockManager and reports per-step
// accesses, hits, and cache contents — the machinery behind the Table I
// reproduction.
//
// Unlike the full simulator, stage completions, proactive sweeps and
// prefetches are applied instantaneously at step boundaries, matching
// the paper's idealized walk-through.
#pragma once

#include <string>
#include <vector>

#include "cache/cache_policy.hpp"
#include "dag/job_dag.hpp"

namespace dagon {

/// One scheduling step: tasks of one stage launched at `time`.
struct TraceLaunch {
  SimTime time{};
  StageId stage;
  std::vector<std::int32_t> tasks;
};

struct TraceRow {
  SimTime time{};
  /// "S2,S2" style launch description.
  std::string launched;
  /// Distinct blocks read this step, with hit flags.
  std::vector<std::pair<BlockId, bool>> accesses;
  /// Cache contents after the step (sorted).
  std::vector<BlockId> cache_after;
  int hits = 0;
};

struct CacheTraceResult {
  std::vector<TraceRow> rows;
  int total_hits = 0;
  int total_accesses = 0;
};

/// Replays `schedule` (launch steps in nondecreasing time order) under
/// `policy` with a cache of `capacity_blocks` uniform blocks.
[[nodiscard]] CacheTraceResult run_cache_trace(
    const JobDag& dag, const std::vector<TraceLaunch>& schedule,
    CachePolicyKind policy, std::int32_t capacity_blocks);

/// Renders a block id as "B2"-style (RDD name + 1-based partition).
[[nodiscard]] std::string block_label(const JobDag& dag, const BlockId& b);

/// The FIFO launch schedule of the paper's Fig. 2(a) for the Fig. 1 DAG
/// (times in minutes): S1×3 @0, S2×2 @4, S2 @6, S3×2 @8, S4 @12.
[[nodiscard]] std::vector<TraceLaunch> fifo_fig1_schedule(SimTime minute);

/// The DAG-aware launch schedule of Fig. 2(b): S1+S2×2 @0, S1+S2 @2,
/// S1+S3×2 @4, S4 @8.
[[nodiscard]] std::vector<TraceLaunch> dag_aware_fig1_schedule(SimTime minute);

}  // namespace dagon
