#include "core/presets.hpp"

namespace dagon {

SimConfig paper_testbed() {
  SimConfig config;
  config.topology.racks = 2;
  config.topology.nodes_per_rack = 9;   // 18 worker nodes
  config.topology.executors_per_node = 4;
  config.topology.cores_per_executor = Cpus{4};
  config.topology.cache_bytes_per_executor = kGiB;
  config.hdfs.replication = 3;
  // ~40 ns/B deserialization: reading a remote 64 MiB cached partition
  // costs ~2.7 s vs ~8 ms in-process — the 15x gap of Fig. 3.
  config.cost.serde_sec_per_byte = 40e-9;
  config.tick_interval = 100 * kMsec;
  // ~10% task-duration jitter, as on real hardware. Without it task
  // waves synchronize perfectly and delay-scheduling timers never see
  // the straggling launches that keep the locality ladder pinned.
  config.duration_noise = 0.1;
  config.seed = 42;
  return config;
}

SimConfig case_study_cluster() {
  SimConfig config = paper_testbed();
  config.topology.racks = 1;
  config.topology.nodes_per_rack = 7;
  config.topology.executors_per_node = 4;
  config.topology.cores_per_executor = Cpus{4};
  config.topology.cache_bytes_per_executor = 8 * kGiB;
  // The case study sets the HDFS replica count to one; block placement
  // is mildly skewed, which is what starves some executors of
  // node-local work (Fig. 4).
  config.hdfs.replication = 1;
  config.hdfs.skew = 0.25;
  config.hdfs.hot_nodes = 3;
  return config;
}

SimConfig faulty_testbed() {
  SimConfig config = paper_testbed();
  config.faults.enabled = true;
  // One random-target crash two minutes in (most workloads are mid-DAG
  // by then, so cached intermediates are actually at risk).
  config.faults.crashes.push_back(ExecutorCrashSpec{120 * kSec, -1});
  config.faults.task_fail_prob = 0.01;
  config.faults.block_loss_per_gb_hour = 0.5;
  config.faults.block_loss_interval = 5 * kSec;
  return config;
}

SimConfig graybox_testbed() {
  SimConfig config = paper_testbed();
  config.faults.enabled = true;
  config.faults.heartbeats = true;
  // A random rack loses driver connectivity for 15 s one minute in:
  // long enough to push every silent executor past suspect_phi, short
  // enough that they all resume before dead_phi (false positives only).
  config.faults.partitions.push_back(
      PartitionSpec{60 * kSec, 75 * kSec, -1});
  // One random executor runs 3x slow for most of the run — the
  // straggler that speculation and the detector should both flag.
  config.faults.degrades.push_back(
      DegradeSpec{30 * kSec, 300 * kSec, -1, 3.0});
  config.faults.task_fail_prob = 0.01;
  config.faults.blacklist_threshold = 3;
  config.faults.blacklist_probation = 60 * kSec;
  config.speculation.enabled = true;
  return config;
}

SimConfig tail_testbed() {
  SimConfig config = paper_testbed();
  config.tail.tiers.push_back(SimConfig::ExecTier{"slow", 0.25, 2.0});
  config.tail.tiers.push_back(SimConfig::ExecTier{"fast", 0.25, 0.5});
  config.tail.escalate = true;
  config.faults.enabled = true;
  config.faults.heavy_tail_prob = 0.05;
  config.faults.heavy_tail_mult = 6.0;
  config.speculation.enabled = true;
  config.speculation.hedge = true;
  return config;
}

SystemCombo stock_spark() {
  return {"FIFO+LRU", SchedulerKind::Fifo, CachePolicyKind::Lru,
          DelayKind::Native};
}

SystemCombo graphene_lru() {
  return {"Graphene+LRU", SchedulerKind::Graphene, CachePolicyKind::Lru,
          DelayKind::Native};
}

SystemCombo graphene_mrd() {
  return {"Graphene+MRD", SchedulerKind::Graphene, CachePolicyKind::Mrd,
          DelayKind::Native};
}

SystemCombo dagon_full() {
  return {"Dagon", SchedulerKind::Dagon, CachePolicyKind::Lrp,
          DelayKind::SensitivityAware};
}

std::vector<SystemCombo> figure8_systems() {
  return {stock_spark(), graphene_lru(), graphene_mrd(), dagon_full()};
}

std::vector<SystemCombo> figure11_systems() {
  return {{"FIFO+LRU", SchedulerKind::Fifo, CachePolicyKind::Lru,
           DelayKind::Native},
          {"FIFO+MRD", SchedulerKind::Fifo, CachePolicyKind::Mrd,
           DelayKind::Native},
          {"Dagon+MRD", SchedulerKind::Dagon, CachePolicyKind::Mrd,
           DelayKind::SensitivityAware},
          {"Dagon+LRP", SchedulerKind::Dagon, CachePolicyKind::Lrp,
           DelayKind::SensitivityAware}};
}

SimConfig apply_combo(SimConfig base, const SystemCombo& combo) {
  base.scheduler = combo.scheduler;
  base.cache = combo.cache;
  base.delay = combo.delay;
  return base;
}

}  // namespace dagon
