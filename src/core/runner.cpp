#include "core/runner.hpp"

namespace dagon {

RunResult run_workload(const Workload& workload, const SimConfig& config,
                       const AppProfiler& profiler) {
  RunResult result;
  result.profile = profiler.profile(workload.dag);
  SimDriver driver(workload.dag, result.profile, config);
  result.metrics = driver.run();
  return result;
}

RunResult run_workload(const Workload& workload, const SimConfig& config) {
  return run_workload(workload, config, AppProfiler{});
}

RunResult run_system(const Workload& workload, const SystemCombo& combo,
                     const SimConfig& base, const AppProfiler& profiler) {
  return run_workload(workload, apply_combo(base, combo), profiler);
}

RunResult run_system(const Workload& workload, const SystemCombo& combo,
                     const SimConfig& base) {
  return run_system(workload, combo, base, AppProfiler{});
}

}  // namespace dagon
