#include "core/app_profiler.hpp"

#include <algorithm>

namespace dagon {

AppProfiler::AppProfiler(const ProfilerConfig& config) : config_(config) {
  if (config_.noise < 0.0 || config_.min_factor <= 0.0 ||
      config_.max_factor < config_.min_factor) {
    throw ConfigError("invalid ProfilerConfig");
  }
}

JobProfile AppProfiler::profile(const JobDag& dag) const {
  JobProfile truth = exact_profile(dag);
  if (config_.noise <= 0.0) return truth;
  Rng rng(config_.seed);
  for (StageEstimate& est : truth.stages) {
    const double factor =
        std::clamp(rng.normal(1.0, config_.noise), config_.min_factor,
                   config_.max_factor);
    est.task_duration =
        std::max(kMsec, scale_time(est.task_duration, factor));
  }
  return truth;
}

}  // namespace dagon
