// Mutable runtime state of one job: per-stage task queues, per-executor
// free cores, delay-scheduling timers, and the priority-value (pv)
// bookkeeping of the paper's Algorithm 1 / Table III.
//
// The simulation driver owns a JobState and mutates it through the
// launch/finish methods; schedulers and delay policies read it.
#pragma once

#include <array>
#include <bit>
#include <optional>
#include <vector>

#include "cluster/locality.hpp"
#include "cluster/topology.hpp"
#include "common/fsm.hpp"
#include "common/sim_time.hpp"
#include "dag/job_dag.hpp"
#include "dag/profile.hpp"
#include "sched/pending_list.hpp"

namespace dagon {

struct TaskRuntime {
  StageId stage;
  std::int32_t index = -1;  // partition index within the stage
  TaskStatus status = TaskStatus::Pending;
  ExecutorId executor = ExecutorId::invalid();
  Locality locality = Locality::Any;
  SimTime launch_time{-1};
  SimTime finish_time{-1};
  /// Split of the actual duration (filled at launch).
  SimTime fetch_time{};
  SimTime compute_time{};
  /// Set when this is a speculative copy of another attempt.
  bool speculative = false;
};

struct StageRuntime {
  StageId id;

  bool ready = false;     // all parents finished
  bool finished = false;
  /// Serving mode: the stage's job has not been submitted yet. A gated
  /// stage is never promoted to ready (even with zero parents) until the
  /// driver ungates it on JobSubmit.
  bool gated = false;
  /// Stage has at least one narrow input (set once at construction).
  /// Without one, task_locality_on answers NoPref for every task, which
  /// lets the scheduler skip per-task locality scans entirely.
  bool has_narrow = false;

  PendingList pending;  // task indices not yet launched, in queue order
  std::int32_t running = 0;
  std::int32_t finished_tasks = 0;
  std::int32_t num_tasks = 0;

  /// Estimated unprocessed workload (the paper's w_i): decremented by
  /// d_i · est_duration as each task is *assigned* (Table III).
  CpuWork remaining_work{};

  SimTime ready_time{-1};
  SimTime first_launch{-1};
  SimTime finish_time{-1};

  // --- native delay-scheduling state (per TaskSet, as in Spark) ---
  /// Index into the taskset's valid locality levels.
  std::size_t locality_index = 0;
  /// Start of the wait at the current level.
  SimTime locality_timer{};

  // --- observed per-locality durations for Algorithm 2's estimates ---
  std::array<double, 5> locality_duration_sum{};   // by Locality value
  std::array<std::int64_t, 5> locality_count{};

  /// Durations of finished tasks (for speculation medians and metrics).
  std::vector<SimTime> finished_durations;

  /// Lifecycle state per task index (not per attempt: a speculative twin
  /// shares its index's state). Every write flows through
  /// fsm::transition() in job_state.cpp.
  std::vector<TaskStatus> task_status;

  [[nodiscard]] bool has_pending() const { return !pending.empty(); }

  [[nodiscard]] TaskStatus status_of(std::int32_t index) const {
    return task_status[static_cast<std::size_t>(index)];
  }
};

struct ExecutorRuntime {
  ExecutorId id;
  /// Healthy / Suspect / Dead lifecycle (fsm::StateMachine<
  /// ExecutorHealth>). Dead once the fault plan crashed this executor —
  /// it holds no cores and is skipped by every placement decision.
  /// Suspect while the failure detector sees missed heartbeats: the
  /// executor keeps its cores and running attempts — it may well recover
  /// — but receives no new launches and grants no locality preference.
  /// Every write flows through fsm::transition() in the driver.
  ExecutorHealth health = ExecutorHealth::Healthy;
  /// End of blacklist probation; 0 when not blacklisted. A blacklisted
  /// executor receives no new launches until the probation expires.
  SimTime blacklisted_until{};
  /// Attempt failures accumulated toward the blacklist threshold; reset
  /// when probation expires.
  std::int32_t blacklist_failures = 0;
  /// Cores currently held by other tenants (multi-tenant reservation).
  Cpus reserved_cores{};
  /// Reservation demand not yet satisfiable (claimed as tasks finish).
  Cpus pending_reservation{};
  /// Block currently being prefetched, if any (one IO channel).
  std::optional<BlockId> prefetching;
  std::int64_t tasks_launched = 0;
  /// Speed-tier index into SimConfig::TailConfig::tiers (-1 = normal
  /// tier) and the tier's compute/transfer multiplier (< 1 = faster
  /// than baseline). Assigned once at driver construction; 1.0 when
  /// heterogeneity is off.
  std::int32_t speed_tier = -1;
  double speed_mult = 1.0;

  [[nodiscard]] bool alive() const { return health != ExecutorHealth::Dead; }
  [[nodiscard]] bool suspect() const {
    return health == ExecutorHealth::Suspect;
  }

  /// May the scheduler place a *new* attempt here at `now`? Dead,
  /// suspect and blacklisted executors are all excluded; already-running
  /// attempts are unaffected.
  [[nodiscard]] bool schedulable(SimTime now) const {
    return health == ExecutorHealth::Healthy && blacklisted_until <= now;
  }

  [[nodiscard]] Cpus free_cores() const { return free_cores_; }

 private:
  friend class JobState;
  /// Writable only through JobState (set_free_cores / add_free_cores /
  /// mark_launched / mark_finished), which keeps the free-slot index in
  /// lockstep with the value.
  Cpus free_cores_{};
};

/// Wait times per locality level, Spark's spark.locality.wait.* family.
struct LocalityWaits {
  SimTime process = 3 * kSec;
  SimTime node = 3 * kSec;
  SimTime rack = 3 * kSec;

  [[nodiscard]] static LocalityWaits uniform(SimTime w) {
    return LocalityWaits{w, w, w};
  }

  /// Wait before escalating *past* the given level.
  [[nodiscard]] SimTime wait_for(Locality l) const {
    switch (l) {
      case Locality::Process: return process;
      case Locality::Node: return node;
      case Locality::Rack: return rack;
      case Locality::NoPref:
      case Locality::Any: return SimTime{0};
    }
    return SimTime{0};
  }
};

class JobState {
 public:
  JobState(const JobDag& dag, const Topology& topo, const JobProfile& profile);

  // -- structure ---------------------------------------------------------

  [[nodiscard]] const JobDag& dag() const { return *dag_; }
  [[nodiscard]] const JobProfile& profile() const { return *profile_; }
  [[nodiscard]] const Topology& topology() const { return *topo_; }

  [[nodiscard]] StageRuntime& stage(StageId id);
  [[nodiscard]] const StageRuntime& stage(StageId id) const;
  [[nodiscard]] ExecutorRuntime& executor(ExecutorId id);
  [[nodiscard]] const ExecutorRuntime& executor(ExecutorId id) const;

  [[nodiscard]] const std::vector<StageRuntime>& stages() const {
    return stages_;
  }
  [[nodiscard]] std::vector<ExecutorRuntime>& executors() {
    return executors_;
  }
  [[nodiscard]] const std::vector<ExecutorRuntime>& executors() const {
    return executors_;
  }

  /// Ready, unfinished stages that still have pending tasks.
  [[nodiscard]] std::vector<StageId> schedulable_stages() const;

  /// True when every stage has finished.
  [[nodiscard]] bool all_finished() const;

  /// Any executor with at least one free core? O(1) off the free-slot
  /// index (health and blacklists do not matter here — this gates the
  /// scheduler loop, not placement).
  [[nodiscard]] bool any_free_cores() const { return num_free_ > 0; }

  // -- free-slot executor index -------------------------------------------
  //
  // A bitmap over executor ids with bit e set iff free_cores() > 0,
  // plus the total launch count that defines the scheduler's rotation.
  // Every free-core mutation flows through set_free_cores /
  // add_free_cores (free_cores_ is private to enforce it), so the index
  // is exact at all times and a scheduling decision costs a word-scan
  // over n/64 words plus the executors actually visited, instead of a
  // full O(executors) walk.

  /// Sets `exec`'s free cores to `cores`, updating the index.
  void set_free_cores(ExecutorId exec, Cpus cores);

  /// Adjusts `exec`'s free cores by `delta`, updating the index.
  void add_free_cores(ExecutorId exec, Cpus delta);

  /// Visits every executor with free_cores() > 0 in the exact order the
  /// historical full scan used — executor ids rotated left by
  /// (Σ tasks_launched) mod n — and stops early when `fn` returns true.
  /// `fn` must not change any executor's free-core state mid-scan.
  /// Returns true when `fn` stopped the scan.
  template <typename Fn>
  bool for_each_free_executor(Fn&& fn) const {
    const std::size_t n = executors_.size();
    if (n == 0 || num_free_ == 0) return false;
    const auto shift = static_cast<std::size_t>(
        total_launched_ % static_cast<std::int64_t>(n));
    return scan_free(shift, n, fn) || scan_free(0, shift, fn);
  }

  // -- the paper's pv_i (Eq. 6) -------------------------------------------

  /// pv_i = remaining_work_i + Σ_{j ∈ SuccessorSet_i} remaining_work_j.
  [[nodiscard]] CpuWork priority_value(StageId id) const;

  /// pv for every stage (pushed into the ReferenceOracle for LRP).
  [[nodiscard]] std::vector<CpuWork> priority_values() const;

  /// Monotonic counter bumped whenever any stage's remaining_work — and
  /// hence any pv_i — may have changed. Lets the driver skip re-pushing
  /// identical priority values into the oracle on events that launched
  /// or finished nothing.
  [[nodiscard]] std::uint64_t pv_epoch() const { return pv_epoch_; }

  // -- state transitions (called by the simulation driver) ----------------

  /// Removes task `index` from stage `s`'s pending queue and charges the
  /// executor's cores; updates w_i / Table III bookkeeping. The first
  /// launch of an index transitions it Pending → Running; a speculative
  /// twin leaves the (already Running) index state untouched.
  void mark_launched(StageId s, std::int32_t index, ExecutorId exec,
                     SimTime now);

  /// Returns cores and records duration stats; transitions task `index`
  /// Running → Finished; marks the stage finished when its last task
  /// completes (returns true in that case).
  bool mark_finished(StageId s, std::int32_t index, ExecutorId exec,
                     Locality locality, SimTime launch_time, SimTime now);

  /// Transitions task `index` Running → Failed. Called by the driver
  /// when the last live attempt of an unproduced index fails; the retry
  /// path (readd_pending) later moves it Failed → Pending.
  void mark_failed(StageId s, std::int32_t index);

  /// Promotes stages whose parents have all finished; returns the newly
  /// ready stage ids. Gated stages are never promoted.
  std::vector<StageId> refresh_ready(SimTime now);

  /// Serving mode: (un)gates a stage. Gating demotes an already-ready
  /// stage (only legal before any of its tasks launched); ungating does
  /// not promote — call refresh_ready afterwards so promotion runs the
  /// usual parent check and timestamps ready_time with the submit time.
  void set_stage_gated(StageId s, bool gated);

  /// Re-queues a *failed* task for retry: transitions it
  /// Failed → Pending, re-inserts it into the pending queue and restores
  /// its share of remaining_work.
  void readd_pending(StageId s, std::int32_t index);

  /// Lineage recovery: re-opens a *finished* task of a (possibly
  /// finished) stage so it can be recomputed after its output block was
  /// lost. Un-finishes the stage, pushes `index` back onto pending and
  /// restores its share of remaining_work.
  void reopen_task(StageId s, std::int32_t index);

  /// Re-checks readiness after lineage recovery re-opened stages: any
  /// ready, unfinished stage with an unfinished parent loses its ready
  /// flag (refresh_ready() re-promotes it once the parent completes
  /// again). Returns the demoted stage ids.
  std::vector<StageId> demote_unready();

  /// Observed mean duration of finished tasks of `s` at `l`; nullopt if
  /// none finished at that level yet.
  [[nodiscard]] std::optional<SimTime> observed_duration(StageId s,
                                                         Locality l) const;

  /// Mean duration over all finished tasks of `s` (any locality).
  [[nodiscard]] std::optional<SimTime> observed_duration(StageId s) const;

  /// Release-build sink for illegal task-status transitions (folded into
  /// metrics_fingerprint by the driver). Null = throw-only enforcement.
  void set_fsm_violations(fsm::Violations* sink) { fsm_violations_ = sink; }

 private:
  /// Routes every task_status write through the transition table.
  void set_status(StageRuntime& rt, std::int32_t index, TaskStatus to);

  /// Visits free executors with ids in [lo, hi) in ascending order;
  /// true when `fn` stopped the scan.
  template <typename Fn>
  bool scan_free(std::size_t lo, std::size_t hi, Fn&& fn) const {
    if (lo >= hi) return false;
    std::size_t w = lo >> 6;
    const std::size_t wlast = (hi - 1) >> 6;
    std::uint64_t word = free_bits_[w] & (~std::uint64_t{0} << (lo & 63));
    while (true) {
      if (w == wlast) {
        const std::size_t tail = hi & 63;
        if (tail != 0) word &= (std::uint64_t{1} << tail) - 1;
      }
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        if (fn(ExecutorId(static_cast<std::int32_t>((w << 6) | bit)))) {
          return true;
        }
      }
      if (w == wlast) return false;
      word = free_bits_[++w];
    }
  }

  const JobDag* dag_;
  const Topology* topo_;
  const JobProfile* profile_;
  std::vector<StageRuntime> stages_;
  std::vector<ExecutorRuntime> executors_;
  /// Bit e set iff executors_[e].free_cores_ > 0.
  std::vector<std::uint64_t> free_bits_;
  /// Popcount of free_bits_ — executors with a free core right now.
  std::int64_t num_free_ = 0;
  /// Σ tasks_launched over all executors (the rotation phase).
  std::int64_t total_launched_ = 0;
  std::uint64_t pv_epoch_ = 1;
  fsm::Violations* fsm_violations_ = nullptr;
};

}  // namespace dagon
