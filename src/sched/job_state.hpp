// Mutable runtime state of one job: per-stage task queues, per-executor
// free cores, delay-scheduling timers, and the priority-value (pv)
// bookkeeping of the paper's Algorithm 1 / Table III.
//
// The simulation driver owns a JobState and mutates it through the
// launch/finish methods; schedulers and delay policies read it.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "cluster/locality.hpp"
#include "cluster/topology.hpp"
#include "common/fsm.hpp"
#include "common/sim_time.hpp"
#include "dag/job_dag.hpp"
#include "dag/profile.hpp"

namespace dagon {

struct TaskRuntime {
  StageId stage;
  std::int32_t index = -1;  // partition index within the stage
  TaskStatus status = TaskStatus::Pending;
  ExecutorId executor = ExecutorId::invalid();
  Locality locality = Locality::Any;
  SimTime launch_time = -1;
  SimTime finish_time = -1;
  /// Split of the actual duration (filled at launch).
  SimTime fetch_time = 0;
  SimTime compute_time = 0;
  /// Set when this is a speculative copy of another attempt.
  bool speculative = false;
};

struct StageRuntime {
  StageId id;

  bool ready = false;     // all parents finished
  bool finished = false;

  std::vector<std::int32_t> pending;  // task indices not yet launched
  std::int32_t running = 0;
  std::int32_t finished_tasks = 0;
  std::int32_t num_tasks = 0;

  /// Estimated unprocessed workload (the paper's w_i): decremented by
  /// d_i · est_duration as each task is *assigned* (Table III).
  CpuWork remaining_work = 0;

  SimTime ready_time = -1;
  SimTime first_launch = -1;
  SimTime finish_time = -1;

  // --- native delay-scheduling state (per TaskSet, as in Spark) ---
  /// Index into the taskset's valid locality levels.
  std::size_t locality_index = 0;
  /// Start of the wait at the current level.
  SimTime locality_timer = 0;

  // --- observed per-locality durations for Algorithm 2's estimates ---
  std::array<double, 5> locality_duration_sum{};   // by Locality value
  std::array<std::int64_t, 5> locality_count{};

  /// Durations of finished tasks (for speculation medians and metrics).
  std::vector<SimTime> finished_durations;

  /// Lifecycle state per task index (not per attempt: a speculative twin
  /// shares its index's state). Every write flows through
  /// fsm::transition() in job_state.cpp.
  std::vector<TaskStatus> task_status;

  [[nodiscard]] bool has_pending() const { return !pending.empty(); }

  [[nodiscard]] TaskStatus status_of(std::int32_t index) const {
    return task_status[static_cast<std::size_t>(index)];
  }
};

struct ExecutorRuntime {
  ExecutorId id;
  /// Healthy / Suspect / Dead lifecycle (fsm::StateMachine<
  /// ExecutorHealth>). Dead once the fault plan crashed this executor —
  /// it holds no cores and is skipped by every placement decision.
  /// Suspect while the failure detector sees missed heartbeats: the
  /// executor keeps its cores and running attempts — it may well recover
  /// — but receives no new launches and grants no locality preference.
  /// Every write flows through fsm::transition() in the driver.
  ExecutorHealth health = ExecutorHealth::Healthy;
  /// End of blacklist probation; 0 when not blacklisted. A blacklisted
  /// executor receives no new launches until the probation expires.
  SimTime blacklisted_until = 0;
  /// Attempt failures accumulated toward the blacklist threshold; reset
  /// when probation expires.
  std::int32_t blacklist_failures = 0;
  Cpus free_cores = 0;
  /// Cores currently held by other tenants (multi-tenant reservation).
  Cpus reserved_cores = 0;
  /// Reservation demand not yet satisfiable (claimed as tasks finish).
  Cpus pending_reservation = 0;
  /// Block currently being prefetched, if any (one IO channel).
  std::optional<BlockId> prefetching;
  std::int64_t tasks_launched = 0;

  [[nodiscard]] bool alive() const { return health != ExecutorHealth::Dead; }
  [[nodiscard]] bool suspect() const {
    return health == ExecutorHealth::Suspect;
  }

  /// May the scheduler place a *new* attempt here at `now`? Dead,
  /// suspect and blacklisted executors are all excluded; already-running
  /// attempts are unaffected.
  [[nodiscard]] bool schedulable(SimTime now) const {
    return health == ExecutorHealth::Healthy && blacklisted_until <= now;
  }
};

/// Wait times per locality level, Spark's spark.locality.wait.* family.
struct LocalityWaits {
  SimTime process = 3 * kSec;
  SimTime node = 3 * kSec;
  SimTime rack = 3 * kSec;

  [[nodiscard]] static LocalityWaits uniform(SimTime w) {
    return LocalityWaits{w, w, w};
  }

  /// Wait before escalating *past* the given level.
  [[nodiscard]] SimTime wait_for(Locality l) const {
    switch (l) {
      case Locality::Process: return process;
      case Locality::Node: return node;
      case Locality::Rack: return rack;
      case Locality::NoPref:
      case Locality::Any: return 0;
    }
    return 0;
  }
};

class JobState {
 public:
  JobState(const JobDag& dag, const Topology& topo, const JobProfile& profile);

  // -- structure ---------------------------------------------------------

  [[nodiscard]] const JobDag& dag() const { return *dag_; }
  [[nodiscard]] const JobProfile& profile() const { return *profile_; }
  [[nodiscard]] const Topology& topology() const { return *topo_; }

  [[nodiscard]] StageRuntime& stage(StageId id);
  [[nodiscard]] const StageRuntime& stage(StageId id) const;
  [[nodiscard]] ExecutorRuntime& executor(ExecutorId id);
  [[nodiscard]] const ExecutorRuntime& executor(ExecutorId id) const;

  [[nodiscard]] const std::vector<StageRuntime>& stages() const {
    return stages_;
  }
  [[nodiscard]] std::vector<ExecutorRuntime>& executors() {
    return executors_;
  }
  [[nodiscard]] const std::vector<ExecutorRuntime>& executors() const {
    return executors_;
  }

  /// Ready, unfinished stages that still have pending tasks.
  [[nodiscard]] std::vector<StageId> schedulable_stages() const;

  /// True when every stage has finished.
  [[nodiscard]] bool all_finished() const;

  /// Any executor with at least one free core?
  [[nodiscard]] bool any_free_cores() const;

  // -- the paper's pv_i (Eq. 6) -------------------------------------------

  /// pv_i = remaining_work_i + Σ_{j ∈ SuccessorSet_i} remaining_work_j.
  [[nodiscard]] CpuWork priority_value(StageId id) const;

  /// pv for every stage (pushed into the ReferenceOracle for LRP).
  [[nodiscard]] std::vector<CpuWork> priority_values() const;

  /// Monotonic counter bumped whenever any stage's remaining_work — and
  /// hence any pv_i — may have changed. Lets the driver skip re-pushing
  /// identical priority values into the oracle on events that launched
  /// or finished nothing.
  [[nodiscard]] std::uint64_t pv_epoch() const { return pv_epoch_; }

  // -- state transitions (called by the simulation driver) ----------------

  /// Removes task `index` from stage `s`'s pending queue and charges the
  /// executor's cores; updates w_i / Table III bookkeeping. The first
  /// launch of an index transitions it Pending → Running; a speculative
  /// twin leaves the (already Running) index state untouched.
  void mark_launched(StageId s, std::int32_t index, ExecutorId exec,
                     SimTime now);

  /// Returns cores and records duration stats; transitions task `index`
  /// Running → Finished; marks the stage finished when its last task
  /// completes (returns true in that case).
  bool mark_finished(StageId s, std::int32_t index, ExecutorId exec,
                     Locality locality, SimTime launch_time, SimTime now);

  /// Transitions task `index` Running → Failed. Called by the driver
  /// when the last live attempt of an unproduced index fails; the retry
  /// path (readd_pending) later moves it Failed → Pending.
  void mark_failed(StageId s, std::int32_t index);

  /// Promotes stages whose parents have all finished; returns the newly
  /// ready stage ids.
  std::vector<StageId> refresh_ready(SimTime now);

  /// Re-queues a *failed* task for retry: transitions it
  /// Failed → Pending, re-inserts it into the pending queue and restores
  /// its share of remaining_work.
  void readd_pending(StageId s, std::int32_t index);

  /// Lineage recovery: re-opens a *finished* task of a (possibly
  /// finished) stage so it can be recomputed after its output block was
  /// lost. Un-finishes the stage, pushes `index` back onto pending and
  /// restores its share of remaining_work.
  void reopen_task(StageId s, std::int32_t index);

  /// Re-checks readiness after lineage recovery re-opened stages: any
  /// ready, unfinished stage with an unfinished parent loses its ready
  /// flag (refresh_ready() re-promotes it once the parent completes
  /// again). Returns the demoted stage ids.
  std::vector<StageId> demote_unready();

  /// Observed mean duration of finished tasks of `s` at `l`; nullopt if
  /// none finished at that level yet.
  [[nodiscard]] std::optional<SimTime> observed_duration(StageId s,
                                                         Locality l) const;

  /// Mean duration over all finished tasks of `s` (any locality).
  [[nodiscard]] std::optional<SimTime> observed_duration(StageId s) const;

  /// Release-build sink for illegal task-status transitions (folded into
  /// metrics_fingerprint by the driver). Null = throw-only enforcement.
  void set_fsm_violations(fsm::Violations* sink) { fsm_violations_ = sink; }

 private:
  /// Routes every task_status write through the transition table.
  void set_status(StageRuntime& rt, std::int32_t index, TaskStatus to);

  const JobDag* dag_;
  const Topology* topo_;
  const JobProfile* profile_;
  std::vector<StageRuntime> stages_;
  std::vector<ExecutorRuntime> executors_;
  std::uint64_t pv_epoch_ = 1;
  fsm::Violations* fsm_violations_ = nullptr;
};

}  // namespace dagon
