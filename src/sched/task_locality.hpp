// Task locality classification.
//
// Mirrors Spark's preferred-location logic: a task's preferences come
// from its narrow-dependency inputs — the executors holding those blocks
// in memory (process-local) and the nodes holding them on disk
// (node-local). Pure-shuffle tasks have no preference (NO_PREF) and can
// launch anywhere without waiting.
#pragma once

#include <vector>

#include "cache/block_manager_master.hpp"
#include "cluster/locality.hpp"
#include "sched/job_state.hpp"

namespace dagon {

struct TaskPreferences {
  /// Executors holding a narrow-dep input block in memory.
  std::vector<ExecutorId> executors;
  /// Nodes holding a narrow-dep input block (memory or disk).
  std::vector<NodeId> nodes;

  [[nodiscard]] bool empty() const {
    return executors.empty() && nodes.empty();
  }
};

/// Preferred locations of task `index` of stage `s` right now.
[[nodiscard]] TaskPreferences task_preferences(
    const JobDag& dag, const BlockManagerMaster& master,
    const Topology& topo, StageId s, std::int32_t index);

/// Locality level task `index` of stage `s` would run at on `exec`.
[[nodiscard]] Locality task_locality_on(const JobDag& dag,
                                        const BlockManagerMaster& master,
                                        const Topology& topo, StageId s,
                                        std::int32_t index, ExecutorId exec);

/// The locality levels that can occur for stage `s`'s pending tasks,
/// best-first — Spark's TaskSetManager::myLocalityLevels. A taskset
/// whose tasks have no preferences yields {NoPref, Any}.
[[nodiscard]] std::vector<Locality> valid_locality_levels(
    const JobDag& dag, const BlockManagerMaster& master,
    const Topology& topo, const StageRuntime& stage);

}  // namespace dagon
