// Task locality classification.
//
// Mirrors Spark's preferred-location logic: a task's preferences come
// from its narrow-dependency inputs — the executors holding those blocks
// in memory (process-local) and the nodes holding them on disk
// (node-local). Pure-shuffle tasks have no preference (NO_PREF) and can
// launch anywhere without waiting.
#pragma once

#include <vector>

#include "cache/block_manager_master.hpp"
#include "cluster/locality.hpp"
#include "sched/job_state.hpp"

namespace dagon {

struct TaskPreferences {
  /// Executors holding a narrow-dep input block in memory.
  std::vector<ExecutorId> executors;
  /// Nodes holding a narrow-dep input block (memory or disk).
  std::vector<NodeId> nodes;

  [[nodiscard]] bool empty() const {
    return executors.empty() && nodes.empty();
  }
};

/// Preferred locations of task `index` of stage `s` right now.
[[nodiscard]] TaskPreferences task_preferences(
    const JobDag& dag, const BlockManagerMaster& master,
    const Topology& topo, StageId s, std::int32_t index);

/// Locality level task `index` of stage `s` would run at on `exec`.
[[nodiscard]] Locality task_locality_on(const JobDag& dag,
                                        const BlockManagerMaster& master,
                                        const Topology& topo, StageId s,
                                        std::int32_t index, ExecutorId exec);

/// The locality levels that can occur for stage `s`'s pending tasks,
/// best-first — Spark's TaskSetManager::myLocalityLevels. A taskset
/// whose tasks have no preferences yields {NoPref, Any}.
[[nodiscard]] std::vector<Locality> valid_locality_levels(
    const JobDag& dag, const BlockManagerMaster& master,
    const Topology& topo, const StageRuntime& stage);

/// Memoizes task_locality_on answers per (stage, task, executor) plus a
/// per-(stage, task) "has a memory-resident input" bit, keyed on the
/// master's placement_version(): the answers depend only on block
/// placement, so the memo stays valid across every event that moves no
/// block and is dropped wholesale the moment one does (block admit,
/// evict, or a task finish producing a new durable copy).
///
/// This turns the scheduler's O(pending × executors) inner loop from
/// recompute-per-event into amortized array reads. One instance serves
/// one run (not thread-safe across runs; each SimDriver owns its own).
class LocalityCache {
 public:
  /// Per-stage memo ceiling: a stage whose num_tasks × num_executors
  /// table would exceed this many entries (16 MiB of int8) is served by
  /// direct recomputation instead — same answers, bounded footprint.
  /// Matters only at bench_scale sizes (e.g. 1M tasks × 10k executors
  /// would want a 10 GB table).
  static constexpr std::size_t kMaxMemoSlots = std::size_t{1} << 24;

  /// Same answer as task_locality_on, served from the memo when the
  /// placement has not changed since it was computed.
  [[nodiscard]] Locality locality(const JobDag& dag,
                                  const BlockManagerMaster& master,
                                  const Topology& topo, StageId s,
                                  std::int32_t index, ExecutorId exec);

  /// True when any *pending* task of `stage` has a narrow-dep input
  /// block resident in some executor's memory — the expensive scan of
  /// valid_locality_levels, memoized per (stage, task).
  [[nodiscard]] bool any_process_pref(const JobDag& dag,
                                      const BlockManagerMaster& master,
                                      const StageRuntime& stage);

  /// valid_locality_levels with the any-process scan served by the memo.
  [[nodiscard]] std::vector<Locality> levels(const JobDag& dag,
                                             const BlockManagerMaster& master,
                                             const Topology& topo,
                                             const StageRuntime& stage);

 private:
  void sync(const BlockManagerMaster& master);

  std::uint64_t version_ = 0;  // 0 = never synced (real versions start at 1)
  std::size_t num_executors_ = 0;
  /// Per stage: num_tasks × num_executors locality values, -1 = unknown.
  std::vector<std::vector<std::int8_t>> loc_;
  /// Per stage: per task, 1/0 = has/lacks a memory holder, -1 = unknown.
  std::vector<std::vector<std::int8_t>> mem_pref_;
};

}  // namespace dagon
