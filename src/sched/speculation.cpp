#include "sched/speculation.hpp"

#include <algorithm>

namespace dagon {

namespace {

SimTime median_of(std::vector<SimTime> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

std::vector<SpeculationCandidate> speculation_candidates(
    const JobState& state, const std::vector<TaskRuntime>& running,
    const SpeculationConfig& config, SimTime now) {
  std::vector<SpeculationCandidate> out;
  if (!config.enabled) return out;

  for (const TaskRuntime& task : running) {
    if (task.status != TaskStatus::Running || task.speculative) continue;
    const StageRuntime& rt = state.stage(task.stage);
    if (rt.finished_durations.empty()) continue;
    const double done_fraction =
        static_cast<double>(rt.finished_tasks) /
        static_cast<double>(std::max(1, rt.num_tasks));
    if (done_fraction < config.quantile) continue;
    const SimTime median = median_of(rt.finished_durations);
    const auto threshold =
        static_cast<SimTime>(config.multiplier * static_cast<double>(median));
    const SimTime elapsed = now - task.launch_time;
    if (elapsed > threshold) {
      out.push_back(SpeculationCandidate{task.stage, task.index, elapsed,
                                         threshold});
    }
  }
  return out;
}

}  // namespace dagon
