#include "sched/speculation.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace dagon {

std::vector<SpeculationCandidate> speculation_candidates(
    const JobState& state, const std::vector<TaskRuntime>& running,
    const SpeculationConfig& config, SimTime now) {
  return speculation_candidates(state, running, {}, config, now);
}

std::vector<SpeculationCandidate> speculation_candidates(
    const JobState& state, const std::vector<TaskRuntime>& running,
    const std::vector<bool>& impaired, const SpeculationConfig& config,
    SimTime now) {
  std::vector<SpeculationCandidate> out;
  if (!config.enabled) return out;

  for (std::size_t i = 0; i < running.size(); ++i) {
    const TaskRuntime& task = running[i];
    if (task.status != TaskStatus::Running || task.speculative) continue;
    const bool is_impaired = i < impaired.size() && impaired[i];
    const StageRuntime& rt = state.stage(task.stage);
    if (rt.finished_durations.empty()) continue;
    if (!is_impaired) {
      const double done_fraction =
          static_cast<double>(rt.finished_tasks) /
          static_cast<double>(std::max(1, rt.num_tasks));
      if (done_fraction < config.quantile) continue;
    }
    const SimTime median = median_of(rt.finished_durations);
    const double multiplier = is_impaired ? 1.0 : config.multiplier;
    const SimTime threshold = scale_time(median, multiplier);
    const SimTime elapsed = now - task.launch_time;
    if (elapsed > threshold) {
      out.push_back(SpeculationCandidate{task.stage, task.index, elapsed,
                                         threshold});
    }
  }
  return out;
}

}  // namespace dagon
