#include "sched/speculation.hpp"

#include <algorithm>

namespace dagon {

namespace {

SimTime median_of(std::vector<SimTime> v) {
  // True median: the upper-middle element for odd sizes, the midpoint of
  // the two middle elements for even sizes. nth_element is O(n) vs the
  // old full sort (which also took the upper element for even sizes,
  // overestimating the median and under-speculating).
  const std::size_t mid = v.size() / 2;
  const auto mid_it = v.begin() + static_cast<std::ptrdiff_t>(mid);
  std::nth_element(v.begin(), mid_it, v.end());
  const SimTime upper = v[mid];
  if (v.size() % 2 != 0) return upper;
  const SimTime lower = *std::max_element(v.begin(), mid_it);
  return lower + (upper - lower) / 2;
}

}  // namespace

std::vector<SpeculationCandidate> speculation_candidates(
    const JobState& state, const std::vector<TaskRuntime>& running,
    const SpeculationConfig& config, SimTime now) {
  return speculation_candidates(state, running, {}, config, now);
}

std::vector<SpeculationCandidate> speculation_candidates(
    const JobState& state, const std::vector<TaskRuntime>& running,
    const std::vector<bool>& impaired, const SpeculationConfig& config,
    SimTime now) {
  std::vector<SpeculationCandidate> out;
  if (!config.enabled) return out;

  for (std::size_t i = 0; i < running.size(); ++i) {
    const TaskRuntime& task = running[i];
    if (task.status != TaskStatus::Running || task.speculative) continue;
    const bool is_impaired = i < impaired.size() && impaired[i];
    const StageRuntime& rt = state.stage(task.stage);
    if (rt.finished_durations.empty()) continue;
    if (!is_impaired) {
      const double done_fraction =
          static_cast<double>(rt.finished_tasks) /
          static_cast<double>(std::max(1, rt.num_tasks));
      if (done_fraction < config.quantile) continue;
    }
    const SimTime median = median_of(rt.finished_durations);
    const double multiplier = is_impaired ? 1.0 : config.multiplier;
    const auto threshold =
        static_cast<SimTime>(multiplier * static_cast<double>(median));
    const SimTime elapsed = now - task.launch_time;
    if (elapsed > threshold) {
      out.push_back(SpeculationCandidate{task.stage, task.index, elapsed,
                                         threshold});
    }
  }
  return out;
}

}  // namespace dagon
