#include "sched/delay_scheduling.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"

namespace dagon {

namespace {

/// Position of `l` in `levels`; levels.size()-1 (worst) if absent.
std::size_t level_index(const std::vector<Locality>& levels, Locality l) {
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (levels[i] == l) return i;
  }
  return levels.empty() ? 0 : levels.size() - 1;
}

}  // namespace

Locality DelayPolicy::locality_of(const JobState& state,
                                  const BlockManagerMaster& master,
                                  StageId s, std::int32_t index,
                                  ExecutorId exec) const {
  if (use_cache_) {
    return cache_.locality(state.dag(), master, state.topology(), s, index,
                           exec);
  }
  return task_locality_on(state.dag(), master, state.topology(), s, index,
                          exec);
}

std::vector<Locality> DelayPolicy::levels_of(
    const JobState& state, const BlockManagerMaster& master,
    const StageRuntime& stage) const {
  if (use_cache_) {
    return cache_.levels(state.dag(), master, state.topology(), stage);
  }
  return valid_locality_levels(state.dag(), master, state.topology(), stage);
}

Locality DelayPolicy::allowed_locality(JobState& state,
                                       const BlockManagerMaster& master,
                                       StageId s, SimTime now) const {
  StageRuntime& rt = state.stage(s);
  const std::vector<Locality> levels = levels_of(state, master, rt);
  DAGON_CHECK(!levels.empty());
  // Valid levels can change between calls (cache fills up, tasks drain);
  // clamp the stored ladder position.
  rt.locality_index = std::min(rt.locality_index, levels.size() - 1);
  if (rt.locality_timer < rt.ready_time) rt.locality_timer = rt.ready_time;

  // Spark's TaskSetManager::getAllowedLocalityLevel ladder walk.
  while (rt.locality_index < levels.size() - 1) {
    const SimTime wait = waits_.wait_for(levels[rt.locality_index]);
    if (now - rt.locality_timer < wait) break;
    rt.locality_timer += wait;
    ++rt.locality_index;
  }
  return levels[rt.locality_index];
}

void DelayPolicy::on_launch(JobState& state, const BlockManagerMaster& master,
                            StageId s, Locality l, SimTime now) const {
  StageRuntime& rt = state.stage(s);
  const std::vector<Locality> levels = levels_of(state, master, rt);
  if (levels.empty()) return;
  rt.locality_index = std::min(level_index(levels, l), levels.size() - 1);
  rt.locality_timer = now;
}

std::optional<Assignment> DelayPolicy::best_task_on(
    const JobState& state, const BlockManagerMaster& master, StageId s,
    ExecutorId exec) const {
  const Cpus demand = state.dag().stage(s).task_cpus;
  if (state.executor(exec).free_cores() < demand) return std::nullopt;
  const StageRuntime& rt = state.stage(s);
  // Pure-shuffle stage: with no narrow input, task_locality_on answers
  // NoPref for every task, so a full scan would keep the first pending
  // index (no later NoPref beats it). Answer in O(1).
  if (!rt.has_narrow) {
    if (rt.pending.empty()) return std::nullopt;
    return Assignment{rt.pending.front(), exec, Locality::NoPref};
  }
  std::optional<Assignment> best;
  for (const std::int32_t index : rt.pending) {
    const Locality l = locality_of(state, master, s, index, exec);
    if (!best || static_cast<int>(l) < static_cast<int>(best->locality)) {
      best = Assignment{index, exec, l};
      if (l == Locality::Process) break;  // cannot do better
    }
  }
  return best;
}

std::optional<Assignment> NativeDelayPolicy::find(
    JobState& state, const BlockManagerMaster& master, StageId s,
    SimTime now) const {
  const Locality allowed = allowed_locality(state, master, s, now);
  std::optional<Assignment> chosen;
  // Rotation-ordered walk over executors that have a free core, straight
  // off JobState's free-slot index. A core-less executor can never fit
  // the stage's demand (task_cpus >= 1 by construction), so skipping it
  // cannot change which launch the historical full scan would find.
  state.for_each_free_executor([&](ExecutorId exec) {
    // Suspect/blacklisted executors take no new work; they also grant no
    // Process preference (task_locality filters their memory copies), so
    // the locality ladder never waits for them.
    if (!state.executor(exec).schedulable(now)) return false;
    const auto best = best_task_on(state, master, s, exec);
    if (best && at_least(best->locality, allowed)) {
      chosen = best;
      return true;
    }
    // Otherwise this executor stays idle for this stage — the core
    // pathology the paper's Fig. 4 illustrates.
    return false;
  });
  return chosen;
}

std::optional<Assignment> SensitivityAwareDelayPolicy::find(
    JobState& state, const BlockManagerMaster& master, StageId s,
    SimTime now) const {
  const Locality allowed = allowed_locality(state, master, s, now);
  const TaskTimeEstimator estimator(state, *cost_);
  // Algorithm 2: accept a lower-locality task when it finishes within
  // the stage's earliest completion time (Eq. 7, with slack).
  const SimTime ect = scale_time(estimator.earliest_completion(s), ect_slack_);
  std::optional<Assignment> chosen;
  state.for_each_free_executor([&](ExecutorId exec) {
    if (!state.executor(exec).schedulable(now)) return false;
    const auto best = best_task_on(state, master, s, exec);
    if (!best) return false;
    if (at_least(best->locality, allowed)) {
      chosen = best;
      return true;
    }
    const SimTime est = estimator.estimate(s, best->locality);
    if (est < ect) {
      DAGON_TRACE("algorithm2 accepts stage "
                  << s << " task " << best->task_index << " @"
                  << locality_name(best->locality) << " on exec " << exec
                  << " (est " << format_duration(est) << " < ect "
                  << format_duration(ect) << ")");
      chosen = best;
      return true;
    }
    DAGON_TRACE("algorithm2 refuses stage "
                << s << " @" << locality_name(best->locality) << " on exec "
                << exec << " (est " << format_duration(est) << " >= ect "
                << format_duration(ect) << ")");
    // Locality-sensitive stage: skip this executor, try the next one
    // (Algorithm 2 line 9).
    return false;
  });
  return chosen;
}

std::unique_ptr<DelayPolicy> make_delay_policy(DelayKind kind,
                                               const LocalityWaits& waits,
                                               const CostModel& cost,
                                               double ect_slack) {
  switch (kind) {
    case DelayKind::Native:
      return std::make_unique<NativeDelayPolicy>(waits, cost);
    case DelayKind::SensitivityAware:
      return std::make_unique<SensitivityAwareDelayPolicy>(waits, cost,
                                                           ect_slack);
  }
  throw ConfigError("unknown delay policy kind");
}

}  // namespace dagon
