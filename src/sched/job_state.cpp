#include "sched/job_state.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dagon {

JobState::JobState(const JobDag& dag, const Topology& topo,
                   const JobProfile& profile)
    : dag_(&dag), topo_(&topo), profile_(&profile) {
  DAGON_CHECK_MSG(profile.stages.size() == dag.num_stages(),
                  "profile does not match DAG");
  stages_.reserve(dag.num_stages());
  for (const Stage& s : dag.stages()) {
    StageRuntime rt;
    rt.id = s.id;
    rt.num_tasks = s.num_tasks;
    rt.pending.assign_all(s.num_tasks);
    for (const RddRef& ref : s.inputs) {
      if (ref.kind == DepKind::Narrow) {
        rt.has_narrow = true;
        break;
      }
    }
    rt.remaining_work = profile.workload(s.id, s.num_tasks);
    rt.task_status.assign(static_cast<std::size_t>(s.num_tasks),
                          TaskStatus::Pending);
    rt.ready = s.parents.empty();
    rt.ready_time = rt.ready ? SimTime{0} : SimTime{-1};
    stages_.push_back(std::move(rt));
  }
  executors_.reserve(topo.num_executors());
  for (const Executor& e : topo.executors()) {
    ExecutorRuntime rt;
    rt.id = e.id;
    rt.free_cores_ = e.cores;
    executors_.push_back(rt);
  }
  free_bits_.assign((executors_.size() + 63) / 64, 0);
  for (const ExecutorRuntime& e : executors_) {
    if (e.free_cores_ > Cpus{0}) {
      const auto idx = static_cast<std::size_t>(e.id.value());
      free_bits_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
      ++num_free_;
    }
  }
}

StageRuntime& JobState::stage(StageId id) {
  DAGON_CHECK(id.valid() &&
              static_cast<std::size_t>(id.value()) < stages_.size());
  return stages_[static_cast<std::size_t>(id.value())];
}

const StageRuntime& JobState::stage(StageId id) const {
  DAGON_CHECK(id.valid() &&
              static_cast<std::size_t>(id.value()) < stages_.size());
  return stages_[static_cast<std::size_t>(id.value())];
}

ExecutorRuntime& JobState::executor(ExecutorId id) {
  DAGON_CHECK(id.valid() &&
              static_cast<std::size_t>(id.value()) < executors_.size());
  return executors_[static_cast<std::size_t>(id.value())];
}

const ExecutorRuntime& JobState::executor(ExecutorId id) const {
  DAGON_CHECK(id.valid() &&
              static_cast<std::size_t>(id.value()) < executors_.size());
  return executors_[static_cast<std::size_t>(id.value())];
}

std::vector<StageId> JobState::schedulable_stages() const {
  std::vector<StageId> out;
  for (const StageRuntime& s : stages_) {
    if (s.ready && !s.finished && s.has_pending()) out.push_back(s.id);
  }
  return out;
}

bool JobState::all_finished() const {
  return std::all_of(stages_.begin(), stages_.end(),
                     [](const StageRuntime& s) { return s.finished; });
}

void JobState::set_free_cores(ExecutorId exec, Cpus cores) {
  DAGON_CHECK(cores >= Cpus{0});
  ExecutorRuntime& e = executor(exec);
  const bool was_free = e.free_cores_ > Cpus{0};
  const bool is_free = cores > Cpus{0};
  e.free_cores_ = cores;
  if (was_free != is_free) {
    const auto idx = static_cast<std::size_t>(exec.value());
    free_bits_[idx >> 6] ^= std::uint64_t{1} << (idx & 63);
    num_free_ += is_free ? 1 : -1;
  }
}

void JobState::add_free_cores(ExecutorId exec, Cpus delta) {
  set_free_cores(exec, executor(exec).free_cores_ + delta);
}

CpuWork JobState::priority_value(StageId id) const {
  CpuWork pv = stage(id).remaining_work;
  for (const StageId succ : dag_->successor_set(id)) {
    pv += stage(succ).remaining_work;
  }
  return pv;
}

std::vector<CpuWork> JobState::priority_values() const {
  std::vector<CpuWork> pv;
  pv.reserve(stages_.size());
  for (const StageRuntime& s : stages_) {
    pv.push_back(priority_value(s.id));
  }
  return pv;
}

void JobState::set_status(StageRuntime& rt, std::int32_t index,
                          TaskStatus to) {
  DAGON_CHECK(index >= 0 && index < rt.num_tasks);
  // Entity id packs (stage, index) so an illegal-edge diagnostic or a
  // counted breach can be traced back to one task.
  const auto entity =
      (static_cast<std::int64_t>(rt.id.value()) << 32) | index;
  fsm::transition(rt.task_status[static_cast<std::size_t>(index)], to,
                  entity, fsm_violations_);
}

void JobState::mark_launched(StageId s, std::int32_t index, ExecutorId exec,
                             SimTime now) {
  StageRuntime& rt = stage(s);
  DAGON_CHECK_MSG(rt.pending.contains(index),
                  "task " << index << " of stage " << s << " not pending");
  set_status(rt, index, TaskStatus::Running);
  rt.pending.erase(index);
  ++rt.running;
  if (rt.first_launch < SimTime{0}) rt.first_launch = now;

  const StageEstimate& est = profile_->stage(s);
  rt.remaining_work -= est.task_cpus * est.task_duration;
  if (rt.remaining_work < CpuWork{0}) rt.remaining_work = CpuWork{0};
  ++pv_epoch_;

  ExecutorRuntime& e = executor(exec);
  const Cpus demand = dag_->stage(s).task_cpus;
  DAGON_CHECK_MSG(e.free_cores_ >= demand,
                  "executor " << exec << " lacks cores for stage " << s);
  set_free_cores(exec, e.free_cores_ - demand);
  ++e.tasks_launched;
  ++total_launched_;
}

bool JobState::mark_finished(StageId s, std::int32_t index, ExecutorId exec,
                             Locality locality, SimTime launch_time,
                             SimTime now) {
  StageRuntime& rt = stage(s);
  DAGON_CHECK(rt.running > 0);
  set_status(rt, index, TaskStatus::Finished);
  --rt.running;
  ++rt.finished_tasks;

  const auto li = static_cast<std::size_t>(locality);
  rt.locality_duration_sum[li] += static_cast<double>((now - launch_time).count());
  ++rt.locality_count[li];
  rt.finished_durations.push_back(now - launch_time);

  add_free_cores(exec, dag_->stage(s).task_cpus);
  DAGON_CHECK(executor(exec).free_cores_ <=
              topo_->executor(exec).cores);

  if (rt.finished_tasks == rt.num_tasks) {
    rt.finished = true;
    rt.finish_time = now;
    rt.remaining_work = CpuWork{0};
    ++pv_epoch_;
    return true;
  }
  return false;
}

std::vector<StageId> JobState::refresh_ready(SimTime now) {
  std::vector<StageId> newly_ready;
  for (StageRuntime& rt : stages_) {
    if (rt.ready || rt.finished || rt.gated) continue;
    const Stage& s = dag_->stage(rt.id);
    const bool ok = std::all_of(
        s.parents.begin(), s.parents.end(),
        [&](StageId p) { return stage(p).finished; });
    if (ok) {
      rt.ready = true;
      rt.ready_time = now;
      rt.locality_timer = now;  // delay-scheduling wait starts here
      newly_ready.push_back(rt.id);
    }
  }
  return newly_ready;
}

void JobState::set_stage_gated(StageId s, bool gated) {
  StageRuntime& rt = stage(s);
  if (rt.gated == gated) return;
  rt.gated = gated;
  if (gated) {
    DAGON_CHECK_MSG(rt.running == 0 && rt.finished_tasks == 0,
                    "cannot gate started stage " << s);
    rt.ready = false;
    rt.ready_time = SimTime{-1};
  }
}

void JobState::mark_failed(StageId s, std::int32_t index) {
  StageRuntime& rt = stage(s);
  set_status(rt, index, TaskStatus::Failed);
}

void JobState::readd_pending(StageId s, std::int32_t index) {
  StageRuntime& rt = stage(s);
  DAGON_CHECK(index >= 0 && index < rt.num_tasks);
  set_status(rt, index, TaskStatus::Pending);
  rt.pending.push_back(index);
  const StageEstimate& est = profile_->stage(s);
  rt.remaining_work += est.task_cpus * est.task_duration;
  ++pv_epoch_;
}

void JobState::reopen_task(StageId s, std::int32_t index) {
  StageRuntime& rt = stage(s);
  DAGON_CHECK(index >= 0 && index < rt.num_tasks);
  DAGON_CHECK_MSG(rt.finished_tasks > 0,
                  "reopen_task on stage " << s << " with no finished tasks");
  DAGON_CHECK_MSG(!rt.pending.contains(index),
                  "task " << index << " of stage " << s << " already pending");
  set_status(rt, index, TaskStatus::Pending);
  --rt.finished_tasks;
  if (rt.finished) {
    rt.finished = false;
    rt.finish_time = SimTime{-1};
  }
  rt.pending.push_back(index);
  const StageEstimate& est = profile_->stage(s);
  rt.remaining_work += est.task_cpus * est.task_duration;
  ++pv_epoch_;
}

std::vector<StageId> JobState::demote_unready() {
  std::vector<StageId> demoted;
  // Walk in reverse topological-ish id order is unnecessary: a fixpoint
  // loop handles chains (child demoted because parent was demoted).
  bool changed = true;
  while (changed) {
    changed = false;
    for (StageRuntime& rt : stages_) {
      if (!rt.ready || rt.finished) continue;
      const Stage& s = dag_->stage(rt.id);
      const bool ok = std::all_of(
          s.parents.begin(), s.parents.end(),
          [&](StageId p) { return stage(p).finished; });
      if (!ok) {
        rt.ready = false;
        demoted.push_back(rt.id);
        changed = true;
      }
    }
  }
  return demoted;
}

std::optional<SimTime> JobState::observed_duration(StageId s,
                                                   Locality l) const {
  const StageRuntime& rt = stage(s);
  const auto li = static_cast<std::size_t>(l);
  if (rt.locality_count[li] == 0) return std::nullopt;
  return time_from_usec(rt.locality_duration_sum[li] /
                        static_cast<double>(rt.locality_count[li]));
}

std::optional<SimTime> JobState::observed_duration(StageId s) const {
  const StageRuntime& rt = stage(s);
  double sum = 0.0;
  std::int64_t count = 0;
  // FP reduction in ascending locality-level order over a fixed-size
  // array — the summation order is deterministic.
  for (std::size_t i = 0; i < rt.locality_count.size(); ++i) {
    sum += rt.locality_duration_sum[i];
    count += rt.locality_count[i];
  }
  if (count == 0) return std::nullopt;
  return time_from_usec(sum / static_cast<double>(count));
}

}  // namespace dagon
