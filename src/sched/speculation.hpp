// Speculative execution, modelled after Spark's TaskSetManager
// speculation plus the paper's §IV tweak: the copy is launched on an
// executor with free resources *close to the input data*.
//
// A task becomes a speculation candidate when (a) at least
// `quantile` of its stage's tasks have finished and (b) it has been
// running longer than `multiplier` × the median finished duration.
#pragma once

#include <vector>

#include "common/sim_time.hpp"
#include "sched/job_state.hpp"

namespace dagon {

struct SpeculationConfig {
  bool enabled = false;
  /// Fraction of the stage that must be finished before speculating
  /// (spark.speculation.quantile).
  double quantile = 0.75;
  /// How much slower than the median a task must be
  /// (spark.speculation.multiplier).
  double multiplier = 1.5;
  /// Hedged mode: the speculative copy is a true hedge — placed on the
  /// fastest available tier (never the straggler's own executor), and
  /// when either attempt finishes the sibling is cancelled through the
  /// `Running → Cancelled` FSM edge with its cores returned immediately
  /// and the wasted core-time accounted in RunMetrics::HedgeStats.
  bool hedge = false;
};

struct SpeculationCandidate {
  StageId stage;
  std::int32_t task_index = -1;
  SimTime running_for{};
  SimTime threshold{};
};

/// Scans running (non-speculative) tasks for stragglers. `running`
/// describes each in-flight task attempt.
[[nodiscard]] std::vector<SpeculationCandidate> speculation_candidates(
    const JobState& state, const std::vector<TaskRuntime>& running,
    const SpeculationConfig& config, SimTime now);

/// Gray-failure-aware variant: `impaired[i]` marks attempts running on a
/// suspect or degraded executor. Impaired attempts skip the quantile
/// gate and use a threshold of 1x the median — the attempt's executor is
/// already under suspicion, so a copy is justified as soon as the
/// attempt is merely slower than typical, not only when it is an extreme
/// straggler. `impaired` may be empty (equivalent to all-false).
[[nodiscard]] std::vector<SpeculationCandidate> speculation_candidates(
    const JobState& state, const std::vector<TaskRuntime>& running,
    const std::vector<bool>& impaired, const SpeculationConfig& config,
    SimTime now);

}  // namespace dagon
