// Task-duration estimation for Algorithm 2's sensitivity test.
//
// The paper estimates a pending task's finish time "as the average
// duration of the finished tasks with the same locality level"; before
// any task has finished at that level we fall back to profile compute
// time + a cost-model prediction of the locality's fetch penalty.
#pragma once

#include "cluster/cost_model.hpp"
#include "sched/job_state.hpp"

namespace dagon {

class TaskTimeEstimator {
 public:
  TaskTimeEstimator(const JobState& state, const CostModel& cost)
      : state_(&state), cost_(&cost) {}

  /// Expected duration of one task of `s` when launched at `locality`.
  [[nodiscard]] SimTime estimate(StageId s, Locality locality) const;

  /// The paper's Eq. (7): earliest completion time of stage `s` (as a
  /// duration from now), ect = ceil(pending / parallelism) * avg_duration.
  [[nodiscard]] SimTime earliest_completion(StageId s) const;

 private:
  /// Cost-model prediction of fetch time at a locality level, assuming
  /// the task's input bytes come from the level's natural source.
  [[nodiscard]] SimTime predicted_fetch(StageId s, Locality locality) const;

  const JobState* state_;
  const CostModel* cost_;
};

}  // namespace dagon
