#include "sched/estimator.hpp"

#include <algorithm>

namespace dagon {

SimTime TaskTimeEstimator::predicted_fetch(StageId s,
                                           Locality locality) const {
  const StageEstimate& est = state_->profile().stage(s);
  const Bytes bytes = est.task_input_bytes;
  // Ser/de is paid on RDD bytes for any non-process read; raw HDFS input
  // parses inside task compute time regardless of source. This split is
  // what lets Algorithm 2 tell a locality-insensitive scan (serde ~ 0,
  // disk read pipelines over the network) from a sensitive iteration
  // over cached data (serde dominates).
  const SimTime serde =
      locality == Locality::Process
          ? SimTime{0}
          : time_from_usec(cost_->spec().serde_sec_per_byte *
                           static_cast<double>(est.task_serde_bytes.count()) *
                           static_cast<double>(kSec.count()));
  switch (locality) {
    case Locality::Process:
      return cost_->fetch_time(bytes, BlockSource::LocalMemory, 0.0);
    case Locality::Node:
      return cost_->fetch_time(bytes, BlockSource::LocalDisk, 0.0) + serde;
    case Locality::NoPref:
    case Locality::Rack:
      // Inputs pulled from around the rack.
      return cost_->fetch_time(bytes, BlockSource::RackDisk, 0.0) + serde;
    case Locality::Any:
      return cost_->fetch_time(bytes, BlockSource::RemoteDisk, 0.0) + serde;
  }
  return SimTime{0};
}

SimTime TaskTimeEstimator::estimate(StageId s, Locality locality) const {
  if (const auto observed = state_->observed_duration(s, locality)) {
    return *observed;
  }
  return state_->profile().stage(s).task_duration +
         predicted_fetch(s, locality);
}

SimTime TaskTimeEstimator::earliest_completion(StageId s) const {
  const StageRuntime& rt = state_->stage(s);
  const auto pending = static_cast<std::int64_t>(rt.pending.size());
  if (pending == 0) return SimTime{0};
  // Eq. (7): ect = ceil(pending / parallelism) * avg duration. "Earliest"
  // is optimistic: before the stage ramps up, assume it can reach full
  // cluster parallelism rather than extrapolating from the first task.
  const Cpus demand = state_->dag().stage(s).task_cpus;
  const std::int64_t potential =
      std::max<std::int64_t>(1, state_->topology().total_cores() / demand);
  const std::int64_t parallelism = std::max<std::int64_t>(
      rt.running, std::min<std::int64_t>(pending, potential));
  SimTime avg;
  if (const auto observed = state_->observed_duration(s)) {
    avg = *observed;
  } else {
    // Nothing finished yet: assume the preferred-locality duration.
    avg = estimate(s, Locality::Process);
  }
  const std::int64_t waves = (pending + parallelism - 1) / parallelism;
  return waves * avg;
}

}  // namespace dagon
