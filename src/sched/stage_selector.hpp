// Stage selection policies: in each scheduling step, the order in which
// ready stages are offered executor resources (Algorithm 1 line 5
// generalized — each policy supplies its own sort key).
//
//   FIFO          — Spark default: ascending stage id
//   Fair          — least currently-allocated cores first (DRF-lite)
//   CriticalPath  — longest remaining critical path first [Graham'69]
//   Graphene      — troublesome stages (long or hard-to-pack) first
//                   [Grandl et al., OSDI'16, online heuristic]
//   Dagon         — highest priority value pv_i (Eq. 6) first; this is
//                   the paper's DAG-aware task assignment
#pragma once

#include <memory>
#include <vector>

#include "sched/job_state.hpp"

namespace dagon {

enum class SchedulerKind { Fifo, Fair, CriticalPath, Graphene, Dagon };

[[nodiscard]] constexpr const char* scheduler_name(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::Fifo: return "FIFO";
    case SchedulerKind::Fair: return "Fair";
    case SchedulerKind::CriticalPath: return "CP";
    case SchedulerKind::Graphene: return "Graphene";
    case SchedulerKind::Dagon: return "Dagon";
  }
  return "?";
}

class StageSelector {
 public:
  virtual ~StageSelector() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// Schedulable stages (ready, unfinished, pending tasks) in offer
  /// order: the driver walks this list and launches the first task that
  /// delay scheduling admits.
  [[nodiscard]] virtual std::vector<StageId> order(
      const JobState& state) const = 0;
};

class FifoSelector final : public StageSelector {
 public:
  [[nodiscard]] const char* name() const override { return "FIFO"; }
  [[nodiscard]] std::vector<StageId> order(
      const JobState& state) const override;
};

class FairSelector final : public StageSelector {
 public:
  [[nodiscard]] const char* name() const override { return "Fair"; }
  [[nodiscard]] std::vector<StageId> order(
      const JobState& state) const override;
};

class CriticalPathSelector final : public StageSelector {
 public:
  explicit CriticalPathSelector(const JobDag& dag);
  [[nodiscard]] const char* name() const override { return "CP"; }
  [[nodiscard]] std::vector<StageId> order(
      const JobState& state) const override;

 private:
  std::vector<SimTime> cp_;  // critical-path length per stage
};

class GrapheneSelector final : public StageSelector {
 public:
  /// Troublesome thresholds: a stage is troublesome when its estimated
  /// task duration is in the top `duration_quantile` of the DAG or its
  /// demand exceeds `demand_fraction` of an executor.
  GrapheneSelector(const JobDag& dag, const JobProfile& profile,
                   Cpus executor_cores, double duration_quantile = 0.75,
                   double demand_fraction = 0.5);
  [[nodiscard]] const char* name() const override { return "Graphene"; }
  [[nodiscard]] std::vector<StageId> order(
      const JobState& state) const override;

  [[nodiscard]] bool troublesome(StageId s) const {
    return troublesome_[static_cast<std::size_t>(s.value())];
  }

 private:
  std::vector<bool> troublesome_;
  std::vector<double> score_;  // duration·demand, for ordering
};

class DagonSelector final : public StageSelector {
 public:
  [[nodiscard]] const char* name() const override { return "Dagon"; }
  [[nodiscard]] std::vector<StageId> order(
      const JobState& state) const override;
};

[[nodiscard]] std::unique_ptr<StageSelector> make_stage_selector(
    SchedulerKind kind, const JobDag& dag, const JobProfile& profile,
    Cpus executor_cores);

}  // namespace dagon
