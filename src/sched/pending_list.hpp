// Pending task indices of one stage.
//
// Semantically a std::vector<std::int32_t> under the three operations
// the scheduler needs — iterate in order, erase one value, push_back —
// but with O(1) erase/contains via an intrusive doubly-linked list over
// a dense per-index node array. Iteration order is exactly what the
// vector discipline would produce: erase preserves the relative order
// of the survivors and push_back appends, so swapping the
// representation changes no scheduling decision.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

#include "common/error.hpp"

namespace dagon {

class PendingList {
 public:
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::int32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const std::int32_t*;
    using reference = std::int32_t;

    const_iterator() = default;
    const_iterator(const PendingList* list, std::int32_t cur)
        : list_(list), cur_(cur) {}

    [[nodiscard]] std::int32_t operator*() const { return cur_; }
    const_iterator& operator++() {
      cur_ = list_->next_[static_cast<std::size_t>(cur_)];
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }
    [[nodiscard]] bool operator==(const const_iterator& o) const {
      return cur_ == o.cur_;
    }
    [[nodiscard]] bool operator!=(const const_iterator& o) const {
      return cur_ != o.cur_;
    }

   private:
    const PendingList* list_ = nullptr;
    std::int32_t cur_ = -1;
  };

  PendingList() = default;

  /// Initializes to the full set {0, 1, ..., n-1} in ascending order.
  void assign_all(std::int32_t n) {
    DAGON_CHECK(n >= 0);
    const auto un = static_cast<std::size_t>(n);
    next_.resize(un);
    prev_.resize(un);
    in_.assign(un, 1);
    for (std::int32_t i = 0; i < n; ++i) {
      next_[static_cast<std::size_t>(i)] = (i + 1 < n) ? i + 1 : -1;
      prev_[static_cast<std::size_t>(i)] = i - 1;
    }
    head_ = n > 0 ? 0 : -1;
    tail_ = n - 1;
    size_ = un;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::int32_t front() const {
    DAGON_CHECK(head_ >= 0);
    return head_;
  }

  [[nodiscard]] bool contains(std::int32_t index) const {
    return index >= 0 && static_cast<std::size_t>(index) < in_.size() &&
           in_[static_cast<std::size_t>(index)] != 0;
  }

  void erase(std::int32_t index) {
    DAGON_CHECK(contains(index));
    const auto i = static_cast<std::size_t>(index);
    const std::int32_t p = prev_[i];
    const std::int32_t n = next_[i];
    if (p >= 0) {
      next_[static_cast<std::size_t>(p)] = n;
    } else {
      head_ = n;
    }
    if (n >= 0) {
      prev_[static_cast<std::size_t>(n)] = p;
    } else {
      tail_ = p;
    }
    in_[i] = 0;
    --size_;
  }

  void push_back(std::int32_t index) {
    DAGON_CHECK(index >= 0 &&
                static_cast<std::size_t>(index) < in_.size() &&
                !contains(index));
    const auto i = static_cast<std::size_t>(index);
    prev_[i] = tail_;
    next_[i] = -1;
    if (tail_ >= 0) {
      next_[static_cast<std::size_t>(tail_)] = index;
    } else {
      head_ = index;
    }
    tail_ = index;
    in_[i] = 1;
    ++size_;
  }

  void clear() {
    std::fill(in_.begin(), in_.end(), static_cast<char>(0));
    head_ = -1;
    tail_ = -1;
    size_ = 0;
  }

  [[nodiscard]] const_iterator begin() const {
    return const_iterator{this, head_};
  }
  [[nodiscard]] const_iterator end() const {
    return const_iterator{this, -1};
  }

 private:
  std::vector<std::int32_t> next_;
  std::vector<std::int32_t> prev_;
  std::vector<char> in_;  // membership flag per index
  std::int32_t head_ = -1;
  std::int32_t tail_ = -1;
  std::size_t size_ = 0;
};

}  // namespace dagon
