#include "sched/task_locality.hpp"

#include <algorithm>

namespace dagon {

TaskPreferences task_preferences(const JobDag& dag,
                                 const BlockManagerMaster& master,
                                 const Topology& topo, StageId s,
                                 std::int32_t index) {
  TaskPreferences prefs;
  const Stage& stage = dag.stage(s);
  for (const RddRef& ref : stage.inputs) {
    if (ref.kind != DepKind::Narrow) continue;
    const BlockId block{ref.rdd, index};
    for (const ExecutorId e : master.memory_holders(block)) {
      if (std::find(prefs.executors.begin(), prefs.executors.end(), e) ==
          prefs.executors.end()) {
        prefs.executors.push_back(e);
      }
      const NodeId n = topo.node_of(e);
      if (std::find(prefs.nodes.begin(), prefs.nodes.end(), n) ==
          prefs.nodes.end()) {
        prefs.nodes.push_back(n);
      }
    }
    for (const NodeId n : master.disk_holders(block)) {
      if (std::find(prefs.nodes.begin(), prefs.nodes.end(), n) ==
          prefs.nodes.end()) {
        prefs.nodes.push_back(n);
      }
    }
  }
  return prefs;
}

Locality task_locality_on(const JobDag& dag,
                          const BlockManagerMaster& master,
                          const Topology& topo, StageId s,
                          std::int32_t index, ExecutorId exec) {
  // Allocation-free fast path: this runs once per (pending task,
  // executor) pair in the scheduler's inner loop.
  const Stage& stage = dag.stage(s);
  const NodeId my_node = topo.node_of(exec);
  const RackId my_rack = topo.rack_of(my_node);

  bool any_pref = false;
  Locality best = Locality::Any;
  const auto improve = [&](Locality l) {
    if (static_cast<int>(l) < static_cast<int>(best)) best = l;
  };

  for (const RddRef& ref : stage.inputs) {
    if (ref.kind != DepKind::Narrow) continue;
    const BlockId block{ref.rdd, index};
    for (const ExecutorId holder : master.memory_holders(block)) {
      // A suspect's memory copy grants no preference: steering (or
      // delay-waiting) toward an executor that may be dying burns the
      // locality wait for nothing. Its durable disk copy still counts
      // below.
      if (master.executor_suspect(holder)) continue;
      any_pref = true;
      if (holder == exec) return Locality::Process;
      const NodeId n = topo.node_of(holder);
      improve(n == my_node ? Locality::Node
              : topo.rack_of(n) == my_rack ? Locality::Rack
                                           : Locality::Any);
    }
    const auto consider_disk = [&](NodeId n) {
      any_pref = true;
      improve(n == my_node ? Locality::Node
              : topo.rack_of(n) == my_rack ? Locality::Rack
                                           : Locality::Any);
    };
    for (const NodeId n : master.hdfs_replicas(block)) consider_disk(n);
    for (const NodeId n : master.produced_disk_nodes(block)) {
      consider_disk(n);
    }
  }
  if (!any_pref) return Locality::NoPref;
  return best;
}

namespace {

/// Ladder for stages with narrow deps, with/without a Process rung.
std::vector<Locality> narrow_levels(bool any_process) {
  std::vector<Locality> levels;
  if (any_process) levels.push_back(Locality::Process);
  levels.push_back(Locality::Node);
  levels.push_back(Locality::Rack);
  levels.push_back(Locality::Any);
  return levels;
}

bool stage_has_narrow(const Stage& s) {
  for (const RddRef& ref : s.inputs) {
    if (ref.kind == DepKind::Narrow) return true;
  }
  return false;
}

}  // namespace

std::vector<Locality> valid_locality_levels(const JobDag& dag,
                                            const BlockManagerMaster& master,
                                            const Topology& topo,
                                            const StageRuntime& stage) {
  (void)topo;
  const Stage& s = dag.stage(stage.id);
  // Pure-shuffle stages have no preferred locations at all: every task
  // is NO_PREF. Narrow-dep stages always have at least a disk location
  // for every pending task (the parent block exists by readiness), so
  // none of their tasks is NO_PREF.
  if (!stage_has_narrow(s)) {
    return {Locality::NoPref, Locality::Any};
  }
  bool any_process = false;
  for (const std::int32_t index : stage.pending) {
    for (const RddRef& ref : s.inputs) {
      if (ref.kind != DepKind::Narrow) continue;
      if (master.any_healthy_memory_holder(BlockId{ref.rdd, index})) {
        any_process = true;
        break;
      }
    }
    if (any_process) break;
  }
  return narrow_levels(any_process);
}

// --- LocalityCache ---------------------------------------------------------

void LocalityCache::sync(const BlockManagerMaster& master) {
  if (version_ == master.placement_version()) return;
  version_ = master.placement_version();
  for (auto& slots : loc_) {
    std::fill(slots.begin(), slots.end(), static_cast<std::int8_t>(-1));
  }
  for (auto& bits : mem_pref_) {
    std::fill(bits.begin(), bits.end(), static_cast<std::int8_t>(-1));
  }
}

Locality LocalityCache::locality(const JobDag& dag,
                                 const BlockManagerMaster& master,
                                 const Topology& topo, StageId s,
                                 std::int32_t index, ExecutorId exec) {
  sync(master);
  if (loc_.empty()) {
    loc_.resize(dag.num_stages());
    num_executors_ = topo.num_executors();
  }
  const std::size_t want =
      static_cast<std::size_t>(dag.stage(s).num_tasks) * num_executors_;
  if (want > kMaxMemoSlots) {
    // Memo table would be too large for this stage (see kMaxMemoSlots);
    // recompute directly — identical answer, no storage.
    return task_locality_on(dag, master, topo, s, index, exec);
  }
  auto& slots = loc_[static_cast<std::size_t>(s.value())];
  if (slots.empty()) slots.assign(want, static_cast<std::int8_t>(-1));
  const std::size_t slot =
      static_cast<std::size_t>(index) * num_executors_ +
      static_cast<std::size_t>(exec.value());
  if (slots[slot] < 0) {
    slots[slot] = static_cast<std::int8_t>(
        task_locality_on(dag, master, topo, s, index, exec));
  }
  return static_cast<Locality>(slots[slot]);
}

bool LocalityCache::any_process_pref(const JobDag& dag,
                                     const BlockManagerMaster& master,
                                     const StageRuntime& stage) {
  sync(master);
  if (mem_pref_.empty()) mem_pref_.resize(dag.num_stages());
  auto& bits = mem_pref_[static_cast<std::size_t>(stage.id.value())];
  const Stage& s = dag.stage(stage.id);
  if (bits.empty()) {
    bits.assign(static_cast<std::size_t>(s.num_tasks),
                static_cast<std::int8_t>(-1));
  }
  for (const std::int32_t index : stage.pending) {
    auto& bit = bits[static_cast<std::size_t>(index)];
    if (bit < 0) {
      bit = 0;
      for (const RddRef& ref : s.inputs) {
        if (ref.kind != DepKind::Narrow) continue;
        if (master.any_healthy_memory_holder(BlockId{ref.rdd, index})) {
          bit = 1;
          break;
        }
      }
    }
    if (bit > 0) return true;
  }
  return false;
}

std::vector<Locality> LocalityCache::levels(const JobDag& dag,
                                            const BlockManagerMaster& master,
                                            const Topology& topo,
                                            const StageRuntime& stage) {
  (void)topo;
  if (!stage_has_narrow(dag.stage(stage.id))) {
    return {Locality::NoPref, Locality::Any};
  }
  return narrow_levels(any_process_pref(dag, master, stage));
}

}  // namespace dagon
