#include "sched/task_locality.hpp"

#include <algorithm>

namespace dagon {

TaskPreferences task_preferences(const JobDag& dag,
                                 const BlockManagerMaster& master,
                                 const Topology& topo, StageId s,
                                 std::int32_t index) {
  TaskPreferences prefs;
  const Stage& stage = dag.stage(s);
  for (const RddRef& ref : stage.inputs) {
    if (ref.kind != DepKind::Narrow) continue;
    const BlockId block{ref.rdd, index};
    for (const ExecutorId e : master.memory_holders(block)) {
      if (std::find(prefs.executors.begin(), prefs.executors.end(), e) ==
          prefs.executors.end()) {
        prefs.executors.push_back(e);
      }
      const NodeId n = topo.node_of(e);
      if (std::find(prefs.nodes.begin(), prefs.nodes.end(), n) ==
          prefs.nodes.end()) {
        prefs.nodes.push_back(n);
      }
    }
    for (const NodeId n : master.disk_holders(block)) {
      if (std::find(prefs.nodes.begin(), prefs.nodes.end(), n) ==
          prefs.nodes.end()) {
        prefs.nodes.push_back(n);
      }
    }
  }
  return prefs;
}

Locality task_locality_on(const JobDag& dag,
                          const BlockManagerMaster& master,
                          const Topology& topo, StageId s,
                          std::int32_t index, ExecutorId exec) {
  // Allocation-free fast path: this runs once per (pending task,
  // executor) pair in the scheduler's inner loop.
  const Stage& stage = dag.stage(s);
  const NodeId my_node = topo.node_of(exec);
  const RackId my_rack = topo.rack_of(my_node);

  bool any_pref = false;
  Locality best = Locality::Any;
  const auto improve = [&](Locality l) {
    if (static_cast<int>(l) < static_cast<int>(best)) best = l;
  };

  for (const RddRef& ref : stage.inputs) {
    if (ref.kind != DepKind::Narrow) continue;
    const BlockId block{ref.rdd, index};
    for (const ExecutorId holder : master.memory_holders(block)) {
      any_pref = true;
      if (holder == exec) return Locality::Process;
      const NodeId n = topo.node_of(holder);
      improve(n == my_node ? Locality::Node
              : topo.rack_of(n) == my_rack ? Locality::Rack
                                           : Locality::Any);
    }
    const auto consider_disk = [&](NodeId n) {
      any_pref = true;
      improve(n == my_node ? Locality::Node
              : topo.rack_of(n) == my_rack ? Locality::Rack
                                           : Locality::Any);
    };
    for (const NodeId n : master.hdfs_replicas(block)) consider_disk(n);
    for (const NodeId n : master.produced_disk_nodes(block)) {
      consider_disk(n);
    }
  }
  if (!any_pref) return Locality::NoPref;
  return best;
}

std::vector<Locality> valid_locality_levels(const JobDag& dag,
                                            const BlockManagerMaster& master,
                                            const Topology& topo,
                                            const StageRuntime& stage) {
  (void)topo;
  const Stage& s = dag.stage(stage.id);
  bool has_narrow = false;
  for (const RddRef& ref : s.inputs) {
    if (ref.kind == DepKind::Narrow) {
      has_narrow = true;
      break;
    }
  }
  // Pure-shuffle stages have no preferred locations at all: every task
  // is NO_PREF. Narrow-dep stages always have at least a disk location
  // for every pending task (the parent block exists by readiness), so
  // none of their tasks is NO_PREF.
  if (!has_narrow) {
    return {Locality::NoPref, Locality::Any};
  }
  bool any_process = false;
  for (const std::int32_t index : stage.pending) {
    for (const RddRef& ref : s.inputs) {
      if (ref.kind != DepKind::Narrow) continue;
      if (!master.memory_holders(BlockId{ref.rdd, index}).empty()) {
        any_process = true;
        break;
      }
    }
    if (any_process) break;
  }
  std::vector<Locality> levels;
  if (any_process) levels.push_back(Locality::Process);
  levels.push_back(Locality::Node);
  levels.push_back(Locality::Rack);
  levels.push_back(Locality::Any);
  return levels;
}

}  // namespace dagon
