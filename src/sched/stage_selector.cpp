#include "sched/stage_selector.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dag/dag_analysis.hpp"

namespace dagon {

std::vector<StageId> FifoSelector::order(const JobState& state) const {
  std::vector<StageId> stages = state.schedulable_stages();
  std::sort(stages.begin(), stages.end());
  return stages;
}

std::vector<StageId> FairSelector::order(const JobState& state) const {
  std::vector<StageId> stages = state.schedulable_stages();
  // Least currently-allocated vCPUs first: every runnable stage gets a
  // fair share of the executors (Spark Fair pools, one stage per pool).
  auto allocated = [&](StageId s) {
    return static_cast<std::int64_t>(state.stage(s).running) *
           state.dag().stage(s).task_cpus;
  };
  std::stable_sort(stages.begin(), stages.end(),
                   [&](StageId a, StageId b) {
                     const auto ra = allocated(a);
                     const auto rb = allocated(b);
                     if (ra != rb) return ra < rb;
                     return a < b;
                   });
  return stages;
}

CriticalPathSelector::CriticalPathSelector(const JobDag& dag)
    : cp_(critical_path_lengths(dag)) {}

std::vector<StageId> CriticalPathSelector::order(
    const JobState& state) const {
  std::vector<StageId> stages = state.schedulable_stages();
  std::stable_sort(stages.begin(), stages.end(),
                   [&](StageId a, StageId b) {
                     const SimTime ca = cp_[static_cast<std::size_t>(a.value())];
                     const SimTime cb = cp_[static_cast<std::size_t>(b.value())];
                     if (ca != cb) return ca > cb;
                     return a < b;
                   });
  return stages;
}

GrapheneSelector::GrapheneSelector(const JobDag& dag,
                                   const JobProfile& profile,
                                   Cpus executor_cores,
                                   double duration_quantile,
                                   double demand_fraction) {
  DAGON_CHECK(executor_cores > Cpus{0});
  SampleSet durations;
  for (const Stage& s : dag.stages()) {
    durations.add(static_cast<double>(profile.stage(s.id).task_duration.count()));
  }
  const double cutoff = durations.quantile(duration_quantile);
  troublesome_.resize(dag.num_stages());
  score_.resize(dag.num_stages());
  for (const Stage& s : dag.stages()) {
    const StageEstimate& est = profile.stage(s.id);
    const bool long_running =
        static_cast<double>(est.task_duration.count()) >= cutoff;
    const bool hard_to_pack =
        static_cast<double>(est.task_cpus.count()) >=
        demand_fraction * static_cast<double>(executor_cores.count());
    const auto idx = static_cast<std::size_t>(s.id.value());
    troublesome_[idx] = long_running || hard_to_pack;
    score_[idx] = static_cast<double>(est.task_duration.count()) *
                  static_cast<double>(est.task_cpus.count());
  }
}

std::vector<StageId> GrapheneSelector::order(const JobState& state) const {
  std::vector<StageId> stages = state.schedulable_stages();
  std::stable_sort(
      stages.begin(), stages.end(), [&](StageId a, StageId b) {
        const bool ta = troublesome(a);
        const bool tb = troublesome(b);
        if (ta != tb) return ta;  // troublesome first
        if (ta) {
          // Among troublesome: biggest resource-time footprint first.
          const double sa = score_[static_cast<std::size_t>(a.value())];
          const double sb = score_[static_cast<std::size_t>(b.value())];
          if (sa != sb) return sa > sb;
        }
        return a < b;  // remaining stages in submission order
      });
  return stages;
}

std::vector<StageId> DagonSelector::order(const JobState& state) const {
  std::vector<StageId> stages = state.schedulable_stages();
  // Algorithm 1 line 5: descending pv_i; ties to the earlier stage
  // (reproduces Table III step 2 where pv1 == pv2 == 52 picks stage 1).
  std::stable_sort(stages.begin(), stages.end(),
                   [&](StageId a, StageId b) {
                     const CpuWork pa = state.priority_value(a);
                     const CpuWork pb = state.priority_value(b);
                     if (pa != pb) return pa > pb;
                     return a < b;
                   });
  return stages;
}

std::unique_ptr<StageSelector> make_stage_selector(SchedulerKind kind,
                                                   const JobDag& dag,
                                                   const JobProfile& profile,
                                                   Cpus executor_cores) {
  switch (kind) {
    case SchedulerKind::Fifo: return std::make_unique<FifoSelector>();
    case SchedulerKind::Fair: return std::make_unique<FairSelector>();
    case SchedulerKind::CriticalPath:
      return std::make_unique<CriticalPathSelector>(dag);
    case SchedulerKind::Graphene:
      return std::make_unique<GrapheneSelector>(dag, profile,
                                                executor_cores);
    case SchedulerKind::Dagon: return std::make_unique<DagonSelector>();
  }
  throw ConfigError("unknown scheduler kind");
}

}  // namespace dagon
