// Delay scheduling: native (Zaharia et al., EuroSys'10 — Spark's
// TaskSetManager) and the paper's sensitivity-aware variant (Alg. 2).
//
// Both answer one question for Algorithm 1's inner call: given a stage,
// is there a (task, executor, locality) launch we should do right now?
#pragma once

#include <memory>
#include <optional>

#include "cache/block_manager_master.hpp"
#include "sched/estimator.hpp"
#include "sched/job_state.hpp"
#include "sched/task_locality.hpp"

namespace dagon {

enum class DelayKind { Native, SensitivityAware };

[[nodiscard]] constexpr const char* delay_kind_name(DelayKind k) {
  return k == DelayKind::Native ? "delay" : "sensitivity-aware";
}

struct Assignment {
  std::int32_t task_index = -1;
  ExecutorId exec = ExecutorId::invalid();
  Locality locality = Locality::Any;
};

class DelayPolicy {
 public:
  DelayPolicy(const LocalityWaits& waits, const CostModel& cost)
      : waits_(waits), cost_(&cost) {}
  virtual ~DelayPolicy() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// One launchable (task, executor) for stage `s`, or nullopt. Does not
  /// mutate task queues; the driver calls JobState::mark_launched and
  /// then this policy's on_launch.
  /// Mutates only the stage's delay-ladder bookkeeping (index/timer),
  /// exactly as Spark's getAllowedLocalityLevel does.
  [[nodiscard]] virtual std::optional<Assignment> find(
      JobState& state, const BlockManagerMaster& master, StageId s,
      SimTime now) const = 0;

  /// Resets the stage's wait timer after a successful launch at `l`
  /// (Spark: currentLocalityIndex := index of the launched level).
  void on_launch(JobState& state, const BlockManagerMaster& master,
                 StageId s, Locality l, SimTime now) const;

  /// Enables the per-(stage, task, executor) locality memo for find()'s
  /// inner loop. Off by default so a policy instance behaves exactly as
  /// the always-recompute baseline; the driver switches it on under
  /// SimConfig::incremental_scheduling. Results are identical either
  /// way — the memo is invalidated on every block-placement change.
  void set_locality_cache_enabled(bool enabled) { use_cache_ = enabled; }

  [[nodiscard]] const LocalityWaits& waits() const { return waits_; }

 protected:
  /// Spark's getAllowedLocalityLevel: walks the wait ladder based on the
  /// time since the last launch at the current level.
  [[nodiscard]] Locality allowed_locality(JobState& state,
                                          const BlockManagerMaster& master,
                                          StageId s, SimTime now) const;

  /// Best-locality pending task of `s` on `exec`, or nullopt when the
  /// executor cannot fit the stage's demand.
  [[nodiscard]] std::optional<Assignment> best_task_on(
      const JobState& state, const BlockManagerMaster& master, StageId s,
      ExecutorId exec) const;

  /// Locality of (s, index) on `exec`, via the memo when enabled.
  [[nodiscard]] Locality locality_of(const JobState& state,
                                     const BlockManagerMaster& master,
                                     StageId s, std::int32_t index,
                                     ExecutorId exec) const;

  /// valid_locality_levels, via the memo when enabled.
  [[nodiscard]] std::vector<Locality> levels_of(
      const JobState& state, const BlockManagerMaster& master,
      const StageRuntime& stage) const;

  LocalityWaits waits_;
  const CostModel* cost_;
  /// Pure memo of placement-derived answers (see LocalityCache); safe to
  /// mutate from const find() — it never changes observable results.
  mutable LocalityCache cache_;
  bool use_cache_ = false;
};

/// Spark's stock delay scheduling: launch only at the allowed level or
/// better; otherwise leave the executor idle and wait.
class NativeDelayPolicy final : public DelayPolicy {
 public:
  using DelayPolicy::DelayPolicy;
  [[nodiscard]] const char* name() const override { return "delay"; }
  [[nodiscard]] std::optional<Assignment> find(
      JobState& state, const BlockManagerMaster& master, StageId s,
      SimTime now) const override;
};

/// The paper's Algorithm 2: additionally admits a lower-locality task
/// when its estimated duration would not push the stage past its
/// earliest completion time (Eq. 7) — so locality-insensitive stages
/// never leave executors idle.
class SensitivityAwareDelayPolicy final : public DelayPolicy {
 public:
  /// `ect_slack` loosens Eq. (7)'s acceptance test (est < slack * ect):
  /// a low-locality task within 10% of the stage's earliest completion
  /// time cannot meaningfully delay it, and refusing it would idle the
  /// executor for the whole stage.
  SensitivityAwareDelayPolicy(const LocalityWaits& waits,
                              const CostModel& cost, double ect_slack = 1.1)
      : DelayPolicy(waits, cost), ect_slack_(ect_slack) {}
  [[nodiscard]] const char* name() const override {
    return "sensitivity-aware";
  }
  [[nodiscard]] std::optional<Assignment> find(
      JobState& state, const BlockManagerMaster& master, StageId s,
      SimTime now) const override;

 private:
  double ect_slack_;
};

[[nodiscard]] std::unique_ptr<DelayPolicy> make_delay_policy(
    DelayKind kind, const LocalityWaits& waits, const CostModel& cost,
    double ect_slack = 1.1);

}  // namespace dagon
