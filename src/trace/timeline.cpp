#include "trace/timeline.hpp"

#include <algorithm>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "common/error.hpp"

namespace dagon {

std::vector<StageSpan> stage_spans(const RunMetrics& metrics) {
  std::vector<StageSpan> spans;
  spans.reserve(metrics.stages.size());
  for (const StageRecord& s : metrics.stages) {
    StageSpan span;
    span.stage = s.id;
    span.name = s.name;
    span.ready = std::max(SimTime{0}, s.ready_time);
    span.first_launch = std::max(SimTime{0}, s.first_launch);
    span.finish = std::max(SimTime{0}, s.finish_time);
    spans.push_back(std::move(span));
  }
  std::sort(spans.begin(), spans.end(),
            [](const StageSpan& a, const StageSpan& b) {
              if (a.first_launch != b.first_launch) {
                return a.first_launch < b.first_launch;
              }
              return a.stage < b.stage;
            });
  return spans;
}

namespace {

BinnedSeries bin_function(const StepFunction& f, SimTime jct,
                          std::size_t bins) {
  BinnedSeries series;
  if (bins == 0 || jct <= SimTime{0}) return series;
  series.bin_width = jct / static_cast<std::int64_t>(bins);
  if (series.bin_width <= SimTime{0}) series.bin_width = SimTime{1};
  series.values.reserve(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    const SimTime lo = static_cast<std::int64_t>(i) * series.bin_width;
    const SimTime hi = std::min<SimTime>(jct, lo + series.bin_width);
    series.values.push_back(f.average(lo, std::max(hi, lo + SimTime{1})));
  }
  return series;
}

}  // namespace

BinnedSeries utilization_series(const RunMetrics& metrics,
                                std::size_t bins) {
  return bin_function(metrics.busy_cores, metrics.jct, bins);
}

BinnedSeries parallelism_series(const RunMetrics& metrics,
                                std::size_t bins) {
  return bin_function(metrics.running_tasks, metrics.jct, bins);
}

std::vector<StageLocality> stage_locality_breakdown(
    const RunMetrics& metrics, const JobDag& dag) {
  std::vector<StageLocality> out(dag.num_stages());
  for (const Stage& s : dag.stages()) {
    auto& entry = out[static_cast<std::size_t>(s.id.value())];
    entry.stage = s.id;
    entry.name = s.name;
  }
  for (const TaskRecord& t : metrics.tasks) {
    ++out[static_cast<std::size_t>(t.stage.value())]
        .counts[static_cast<std::size_t>(t.locality)];
  }
  return out;
}

void write_timeline_csv(const RunMetrics& metrics, const JobDag& dag,
                        const std::string& path) {
  CsvWriter csv(path, {"stage", "name", "ready_sec", "launch_sec",
                       "finish_sec", "queue_delay_sec", "process", "node",
                       "nopref", "rack", "any"});
  const auto locality = stage_locality_breakdown(metrics, dag);
  for (const StageSpan& span : stage_spans(metrics)) {
    const StageLocality& loc =
        locality[static_cast<std::size_t>(span.stage.value())];
    csv.add_row({std::to_string(span.stage.value()), span.name,
                 TextTable::num(to_seconds(span.ready), 3),
                 TextTable::num(to_seconds(span.first_launch), 3),
                 TextTable::num(to_seconds(span.finish), 3),
                 TextTable::num(to_seconds(span.queue_delay()), 3),
                 std::to_string(loc.counts[0]), std::to_string(loc.counts[1]),
                 std::to_string(loc.counts[2]), std::to_string(loc.counts[3]),
                 std::to_string(loc.counts[4])});
  }
}

}  // namespace dagon
