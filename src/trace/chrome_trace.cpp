#include "trace/chrome_trace.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace dagon {

namespace {

/// Minimal JSON string escape (task/stage names are ASCII identifiers,
/// but be safe).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string chrome_trace_json(const RunMetrics& metrics, const JobDag& dag) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;

  // Process/thread metadata: one "process" for the cluster, one
  // "thread" per executor.
  std::int32_t max_exec = -1;
  for (const TaskRecord& t : metrics.tasks) {
    max_exec = std::max(max_exec, t.exec.value());
  }
  for (std::int32_t e = 0; e <= max_exec; ++e) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << e
       << ",\"args\":{\"name\":\"executor " << e << "\"}}";
  }

  for (const TaskRecord& t : metrics.tasks) {
    if (!first) os << ",";
    first = false;
    const Stage& stage = dag.stage(t.stage);
    // Complete events ("X"): ts/dur in microseconds — SimTime natively.
    os << "{\"name\":\"" << json_escape(stage.name) << "[" << t.index
       << "]" << (t.speculative ? "*" : "") << "\",\"cat\":\""
       << (t.cancelled ? "cancelled" : "task")
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << t.exec.value()
       << ",\"ts\":" << t.launch << ",\"dur\":" << t.duration()
       << ",\"args\":{\"stage\":" << t.stage.value() << ",\"locality\":\""
       << locality_name(t.locality) << "\",\"fetch_us\":" << t.fetch_time
       << ",\"compute_us\":" << t.compute_time << "}}";
  }

  // Counter track: cluster busy vCPUs.
  for (const auto& point : metrics.busy_cores.points()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"busy vCPUs\",\"ph\":\"C\",\"pid\":1,\"ts\":"
       << point.time << ",\"args\":{\"busy\":" << point.value << "}}";
  }

  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

void write_chrome_trace(const RunMetrics& metrics, const JobDag& dag,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw ConfigError("cannot open trace file for writing: " + path);
  }
  out << chrome_trace_json(metrics, dag);
}

}  // namespace dagon
