// Chrome-tracing export: writes a RunMetrics task timeline as a
// chrome://tracing / Perfetto-compatible JSON file, one track per
// executor, one slice per task attempt (colored by stage via the slice
// name, with locality and fetch split in the args).
//
//   RunMetrics m = run_system(...).metrics;
//   write_chrome_trace(m, workload.dag, "run.trace.json");
//   // then open chrome://tracing or ui.perfetto.dev and load the file.
#pragma once

#include <string>

#include "dag/job_dag.hpp"
#include "sim/metrics.hpp"

namespace dagon {

/// Writes `metrics` as a Chrome trace-event JSON file. Throws
/// ConfigError if the file cannot be opened.
void write_chrome_trace(const RunMetrics& metrics, const JobDag& dag,
                        const std::string& path);

/// Same, but returns the JSON as a string (for tests / embedding).
[[nodiscard]] std::string chrome_trace_json(const RunMetrics& metrics,
                                            const JobDag& dag);

}  // namespace dagon
