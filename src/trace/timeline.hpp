// Timeline summaries derived from RunMetrics: per-stage Gantt rows,
// binned utilization/parallelism series, and a per-stage locality
// breakdown — the data the paper's time-series figures plot.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "dag/job_dag.hpp"
#include "sim/metrics.hpp"

namespace dagon {

/// One row of a stage-level Gantt chart.
struct StageSpan {
  StageId stage;
  std::string name;
  SimTime ready{};
  SimTime first_launch{};
  SimTime finish{};
  /// Time the stage spent ready but not yet launched (queueing).
  [[nodiscard]] SimTime queue_delay() const { return first_launch - ready; }
};

/// Stage spans in first-launch order.
[[nodiscard]] std::vector<StageSpan> stage_spans(const RunMetrics& metrics);

/// A time series sampled into `bins` equal intervals over [0, jct].
struct BinnedSeries {
  SimTime bin_width{};
  std::vector<double> values;
};

/// Mean busy vCPUs per bin.
[[nodiscard]] BinnedSeries utilization_series(const RunMetrics& metrics,
                                              std::size_t bins);

/// Mean running tasks per bin (the paper's task parallelism).
[[nodiscard]] BinnedSeries parallelism_series(const RunMetrics& metrics,
                                              std::size_t bins);

/// Launch counts per locality level for one stage.
struct StageLocality {
  StageId stage;
  std::string name;
  std::array<std::int64_t, 5> counts{};  // indexed by Locality

  [[nodiscard]] std::int64_t total() const {
    std::int64_t t = 0;
    for (const std::int64_t c : counts) t += c;
    return t;
  }
  [[nodiscard]] double high_locality_fraction() const {
    const std::int64_t t = total();
    if (t == 0) return 0.0;
    return static_cast<double>(
               counts[static_cast<std::size_t>(Locality::Process)] +
               counts[static_cast<std::size_t>(Locality::Node)]) /
           static_cast<double>(t);
  }
};

/// Per-stage locality histograms (from the task records).
[[nodiscard]] std::vector<StageLocality> stage_locality_breakdown(
    const RunMetrics& metrics, const JobDag& dag);

/// Writes stage spans + per-stage locality as CSV rows. Throws
/// ConfigError if the file cannot be opened.
void write_timeline_csv(const RunMetrics& metrics, const JobDag& dag,
                        const std::string& path);

}  // namespace dagon
