#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dagon {

FaultPlan::FaultPlan(const FaultConfig& config, std::size_t num_executors,
                     std::uint64_t seed)
    : config_(config), rng_(Rng(seed).fork(kFaultRngStream)) {
  if (config.task_fail_prob < 0.0 || config.task_fail_prob >= 1.0) {
    throw ConfigError("faults.task_fail_prob must be in [0, 1)");
  }
  if (config.block_loss_per_gb_hour < 0.0) {
    throw ConfigError("faults.block_loss_per_gb_hour must be >= 0");
  }
  if (config.block_loss_interval <= 0) {
    throw ConfigError("faults.block_loss_interval must be positive");
  }
  if (config.retry_backoff_base <= 0) {
    throw ConfigError("faults.retry_backoff_base must be positive");
  }
  if (config.retry_backoff_cap < config.retry_backoff_base) {
    throw ConfigError(
        "faults.retry_backoff_cap must be >= retry_backoff_base");
  }
  if (config.max_task_retries <= 0) {
    throw ConfigError("faults.max_task_retries must be positive");
  }
  for (const ExecutorCrashSpec& spec : config.crashes) {
    if (spec.at < 0) {
      throw ConfigError("faults.crashes: crash time must be >= 0");
    }
    if (spec.executor < -1 ||
        (spec.executor >= 0 &&
         static_cast<std::size_t>(spec.executor) >= num_executors)) {
      throw ConfigError("faults.crashes: executor index out of range");
    }
  }
  // Each crash kills a distinct executor, so this bound guarantees a
  // survivor — without it every job would deadlock.
  if (config.crashes.size() >= num_executors) {
    throw ConfigError(
        "faults.crashes would kill every executor; at least one must "
        "survive");
  }

  // Resolve random targets now: each -1 spec gets a distinct executor
  // not claimed by any other crash, drawn from the fault stream.
  std::vector<bool> taken(num_executors, false);
  for (const ExecutorCrashSpec& spec : config.crashes) {
    if (spec.executor >= 0) {
      taken[static_cast<std::size_t>(spec.executor)] = true;
    }
  }
  crashes_.reserve(config.crashes.size());
  for (const ExecutorCrashSpec& spec : config.crashes) {
    std::size_t target;
    if (spec.executor >= 0) {
      target = static_cast<std::size_t>(spec.executor);
    } else {
      do {
        target = static_cast<std::size_t>(
            rng_.uniform_int(static_cast<std::int64_t>(num_executors)));
      } while (taken[target]);
      taken[target] = true;
    }
    crashes_.push_back(
        Crash{spec.at, ExecutorId(static_cast<std::int32_t>(target))});
  }
  std::stable_sort(crashes_.begin(), crashes_.end(),
                   [](const Crash& a, const Crash& b) { return a.at < b.at; });
}

bool FaultPlan::draw_block_loss(Bytes bytes, SimTime interval) {
  if (bytes <= 0) return false;
  const double gib = static_cast<double>(bytes) / static_cast<double>(kGiB);
  const double rate_per_sec = config_.block_loss_per_gb_hour / 3600.0;
  const double p = 1.0 - std::exp(-rate_per_sec * gib * to_seconds(interval));
  return rng_.bernoulli(p);
}

SimTime FaultPlan::retry_backoff(std::int32_t attempt) const {
  const double scaled =
      static_cast<double>(config_.retry_backoff_base) *
      std::pow(2.0, static_cast<double>(std::min(attempt, 30)));
  return static_cast<SimTime>(
      std::min(scaled, static_cast<double>(config_.retry_backoff_cap)));
}

}  // namespace dagon
