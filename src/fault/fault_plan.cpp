#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dagon {

FaultPlan::FaultPlan(const FaultConfig& config, std::size_t num_executors,
                     std::size_t num_racks, std::uint64_t seed)
    : config_(config),
      rng_(Rng(seed).fork(kFaultRngStream)),
      tail_rng_(Rng(seed).fork(kHeavyTailRngStream)) {
  if (config.task_fail_prob < 0.0 || config.task_fail_prob >= 1.0) {
    throw ConfigError("faults.task_fail_prob must be in [0, 1)");
  }
  if (config.heavy_tail_prob < 0.0 || config.heavy_tail_prob > 1.0) {
    throw ConfigError("faults.heavy_tail_prob must be in [0, 1]");
  }
  if (config.heavy_tail_mult < 1.0) {
    throw ConfigError("faults.heavy_tail_mult must be >= 1.0");
  }
  if (config.block_loss_per_gb_hour < 0.0) {
    throw ConfigError("faults.block_loss_per_gb_hour must be >= 0");
  }
  if (config.block_loss_interval <= SimTime{0}) {
    throw ConfigError("faults.block_loss_interval must be positive");
  }
  if (config.retry_backoff_base <= SimTime{0}) {
    throw ConfigError("faults.retry_backoff_base must be positive");
  }
  if (config.retry_backoff_cap < config.retry_backoff_base) {
    throw ConfigError(
        "faults.retry_backoff_cap must be >= retry_backoff_base");
  }
  if (config.max_task_retries <= 0) {
    throw ConfigError("faults.max_task_retries must be positive");
  }
  for (const ExecutorCrashSpec& spec : config.crashes) {
    if (spec.at < SimTime{0}) {
      throw ConfigError("faults.crashes: crash time must be >= 0");
    }
    if (spec.executor < -1 ||
        (spec.executor >= 0 &&
         static_cast<std::size_t>(spec.executor) >= num_executors)) {
      throw ConfigError("faults.crashes: executor index out of range");
    }
  }
  // Each crash kills a distinct executor, so this bound guarantees a
  // survivor — without it every job would deadlock.
  if (config.crashes.size() >= num_executors) {
    throw ConfigError(
        "faults.crashes would kill every executor; at least one must "
        "survive");
  }
  for (const PartitionSpec& spec : config.partitions) {
    if (spec.at < SimTime{0}) {
      throw ConfigError("faults.partitions: start time must be >= 0");
    }
    if (spec.heal_at <= spec.at) {
      throw ConfigError("faults.partitions: heal time must be after start");
    }
    if (spec.rack < -1 ||
        (spec.rack >= 0 && static_cast<std::size_t>(spec.rack) >= num_racks)) {
      throw ConfigError("faults.partitions: rack index out of range");
    }
  }
  // A single-rack cluster partitioned from the driver would suspect (and
  // eventually kill) every executor at once; require a second rack so
  // the control plane always has a reachable side to schedule on.
  if (!config.partitions.empty() && num_racks < 2) {
    throw ConfigError("faults.partitions require a cluster with >= 2 racks");
  }
  for (const DegradeSpec& spec : config.degrades) {
    if (spec.at < SimTime{0}) {
      throw ConfigError("faults.degrades: start time must be >= 0");
    }
    if (spec.until <= spec.at) {
      throw ConfigError("faults.degrades: end time must be after start");
    }
    if (spec.executor < -1 ||
        (spec.executor >= 0 &&
         static_cast<std::size_t>(spec.executor) >= num_executors)) {
      throw ConfigError("faults.degrades: executor index out of range");
    }
    if (spec.slowdown < 1.0) {
      throw ConfigError("faults.degrades: slowdown must be >= 1.0");
    }
  }
  if (config.heartbeat_interval <= SimTime{0}) {
    throw ConfigError("faults.heartbeat_interval must be positive");
  }
  if (config.suspect_phi <= 0.0) {
    throw ConfigError("faults.suspect_phi must be positive");
  }
  if (config.dead_phi < config.suspect_phi) {
    throw ConfigError("faults.dead_phi must be >= suspect_phi");
  }
  if (config.blacklist_threshold < 0) {
    throw ConfigError("faults.blacklist_threshold must be >= 0");
  }
  if (config.blacklist_probation <= SimTime{0}) {
    throw ConfigError("faults.blacklist_probation must be positive");
  }

  // Resolve random targets now: each -1 spec gets a distinct executor
  // not claimed by any other crash, drawn from the fault stream.
  std::vector<bool> taken(num_executors, false);
  for (const ExecutorCrashSpec& spec : config.crashes) {
    if (spec.executor >= 0) {
      taken[static_cast<std::size_t>(spec.executor)] = true;
    }
  }
  crashes_.reserve(config.crashes.size());
  for (const ExecutorCrashSpec& spec : config.crashes) {
    std::size_t target;
    if (spec.executor >= 0) {
      target = static_cast<std::size_t>(spec.executor);
    } else {
      do {
        target = static_cast<std::size_t>(
            rng_.uniform_int(static_cast<std::int64_t>(num_executors)));
      } while (taken[target]);
      taken[target] = true;
    }
    crashes_.push_back(
        Crash{spec.at, ExecutorId(static_cast<std::int32_t>(target))});
  }
  std::stable_sort(crashes_.begin(), crashes_.end(),
                   [](const Crash& a, const Crash& b) { return a.at < b.at; });

  // Resolve partition and degrade targets after crashes, in spec order,
  // so the crash schedule of a PR 2 config is unchanged by appending
  // gray specs. Random racks/executors are drawn uniformly (duplicates
  // allowed: two windows may hit the same rack).
  partitions_.reserve(config.partitions.size());
  for (const PartitionSpec& spec : config.partitions) {
    std::int32_t rack = spec.rack;
    if (rack < 0) {
      rack = static_cast<std::int32_t>(
          rng_.uniform_int(static_cast<std::int64_t>(num_racks)));
    }
    partitions_.push_back(Partition{spec.at, spec.heal_at, RackId(rack)});
  }
  std::stable_sort(
      partitions_.begin(), partitions_.end(),
      [](const Partition& a, const Partition& b) { return a.at < b.at; });

  degrades_.reserve(config.degrades.size());
  for (const DegradeSpec& spec : config.degrades) {
    std::int32_t exec = spec.executor;
    if (exec < 0) {
      exec = static_cast<std::int32_t>(
          rng_.uniform_int(static_cast<std::int64_t>(num_executors)));
    }
    degrades_.push_back(
        Degrade{spec.at, spec.until, ExecutorId(exec), spec.slowdown});
  }
  std::stable_sort(
      degrades_.begin(), degrades_.end(),
      [](const Degrade& a, const Degrade& b) { return a.at < b.at; });
}

SimTime FaultPlan::partitioned_until(RackId rack, SimTime now) const {
  SimTime heal{};
  for (const Partition& p : partitions_) {
    if (p.rack == rack && p.at <= now && now < p.heal_at) {
      heal = std::max(heal, p.heal_at);
    }
  }
  return heal;
}

SimTime FaultPlan::cross_partition_heal(RackId rack_a, RackId rack_b,
                                        SimTime now) const {
  if (rack_a == rack_b) return SimTime{0};
  return std::max(partitioned_until(rack_a, now),
                  partitioned_until(rack_b, now));
}

double FaultPlan::degrade_factor(ExecutorId exec, SimTime now) const {
  double factor = 1.0;
  for (const Degrade& d : degrades_) {
    if (d.exec == exec && d.at <= now && now < d.until) {
      factor *= d.slowdown;
    }
  }
  return factor;
}

bool FaultPlan::draw_block_loss(Bytes bytes, SimTime interval) {
  if (bytes <= Bytes{0}) return false;
  const double gib =
      static_cast<double>(bytes.count()) / static_cast<double>(kGiB.count());
  const double rate_per_sec = config_.block_loss_per_gb_hour / 3600.0;
  const double p = 1.0 - std::exp(-rate_per_sec * gib * to_seconds(interval));
  return rng_.bernoulli(p);
}

SimTime FaultPlan::retry_backoff(std::int32_t attempt) const {
  const double scaled =
      static_cast<double>(config_.retry_backoff_base.count()) *
      std::pow(2.0, static_cast<double>(std::min(attempt, 30)));
  return time_from_usec(
      std::min(scaled, static_cast<double>(config_.retry_backoff_cap.count())));
}

}  // namespace dagon
