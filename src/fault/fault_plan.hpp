// FaultPlan: the deterministic, seed-driven realization of a
// FaultConfig for one run.
//
// Built once at driver construction: validates the knobs (ConfigError on
// nonsense), resolves "random executor" crash targets, and owns the
// dedicated RNG stream every later fault draw (transient failures, block
// loss) comes from. Forking the stream off the base seed — rather than
// sharing the driver's generator — is what keeps the base trace
// unperturbed when faults are enabled, so parallel sweeps mixing faulty
// and fault-free configs stay deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/strong_id.hpp"
#include "common/units.hpp"
#include "fault/fault_config.hpp"

namespace dagon {

/// Rng::fork stream id reserved for fault draws.
inline constexpr std::uint64_t kFaultRngStream = 0xfa;

/// Rng::fork stream id reserved for heavy-tail duration draws. Separate
/// from kFaultRngStream so enabling tail injection never perturbs the
/// crash/transient/block-loss schedule of an existing faulty config.
inline constexpr std::uint64_t kHeavyTailRngStream = 0x7a11;

class FaultPlan {
 public:
  /// Validates `config` against a cluster of `num_executors` executors
  /// in `num_racks` racks (throws ConfigError) and resolves the crash,
  /// partition and degrade schedules.
  FaultPlan(const FaultConfig& config, std::size_t num_executors,
            std::size_t num_racks, std::uint64_t seed);

  struct Crash {
    SimTime at{};
    ExecutorId exec = ExecutorId::invalid();
  };

  /// A resolved rack partition: the rack is unreachable during
  /// [at, heal_at).
  struct Partition {
    SimTime at{};
    SimTime heal_at{};
    RackId rack = RackId::invalid();
  };

  /// A resolved executor degradation over [at, until).
  struct Degrade {
    SimTime at{};
    SimTime until{};
    ExecutorId exec = ExecutorId::invalid();
    double slowdown = 1.0;
  };

  /// Resolved crash schedule, sorted by time; random targets are pinned
  /// to distinct executors at construction.
  [[nodiscard]] const std::vector<Crash>& crashes() const {
    return crashes_;
  }

  [[nodiscard]] const std::vector<Partition>& partitions() const {
    return partitions_;
  }
  [[nodiscard]] const std::vector<Degrade>& degrades() const {
    return degrades_;
  }

  /// Heal time of the latest partition isolating `rack` at `now`, or 0
  /// if the rack is reachable.
  [[nodiscard]] SimTime partitioned_until(RackId rack, SimTime now) const;

  /// Heal time after which traffic between `rack_a` and `rack_b` can
  /// flow again, or 0 if unaffected at `now`. Same-rack traffic never
  /// crosses a partition.
  [[nodiscard]] SimTime cross_partition_heal(RackId rack_a, RackId rack_b,
                                             SimTime now) const;

  /// Combined slowdown factor for work on `exec` at `now` (>= 1.0;
  /// overlapping degrade windows multiply).
  [[nodiscard]] double degrade_factor(ExecutorId exec, SimTime now) const;

  /// True when the driver should emit heartbeats and run the suspicion
  /// detector for this plan.
  [[nodiscard]] bool monitors_heartbeats() const {
    return config_.gray_active();
  }

  [[nodiscard]] bool samples_task_failures() const {
    return config_.task_fail_prob > 0.0;
  }
  [[nodiscard]] bool samples_block_loss() const {
    return config_.block_loss_per_gb_hour > 0.0;
  }
  [[nodiscard]] bool samples_heavy_tail() const {
    return config_.heavy_tail_prob > 0.0;
  }

  /// One draw per launched attempt (dedicated stream): does this attempt
  /// hit the heavy tail? If so its compute time is scaled by
  /// `config().heavy_tail_mult`.
  [[nodiscard]] bool draw_heavy_tail() {
    return tail_rng_.bernoulli(config_.heavy_tail_prob);
  }

  /// One draw per launched attempt: does this attempt fail?
  [[nodiscard]] bool draw_task_failure() {
    return rng_.bernoulli(config_.task_fail_prob);
  }

  /// Fraction of the attempt's duration after which it fails, in (0, 1].
  [[nodiscard]] double draw_failure_point() { return 1.0 - rng_.uniform(); }

  /// One draw per (cached block, sampling tick): is this block lost?
  [[nodiscard]] bool draw_block_loss(Bytes bytes, SimTime interval);

  /// Backoff before retry number `attempt` (0-based) of a task index.
  [[nodiscard]] SimTime retry_backoff(std::int32_t attempt) const;

  [[nodiscard]] const FaultConfig& config() const { return config_; }

 private:
  FaultConfig config_;
  Rng rng_;
  Rng tail_rng_;
  std::vector<Crash> crashes_;
  std::vector<Partition> partitions_;
  std::vector<Degrade> degrades_;
};

}  // namespace dagon
