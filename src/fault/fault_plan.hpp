// FaultPlan: the deterministic, seed-driven realization of a
// FaultConfig for one run.
//
// Built once at driver construction: validates the knobs (ConfigError on
// nonsense), resolves "random executor" crash targets, and owns the
// dedicated RNG stream every later fault draw (transient failures, block
// loss) comes from. Forking the stream off the base seed — rather than
// sharing the driver's generator — is what keeps the base trace
// unperturbed when faults are enabled, so parallel sweeps mixing faulty
// and fault-free configs stay deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/strong_id.hpp"
#include "common/units.hpp"
#include "fault/fault_config.hpp"

namespace dagon {

/// Rng::fork stream id reserved for fault draws.
inline constexpr std::uint64_t kFaultRngStream = 0xfa;

class FaultPlan {
 public:
  /// Validates `config` against a cluster of `num_executors` executors
  /// (throws ConfigError) and resolves the crash schedule.
  FaultPlan(const FaultConfig& config, std::size_t num_executors,
            std::uint64_t seed);

  struct Crash {
    SimTime at = 0;
    ExecutorId exec = ExecutorId::invalid();
  };

  /// Resolved crash schedule, sorted by time; random targets are pinned
  /// to distinct executors at construction.
  [[nodiscard]] const std::vector<Crash>& crashes() const {
    return crashes_;
  }

  [[nodiscard]] bool samples_task_failures() const {
    return config_.task_fail_prob > 0.0;
  }
  [[nodiscard]] bool samples_block_loss() const {
    return config_.block_loss_per_gb_hour > 0.0;
  }

  /// One draw per launched attempt: does this attempt fail?
  [[nodiscard]] bool draw_task_failure() {
    return rng_.bernoulli(config_.task_fail_prob);
  }

  /// Fraction of the attempt's duration after which it fails, in (0, 1].
  [[nodiscard]] double draw_failure_point() { return 1.0 - rng_.uniform(); }

  /// One draw per (cached block, sampling tick): is this block lost?
  [[nodiscard]] bool draw_block_loss(Bytes bytes, SimTime interval);

  /// Backoff before retry number `attempt` (0-based) of a task index.
  [[nodiscard]] SimTime retry_backoff(std::int32_t attempt) const;

  [[nodiscard]] const FaultConfig& config() const { return config_; }

 private:
  FaultConfig config_;
  Rng rng_;
  std::vector<Crash> crashes_;
};

}  // namespace dagon
