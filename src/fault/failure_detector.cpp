#include "fault/failure_detector.hpp"

namespace dagon {

namespace {
// log10(e): converts the exponential-tail exponent to base-10 phi.
constexpr double kLog10E = 0.4342944819032518;
}  // namespace

FailureDetector::FailureDetector(SimTime expected_interval,
                                 double suspect_phi, double dead_phi)
    : expected_interval_(expected_interval),
      suspect_phi_(suspect_phi),
      dead_phi_(dead_phi) {}

FailureDetector::Entry& FailureDetector::entry(ExecutorId exec) {
  const auto index = static_cast<std::size_t>(exec.value());
  if (index >= entries_.size()) entries_.resize(index + 1);
  return entries_[index];
}

const FailureDetector::Entry* FailureDetector::find(ExecutorId exec) const {
  const auto index = static_cast<std::size_t>(exec.value());
  if (index >= entries_.size() || !entries_[index].tracked) return nullptr;
  return &entries_[index];
}

void FailureDetector::track(ExecutorId exec, SimTime now) {
  Entry& e = entry(exec);
  e = Entry{};
  e.tracked = true;
  e.last_heartbeat = now;
  // Seed the window so phi is calibrated before the first real
  // inter-arrival lands.
  e.intervals[0] = expected_interval_;
  e.count = 1;
  e.next = 1;
  e.interval_sum = expected_interval_;
}

void FailureDetector::stop(ExecutorId exec) {
  const auto index = static_cast<std::size_t>(exec.value());
  if (index < entries_.size()) entries_[index].tracked = false;
}

bool FailureDetector::tracking(ExecutorId exec) const {
  return find(exec) != nullptr;
}

void FailureDetector::record_heartbeat(ExecutorId exec, SimTime now) {
  const auto index = static_cast<std::size_t>(exec.value());
  if (index >= entries_.size() || !entries_[index].tracked) return;
  Entry& e = entries_[index];
  const SimTime interval = now - e.last_heartbeat;
  if (interval <= SimTime{0}) return;  // duplicate delivery at one timestamp
  e.last_heartbeat = now;
  if (e.count < kWindow) {
    ++e.count;
  } else {
    e.interval_sum -= e.intervals[e.next];
  }
  e.intervals[e.next] = interval;
  e.interval_sum += interval;
  e.next = (e.next + 1) % kWindow;
}

double FailureDetector::phi(ExecutorId exec, SimTime now) const {
  const Entry* e = find(exec);
  if (e == nullptr) return 0.0;
  const SimTime elapsed = now - e->last_heartbeat;
  if (elapsed <= SimTime{0}) return 0.0;
  const double mean = static_cast<double>(e->interval_sum.count()) /
                      static_cast<double>(e->count);
  if (mean <= 0.0) return 0.0;
  return kLog10E * static_cast<double>(elapsed.count()) / mean;
}

FailureDetector::State FailureDetector::classify(ExecutorId exec,
                                                 SimTime now) const {
  if (find(exec) == nullptr) return State::Dead;
  const double p = phi(exec, now);
  if (p >= dead_phi_) return State::Dead;
  if (p >= suspect_phi_) return State::Suspect;
  return State::Healthy;
}

SimTime FailureDetector::mean_interval(ExecutorId exec) const {
  const Entry* e = find(exec);
  if (e == nullptr) return SimTime{0};
  return e->interval_sum / static_cast<std::int64_t>(e->count);
}

}  // namespace dagon
