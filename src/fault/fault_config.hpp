// Fault-model knobs: scheduled executor crashes, random cached-block
// loss, and transient task failures.
//
// Everything defaults to off, and every stochastic draw flows through a
// dedicated RNG stream (FaultPlan), so a config with faults disabled —
// or enabled with all rates at zero — produces a trace bit-identical to
// a build that predates the fault subsystem.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"

namespace dagon {

/// One scheduled executor crash.
struct ExecutorCrashSpec {
  SimTime at = 0;
  /// Executor id, or -1 to have FaultPlan pick a random distinct
  /// executor (deterministically, from the fault RNG stream).
  std::int32_t executor = -1;
};

struct FaultConfig {
  /// Master switch; with `false` no fault event is ever scheduled and no
  /// fault RNG value is ever drawn.
  bool enabled = false;

  /// Executor crashes: the crashed executor's running attempts fail and
  /// are retried elsewhere, its cores leave the cluster for good, and
  /// its cached + produced-disk blocks are dropped. Blocks whose last
  /// copy dies are recomputed from DAG lineage.
  std::vector<ExecutorCrashSpec> crashes;

  /// Probability that a launched task attempt fails partway through and
  /// must be retried (Spark's transient task failures). In [0, 1).
  double task_fail_prob = 0.0;

  /// Poisson-style loss rate of cached memory blocks, per GiB of block
  /// size per hour; sampled every `block_loss_interval`. Models bit-rot
  /// / OOM-killed cache entries: the durable disk copy survives, so the
  /// loss degrades locality and hit ratio but never loses data.
  double block_loss_per_gb_hour = 0.0;
  SimTime block_loss_interval = kSec;

  /// Capped exponential backoff before retry k of a failed task index:
  /// min(retry_backoff_base * 2^k, retry_backoff_cap).
  SimTime retry_backoff_base = kSec;
  SimTime retry_backoff_cap = 30 * kSec;

  /// Retries per task index before the run is declared failed.
  std::int32_t max_task_retries = 100;

  /// True when enabling this config can change a run at all.
  [[nodiscard]] bool active() const {
    return enabled && (!crashes.empty() || task_fail_prob > 0.0 ||
                       block_loss_per_gb_hour > 0.0);
  }
};

}  // namespace dagon
