// Fault-model knobs: scheduled executor crashes, random cached-block
// loss, transient task failures — and the gray-failure layer: rack
// network partitions, degraded executors, heartbeat monitoring and
// executor blacklisting.
//
// Everything defaults to off, and every stochastic draw flows through a
// dedicated RNG stream (FaultPlan), so a config with faults disabled —
// or enabled with all rates at zero — produces a trace bit-identical to
// a build that predates the fault subsystem.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"

namespace dagon {

/// One scheduled executor crash.
struct ExecutorCrashSpec {
  SimTime at{};
  /// Executor id, or -1 to have FaultPlan pick a random distinct
  /// executor (deterministically, from the fault RNG stream).
  std::int32_t executor = -1;
};

/// One scheduled rack partition: from `at` until `heal_at` the rack is
/// cut off from the driver and from every other rack. Executors inside
/// keep running (a gray failure, not a crash): their heartbeats are
/// dropped, their task completions are reported only after the heal,
/// and fetches crossing the partition stall until it heals.
struct PartitionSpec {
  SimTime at{};
  SimTime heal_at{};
  /// Rack id, or -1 for a random rack (fault RNG stream).
  std::int32_t rack = -1;
};

/// One scheduled executor degradation: tasks launched on the executor
/// during [at, until) have their fetch and compute times scaled by
/// `slowdown`, and its heartbeats arrive `slowdown`x late — slow enough
/// to look sick, alive enough to never crash.
struct DegradeSpec {
  SimTime at{};
  SimTime until{};
  /// Executor id, or -1 for a random executor (fault RNG stream).
  std::int32_t executor = -1;
  double slowdown = 2.0;
};

struct FaultConfig {
  /// Master switch; with `false` no fault event is ever scheduled and no
  /// fault RNG value is ever drawn.
  bool enabled = false;

  /// Executor crashes: the crashed executor's running attempts fail and
  /// are retried elsewhere, its cores leave the cluster for good, and
  /// its cached + produced-disk blocks are dropped. Blocks whose last
  /// copy dies are recomputed from DAG lineage.
  std::vector<ExecutorCrashSpec> crashes;

  /// Rack partitions with scheduled heal times (gray failures).
  std::vector<PartitionSpec> partitions;

  /// Degraded (slow) executors (gray failures).
  std::vector<DegradeSpec> degrades;

  /// Probability that a launched task attempt fails partway through and
  /// must be retried (Spark's transient task failures). In [0, 1).
  double task_fail_prob = 0.0;

  /// Heavy-tail duration injection: with probability `heavy_tail_prob`
  /// (one draw per launched attempt, from a dedicated forked RNG
  /// stream) the attempt's compute time is multiplied by
  /// `heavy_tail_mult`. Straggling is a property of the *attempt*, not
  /// the task — a hedged copy on a healthy executor redraws and
  /// genuinely escapes the tail. prob in [0, 1]; mult >= 1.
  double heavy_tail_prob = 0.0;
  double heavy_tail_mult = 10.0;

  /// Poisson-style loss rate of cached memory blocks, per GiB of block
  /// size per hour; sampled every `block_loss_interval`. Models bit-rot
  /// / OOM-killed cache entries: the durable disk copy survives, so the
  /// loss degrades locality and hit ratio but never loses data.
  double block_loss_per_gb_hour = 0.0;
  SimTime block_loss_interval = kSec;

  /// Capped exponential backoff before retry k of a failed task index:
  /// min(retry_backoff_base * 2^k, retry_backoff_cap).
  SimTime retry_backoff_base = kSec;
  SimTime retry_backoff_cap = 30 * kSec;

  /// Retries per task index before the run is declared failed.
  std::int32_t max_task_retries = 100;

  // -- heartbeat monitoring / phi-accrual suspicion ----------------------

  /// Force heartbeat monitoring on even with no partition or degrade
  /// scheduled. Monitoring runs automatically whenever either is.
  bool heartbeats = false;

  /// Executor heartbeat period (Spark's spark.executor.heartbeatInterval).
  SimTime heartbeat_interval = kSec;

  /// Phi threshold above which an executor is *suspected*: excluded from
  /// new launches and locality waits, its sole-copy blocks re-replicated
  /// — but nothing is torn down, so a recovery is cheap. With the
  /// phi-accrual form phi = log10(e) * elapsed / mean_interval, 1.0
  /// suspects after ~2.3 heartbeat intervals of silence.
  double suspect_phi = 1.0;

  /// Phi threshold above which a suspect is declared dead and recovered
  /// exactly like a crash. 8.0 ~= 18.4 intervals of silence.
  double dead_phi = 8.0;

  // -- executor blacklisting ---------------------------------------------

  /// Task-attempt failures on one executor before it is blacklisted
  /// (excluded from launches) for `blacklist_probation`. 0 = off.
  std::int32_t blacklist_threshold = 0;

  /// How long a blacklisted executor sits out; afterwards it re-enters
  /// with a clean failure count (timed probation).
  SimTime blacklist_probation = 60 * kSec;

  /// True when the gray layer (heartbeats, suspicion, partitions,
  /// degrades) is live — i.e. heartbeat events will be scheduled.
  [[nodiscard]] bool gray_active() const {
    return enabled &&
           (!partitions.empty() || !degrades.empty() || heartbeats);
  }

  /// True when enabling this config can change a run at all.
  [[nodiscard]] bool active() const {
    return enabled && (!crashes.empty() || task_fail_prob > 0.0 ||
                       block_loss_per_gb_hour > 0.0 ||
                       heavy_tail_prob > 0.0 || gray_active());
  }
};

}  // namespace dagon
