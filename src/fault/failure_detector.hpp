// Phi-accrual failure detector (Hayashibara et al., simplified the way
// Cassandra ships it): per executor, a sliding window of heartbeat
// inter-arrival times yields a mean interval, and the suspicion level
// for a silence of `elapsed` microseconds is
//
//     phi = log10(e) * elapsed / mean_interval
//
// i.e. the negative log10 of the probability that an exponentially
// distributed inter-arrival is still outstanding. Unlike a binary
// timeout, phi *accrues*: callers pick two thresholds (suspect < dead)
// and get a three-state classification whose suspect band is cheap to
// enter and cheap to leave — the right shape for gray failures, where a
// partitioned or degraded executor looks dead for a while and then
// resumes.
//
// The window seeds with the configured heartbeat interval so the
// detector is calibrated from tick zero, and it adapts: an executor that
// heartbeats slowly-but-steadily (degraded) widens its own mean and
// stops looking suspicious.
#pragma once

#include <cstdint>
#include <vector>

#include "common/fsm.hpp"
#include "common/sim_time.hpp"
#include "common/strong_id.hpp"

namespace dagon {

class FailureDetector {
 public:
  /// Classification outcomes are the executor-health lifecycle states of
  /// fsm::StateMachine<ExecutorHealth>; the driver turns a changed
  /// classification into an fsm::transition() on the executor.
  using State = ExecutorHealth;

  /// `expected_interval` seeds every executor's inter-arrival window;
  /// `suspect_phi` / `dead_phi` are the classification thresholds
  /// (validated by FaultPlan before the detector is built).
  FailureDetector(SimTime expected_interval, double suspect_phi,
                  double dead_phi);

  /// Starts monitoring `exec`, treating `now` as its last heartbeat.
  void track(ExecutorId exec, SimTime now);

  /// Stops monitoring `exec` (declared dead or crashed); late heartbeats
  /// from an untracked executor are ignored.
  void stop(ExecutorId exec);

  [[nodiscard]] bool tracking(ExecutorId exec) const;

  /// Records a heartbeat arrival, folding the inter-arrival time into
  /// the sliding window. No-op if `exec` is not tracked.
  void record_heartbeat(ExecutorId exec, SimTime now);

  /// Current suspicion level for `exec` at `now`; 0 for untracked.
  [[nodiscard]] double phi(ExecutorId exec, SimTime now) const;

  /// Classifies `exec` against the two thresholds; untracked executors
  /// report Dead (they were stopped for a reason).
  [[nodiscard]] State classify(ExecutorId exec, SimTime now) const;

  /// Mean of the executor's inter-arrival window (test hook).
  [[nodiscard]] SimTime mean_interval(ExecutorId exec) const;

 private:
  // Window size trades adaptation speed against false-positive noise;
  // 16 intervals ≈ Cassandra's default sample window scaled down to
  // simulation-length runs.
  static constexpr std::size_t kWindow = 16;

  struct Entry {
    bool tracked = false;
    SimTime last_heartbeat{};
    // Ring buffer of the last kWindow inter-arrival times.
    SimTime intervals[kWindow] = {};
    std::size_t count = 0;
    std::size_t next = 0;
    SimTime interval_sum{};
  };

  [[nodiscard]] Entry& entry(ExecutorId exec);
  [[nodiscard]] const Entry* find(ExecutorId exec) const;

  SimTime expected_interval_;
  double suspect_phi_;
  double dead_phi_;
  std::vector<Entry> entries_;  // indexed by executor id
};

}  // namespace dagon
