// Data-locality levels, matching Spark's TaskLocality lattice.
#pragma once

#include <array>
#include <cstdint>

namespace dagon {

/// Ordered from best to worst; lower numeric value = better locality.
/// NoPref sits between Node and Rack exactly as in Spark: tasks with no
/// preferred location (e.g. pure shuffle reads) can launch anywhere
/// without waiting but are not counted as locality wins.
enum class Locality : std::int8_t {
  Process = 0,
  Node = 1,
  NoPref = 2,
  Rack = 3,
  Any = 4,
};

inline constexpr std::array<Locality, 5> kAllLocalities = {
    Locality::Process, Locality::Node, Locality::NoPref, Locality::Rack,
    Locality::Any};

[[nodiscard]] constexpr const char* locality_name(Locality l) {
  switch (l) {
    case Locality::Process: return "PROCESS_LOCAL";
    case Locality::Node: return "NODE_LOCAL";
    case Locality::NoPref: return "NO_PREF";
    case Locality::Rack: return "RACK_LOCAL";
    case Locality::Any: return "ANY";
  }
  return "?";
}

/// True when `have` is at least as good as (not worse than) `want`.
[[nodiscard]] constexpr bool at_least(Locality have, Locality want) {
  return static_cast<int>(have) <= static_cast<int>(want);
}

}  // namespace dagon
