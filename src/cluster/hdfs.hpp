// HDFS-style placement of input RDD blocks onto node disks.
//
// Placement happens once per run before the job starts; replicas go to
// `replication` distinct nodes. The paper's KMeans case study sets
// replication = 1, which is what makes some executors starve for
// node-local work and exposes the delay-scheduling pathology.
#pragma once

#include <vector>

#include "cluster/topology.hpp"
#include "common/rng.hpp"
#include "dag/job_dag.hpp"

namespace dagon {

struct HdfsSpec {
  std::int32_t replication = 3;
  /// "skew" concentrates block placement: fraction of blocks forced onto
  /// the first `hot_nodes` nodes (models an unbalanced ingest). 0 = even
  /// round-robin-with-random-offset placement.
  double skew = 0.0;
  std::int32_t hot_nodes = 1;
};

class HdfsPlacement {
 public:
  /// Places every input-RDD block of `dag` across `topo`'s nodes.
  HdfsPlacement(const JobDag& dag, const Topology& topo, const HdfsSpec& spec,
                Rng& rng);

  /// Nodes holding a disk replica of `block`; empty for non-input blocks.
  [[nodiscard]] const std::vector<NodeId>& replicas(
      const BlockId& block) const {
    return placement_[static_cast<std::size_t>(dag_->block_ord(block))];
  }

  /// Replicas by dense block ordinal (see JobDag::block_ord). Iterating
  /// ordinals ascending visits blocks in ascending BlockId order.
  [[nodiscard]] const std::vector<NodeId>& replicas_by_ord(
      std::int64_t ord) const {
    return placement_[static_cast<std::size_t>(ord)];
  }

  [[nodiscard]] std::int64_t num_blocks() const {
    return static_cast<std::int64_t>(placement_.size());
  }

 private:
  const JobDag* dag_;
  /// Indexed by block ordinal; empty for non-input blocks.
  std::vector<std::vector<NodeId>> placement_;
};

}  // namespace dagon
