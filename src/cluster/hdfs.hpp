// HDFS-style placement of input RDD blocks onto node disks.
//
// Placement happens once per run before the job starts; replicas go to
// `replication` distinct nodes. The paper's KMeans case study sets
// replication = 1, which is what makes some executors starve for
// node-local work and exposes the delay-scheduling pathology.
#pragma once

#include <unordered_map>
#include <vector>

#include "cluster/topology.hpp"
#include "common/rng.hpp"
#include "dag/job_dag.hpp"

namespace dagon {

struct HdfsSpec {
  std::int32_t replication = 3;
  /// "skew" concentrates block placement: fraction of blocks forced onto
  /// the first `hot_nodes` nodes (models an unbalanced ingest). 0 = even
  /// round-robin-with-random-offset placement.
  double skew = 0.0;
  std::int32_t hot_nodes = 1;
};

class HdfsPlacement {
 public:
  /// Places every input-RDD block of `dag` across `topo`'s nodes.
  HdfsPlacement(const JobDag& dag, const Topology& topo, const HdfsSpec& spec,
                Rng& rng);

  /// Nodes holding a disk replica of `block`; empty for non-input blocks.
  [[nodiscard]] const std::vector<NodeId>& replicas(const BlockId& block) const;

  /// The raw (hash-ordered) placement map. Never range-iterate this
  /// directly — route through dagon::sorted_view() / sorted_keys() so
  /// emission order is the block-id order (dagonlint enforces this; see
  /// DESIGN.md §9).
  [[nodiscard]] const std::unordered_map<BlockId, std::vector<NodeId>>&
  all() const {
    return placement_;
  }

 private:
  std::unordered_map<BlockId, std::vector<NodeId>> placement_;
  std::vector<NodeId> empty_;
};

}  // namespace dagon
