// Static cluster description: racks > nodes > executors.
//
// Runtime state (free cores, cache contents) lives in the simulation; a
// Topology is immutable once built, which lets many simulated runs share
// one instance.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/strong_id.hpp"
#include "common/units.hpp"
#include "cluster/locality.hpp"

namespace dagon {

struct Node {
  NodeId id;
  RackId rack;
  std::vector<ExecutorId> executors;
};

struct Executor {
  ExecutorId id;
  NodeId node;
  Cpus cores{};
  /// Memory available for the block cache.
  Bytes cache_bytes{};
};

struct TopologySpec {
  std::int32_t racks = 1;
  std::int32_t nodes_per_rack = 4;
  std::int32_t executors_per_node = 1;
  Cpus cores_per_executor{4};
  Bytes cache_bytes_per_executor = 4 * kGiB;
};

class Topology {
 public:
  explicit Topology(const TopologySpec& spec);

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Executor>& executors() const {
    return executors_;
  }

  [[nodiscard]] const Node& node(NodeId id) const {
    DAGON_CHECK(id.valid() &&
                static_cast<std::size_t>(id.value()) < nodes_.size());
    return nodes_[static_cast<std::size_t>(id.value())];
  }
  [[nodiscard]] const Executor& executor(ExecutorId id) const {
    DAGON_CHECK(id.valid() &&
                static_cast<std::size_t>(id.value()) < executors_.size());
    return executors_[static_cast<std::size_t>(id.value())];
  }

  [[nodiscard]] NodeId node_of(ExecutorId e) const {
    return executor(e).node;
  }
  [[nodiscard]] RackId rack_of(NodeId n) const { return node(n).rack; }

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_racks() const { return num_racks_; }
  [[nodiscard]] std::size_t num_executors() const {
    return executors_.size();
  }
  [[nodiscard]] Cpus total_cores() const { return total_cores_; }

  /// Locality of data on node `data_node` as seen from executor `e`
  /// (Node / Rack / Any; Process requires executor identity, which the
  /// caller checks against the cache).
  [[nodiscard]] Locality node_locality(ExecutorId e, NodeId data_node) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Executor> executors_;
  std::size_t num_racks_ = 0;
  Cpus total_cores_{};
};

}  // namespace dagon
