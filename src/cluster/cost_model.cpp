#include "cluster/cost_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dagon {

CostModel::CostModel(const CostModelSpec& spec) : spec_(spec) {
  if (spec_.memory_bw <= 0 || spec_.disk_bw <= 0 || spec_.net_bw_rack <= 0 ||
      spec_.net_bw_cross <= 0) {
    throw ConfigError("CostModelSpec bandwidths must be positive");
  }
  if (spec_.disk_latency <= SimTime{0} || spec_.net_latency <= SimTime{0}) {
    throw ConfigError("CostModelSpec latencies must be positive");
  }
  if (spec_.serde_sec_per_byte < 0) {
    throw ConfigError("CostModelSpec serde_sec_per_byte must be >= 0");
  }
}

SimTime CostModel::transfer(Bytes bytes, BytesPerSec bw) {
  return time_from_usec(static_cast<double>(bytes.count()) / bw *
                        static_cast<double>(kSec.count()));
}

SimTime CostModel::fetch_time(Bytes bytes, BlockSource source,
                              std::optional<double> serde_sec_per_byte,
                              double slowdown) const {
  if (slowdown != 1.0 && slowdown > 0.0) {
    const SimTime base = fetch_time(bytes, source, serde_sec_per_byte);
    return scale_time(base, slowdown);
  }
  if (bytes <= Bytes{0}) return SimTime{0};
  const SimTime serde = time_from_usec(
      serde_sec_per_byte.value_or(spec_.serde_sec_per_byte) *
      static_cast<double>(bytes.count()) * static_cast<double>(kSec.count()));
  switch (source) {
    case BlockSource::LocalMemory:
      return transfer(bytes, spec_.memory_bw);
    case BlockSource::SameNodeMemory:
      // Crosses process boundaries: pays serialization but no network.
      return transfer(bytes, spec_.memory_bw) + serde;
    case BlockSource::LocalDisk:
      return spec_.disk_latency + transfer(bytes, spec_.disk_bw) + serde;
    case BlockSource::RackMemory:
      return spec_.net_latency + transfer(bytes, spec_.net_bw_rack) + serde;
    case BlockSource::RackDisk:
      // Remote disk read is pipelined with the transfer; the slower of
      // the two paths dominates.
      return spec_.net_latency + spec_.disk_latency +
             std::max(transfer(bytes, spec_.net_bw_rack),
                      transfer(bytes, spec_.disk_bw)) +
             serde;
    case BlockSource::RemoteMemory:
      return spec_.net_latency + transfer(bytes, spec_.net_bw_cross) + serde;
    case BlockSource::RemoteDisk:
      return spec_.net_latency + spec_.disk_latency +
             std::max(transfer(bytes, spec_.net_bw_cross),
                      transfer(bytes, spec_.disk_bw)) +
             serde;
  }
  return SimTime{0};
}

}  // namespace dagon
