#include "cluster/hdfs.hpp"

#include <algorithm>

namespace dagon {

HdfsPlacement::HdfsPlacement(const JobDag& dag, const Topology& topo,
                             const HdfsSpec& spec, Rng& rng)
    : dag_(&dag) {
  if (spec.replication <= 0) {
    throw ConfigError("HDFS replication must be positive");
  }
  placement_.resize(static_cast<std::size_t>(dag.num_blocks()));
  const auto num_nodes = static_cast<std::int32_t>(topo.num_nodes());
  const std::int32_t replication = std::min(spec.replication, num_nodes);
  const std::int32_t hot =
      std::clamp(spec.hot_nodes, std::int32_t{1}, num_nodes);

  for (const Rdd& rdd : dag.rdds()) {
    if (!rdd.is_input) continue;
    // Random starting offset per RDD, then round-robin — spreads blocks
    // evenly but differently across runs/seeds.
    const auto offset =
        static_cast<std::int32_t>(rng.uniform_int(num_nodes));
    for (std::int32_t p = 0; p < rdd.num_partitions; ++p) {
      std::vector<NodeId> nodes;
      std::int32_t first;
      if (spec.skew > 0.0 && rng.bernoulli(spec.skew)) {
        first = static_cast<std::int32_t>(rng.uniform_int(hot));
      } else {
        first = (offset + p) % num_nodes;
      }
      for (std::int32_t r = 0; r < replication; ++r) {
        nodes.push_back(NodeId((first + r) % num_nodes));
      }
      placement_[static_cast<std::size_t>(dag.block_ord(BlockId{rdd.id, p}))] =
          std::move(nodes);
    }
  }
}

}  // namespace dagon
