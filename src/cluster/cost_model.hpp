// Data-plane cost model: how long a task spends fetching one input block
// from a given source. This replaces the paper's physical testbed (see
// DESIGN.md §1); defaults are calibrated to their hardware: 6TB HDDs
// (~150 MB/s sequential) and 10 Gbps Ethernet.
#pragma once

#include <optional>

#include "common/sim_time.hpp"
#include "common/units.hpp"
#include "cluster/locality.hpp"

namespace dagon {

/// Where a block copy physically lives relative to the reading executor.
enum class BlockSource {
  /// In the reading executor's own memory cache — a cache hit.
  LocalMemory,
  /// In another executor's memory on the same node.
  SameNodeMemory,
  /// On the local node's disk.
  LocalDisk,
  /// In memory of an executor on another node in the same rack.
  RackMemory,
  /// On the disk of another node in the same rack.
  RackDisk,
  /// In memory across racks.
  RemoteMemory,
  /// On disk across racks.
  RemoteDisk,
};

[[nodiscard]] constexpr const char* block_source_name(BlockSource s) {
  switch (s) {
    case BlockSource::LocalMemory: return "local-mem";
    case BlockSource::SameNodeMemory: return "node-mem";
    case BlockSource::LocalDisk: return "local-disk";
    case BlockSource::RackMemory: return "rack-mem";
    case BlockSource::RackDisk: return "rack-disk";
    case BlockSource::RemoteMemory: return "remote-mem";
    case BlockSource::RemoteDisk: return "remote-disk";
  }
  return "?";
}

/// True when the source is a memory copy (counts as a cache hit when it
/// is the reader's own executor).
[[nodiscard]] constexpr bool is_memory_source(BlockSource s) {
  return s == BlockSource::LocalMemory || s == BlockSource::SameNodeMemory ||
         s == BlockSource::RackMemory || s == BlockSource::RemoteMemory;
}

struct CostModelSpec {
  /// Intra-process memory bandwidth (deserialized read).
  BytesPerSec memory_bw = 8.0 * static_cast<double>(kGiB.count());
  /// Sequential disk bandwidth.
  BytesPerSec disk_bw = 150.0 * static_cast<double>(kMiB.count());
  /// Per-read disk latency (seek + open).
  SimTime disk_latency = 5 * kMsec;
  /// Network bandwidth within a rack / across racks (10 Gbps ≈ 1.25e9).
  BytesPerSec net_bw_rack = 1.1 * static_cast<double>(kGiB.count());
  BytesPerSec net_bw_cross = 0.6 * static_cast<double>(kGiB.count());
  /// Per-transfer network latency (connection + protocol overhead).
  SimTime net_latency = 2 * kMsec;
  /// Ser/de overhead applied to any network transfer, as extra seconds
  /// per byte (models CPU-bound serialization of cached partitions; this
  /// is what makes iterative stages ~15x slower off-process in Fig. 3).
  double serde_sec_per_byte = 0.0;
};

class CostModel {
 public:
  /// Validates the spec: bandwidths and latencies must be positive and
  /// the ser/de rate non-negative (throws ConfigError otherwise).
  explicit CostModel(const CostModelSpec& spec);

  /// Time to fetch `bytes` of one block from `source`.
  ///
  /// `serde_sec_per_byte` overrides the spec's ser/de cost (sec/byte):
  /// serialized RDD data pays it on every source except the reader's own
  /// memory store; raw HDFS input passes 0.0 (parsing is part of task
  /// compute time); omit it to use the spec default.
  ///
  /// `slowdown` (> 0) scales the whole transfer — a degraded executor's
  /// NIC, disk and ser/de CPU are all impaired, so the factor applies
  /// uniformly (gray-failure degrade faults). Values < 1 model a
  /// fast-tier executor (heterogeneity); 1.0 is the no-op baseline.
  [[nodiscard]] SimTime fetch_time(
      Bytes bytes, BlockSource source,
      std::optional<double> serde_sec_per_byte = std::nullopt,
      double slowdown = 1.0) const;

  [[nodiscard]] const CostModelSpec& spec() const { return spec_; }

 private:
  [[nodiscard]] static SimTime transfer(Bytes bytes, BytesPerSec bw);

  CostModelSpec spec_;
};

}  // namespace dagon
