#include "cluster/topology.hpp"

namespace dagon {

Topology::Topology(const TopologySpec& spec) {
  if (spec.racks <= 0 || spec.nodes_per_rack <= 0 ||
      spec.executors_per_node <= 0 || spec.cores_per_executor <= Cpus{0}) {
    throw ConfigError("TopologySpec fields must all be positive");
  }
  num_racks_ = static_cast<std::size_t>(spec.racks);
  for (std::int32_t r = 0; r < spec.racks; ++r) {
    for (std::int32_t n = 0; n < spec.nodes_per_rack; ++n) {
      Node node;
      node.id = NodeId(static_cast<std::int32_t>(nodes_.size()));
      node.rack = RackId(r);
      for (std::int32_t e = 0; e < spec.executors_per_node; ++e) {
        Executor exec;
        exec.id = ExecutorId(static_cast<std::int32_t>(executors_.size()));
        exec.node = node.id;
        exec.cores = spec.cores_per_executor;
        exec.cache_bytes = spec.cache_bytes_per_executor;
        node.executors.push_back(exec.id);
        executors_.push_back(exec);
        total_cores_ += exec.cores;
      }
      nodes_.push_back(std::move(node));
    }
  }
}

Locality Topology::node_locality(ExecutorId e, NodeId data_node) const {
  const NodeId my_node = node_of(e);
  if (my_node == data_node) return Locality::Node;
  if (rack_of(my_node) == rack_of(data_node)) return Locality::Rack;
  return Locality::Any;
}

}  // namespace dagon
