// Error-handling primitives shared across all Dagon subsystems.
//
// The simulator is a library first: invariant violations are programming
// errors and throw `dagon::InvariantError` (never abort), so tests can
// assert on them and embedding applications can recover.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dagon {

/// Thrown when an internal invariant is violated (a bug in the caller or
/// in Dagon itself), e.g. scheduling a task onto an executor with fewer
/// free vCPUs than the task demands.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when user-supplied configuration is unusable, e.g. a DAG with a
/// dependency cycle or an executor with zero cores.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail

}  // namespace dagon

/// Checks an internal invariant; throws dagon::InvariantError on failure.
#define DAGON_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::dagon::detail::throw_invariant(#expr, __FILE__, __LINE__, ""); \
    }                                                                  \
  } while (false)

/// Like DAGON_CHECK but with a streamed message, e.g.
/// DAGON_CHECK_MSG(x > 0, "x=" << x).
#define DAGON_CHECK_MSG(expr, stream_expr)                        \
  do {                                                            \
    if (!(expr)) {                                                \
      std::ostringstream os_;                                     \
      os_ << stream_expr;                                         \
      ::dagon::detail::throw_invariant(#expr, __FILE__, __LINE__, \
                                       os_.str());                \
    }                                                             \
  } while (false)
