// Declarative lifecycle state machines (dagonflow).
//
// The simulator is, at its core, three interacting state machines: task
// attempts under retry, cached-block residency under eviction and
// lineage recompute, and executor health under gray failures. Every
// lifecycle bug shipped so far was an illegal transition that nothing
// checked. This header makes the legal edges single-source-of-truth:
// each lifecycle enum gets a constexpr transition table in its
// `StateMachine<E>` specialization, and every status write in the
// engine flows through `fsm::transition()`.
//
// Enforcement is two-tier:
//   - debug builds (NDEBUG undefined) throw InvariantError naming the
//     machine, the from→to edge and the entity id — consistent with the
//     repo-wide throw-never-abort convention in common/error.hpp;
//   - release builds apply the write anyway but count the breach in a
//     `fsm::Violations` sink, which RunMetrics folds into
//     metrics_fingerprint so a violating run can never silently produce
//     the same digest as a clean one.
//
// `dagonlint` closes the bypass hole statically (rule `raw-transition`),
// and `dagonsim --dump-fsm <machine>` renders each table as Graphviz
// DOT (checked into docs/fsm/, kept in sync by CI).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace dagon {

/// Lifecycle of one task index within a stage. `Failed → Pending` is the
/// retry requeue; `Finished → Pending` is lineage recovery re-opening a
/// completed task whose output block was lost. `Running → Cancelled` is
/// a hedged/speculative attempt losing the race: a sibling attempt of
/// the same task finished first, so this one is torn down and its cores
/// returned. `Cancelled` is terminal for the attempt (the *task* lives
/// on through the winning sibling).
enum class TaskStatus : std::uint8_t {
  Pending,
  Running,
  Finished,
  Failed,
  Cancelled,
};

/// Residency of one block (rdd, partition) as tracked by the cache
/// master. `Absent` is the implicit initial state of a not-yet-produced
/// block; input blocks start at `Disk` (HDFS replicas). `Lost` means no
/// copy survives anywhere and only lineage recompute
/// (`Lost → Materializing`) can bring the block back.
enum class BlockResidency : std::uint8_t {
  Absent,
  Materializing,
  Memory,
  Disk,
  Evicted,
  Lost,
};

/// Health of one executor as seen by the driver. `Suspect` is the
/// phi-accrual gray band: the executor keeps its cores and running
/// attempts but receives no new launches until it heartbeats back
/// (`Suspect → Healthy`) or is declared dead (`Suspect → Dead`).
enum class ExecutorHealth : std::uint8_t { Healthy, Suspect, Dead };

namespace fsm {

/// One legal edge of a machine's transition table.
template <typename E>
struct Edge {
  E from;
  E to;
};

/// Per-lifecycle-enum trait: the machine's name, per-state names and the
/// constexpr table of legal edges. Specialized below for each lifecycle
/// enum; using fsm::transition() with an unspecialized enum is a compile
/// error, which is the point — ad-hoc state fields don't get tables.
template <typename E>
struct StateMachine;

template <>
struct StateMachine<TaskStatus> {
  static constexpr std::string_view kName = "task-status";

  static constexpr const char* name(TaskStatus s) {
    switch (s) {
      case TaskStatus::Pending: return "Pending";
      case TaskStatus::Running: return "Running";
      case TaskStatus::Finished: return "Finished";
      case TaskStatus::Failed: return "Failed";
      case TaskStatus::Cancelled: return "Cancelled";
    }
    return "?";
  }

  static constexpr std::array<Edge<TaskStatus>, 6> kEdges{{
      {TaskStatus::Pending, TaskStatus::Running},    // scheduler launch
      {TaskStatus::Running, TaskStatus::Finished},   // attempt completed
      {TaskStatus::Running, TaskStatus::Failed},     // fault / crash
      {TaskStatus::Running, TaskStatus::Cancelled},  // hedge lost the race
      {TaskStatus::Failed, TaskStatus::Pending},     // retry requeue
      {TaskStatus::Finished, TaskStatus::Pending},   // lineage reopen
  }};
};

template <>
struct StateMachine<BlockResidency> {
  static constexpr std::string_view kName = "block-residency";

  static constexpr const char* name(BlockResidency s) {
    switch (s) {
      case BlockResidency::Absent: return "Absent";
      case BlockResidency::Materializing: return "Materializing";
      case BlockResidency::Memory: return "Memory";
      case BlockResidency::Disk: return "Disk";
      case BlockResidency::Evicted: return "Evicted";
      case BlockResidency::Lost: return "Lost";
    }
    return "?";
  }

  static constexpr std::array<Edge<BlockResidency>, 10> kEdges{{
      {BlockResidency::Absent, BlockResidency::Materializing},  // produce
      {BlockResidency::Materializing, BlockResidency::Memory},  // admitted
      {BlockResidency::Materializing, BlockResidency::Disk},    // refused
      {BlockResidency::Disk, BlockResidency::Memory},       // read-admit
      {BlockResidency::Evicted, BlockResidency::Memory},    // re-admit
      {BlockResidency::Memory, BlockResidency::Evicted},    // evict (disk
                                                            // copy stays)
      {BlockResidency::Memory, BlockResidency::Lost},       // all copies die
      {BlockResidency::Disk, BlockResidency::Lost},         // disk copy dies
      {BlockResidency::Evicted, BlockResidency::Lost},      // disk copy dies
      {BlockResidency::Lost, BlockResidency::Materializing},  // recompute
  }};
};

template <>
struct StateMachine<ExecutorHealth> {
  static constexpr std::string_view kName = "executor-health";

  static constexpr const char* name(ExecutorHealth s) {
    switch (s) {
      case ExecutorHealth::Healthy: return "Healthy";
      case ExecutorHealth::Suspect: return "Suspect";
      case ExecutorHealth::Dead: return "Dead";
    }
    return "?";
  }

  static constexpr std::array<Edge<ExecutorHealth>, 4> kEdges{{
      {ExecutorHealth::Healthy, ExecutorHealth::Suspect},  // phi ≥ suspect
      {ExecutorHealth::Suspect, ExecutorHealth::Healthy},  // heartbeat back
      {ExecutorHealth::Suspect, ExecutorHealth::Dead},     // phi ≥ dead
      {ExecutorHealth::Healthy, ExecutorHealth::Dead},     // hard crash
  }};
};

/// Is `from → to` in the machine's table? Constexpr, so a transition
/// between literal states folds to a constant — the zero-overhead path.
template <typename E>
[[nodiscard]] constexpr bool allowed(E from, E to) {
  for (const Edge<E>& e : StateMachine<E>::kEdges) {
    if (e.from == from && e.to == to) return true;
  }
  return false;
}

/// Release-build breach counter. One sink per machine lives in
/// RunMetrics::FsmStats and is folded into metrics_fingerprint whenever
/// any counter is non-zero.
struct Violations {
  std::int64_t illegal = 0;

  [[nodiscard]] bool any() const { return illegal != 0; }
};

/// How transition() reacts to an edge missing from the table.
enum class Mode : std::uint8_t {
  /// Strict when NDEBUG is undefined (debug build), Count otherwise.
  Default,
  /// Throw InvariantError naming machine, from→to edge and entity id.
  Strict,
  /// Count the breach in the sink and apply the write anyway.
  Count,
};

template <typename E>
[[nodiscard]] std::string illegal_message(E from, E to, std::int64_t entity) {
  std::string msg = "illegal ";
  msg += StateMachine<E>::kName;
  msg += " transition ";
  msg += StateMachine<E>::name(from);
  msg += " -> ";
  msg += StateMachine<E>::name(to);
  if (entity >= 0) {
    msg += " (entity ";
    msg += std::to_string(entity);
    msg += ")";
  }
  return msg;
}

/// The one sanctioned way to write a lifecycle field. Applies `to` and
/// returns true when the edge is legal; otherwise throws (Strict) or
/// counts the breach into `violations` and still applies the write
/// (Count) so a release-build simulation keeps running — the fingerprint
/// gate flags the run instead. `entity` names the task index, block or
/// executor in diagnostics; pass -1 when there is no meaningful id.
template <typename E>
bool transition(E& current, E to, std::int64_t entity = -1,
                Violations* violations = nullptr, Mode mode = Mode::Default) {
  const E from = current;
  if (allowed(from, to)) {
    current = to;
    return true;
  }
#ifdef NDEBUG
  const bool strict = mode == Mode::Strict;
#else
  const bool strict = mode != Mode::Count;
#endif
  if (strict) throw InvariantError(illegal_message(from, to, entity));
  if (violations != nullptr) ++violations->illegal;
  current = to;
  return false;
}

/// Graphviz DOT rendering of a machine's table, in table order (hence
/// deterministic). `dagonsim --dump-fsm <machine>` prints this; the
/// checked-in copies live in docs/fsm/.
template <typename E>
[[nodiscard]] std::string to_dot() {
  std::string graph_name;
  for (const char c : StateMachine<E>::kName) {
    graph_name += c == '-' ? '_' : c;
  }
  std::string out = "digraph " + graph_name + " {\n";
  out += "  rankdir=LR;\n";
  out += "  node [shape=box, fontname=\"Helvetica\"];\n";
  for (const Edge<E>& e : StateMachine<E>::kEdges) {
    out += "  \"";
    out += StateMachine<E>::name(e.from);
    out += "\" -> \"";
    out += StateMachine<E>::name(e.to);
    out += "\";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace fsm

[[nodiscard]] constexpr const char* to_string(TaskStatus s) {
  return fsm::StateMachine<TaskStatus>::name(s);
}
[[nodiscard]] constexpr const char* to_string(BlockResidency s) {
  return fsm::StateMachine<BlockResidency>::name(s);
}
[[nodiscard]] constexpr const char* to_string(ExecutorHealth s) {
  return fsm::StateMachine<ExecutorHealth>::name(s);
}

}  // namespace dagon
