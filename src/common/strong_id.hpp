// Strongly-typed integer identifiers.
//
// The simulator juggles many id spaces (stages, tasks, RDDs, blocks,
// nodes, executors...). Mixing them up is a classic source of silent
// bugs, so each id space gets its own incompatible wrapper type.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace dagon {

/// A strongly-typed integral identifier. `Tag` is a phantom type that
/// makes ids from different spaces mutually unassignable.
template <typename Tag, typename Rep = std::int32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  /// Sentinel for "no id".
  [[nodiscard]] static constexpr StrongId invalid() { return StrongId(-1); }

  constexpr auto operator<=>(const StrongId&) const = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  Rep value_ = -1;
};

struct StageTag {};
struct TaskTag {};
struct RddTag {};
struct NodeTag {};
struct RackTag {};
struct ExecutorTag {};
struct JobTag {};

using StageId = StrongId<StageTag>;
using TaskId = StrongId<TaskTag, std::int64_t>;
using RddId = StrongId<RddTag>;
using NodeId = StrongId<NodeTag>;
using RackId = StrongId<RackTag>;
using ExecutorId = StrongId<ExecutorTag>;
using JobId = StrongId<JobTag>;

}  // namespace dagon

namespace std {

template <typename Tag, typename Rep>
struct hash<dagon::StrongId<Tag, Rep>> {
  size_t operator()(dagon::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

}  // namespace std
