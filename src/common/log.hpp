// Minimal leveled logging.
//
// The simulator is single-threaded per run but runs may execute in
// parallel (benches sweep configurations), so the sink is guarded by a
// mutex. Default level is Warn so tests and benches stay quiet; examples
// raise it to Info to narrate what the middleware is doing.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace dagon {

enum class LogLevel : int { Trace = 0, Debug, Info, Warn, Error, Off };

namespace logging {

/// Sets the process-wide minimum level.
void set_level(LogLevel level);
[[nodiscard]] LogLevel level();

/// Emits one line to stderr; used by the DAGON_LOG macro.
void emit(LogLevel level, const std::string& message);

[[nodiscard]] const char* level_name(LogLevel level);

}  // namespace logging

}  // namespace dagon

#define DAGON_LOG(lvl, stream_expr)                          \
  do {                                                       \
    if (static_cast<int>(lvl) >=                             \
        static_cast<int>(::dagon::logging::level())) {       \
      std::ostringstream os_;                                \
      os_ << stream_expr;                                    \
      ::dagon::logging::emit(lvl, os_.str());                \
    }                                                        \
  } while (false)

#define DAGON_TRACE(s) DAGON_LOG(::dagon::LogLevel::Trace, s)
#define DAGON_DEBUG(s) DAGON_LOG(::dagon::LogLevel::Debug, s)
#define DAGON_INFO(s) DAGON_LOG(::dagon::LogLevel::Info, s)
#define DAGON_WARN(s) DAGON_LOG(::dagon::LogLevel::Warn, s)
#define DAGON_ERROR(s) DAGON_LOG(::dagon::LogLevel::Error, s)
