#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace dagon {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  DAGON_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  DAGON_CHECK_MSG(cells.size() == header_.size(),
                  "row has " << cells.size() << " cells, header has "
                             << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::percent(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
  return buf;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  auto print_sep = [&] {
    os << "+";
    for (const std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n'
     << "  " << title << '\n'
     << std::string(72, '=') << '\n';
}

}  // namespace dagon
