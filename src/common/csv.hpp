// CSV export for bench results so figures can be re-plotted offline.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace dagon {

/// Streams rows to a CSV file. Cells are escaped per RFC 4180 when they
/// contain separators, quotes, or newlines.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row. Throws
  /// ConfigError if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void write_row(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

/// Escapes a single CSV cell.
[[nodiscard]] std::string csv_escape(const std::string& cell);

}  // namespace dagon
