// dagonunits — strong-typed physical quantities.
//
// Every guarantee the simulator makes (bit-identical fingerprints, exact
// event ordering, Eq. (2) vCPU-work accounting) rests on integer
// arithmetic over times, byte counts and work totals. Bare int64 aliases
// let the compiler accept time×bytes mixing, silent double→int
// narrowing, and unnoticed overflow. Quantity<Rep, Tag> makes each unit
// a distinct type that admits only dimensionally valid operators:
//
//   time  + time          → time        bytes + bytes → bytes
//   time  - time          → time        q × integer   → q
//   q / integer           → q           q / q         → Rep (ratio)
//   q % q                 → q           cpus × time   → cpu-work
//   cpu-work / cpus       → time        cpu-work / time → cpus (rate)
//
// Heterogeneous mixes (time + bytes, bytes × time, double × q) do not
// compile. The one escape hatch is `.count()`, which yields the raw
// representation for I/O, hashing and sanctioned conversions — grep for
// it to audit every exit from the type system.
//
// Overflow policy: debug builds trap on +, -, × overflow via
// __builtin_*_overflow and throw dagon::InvariantError naming the unit
// and operator; release builds compile to the exact raw-Rep arithmetic
// used before this layer existed, so fingerprints stay bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <type_traits>

#include "common/error.hpp"

namespace dagon {

namespace qdetail {

[[noreturn]] inline void overflow_trap(const char* unit, const char* op) {
  throw InvariantError(std::string("quantity overflow: ") + unit + " " + op);
}

#ifndef NDEBUG
inline constexpr bool kCheckedArithmetic = true;
#else
inline constexpr bool kCheckedArithmetic = false;
#endif

template <typename Rep>
constexpr Rep checked_add(Rep a, Rep b, const char* unit) {
  if constexpr (kCheckedArithmetic) {
    Rep out{};
    if (__builtin_add_overflow(a, b, &out)) overflow_trap(unit, "+");
    return out;
  } else {
    return static_cast<Rep>(a + b);
  }
}

template <typename Rep>
constexpr Rep checked_sub(Rep a, Rep b, const char* unit) {
  if constexpr (kCheckedArithmetic) {
    Rep out{};
    if (__builtin_sub_overflow(a, b, &out)) overflow_trap(unit, "-");
    return out;
  } else {
    return static_cast<Rep>(a - b);
  }
}

template <typename Rep>
constexpr Rep checked_mul(Rep a, Rep b, const char* unit) {
  if constexpr (kCheckedArithmetic) {
    Rep out{};
    if (__builtin_mul_overflow(a, b, &out)) overflow_trap(unit, "*");
    return out;
  } else {
    return static_cast<Rep>(a * b);
  }
}

}  // namespace qdetail

/// A strongly typed quantity: `Rep` is the integer representation, `Tag`
/// the dimension. Two quantities with different tags never mix, and a
/// quantity never converts implicitly to or from its representation.
template <typename Rep, typename Tag>
class Quantity {
  static_assert(std::is_integral_v<Rep> && std::is_signed_v<Rep>,
                "quantities are signed integers; bandwidths stay double");

 public:
  using rep = Rep;
  using tag = Tag;

  constexpr Quantity() = default;
  explicit constexpr Quantity(Rep v) : v_(v) {}

  /// The raw representation — the audited escape hatch for I/O, hashing
  /// and the sanctioned converters in common/.
  [[nodiscard]] constexpr Rep count() const { return v_; }

  // -- same-dimension arithmetic (debug-checked) --------------------------

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{qdetail::checked_add(a.v_, b.v_, Tag::name())};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{qdetail::checked_sub(a.v_, b.v_, Tag::name())};
  }
  constexpr Quantity operator-() const {
    return Quantity{qdetail::checked_sub(Rep{0}, v_, Tag::name())};
  }
  constexpr Quantity& operator+=(Quantity o) {
    v_ = qdetail::checked_add(v_, o.v_, Tag::name());
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ = qdetail::checked_sub(v_, o.v_, Tag::name());
    return *this;
  }
  constexpr Quantity& operator++() {
    v_ = qdetail::checked_add(v_, Rep{1}, Tag::name());
    return *this;
  }
  constexpr Quantity& operator--() {
    v_ = qdetail::checked_sub(v_, Rep{1}, Tag::name());
    return *this;
  }
  constexpr Quantity operator++(int) {
    const Quantity old = *this;
    ++*this;
    return old;
  }
  constexpr Quantity operator--(int) {
    const Quantity old = *this;
    --*this;
    return old;
  }

  // -- dimensionless scaling ---------------------------------------------
  // Only integral scalars: scaling by a double is a rounding decision and
  // must go through a named converter (scale_time, from_seconds, ...).

  template <typename I, typename = std::enable_if_t<std::is_integral_v<I>>>
  friend constexpr Quantity operator*(Quantity q, I s) {
    return Quantity{
        qdetail::checked_mul(q.v_, static_cast<Rep>(s), Tag::name())};
  }
  template <typename I, typename = std::enable_if_t<std::is_integral_v<I>>>
  friend constexpr Quantity operator*(I s, Quantity q) {
    return q * s;
  }
  template <typename I, typename = std::enable_if_t<std::is_integral_v<I>>>
  friend constexpr Quantity operator/(Quantity q, I s) {
    return Quantity{static_cast<Rep>(q.v_ / static_cast<Rep>(s))};
  }
  template <typename I, typename = std::enable_if_t<std::is_integral_v<I>>>
  constexpr Quantity& operator*=(I s) {
    v_ = qdetail::checked_mul(v_, static_cast<Rep>(s), Tag::name());
    return *this;
  }
  template <typename I, typename = std::enable_if_t<std::is_integral_v<I>>>
  constexpr Quantity& operator/=(I s) {
    v_ = static_cast<Rep>(v_ / static_cast<Rep>(s));
    return *this;
  }

  /// Ratio of two like quantities is dimensionless.
  friend constexpr Rep operator/(Quantity a, Quantity b) {
    return static_cast<Rep>(a.v_ / b.v_);
  }
  /// Remainder keeps the dimension (time % bucket-width is a time).
  friend constexpr Quantity operator%(Quantity a, Quantity b) {
    return Quantity{static_cast<Rep>(a.v_ % b.v_)};
  }

  // -- comparisons --------------------------------------------------------

  friend constexpr bool operator==(Quantity a, Quantity b) {
    return a.v_ == b.v_;
  }
  friend constexpr bool operator!=(Quantity a, Quantity b) {
    return a.v_ != b.v_;
  }
  friend constexpr bool operator<(Quantity a, Quantity b) {
    return a.v_ < b.v_;
  }
  friend constexpr bool operator<=(Quantity a, Quantity b) {
    return a.v_ <= b.v_;
  }
  friend constexpr bool operator>(Quantity a, Quantity b) {
    return a.v_ > b.v_;
  }
  friend constexpr bool operator>=(Quantity a, Quantity b) {
    return a.v_ >= b.v_;
  }

  /// Streams the raw count (units are the reader's contract, as before).
  friend std::ostream& operator<<(std::ostream& os, Quantity q) {
    return os << q.v_;
  }

 private:
  Rep v_{};
};

// Dimension tags. name() feeds the debug overflow trap's message.
struct TimeTag {
  static constexpr const char* name() { return "SimTime"; }
};
struct BytesTag {
  static constexpr const char* name() { return "Bytes"; }
};
struct CpuTag {
  static constexpr const char* name() { return "Cpus"; }
};
struct CpuWorkTag {
  static constexpr const char* name() { return "CpuWork"; }
};

}  // namespace dagon

namespace std {

/// Quantities hash as their representation (stable, allocator-free).
template <typename Rep, typename Tag>
struct hash<dagon::Quantity<Rep, Tag>> {
  size_t operator()(dagon::Quantity<Rep, Tag> q) const noexcept {
    return hash<Rep>{}(q.count());
  }
};

}  // namespace std
