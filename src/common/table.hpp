// ASCII table rendering for bench output.
//
// Every bench prints the paper's tables/figures as plain-text rows; this
// keeps the formatting in one place so all benches look alike.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace dagon {

/// Builds and prints a fixed-column ASCII table:
///
///   TextTable t({"workload", "FIFO+LRU", "Dagon"});
///   t.add_row({"KMeans", "61.2", "35.5"});
///   t.print(std::cout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with `%.*f`.
  static std::string num(double v, int precision = 2);
  static std::string percent(double v, int precision = 1);

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner used between experiment sub-figures.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace dagon
