#include "common/rng.hpp"

#include <cmath>

namespace dagon {

double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  // Box–Muller: two uniforms -> two normals; cache the second.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_ = r * std::sin(theta);
  have_spare_ = true;
  return r * std::cos(theta);
}

}  // namespace dagon
