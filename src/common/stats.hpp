// Statistics helpers used by the metrics subsystem and the benches:
// streaming moments, exact percentiles over collected samples, and
// time-weighted step functions (for CPU-utilization / parallelism
// timelines).
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/sim_time.hpp"

namespace dagon {

/// True median of a sample vector: the middle element for odd sizes,
/// the midpoint of the two middle elements for even sizes. O(n) via
/// nth_element (the vector is taken by value and partially reordered).
/// Shared by speculation thresholds and reporting code so nobody
/// re-implements the even-count case as "upper middle element".
[[nodiscard]] SimTime median_of(std::vector<SimTime> v);

/// Streaming mean/variance/min/max (Welford).
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one.
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Collects raw samples; answers exact quantile queries.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double sum() const;

  /// Exact quantile via linear interpolation; q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// A right-continuous step function of simulated time, e.g. "busy vCPUs".
/// Supports incremental +=/-= updates and exact time-weighted averages —
/// this is how the benches compute the paper's "CPU utilization" metric.
class StepFunction {
 public:
  /// Starts at `initial` at time 0.
  explicit StepFunction(double initial = 0.0) : value_(initial) {
    points_.push_back({SimTime{0}, initial});
  }

  /// Sets the value from time `t` onward. `t` must be non-decreasing
  /// across calls.
  void set(SimTime t, double value);

  /// Adds `delta` from time `t` onward.
  void add(SimTime t, double delta) { set(t, value_ + delta); }

  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] SimTime last_time() const { return points_.back().time; }

  /// Time-weighted mean over [from, to).
  [[nodiscard]] double average(SimTime from, SimTime to) const;

  /// Integral of the function over [from, to) (value·microseconds).
  [[nodiscard]] double integral(SimTime from, SimTime to) const;

  /// Value at time t.
  [[nodiscard]] double at(SimTime t) const;

  /// Maximum value attained in [from, to).
  [[nodiscard]] double max_over(SimTime from, SimTime to) const;

  struct Point {
    SimTime time;
    double value;
  };
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
  double value_;
};

/// Renders a crude ASCII sparkline of a step function sampled at `bins`
/// equal intervals over [from, to); used by example programs to show
/// utilization timelines in a terminal.
[[nodiscard]] std::string sparkline(const StepFunction& f, SimTime from,
                                    SimTime to, std::size_t bins,
                                    double scale_max);

}  // namespace dagon
