#include "common/csv.hpp"

#include "common/error.hpp"

namespace dagon {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  if (!out_) {
    throw ConfigError("cannot open CSV file for writing: " + path);
  }
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  DAGON_CHECK_MSG(cells.size() == columns_,
                  "CSV row width " << cells.size() << " != " << columns_);
  write_row(cells);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace dagon
