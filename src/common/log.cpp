#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace dagon::logging {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_sink_mutex;

}  // namespace

void set_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void emit(LogLevel level, const std::string& message) {
  const std::scoped_lock lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace dagon::logging
