#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

namespace dagon {

SimTime median_of(std::vector<SimTime> v) {
  DAGON_CHECK_MSG(!v.empty(), "median_of over an empty sample set");
  const std::size_t mid = v.size() / 2;
  const auto mid_it = v.begin() + static_cast<std::ptrdiff_t>(mid);
  std::nth_element(v.begin(), mid_it, v.end());
  const SimTime upper = v[mid];
  if (v.size() % 2 != 0) return upper;
  const SimTime lower = *std::max_element(v.begin(), mid_it);
  return lower + (upper - lower) / 2;
}

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ = (mean_ * static_cast<double>(n_) +
           other.mean_ * static_cast<double>(other.n_)) /
          total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  return sum() / static_cast<double>(samples_.size());
}

double SampleSet::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double SampleSet::quantile(double q) const {
  DAGON_CHECK(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void StepFunction::set(SimTime t, double value) {
  DAGON_CHECK_MSG(t >= points_.back().time,
                  "non-monotonic StepFunction update at t=" << t);
  if (points_.back().time == t) {
    points_.back().value = value;
    // Collapse redundant points created by several updates at one instant.
    if (points_.size() >= 2 && points_[points_.size() - 2].value == value) {
      points_.pop_back();
    }
  } else if (points_.back().value != value) {
    points_.push_back({t, value});
  }
  value_ = value;
}

double StepFunction::integral(SimTime from, SimTime to) const {
  if (to <= from) return 0.0;
  double acc = 0.0;
  // FP reduction in ascending segment order — points_ is a fixed,
  // time-sorted vector, so the summation order is deterministic.
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const SimTime seg_start = std::max(points_[i].time, from);
    const SimTime seg_end =
        std::min(i + 1 < points_.size() ? points_[i + 1].time : to, to);
    if (seg_end > seg_start) {
      acc += points_[i].value * static_cast<double>((seg_end - seg_start).count());
    }
    if (points_[i].time >= to) break;
  }
  return acc;
}

double StepFunction::average(SimTime from, SimTime to) const {
  if (to <= from) return 0.0;
  return integral(from, to) / static_cast<double>((to - from).count());
}

double StepFunction::at(SimTime t) const {
  // Last point with time <= t (right-continuous).
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](SimTime lhs, const Point& p) { return lhs < p.time; });
  if (it == points_.begin()) return points_.front().value;
  return std::prev(it)->value;
}

double StepFunction::max_over(SimTime from, SimTime to) const {
  double best = at(from);
  for (const Point& p : points_) {
    if (p.time >= to) break;
    if (p.time >= from) best = std::max(best, p.value);
  }
  return best;
}

std::string sparkline(const StepFunction& f, SimTime from, SimTime to,
                      std::size_t bins, double scale_max) {
  static const char* kLevels[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  std::string out;
  if (bins == 0 || to <= from || scale_max <= 0.0) return out;
  const double width =
      static_cast<double>((to - from).count()) / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    const auto lo = from + time_from_usec(width * static_cast<double>(i));
    const auto hi =
        from + time_from_usec(width * static_cast<double>(i + 1));
    const double v = f.average(lo, std::max(hi, lo + kUsec));
    const int idx = std::clamp(static_cast<int>(v / scale_max * 8.0 + 0.5), 0, 8);
    out += kLevels[idx];
  }
  return out;
}

}  // namespace dagon
