// Simulated-time representation.
//
// Integer microseconds: additions are exact, event ordering is total, and
// two runs with the same seed produce bit-identical traces (a property
// the test suite asserts). SimTime is a strong Quantity type — time only
// mixes with time (and with Cpus to form CpuWork, see units.hpp); the
// raw microsecond count is reachable only through `.count()` and the
// named converters below, so every unit boundary in the tree is
// grep-able.
#pragma once

#include <cstdint>
#include <string>

#include "common/quantity.hpp"

namespace dagon {

/// Simulated time or duration, in microseconds since simulation start.
using SimTime = Quantity<std::int64_t, TimeTag>;

inline constexpr SimTime kUsec{1};
inline constexpr SimTime kMsec = 1000 * kUsec;
inline constexpr SimTime kSec = 1000 * kMsec;
inline constexpr SimTime kMinute = 60 * kSec;

/// The largest representable time; used as "never".
inline constexpr SimTime kTimeInfinity{INT64_MAX};

// ---------------------------------------------------------------------------
// Sanctioned floating-point converters. These are the only places where a
// double becomes a SimTime — dagonlint's narrowing-cast rule bans
// float→int static_casts outside common/, so rounding decisions stay
// centralized and auditable.

/// Converts fractional seconds to SimTime, rounding half away from zero
/// (symmetric for negative durations; the old `+ 0.5` form rounded
/// negatives toward +∞).
[[nodiscard]] constexpr SimTime from_seconds(double s) {
  const double us = s * static_cast<double>(kSec.count());
  return SimTime{static_cast<std::int64_t>(us < 0.0 ? us - 0.5 : us + 0.5)};
}

/// Converts a microsecond count held in a double to SimTime, truncating
/// toward zero — the exact semantics of the `static_cast<SimTime>(expr)`
/// sites this converter replaced (bit-identical fingerprints depend on
/// it; do not "fix" the rounding).
[[nodiscard]] constexpr SimTime time_from_usec(double us) {
  return SimTime{static_cast<std::int64_t>(us)};
}

/// Scales a duration by a dimensionless factor (degrade slowdowns, speed
/// tiers, speculation thresholds), truncating toward zero like the
/// `static_cast<SimTime>(double(t) * f)` sites it replaced.
[[nodiscard]] constexpr SimTime scale_time(SimTime t, double factor) {
  return time_from_usec(static_cast<double>(t.count()) * factor);
}

/// Converts SimTime to fractional seconds (for reporting only).
[[nodiscard]] constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t.count()) / static_cast<double>(kSec.count());
}

/// Renders a duration as a short human-readable string, e.g. "12.5s".
[[nodiscard]] inline std::string format_duration(SimTime t) {
  const double s = to_seconds(t);
  char buf[32];
  if (s >= 120.0) {
    std::snprintf(buf, sizeof(buf), "%.1fmin", s / 60.0);
  } else if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fms", s * 1e3);
  }
  return buf;
}

}  // namespace dagon
