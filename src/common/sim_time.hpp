// Simulated-time representation.
//
// Integer microseconds: additions are exact, event ordering is total, and
// two runs with the same seed produce bit-identical traces (a property
// the test suite asserts).
#pragma once

#include <cstdint>
#include <string>

namespace dagon {

/// Simulated time or duration, in microseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kUsec = 1;
inline constexpr SimTime kMsec = 1000 * kUsec;
inline constexpr SimTime kSec = 1000 * kMsec;
inline constexpr SimTime kMinute = 60 * kSec;

/// The largest representable time; used as "never".
inline constexpr SimTime kTimeInfinity = INT64_MAX;

/// Converts fractional seconds to SimTime (rounds to nearest usec).
[[nodiscard]] constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSec) + 0.5);
}

/// Converts SimTime to fractional seconds (for reporting only).
[[nodiscard]] constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSec);
}

/// Renders a duration as a short human-readable string, e.g. "12.5s".
[[nodiscard]] inline std::string format_duration(SimTime t) {
  const double s = to_seconds(t);
  char buf[32];
  if (s >= 120.0) {
    std::snprintf(buf, sizeof(buf), "%.1fmin", s / 60.0);
  } else if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fms", s * 1e3);
  }
  return buf;
}

}  // namespace dagon
